package infat

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§5), plus the design-choice ablations. Each
// benchmark executes the experiment that regenerates its artifact and
// reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the evaluation end to end. `go run ./cmd/ifp-bench` prints
// the full tables; EXPERIMENTS.md records paper-versus-measured values.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"infat/internal/baseline"
	"infat/internal/exp"
	"infat/internal/hwcost"
	"infat/internal/juliet"
	"infat/internal/rt"
	"infat/internal/server"
	"infat/internal/stats"
	"infat/internal/workloads"
)

// benchSubset keeps per-iteration cost low while covering the evaluation's
// extremes: allocation-dominated (treeadd), cache-thrashing lists (health,
// ft), compute-bound (power), opaque allocation (coremark), and legacy-
// heavy (anagram).
var benchSubset = []string{"treeadd", "health", "ft", "power", "coremark", "anagram"}

// BenchmarkJulietSuite regenerates the §5.1 functional evaluation: the
// detection rate is asserted, the case count reported.
func BenchmarkJulietSuite(b *testing.B) {
	cases := juliet.Generate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, mode := range []rt.Mode{rt.Subheap, rt.Wrapped} {
			s := juliet.Run(cases, mode)
			if s.Detected != s.BadCases || s.FalsePositives != 0 {
				b.Fatalf("%v: %s", mode, s.Report())
			}
		}
	}
	b.ReportMetric(float64(2*len(cases)), "cases/op")
}

// BenchmarkExperiments measures the full §5.2 grid end to end — all 18
// workloads × 5 configurations plus the memory experiment — serial versus
// fanned out over GOMAXPROCS workers. On a multi-core machine the
// parallel variant's wall clock is the serial time divided by close to
// the core count (every cell is an independent runtime); on one core the
// two are equal. Compare with:
//
//	go test -bench 'Experiments' -benchtime 1x
func BenchmarkExperiments(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		parallel int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ExperimentsParallel(1, cfg.parallel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExperimentsGrid measures one serial pass over the §5.2
// (workload × configuration) grid — the per-cell simulation cost that
// dominates campaign wall clock. Serial on purpose: its ns/op tracks the
// simulator's hot-path efficiency across PRs (snapshotted in the
// BENCH_*.json trajectory) independent of host core count, where the
// memory fast paths and the zero-alloc interpreter show up directly.
func BenchmarkExperimentsGrid(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunAllN(1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates the dynamic-event-count rows: the metric is
// each workload's dynamic instruction ratio (instrumented / baseline).
func BenchmarkTable4(b *testing.B) {
	for _, name := range benchSubset {
		w, _ := workloads.ByName(name)
		b.Run(name, func(b *testing.B) {
			var res exp.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = exp.Run(w, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(stats.Ratio(res.Subheap.Counters.Instrs, res.Baseline.Counters.Instrs), "subheap-instr-x")
			b.ReportMetric(stats.Ratio(res.Wrapped.Counters.Instrs, res.Baseline.Counters.Instrs), "wrapped-instr-x")
			b.ReportMetric(100*stats.Ratio(res.Subheap.Counters.PromoteValid, res.Subheap.Counters.Promote), "valid-promote-%")
		})
	}
}

// BenchmarkFig10 regenerates the runtime-overhead figure (cycles vs
// baseline) for the subset.
func BenchmarkFig10(b *testing.B) {
	for _, name := range benchSubset {
		w, _ := workloads.ByName(name)
		b.Run(name, func(b *testing.B) {
			var res exp.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = exp.Run(w, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			base := res.Baseline.Counters.Cycles
			b.ReportMetric(stats.Overhead(stats.Ratio(res.Subheap.Counters.Cycles, base)), "subheap-ovh-%")
			b.ReportMetric(stats.Overhead(stats.Ratio(res.Wrapped.Counters.Cycles, base)), "wrapped-ovh-%")
			b.ReportMetric(stats.Overhead(stats.Ratio(res.SubheapNP.Counters.Cycles, base)), "subheap-nopromote-%")
		})
	}
}

// BenchmarkFig11 regenerates the IFP instruction-mix figure.
func BenchmarkFig11(b *testing.B) {
	for _, name := range benchSubset {
		w, _ := workloads.ByName(name)
		b.Run(name, func(b *testing.B) {
			var res exp.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = exp.Run(w, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			base := float64(res.Baseline.Counters.Instrs)
			c := res.Subheap.Counters
			b.ReportMetric(100*float64(c.Promote)/base, "promote-%")
			b.ReportMetric(100*float64(c.IfpArith())/base, "arith-%")
			b.ReportMetric(100*float64(c.IfpBoundsMem())/base, "bounds-ldst-%")
		})
	}
}

// BenchmarkFig12 regenerates the memory-overhead figure for a
// representative pair: the allocator win (treeadd) and the per-object-
// metadata cost (health under the wrapped allocator).
func BenchmarkFig12(b *testing.B) {
	for _, name := range []string{"treeadd", "health", "em3d"} {
		w, _ := workloads.ByName(name)
		b.Run(name, func(b *testing.B) {
			var m exp.MemResult
			var err error
			for i := 0; i < b.N; i++ {
				m, err = exp.RunMem(w, 2)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(stats.Overhead(stats.Ratio(m.Subheap, m.Baseline)), "subheap-mem-%")
			b.ReportMetric(stats.Overhead(stats.Ratio(m.Wrapped, m.Baseline)), "wrapped-mem-%")
		})
	}
}

// BenchmarkFig13 regenerates the hardware-area decomposition; the metric
// is the modelled LUT growth.
func BenchmarkFig13(b *testing.B) {
	var van, mod int
	for i := 0; i < b.N; i++ {
		van, mod = hwcost.Totals(hwcost.Model(hwcost.Default))
	}
	b.ReportMetric(float64(mod-van), "LUT-growth")
	b.ReportMetric(100*float64(mod-van)/float64(van), "LUT-growth-%")
}

// BenchmarkRelatedWork regenerates the §2/Table-1 mechanism comparison.
func BenchmarkRelatedWork(b *testing.B) {
	var ifpC, sbC, noneC uint64
	for i := 0; i < b.N; i++ {
		for _, s := range []baseline.Scheme{baseline.None, baseline.SoftBound, baseline.MPX, baseline.ASan, baseline.InFat} {
			res, err := baseline.Run(s, 800)
			if err != nil {
				b.Fatal(err)
			}
			switch s {
			case baseline.None:
				noneC = res.Cycles
			case baseline.SoftBound:
				sbC = res.Cycles
			case baseline.InFat:
				ifpC = res.Cycles
			}
		}
	}
	b.ReportMetric(stats.Overhead(stats.Ratio(ifpC, noneC)), "infat-ovh-%")
	b.ReportMetric(stats.Overhead(stats.Ratio(sbC, noneC)), "softbound-ovh-%")
}

// BenchmarkSchemes measures the three metadata schemes' promote costs in
// isolation (Table 2's efficiency dimension).
func BenchmarkSchemes(b *testing.B) {
	type prep func(*System) (uint64, error)
	cases := []struct {
		name string
		prep prep
	}{
		{"local-offset", func(s *System) (uint64, error) {
			o, err := s.Malloc(Long, 8) // wrapped-local path
			return o.P, err
		}},
		{"global-table", func(s *System) (uint64, error) {
			o, err := s.Malloc(Long, 4096)
			return o.P, err
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			sys := NewSystem(Wrapped)
			p, err := c.prep(sys)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Promote(p)
			}
		})
	}
	b.Run("subheap", func(b *testing.B) {
		sys := NewSystem(Subheap)
		o, err := sys.Malloc(Long, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Promote(o.P)
		}
	})
}

// BenchmarkInstructions measures the single-cycle IFP instruction
// implementations (Table 3).
func BenchmarkInstructions(b *testing.B) {
	sys := NewSystem(Subheap)
	o, err := sys.Malloc(Long, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ifpadd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.M.IfpAdd(o.P, 8, o.B)
		}
	})
	b.Run("ifpidx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.M.IfpIdx(o.P, 1)
		}
	})
	b.Run("ifpchk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.M.IfpChk(o.P, 8, o.B)
		}
	})
	b.Run("ifpbnd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.M.IfpBnd(o.P, 64)
		}
	})
	b.Run("ifpmac", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.M.IfpMac(o.Base(), 64, 0)
		}
	})
}

// BenchmarkASICSweep regenerates the §5.2.4 extrapolation discussion.
func BenchmarkASICSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.ASICSweep(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations regenerates the DESIGN.md design-choice ablations.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Ablations(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemReuse measures the pooled runtime lifecycle on the
// minic.ExecuteBudget path (the VM entry every RunC and ifp-serve
// request goes through): "fresh" constructs a new simulator per run (the
// pre-pool lifecycle, ReuseSystems=false), "pooled" resets and reuses
// one. The allocs/op gap is the construction churn the pool removes; the
// outputs are asserted identical, which is the determinism contract in
// miniature. Since the program interner landed, both variants share one
// compilation (ExecuteBudget interns by source hash), so the remaining
// allocs/op is pure runtime lifecycle plus per-run VM state — the number
// the CI alloc budget (TestAllocBudgetExecuteBudget) enforces.
func BenchmarkSystemReuse(b *testing.B) {
	const src = `int main() {
	long i;
	long acc = 0;
	for (i = 0; i < 50; i = i + 1) { acc = acc + i; }
	print(acc);
	return 0;
}`
	was := ReuseSystems()
	defer SetReuseSystems(was)

	run := func(b *testing.B) {
		out, exit, err := RunCBudget(src, Subheap, 0)
		if err != nil || exit != 0 || len(out) != 1 || out[0] != 1225 {
			b.Fatalf("run = (%v, %d, %v), want ([1225], 0, nil)", out, exit, err)
		}
	}
	b.Run("fresh", func(b *testing.B) {
		SetReuseSystems(false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		SetReuseSystems(true)
		run(b) // warm the pool so every measured op is a hit
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b)
		}
	})
}

// serveSeq makes every cold-path source unique across sub-benchmark
// re-runs (the harness re-enters the loop with growing b.N).
var serveSeq atomic.Uint64

// BenchmarkServeRunC measures the service layer's request latency over
// the ifp-serve HTTP stack: cold (every request a distinct program, so
// each one simulates) versus warm (identical requests served from the
// result cache). The gap is the simulation cost the LRU removes from
// repeated submissions — the service-layer perf trajectory baseline.
func BenchmarkServeRunC(b *testing.B) {
	ts := httptest.NewServer(server.New(server.Config{}))
	defer ts.Close()
	client := server.NewClient(ts.URL)
	ctx := context.Background()
	prog := func(n uint64) string {
		return fmt.Sprintf(`int main() {
	long i;
	long acc = %d;
	for (i = 0; i < 200; i = i + 1) { acc = acc + i; }
	print(acc);
	return 0;
}`, n)
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, cached, err := client.Run(ctx, server.RunRequest{Source: prog(serveSeq.Add(1))})
			if err != nil {
				b.Fatal(err)
			}
			if cached || resp.Trap != nil {
				b.Fatalf("cold request: cached=%v trap=%+v", cached, resp.Trap)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		src := prog(serveSeq.Add(1))
		if _, _, err := client.Run(ctx, server.RunRequest{Source: src}); err != nil {
			b.Fatal(err) // prime the cache
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, cached, err := client.Run(ctx, server.RunRequest{Source: src})
			if err != nil {
				b.Fatal(err)
			}
			if !cached {
				b.Fatal("warm request missed the cache")
			}
		}
	})
}
