package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"infat/internal/exp"
	"infat/internal/juliet"
	"infat/internal/machine"
	"infat/internal/mem"
	"infat/internal/memo"
	"infat/internal/minic"
	"infat/internal/netchaos"
	"infat/internal/pool"
	"infat/internal/rt"
	"infat/internal/server"
	"infat/internal/stats"
	"infat/internal/workloads"
)

// benchSchema versions the -json output so downstream tooling can detect
// format changes across BENCH_*.json files. v2 added grid_bench,
// mem_bench, and intern; v3 added batch_bench; v4 added temporal_bench;
// v5 added netchaos_bench; v6 added dispatch_bench; v7 adds memo_bench
// (all additive; the deterministic workload cycles and overheads are
// unchanged from v1).
const benchSchema = "ifp-bench/v7"

// benchJSON is the machine-readable benchmark summary -json emits: the
// §5.2 per-workload cycle counts and geomean overheads, cold-vs-warm
// serve latency, the fresh-vs-pooled runtime acquisition benchmark, the
// serial grid and memory fast-path timings, and the pool/interner
// counters accumulated while producing all of the above. Workload cycles
// and overheads are modeled (deterministic across hosts and runs); every
// *_ns_per_op and *_allocs_per_op field is host timing.
type benchJSON struct {
	Schema   string `json:"schema"`
	Scale    int    `json:"scale"`
	Parallel int    `json:"parallel"`
	Reuse    bool   `json:"reuse"`

	Workloads          []workloadJSON     `json:"workloads"`
	GeomeanOverheadPct map[string]float64 `json:"geomean_overhead_pct"`

	Serve         serveJSON    `json:"serve"`
	ReuseBench    reuseJSON    `json:"reuse_bench"`
	GridBench     gridJSON     `json:"grid_bench"`
	MemBench      memJSON      `json:"mem_bench"`
	BatchBench    batchJSON    `json:"batch_bench"`
	TemporalBench temporalJSON `json:"temporal_bench"`
	NetchaosBench netchaosJSON `json:"netchaos_bench"`
	DispatchBench dispatchJSON `json:"dispatch_bench"`
	MemoBench     memoJSON     `json:"memo_bench"`

	Pool   map[string]uint64 `json:"pool"`
	Intern map[string]int    `json:"intern"`
}

// gridJSON times one serial pass over the full §5.2 grid (every workload
// × every configuration, one worker) — the experiments-grid number the
// perf trajectory tracks across BENCH_*.json snapshots, independent of
// host core count.
type gridJSON struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// batchJSON times one whole streamed campaign through /v1/batch on a
// loopback ifp-serve: request in, NDJSON cells fanned over the worker
// pool, report reassembled byte-identical — the serving-tier number the
// perf trajectory tracks. One op is the full campaign over a fixed
// workload subset (perf + memory cells); ns_per_cell divides by the
// campaign's cell count.
type batchJSON struct {
	Workloads   int   `json:"workloads"`
	Cells       int   `json:"cells"`
	NsPerOp     int64 `json:"ns_per_op"`
	NsPerCell   int64 `json:"ns_per_cell"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// memJSON times the guest-memory access paths on a warm working set: one
// op is a store+load pair. Aligned accesses take the single-page fast
// path; straddle ops cross a page boundary and take the bounce-buffer
// slow path.
type memJSON struct {
	AlignedNsPerOp  int64 `json:"aligned_ns_per_op"`
	StraddleNsPerOp int64 `json:"straddle_ns_per_op"`
	AllocsPerOp     int64 `json:"allocs_per_op"`
}

// temporalJSON summarizes the generation-tagging mode (rt.IFPTemporal):
// the modeled per-comparison cycle cost, the geomean cycle overhead of
// ifp-temporal vs baseline over the full workload grid, the grid's total
// generation-check volume, and the CWE-415/416 detection counts under a
// spatial mode vs the temporal one. All fields are modeled/deterministic
// (no host timing).
type temporalJSON struct {
	// GenCheckCycles is the modeled cost charged per generation
	// comparison (machine.DefaultCost.GenCheckCycles).
	GenCheckCycles     uint64  `json:"gen_check_cycles"`
	GeomeanOverheadPct float64 `json:"geomean_overhead_pct"`
	GenChecks          uint64  `json:"gen_checks"`
	GenCheckFails      uint64  `json:"gen_check_fails"`
	// CWE-415/416 suite: bad-variant count and how many each mode
	// detects (spatial misses type-safe reuse by design).
	CWE415416BadCases         int `json:"cwe415416_bad_cases"`
	CWE415416DetectedSpatial  int `json:"cwe415416_detected_spatial"`
	CWE415416DetectedTemporal int `json:"cwe415416_detected_temporal"`
}

// netchaosJSON summarizes a reduced network-fault campaign: in-process
// backends behind deterministic fault-injecting proxies, the shard's
// self-healing machinery (breakers, hedging, reassignment, stream
// validation) recovering every cell. The counters are the robustness
// trajectory the BENCH_*.json series tracks — how much rescue work the
// faults forced — and the gates (zero lost, all reports byte-identical)
// fail the whole -json run if the tier regresses. wall_ms is host
// timing; everything else is deterministic under the campaign seed.
type netchaosJSON struct {
	Faults        []string `json:"faults"`
	Seeds         int      `json:"seeds"`
	Runs          int      `json:"runs"`
	Failed        int      `json:"failed"`
	Cells         int      `json:"cells"`
	Injected      uint64   `json:"injected"`
	Recovered     uint64   `json:"recovered"`
	FailedOver    uint64   `json:"failed_over"`
	Hedged        uint64   `json:"hedged"`
	Shed          uint64   `json:"shed"`
	CorruptLines  uint64   `json:"corrupt_lines"`
	DupSuppressed uint64   `json:"dup_suppressed"`
	Lost          int      `json:"lost"`
	AllIdentical  bool     `json:"all_identical"`
	WallMs        int64    `json:"wall_ms"`
}

// dispatchJSON compares the minic reference stack walker against the
// register bytecode dispatch loop on a fixed program set: host ns/op per
// program through the full ExecuteBudget path (pooled runtime, interned
// program), the superinstruction retirements of one register run of each
// program, the per-program re-lowering cost, and the geomean
// reference/register speedup. Counter equality between the two loops is
// the dispatch-equivalence suite's job; this section tracks only speed.
type dispatchJSON struct {
	Programs       []dispatchProgJSON `json:"programs"`
	SuperHits      map[string]uint64  `json:"super_hits"`
	LowerNsPerOp   int64              `json:"lower_ns_per_op"`
	GeomeanSpeedup float64            `json:"geomean_speedup"`
}

// dispatchProgJSON is one program's timing under both execution loops.
type dispatchProgJSON struct {
	Name             string `json:"name"`
	ReferenceNsPerOp int64  `json:"reference_ns_per_op"`
	RegisterNsPerOp  int64  `json:"register_ns_per_op"`
}

// memoJSON compares one cold and one warm pass over a full report-grid
// campaign (perf + memory cells, serial) through a content-addressed
// memo store: the warm pass must reassemble the byte-identical report at
// least 5x faster with every cell a hit, or the -json run fails — those
// are the memoization acceptance gates, checked on every snapshot.
// digest_ns_per_op times one canonical cell-digest composition (the cost
// a miss adds over a plain run). Wall times are host timing; the reports
// and hit counts are deterministic.
type memoJSON struct {
	Workloads     int     `json:"workloads"`
	Cells         int     `json:"cells"`
	ColdNsPerOp   int64   `json:"cold_ns_per_op"`
	WarmNsPerOp   int64   `json:"warm_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	WarmHitRate   float64 `json:"warm_hit_rate"`
	DigestNsPerOp int64   `json:"digest_ns_per_op"`
	ByteIdentical bool    `json:"byte_identical"`
}

// workloadJSON is one workload's cycle counts per configuration plus the
// instrumented configurations' overheads against baseline.
type workloadJSON struct {
	Name        string             `json:"name"`
	Suite       string             `json:"suite"`
	Cycles      map[string]uint64  `json:"cycles"`
	OverheadPct map[string]float64 `json:"overhead_pct"`
}

// serveJSON measures one /v1/run request cold (unique source, full
// compile+simulate) and warm (repeated source, LRU hit) through a real
// HTTP round trip.
type serveJSON struct {
	ColdNsPerOp     int64 `json:"cold_ns_per_op"`
	WarmNsPerOp     int64 `json:"warm_ns_per_op"`
	ColdAllocsPerOp int64 `json:"cold_allocs_per_op"`
	WarmAllocsPerOp int64 `json:"warm_allocs_per_op"`
}

// reuseJSON measures the minic.ExecuteBudget path with pooling on
// (reused runtimes) and off (a fresh runtime per run).
type reuseJSON struct {
	FreshNsPerOp      int64 `json:"fresh_ns_per_op"`
	PooledNsPerOp     int64 `json:"pooled_ns_per_op"`
	FreshAllocsPerOp  int64 `json:"fresh_allocs_per_op"`
	PooledAllocsPerOp int64 `json:"pooled_allocs_per_op"`
}

// benchModes maps the JSON keys to the five grid configurations.
var benchModes = []struct {
	key string
	get func(*exp.Result) uint64
}{
	{"baseline", func(r *exp.Result) uint64 { return r.Baseline.Counters.Cycles }},
	{"subheap", func(r *exp.Result) uint64 { return r.Subheap.Counters.Cycles }},
	{"wrapped", func(r *exp.Result) uint64 { return r.Wrapped.Counters.Cycles }},
	{"subheap_nopromote", func(r *exp.Result) uint64 { return r.SubheapNP.Counters.Cycles }},
	{"wrapped_nopromote", func(r *exp.Result) uint64 { return r.WrappedNP.Counters.Cycles }},
}

// writeBenchJSON runs the evaluation grid (reusing results when the
// caller already produced them), the serve and reuse micro-benchmarks,
// and writes the summary to path.
func writeBenchJSON(path string, results []exp.Result, scale, parallel int) error {
	if results == nil {
		r, err := exp.RunSet(workloads.All, scale, parallel)
		if err != nil {
			return err
		}
		results = r
	}

	out := benchJSON{
		Schema:             benchSchema,
		Scale:              scale,
		Parallel:           parallel,
		Reuse:              rt.ReuseSystems(),
		GeomeanOverheadPct: map[string]float64{},
	}

	ratios := map[string][]float64{}
	for i := range results {
		r := &results[i]
		w := workloadJSON{
			Name:        r.Name,
			Suite:       r.Suite,
			Cycles:      map[string]uint64{},
			OverheadPct: map[string]float64{},
		}
		for _, m := range benchModes {
			w.Cycles[m.key] = m.get(r)
			if m.key != "baseline" && r.Baseline.Counters.Cycles > 0 {
				ratio := stats.Ratio(m.get(r), r.Baseline.Counters.Cycles)
				w.OverheadPct[m.key] = stats.Overhead(ratio)
				ratios[m.key] = append(ratios[m.key], ratio)
			}
		}
		out.Workloads = append(out.Workloads, w)
	}
	for key, rs := range ratios {
		out.GeomeanOverheadPct[key] = stats.Overhead(stats.Geomean(rs))
	}

	serve, err := benchServe()
	if err != nil {
		return err
	}
	out.Serve = serve
	out.ReuseBench = benchReuse()
	out.GridBench = benchGrid(scale)
	out.MemBench = benchMem()
	batch, err := benchBatch()
	if err != nil {
		return err
	}
	out.BatchBench = batch
	temporal, err := benchTemporal(scale, parallel)
	if err != nil {
		return err
	}
	out.TemporalBench = temporal
	nc, err := benchNetchaos()
	if err != nil {
		return err
	}
	out.NetchaosBench = nc
	dispatch, err := benchDispatch()
	if err != nil {
		return err
	}
	out.DispatchBench = dispatch
	memoBench, err := benchMemo(scale)
	if err != nil {
		return err
	}
	out.MemoBench = memoBench
	ps := rt.DefaultPool.Stats()
	out.Pool = map[string]uint64{
		"hits":     ps.Hits,
		"misses":   ps.Misses,
		"releases": ps.Releases,
		"discards": ps.Discards,
		"idle":     ps.Idle,
	}
	out.Intern = map[string]int{"entries": minic.DefaultInterner.Len()}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchTemporal runs the full grid with the ifp-temporal configuration
// (a WithTemporal plan, fanned over parallel workers) and the
// CWE-415/416 suites under both a spatial mode and the temporal one, and
// folds the results into the temporal_bench section. Every number is
// modeled and deterministic across hosts.
func benchTemporal(scale, parallel int) (temporalJSON, error) {
	p := exp.NewPlan(workloads.All, scale).WithTemporal(true)
	a := p.NewAssembly()
	var mu sync.Mutex
	if err := pool.Map(parallel, p.NumCells(), func(i int) error {
		c, err := p.RunCell(i)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		return a.Add(i, c)
	}); err != nil {
		return temporalJSON{}, err
	}
	results, _, err := a.Results()
	if err != nil {
		return temporalJSON{}, err
	}

	out := temporalJSON{GenCheckCycles: machine.DefaultCost.GenCheckCycles}
	var ratios []float64
	for i := range results {
		r := &results[i]
		ratios = append(ratios, stats.Ratio(r.Temporal.Counters.Cycles, r.Baseline.Counters.Cycles))
		out.GenChecks += r.Temporal.Counters.GenChecks
		out.GenCheckFails += r.Temporal.Counters.GenCheckFails
	}
	out.GeomeanOverheadPct = stats.Overhead(stats.Geomean(ratios))

	cases := juliet.GenerateCWE415416()
	spatial := juliet.RunParallel(cases, rt.Hybrid, parallel)
	temporal := juliet.RunParallel(cases, rt.IFPTemporal, parallel)
	out.CWE415416BadCases = spatial.BadCases
	out.CWE415416DetectedSpatial = spatial.Detected
	out.CWE415416DetectedTemporal = temporal.Detected
	return out, nil
}

// benchNetchaosFaults is the reduced fault set the -json snapshot runs:
// the three stream-sabotage faults that exercise every recovery path
// (reassignment, validation, dedup) without the multi-second stalls the
// full grid's blackhole and slowloris arms pay. ifp-shard -netchaos
// remains the exhaustive gate.
var benchNetchaosFaults = []netchaos.Fault{
	netchaos.FaultNone, netchaos.FaultTruncate, netchaos.FaultCorrupt, netchaos.FaultDuplicate,
}

// benchNetchaos runs the reduced fault campaign (batch leg, one seed,
// one workload) and folds its totals into the netchaos_bench section.
// Campaign gate failures — a lost cell, a non-identical report — fail
// the benchmark run itself.
func benchNetchaos() (netchaosJSON, error) {
	start := time.Now()
	res, err := netchaos.RunCampaign(netchaos.CampaignConfig{
		Workloads: []string{"treeadd"},
		Seeds:     []uint64{1},
		FaultSet:  benchNetchaosFaults,
		SkipChaos: true,
	})
	if err != nil {
		return netchaosJSON{}, err
	}
	s := res.Summarize()
	out := netchaosJSON{
		Seeds:         1,
		Runs:          s.Runs,
		Failed:        s.Failed,
		Cells:         s.Cells,
		Injected:      s.Injected,
		Recovered:     s.Recovered,
		FailedOver:    s.FailedOver,
		Hedged:        s.Hedged,
		Shed:          s.Shed,
		CorruptLines:  s.CorruptLines,
		DupSuppressed: s.DupSuppressed,
		Lost:          s.Lost,
		AllIdentical:  s.AllIdentical,
		WallMs:        time.Since(start).Milliseconds(),
	}
	for _, f := range benchNetchaosFaults {
		out.Faults = append(out.Faults, string(f))
	}
	return out, nil
}

// benchDispatchPrograms is the fixed program set dispatch_bench times:
// recursion (call-heavy, exercises the register-window reslice after
// LCall), array loops with a constant-index store and a bare pointer
// deref (GepIdxBnd/ConstGepStore/LoadPChk fusion), and a heap
// linked-list walk (GepIdx chains over promoted pointers). Sizes are
// chosen so simulation, not compilation, dominates — compilation is
// interned away after the first run anyway.
var benchDispatchPrograms = []struct{ name, src string }{
	{"fib", `long fib(long n) {
		if (n < 2) { return n; }
		return fib(n - 1) + fib(n - 2);
	}
	int main() { print(fib(18)); return 0; }`},
	{"arrays", `int main() {
		long buf[64]; long i; long r; long acc = 0;
		long *q = &buf[3];
		for (r = 0; r < 50; r = r + 1) {
			buf[0] = r;
			for (i = 0; i < 64; i = i + 1) { buf[i] = i * r; }
			for (i = 0; i < 64; i = i + 1) { acc = acc + buf[i]; }
			acc = acc + *q;
		}
		print(acc);
		return 0;
	}`},
	{"list", `struct Node { long val; struct Node *next; };
	int main() {
		struct Node *head = (struct Node*)0;
		long i;
		for (i = 0; i < 64; i = i + 1) {
			struct Node *n = (struct Node*)malloc(sizeof(struct Node));
			n->val = i; n->next = head; head = n;
		}
		long sum = 0; long r;
		for (r = 0; r < 50; r = r + 1) {
			struct Node *it = head;
			while (it != (struct Node*)0) { sum = sum + it->val; it = it->next; }
		}
		while (head != (struct Node*)0) {
			struct Node *dead = head; head = head->next; free(dead);
		}
		print(sum);
		return 0;
	}`},
}

// benchDispatch times each program through ExecuteBudgetReference (stack
// walker) and ExecuteBudget (register dispatch), collects one register
// run's superinstruction retirements, and times re-lowering the set.
func benchDispatch() (dispatchJSON, error) {
	out := dispatchJSON{SuperHits: map[string]uint64{}}
	var ratios []float64
	for _, p := range benchDispatchPrograms {
		comp, err := minic.DefaultInterner.Get(p.src)
		if err != nil {
			return out, err
		}
		r := rt.Acquire(rt.Subheap)
		vm, err := minic.NewVM(comp, r)
		if err != nil {
			rt.Release(r)
			return out, err
		}
		if _, err := vm.Run(); err != nil {
			rt.Release(r)
			return out, fmt.Errorf("dispatch bench %s: %w", p.name, err)
		}
		for k, v := range vm.SuperHits() {
			out.SuperHits[k] += v
		}
		rt.Release(r)

		var runErr error
		ref := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := minic.ExecuteBudgetReference(p.src, rt.Subheap, 0); err != nil && runErr == nil {
					runErr = err
				}
			}
		})
		reg := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := minic.ExecuteBudget(p.src, rt.Subheap, 0); err != nil && runErr == nil {
					runErr = err
				}
			}
		})
		if runErr != nil {
			return out, runErr
		}
		out.Programs = append(out.Programs, dispatchProgJSON{
			Name:             p.name,
			ReferenceNsPerOp: ref.NsPerOp(),
			RegisterNsPerOp:  reg.NsPerOp(),
		})
		ratios = append(ratios, stats.Ratio(uint64(ref.NsPerOp()), uint64(reg.NsPerOp())))
	}
	out.GeomeanSpeedup = stats.Geomean(ratios)

	var lowerErr error
	lower := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range benchDispatchPrograms {
				comp, err := minic.DefaultInterner.Get(p.src)
				if err == nil {
					_, err = minic.Lower(comp)
				}
				if err != nil && lowerErr == nil {
					lowerErr = err
				}
			}
		}
	})
	if lowerErr != nil {
		return out, lowerErr
	}
	out.LowerNsPerOp = lower.NsPerOp() / int64(len(benchDispatchPrograms))
	return out, nil
}

// benchMemo runs the memo_bench campaign: a cold serial pass over the
// full report plan of a fixed workload subset (populating a fresh memo
// store), then a warm pass over the same plan (every cell replayed from
// the store), both reassembled through the plan's Assembly. The gates
// are the memoization acceptance contract: byte-identical reports, a
// 100% warm hit rate, and at least a 5x warm speedup.
func benchMemo(scale int) (memoJSON, error) {
	var ws []workloads.Workload
	for _, name := range benchBatchWorkloads {
		w, ok := workloads.ByName(name)
		if !ok {
			return memoJSON{}, fmt.Errorf("memo bench: unknown workload %q", name)
		}
		ws = append(ws, w)
	}
	store := memo.NewStore(memo.DefaultEntries)
	plan := exp.NewReportPlan(ws, scale, exp.MemScale).WithMemo(store)

	pass := func() (string, time.Duration, error) {
		a := plan.NewAssembly()
		start := time.Now()
		for i := 0; i < plan.NumCells(); i++ {
			c, err := plan.RunCell(i)
			if err != nil {
				return "", 0, err
			}
			if err := a.Add(i, c); err != nil {
				return "", 0, err
			}
		}
		elapsed := time.Since(start)
		rep, err := a.Report()
		return rep, elapsed, err
	}

	coldRep, coldD, err := pass()
	if err != nil {
		return memoJSON{}, err
	}
	before := store.Stats()
	warmRep, warmD, err := pass()
	if err != nil {
		return memoJSON{}, err
	}
	after := store.Stats()
	if warmD <= 0 {
		warmD = time.Nanosecond
	}

	cells := plan.NumCells()
	hits := after.Hits - before.Hits
	out := memoJSON{
		Workloads:     len(ws),
		Cells:         cells,
		ColdNsPerOp:   coldD.Nanoseconds(),
		WarmNsPerOp:   warmD.Nanoseconds(),
		Speedup:       float64(coldD) / float64(warmD),
		WarmHitRate:   float64(hits) / float64(cells),
		ByteIdentical: coldRep == warmRep,
	}
	dig := testing.Benchmark(func(b *testing.B) {
		var sink memo.Digest
		for i := 0; i < b.N; i++ {
			sink = plan.CellDigest(i % cells)
		}
		_ = sink
	})
	out.DigestNsPerOp = dig.NsPerOp()

	switch {
	case !out.ByteIdentical:
		return out, fmt.Errorf("memo bench: warm report differs from cold report")
	case hits != uint64(cells):
		return out, fmt.Errorf("memo bench: warm pass hit %d of %d cells", hits, cells)
	case out.Speedup < 5:
		return out, fmt.Errorf("memo bench: warm speedup %.1fx below the 5x gate (cold %v, warm %v)",
			out.Speedup, coldD, warmD)
	}
	return out, nil
}

// benchSrc is the program both micro-benchmarks run: small enough that
// runtime construction, not simulation, dominates the fresh path.
const benchSrc = "int main() { long i; long s; s = 0; for (i = 0; i < 50; i = i + 1) { s = s + i; } print(s); return 0; }"

// benchReuse times the ExecuteBudget path fresh (reuse off) and pooled.
// It restores the process-wide reuse setting before returning.
func benchReuse() reuseJSON {
	was := rt.ReuseSystems()
	defer rt.SetReuseSystems(was)

	measure := func(reuse bool) testing.BenchmarkResult {
		rt.SetReuseSystems(reuse)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := minic.ExecuteBudget(benchSrc, rt.Subheap, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Warm the pool so the pooled measurement hits from the first op.
	rt.SetReuseSystems(true)
	rt.Release(rt.Acquire(rt.Subheap))

	fresh := measure(false)
	pooled := measure(true)
	return reuseJSON{
		FreshNsPerOp:      fresh.NsPerOp(),
		PooledNsPerOp:     pooled.NsPerOp(),
		FreshAllocsPerOp:  fresh.AllocsPerOp(),
		PooledAllocsPerOp: pooled.AllocsPerOp(),
	}
}

// benchGrid times one serial full-grid evaluation per op (the
// BenchmarkExperimentsGrid twin, so the CLI snapshot and `go test -bench`
// measure the same thing).
func benchGrid(scale int) gridJSON {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exp.RunAllN(scale, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	return gridJSON{NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp()}
}

// benchMem times the guest-memory fast and slow paths on a warm 16-page
// working set (the BenchmarkMemLoadStore twin).
func benchMem() memJSON {
	m := mem.New()
	const span = 16 * mem.PageSize
	m.Map(0, span)
	aligned := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			addr := uint64(i) * 8 % span
			_ = m.StoreN(addr, uint64(i), 8)
			v, _ := m.LoadN(addr, 8)
			sink += v
		}
		_ = sink
	})
	straddle := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			addr := uint64(i)%14*mem.PageSize + mem.PageSize - 3
			_ = m.StoreN(addr, uint64(i), 8)
			v, _ := m.LoadN(addr, 8)
			sink += v
		}
		_ = sink
	})
	return memJSON{
		AlignedNsPerOp:  aligned.NsPerOp(),
		StraddleNsPerOp: straddle.NsPerOp(),
		AllocsPerOp:     aligned.AllocsPerOp(),
	}
}

// benchBatchWorkloads is the fixed subset the batch benchmark streams —
// small enough that one op stays in seconds, representative enough
// (olden + ptrdist + kernels) to track the serving tier's fan-out cost.
var benchBatchWorkloads = []string{"treeadd", "health", "ks"}

// benchBatch boots ifp-serve on a loopback port and times one full
// /v1/batch campaign per op: stream every perf and memory cell of the
// subset, reassemble the report.
func benchBatch() (batchJSON, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return batchJSON{}, err
	}
	srv := &http.Server{Handler: server.New(server.Config{})}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	c := server.NewClient("http://" + ln.Addr().String())
	if err := c.WaitReady(ctx, 5*time.Second); err != nil {
		return batchJSON{}, err
	}

	req := server.BatchRequest{Workloads: benchBatchWorkloads}
	plan, err := req.BatchPlan()
	if err != nil {
		return batchJSON{}, err
	}
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.BatchReport(ctx, req); err != nil && runErr == nil {
				runErr = err
			}
		}
	})
	if runErr != nil {
		return batchJSON{}, runErr
	}
	cells := plan.NumCells()
	return batchJSON{
		Workloads:   len(benchBatchWorkloads),
		Cells:       cells,
		NsPerOp:     r.NsPerOp(),
		NsPerCell:   r.NsPerOp() / int64(cells),
		AllocsPerOp: r.AllocsPerOp(),
	}, nil
}

// benchServe boots ifp-serve on a loopback port and times one /v1/run
// request cold (unique source each op: full compile+simulate) and warm
// (identical source: result-cache hit).
func benchServe() (serveJSON, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serveJSON{}, err
	}
	srv := &http.Server{Handler: server.New(server.Config{})}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := server.NewClient("http://" + ln.Addr().String())
	if err := c.WaitReady(ctx, 5*time.Second); err != nil {
		return serveJSON{}, err
	}

	var runErr error
	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src := fmt.Sprintf("int main() { print(%d); return 0; }", i)
			if _, _, err := c.Run(ctx, server.RunRequest{Source: src, Mode: "subheap"}); err != nil && runErr == nil {
				runErr = err
			}
		}
	})
	warm := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Run(ctx, server.RunRequest{Source: benchSrc, Mode: "subheap"}); err != nil && runErr == nil {
				runErr = err
			}
		}
	})
	if runErr != nil {
		return serveJSON{}, runErr
	}
	return serveJSON{
		ColdNsPerOp:     cold.NsPerOp(),
		WarmNsPerOp:     warm.NsPerOp(),
		ColdAllocsPerOp: cold.AllocsPerOp(),
		WarmAllocsPerOp: warm.AllocsPerOp(),
	}, nil
}
