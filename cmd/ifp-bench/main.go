// Command ifp-bench regenerates the paper's application evaluation (§5.2):
// Table 4 and Figures 10, 11, 12. It runs all 18 workloads in five
// configurations on the simulated machine and prints the corresponding
// table or series.
//
// Usage:
//
//	ifp-bench [-scale N] [-table4] [-fig10] [-fig11] [-fig12] [-bench name]
//
// With no selection flags, everything is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"infat/internal/baseline"
	"infat/internal/exp"
	"infat/internal/workloads"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale factor (1 = standard run)")
	memScale := flag.Int("memscale", exp.MemScale, "scale multiplier for the memory experiment (Figure 12)")
	table4 := flag.Bool("table4", false, "print Table 4 only")
	fig10 := flag.Bool("fig10", false, "print Figure 10 only")
	fig11 := flag.Bool("fig11", false, "print Figure 11 only")
	fig12 := flag.Bool("fig12", false, "print Figure 12 only")
	bench := flag.String("bench", "", "run a single named workload")
	ablations := flag.Bool("ablations", false, "print the design-choice ablations and tag-layout trade-off")
	hybrid := flag.Bool("hybrid", false, "print the hybrid (dynamic allocator selection) comparison")
	asic := flag.Bool("asic", false, "print the §5.2.4 ASIC extrapolation sweep")
	related := flag.Bool("related", false, "print the related-work comparison")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ifp-bench:", err)
		os.Exit(1)
	}

	selected := workloads.All
	if *bench != "" {
		w, ok := workloads.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "ifp-bench: unknown workload %q\n", *bench)
			os.Exit(2)
		}
		selected = []workloads.Workload{w}
	}

	if *ablations {
		out, err := exp.Ablations(*scale)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		fmt.Println(exp.TagLayouts())
		return
	}
	if *hybrid {
		out, err := exp.HybridReport(*scale)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		return
	}
	if *asic {
		out, err := exp.ASICSweep(*scale)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		return
	}
	if *related {
		out, err := baseline.Compare(1500)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		return
	}

	any := *table4 || *fig10 || *fig11 || *fig12
	needPerf := !any || *table4 || *fig10 || *fig11
	needMem := !any || *fig12

	var results []exp.Result
	if needPerf {
		for _, w := range selected {
			r, err := exp.Run(w, *scale)
			if err != nil {
				fail(err)
			}
			results = append(results, r)
		}
	}
	var mem []exp.MemResult
	if needMem {
		for _, w := range selected {
			m, err := exp.RunMem(w, *scale**memScale)
			if err != nil {
				fail(err)
			}
			mem = append(mem, m)
		}
	}

	if !any || *table4 {
		fmt.Println(exp.Table4(results))
	}
	if !any || *fig10 {
		fmt.Println(exp.Fig10(results))
	}
	if !any || *fig11 {
		fmt.Println(exp.Fig11(results))
	}
	if !any || *fig12 {
		fmt.Println(exp.Fig12(mem))
	}
}
