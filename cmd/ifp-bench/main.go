// Command ifp-bench regenerates the paper's application evaluation (§5.2):
// Table 4 and Figures 10, 11, 12. It runs all 18 workloads in five
// configurations on the simulated machine and prints the corresponding
// table or series.
//
// Usage:
//
//	ifp-bench [-scale N] [-parallel N] [-table4] [-fig10] [-fig11] [-fig12] [-bench name] [-chaos]
//	          [-temporal] [-memo] [-memo-dir DIR] [-json path] [-cpuprofile path] [-memprofile path]
//
// With no selection flags, everything is printed. The (workload ×
// configuration) grid fans out over -parallel worker goroutines (default:
// the number of CPUs); every cell runs in its own isolated runtime and
// results are collected deterministically, so the output is byte-identical
// at any worker count. -parallel 1 restores the fully serial run.
// -memo routes the main report grid through a content-addressed memo
// store, so repeated cells within one invocation replay instead of
// re-simulating; -memo-dir additionally loads the store's snapshot at
// startup and saves it on exit, making repeated invocations warm (a
// corrupt or version-skewed snapshot is discarded and recomputed, never
// trusted). Reports are byte-identical with memoization on or off.
// -cpuprofile and -memprofile write pprof-format host profiles of the
// selected run, so perf work starts from a measurement instead of a guess.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"infat/internal/baseline"
	"infat/internal/chaos"
	"infat/internal/exp"
	"infat/internal/memo"
	"infat/internal/rt"
	"infat/internal/workloads"
)

// main delegates to run so deferred teardown (profile flushing in
// particular) executes on every exit path before the process status is
// set; os.Exit would skip it.
func main() { os.Exit(run()) }

func run() int {
	scale := flag.Int("scale", 1, "workload scale factor (1 = standard run)")
	memScale := flag.Int("memscale", exp.MemScale, "scale multiplier for the memory experiment (Figure 12)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for the evaluation grid (1 = serial)")
	table4 := flag.Bool("table4", false, "print Table 4 only")
	fig10 := flag.Bool("fig10", false, "print Figure 10 only")
	fig11 := flag.Bool("fig11", false, "print Figure 11 only")
	fig12 := flag.Bool("fig12", false, "print Figure 12 only")
	bench := flag.String("bench", "", "run a single named workload")
	ablations := flag.Bool("ablations", false, "print the design-choice ablations and tag-layout trade-off")
	chaosFlag := flag.Bool("chaos", false, "run the fault-injection campaign (DESIGN.md §10); exit 1 on any internal outcome")
	hybrid := flag.Bool("hybrid", false, "print the hybrid (dynamic allocator selection) comparison")
	asic := flag.Bool("asic", false, "print the §5.2.4 ASIC extrapolation sweep")
	related := flag.Bool("related", false, "print the related-work comparison")
	temporal := flag.Bool("temporal", false, "print the temporal axis: generation-tagging overhead over the grid plus CWE-415/416 detection rates")
	memoFlag := flag.Bool("memo", false, "memoize report-grid cells in a content-addressed store (byte-identical output, warm cells replayed)")
	memoDir := flag.String("memo-dir", "", "load the memo snapshot from DIR at startup and save it on exit (implies -memo)")
	jsonPath := flag.String("json", "", "write a machine-readable benchmark summary (cycles, overheads, serve/grid/mem timings, pool and interner stats) to this path")
	noReuse := flag.Bool("no-reuse", false, "disable runtime pooling: construct a fresh simulator per cell")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path (pprof format)")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this path on exit (pprof format)")
	flag.Parse()

	if *noReuse {
		rt.SetReuseSystems(false)
	}

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "ifp-bench:", err)
		return 1
	}

	// The memo store (when enabled) backs the main report grid: warm
	// cells replay instead of re-simulating. With -memo-dir the store
	// round-trips through a snapshot file, so a second invocation starts
	// warm; a bad snapshot is reported and recomputed from scratch.
	var store *memo.Store
	if *memoFlag || *memoDir != "" {
		store = memo.NewStore(memo.DefaultEntries)
		if *memoDir != "" {
			if err := store.LoadSnapshot(*memoDir); err != nil {
				fmt.Fprintln(os.Stderr, "ifp-bench: memo snapshot discarded:", err)
			}
			defer func() {
				if err := store.SaveSnapshot(*memoDir); err != nil {
					fmt.Fprintln(os.Stderr, "ifp-bench: memo snapshot save:", err)
				}
			}()
		}
	}

	// Profiles bracket the whole run so a future perf PR starts from a
	// measured flame graph of exactly the command it wants to speed up
	// (e.g. `ifp-bench -cpuprofile cpu.out -parallel 1`).
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ifp-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live + cumulative truth
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ifp-bench:", err)
			}
		}()
	}

	selected := workloads.All
	if *bench != "" {
		w, ok := workloads.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "ifp-bench: unknown workload %q\n", *bench)
			return 2
		}
		selected = []workloads.Workload{w}
	}

	if *chaosFlag {
		outcomes := exp.ChaosCampaignN(*scale, *parallel)
		fmt.Println(chaos.Report(outcomes))
		if internal := chaos.Summarize(outcomes).Internal; internal > 0 {
			fmt.Fprintf(os.Stderr, "ifp-bench: %d internal outcomes (simulator bugs)\n", internal)
			return 1
		}
		return 0
	}
	if *ablations {
		out, err := exp.AblationsN(*scale, *parallel)
		if err != nil {
			return fail(err)
		}
		fmt.Println(out)
		fmt.Println(exp.TagLayouts())
		return 0
	}
	if *hybrid {
		out, err := exp.HybridReportN(*scale, *parallel)
		if err != nil {
			return fail(err)
		}
		fmt.Println(out)
		return 0
	}
	if *asic {
		out, err := exp.ASICSweep(*scale)
		if err != nil {
			return fail(err)
		}
		fmt.Println(out)
		return 0
	}
	if *related {
		out, err := baseline.Compare(1500)
		if err != nil {
			return fail(err)
		}
		fmt.Println(out)
		return 0
	}
	if *temporal {
		out, err := exp.TemporalReportN(*scale, *parallel)
		if err != nil {
			return fail(err)
		}
		fmt.Println(out)
		return 0
	}

	// -json alone emits the summary without the printed reports; combined
	// with report flags it reuses the grid results computed for them.
	any := *table4 || *fig10 || *fig11 || *fig12
	if *jsonPath != "" && !any {
		if err := writeBenchJSON(*jsonPath, nil, *scale, *parallel); err != nil {
			return fail(err)
		}
		fmt.Fprintln(os.Stderr, "ifp-bench: wrote", *jsonPath)
		return 0
	}
	needPerf := !any || *table4 || *fig10 || *fig11
	needMem := !any || *fig12

	var results []exp.Result
	if needPerf {
		r, err := exp.RunSetMemo(store, selected, *scale, *parallel)
		if err != nil {
			return fail(err)
		}
		results = r
	}
	var mem []exp.MemResult
	if needMem {
		m, err := exp.RunMemSetMemo(store, selected, *scale**memScale, *parallel)
		if err != nil {
			return fail(err)
		}
		mem = m
	}

	if !any || *table4 {
		fmt.Println(exp.Table4(results))
	}
	if !any || *fig10 {
		fmt.Println(exp.Fig10(results))
	}
	if !any || *fig11 {
		fmt.Println(exp.Fig11(results))
	}
	if !any || *fig12 {
		fmt.Println(exp.Fig12(mem))
	}
	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath, results, *scale, *parallel); err != nil {
			return fail(err)
		}
		fmt.Fprintln(os.Stderr, "ifp-bench: wrote", *jsonPath)
	}
	return 0
}
