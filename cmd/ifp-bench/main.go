// Command ifp-bench regenerates the paper's application evaluation (§5.2):
// Table 4 and Figures 10, 11, 12. It runs all 18 workloads in five
// configurations on the simulated machine and prints the corresponding
// table or series.
//
// Usage:
//
//	ifp-bench [-scale N] [-parallel N] [-table4] [-fig10] [-fig11] [-fig12] [-bench name] [-chaos]
//
// With no selection flags, everything is printed. The (workload ×
// configuration) grid fans out over -parallel worker goroutines (default:
// the number of CPUs); every cell runs in its own isolated runtime and
// results are collected deterministically, so the output is byte-identical
// at any worker count. -parallel 1 restores the fully serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"infat/internal/baseline"
	"infat/internal/chaos"
	"infat/internal/exp"
	"infat/internal/rt"
	"infat/internal/workloads"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale factor (1 = standard run)")
	memScale := flag.Int("memscale", exp.MemScale, "scale multiplier for the memory experiment (Figure 12)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for the evaluation grid (1 = serial)")
	table4 := flag.Bool("table4", false, "print Table 4 only")
	fig10 := flag.Bool("fig10", false, "print Figure 10 only")
	fig11 := flag.Bool("fig11", false, "print Figure 11 only")
	fig12 := flag.Bool("fig12", false, "print Figure 12 only")
	bench := flag.String("bench", "", "run a single named workload")
	ablations := flag.Bool("ablations", false, "print the design-choice ablations and tag-layout trade-off")
	chaosFlag := flag.Bool("chaos", false, "run the fault-injection campaign (DESIGN.md §10); exit 1 on any internal outcome")
	hybrid := flag.Bool("hybrid", false, "print the hybrid (dynamic allocator selection) comparison")
	asic := flag.Bool("asic", false, "print the §5.2.4 ASIC extrapolation sweep")
	related := flag.Bool("related", false, "print the related-work comparison")
	jsonPath := flag.String("json", "", "write a machine-readable benchmark summary (cycles, overheads, serve latency, pool stats) to this path")
	noReuse := flag.Bool("no-reuse", false, "disable runtime pooling: construct a fresh simulator per cell")
	flag.Parse()

	if *noReuse {
		rt.SetReuseSystems(false)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ifp-bench:", err)
		os.Exit(1)
	}

	selected := workloads.All
	if *bench != "" {
		w, ok := workloads.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "ifp-bench: unknown workload %q\n", *bench)
			os.Exit(2)
		}
		selected = []workloads.Workload{w}
	}

	if *chaosFlag {
		outcomes := exp.ChaosCampaignN(*scale, *parallel)
		fmt.Println(chaos.Report(outcomes))
		if internal := chaos.Summarize(outcomes).Internal; internal > 0 {
			fmt.Fprintf(os.Stderr, "ifp-bench: %d internal outcomes (simulator bugs)\n", internal)
			os.Exit(1)
		}
		return
	}
	if *ablations {
		out, err := exp.AblationsN(*scale, *parallel)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		fmt.Println(exp.TagLayouts())
		return
	}
	if *hybrid {
		out, err := exp.HybridReportN(*scale, *parallel)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		return
	}
	if *asic {
		out, err := exp.ASICSweep(*scale)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		return
	}
	if *related {
		out, err := baseline.Compare(1500)
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		return
	}

	// -json alone emits the summary without the printed reports; combined
	// with report flags it reuses the grid results computed for them.
	any := *table4 || *fig10 || *fig11 || *fig12
	if *jsonPath != "" && !any {
		if err := writeBenchJSON(*jsonPath, nil, *scale, *parallel); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "ifp-bench: wrote", *jsonPath)
		return
	}
	needPerf := !any || *table4 || *fig10 || *fig11
	needMem := !any || *fig12

	var results []exp.Result
	if needPerf {
		r, err := exp.RunSet(selected, *scale, *parallel)
		if err != nil {
			fail(err)
		}
		results = r
	}
	var mem []exp.MemResult
	if needMem {
		m, err := exp.RunMemSet(selected, *scale**memScale, *parallel)
		if err != nil {
			fail(err)
		}
		mem = m
	}

	if !any || *table4 {
		fmt.Println(exp.Table4(results))
	}
	if !any || *fig10 {
		fmt.Println(exp.Fig10(results))
	}
	if !any || *fig11 {
		fmt.Println(exp.Fig11(results))
	}
	if !any || *fig12 {
		fmt.Println(exp.Fig12(mem))
	}
	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath, results, *scale, *parallel); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "ifp-bench: wrote", *jsonPath)
	}
}
