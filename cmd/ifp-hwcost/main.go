// Command ifp-hwcost prints the Figure-13 hardware area decomposition and
// the §5.3 ablation table from the calibrated LUT model.
//
// Usage:
//
//	ifp-hwcost [-no-walker] [-no-mac] [-bounds-regs N]
//
// Flags modify the configuration so design-space points other than the
// paper's prototype can be inspected.
package main

import (
	"flag"
	"fmt"

	"infat/internal/hwcost"
)

func main() {
	noWalker := flag.Bool("no-walker", false, "drop the layout-table walker")
	noMAC := flag.Bool("no-mac", false, "drop the metadata MAC unit")
	boundsRegs := flag.Int("bounds-regs", 32, "number of bounds registers")
	flag.Parse()

	cfg := hwcost.Default
	cfg.LayoutWalk = !*noWalker
	cfg.MAC = !*noMAC
	cfg.BoundsRegs = *boundsRegs
	if *boundsRegs == 0 {
		cfg.ImplicitChk = false
	}

	fmt.Println(hwcost.Fig13(cfg))
	if cfg == hwcost.Default {
		fmt.Println(hwcost.Ablations())
	}
}
