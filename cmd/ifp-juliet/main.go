// Command ifp-juliet runs the Juliet-style functional evaluation (§5.1):
// it generates MiniC test programs for the selected CWE families (stack/
// heap buffer overflow, underwrite, over-read, under-read, plus intra-
// object variants), runs good and bad versions under both allocator
// configurations, and reports detection results.
//
// -mode ifp-temporal evaluates the generation-tagging mode instead: the
// spatial suite minus the intra-object families (the tag bits carry the
// generation, so subobject granularity is out of scope by design) plus
// the CWE-415 (double free) and CWE-416 (use-after-free) families.
//
// Usage:
//
//	ifp-juliet [-mode subheap|wrapped|both|ifp-temporal] [-parallel N] [-v] [-case name]
//
// Cases fan out over -parallel worker goroutines (default: the number of
// CPUs); each case compiles and runs in its own isolated runtime, and the
// summary is aggregated in case order, so the report is identical at any
// worker count. -parallel 1 restores the fully serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"infat/internal/juliet"
	"infat/internal/rt"
)

func main() {
	modeFlag := flag.String("mode", "both", "allocator configuration: subheap, wrapped, both, or ifp-temporal")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for the case grid (1 = serial)")
	verbose := flag.Bool("v", false, "list every case outcome")
	caseName := flag.String("case", "", "run (and print) a single named case")
	flag.Parse()

	cases := juliet.Generate()

	if *caseName != "" {
		// Temporal cases are addressable too; they print the ifp-temporal
		// verdict alongside the spatial ones.
		for _, c := range append(cases, juliet.GenerateCWE415416()...) {
			if c.Name == *caseName {
				fmt.Printf("--- %s (CWE %s, bad=%v)\n%s\n", c.Name, c.CWE, c.Bad, c.Src)
				o := juliet.RunCase(c, rt.Subheap)
				fmt.Printf("subheap: %v %s\n", o.Verdict, o.Detail)
				o = juliet.RunCase(c, rt.Wrapped)
				fmt.Printf("wrapped: %v %s\n", o.Verdict, o.Detail)
				o = juliet.RunCase(c, rt.IFPTemporal)
				fmt.Printf("ifp-temporal: %v %s\n", o.Verdict, o.Detail)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "ifp-juliet: no case named %q\n", *caseName)
		os.Exit(2)
	}

	var modes []rt.Mode
	switch *modeFlag {
	case "subheap":
		modes = []rt.Mode{rt.Subheap}
	case "wrapped":
		modes = []rt.Mode{rt.Wrapped}
	case "both":
		modes = []rt.Mode{rt.Subheap, rt.Wrapped}
	case "ifp-temporal":
		modes = []rt.Mode{rt.IFPTemporal}
	default:
		fmt.Fprintf(os.Stderr, "ifp-juliet: unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	// The temporal mode spends the tag bits on the generation, so the
	// intra-object families are out of scope by design; it gains the
	// CWE-415/416 temporal families instead.
	casesFor := func(mode rt.Mode) []juliet.Case {
		if mode != rt.IFPTemporal {
			return cases
		}
		var out []juliet.Case
		for _, c := range cases {
			if c.CWE != "INTRA" {
				out = append(out, c)
			}
		}
		return append(out, juliet.GenerateCWE415416()...)
	}

	exit := 0
	for _, mode := range modes {
		s := juliet.RunParallel(casesFor(mode), mode, *parallel)
		fmt.Printf("=== %v allocator ===\n%s", mode, s.Report())
		if *verbose {
			for _, o := range s.Outcomes {
				fmt.Printf("  %-40s %v\n", o.Case.Name, o.Verdict)
			}
		}
		if s.Missed > 0 || s.FalsePositives > 0 || s.Errors > 0 {
			exit = 1
			for _, f := range s.Failures() {
				fmt.Printf("  FAIL %-40s %v %s\n", f.Case.Name, f.Verdict, f.Detail)
			}
		}
		fmt.Println()
	}
	os.Exit(exit)
}
