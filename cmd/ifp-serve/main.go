// Command ifp-serve is the analysis-as-a-service daemon: it serves the
// In-Fat Pointer simulator over HTTP/JSON, turning the check-a-program
// pipeline into a long-running, admission-controlled service. Submit a
// MiniC program and get back the spatial-safety verdict, trap
// classification, printed output, and machine counters; run single
// Juliet cases or §5.2 workload cells; scrape /healthz and /metrics.
//
// Usage:
//
//	ifp-serve [-addr :8080] [-workers N] [-cache N] [-memo-dir DIR]
//	          [-fuel CYCLES] [-max-fuel CYCLES] [-timeout D]
//	          [-max-source BYTES] [-pprof ADDR] [-selftest]
//
// Every run executes under a cycle fuel budget, so a submitted infinite
// loop traps (class "fuel") instead of pinning a worker; request-chosen
// budgets are clamped to -max-fuel. SIGINT/SIGTERM
// trigger a graceful shutdown: the listener closes, in-flight requests
// drain (bounded by -timeout and the fuel budget), then the process
// exits. -selftest starts the server on a loopback port, drives every
// endpoint through the bundled client, and exits non-zero on any
// failure — the CI smoke test.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for the -pprof listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"infat/internal/rt"
	"infat/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = number of CPUs)")
	cacheN := flag.Int("cache", server.DefaultCacheEntries, "memo store capacity (entries; run results and campaign cells share it)")
	memoDir := flag.String("memo-dir", "", "load the memo snapshot from DIR at startup and save it on graceful shutdown; empty keeps the store memory-only")
	fuel := flag.Uint64("fuel", server.DefaultFuel, "default per-run cycle budget")
	maxFuel := flag.Uint64("max-fuel", server.DefaultMaxFuel, "cap on request-chosen cycle budgets")
	timeout := flag.Duration("timeout", server.DefaultRequestTimeout, "per-request deadline")
	maxSource := flag.Int("max-source", server.DefaultMaxSourceBytes, "max submitted source size (bytes)")
	selftest := flag.Bool("selftest", false, "start on a loopback port, exercise every endpoint, exit")
	noReuse := flag.Bool("no-reuse", false, "disable runtime pooling: construct a fresh simulator per request")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	flag.Parse()

	if *noReuse {
		rt.SetReuseSystems(false)
	}

	// The pprof endpoint lives on its own listener, never the service
	// address: profiling stays an operator decision and is not reachable
	// through whatever exposes the API port. The debug mux is the
	// net/http/pprof default set (/debug/pprof/profile, /heap, /allocs,
	// /goroutine, ...), so future perf PRs profile the live service
	// under real traffic instead of guessing.
	if *pprofAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "ifp-serve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ifp-serve: pprof:", err)
			}
		}()
	}

	cfg := server.Config{
		Workers:        *workers,
		RequestTimeout: *timeout,
		CacheEntries:   *cacheN,
		MemoDir:        *memoDir,
		Fuel:           *fuel,
		MaxFuel:        *maxFuel,
		MaxSourceBytes: *maxSource,
	}
	if *selftest {
		if err := runSelftest(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "ifp-serve: selftest FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("ifp-serve: selftest ok")
		return
	}

	app := server.New(cfg)
	srv := &http.Server{Addr: *addr, Handler: app}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ifp-serve: listening on %s (workers=%d, fuel=%d, timeout=%v)\n",
		*addr, app.Config().Workers, *fuel, *timeout)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "ifp-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight requests. The
	// drain is bounded: every request has a deadline and every run a
	// fuel budget.
	fmt.Fprintln(os.Stderr, "ifp-serve: signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *timeout+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "ifp-serve: forced shutdown:", err)
		os.Exit(1)
	}
	// Persist the memo store after the drain, so the snapshot includes
	// everything the final requests computed.
	if *memoDir != "" {
		if err := app.SaveMemo(); err != nil {
			fmt.Fprintln(os.Stderr, "ifp-serve: memo snapshot:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ifp-serve: memo snapshot saved to %s\n", *memoDir)
	}
}

// runSelftest boots the service on a loopback listener and drives every
// endpoint through the client, checking the contract end to end: clean
// runs, cache hits, spatial and fuel trap classification, a Juliet
// case, a workload cell, and the metrics counters all of that should
// have moved.
func runSelftest(cfg server.Config) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: server.New(cfg)}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := server.NewClient("http://" + ln.Addr().String())
	if err := c.WaitReady(ctx, 5*time.Second); err != nil {
		return err
	}

	step := func(name string, fn func() error) error {
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println("ifp-serve: selftest:", name, "ok")
		return nil
	}

	const good = "int main() { print(42); return 7; }"
	steps := []struct {
		name string
		fn   func() error
	}{
		{"run clean program", func() error {
			resp, cached, err := c.Run(ctx, server.RunRequest{Source: good, Mode: "subheap"})
			if err != nil {
				return err
			}
			if cached || resp.Trap != nil || resp.Exit != 7 ||
				len(resp.Output) != 1 || resp.Output[0] != 42 || resp.Counters.Instrs == 0 {
				return fmt.Errorf("unexpected response %+v (cached=%v)", resp, cached)
			}
			return nil
		}},
		{"identical submission served from cache", func() error {
			resp, cached, err := c.Run(ctx, server.RunRequest{Source: good, Mode: "subheap"})
			if err != nil {
				return err
			}
			if !cached || resp.Exit != 7 {
				return fmt.Errorf("expected cache hit, got cached=%v exit=%d", cached, resp.Exit)
			}
			return nil
		}},
		{"overflow classified as spatial trap", func() error {
			src := `int main() {
				char buf[8];
				long i;
				for (i = 0; i <= 8; i = i + 1) { buf[i] = 'A'; }
				return 0;
			}`
			resp, _, err := c.Run(ctx, server.RunRequest{Source: src, Mode: "subheap"})
			if err != nil {
				return err
			}
			if resp.Trap == nil || resp.Trap.Class != "spatial" {
				return fmt.Errorf("expected spatial trap, got %+v", resp.Trap)
			}
			return nil
		}},
		{"infinite loop terminated by fuel budget", func() error {
			resp, _, err := c.Run(ctx, server.RunRequest{
				Source: "int main() { while (1) { } return 0; }",
				Fuel:   1_000_000,
			})
			if err != nil {
				return err
			}
			if resp.Trap == nil || resp.Trap.Class != "fuel" {
				return fmt.Errorf("expected fuel trap, got %+v", resp.Trap)
			}
			return nil
		}},
		{"juliet case detected", func() error {
			names, err := c.JulietCases(ctx)
			if err != nil {
				return err
			}
			if len(names) == 0 {
				return errors.New("empty case list")
			}
			resp, err := c.Juliet(ctx, server.JulietRequest{Case: "CWE121_stack_direct_bad", Mode: "subheap"})
			if err != nil {
				return err
			}
			if resp.Verdict != "pass" {
				return fmt.Errorf("verdict %q detail %q", resp.Verdict, resp.Detail)
			}
			return nil
		}},
		{"workload cell", func() error {
			resp, err := c.Workload(ctx, server.WorkloadRequest{Name: "treeadd", Mode: "subheap"})
			if err != nil {
				return err
			}
			if resp.Counters.Instrs == 0 || resp.Suite != "olden" {
				return fmt.Errorf("unexpected response %+v", resp)
			}
			return nil
		}},
		{"metrics reflect the run", func() error {
			m, err := c.Metrics(ctx)
			if err != nil {
				return err
			}
			switch {
			case m.Requests["run"] < 4:
				return fmt.Errorf("run requests = %d, want >= 4", m.Requests["run"])
			case m.Cache["hits"] < 1 || m.Cache["misses"] < 3:
				return fmt.Errorf("cache counters %v", m.Cache)
			case m.Memo["entries"] < 1 || m.Memo["bytes"] == 0:
				return fmt.Errorf("memo counters %v", m.Memo)
			case m.Traps["spatial"] < 1 || m.Traps["fuel"] < 1 || m.Traps["none"] < 1:
				return fmt.Errorf("trap counters %v", m.Traps)
			}
			return nil
		}},
	}
	for _, st := range steps {
		if err := step(st.name, st.fn); err != nil {
			return err
		}
	}
	return nil
}
