// Command ifp-shard is the scale-out front tier: one endpoint serving
// the full ifp-serve API over a fleet of backend ifp-serve processes.
// Requests are consistently hashed across the backends — /v1/run by
// sha256(source), the batch campaigns cell-by-cell by stable plan key —
// so every backend's interner and result cache stay hot on a stable
// subset of the key space. Backends are health-checked; a lost backend
// is drained (its batch cells reassigned to survivors) and rejoins on
// recovery. GET /metrics aggregates the whole fleet.
//
// Usage:
//
//	ifp-shard -backends http://h1:8080,http://h2:8080 [-addr :8090]
//	          [-replicas N] [-health-interval D] [-down-after N]
//	          [-wait D] [-selftest] [-netchaos]
//
// -wait blocks startup until every backend answers /healthz (0 skips
// the wait; backends that are still down merely start drained).
// SIGINT/SIGTERM drain in-flight requests and exit. -selftest boots two
// in-process backends plus the shard on loopback ports, proves the
// routed, fanned-out, and failed-over answers byte-identical to a
// serial run, and exits non-zero on any failure — the CI smoke test.
// -netchaos runs the full network-fault campaign: in-process backends
// behind deterministic fault-injecting proxies (latency, refused/reset
// connections, blackholes, truncation, corruption, duplication,
// slowloris), gating on zero lost, zero duplicated, zero
// corrupt-accepted cells and byte-identical reports — the CI
// resilience gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"infat/internal/server"
	"infat/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	backends := flag.String("backends", "", "comma-separated ifp-serve base URLs (required unless -selftest)")
	replicas := flag.Int("replicas", shard.DefaultReplicas, "virtual nodes per backend on the hash ring")
	healthInterval := flag.Duration("health-interval", shard.DefaultHealthInterval, "backend health probe period")
	downAfter := flag.Int("down-after", shard.DefaultDownAfter, "consecutive probe failures before a backend is drained")
	wait := flag.Duration("wait", 0, "wait for every backend to be healthy before serving (0 = don't wait)")
	selftest := flag.Bool("selftest", false, "boot two in-process backends and the shard, verify equivalence, exit")
	netchaosFlag := flag.Bool("netchaos", false, "run the full network-fault campaign grid against an in-process faulted fleet, verify self-healing, exit")
	flag.Parse()

	if *selftest {
		if err := runSelftest(); err != nil {
			fmt.Fprintln(os.Stderr, "ifp-shard: selftest FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("ifp-shard: selftest ok")
		return
	}
	if *netchaosFlag {
		if err := runNetchaos(); err != nil {
			fmt.Fprintln(os.Stderr, "ifp-shard: netchaos FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("ifp-shard: netchaos ok")
		return
	}

	urls := splitBackends(*backends)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "ifp-shard: -backends is required")
		os.Exit(2)
	}
	if *wait > 0 {
		for _, u := range urls {
			if err := server.NewClient(u).WaitReady(context.Background(), *wait); err != nil {
				fmt.Fprintln(os.Stderr, "ifp-shard:", err)
				os.Exit(1)
			}
		}
	}
	front, err := shard.New(shard.Config{
		Backends:       urls,
		Replicas:       *replicas,
		HealthInterval: *healthInterval,
		DownAfter:      *downAfter,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifp-shard:", err)
		os.Exit(1)
	}
	defer front.Close()

	srv := &http.Server{Addr: *addr, Handler: front}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ifp-shard: listening on %s over %d backends\n", *addr, len(urls))

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "ifp-shard:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "ifp-shard: signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), server.DefaultBatchTimeout+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "ifp-shard: forced shutdown:", err)
		os.Exit(1)
	}
}

func splitBackends(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	return urls
}
