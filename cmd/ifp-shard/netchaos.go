package main

import (
	"fmt"

	"infat/internal/netchaos"
)

// runNetchaos executes the full network-fault campaign grid — every
// injectable fault × seed × {batch, chaos} — against an in-process
// fleet fronted by fault proxies, and reports the verdict. The gates
// (zero lost cells, zero corrupt-accepted cells, byte-identical
// reports, sabotage observed) are enforced inside RunCampaign; this is
// the CI entry point.
func runNetchaos() error {
	res, err := netchaos.RunCampaign(netchaos.CampaignConfig{
		Logf: func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	if res != nil {
		s := res.Summarize()
		fmt.Printf("ifp-shard: netchaos: %d runs (%d failed), %d cells, %d faults injected, "+
			"%d recovered, %d failed-over, %d hedged, %d shed, %d corrupt lines rejected, "+
			"%d duplicates suppressed, %d lost\n",
			s.Runs, s.Failed, s.Cells, s.Injected, s.Recovered, s.FailedOver, s.Hedged,
			s.Shed, s.CorruptLines, s.DupSuppressed, s.Lost)
	}
	return err
}
