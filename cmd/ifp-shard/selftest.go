package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"infat/internal/exp"
	"infat/internal/server"
	"infat/internal/shard"
	"infat/internal/workloads"
)

// selftestWorkloads is a representative subset so the selftest proves
// the full perf+memory reassembly contract in seconds, not minutes.
var selftestWorkloads = []string{"treeadd", "health", "ks"}

// runSelftest boots two in-process ifp-serve backends and the shard
// front tier on loopback ports, then proves the tier's core contracts
// end to end: consistent routing (a repeated run hits the owning
// backend's cache), batch fan-out reassembling byte-identical to a
// serial run, chaos campaign equivalence, fleet metrics aggregation,
// and failover — one backend killed mid-fleet, the report still exact.
func runSelftest() error {
	backendSrvs := make([]*http.Server, 2)
	urls := make([]string, 2)
	for i := range backendSrvs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		backendSrvs[i] = &http.Server{Handler: server.New(server.Config{})}
		go backendSrvs[i].Serve(ln)
		defer backendSrvs[i].Close()
		urls[i] = "http://" + ln.Addr().String()
	}

	front, err := shard.New(shard.Config{
		Backends:       urls,
		HealthInterval: 50 * time.Millisecond,
		HealthTimeout:  time.Second,
		DownAfter:      1,
	})
	if err != nil {
		return err
	}
	defer front.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: front}
	go srv.Serve(ln)
	defer srv.Close()
	shardURL := "http://" + ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := server.NewClient(shardURL)
	if err := c.WaitReady(ctx, 5*time.Second); err != nil {
		return err
	}

	// The serial ground truth the shard must reproduce byte-for-byte.
	var ws []workloads.Workload
	for _, name := range selftestWorkloads {
		w, ok := workloads.ByName(name)
		if !ok {
			return fmt.Errorf("unknown selftest workload %q", name)
		}
		ws = append(ws, w)
	}
	workers := runtime.NumCPU()
	serialResults, err := exp.RunSet(ws, 1, workers)
	if err != nil {
		return err
	}
	serialMem, err := exp.RunMemSet(ws, exp.MemScale, workers)
	if err != nil {
		return err
	}
	wantReport := exp.Report(serialResults, serialMem)
	wantChaos, wantInternal := exp.ChaosReport(1, workers)

	step := func(name string, fn func() error) error {
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println("ifp-shard: selftest:", name, "ok")
		return nil
	}

	const good = "int main() { print(42); return 7; }"
	steps := []struct {
		name string
		fn   func() error
	}{
		{"routed run lands on one backend", func() error {
			resp, cached, err := c.Run(ctx, server.RunRequest{Source: good, Mode: "subheap"})
			if err != nil {
				return err
			}
			if cached || resp.Exit != 7 {
				return fmt.Errorf("first run: cached=%v exit=%d", cached, resp.Exit)
			}
			// The repeat must route to the same backend and hit its cache —
			// the consistent-hashing contract observed from outside.
			if _, cached, err = c.Run(ctx, server.RunRequest{Source: good, Mode: "subheap"}); err != nil {
				return err
			}
			if !cached {
				return errors.New("repeated run was not a cache hit: routing is unstable")
			}
			return nil
		}},
		{"fanned-out batch reassembles byte-identical", func() error {
			got, err := c.BatchReport(ctx, server.BatchRequest{Workloads: selftestWorkloads})
			if err != nil {
				return err
			}
			if got != wantReport {
				return errors.New("shard batch report differs from serial run")
			}
			return nil
		}},
		{"chaos campaign equivalence", func() error {
			got, internal, err := c.ChaosReport(ctx, server.ChaosRequest{})
			if err != nil {
				return err
			}
			if got != wantChaos || internal != wantInternal {
				return fmt.Errorf("chaos report differs (internal %d vs %d)", internal, wantInternal)
			}
			return nil
		}},
		{"fleet metrics aggregate", func() error {
			var m shard.MetricsResponse
			if err := getJSON(ctx, shardURL+"/metrics", &m); err != nil {
				return err
			}
			if len(m.Backends) != 2 {
				return fmt.Errorf("%d backends in metrics, want 2", len(m.Backends))
			}
			if m.Aggregate.Requests["total"] == 0 || m.Aggregate.Batch["cells"] == 0 {
				return fmt.Errorf("aggregate counters empty: %v", m.Aggregate.Requests)
			}
			if m.Shard["batch_streams"] < 2 || m.Shard["proxied"] < 2 {
				return fmt.Errorf("shard counters %v", m.Shard)
			}
			return nil
		}},
		{"backend loss: drained and byte-identical", func() error {
			backendSrvs[0].Close()
			// Health probes run every 50ms with DownAfter=1: the dead
			// backend must drain from /healthz.
			deadline := time.Now().Add(5 * time.Second)
			for {
				var h map[string]string
				if err := getJSON(ctx, shardURL+"/healthz", &h); err != nil {
					return err
				}
				if h[urls[0]] == "down" {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("backend never drained: %v", h)
				}
				time.Sleep(20 * time.Millisecond)
			}
			got, err := c.BatchReport(ctx, server.BatchRequest{Workloads: selftestWorkloads})
			if err != nil {
				return err
			}
			if got != wantReport {
				return errors.New("post-failover batch report differs from serial run")
			}
			return nil
		}},
	}
	for _, st := range steps {
		if err := step(st.name, st.fn); err != nil {
			return err
		}
	}
	return nil
}

// getJSON fetches and decodes one JSON response (any status).
func getJSON(ctx context.Context, url string, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(dst)
}
