// Command minicc compiles and runs a MiniC source file on the simulated
// In-Fat Pointer machine — a drop-in way to test custom programs against
// the defense, like the paper's wrapper scripts around the modified Clang
// (§A.4). A guest trap terminates the run with a one-line classification
// and a distinct exit code:
//
//	spatial  (poison/bounds detection)  exit 3
//	fuel     (-fuel budget exhausted)   exit 4
//	other    (metadata/memory trap, runtime fault)  exit 5
//	temporal (stale generation / double free, ifp-temporal mode)  exit 6
//
// Usage:
//
//	minicc [-mode baseline|subheap|wrapped|hybrid|ifp-temporal] [-fuel CYCLES] [-stats] file.c
//
// -S prints the instrumented stack IR; -disasm prints both that and the
// register-bytecode form the dispatch loop executes (lowered from the
// stack IR, with fused IFP superinstructions and per-block fuel charges).
package main

import (
	"flag"
	"fmt"
	"os"

	"infat/internal/machine"
	"infat/internal/minic"
	"infat/internal/rt"
)

func main() {
	modeFlag := flag.String("mode", "subheap", "baseline, subheap, wrapped, hybrid, or ifp-temporal")
	fuel := flag.Uint64("fuel", 0, "cycle budget; 0 = unlimited (exhaustion is a fuel trap)")
	stats := flag.Bool("stats", false, "print dynamic instruction statistics after the run")
	dumpIR := flag.Bool("S", false, "print the instrumented IR listing instead of running")
	disasm := flag.Bool("disasm", false, "print both the stack IR and the lowered register bytecode instead of running")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [-mode m] [-fuel n] [-stats] [-S] [-disasm] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(1)
	}

	mode, err := rt.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(2)
	}

	prog, err := minic.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	comp, err := minic.Compile(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *disasm {
		fmt.Println("; ==== stack IR (instrumented) ====")
		fmt.Print(minic.Disassemble(comp))
		fmt.Println("\n; ==== register bytecode (lowered) ====")
		fmt.Print(minic.DisassembleLowered(comp))
		return
	}
	if *dumpIR {
		fmt.Print(minic.Disassemble(comp))
		return
	}
	r := rt.New(mode)
	r.M.FuelLimit = *fuel
	vm, err := minic.NewVM(comp, r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exit, runErr := vm.Run()
	for _, v := range vm.Out {
		fmt.Println(v)
	}
	if *stats {
		c := r.M.C
		fmt.Fprintf(os.Stderr, "instructions: %d  cycles: %d\n", c.Instrs, c.Cycles)
		fmt.Fprintf(os.Stderr, "promote: %d (valid %d, null %d, legacy %d)\n",
			c.Promote, c.PromoteValid, c.PromoteNull, c.PromoteLegacy)
		fmt.Fprintf(os.Stderr, "ifp arithmetic: %d  bounds ld/st: %d  checks: %d\n",
			c.IfpArith(), c.IfpBoundsMem(), c.Checks)
	}
	if runErr != nil {
		class, code := classify(runErr)
		fmt.Fprintf(os.Stderr, "minicc: trap: %s: %v\n", class, runErr)
		os.Exit(code)
	}
	os.Exit(int(exit) & 0xFF)
}

// classify maps a run error to the service-wide trap taxonomy (spatial /
// temporal / fuel / other) and the exit code documented above.
func classify(err error) (string, int) {
	switch {
	case machine.IsTrap(err, machine.TrapPoison) || machine.IsTrap(err, machine.TrapBounds):
		return "spatial", 3
	case machine.IsTrap(err, machine.TrapTemporal):
		return "temporal", 6
	case machine.IsTrap(err, machine.TrapFuel):
		return "fuel", 4
	}
	return "other", 5
}
