// Command minicc compiles and runs a MiniC source file on the simulated
// In-Fat Pointer machine — a drop-in way to test custom programs against
// the defense, like the paper's wrapper scripts around the modified Clang
// (§A.4). A spatial error terminates the run with the trap that caught it.
//
// Usage:
//
//	minicc [-mode baseline|subheap|wrapped] [-stats] file.c
package main

import (
	"flag"
	"fmt"
	"os"

	"infat/internal/minic"
	"infat/internal/rt"
)

func main() {
	modeFlag := flag.String("mode", "subheap", "baseline, subheap, wrapped, or hybrid")
	stats := flag.Bool("stats", false, "print dynamic instruction statistics after the run")
	dumpIR := flag.Bool("S", false, "print the instrumented IR listing instead of running")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [-mode m] [-stats] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(1)
	}

	var mode rt.Mode
	switch *modeFlag {
	case "baseline":
		mode = rt.Baseline
	case "subheap":
		mode = rt.Subheap
	case "wrapped":
		mode = rt.Wrapped
	case "hybrid":
		mode = rt.Hybrid
	default:
		fmt.Fprintf(os.Stderr, "minicc: unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	prog, err := minic.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	comp, err := minic.Compile(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dumpIR {
		fmt.Print(minic.Disassemble(comp))
		return
	}
	r := rt.New(mode)
	vm, err := minic.NewVM(comp, r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exit, err := vm.Run()
	for _, v := range vm.Out {
		fmt.Println(v)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(1)
	}
	if *stats {
		c := r.M.C
		fmt.Fprintf(os.Stderr, "instructions: %d  cycles: %d\n", c.Instrs, c.Cycles)
		fmt.Fprintf(os.Stderr, "promote: %d (valid %d, null %d, legacy %d)\n",
			c.Promote, c.PromoteValid, c.PromoteNull, c.PromoteLegacy)
		fmt.Fprintf(os.Stderr, "ifp arithmetic: %d  bounds ld/st: %d  checks: %d\n",
			c.IfpArith(), c.IfpBoundsMem(), c.Checks)
	}
	os.Exit(int(exit) & 0xFF)
}
