package main

import (
	"testing"

	"infat"
	"infat/internal/machine"
	"infat/internal/minic"
	"infat/internal/rt"
)

const uafProg = `
long *gv;
int main() {
	long *p = (long*)malloc(4 * sizeof(long));
	gv = p;
	free(p);
	long *fresh = (long*)malloc(4 * sizeof(long));
	fresh[0] = 1;
	long *q = gv;
	*q = 2;
	free(fresh);
	return 0;
}`

const overflowProg = `
int main() {
	long *p = (long*)malloc(4 * sizeof(long));
	p[4] = 1;
	return 0;
}`

// TestClassifyTemporal pins the new exit class: a same-type slot-reuse
// UAF under ifp-temporal classifies temporal with its own exit code,
// and the error satisfies the package-level IsTemporalTrap predicate.
func TestClassifyTemporal(t *testing.T) {
	_, _, err := minic.Execute(uafProg, rt.IFPTemporal)
	if err == nil {
		t.Fatal("UAF ran clean under ifp-temporal")
	}
	if !infat.IsTemporalTrap(err) {
		t.Fatalf("IsTemporalTrap = false for %v", err)
	}
	class, code := classify(err)
	if class != "temporal" || code != 6 {
		t.Fatalf("classify = (%s, %d), want (temporal, 6)", class, code)
	}
}

// TestClassifySpatialUnchanged: the pre-temporal classes keep their
// labels and exit codes.
func TestClassifySpatialUnchanged(t *testing.T) {
	_, _, err := minic.Execute(overflowProg, rt.Subheap)
	if err == nil {
		t.Fatal("overflow ran clean under subheap")
	}
	if class, code := classify(err); class != "spatial" || code != 3 {
		t.Fatalf("classify = (%s, %d), want (spatial, 3)", class, code)
	}
	if class, code := classify(&machine.Trap{Kind: machine.TrapFuel}); class != "fuel" || code != 4 {
		t.Fatalf("classify = (%s, %d), want (fuel, 4)", class, code)
	}
	if class, code := classify(&machine.Trap{Kind: machine.TrapMemory}); class != "other" || code != 5 {
		t.Fatalf("classify = (%s, %d), want (other, 5)", class, code)
	}
}

// TestSpatialModeDoesNotClassifyTemporal: under the spatial modes the
// same UAF never produces the temporal class (type-safe reuse is the
// documented spatial miss — the run completes clean).
func TestSpatialModeDoesNotClassifyTemporal(t *testing.T) {
	for _, mode := range []rt.Mode{rt.Subheap, rt.Wrapped, rt.Hybrid} {
		_, _, err := minic.Execute(uafProg, mode)
		if err != nil {
			t.Fatalf("%v: type-safe reuse UAF no longer runs clean: %v", mode, err)
		}
	}
}
