// Allocators: a tour of the three object-metadata schemes (§3.3) and how
// the runtime picks between them — local-offset for small stack/heap
// objects, subheap blocks for pooled heap objects, and the global table
// for everything too big for the others.
//
// Run with: go run ./examples/allocators
package main

import (
	"fmt"
	"log"

	"infat"
	"infat/internal/tag"
)

func describe(name string, p uint64) {
	fmt.Printf("%-28s %s\n", name, tag.Format(p))
}

func main() {
	node := infat.StructOf("node",
		infat.Field("key", infat.Long),
		infat.Field("next", infat.PointerTo(nil)),
	)

	fmt.Println("=== subheap allocator (pool over buddy blocks) ===")
	sys := infat.NewSystem(infat.Subheap)
	var last infat.Obj
	for i := 0; i < 3; i++ {
		o, err := sys.Malloc(node, 1)
		if err != nil {
			log.Fatal(err)
		}
		describe(fmt.Sprintf("heap node %d", i), o.P)
		last = o
	}
	fmt.Println("  ^ same-type objects pack into one power-of-2 block and share")
	fmt.Println("    one 32-byte metadata record; the tag holds a control-register")
	fmt.Println("    index plus an 8-bit subobject index.")
	_, b := sys.Promote(last.P)
	fmt.Printf("  promote resolves the slot: bounds %v\n\n", b.B)

	local, err := sys.AllocLocal(node)
	if err != nil {
		log.Fatal(err)
	}
	describe("stack local", local.P)
	fmt.Println("  ^ locals use the local-offset scheme: metadata appended to the")
	fmt.Println("    object, reached via the 6-bit granule offset in the tag.")

	big, err := sys.RegisterGlobalBytes(1 << 20)
	if err != nil {
		log.Fatal(err)
	}
	describe("1 MiB global", big.P)
	fmt.Println("  ^ too large for local-offset (max 1008 bytes): the global table")
	fmt.Println("    scheme stores a 16-byte row and the tag holds its 12-bit index")
	fmt.Println("    (no subobject-index bits remain, so no narrowing).")

	fmt.Println("\n=== wrapped allocator (over glibc-style malloc) ===")
	sysW := infat.NewSystem(infat.Wrapped)
	small, err := sysW.Malloc(node, 1)
	if err != nil {
		log.Fatal(err)
	}
	describe("small heap object", small.P)
	huge, err := sysW.Malloc(infat.Long, 4096)
	if err != nil {
		log.Fatal(err)
	}
	describe("32 KiB heap array", huge.P)
	fmt.Println("  ^ the wrapped allocator over-allocates for local-offset metadata")
	fmt.Println("    when the object fits the scheme, else falls back to the table.")

	// The footprint difference §5.2.3 reports: run the same allocation
	// storm both ways.
	storm := func(mode infat.Mode) uint64 {
		s := infat.NewSystem(mode)
		for i := 0; i < 4000; i++ {
			o, err := s.Malloc(node, 1)
			if err != nil {
				log.Fatal(err)
			}
			if err := s.Store(o.P, uint64(i), 8, o.B); err != nil {
				log.Fatal(err)
			}
		}
		return s.Footprint()
	}
	sub, wrap := storm(infat.Subheap), storm(infat.Wrapped)
	fmt.Printf("\n4000 nodes: subheap footprint %d KiB vs wrapped %d KiB (metadata sharing)\n",
		sub/1024, wrap/1024)
}
