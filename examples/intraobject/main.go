// Intra-object overflow: Listing 1 of the paper. A struct holds a
// vulnerable buffer next to a sensitive one; an overflow that never
// leaves the struct is invisible to object-granularity defenses, but
// In-Fat Pointer's layout tables narrow the derived pointer's bounds to
// the subobject and catch the first byte of corruption.
//
// The same program runs both as direct API calls and as MiniC source
// through the instrumented compiler.
//
// Run with: go run ./examples/intraobject
package main

import (
	"errors"
	"fmt"
	"log"

	"infat"
)

func main() {
	// struct S { char vulnerable[12]; char sensitive[12]; };
	structS := infat.StructOf("S",
		infat.Field("vulnerable", infat.ArrayOf(infat.Char, 12)),
		infat.Field("sensitive", infat.ArrayOf(infat.Char, 12)),
	)

	sys := infat.NewSystem(infat.Subheap)
	obj, err := sys.Malloc(structS, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Derive char *p = s->vulnerable: pointer arithmetic plus an ifpidx
	// tag update with the member's layout-table index.
	idx, err := sys.SubobjIndexOf(structS, "vulnerable")
	if err != nil {
		log.Fatal(err)
	}
	p := sys.SetSub(obj.P, idx)

	// Store the derived pointer to memory and reload it: promote walks
	// the layout table and narrows the bounds to vulnerable[12] only.
	cell, err := sys.MallocBytes(8)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.StorePtr(cell.P, cell.B, p, obj.B); err != nil {
		log.Fatal(err)
	}
	p, pb, err := sys.LoadPtr(cell.P, cell.B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("narrowed bounds after promote: %v (span %d bytes)\n", pb.B, pb.B.Span())

	for i := int64(0); i < 12; i++ {
		if err := sys.Store(sys.GEP(p, i, pb), 'A', 1, pb); err != nil {
			log.Fatalf("in-bounds write %d failed: %v", i, err)
		}
	}
	err = sys.Store(sys.GEP(p, 12, pb), 'A', 1, pb)
	if infat.IsSpatialTrap(err) {
		fmt.Printf("intra-object overflow detected at byte 12: %v\n", err)
	} else {
		log.Fatalf("intra-object overflow NOT detected (err=%v)", err)
	}

	// The same scenario as C source through the MiniC pipeline.
	src := `
struct S { char vulnerable[12]; char sensitive[12]; };
char *gv;
int main() {
	struct S *s = (struct S*)malloc(sizeof(struct S));
	gv = s->vulnerable;
	char *p = gv;
	int i;
	for (i = 0; i <= 12; i = i + 1) { p[i] = 'A'; }
	return 0;
}`
	_, _, err = infat.RunC(src, infat.Wrapped)
	if err == nil {
		log.Fatal("compiled program: overflow NOT detected")
	}
	var unwrapped interface{ Unwrap() error }
	if errors.As(err, &unwrapped) && infat.IsSpatialTrap(unwrapped.Unwrap()) {
		fmt.Printf("compiled program trapped too: %v\n", err)
	} else {
		log.Fatalf("compiled program failed for the wrong reason: %v", err)
	}
}
