// Legacy interop: In-Fat Pointer's compatibility story (§3, §4.1.2).
// Uninstrumented ("legacy") code keeps working: its pointers carry no
// tags, promote bypasses them, and checks are skipped — while
// instrumented objects stay protected. Implicit bounds clearing prevents
// an instrumented caller from picking up stale bounds around a legacy
// call.
//
// Run with: go run ./examples/legacy
package main

import (
	"fmt"
	"log"

	"infat"
)

func main() {
	sys := infat.NewSystem(infat.Subheap)

	// An allocation made by uninstrumented library code: untagged, no
	// metadata.
	legacyBuf, err := sys.MallocLegacy(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legacy buffer at %#x (tag-free)\n", legacyBuf.P)

	// Legacy pointers dereference without checks — even out of bounds.
	// This is the compatibility trade-off: no guarantees for legacy
	// objects (§3 protection scope).
	oob := sys.GEP(legacyBuf.P, 64, legacyBuf.B)
	if err := sys.Store(oob, 1, 8, legacyBuf.B); err != nil {
		log.Fatalf("legacy overflow unexpectedly trapped: %v", err)
	}
	fmt.Println("legacy out-of-bounds store passed (unchecked, as on real hardware)")

	// Promote bypasses legacy and NULL pointers without touching memory
	// (Figure 5's fast path, >20% of promotes in the paper's Table 4).
	sys.Promote(legacyBuf.P)
	sys.Promote(0)
	c := sys.Counters()
	fmt.Printf("promote bypasses so far: %d legacy, %d NULL\n", c.PromoteLegacy, c.PromoteNull)

	// Instrumented objects remain protected even when their pointers mix
	// with legacy ones in the same data structure.
	protected, err := sys.Malloc(infat.Long, 4)
	if err != nil {
		log.Fatal(err)
	}
	table, err := sys.MallocBytes(16)
	if err != nil {
		log.Fatal(err)
	}
	// Slot 0: protected pointer; slot 1: legacy pointer.
	if err := sys.StorePtr(table.P, table.B, protected.P, protected.B); err != nil {
		log.Fatal(err)
	}
	if err := sys.StorePtr(sys.GEP(table.P, 8, table.B), table.B, legacyBuf.P, legacyBuf.B); err != nil {
		log.Fatal(err)
	}

	p0, b0, err := sys.LoadPtr(table.P, table.B)
	if err != nil {
		log.Fatal(err)
	}
	p1, b1, err := sys.LoadPtr(sys.GEP(table.P, 8, table.B), table.B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded slot 0: bounds valid=%v (protected)\n", b0.Valid)
	fmt.Printf("reloaded slot 1: bounds valid=%v (legacy, unchecked)\n", b1.Valid)

	// Overflow through the protected pointer traps; through the legacy
	// pointer it does not.
	err = sys.Store(sys.GEP(p0, 32, b0), 7, 8, b0)
	if !infat.IsSpatialTrap(err) {
		log.Fatalf("protected overflow missed: %v", err)
	}
	fmt.Printf("protected overflow detected: %v\n", err)
	if err := sys.Store(sys.GEP(p1, 64, b1), 7, 8, b1); err != nil {
		log.Fatalf("legacy store trapped: %v", err)
	}
	fmt.Println("legacy store passed")

	// Implicit bounds clearing (§4.1.2): when a legacy callee produces a
	// pointer return value through an existing instruction, the paired
	// bounds register is cleared by hardware, so the instrumented caller
	// never checks against stale bounds.
	stale := protected.B
	_ = legacyBuf.P // the value written by "legacy code" flows through untouched
	cleared := sys.M.ClearBounds()
	fmt.Printf("after legacy call: stale bounds dropped (valid=%v -> %v)\n",
		stale.Valid, cleared.Valid)
}
