// Quickstart: allocate a guest object under In-Fat Pointer protection,
// write within bounds, then watch the defense catch a heap overflow.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"infat"
)

func main() {
	// A system with the subheap allocator (full instrumentation).
	sys := infat.NewSystem(infat.Subheap)

	// An array of 8 longs on the guest heap. The returned object carries
	// a tagged pointer (obj.P) and its bounds register (obj.B).
	obj, err := sys.Malloc(infat.Long, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated 8 longs at %#x, bounds %v\n", obj.Base(), obj.B.B)

	// In-bounds writes pass the implicit access-size checks.
	for i := int64(0); i < 8; i++ {
		p := sys.GEP(obj.P, i*8, obj.B)
		if err := sys.Store(p, uint64(i*i), 8, obj.B); err != nil {
			log.Fatal(err)
		}
	}
	v, err := sys.Load(sys.GEP(obj.P, 7*8, obj.B), 8, obj.B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arr[7] = %d\n", v)

	// The 9th write goes one element past the end. The pointer arithmetic
	// (ifpadd) marks the pointer out-of-bounds via its poison bits, and
	// the store traps.
	over := sys.GEP(obj.P, 8*8, obj.B)
	err = sys.Store(over, 0xDEAD, 8, obj.B)
	if infat.IsSpatialTrap(err) {
		fmt.Printf("overflow detected: %v\n", err)
	} else {
		log.Fatalf("overflow NOT detected (err=%v)", err)
	}

	// Pointers survive a round-trip through guest memory: the 16-bit tag
	// travels with the value, and the promote instruction retrieves the
	// bounds again on reload.
	cell, err := sys.MallocBytes(8)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.StorePtr(cell.P, cell.B, obj.P, obj.B); err != nil {
		log.Fatal(err)
	}
	p, b, err := sys.LoadPtr(cell.P, cell.B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded pointer %#x with bounds %v (via promote)\n", p&0xFFFF_FFFF_FFFF, b.B)

	c := sys.Counters()
	fmt.Printf("dynamic stats: %d instructions, %d promotes (%d valid), %d checks\n",
		c.Instrs, c.Promote, c.PromoteValid, c.Checks)
}
