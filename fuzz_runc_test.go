package infat

import (
	"testing"
)

// FuzzRunC feeds arbitrary byte strings to the MiniC pipeline under a
// small execution budget. The contract is the fault model's first rule
// (DESIGN.md §10): no guest input may panic the simulator — every
// outcome is a clean run, a parse/compile error, or a typed trap.
// RunCBudget recovers escaped panics into an internal trap, so the
// assertion is simply that IsInternalTrap never fires.
func FuzzRunC(f *testing.F) {
	seeds := []string{
		``,
		`int main() { return 0; }`,
		`int main() { print(1 + 2 * 3); return 0; }`,
		`int main() { int b[4]; b[4] = 1; return 0; }`,
		`int main() { while (1) { } return 0; }`,
		`struct S { int a; int b; }; int main() { struct S s; s.a = 1; return s.a; }`,
		`int f(int n) { if (n < 2) { return n; } return f(n-1) + f(n-2); } int main() { return f(10); }`,
		`int main() { int *p; *p = 1; return 0; }`,
		`int main() { int b[4; return 0; }`,
		"int main() { return 0; } \x00\xff",
		`int main() { char *p = malloc(8); p[7] = 1; free(p); return 0; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		for _, mode := range []Mode{Subheap, Wrapped} {
			_, _, err := RunCBudget(src, mode, 2_000_000)
			if IsInternalTrap(err) {
				t.Fatalf("mode %v: guest input reached a simulator panic: %v", mode, err)
			}
		}
	})
}
