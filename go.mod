module infat

go 1.22
