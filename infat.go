// Package infat is the public API of the In-Fat Pointer reproduction: a
// hardware-assisted tagged-pointer spatial memory safety defense with
// subobject-granularity protection (Xu, Huang & Lie, ASPLOS 2021),
// implemented as a from-scratch architectural simulation.
//
// The three layers a user typically touches:
//
//   - System — a simulated machine plus the In-Fat Pointer runtime. Guest
//     objects are allocated and registered through it, pointers are tagged
//     64-bit values, and every access runs the paper's checking pipeline
//     (poison bits, implicit bounds checks, promote-based bounds
//     retrieval with layout-table narrowing).
//
//   - RunC — compile and execute a MiniC (C subset) program under
//     instrumentation; spatial errors surface as traps. This is the path
//     the Juliet-style functional evaluation uses.
//
//   - The experiment drivers re-exported from internal packages:
//     Experiments (Table 4, Figures 10-12), JulietSuite (§5.1),
//     HardwareCost (Figure 13), and RelatedWork (§2/Table 1).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package infat

import (
	"infat/internal/baseline"
	"infat/internal/exp"
	"infat/internal/hwcost"
	"infat/internal/juliet"
	"infat/internal/layout"
	"infat/internal/machine"
	"infat/internal/minic"
	"infat/internal/rt"
	"infat/internal/workloads"
)

// Mode selects the run configuration (§5.2): Baseline is uninstrumented;
// Subheap and Wrapped select the heap allocator used with full
// instrumentation.
type Mode = rt.Mode

// Run modes.
const (
	// Baseline runs without any In-Fat Pointer instrumentation.
	Baseline = rt.Baseline
	// Subheap instruments with the pool-over-buddy subheap allocator.
	Subheap = rt.Subheap
	// Wrapped instruments with the wrapped glibc-style allocator.
	Wrapped = rt.Wrapped
	// ModeIFPTemporal instruments with Hybrid's dynamic allocator
	// selection plus xTag-style generation tagging: the 12 shared tag
	// bits carry an allocation generation instead of a subobject index,
	// so use-after-free and double free trap (IsTemporalTrap) while
	// spatial protection coarsens to object granularity. DESIGN.md §14.
	ModeIFPTemporal = rt.IFPTemporal
)

// System is a simulated machine with the In-Fat Pointer runtime attached.
// It embeds the runtime, so allocation (Malloc, AllocLocal,
// RegisterGlobal), accesses (Load, Store, LoadPtr, StorePtr), pointer
// arithmetic (GEP, SetSub), and promotion (Promote) are all available
// directly; see infat/internal/rt for the full method set.
type System struct {
	*rt.Runtime
}

// NewSystem creates a fresh guest environment in the given mode. For
// many short-lived systems, AcquireSystem/ReleaseSystem recycle the
// backing machine through a pool instead of rebuilding it each time.
func NewSystem(mode Mode) *System { return &System{rt.New(mode)} }

// SystemPool recycles simulated machines: Acquire returns a System reset
// into the requested mode (reusing a parked machine when one is idle),
// Release parks it for the next Acquire. A reused System is
// observationally identical to a fresh NewSystem — memory unmapped, cache
// cold, counters zero, allocators empty — so pooling never changes run
// results, only the host-allocation cost of obtaining a System. Safe for
// concurrent use.
type SystemPool struct {
	p *rt.Pool
}

// NewSystemPool builds a pool retaining up to maxIdle idle systems;
// maxIdle <= 0 selects a default sized to the machine.
func NewSystemPool(maxIdle int) *SystemPool {
	return &SystemPool{p: rt.NewPool(maxIdle)}
}

// Acquire checks a system out of the pool in the given mode.
func (sp *SystemPool) Acquire(mode Mode) *System { return &System{sp.p.Acquire(mode)} }

// Release parks a system for reuse; nil is ignored.
func (sp *SystemPool) Release(s *System) {
	if s == nil {
		return
	}
	sp.p.Release(s.Runtime)
}

// Stats snapshots the pool's counters.
func (sp *SystemPool) Stats() PoolStats { return sp.p.Stats() }

// PoolStats is a pool counter snapshot: Hits were served by resetting an
// idle system, Misses constructed fresh, Discards are releases dropped
// because the pool was full or reuse was disabled.
type PoolStats = rt.PoolStats

// AcquireSystem checks a system out of the process-wide default pool —
// the same pool every hot path (RunC, the experiment grid, Juliet, chaos,
// ifp-serve workers) draws from.
func AcquireSystem(mode Mode) *System { return &System{rt.Acquire(mode)} }

// ReleaseSystem returns a system to the default pool; nil is ignored.
func ReleaseSystem(s *System) {
	if s == nil {
		return
	}
	rt.Release(s.Runtime)
}

// DefaultPoolStats snapshots the default pool's counters.
func DefaultPoolStats() PoolStats { return rt.DefaultPool.Stats() }

// ReuseSystems reports whether system pooling is enabled process-wide.
func ReuseSystems() bool { return rt.ReuseSystems() }

// SetReuseSystems toggles system pooling process-wide. Disabling it makes
// every Acquire construct a fresh system and every Release discard — the
// pre-pool lifecycle, byte-identical in results, kept as an escape hatch.
func SetReuseSystems(on bool) { rt.SetReuseSystems(on) }

// Counters returns the machine's dynamic event counters (instructions,
// cycles, promote statistics, check counts — the quantities Table 4 and
// Figure 11 report).
func (s *System) Counters() machine.Counters { return s.M.C }

// Obj is a registered guest object handle.
type Obj = rt.Obj

// BoundsReg is a bounds register (the 96-bit half of an IFPR).
type BoundsReg = machine.BoundsReg

// Type constructors for describing guest objects (layout tables are
// generated per type, §3.4).
var (
	// Char is the 1-byte scalar type.
	Char = layout.Char
	// Int is the 4-byte scalar type.
	Int = layout.Int
	// Long is the 8-byte scalar type.
	Long = layout.Long
)

// Type is a guest object type.
type Type = layout.Type

// StructOf builds a struct type with C layout rules.
func StructOf(name string, fields ...layout.Field) *Type { return layout.StructOf(name, fields...) }

// Field builds a struct member for StructOf.
func Field(name string, t *Type) layout.Field { return layout.F(name, t) }

// ArrayOf builds a fixed-size array type.
func ArrayOf(elem *Type, n uint64) *Type { return layout.ArrayOf(elem, n) }

// PointerTo builds a 64-bit pointer type.
func PointerTo(t *Type) *Type { return layout.PointerTo(t) }

// IsSpatialTrap reports whether err is an In-Fat Pointer detection — a
// poisoned-pointer dereference or a failed bounds check.
func IsSpatialTrap(err error) bool {
	return machine.IsTrap(err, machine.TrapPoison) || machine.IsTrap(err, machine.TrapBounds)
}

// IsResourceTrap reports whether err is exhaustion of an execution
// budget (RunCBudget's fuel limit) or an allocator failure (arena/buddy
// exhaustion, global-table full, injected fault) — a resource trap,
// distinct from the spatial detections IsSpatialTrap classifies.
func IsResourceTrap(err error) bool {
	return machine.IsTrap(err, machine.TrapFuel) || machine.IsTrap(err, machine.TrapAlloc)
}

// IsInternalTrap reports whether err is a recovered simulator panic — a
// bug in the simulator itself, never a guest-program condition. RunC and
// RunCBudget convert escaped panics into this trap kind so no guest
// program can crash the host process.
func IsInternalTrap(err error) bool {
	return machine.IsTrap(err, machine.TrapInternal)
}

// IsTemporalTrap reports whether err is a temporal-safety detection —
// a use-after-free (dereference through a stale-generation pointer) or a
// double free (free through a pointer whose generation is behind the
// store). Only ModeIFPTemporal produces these; in spatial modes temporal
// bugs surface, at best, as spatial traps when they happen to corrupt
// metadata.
func IsTemporalTrap(err error) bool {
	return machine.IsTrap(err, machine.TrapTemporal)
}

// RunC compiles and executes a MiniC source program in the given mode,
// returning the values it print()ed and main's exit code. Spatial memory
// errors surface as *minic.RunError wrapping a machine trap (test with
// IsSpatialTrap via errors.As / Unwrap).
func RunC(src string, mode Mode) (out []int64, exit int64, err error) {
	defer machine.RecoverInternal(&err)
	return minic.Execute(src, mode)
}

// RunCBudget is RunC with an execution budget: when fuel is non-zero the
// run traps with a typed resource trap (IsResourceTrap) once it has
// consumed that many simulated cycles, so untrusted or infinite-looping
// programs terminate deterministically. Fuel 0 means unlimited. This is
// the primitive ifp-serve builds its per-request hardening on.
func RunCBudget(src string, mode Mode, fuel uint64) (out []int64, exit int64, err error) {
	defer machine.RecoverInternal(&err)
	out, exit, _, err = minic.ExecuteBudget(src, mode, fuel)
	return out, exit, err
}

// Experiments runs the §5.2 application evaluation at the given scale and
// returns the rendered Table 4 and Figures 10-12. Scale 1 is the standard
// run (tens of seconds); the memory experiment runs at scale*4 (§5.2.3
// needs multi-page footprints). The (workload × configuration) grid fans
// out over GOMAXPROCS worker goroutines; use ExperimentsParallel to
// control the worker count.
func Experiments(scale int) (string, error) { return ExperimentsParallel(scale, 0) }

// ExperimentsParallel is Experiments with an explicit worker count:
// parallel <= 0 selects GOMAXPROCS, 1 runs fully serially. Every cell of
// the grid builds its own isolated runtime and results are collected in
// deterministic order, so the report is byte-identical at any worker
// count.
func ExperimentsParallel(scale, parallel int) (string, error) {
	results, err := exp.RunAllN(scale, parallel)
	if err != nil {
		return "", err
	}
	mem, err := exp.RunAllMemN(scale*exp.MemScale, parallel)
	if err != nil {
		return "", err
	}
	return exp.Report(results, mem), nil
}

// ChaosCampaign runs the fault-injection campaign (DESIGN.md §10) at the
// given scale: every (metadata scheme × fault kind) cell is run with
// 8*scale seeds, and each injected fault is classified as detected (typed
// trap), tolerated (documented-by-design escape), or internal (recovered
// panic or untyped error — a simulator bug). It returns the rendered
// report and the internal-outcome count, which a healthy simulator keeps
// at zero. The grid fans out over GOMAXPROCS worker goroutines; use
// ChaosCampaignParallel to control the worker count.
func ChaosCampaign(scale int) (report string, internal int) {
	return ChaosCampaignParallel(scale, 0)
}

// ChaosCampaignParallel is ChaosCampaign with an explicit worker count:
// parallel <= 0 selects GOMAXPROCS, 1 runs fully serially. Every cell
// builds its own isolated runtime and results collect in deterministic
// order, so the report is byte-identical at any worker count.
func ChaosCampaignParallel(scale, parallel int) (report string, internal int) {
	return exp.ChaosReport(scale, parallel)
}

// JulietSuite runs the §5.1 functional evaluation in the given mode and
// returns its summary. Cases fan out over GOMAXPROCS worker goroutines;
// use JulietSuiteParallel to control the worker count.
func JulietSuite(mode Mode) juliet.Summary { return JulietSuiteParallel(mode, 0) }

// JulietSuiteParallel is JulietSuite with an explicit worker count:
// parallel <= 0 selects GOMAXPROCS, 1 runs fully serially. Each case runs
// in its own isolated runtime and the summary aggregates in case order,
// so the result is identical at any worker count.
func JulietSuiteParallel(mode Mode, parallel int) juliet.Summary {
	return juliet.RunParallel(juliet.Generate(), mode, parallel)
}

// HardwareCost renders the Figure 13 area decomposition and the §5.3
// ablation table.
func HardwareCost() string {
	return hwcost.Fig13(hwcost.Default) + "\n" + hwcost.Ablations()
}

// RelatedWork renders the §2/Table-1 comparison of defense mechanisms on
// a shared pointer-chase kernel.
func RelatedWork(nNodes int) (string, error) { return baseline.Compare(nNodes) }

// Workloads lists the 18 benchmark programs of §5.2.
func Workloads() []workloads.Workload { return workloads.All }
