package infat

import (
	"strings"
	"testing"

	"infat/internal/machine"
)

func TestSystemEndToEnd(t *testing.T) {
	sys := NewSystem(Subheap)
	s := StructOf("S",
		Field("vulnerable", ArrayOf(Char, 12)),
		Field("sensitive", ArrayOf(Char, 12)))
	obj, err := sys.Malloc(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := sys.SubobjIndexOf(s, "vulnerable")
	if err != nil {
		t.Fatal(err)
	}
	p := sys.SetSub(obj.P, idx)
	p, pb := sys.Promote(p)
	if !pb.Valid || pb.B.Span() != 12 {
		t.Fatalf("narrowed bounds = %+v", pb)
	}
	if err := sys.Store(sys.GEP(p, 11, pb), 'A', 1, pb); err != nil {
		t.Fatalf("in-bounds write: %v", err)
	}
	err = sys.Store(sys.GEP(p, 12, pb), 'A', 1, pb)
	if !IsSpatialTrap(err) {
		t.Fatalf("intra-object overflow missed: %v", err)
	}
	if c := sys.Counters(); c.Promote == 0 || c.Checks == 0 {
		t.Error("no instrumentation activity recorded")
	}
}

func TestRunCDetects(t *testing.T) {
	src := `
int main() {
	int buf[4];
	buf[4] = 1;
	return 0;
}`
	if _, _, err := RunC(src, Baseline); err != nil {
		t.Fatalf("baseline trapped: %v", err)
	}
	if _, _, err := RunC(src, Wrapped); err == nil {
		t.Fatal("instrumented run missed the overflow")
	}
	out, exit, err := RunC(`int main() { print(7); return 3; }`, Subheap)
	if err != nil || exit != 3 || len(out) != 1 || out[0] != 7 {
		t.Fatalf("run = (%v, %d, %v)", out, exit, err)
	}
}

func TestJulietSuiteAPI(t *testing.T) {
	s := JulietSuite(Subheap)
	if s.Detected != s.BadCases || s.FalsePositives != 0 || s.Errors != 0 {
		t.Fatalf("suite result: %+v", s.Report())
	}
}

func TestJulietSuiteParallelMatchesSerial(t *testing.T) {
	serial := JulietSuiteParallel(Wrapped, 1)
	par := JulietSuiteParallel(Wrapped, 4)
	if serial.Report() != par.Report() {
		t.Errorf("parallel report differs:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.Report(), par.Report())
	}
}

func TestHardwareCostAPI(t *testing.T) {
	out := HardwareCost()
	for _, want := range []string{"Figure 13", "IFP Unit", "Ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRelatedWorkAPI(t *testing.T) {
	out, err := RelatedWork(300)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "in-fat-pointer") {
		t.Error("missing our row")
	}
}

func TestWorkloadsListed(t *testing.T) {
	if len(Workloads()) != 18 {
		t.Errorf("workloads = %d, want 18", len(Workloads()))
	}
}

func TestRunCBudget(t *testing.T) {
	// An infinite loop is cut off by the budget as a typed resource trap.
	_, _, err := RunCBudget(`int main() { while (1) { } return 0; }`, Subheap, 100_000)
	if !IsResourceTrap(err) {
		t.Fatalf("err = %v, want resource trap", err)
	}
	if IsSpatialTrap(err) {
		t.Fatal("resource trap misclassified as spatial")
	}
	// A run that fits its budget matches the unlimited variant.
	out, exit, err := RunCBudget(`int main() { print(7); return 3; }`, Subheap, 10_000_000)
	if err != nil || exit != 3 || len(out) != 1 || out[0] != 7 {
		t.Fatalf("run = (%v, %d, %v)", out, exit, err)
	}
}

func TestIsSpatialTrapClassifiesRunCErrors(t *testing.T) {
	_, _, err := RunC(`
int main() {
	int buf[4];
	buf[4] = 1;
	return 0;
}`, Subheap)
	if !IsSpatialTrap(err) {
		t.Fatalf("spatial trap not recognized through RunC's error wrapping: %v", err)
	}
	if IsResourceTrap(err) {
		t.Fatal("spatial trap misclassified as resource trap")
	}
}

func TestIsInternalTrap(t *testing.T) {
	// Internal traps come from recovered simulator panics, never from
	// guest behavior — a spatial detection must not classify as one.
	_, _, err := RunC(`int main() { int b[2]; b[5] = 1; return 0; }`, Subheap)
	if IsInternalTrap(err) {
		t.Fatalf("spatial trap misclassified as internal: %v", err)
	}
	if !IsInternalTrap(&machine.Trap{Kind: machine.TrapInternal, Msg: "recovered panic: x"}) {
		t.Fatal("IsInternalTrap missed a TrapInternal")
	}
}

func TestChaosCampaignDeterministicAcrossWorkers(t *testing.T) {
	serial, internal := ChaosCampaignParallel(1, 1)
	if internal != 0 {
		t.Fatalf("campaign reported %d internal outcomes:\n%s", internal, serial)
	}
	parallel, _ := ChaosCampaignParallel(1, 0)
	if serial != parallel {
		t.Fatal("chaos report differs between serial and parallel runs")
	}
	if !strings.Contains(serial, "Per-scheme detection rate") {
		t.Error("report missing per-scheme summary")
	}
}
