// Package baseline implements simplified models of the related-work
// defenses the paper compares against (§2, Table 1; §5.2.2's overhead
// comparisons): a SoftBound-like scheme keeping per-pointer bounds in
// shadow memory keyed by pointer location, an Intel-MPX-like scheme with a
// two-level bounds directory, and an AddressSanitizer-like scheme with
// byte-granular shadow plus redzones. Each runs the same pointer-chase
// kernel on the simulated machine so that metadata traffic is charged
// through the same cache and cycle model as In-Fat Pointer's promote.
//
// These are mechanism models, not re-implementations: they reproduce the
// *cost structure* (how many extra memory touches each scheme pays per
// pointer load/store/access) and the protection granularity, which is what
// Table 1 and the §5.2.2 numbers compare.
package baseline

import (
	"fmt"

	"infat/internal/machine"
	"infat/internal/rt"
	"infat/internal/stats"
)

// Scheme identifies a modeled defense.
type Scheme int

// Modeled defenses.
const (
	// None is the uninstrumented baseline.
	None Scheme = iota
	// SoftBound keeps {base,bound} per pointer in a hash-mapped shadow:
	// two extra loads per pointer load, two extra stores per pointer
	// store. Subobject granularity.
	SoftBound
	// MPX keeps bounds in a two-level directory: a directory walk (two
	// loads) plus a two-word entry access per pointer load/store.
	// Subobject granularity, high metadata cost.
	MPX
	// ASan checks one shadow byte per 8 application bytes on every
	// access, with redzones between objects. Partial protection: it
	// misses intra-object overflow and redzone-jumping accesses.
	ASan
	// InFat is this repository's defense, for side-by-side runs.
	InFat
	// InFatTemporal is the generation-tagging variant (rt.IFPTemporal):
	// the 12 shared tag bits carry an allocation generation instead of a
	// subobject index, trading subobject granularity for use-after-free
	// and double-free detection.
	InFatTemporal
)

func (s Scheme) String() string {
	switch s {
	case None:
		return "none"
	case SoftBound:
		return "softbound-like"
	case MPX:
		return "mpx-like"
	case ASan:
		return "asan-like"
	case InFat:
		return "in-fat-pointer"
	case InFatTemporal:
		return "in-fat-temporal"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Granularity reports the Table-1 protection granularity of a scheme.
func (s Scheme) Granularity() string {
	switch s {
	case SoftBound, MPX, InFat:
		return "subobject"
	case ASan:
		return "partial"
	case InFatTemporal:
		// The generation field displaces the subobject index, so spatial
		// protection coarsens to object bounds while gaining UAF detection.
		return "object+temporal"
	}
	return "none"
}

// Shadow-region bases (disjoint from the rt address map).
const (
	sbShadowBase   = 0x7000_0000_0000
	mpxDirBase     = 0x7100_0000_0000
	mpxTableBase   = 0x7200_0000_0000
	asanShadowBase = 0x7300_0000_0000
)

// Result is one scheme's measurement on the shared kernel.
type Result struct {
	Scheme     Scheme
	Cycles     uint64
	Instrs     uint64
	Footprint  uint64
	DetectsOOB bool // detected the planted object-granularity overflow probe
	DetectsSub bool // subobject granularity by construction
}

// Run executes the shared pointer-chase kernel under one scheme and
// returns its measurement. nNodes controls the working set.
func Run(s Scheme, nNodes int) (Result, error) {
	if s == InFat {
		return runInFat(InFat, rt.Subheap, nNodes)
	}
	if s == InFatTemporal {
		return runInFat(InFatTemporal, rt.IFPTemporal, nNodes)
	}
	r := rt.Acquire(rt.Baseline)
	defer rt.Release(r)
	m := r.M

	// Per-scheme instrumentation hooks, each charging the metadata
	// traffic its real counterpart performs.
	onPtrLoad := func(addr uint64) {}
	onPtrStore := func(addr uint64) {}
	onAccess := func(addr uint64, size int) {}
	onAlloc := func(base, size uint64) {}

	switch s {
	case SoftBound:
		shadow := func(a uint64) uint64 { return sbShadowBase + (a&0xFFFF_FFFF)*2 }
		onPtrLoad = func(a uint64) {
			_, _ = m.RawLoad64(shadow(a))
			_, _ = m.RawLoad64(shadow(a) + 8)
		}
		onPtrStore = func(a uint64) {
			_ = m.RawStore64(shadow(a), a)
			_ = m.RawStore64(shadow(a)+8, a+64)
		}
		onAccess = func(a uint64, size int) { m.Tick(2) } // register compare
	case MPX:
		dir := func(a uint64) uint64 { return mpxDirBase + (a>>20&0xFFFFF)*8 }
		tbl := func(a uint64) uint64 { return mpxTableBase + (a&0xFFFFF)*4 }
		onPtrLoad = func(a uint64) {
			_, _ = m.RawLoad64(dir(a)) // bndldx directory walk
			_, _ = m.RawLoad64(tbl(a))
			_, _ = m.RawLoad64(tbl(a) + 8)
		}
		onPtrStore = func(a uint64) {
			_, _ = m.RawLoad64(dir(a)) // bndstx
			_ = m.RawStore64(tbl(a), a)
			_ = m.RawStore64(tbl(a)+8, a+64)
		}
		onAccess = func(a uint64, size int) { m.Tick(2) } // bndcl/bndcu
	case ASan:
		sh := func(a uint64) uint64 { return asanShadowBase + (a&0xFFFF_FFFF)>>3 }
		onAccess = func(a uint64, size int) {
			_, _ = m.RawLoad64(sh(a)) // shadow check
			m.Tick(1)
		}
		onAlloc = func(base, size uint64) {
			// Poison redzones: one shadow byte per 8 bytes, 16-byte
			// redzone each side.
			_ = m.RawStore64(sh(base-16), 0xFF)
			_ = m.RawStore64(sh(base+size), 0xFF)
			for a := base; a < base+size; a += 64 {
				_ = m.RawStore64(sh(a), 0)
			}
		}
	}

	sum, err := chase(r, nNodes, onPtrLoad, onPtrStore, onAccess, onAlloc)
	if err != nil {
		return Result{}, err
	}
	_ = sum
	return Result{
		Scheme:     s,
		Cycles:     m.C.Cycles,
		Instrs:     m.C.Instrs,
		Footprint:  r.Footprint(),
		DetectsOOB: s != None,
		DetectsSub: s.Granularity() == "subobject",
	}, nil
}

// chase is the shared kernel: build a linked list, traverse it several
// times, rewriting the next pointers (a pointer-intensive worst case for
// pointer-location-keyed schemes).
func chase(r *rt.Runtime, nNodes int,
	onPtrLoad, onPtrStore func(uint64), onAccess func(uint64, int), onAlloc func(uint64, uint64)) (uint64, error) {

	m := r.M
	const nodeSize = 32 // {value, pad, next, pad}
	nodes := make([]rt.Obj, nNodes)
	for i := range nodes {
		o, err := r.MallocBytes(nodeSize)
		if err != nil {
			return 0, err
		}
		onAlloc(o.Base(), nodeSize)
		nodes[i] = o
	}
	// Link and fill.
	for i, o := range nodes {
		onAccess(o.Base(), 8)
		if err := m.Store(o.P, uint64(i), 8, o.B); err != nil {
			return 0, err
		}
		next := nodes[(i+7)%nNodes] // strided order: cache-hostile
		onAccess(o.Base()+16, 8)
		onPtrStore(o.Base() + 16)
		if err := m.Store(r.GEP(o.P, 16, o.B), next.P, 8, o.B); err != nil {
			return 0, err
		}
	}
	// Traverse.
	var sum uint64
	cur := nodes[0].P
	curB := nodes[0].B
	for hops := 0; hops < nNodes*8; hops++ {
		onAccess(cur, 8)
		v, err := m.Load(cur, 8, curB)
		if err != nil {
			return 0, err
		}
		sum += v
		onAccess(cur+16, 8)
		onPtrLoad(cur + 16)
		nxt, err := m.Load(r.GEP(cur, 16, curB), 8, curB)
		if err != nil {
			return 0, err
		}
		m.Tick(3)
		cur, curB = nxt, machine.Cleared
	}
	return sum, nil
}

// runInFat runs the same kernel under real In-Fat Pointer
// instrumentation (the subheap allocator for the spatial scheme, the
// generation-tagging runtime for the temporal one), using promote — and,
// in temporal mode, the per-load generation comparison — on every
// pointer load.
func runInFat(s Scheme, mode rt.Mode, nNodes int) (Result, error) {
	r := rt.Acquire(mode)
	defer rt.Release(r)
	m := r.M
	const nodeSize = 32
	nodes := make([]rt.Obj, nNodes)
	for i := range nodes {
		o, err := r.MallocBytes(nodeSize)
		if err != nil {
			return Result{}, err
		}
		nodes[i] = o
	}
	for i, o := range nodes {
		if err := m.Store(o.P, uint64(i), 8, o.B); err != nil {
			return Result{}, err
		}
		next := nodes[(i+7)%nNodes]
		if err := r.StorePtr(r.GEP(o.P, 16, o.B), o.B, next.P, next.B); err != nil {
			return Result{}, err
		}
	}
	var sum uint64
	cur, curB := nodes[0].P, nodes[0].B
	for hops := 0; hops < nNodes*8; hops++ {
		v, err := m.Load(cur, 8, curB)
		if err != nil {
			return Result{}, err
		}
		sum += v
		nxt, nb, err := r.LoadPtr(r.GEP(cur, 16, curB), curB)
		if err != nil {
			return Result{}, err
		}
		m.Tick(3)
		cur, curB = nxt, nb
	}
	_ = sum
	return Result{
		Scheme:     s,
		Cycles:     m.C.Cycles,
		Instrs:     m.C.Instrs,
		Footprint:  r.Footprint(),
		DetectsOOB: true,
		DetectsSub: s == InFat,
	}, nil
}

// Compare runs all schemes and renders the related-work comparison.
func Compare(nNodes int) (string, error) {
	base, err := Run(None, nNodes)
	if err != nil {
		return "", err
	}
	var t stats.Table
	t.Add("Defense", "Granularity", "Cycle overhead", "Memory overhead", "Mechanism cost")
	notes := map[Scheme]string{
		SoftBound:     "2 shadow words per pointer load/store",
		MPX:           "directory walk + table entry per pointer load/store",
		ASan:          "1 shadow check per access + redzones",
		InFat:         "promote per pointer load (tag-guided metadata)",
		InFatTemporal: "promote + generation compare per pointer load",
	}
	for _, s := range []Scheme{SoftBound, MPX, ASan, InFat, InFatTemporal} {
		res, err := Run(s, nNodes)
		if err != nil {
			return "", err
		}
		t.Add(s.String(), s.Granularity(),
			fmt.Sprintf("%+.1f%%", stats.Overhead(stats.Ratio(res.Cycles, base.Cycles))),
			fmt.Sprintf("%+.1f%%", stats.Overhead(stats.Ratio(res.Footprint, base.Footprint))),
			notes[s])
	}
	return "Related-work comparison on the shared pointer-chase kernel\n" + t.String(), nil
}
