package baseline

import (
	"strings"
	"testing"
)

func TestOverheadOrdering(t *testing.T) {
	const n = 1500
	res := map[Scheme]Result{}
	for _, s := range []Scheme{None, SoftBound, MPX, ASan, InFat} {
		r, err := Run(s, n)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		res[s] = r
	}
	base := res[None].Cycles
	if base == 0 {
		t.Fatal("no baseline cycles")
	}
	// Every defense costs something.
	for _, s := range []Scheme{SoftBound, MPX, ASan, InFat} {
		if res[s].Cycles <= base {
			t.Errorf("%v cycles %d <= baseline %d", s, res[s].Cycles, base)
		}
	}
	// The paper's comparison shape: In-Fat Pointer is cheaper than the
	// shadow-bounds schemes on pointer-intensive code (§5.2.2: lower
	// than FRAMER's 223%% and MPX's 50%%), and MPX's directory walk is
	// the costliest.
	if res[InFat].Cycles >= res[SoftBound].Cycles {
		t.Errorf("in-fat %d >= softbound-like %d cycles", res[InFat].Cycles, res[SoftBound].Cycles)
	}
	if res[InFat].Cycles >= res[MPX].Cycles {
		t.Errorf("in-fat %d >= mpx-like %d cycles", res[InFat].Cycles, res[MPX].Cycles)
	}
	// Per-pointer shadow schemes pay big memory overheads; IFP's
	// metadata is per-object/per-block and far smaller.
	baseMem := res[None].Footprint
	if res[MPX].Footprint <= baseMem || res[SoftBound].Footprint <= baseMem {
		t.Error("shadow schemes show no memory overhead")
	}
	ifpMem := float64(res[InFat].Footprint) / float64(baseMem)
	mpxMem := float64(res[MPX].Footprint) / float64(baseMem)
	if ifpMem >= mpxMem {
		t.Errorf("in-fat memory ratio %.2f >= mpx-like %.2f", ifpMem, mpxMem)
	}
}

func TestGranularityTable(t *testing.T) {
	// Table 1's granularity column.
	want := map[Scheme]string{
		None: "none", SoftBound: "subobject", MPX: "subobject",
		ASan: "partial", InFat: "subobject", InFatTemporal: "object+temporal",
	}
	for s, g := range want {
		if s.Granularity() != g {
			t.Errorf("%v granularity = %s, want %s", s, s.Granularity(), g)
		}
		if s.String() == "" {
			t.Error("empty scheme name")
		}
	}
	if Scheme(99).String() == "" || Scheme(99).Granularity() != "none" {
		t.Error("unknown scheme formatting")
	}
}

func TestCompareRenders(t *testing.T) {
	out, err := Compare(400)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"softbound-like", "mpx-like", "asan-like", "in-fat-pointer",
		"in-fat-temporal", "subobject", "partial", "object+temporal", "generation compare"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q", want)
		}
	}
}

// TestTemporalRowCost: the generation comparison is a register-compare
// away from the spatial scheme — the temporal row must cost at least as
// much as in-fat-pointer but stay far below the shadow-bounds schemes.
func TestTemporalRowCost(t *testing.T) {
	const n = 1500
	spatial, err := Run(InFat, n)
	if err != nil {
		t.Fatal(err)
	}
	temporal, err := Run(InFatTemporal, n)
	if err != nil {
		t.Fatal(err)
	}
	if temporal.Cycles < spatial.Cycles {
		t.Errorf("temporal %d cycles < spatial %d (generation checks are not free)",
			temporal.Cycles, spatial.Cycles)
	}
	mpx, err := Run(MPX, n)
	if err != nil {
		t.Fatal(err)
	}
	if temporal.Cycles >= mpx.Cycles {
		t.Errorf("temporal %d cycles >= mpx-like %d", temporal.Cycles, mpx.Cycles)
	}
	if temporal.DetectsSub {
		t.Error("temporal row claims subobject granularity (gen bits displace the subobject index)")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(InFat, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(InFat, 300)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Instrs != b.Instrs {
		t.Error("non-deterministic measurement")
	}
}

func BenchmarkRelatedWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range []Scheme{None, SoftBound, MPX, ASan, InFat} {
			if _, err := Run(s, 400); err != nil {
				b.Fatal(err)
			}
		}
	}
}
