// Package cache models the L1 data cache of the simulated core. The
// paper's Figure-10 analysis attributes the worst wrapped-allocator
// overheads (health, ft) to L1D thrashing caused by per-object metadata,
// and the subheap scheme's win to metadata sharing within blocks; a
// standard set-associative write-back model with LRU replacement is enough
// to reproduce that mechanism.
//
// The model is purely for timing: data always comes from mem.Memory; the
// cache only decides whether an access is a hit or a miss and counts both.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes a cache geometry.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line size (power of two)
	Ways      int // associativity
}

// CVA6L1D is the default geometry, matching the CVA6 FPGA configuration the
// paper synthesizes (32 KiB, 8-way, 16-byte lines on the Genesys-2 build;
// "relatively small caches" per §5.2.4).
var CVA6L1D = Config{SizeBytes: 32 << 10, LineBytes: 16, Ways: 8}

// Stats accumulates access counts.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

func (s Stats) String() string {
	return fmt.Sprintf("accesses=%d misses=%d (%.2f%%) writebacks=%d",
		s.Accesses, s.Misses, 100*s.MissRate(), s.Writebacks)
}

// Line state is packed as tag<<2 | dirty<<1 | valid, so the tag probe of
// an 8-way set scans a single 64-byte host cache line; key 0 means
// invalid (a valid key always has bit 0 set). LRU stamps live in a
// parallel array touched only on hit or fill.
const (
	keyValid = 1 << 0
	keyDirty = 1 << 1
)

// Cache is a set-associative write-back, write-allocate cache model.
type Cache struct {
	cfg Config
	// keys and lru hold every way of every set contiguously (set i
	// occupies index range [i*ways, (i+1)*ways)).
	keys     []uint64
	lru      []uint64 // last-touch tick per way
	ways     int
	setMask  uint64
	lineBits uint
	setBits  uint // log2(set count); tag = line number >> setBits
	tick     uint64
	stats    Stats

	// lastLn/lastIdx memoize the flat way index of the most recently
	// touched line, short-circuiting the set scan for back-to-back
	// touches of one line (the common case: sequential word accesses
	// within a line, and multi-word metadata fetches). The memo is
	// validated against the packed key before use, so a stale entry —
	// after eviction, Flush, or Reset — simply falls through to the
	// full probe; it can never change hit/miss outcomes or LRU order.
	lastLn  uint64
	lastIdx int
}

// New builds a cache; it panics on a non-power-of-two geometry since that
// is a programming error in experiment setup.
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	if cfg.Ways <= 0 || cfg.SizeBytes%(cfg.LineBytes*cfg.Ways) != 0 {
		panic("cache: size must be a multiple of line*ways")
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if nsets&(nsets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	c := &Cache{cfg: cfg, ways: cfg.Ways, setMask: uint64(nsets - 1)}
	c.lineBits = uint(bits.TrailingZeros64(uint64(cfg.LineBytes)))
	c.setBits = uint(bits.Len64(c.setMask))
	c.keys = make([]uint64, nsets*cfg.Ways)
	c.lru = make([]uint64, nsets*cfg.Ways)
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears counters but keeps cache contents (used between the
// warm-up and measured phases of an experiment).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Access simulates one access of size bytes at addr (write if store is
// true) and returns the number of line misses it caused. Accesses that
// straddle line boundaries touch each line once, like the CVA6 LSU which
// splits misaligned accesses.
func (c *Cache) Access(addr uint64, size int, store bool) (misses int) {
	if size <= 0 {
		size = 1
	}
	first := addr >> c.lineBits
	last := (addr + uint64(size) - 1) >> c.lineBits
	for ln := first; ln <= last; ln++ {
		c.tick++
		c.stats.Accesses++
		if !c.touch(ln, store) {
			c.stats.Misses++
			misses++
		}
	}
	return misses
}

// touch looks up line number ln, filling on miss; reports hit.
func (c *Cache) touch(ln uint64, store bool) bool {
	want := ln>>c.setBits<<2 | keyValid
	if ln == c.lastLn {
		// Memoized repeat touch: lastIdx was recorded for this exact line
		// number, so it lies in ln's set; the key re-check proves the way
		// still holds this line (i.e. it was not evicted or invalidated in
		// between). The update below is exactly the hit path's.
		if i := c.lastIdx; c.keys[i]&^keyDirty == want {
			c.lru[i] = c.tick
			if store {
				c.keys[i] |= keyDirty
			}
			return true
		}
	}
	base := int(ln&c.setMask) * c.ways
	keys := c.keys[base : base+c.ways : base+c.ways]
	for i, k := range keys {
		if k&^keyDirty == want {
			c.lru[base+i] = c.tick
			if store {
				keys[i] = k | keyDirty
			}
			c.lastLn, c.lastIdx = ln, base+i
			return true
		}
	}
	// Miss: evict LRU way (first invalid way wins, matching a fill of an
	// un-warmed set).
	victim := 0
	for i := 1; i < c.ways; i++ {
		if keys[i] == 0 {
			victim = i
			break
		}
		if c.lru[base+i] < c.lru[base+victim] {
			victim = i
		}
	}
	if keys[victim]&(keyValid|keyDirty) == keyValid|keyDirty {
		c.stats.Writebacks++
	}
	fill := want
	if store {
		fill |= keyDirty
	}
	keys[victim] = fill
	c.lru[base+victim] = c.tick
	c.lastLn, c.lastIdx = ln, base+victim
	return false
}

// Reset returns the cache to its power-on state: every line invalid, the
// LRU clock and all counters at zero. Unlike Flush it models a cold start
// rather than an invalidation event, so dirty lines do not count as
// writebacks — a reset cache is indistinguishable from one built by New.
func (c *Cache) Reset() {
	clear(c.keys)
	clear(c.lru)
	c.tick = 0
	c.stats = Stats{}
}

// Flush invalidates all lines (counting writebacks of dirty lines); used
// between benchmark runs so each mode starts cold.
func (c *Cache) Flush() {
	for i, k := range c.keys {
		if k&(keyValid|keyDirty) == keyValid|keyDirty {
			c.stats.Writebacks++
		}
		c.keys[i] = 0
		c.lru[i] = 0
	}
}
