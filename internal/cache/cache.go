// Package cache models the L1 data cache of the simulated core. The
// paper's Figure-10 analysis attributes the worst wrapped-allocator
// overheads (health, ft) to L1D thrashing caused by per-object metadata,
// and the subheap scheme's win to metadata sharing within blocks; a
// standard set-associative write-back model with LRU replacement is enough
// to reproduce that mechanism.
//
// The model is purely for timing: data always comes from mem.Memory; the
// cache only decides whether an access is a hit or a miss and counts both.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes a cache geometry.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line size (power of two)
	Ways      int // associativity
}

// CVA6L1D is the default geometry, matching the CVA6 FPGA configuration the
// paper synthesizes (32 KiB, 8-way, 16-byte lines on the Genesys-2 build;
// "relatively small caches" per §5.2.4).
var CVA6L1D = Config{SizeBytes: 32 << 10, LineBytes: 16, Ways: 8}

// Stats accumulates access counts.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

func (s Stats) String() string {
	return fmt.Sprintf("accesses=%d misses=%d (%.2f%%) writebacks=%d",
		s.Accesses, s.Misses, 100*s.MissRate(), s.Writebacks)
}

// Line state is packed as tag<<2 | dirty<<1 | valid, so the tag probe of
// an 8-way set scans a single 64-byte host cache line; key 0 means
// invalid (a valid key always has bit 0 set). LRU stamps live in a
// parallel array touched only on hit or fill.
const (
	keyValid = 1 << 0
	keyDirty = 1 << 1
)

// way pairs a line's packed key with its LRU stamp. Keeping the two
// side by side means the hit path — key compare plus stamp update —
// touches one host cache line instead of two parallel arrays.
type way struct {
	key uint64 // tag<<2 | dirty<<1 | valid; 0 = invalid
	lru uint64 // last-touch tick
}

// Cache is a set-associative write-back, write-allocate cache model.
type Cache struct {
	cfg Config
	// w holds every way of every set contiguously (set i occupies index
	// range [i*ways, (i+1)*ways)).
	w        []way
	ways     int
	setMask  uint64
	lineBits uint
	setBits  uint // log2(set count); tag = line number >> setBits

	// tick is the LRU clock. It advances exactly once per line touch —
	// the same event Stats counts as an access — so Accesses is derived
	// as tick-accBase instead of being incremented separately on the hot
	// path. accBase records the tick at the last ResetStats.
	tick    uint64
	accBase uint64
	stats   Stats // Accesses field unused internally; see Stats()

	// mru holds, per set, a pointer to the way of that set's most
	// recently touched line. Access probes it before the full set scan,
	// so the common cases — back-to-back words within one line, and
	// loops alternating between lines that live in different sets — hit
	// with a single key compare and no second function call. The probe
	// is validated against the packed key, and a line occupies at most
	// one way of its set, so an MRU hit is exactly the hit the scan
	// would have found: it can never change hit/miss outcomes, LRU
	// order, or dirty bits. The pointers target c.w's backing array,
	// which is allocated once in New and never reallocated, so they
	// stay valid across Reset and Flush.
	mru []*way
}

// New builds a cache; it panics on a non-power-of-two geometry since that
// is a programming error in experiment setup.
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	if cfg.Ways <= 0 || cfg.SizeBytes%(cfg.LineBytes*cfg.Ways) != 0 {
		panic("cache: size must be a multiple of line*ways")
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if nsets&(nsets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	c := &Cache{cfg: cfg, ways: cfg.Ways, setMask: uint64(nsets - 1)}
	c.lineBits = uint(bits.TrailingZeros64(uint64(cfg.LineBytes)))
	c.setBits = uint(bits.Len64(c.setMask))
	c.w = make([]way, nsets*cfg.Ways)
	c.mru = make([]*way, nsets)
	for i := range c.mru {
		c.mru[i] = &c.w[i*cfg.Ways]
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.Accesses = c.tick - c.accBase
	return s
}

// ResetStats clears counters but keeps cache contents (used between the
// warm-up and measured phases of an experiment).
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	c.accBase = c.tick
}

// Access simulates one access of size bytes at addr (write if store is
// true) and returns the number of line misses it caused. Accesses that
// straddle line boundaries touch each line once, like the CVA6 LSU which
// splits misaligned accesses.
func (c *Cache) Access(addr uint64, size int, store bool) (misses int) {
	if size <= 0 {
		size = 1
	}
	first := addr >> c.lineBits
	last := (addr + uint64(size) - 1) >> c.lineBits
	for ln := first; ln <= last; ln++ {
		c.tick++
		// MRU probe: a single key compare against the set's most
		// recently touched way resolves the overwhelming majority of
		// touches without the set scan in touch.
		if wy := c.mru[ln&c.setMask]; wy.key&^keyDirty == ln>>c.setBits<<2|keyValid {
			wy.lru = c.tick
			if store {
				wy.key |= keyDirty
			}
			continue
		}
		if !c.touch(ln, store) {
			c.stats.Misses++
			misses++
		}
	}
	return misses
}

// TryHit attempts the single-line MRU-hit fast path of Access without a
// function call: it is small enough to inline into the machine's data-
// access hot path. It returns true only when the access touches exactly
// one line and that line is the set's most recently touched way, in which
// case it performs the full effect of Access (tick, LRU stamp, dirty bit;
// zero misses). On false it has no effect at all and the caller must run
// Access, which repeats the probe — the duplicated compare is the price of
// keeping this under the inlining budget. A non-positive size wraps the
// last-byte computation and falls out through the line-mismatch branch, so
// the size<=0 normalization stays Access's business.
func (c *Cache) TryHit(addr uint64, size int, store bool) bool {
	ln := addr >> c.lineBits
	if (addr+uint64(size-1))>>c.lineBits != ln {
		return false
	}
	wy := c.mru[ln&c.setMask]
	if wy.key&^keyDirty != ln>>c.setBits<<2|keyValid {
		return false
	}
	c.tick++
	wy.lru = c.tick
	if store {
		wy.key |= keyDirty
	}
	return true
}

// AccessWords simulates n consecutive 8-byte reads starting at addr —
// exactly equivalent to n successive Access(addr+8*i, 8, false) calls, but
// with one tag probe per distinct line: consecutive same-line touches
// cannot miss after the first (nothing intervenes to evict the line), so a
// group collapses to a single probe whose LRU stamp is the group's last
// tick. Accesses (via tick), misses, writebacks, and LRU order all come
// out bit-identical to the unbatched form; the equivalence test drives
// both against random streams. Promote's multi-word metadata records are
// the intended caller.
func (c *Cache) AccessWords(addr uint64, n int) (misses int) {
	if addr&7 != 0 || c.cfg.LineBytes < 8 {
		// A word could straddle lines; the collapse argument needs whole
		// words per line. No real caller takes this path (metadata is
		// 8-aligned and L1D lines are ≥8 bytes).
		for i := 0; i < n; i++ {
			misses += c.Access(addr+uint64(i)*8, 8, false)
		}
		return misses
	}
	for i := 0; i < n; {
		ln := (addr + uint64(i)*8) >> c.lineBits
		g := i + 1
		for g < n && (addr+uint64(g)*8)>>c.lineBits == ln {
			g++
		}
		c.tick += uint64(g - i)
		i = g
		if wy := c.mru[ln&c.setMask]; wy.key&^keyDirty == ln>>c.setBits<<2|keyValid {
			wy.lru = c.tick
			continue
		}
		if !c.touch(ln, false) {
			c.stats.Misses++
			misses++
		}
	}
	return misses
}

// touch looks up line number ln, filling on miss; reports hit. Access has
// already ruled out the set's MRU way.
func (c *Cache) touch(ln uint64, store bool) bool {
	want := ln>>c.setBits<<2 | keyValid
	set := int(ln & c.setMask)
	base := set * c.ways
	ws := c.w[base : base+c.ways : base+c.ways]
	for i := range ws {
		if ws[i].key&^keyDirty == want {
			ws[i].lru = c.tick
			if store {
				ws[i].key |= keyDirty
			}
			c.mru[set] = &ws[i]
			return true
		}
	}
	// Miss: evict LRU way (first invalid way wins, matching a fill of an
	// un-warmed set).
	victim := 0
	for i := 1; i < c.ways; i++ {
		if ws[i].key == 0 {
			victim = i
			break
		}
		if ws[i].lru < ws[victim].lru {
			victim = i
		}
	}
	if ws[victim].key&(keyValid|keyDirty) == keyValid|keyDirty {
		c.stats.Writebacks++
	}
	fill := want
	if store {
		fill |= keyDirty
	}
	ws[victim] = way{key: fill, lru: c.tick}
	c.mru[set] = &ws[victim]
	return false
}

// Reset returns the cache to its power-on state: every line invalid, the
// LRU clock and all counters at zero. Unlike Flush it models a cold start
// rather than an invalidation event, so dirty lines do not count as
// writebacks — a reset cache is indistinguishable from one built by New.
func (c *Cache) Reset() {
	clear(c.w)
	c.tick = 0
	c.accBase = 0
	c.stats = Stats{}
}

// Flush invalidates all lines (counting writebacks of dirty lines); used
// between benchmark runs so each mode starts cold.
func (c *Cache) Flush() {
	for i := range c.w {
		if c.w[i].key&(keyValid|keyDirty) == keyValid|keyDirty {
			c.stats.Writebacks++
		}
		c.w[i] = way{}
	}
}
