// Package cache models the L1 data cache of the simulated core. The
// paper's Figure-10 analysis attributes the worst wrapped-allocator
// overheads (health, ft) to L1D thrashing caused by per-object metadata,
// and the subheap scheme's win to metadata sharing within blocks; a
// standard set-associative write-back model with LRU replacement is enough
// to reproduce that mechanism.
//
// The model is purely for timing: data always comes from mem.Memory; the
// cache only decides whether an access is a hit or a miss and counts both.
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line size (power of two)
	Ways      int // associativity
}

// CVA6L1D is the default geometry, matching the CVA6 FPGA configuration the
// paper synthesizes (32 KiB, 8-way, 16-byte lines on the Genesys-2 build;
// "relatively small caches" per §5.2.4).
var CVA6L1D = Config{SizeBytes: 32 << 10, LineBytes: 16, Ways: 8}

// Stats accumulates access counts.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

func (s Stats) String() string {
	return fmt.Sprintf("accesses=%d misses=%d (%.2f%%) writebacks=%d",
		s.Accesses, s.Misses, 100*s.MissRate(), s.Writebacks)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch tick
}

// Cache is a set-associative write-back, write-allocate cache model.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	tick     uint64
	stats    Stats
}

// New builds a cache; it panics on a non-power-of-two geometry since that
// is a programming error in experiment setup.
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	if cfg.Ways <= 0 || cfg.SizeBytes%(cfg.LineBytes*cfg.Ways) != 0 {
		panic("cache: size must be a multiple of line*ways")
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if nsets&(nsets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	c := &Cache{cfg: cfg, setMask: uint64(nsets - 1)}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	c.sets = make([][]line, nsets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears counters but keeps cache contents (used between the
// warm-up and measured phases of an experiment).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Access simulates one access of size bytes at addr (write if store is
// true) and returns the number of line misses it caused. Accesses that
// straddle line boundaries touch each line once, like the CVA6 LSU which
// splits misaligned accesses.
func (c *Cache) Access(addr uint64, size int, store bool) (misses int) {
	if size <= 0 {
		size = 1
	}
	first := addr >> c.lineBits
	last := (addr + uint64(size) - 1) >> c.lineBits
	for ln := first; ln <= last; ln++ {
		c.tick++
		c.stats.Accesses++
		if !c.touch(ln, store) {
			c.stats.Misses++
			misses++
		}
	}
	return misses
}

// touch looks up line number ln, filling on miss; reports hit.
func (c *Cache) touch(ln uint64, store bool) bool {
	set := c.sets[ln&c.setMask]
	tagv := ln >> uint(len64(c.setMask))
	for i := range set {
		if set[i].valid && set[i].tag == tagv {
			set[i].lru = c.tick
			if store {
				set[i].dirty = true
			}
			return true
		}
	}
	// Miss: evict LRU way.
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.Writebacks++
	}
	set[victim] = line{tag: tagv, valid: true, dirty: store, lru: c.tick}
	return false
}

// Reset returns the cache to its power-on state: every line invalid, the
// LRU clock and all counters at zero. Unlike Flush it models a cold start
// rather than an invalidation event, so dirty lines do not count as
// writebacks — a reset cache is indistinguishable from one built by New.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.tick = 0
	c.stats = Stats{}
}

// Flush invalidates all lines (counting writebacks of dirty lines); used
// between benchmark runs so each mode starts cold.
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].dirty {
				c.stats.Writebacks++
			}
			set[i] = line{}
		}
	}
}

func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}
