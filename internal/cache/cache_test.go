package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets x 2 ways x 16-byte lines = 128 bytes.
	return New(Config{SizeBytes: 128, LineBytes: 16, Ways: 2})
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if m := c.Access(0x100, 4, false); m != 1 {
		t.Errorf("cold access misses = %d, want 1", m)
	}
	if m := c.Access(0x104, 4, false); m != 0 {
		t.Errorf("same-line access misses = %d, want 0", m)
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLineStraddle(t *testing.T) {
	c := small()
	// 8-byte access at line-12 crosses into the next line: two accesses.
	if m := c.Access(0x10c, 8, false); m != 2 {
		t.Errorf("straddling access misses = %d, want 2", m)
	}
	if c.Stats().Accesses != 2 {
		t.Errorf("accesses = %d, want 2", c.Stats().Accesses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Three lines mapping to set 0 (stride = nsets*line = 64 bytes).
	c.Access(0*64, 1, false) // way 0
	c.Access(1*64, 1, false) // way 1
	c.Access(0*64, 1, false) // touch way 0 (now MRU)
	c.Access(2*64, 1, false) // evicts line 1*64 (LRU)
	if m := c.Access(0*64, 1, false); m != 0 {
		t.Error("MRU line was evicted")
	}
	if m := c.Access(1*64, 1, false); m != 1 {
		t.Error("LRU line survived eviction")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := small()
	c.Access(0*64, 1, true)  // dirty way 0
	c.Access(1*64, 1, false) // clean way 1
	c.Access(2*64, 1, false) // evict dirty line 0*64
	if wb := c.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1", wb)
	}
	c.Access(0*64, 1, true) // reload, dirty again
	c.Flush()
	if wb := c.Stats().Writebacks; wb != 2 {
		t.Errorf("writebacks after flush = %d, want 2", wb)
	}
}

func TestFlushColdAgain(t *testing.T) {
	c := small()
	c.Access(0x40, 1, false)
	c.Flush()
	if m := c.Access(0x40, 1, false); m != 1 {
		t.Error("access after flush hit")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := small()
	c.Access(0x80, 1, false)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Error("stats not reset")
	}
	if m := c.Access(0x80, 1, false); m != 0 {
		t.Error("ResetStats evicted contents")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	bad := []Config{
		{SizeBytes: 128, LineBytes: 12, Ways: 2},  // non-pow2 line
		{SizeBytes: 100, LineBytes: 16, Ways: 2},  // size not multiple
		{SizeBytes: 96, LineBytes: 16, Ways: 2},   // 3 sets (non-pow2)
		{SizeBytes: 128, LineBytes: 16, Ways: 0},  // zero ways
		{SizeBytes: 128, LineBytes: -16, Ways: 2}, // negative line
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDefaultGeometry(t *testing.T) {
	c := New(CVA6L1D)
	if c.Config() != CVA6L1D {
		t.Error("Config() mismatch")
	}
	// Working set within capacity: second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			c.ResetStats()
		}
		for a := uint64(0); a < 16<<10; a += 16 {
			c.Access(a, 8, false)
		}
	}
	if c.Stats().Misses != 0 {
		t.Errorf("warm pass misses = %d, want 0", c.Stats().Misses)
	}
}

func TestThrashingExceedsCapacity(t *testing.T) {
	c := New(CVA6L1D)
	// Working set 4x capacity, streamed twice: second pass still misses.
	span := uint64(4 * CVA6L1D.SizeBytes)
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			c.ResetStats()
		}
		for a := uint64(0); a < span; a += uint64(CVA6L1D.LineBytes) {
			c.Access(a, 8, false)
		}
	}
	if r := c.Stats().MissRate(); r < 0.99 {
		t.Errorf("streaming miss rate = %.2f, want ~1.0", r)
	}
}

func TestStatsString(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate non-zero")
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

// Property: misses never exceed the number of lines touched, and hits+misses
// bookkeeping stays consistent.
func TestQuickAccounting(t *testing.T) {
	f := func(seq []uint32, stores []bool) bool {
		c := small()
		for i, a := range seq {
			store := i < len(stores) && stores[i]
			m := c.Access(uint64(a)%4096, 8, store)
			if m < 0 || m > 2 {
				return false
			}
		}
		st := c.Stats()
		return st.Misses <= st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
