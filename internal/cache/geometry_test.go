package cache

import (
	"fmt"
	"testing"
)

// refLen64 is the hand-rolled bit-length loop New used before the
// math/bits conversion; the geometry sweep pins the replacement to it.
func refLen64(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// refLineBits is the old shift-count loop for log2(LineBytes).
func refLineBits(lineBytes int) uint {
	var n uint
	for b := lineBytes; b > 1; b >>= 1 {
		n++
	}
	return n
}

// TestGeometryAllPowerOfTwoConfigs sweeps every power-of-two geometry in a
// generous envelope (line sizes 1..256, associativity 1..16, set counts
// 1..4096) and asserts the bits/masks New derives with math/bits match the
// hand-rolled reference loops bit for bit. This is the contract that keeps
// the tag/set/line decomposition — and therefore every modeled hit, miss,
// and writeback — identical across the refactor.
func TestGeometryAllPowerOfTwoConfigs(t *testing.T) {
	for lineBytes := 1; lineBytes <= 256; lineBytes <<= 1 {
		for ways := 1; ways <= 16; ways <<= 1 {
			for nsets := 1; nsets <= 4096; nsets <<= 1 {
				cfg := Config{
					SizeBytes: nsets * ways * lineBytes,
					LineBytes: lineBytes,
					Ways:      ways,
				}
				c := New(cfg)
				if got, want := c.lineBits, refLineBits(lineBytes); got != want {
					t.Fatalf("%+v: lineBits = %d, want %d", cfg, got, want)
				}
				if got, want := c.setMask, uint64(nsets-1); got != want {
					t.Fatalf("%+v: setMask = %#x, want %#x", cfg, got, want)
				}
				if got, want := int(c.setBits), refLen64(c.setMask); got != want {
					t.Fatalf("%+v: setBits = %d, want %d", cfg, got, want)
				}
				if got, want := len(c.w), nsets*ways; got != want {
					t.Fatalf("%+v: len(ways) = %d, want %d", cfg, got, want)
				}
			}
		}
	}
}

// refCache is the pre-refactor cache model (a struct per line, two chained
// fields for valid/dirty) reproduced verbatim as a differential oracle.
type refCache struct {
	sets     [][]refLine
	setMask  uint64
	lineBits uint
	tick     uint64
	stats    Stats
}

type refLine struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

func newRefCache(cfg Config) *refCache {
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &refCache{setMask: uint64(nsets - 1), lineBits: refLineBits(cfg.LineBytes)}
	c.sets = make([][]refLine, nsets)
	for i := range c.sets {
		c.sets[i] = make([]refLine, cfg.Ways)
	}
	return c
}

func (c *refCache) access(addr uint64, size int, store bool) {
	if size <= 0 {
		size = 1
	}
	first := addr >> c.lineBits
	last := (addr + uint64(size) - 1) >> c.lineBits
	for ln := first; ln <= last; ln++ {
		c.tick++
		c.stats.Accesses++
		if !c.touch(ln, store) {
			c.stats.Misses++
		}
	}
}

func (c *refCache) touch(ln uint64, store bool) bool {
	set := c.sets[ln&c.setMask]
	tagv := ln >> uint(refLen64(c.setMask))
	for i := range set {
		if set[i].valid && set[i].tag == tagv {
			set[i].lru = c.tick
			if store {
				set[i].dirty = true
			}
			return true
		}
	}
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.Writebacks++
	}
	set[victim] = refLine{tag: tagv, valid: true, dirty: store, lru: c.tick}
	return false
}

// TestAccessWordsMatchesUnbatched drives AccessWords and the equivalent
// sequence of single-word Access calls over identical pseudorandom streams
// on two caches and asserts the stats, miss returns, and subsequent
// behavior (via a trailing shared stream) agree exactly — the batching
// contract promote's metadata fetches rely on.
func TestAccessWordsMatchesUnbatched(t *testing.T) {
	configs := []Config{
		CVA6L1D,
		{SizeBytes: 1 << 10, LineBytes: 16, Ways: 1},
		{SizeBytes: 512, LineBytes: 64, Ways: 8},
		{SizeBytes: 128, LineBytes: 8, Ways: 2}, // lines == word size
	}
	for _, cfg := range configs {
		t.Run(fmt.Sprintf("%dB_%dw_%dl", cfg.SizeBytes, cfg.Ways, cfg.LineBytes), func(t *testing.T) {
			batched, plain := New(cfg), New(cfg)
			x := uint64(0x243F6A8885A308D3)
			next := func() uint64 {
				x += 0x9E3779B97F4A7C15
				z := x
				z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
				z = (z ^ (z >> 27)) * 0x94D049BB133111EB
				return z ^ (z >> 31)
			}
			for i := 0; i < 20_000; i++ {
				r := next()
				if r&3 == 0 {
					// Multi-word record fetch, 8-aligned (the real call
					// shape) and occasionally unaligned (fallback path).
					addr := r >> 8 & 0xFFFF8
					if r&4 != 0 {
						addr |= r >> 40 & 7
					}
					n := 1 + int(r>>32&3) // 1..4 words
					gotB := batched.AccessWords(addr, n)
					gotP := 0
					for w := 0; w < n; w++ {
						gotP += plain.Access(addr+uint64(w)*8, 8, false)
					}
					if gotB != gotP {
						t.Fatalf("op %d: AccessWords(%#x,%d) misses = %d, unbatched %d", i, addr, n, gotB, gotP)
					}
				} else {
					// Interleaved ordinary traffic keeps eviction state hot.
					addr := r >> 16 & 0x1FFFF
					size := 1 << (r >> 2 & 3)
					store := r&2 != 0
					if mb, mp := batched.Access(addr, size, store), plain.Access(addr, size, store); mb != mp {
						t.Fatalf("op %d: Access misses diverge: %d vs %d", i, mb, mp)
					}
				}
				if batched.Stats() != plain.Stats() {
					t.Fatalf("op %d: stats = %+v, unbatched %+v", i, batched.Stats(), plain.Stats())
				}
			}
			batched.Flush()
			plain.Flush()
			if batched.Stats() != plain.Stats() {
				t.Fatalf("post-flush stats = %+v, unbatched %+v", batched.Stats(), plain.Stats())
			}
		})
	}
}

// TestPackedKeysMatchReferenceModel drives the packed-key cache and the
// pre-refactor per-line-struct model through the same pseudorandom access
// stream across several geometries (including degenerate 1-way and 1-set
// shapes) and asserts every counter agrees — the behavioral half of the
// geometry pin.
func TestPackedKeysMatchReferenceModel(t *testing.T) {
	configs := []Config{
		CVA6L1D,
		{SizeBytes: 1 << 10, LineBytes: 16, Ways: 1}, // direct-mapped
		{SizeBytes: 512, LineBytes: 64, Ways: 8},     // single set
		{SizeBytes: 4 << 10, LineBytes: 32, Ways: 4},
		{SizeBytes: 64, LineBytes: 8, Ways: 2}, // tiny: constant thrash
	}
	for _, cfg := range configs {
		t.Run(fmt.Sprintf("%dB_%dw_%dl", cfg.SizeBytes, cfg.Ways, cfg.LineBytes), func(t *testing.T) {
			c := New(cfg)
			ref := newRefCache(cfg)
			// splitmix64 stream: deterministic, full 64-bit coverage.
			x := uint64(0x9E3779B97F4A7C15)
			next := func() uint64 {
				x += 0x9E3779B97F4A7C15
				z := x
				z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
				z = (z ^ (z >> 27)) * 0x94D049BB133111EB
				return z ^ (z >> 31)
			}
			for i := 0; i < 50_000; i++ {
				r := next()
				// Mix hot (small window) and cold (wide) addresses so hits,
				// misses, evictions, and line straddles all occur.
				addr := r >> 16 & 0xFFFF
				if r&1 == 0 {
					addr = r >> 8 & 0xFFFFFF
				}
				size := 1 << (r >> 2 & 3) // 1,2,4,8
				store := r&2 != 0
				c.Access(addr, size, store)
				ref.access(addr, size, store)
				if i%4096 == 0 && c.Stats() != ref.stats {
					t.Fatalf("op %d: stats = %+v, ref %+v", i, c.Stats(), ref.stats)
				}
			}
			if c.Stats() != ref.stats {
				t.Fatalf("final stats = %+v, ref %+v", c.Stats(), ref.stats)
			}
			// Flush writebacks must agree too: same dirty lines resident.
			c.Flush()
			for _, set := range ref.sets {
				for i := range set {
					if set[i].valid && set[i].dirty {
						ref.stats.Writebacks++
					}
				}
			}
			if got, want := c.Stats().Writebacks, ref.stats.Writebacks; got != want {
				t.Fatalf("post-flush writebacks = %d, want %d", got, want)
			}
		})
	}
}
