// Package chaos is a seeded, deterministic fault injector for the In-Fat
// Pointer simulator: it builds a known-good runtime scenario, injects one
// fault — a pointer-tag bit flip, corruption of a metadata scheme's
// backing storage, a mangled layout-table entry, a swapped MAC key, or a
// forced allocator failure — then exercises the corrupted state the way
// instrumented code would (promote, in-bounds accesses, a subobject-
// indexed access) and classifies the outcome into exactly one bucket:
//
//   - Detected:  the defense produced a typed trap of the expected class
//     (spatial/MAC for state corruption, allocator for forced failures).
//   - Tolerated: the run completed cleanly — a documented-by-design
//     escape of the paper's encoding (enumerated in DESIGN.md §10).
//   - Internal:  a recovered Go panic or an untyped/misclassified error —
//     a simulator bug. The campaign treats any internal outcome as a
//     failure.
//
// Every cell is a pure function of (scheme, fault, seed): same inputs,
// byte-identical outcome, at any parallelism — which is what lets the
// campaign (internal/exp) fan the grid over the worker pool and still
// render a reproducible report.
package chaos

import (
	"errors"
	"fmt"

	"infat/internal/layout"
	"infat/internal/mac"
	"infat/internal/machine"
	"infat/internal/metadata"
	"infat/internal/rt"
	"infat/internal/tag"
)

// Scheme selects which of the three metadata schemes (§3.3) the target
// object is registered under.
type Scheme int

// Target schemes.
const (
	// SchemeLocal targets a wrapped-allocator object with local-offset
	// metadata appended to it (§3.3.1).
	SchemeLocal Scheme = iota
	// SchemeSubheap targets a pool-allocated slot with per-block shared
	// metadata (§3.3.2).
	SchemeSubheap
	// SchemeGlobal targets an object registered in the global metadata
	// table (§3.3.3).
	SchemeGlobal
)

// Schemes lists every target scheme in campaign order.
var Schemes = []Scheme{SchemeLocal, SchemeSubheap, SchemeGlobal}

func (s Scheme) String() string {
	switch s {
	case SchemeLocal:
		return "local-offset"
	case SchemeSubheap:
		return "subheap"
	case SchemeGlobal:
		return "global-table"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Fault is the kind of fault injected into a cell.
type Fault int

// Fault kinds. The first six corrupt state the defense must notice; the
// last two force allocator failures the runtime must surface as typed
// traps.
const (
	// FlipPoison flips one of the pointer's two poison bits (§3.2).
	FlipPoison Fault = iota
	// FlipScheme flips one of the two scheme-selector bits.
	FlipScheme
	// FlipMeta flips one of the 12 scheme-metadata/subobject-index bits.
	FlipMeta
	// CorruptMeta flips one bit of the scheme's backing metadata storage
	// (local-offset record, subheap block metadata, or global-table row).
	CorruptMeta
	// CorruptLayout flips one bit of the object's encoded layout table.
	CorruptLayout
	// SwapKey replaces the machine's MAC key, simulating metadata forged
	// without knowledge of the key.
	SwapKey
	// Exhaust drives the scheme's allocator to exhaustion.
	Exhaust
	// OOMAt arms an injected allocator failure at a seed-chosen ordinal.
	OOMAt
	// CorruptGen desynchronizes the temporal generation check: it either
	// bumps the generation store behind a live pointer's back or flips one
	// of the pointer's generation-field bits. Runs under rt.IFPTemporal
	// (the only mode with generation tagging); the generation comparison
	// must trap TrapTemporal — except for global-table pointers, which
	// carry no generation field (documented escape).
	CorruptGen
)

// Faults lists every fault kind in campaign order.
var Faults = []Fault{FlipPoison, FlipScheme, FlipMeta, CorruptMeta, CorruptLayout, SwapKey, Exhaust, OOMAt, CorruptGen}

func (f Fault) String() string {
	switch f {
	case FlipPoison:
		return "flip-poison"
	case FlipScheme:
		return "flip-scheme"
	case FlipMeta:
		return "flip-meta"
	case CorruptMeta:
		return "corrupt-meta"
	case CorruptLayout:
		return "corrupt-layout"
	case SwapKey:
		return "swap-mac-key"
	case Exhaust:
		return "alloc-exhaust"
	case OOMAt:
		return "alloc-oom-at"
	case CorruptGen:
		return "corrupt-gen"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Bucket is the classification of one injected fault.
type Bucket int

// Outcome buckets. Every cell lands in exactly one.
const (
	// Detected: a typed trap of the expected class.
	Detected Bucket = iota
	// Tolerated: the run completed cleanly — a documented escape.
	Tolerated
	// Internal: a recovered panic or an untyped error — a simulator bug.
	Internal
)

func (b Bucket) String() string {
	switch b {
	case Detected:
		return "detected"
	case Tolerated:
		return "tolerated"
	case Internal:
		return "internal"
	}
	return fmt.Sprintf("bucket(%d)", int(b))
}

// Version is the campaign-behaviour version folded into memoization
// digests (internal/memo). Bump it whenever Run's observable outcome for
// any (scheme, fault, seed) changes — new fault semantics, different
// scenario construction — which invalidates every memoized chaos cell.
const Version = "chaos/v1"

// Outcome records one campaign cell.
type Outcome struct {
	Scheme Scheme
	Fault  Fault
	Seed   uint64
	Bucket Bucket
	// Detail is a deterministic description of the injected fault and why
	// it landed in its bucket.
	Detail string
}

// rand is a splitmix64 stream: tiny, deterministic, and independent of
// math/rand's global state (which would break cross-run reproducibility).
type rand struct{ s uint64 }

func newRand(seed uint64) *rand { return &rand{s: seed} }

func (r *rand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// intn returns a deterministic value in [0, n).
func (r *rand) intn(n int) int { return int(r.next() % uint64(n)) }

// The target type: a struct with a header, an array of small structs
// (giving the layout walker an array-of-struct level to divide through),
// and a tail — 48 bytes, within every scheme's reach. Shared read-only
// across cells (layout types are immutable after construction).
var (
	chaosElemT = layout.StructOf("chaos_elem",
		layout.F("a", layout.Int),
		layout.F("b", layout.Int))
	chaosNodeT = layout.StructOf("chaos_node",
		layout.F("hdr", layout.Long),
		layout.F("arr", layout.ArrayOf(chaosElemT, 4)),
		layout.F("tail", layout.Long))
)

// subobjPath is the member whose address the subobject-indexed exercise
// access takes; subobjOff is its byte offset (arr[1].a).
const (
	subobjPath = "arr[].a"
	subobjOff  = 16
)

// scenario is one cell's known-good starting state: a fresh runtime with
// a target object of the requested scheme between two decoys.
type scenario struct {
	scheme Scheme
	r      *rt.Runtime
	obj    rt.Obj
	decoys []rt.Obj
	subIdx uint16
}

// must converts a scenario-construction error into a panic: the scenario
// is built from constants, so failure is a harness bug, and Run's recover
// files it in the Internal bucket where bugs belong.
func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("chaos: scenario construction failed: %v", err))
	}
}

// build constructs the cell scenario for a scheme. The target object is
// seeded with a recognizable pattern and its tag is asserted to carry the
// scheme under test.
func build(s Scheme) *scenario {
	var r *rt.Runtime
	var want tag.Scheme
	switch s {
	case SchemeLocal:
		r = rt.Acquire(rt.Wrapped)
		want = tag.SchemeLocalOffset
	case SchemeSubheap:
		r = rt.Acquire(rt.Subheap)
		want = tag.SchemeSubheap
	case SchemeGlobal:
		r = rt.Acquire(rt.Wrapped)
		r.ForceGlobalTable = true
		want = tag.SchemeGlobalTable
	default:
		panic(fmt.Sprintf("chaos: unknown scheme %d", int(s)))
	}
	sc := &scenario{scheme: s, r: r}
	sc.populate(want)
	return sc
}

// buildTemporal constructs the CorruptGen cell scenario: the same target
// object, but under rt.IFPTemporal so its pointer carries a generation
// tag. Each scheme is steered the way hybrid selection reaches it:
// local-offset via a cold signature, subheap by warming the signature
// past the graduation threshold, global-table via the ForceGlobalTable
// ablation (whose pointers carry no generation field — the documented
// escape this fault's Tolerated bucket pins).
func buildTemporal(s Scheme) *scenario {
	r := rt.Acquire(rt.IFPTemporal)
	var want tag.Scheme
	switch s {
	case SchemeLocal:
		want = tag.SchemeLocalOffset
	case SchemeSubheap:
		// Warm the chaos_node signature past hybrid graduation so the
		// target and decoys land in subheap pool slots (the warm-ups stay
		// live, keeping the block resident).
		for i := 0; i < 5; i++ {
			_, err := r.Malloc(chaosNodeT, 1)
			must(err)
		}
		want = tag.SchemeSubheap
	case SchemeGlobal:
		r.ForceGlobalTable = true
		want = tag.SchemeGlobalTable
	default:
		panic(fmt.Sprintf("chaos: unknown scheme %d", int(s)))
	}
	sc := &scenario{scheme: s, r: r}
	sc.populate(want)
	return sc
}

// populate allocates the decoy/target/decoy triple, asserts the target's
// tag scheme, resolves the subobject index, and seeds guest memory.
func (sc *scenario) populate(want tag.Scheme) {
	r := sc.r

	d1, err := r.Malloc(chaosNodeT, 1)
	must(err)
	sc.obj, err = r.Malloc(chaosNodeT, 1)
	must(err)
	d2, err := r.Malloc(chaosNodeT, 1)
	must(err)
	sc.decoys = []rt.Obj{d1, d2}

	if got := tag.SchemeOf(sc.obj.P); got != want {
		must(fmt.Errorf("target tag scheme = %v, want %v", got, want))
	}
	sc.subIdx, err = r.SubobjIndexOf(chaosNodeT, subobjPath)
	must(err)

	// Seed every word of target and decoys so later reads hit initialized
	// memory whatever bounds the corrupted lookup resolves to.
	for _, o := range []rt.Obj{d1, sc.obj, d2} {
		for off := uint64(0); off < o.Size; off += 8 {
			must(r.Store(r.GEP(o.P, int64(off), o.B), 0xA5A5_0000+off, 8, o.B))
		}
	}
}

// exercise drives the possibly-corrupted pointer the way instrumented
// code would: re-promote (the pointer "was just loaded from memory"),
// sweep the object's first/middle/last bytes, write the first word, then
// take a subobject-indexed pointer through the layout walker and access
// it. The first trap wins.
func (sc *scenario) exercise(p uint64) error {
	size := sc.obj.Size
	q, qb := sc.r.Promote(p)
	for _, off := range []uint64{0, size / 2, size - 1} {
		if _, err := sc.r.Load(sc.r.GEP(q, int64(off), qb), 1, qb); err != nil {
			return err
		}
	}
	if err := sc.r.Store(q, 0x5A5A_5A5A, 8, qb); err != nil {
		return err
	}
	// Subobject access: &obj->arr[1].a then promote-and-load, the §3.4
	// narrowing path.
	sp := sc.r.GEP(p, subobjOff, machine.Cleared)
	sp = sc.r.SetSub(sp, sc.subIdx)
	sq, sb := sc.r.Promote(sp)
	if _, err := sc.r.Load(sq, 4, sb); err != nil {
		return err
	}
	return nil
}

// applied describes one injected state fault.
type applied struct {
	p    uint64 // pointer to exercise (tag faults change it; others keep obj.P)
	desc string
	word int // flipped storage word (CorruptMeta/CorruptLayout), else -1
	bit  int // flipped bit position, else -1
}

// applyFault injects one state fault into the scenario, chosen
// deterministically from rng.
func applyFault(sc *scenario, f Fault, rng *rand) applied {
	a := applied{p: sc.obj.P, word: -1, bit: -1}
	r := sc.r
	switch f {
	case FlipPoison:
		bit := 62 + rng.intn(2)
		a.p = sc.obj.P ^ uint64(1)<<bit
		a.desc = fmt.Sprintf("pointer poison bit %d flipped", bit)
	case FlipScheme:
		bit := 60 + rng.intn(2)
		a.p = sc.obj.P ^ uint64(1)<<bit
		a.desc = fmt.Sprintf("pointer scheme-selector bit %d flipped (%v -> %v)",
			bit, tag.SchemeOf(sc.obj.P), tag.SchemeOf(a.p))
	case FlipMeta:
		bit := 48 + rng.intn(12)
		a.p = sc.obj.P ^ uint64(1)<<bit
		a.desc = fmt.Sprintf("pointer meta bit %d flipped", bit)
	case CorruptMeta:
		addr, words := metaStorage(sc)
		a.word, a.bit = rng.intn(words), rng.intn(64)
		flipWord(r, addr+uint64(a.word)*8, a.bit)
		a.desc = fmt.Sprintf("%v metadata word %d bit %d flipped", sc.scheme, a.word, a.bit)
	case CorruptLayout:
		addr, tb, err := r.LayoutOf(chaosNodeT)
		must(err)
		words := len(tb.Encode())
		a.word, a.bit = rng.intn(words), rng.intn(64)
		flipWord(r, addr+uint64(a.word)*8, a.bit)
		a.desc = fmt.Sprintf("layout-table word %d bit %d flipped", a.word, a.bit)
	case SwapKey:
		r.M.Key = mac.NewKey(0xC0FFEE ^ rng.next())
		a.desc = "MAC key swapped"
	case CorruptGen:
		if bits := tag.GenBits(tag.SchemeOf(sc.obj.P)); bits > 0 && rng.intn(2) == 1 {
			// Flip one pointer generation bit: the pointer now claims a
			// generation the store never issued.
			a.bit = 48 + rng.intn(bits)
			a.p = sc.obj.P ^ uint64(1)<<a.bit
			a.desc = fmt.Sprintf("pointer generation bit %d flipped", a.bit)
		} else {
			// Bump the store behind the live pointer's back — the state a
			// use-after-free leaves: the chunk's generation moved on while
			// the pointer's stamp did not. (Global-table pointers have no
			// generation bits, so they always take this arm — and tolerate
			// it, by design.)
			g := r.Gens().Bump(sc.obj.Base())
			a.desc = fmt.Sprintf("generation store bumped to %d behind a live pointer", g)
		}
	default:
		panic(fmt.Sprintf("chaos: applyFault on %v", f))
	}
	return a
}

// metaStorage locates the target object's backing metadata record.
func metaStorage(sc *scenario) (addr uint64, words int) {
	base := sc.obj.Base()
	switch sc.scheme {
	case SchemeLocal:
		metaAddr, _ := metadata.LocalPlacement(base, sc.obj.Size)
		return metaAddr, metadata.LocalMetaBytes / 8
	case SchemeSubheap:
		crIdx, _ := tag.SubheapFields(sc.obj.P)
		cr := sc.r.M.CRs[crIdx]
		if !cr.Valid {
			must(fmt.Errorf("target CR %d invalid", crIdx))
		}
		return cr.MetaAddr(base), metadata.SubheapMetaBytes / 8
	case SchemeGlobal:
		idx := tag.GlobalIndex(sc.obj.P)
		return metadata.RowAddr(sc.r.M.GlobalBase, idx), metadata.GlobalRowBytes / 8
	}
	panic("chaos: metaStorage on unknown scheme")
}

// flipWord XORs one bit of a guest-memory word. The address is always a
// mapped metadata/layout location, so failure is a harness bug.
func flipWord(r *rt.Runtime, addr uint64, bit int) {
	v, err := r.M.Mem.Load64(addr)
	must(err)
	must(r.M.Mem.Store64(addr, v^uint64(1)<<bit))
}

// detectionTrap reports whether err is a typed trap of the classes that
// constitute detection for corrupted state: poison, bounds, metadata,
// memory (the corrupted lookup walked off the map), or temporal (the
// generation comparison caught a CorruptGen desync — never produced by
// the spatial faults, whose scenarios run without generation tagging).
func detectionTrap(err error) (machine.TrapKind, bool) {
	for _, k := range []machine.TrapKind{
		machine.TrapPoison, machine.TrapBounds, machine.TrapMetadata,
		machine.TrapMemory, machine.TrapTemporal,
	} {
		if machine.IsTrap(err, k) {
			return k, true
		}
	}
	return 0, false
}

// Run executes one campaign cell. It never panics: escaped panics are
// recovered into the Internal bucket, which the campaign treats as a
// simulator bug.
func Run(s Scheme, f Fault, seed uint64) (o Outcome) {
	o = Outcome{Scheme: s, Fault: f, Seed: seed}
	var sc *scenario
	defer func() {
		if r := recover(); r != nil {
			o.Bucket = Internal
			o.Detail = fmt.Sprintf("panic: %v", r)
		}
		// Release even a corrupted or mid-trap runtime: the pool resets it
		// from scratch before its next use, so injected faults cannot leak
		// into later cells.
		if sc != nil {
			rt.Release(sc.r)
		}
	}()
	rng := newRand(seed<<8 ^ uint64(s)<<4 ^ uint64(f))
	if f == CorruptGen {
		sc = buildTemporal(s)
	} else {
		sc = build(s)
	}

	switch f {
	case Exhaust:
		o.Bucket, o.Detail = runExhaust(sc)
		return o
	case OOMAt:
		o.Bucket, o.Detail = runOOMAt(sc, rng)
		return o
	}

	a := applyFault(sc, f, rng)
	coarseBefore := sc.r.M.C.NarrowCoarse
	err := sc.exercise(a.p)
	coarsened := sc.r.M.C.NarrowCoarse > coarseBefore
	switch kind, det := detectionTrap(err); {
	case err == nil:
		// A clean run after a generation desync is only legitimate for
		// pointers with no generation field; on the tagged schemes it means
		// the temporal check failed to fire — a simulator bug.
		if f == CorruptGen && sc.scheme != SchemeGlobal {
			o.Bucket = Internal
			o.Detail = a.desc + ": generation desync escaped the temporal check"
			return o
		}
		o.Bucket = Tolerated
		o.Detail = a.desc + ": " + toleratedReason(sc, f, a, coarsened)
	case det:
		o.Bucket = Detected
		o.Detail = fmt.Sprintf("%s: %v trap", a.desc, kind)
	default:
		o.Bucket = Internal
		o.Detail = fmt.Sprintf("%s: unclassified error: %v", a.desc, err)
	}
	return o
}

// toleratedReason names the documented-by-design escape a clean run
// corresponds to. Every reason produced here must be enumerated in
// DESIGN.md §10.
func toleratedReason(sc *scenario, f Fault, a applied, coarsened bool) string {
	switch f {
	case FlipPoison:
		return "undefined poison encoding (0b10): promote re-derived Valid from intact metadata (only OOB/Invalid are sticky)"
	case FlipScheme:
		if tag.SchemeOf(a.p) == tag.SchemeLegacy {
			return "selector became legacy: pointer exempt from checking by design (§3.2)"
		}
		return "selector resolved to another scheme whose lookup covered the accesses"
	case FlipMeta:
		if coarsened {
			return "subobject-index change coarsened to object bounds (§3.4 guarantee)"
		}
		return "flip stayed within fields whose retrieved bounds still contain the accesses"
	case CorruptMeta:
		if sc.scheme == SchemeGlobal {
			return "global-table rows carry no MAC (§3.3.3): the flip did not shrink bounds below the accesses"
		}
		return "flipped bit is not covered by the MAC input (reserved/ignored metadata bits)"
	case CorruptLayout:
		if sc.scheme == SchemeGlobal {
			return "global-table pointers cannot narrow (§3.3.3): layout table unused"
		}
		if coarsened {
			return "corrupt entry rejected by the walker: coarsened to object bounds (§3.4 guarantee)"
		}
		return "flipped word outside the entries this access walks, or widened bounds still containing the accesses"
	case SwapKey:
		if sc.scheme == SchemeGlobal {
			return "global-table rows carry no MAC (§3.3.3): key swap unobservable for this scheme"
		}
		return "MAC did not cover the exercised lookup"
	case CorruptGen:
		return "global-table pointers carry no generation field (§3.3.3: all 12 tag bits name the row): temporal checking does not apply"
	}
	return "run completed cleanly"
}

// exhaustStep returns the per-allocation size used to drive each
// scheme's allocator to exhaustion quickly: the wrapped free list and
// the subheap buddy region are 512 MiB, the global table has 4096 rows.
func exhaustStep(s Scheme) uint64 {
	switch s {
	case SchemeLocal:
		return 16 << 20 // free-list arena exhaustion in ~32 allocations
	case SchemeSubheap:
		return 1 << 20 // buddy-region exhaustion through max-size pool slots
	default:
		return 16 // row exhaustion: 4096-row table fills first
	}
}

// runExhaust drives the scheme's allocator to exhaustion and checks the
// failure is a typed allocator trap — and that the runtime survives it.
func runExhaust(sc *scenario) (Bucket, string) {
	step := exhaustStep(sc.scheme)
	var err error
	for i := 0; i < 10_000; i++ {
		if _, err = sc.r.MallocBytes(step); err != nil {
			break
		}
	}
	if err == nil {
		return Internal, "allocator never reported exhaustion"
	}
	if !machine.IsTrap(err, machine.TrapAlloc) {
		return Internal, fmt.Sprintf("exhaustion surfaced untyped: %v", err)
	}
	// The runtime must remain consistent: the pre-exhaustion target is
	// still fully accessible.
	if err := sc.exercise(sc.obj.P); err != nil {
		return Internal, fmt.Sprintf("target unusable after exhaustion: %v", err)
	}
	return Detected, fmt.Sprintf("allocator exhaustion -> typed alloc trap (%v)", causeOf(err))
}

// runOOMAt arms a one-shot injected allocator fault at a seed-chosen
// ordinal and checks it fires exactly there, typed, with no collateral.
func runOOMAt(sc *scenario, rng *rand) (Bucket, string) {
	n := 1 + rng.intn(6)
	sc.r.InjectAllocFault(n)
	var live []rt.Obj
	for i := 1; i <= n+2; i++ {
		o, err := sc.r.MallocBytes(64)
		if i == n {
			if !machine.IsTrap(err, machine.TrapAlloc) || !errors.Is(err, rt.ErrInjectedAllocFault) {
				return Internal, fmt.Sprintf("injected fault at ordinal %d surfaced as %v", n, err)
			}
			continue
		}
		if err != nil {
			return Internal, fmt.Sprintf("allocation %d failed besides the armed ordinal %d: %v", i, n, err)
		}
		live = append(live, o)
	}
	for _, o := range live {
		if err := sc.r.Free(o); err != nil {
			return Internal, fmt.Sprintf("free after injected fault: %v", err)
		}
	}
	if err := sc.exercise(sc.obj.P); err != nil {
		return Internal, fmt.Sprintf("target unusable after injected fault: %v", err)
	}
	return Detected, fmt.Sprintf("injected failure at allocation %d -> typed alloc trap", n)
}

// causeOf names a trap's underlying cause for report details.
func causeOf(err error) string {
	var t *machine.Trap
	if errors.As(err, &t) && t.Cause != nil {
		return t.Cause.Error()
	}
	return err.Error()
}
