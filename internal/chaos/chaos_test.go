package chaos

import (
	"reflect"
	"strings"
	"testing"
)

// grid runs the full campaign grid at the given seeds-per-cell count.
func grid(seeds uint64) []Outcome {
	var out []Outcome
	for _, s := range Schemes {
		for _, f := range Faults {
			for seed := uint64(0); seed < seeds; seed++ {
				out = append(out, Run(s, f, seed))
			}
		}
	}
	return out
}

func TestRunDeterministic(t *testing.T) {
	for _, s := range Schemes {
		for _, f := range Faults {
			a := Run(s, f, 7)
			b := Run(s, f, 7)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%v/%v: outcomes differ:\n  %+v\n  %+v", s, f, a, b)
			}
		}
	}
}

func TestGridHasNoInternalOutcomes(t *testing.T) {
	for _, o := range grid(4) {
		if o.Bucket == Internal {
			t.Errorf("%v/%v seed %d: internal outcome: %s", o.Scheme, o.Fault, o.Seed, o.Detail)
		}
	}
}

// TestBucketExpectations pins the detection guarantees the campaign
// proves: allocator faults are always typed traps, MAC-protected schemes
// always catch a key swap, and the documented escapes land in Tolerated
// with a reason (never silently).
func TestBucketExpectations(t *testing.T) {
	for _, o := range grid(8) {
		switch {
		case o.Fault == Exhaust || o.Fault == OOMAt:
			if o.Bucket != Detected {
				t.Errorf("%v/%v seed %d: allocator fault not detected: %s",
					o.Scheme, o.Fault, o.Seed, o.Detail)
			}
		case o.Fault == SwapKey && o.Scheme != SchemeGlobal:
			if o.Bucket != Detected {
				t.Errorf("%v/swap-mac-key seed %d: key swap escaped a MAC-protected scheme: %s",
					o.Scheme, o.Seed, o.Detail)
			}
		case o.Fault == SwapKey && o.Scheme == SchemeGlobal:
			// The global table carries no MAC by design (§3.3.3).
			if o.Bucket != Tolerated {
				t.Errorf("global-table/swap-mac-key seed %d: bucket %v, want tolerated: %s",
					o.Seed, o.Bucket, o.Detail)
			}
		case o.Fault == CorruptLayout && o.Scheme == SchemeGlobal:
			// Global-table pointers cannot narrow, so the layout table is
			// never consulted.
			if o.Bucket != Tolerated {
				t.Errorf("global-table/corrupt-layout seed %d: bucket %v, want tolerated: %s",
					o.Seed, o.Bucket, o.Detail)
			}
		}
		if o.Bucket == Tolerated && o.Detail == "" {
			t.Errorf("%v/%v seed %d: tolerated without a reason", o.Scheme, o.Fault, o.Seed)
		}
	}
}

// TestCorruptGenExpectations pins the temporal fault class: a generation
// desync on a generation-tagged scheme (local-offset, subheap) must be
// caught by the generation comparison — a temporal trap, not a spatial
// one — while global-table pointers, which carry no generation field,
// tolerate it with the documented reason.
func TestCorruptGenExpectations(t *testing.T) {
	for _, s := range Schemes {
		for seed := uint64(0); seed < 16; seed++ {
			o := Run(s, CorruptGen, seed)
			if s == SchemeGlobal {
				if o.Bucket != Tolerated || !strings.Contains(o.Detail, "no generation field") {
					t.Errorf("global-table/corrupt-gen seed %d: %v: %s", seed, o.Bucket, o.Detail)
				}
				continue
			}
			if o.Bucket != Detected || !strings.Contains(o.Detail, "temporal trap") {
				t.Errorf("%v/corrupt-gen seed %d: %v, want temporal-trap detection: %s",
					s, seed, o.Bucket, o.Detail)
			}
		}
	}
}

// TestFlipMetaDetectedOrCoarsened: a flipped subobject index must either
// trap or land on the §3.4 coarsening guarantee — never silently narrow
// to the wrong subobject's bounds while the sweep still passes.
func TestFlipMetaDetectedOrCoarsened(t *testing.T) {
	for _, s := range Schemes {
		for seed := uint64(0); seed < 16; seed++ {
			o := Run(s, FlipMeta, seed)
			if o.Bucket == Detected {
				continue
			}
			if o.Bucket != Tolerated || !strings.Contains(o.Detail, "§3.4") && !strings.Contains(o.Detail, "retrieved bounds") {
				t.Errorf("%v/flip-meta seed %d: %v: %s", s, seed, o.Bucket, o.Detail)
			}
		}
	}
}

func TestRunRecoversPanicsIntoInternal(t *testing.T) {
	o := Run(Scheme(99), FlipPoison, 0)
	if o.Bucket != Internal {
		t.Fatalf("bucket = %v, want Internal", o.Bucket)
	}
	if !strings.Contains(o.Detail, "panic:") {
		t.Errorf("detail does not mention the panic: %s", o.Detail)
	}
}

// TestReportOrderIndependent: the report is a pure function of the
// outcome *set* — reversing the slice must render byte-identical output.
// This is what makes the parallel campaign reproducible at any worker
// count.
func TestReportOrderIndependent(t *testing.T) {
	outcomes := grid(4)
	rev := make([]Outcome, len(outcomes))
	for i, o := range outcomes {
		rev[len(outcomes)-1-i] = o
	}
	a, b := Report(outcomes), Report(rev)
	if a != b {
		t.Error("report depends on outcome order")
	}
	if !strings.Contains(a, "Tolerated escapes") {
		t.Error("report missing tolerated-escape enumeration")
	}
	if strings.Contains(a, "INTERNAL OUTCOMES") {
		t.Error("clean grid rendered an internal-outcomes section")
	}
}

func TestReportFlagsInternalOutcomes(t *testing.T) {
	out := []Outcome{
		{Scheme: SchemeLocal, Fault: FlipPoison, Bucket: Detected, Detail: "x: poisoned-pointer trap"},
		{Scheme: SchemeLocal, Fault: FlipPoison, Bucket: Internal, Detail: "panic: oops"},
	}
	r := Report(out)
	if !strings.Contains(r, "INTERNAL OUTCOMES") || !strings.Contains(r, "panic: oops") {
		t.Errorf("internal outcome not surfaced:\n%s", r)
	}
	s := Summarize(out)
	if s.Detected != 1 || s.Internal != 1 || s.Total() != 2 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestEnumStrings(t *testing.T) {
	for _, s := range Schemes {
		if strings.Contains(s.String(), "scheme(") {
			t.Errorf("scheme %d has no name", int(s))
		}
	}
	for _, f := range Faults {
		if strings.Contains(f.String(), "fault(") {
			t.Errorf("fault %d has no name", int(f))
		}
	}
	for _, b := range []Bucket{Detected, Tolerated, Internal} {
		if strings.Contains(b.String(), "bucket(") {
			t.Errorf("bucket %d has no name", int(b))
		}
	}
	if Scheme(99).String() != "scheme(99)" || Fault(99).String() != "fault(99)" || Bucket(99).String() != "bucket(99)" {
		t.Error("out-of-range enum formatting")
	}
}
