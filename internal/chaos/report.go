package chaos

import (
	"fmt"
	"sort"
	"strings"

	"infat/internal/stats"
)

// Summary aggregates a campaign's outcomes.
type Summary struct {
	Detected, Tolerated, Internal int
}

// Total returns the number of cells summarized.
func (s Summary) Total() int { return s.Detected + s.Tolerated + s.Internal }

// Summarize buckets a result set.
func Summarize(outcomes []Outcome) Summary {
	var s Summary
	for _, o := range outcomes {
		switch o.Bucket {
		case Detected:
			s.Detected++
		case Tolerated:
			s.Tolerated++
		default:
			s.Internal++
		}
	}
	return s
}

// Report renders a campaign result set: a per-(scheme, fault) table with
// detection rates, then a deterministic enumeration of every distinct
// tolerated escape, then any internal outcomes (which indicate simulator
// bugs). The output is a pure function of the outcome set — independent
// of input order and worker count.
func Report(outcomes []Outcome) string {
	type cellKey struct {
		s Scheme
		f Fault
	}
	cells := make(map[cellKey]Summary)
	for _, o := range outcomes {
		k := cellKey{o.Scheme, o.Fault}
		c := cells[k]
		switch o.Bucket {
		case Detected:
			c.Detected++
		case Tolerated:
			c.Tolerated++
		default:
			c.Internal++
		}
		cells[k] = c
	}

	var b strings.Builder
	b.WriteString("Fault-injection campaign (DESIGN.md §10)\n\n")
	t := &stats.Table{}
	t.Add("Scheme", "Fault", "Detected", "Tolerated", "Internal", "Det-rate")
	perScheme := make(map[Scheme]Summary)
	for _, s := range Schemes {
		for _, f := range Faults {
			c, ok := cells[cellKey{s, f}]
			if !ok {
				continue
			}
			t.AddF(s, f, c.Detected, c.Tolerated, c.Internal,
				stats.Pct(uint64(c.Detected), uint64(c.Total())))
			ps := perScheme[s]
			ps.Detected += c.Detected
			ps.Tolerated += c.Tolerated
			ps.Internal += c.Internal
			perScheme[s] = ps
		}
	}
	b.WriteString(t.String())

	b.WriteString("\nPer-scheme detection rate:\n")
	st := &stats.Table{}
	st.Add("Scheme", "Detected", "Tolerated", "Internal", "Det-rate")
	for _, s := range Schemes {
		ps, ok := perScheme[s]
		if !ok {
			continue
		}
		st.AddF(s, ps.Detected, ps.Tolerated, ps.Internal,
			stats.Pct(uint64(ps.Detected), uint64(ps.Total())))
	}
	b.WriteString(st.String())

	total := Summarize(outcomes)
	fmt.Fprintf(&b, "\nTotal: %d cells, %d detected, %d tolerated, %d internal\n",
		total.Total(), total.Detected, total.Tolerated, total.Internal)

	// Distinct tolerated escapes, deterministically ordered, with counts.
	// Every line here must correspond to a documented escape class in
	// DESIGN.md §10.
	if reasons := distinct(outcomes, Tolerated); len(reasons) > 0 {
		b.WriteString("\nTolerated escapes (documented by design):\n")
		for _, r := range reasons {
			fmt.Fprintf(&b, "  %4dx %s\n", r.n, r.detail)
		}
	}

	if internals := distinct(outcomes, Internal); len(internals) > 0 {
		b.WriteString("\nINTERNAL OUTCOMES (simulator bugs — investigate):\n")
		for _, r := range internals {
			fmt.Fprintf(&b, "  %4dx %s\n", r.n, r.detail)
		}
	}
	return b.String()
}

type detailCount struct {
	detail string
	n      int
}

// distinct collects the distinct detail strings of a bucket, prefixed
// with scheme/fault, sorted for deterministic output.
func distinct(outcomes []Outcome, bucket Bucket) []detailCount {
	counts := make(map[string]int)
	for _, o := range outcomes {
		if o.Bucket != bucket {
			continue
		}
		counts[fmt.Sprintf("[%v/%v] %s", o.Scheme, o.Fault, o.Detail)]++
	}
	out := make([]detailCount, 0, len(counts))
	for d, n := range counts {
		out = append(out, detailCount{d, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].detail < out[j].detail })
	return out
}
