package exp

import (
	"fmt"
	"strings"

	"infat/internal/pool"
	"infat/internal/rt"
	"infat/internal/stats"
	"infat/internal/tag"
	"infat/internal/workloads"
)

// ablationWorkloads is the representative subset used by the design-choice
// ablations: an allocation-heavy tree (treeadd), a list-chasing cache
// thrasher (health), and an opaque-allocation program (coremark).
var ablationWorkloads = []string{"treeadd", "health", "coremark", "ft"}

// runConfigured runs one workload with a configuration hook applied to the
// fresh runtime before execution.
func runConfigured(name string, scale int, cfg func(*rt.Runtime)) (ModeResult, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return ModeResult{}, fmt.Errorf("exp: unknown workload %q", name)
	}
	r := rt.Acquire(rt.Subheap)
	defer rt.Release(r)
	if cfg != nil {
		cfg(r)
	}
	sum, err := w.Run(r, scale)
	if err != nil {
		return ModeResult{}, fmt.Errorf("%s: %w", name, err)
	}
	return ModeResult{
		Counters:  r.M.C,
		Stats:     r.Stats,
		Footprint: r.Footprint(),
		Checksum:  sum,
	}, nil
}

// ablationRows are the ablation configurations, row 0 being the standard
// subheap instrumentation the others' checksums are verified against.
var ablationRows = []struct {
	cfg   func(*rt.Runtime)
	label string
	note  string
}{
	{func(r *rt.Runtime) {}, "standard", ""},
	{func(r *rt.Runtime) { r.M.NoNarrow = true }, "no-walker",
		"object-granularity only (saves 3,059 LUTs)"},
	{func(r *rt.Runtime) { r.ForceGlobalTable = true }, "global-only",
		"single scheme; 4096-object cap; no narrowing"},
	{func(r *rt.Runtime) { r.ExplicitChecks = true }, "explicit-chk",
		"ifpchk per access instead of implicit"},
}

// Ablations runs the DESIGN.md §5 design-choice ablations on the subset
// and renders a comparison: standard subheap instrumentation versus
// (a) no layout walker, (b) global-table-only metadata, and (c) explicit
// checks instead of implicit checking.
func Ablations(scale int) (string, error) { return AblationsN(scale, 1) }

// AblationsN is Ablations with the per-workload runs fanned over at most
// workers goroutines. A configuration that fails to run renders as a
// FAILED row (capacity exhaustion under global-only is itself a result
// worth reporting), not a harness error, in parallel and serial alike.
func AblationsN(scale, workers int) (string, error) {
	type cell struct {
		m   ModeResult
		err error
	}
	// Per workload: one full baseline Run (the ratio denominators) plus
	// one configured run per ablation row.
	stride := 1 + len(ablationRows)
	baselines := make([]Result, len(ablationWorkloads))
	cells := make([]cell, len(ablationWorkloads)*len(ablationRows))
	if err := pool.Map(workers, len(ablationWorkloads)*stride, func(c int) error {
		wi, ti := c/stride, c%stride
		name := ablationWorkloads[wi]
		if ti == 0 {
			r, err := Run(mustWorkload(name), scale)
			if err != nil {
				return err
			}
			baselines[wi] = r
			return nil
		}
		m, err := runConfigured(name, scale, ablationRows[ti-1].cfg)
		cells[wi*len(ablationRows)+ti-1] = cell{m, err}
		return nil
	}); err != nil {
		return "", err
	}

	var t stats.Table
	t.Add("Workload", "Config", "Instr ratio", "Cycle ratio", "NarrowOK", "NarrowCoarse", "Notes")
	for wi, name := range ablationWorkloads {
		std := cells[wi*len(ablationRows)]
		if std.err != nil {
			return "", std.err
		}
		denomI := baselines[wi].Baseline.Counters.Instrs
		denomC := baselines[wi].Baseline.Counters.Cycles
		for ri, row := range ablationRows {
			c := cells[wi*len(ablationRows)+ri]
			if c.err != nil {
				t.Add(name, row.label, "-", "-", "-", "-", "FAILED: "+c.err.Error())
				continue
			}
			if c.m.Checksum != std.m.Checksum {
				return "", fmt.Errorf("exp: %s/%s checksum %#x != standard %#x",
					name, row.label, c.m.Checksum, std.m.Checksum)
			}
			t.Add(name, row.label,
				fmt.Sprintf("%.2fx", stats.Ratio(c.m.Counters.Instrs, denomI)),
				fmt.Sprintf("%.2fx", stats.Ratio(c.m.Counters.Cycles, denomC)),
				fmt.Sprint(c.m.Counters.NarrowSuccess),
				fmt.Sprint(c.m.Counters.NarrowCoarse),
				row.note)
		}
	}
	return "Design-choice ablations (vs uninstrumented baseline of each workload)\n" + t.String(), nil
}

func mustWorkload(name string) workloads.Workload {
	w, _ := workloads.ByName(name)
	return w
}

// TagLayouts renders the tag-bit capacity trade-off of DESIGN.md §5.1:
// alternate splits of the 12 scheme-metadata/subobject bits for the
// local-offset scheme. The paper chose 6+6.
func TagLayouts() string {
	var t stats.Table
	t.Add("Offset bits", "Subobject bits", "Max object size", "Max layout entries", "Chosen")
	for off := 4; off <= 8; off++ {
		sub := 12 - off
		maxSize := ((1 << off) - 1) * tag.Granule
		chosen := ""
		if off == tag.LocalOffsetBits {
			chosen = "<- paper"
		}
		t.Add(fmt.Sprint(off), fmt.Sprint(sub),
			fmt.Sprintf("%d B", maxSize), fmt.Sprint(1<<sub), chosen)
	}
	return "Local-offset tag split trade-off (12 bits shared, 16-byte granule)\n" + t.String()
}

// ASICSweep is the §5.2.4 extrapolation: sensitivity of the geo-mean
// overhead to the memory system (miss penalty) and to how well a wider
// core hides the IFP unit's fixed costs (promote base cost).
func ASICSweep(scale int) (string, error) {
	type point struct {
		label       string
		missPenalty uint64
		promoteBase uint64
	}
	points := []point{
		{"FPGA prototype (50 MHz, slow core : fast DRAM)", 20, 2},
		{"ASIC, deeper memory hierarchy", 40, 2},
		{"ASIC, promote latency hidden (OoO issue)", 40, 0},
		{"ASIC, aggressive (large caches modelled as low penalty)", 10, 0},
	}
	subset := []string{"treeadd", "health", "ft", "power", "coremark"}

	var b strings.Builder
	b.WriteString("ASIC extrapolation sweep (geo-mean subheap overhead over subset)\n")
	var t stats.Table
	t.Add("Configuration", "MissPenalty", "PromoteBase", "Geo-mean overhead")
	for _, pt := range points {
		var ratios []float64
		for _, name := range subset {
			ratio, err := asicRatio(mustWorkload(name), scale, pt.missPenalty, pt.promoteBase)
			if err != nil {
				return "", err
			}
			ratios = append(ratios, ratio)
		}
		t.Add(pt.label, fmt.Sprint(pt.missPenalty), fmt.Sprint(pt.promoteBase),
			fmt.Sprintf("%+.1f%%", stats.Overhead(stats.Geomean(ratios))))
	}
	b.WriteString(t.String())
	return b.String(), nil
}

// asicRatio runs one workload uninstrumented and instrumented under an
// adjusted cost model and returns the cycle ratio. Pooled runtimes are
// acquired per run and released with the default cost model restored by
// the pool's Reset.
func asicRatio(w workloads.Workload, scale int, missPenalty, promoteBase uint64) (float64, error) {
	base := rt.Acquire(rt.Baseline)
	defer rt.Release(base)
	base.M.Cost.MissPenalty = missPenalty
	if _, err := w.Run(base, scale); err != nil {
		return 0, err
	}
	inst := rt.Acquire(rt.Subheap)
	defer rt.Release(inst)
	inst.M.Cost.MissPenalty = missPenalty
	inst.M.Cost.PromoteBase = promoteBase
	if _, err := w.Run(inst, scale); err != nil {
		return 0, err
	}
	return stats.Ratio(inst.M.C.Cycles, base.M.C.Cycles), nil
}
