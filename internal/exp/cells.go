package exp

// Cell-level decomposition of the evaluation campaigns.
//
// The batch serving tier (internal/server's /v1/batch, /v1/grid, and
// /v1/chaos endpoints, and internal/shard's fan-out front tier) needs the
// grid, memory, and chaos campaigns as flat lists of independent cells:
// every cell has a stable sequence number and identity key, runs in its
// own runtime, and can execute on any worker of any process — locally,
// on one backend, or scattered across a shard ring — in any order. A
// Plan is that enumeration; an Assembly folds streamed cell results back
// into the exact []Result/[]MemResult slices a serial run produces, so
// the reassembled report is byte-identical to what ifp-bench prints.
//
// The enumeration contract (relied on by clients reassembling streams):
//
//   - Perf cells come first: seq = wi*len(configs) + ci, where wi
//     indexes the plan's workload list and ci the configurations in
//     paper comparison order (baseline, subheap, wrapped,
//     subheap-nopromote, wrapped-nopromote). Plans built WithTemporal
//     append a sixth configuration, ifp-temporal, after the five — the
//     spatial five keep their relative order, and a plan without the
//     flag enumerates exactly as before the temporal axis existed.
//   - Memory cells (plans built with NewReportPlan) follow: seq =
//     perfCells + wi*len(memModes) + mi, with mi over baseline, subheap,
//     wrapped. Memory cells run at scale*memScale (Figure 12's larger
//     footprints).
//   - Chaos cells (ChaosPlan) use the ChaosCampaignN order: seq =
//     ((si*len(Faults))+fi)*seeds + seed.

import (
	"encoding/json"
	"errors"
	"fmt"

	"infat/internal/chaos"
	"infat/internal/memo"
	"infat/internal/workloads"
)

// Cell kinds, carried in CellMeta and the batch API's NDJSON lines.
const (
	CellPerf  = "perf"  // one (workload, configuration) grid cell
	CellMem   = "mem"   // one (workload, mode) Figure-12 footprint cell
	CellChaos = "chaos" // one (scheme, fault, seed) fault-injection cell
)

// CellMeta identifies one cell of a plan: its sequence number in the
// deterministic enumeration plus human-readable coordinates. For chaos
// cells Workload carries the scheme and Config the fault.
type CellMeta struct {
	Seq      int    `json:"seq"`
	Kind     string `json:"kind"`
	Workload string `json:"workload"`
	Config   string `json:"config"`
}

// ErrCorruptCell is the sentinel every cell-contract violation wraps: a
// sequence number outside the campaign, coordinates that disagree with
// the plan's enumeration at that seq, or a payload of the wrong shape.
// A corrupt cell is never folded into an assembly — consumers reject it
// (and, in the serving tier, fail the stream that carried it) instead of
// indexing blindly and silently producing a wrong report.
var ErrCorruptCell = errors.New("exp: corrupt cell")

// ErrDuplicateCell is the sentinel a second Add of the same sequence
// number wraps. Distinct from ErrCorruptCell: the duplicate's content
// may be perfectly valid — the violation is the repetition, which the
// dedup layers (shard stream merge, client reassembly) must suppress
// rather than double-count.
var ErrDuplicateCell = errors.New("exp: duplicate cell")

// cellContractError is the concrete error behind both sentinels: the
// offending seq, the full diagnosis, and which contract was broken.
type cellContractError struct {
	seq      int
	msg      string
	sentinel error
}

func (e *cellContractError) Error() string        { return e.msg }
func (e *cellContractError) Is(target error) bool { return target == e.sentinel }

// Seq returns the offending cell's sequence number as received.
func (e *cellContractError) Seq() int { return e.seq }

func corruptCell(seq int, format string, args ...any) error {
	return &cellContractError{seq: seq, msg: fmt.Sprintf(format, args...), sentinel: ErrCorruptCell}
}

func duplicateCell(seq int, format string, args ...any) error {
	return &cellContractError{seq: seq, msg: fmt.Sprintf(format, args...), sentinel: ErrDuplicateCell}
}

// Plan is the cell-level view of a (workload × configuration) evaluation
// campaign: the §5.2 perf grid, optionally plus the Figure-12 memory
// cells. The zero value is empty; build with NewPlan or NewReportPlan.
type Plan struct {
	ws       []workloads.Workload
	scale    int
	memScale int         // 0 = no memory cells
	temporal bool        // append the ifp-temporal configuration per workload
	memo     *memo.Store // nil = no memoization (WithMemo attaches one)
}

// NewPlan enumerates the perf grid only (the /v1/grid campaign):
// len(ws) × 5 cells at the given scale. scale < 1 is raised to 1.
func NewPlan(ws []workloads.Workload, scale int) Plan {
	if scale < 1 {
		scale = 1
	}
	return Plan{ws: ws, scale: scale}
}

// NewReportPlan enumerates the full-report campaign (the /v1/batch
// campaign): the perf grid plus the memory cells, which run at
// scale*memScale — exactly the matrix a default ifp-bench run evaluates.
// memScale < 1 is raised to MemScale (the ifp-bench -memscale default).
func NewReportPlan(ws []workloads.Workload, scale, memScale int) Plan {
	p := NewPlan(ws, scale)
	if memScale < 1 {
		memScale = MemScale
	}
	p.memScale = memScale
	return p
}

// Workloads returns the plan's workload list (shared, not copied).
func (p Plan) Workloads() []workloads.Workload { return p.ws }

// Scale returns the perf-grid scale.
func (p Plan) Scale() int { return p.scale }

// MemScale returns the memory-cell scale multiplier (0 when the plan has
// no memory cells).
func (p Plan) MemScale() int { return p.memScale }

// HasMem reports whether the plan includes the Figure-12 memory cells.
func (p Plan) HasMem() bool { return p.memScale > 0 }

// WithTemporal returns a copy of the plan with the temporal axis toggled:
// when on, each workload gains a sixth perf cell running rt.IFPTemporal
// after the five spatial configurations. Default plans stay off, which is
// what keeps pre-temporal campaigns (and their streamed cells) enumerated
// and reported byte-identically.
func (p Plan) WithTemporal(on bool) Plan {
	p.temporal = on
	return p
}

// Temporal reports whether the plan includes the ifp-temporal cells.
func (p Plan) Temporal() bool { return p.temporal }

// configs returns the plan's per-workload configuration list.
func (p Plan) configs() []cellConfig {
	if p.temporal {
		return temporalConfigs
	}
	return cellConfigs
}

func (p Plan) perfCells() int { return len(p.ws) * len(p.configs()) }

func (p Plan) memCells() int {
	if p.memScale == 0 {
		return 0
	}
	return len(p.ws) * len(memModes)
}

// NumCells returns the total cell count.
func (p Plan) NumCells() int { return p.perfCells() + p.memCells() }

// Meta returns cell i's identity. i must be in [0, NumCells()).
func (p Plan) Meta(i int) CellMeta {
	if pc := p.perfCells(); i < pc {
		cfgs := p.configs()
		wi, ci := i/len(cfgs), i%len(cfgs)
		return CellMeta{Seq: i, Kind: CellPerf, Workload: p.ws[wi].Name, Config: cfgs[ci].label}
	} else {
		j := i - pc
		wi, mi := j/len(memModes), j%len(memModes)
		return CellMeta{Seq: i, Kind: CellMem, Workload: p.ws[wi].Name, Config: memModes[mi].mode.String()}
	}
}

// Key returns cell i's stable identity key. The key is a pure function
// of the cell's coordinates — not its position in this particular plan —
// so a shard tier hashing keys routes the same (workload, configuration)
// cell to the same backend across requests, keeping each backend's
// interner and result cache hot on a stable subset.
func (p Plan) Key(i int) string {
	m := p.Meta(i)
	return m.Kind + "|" + m.Workload + "|" + m.Config
}

// CellResult is one cell's observables: Perf for perf cells, Footprint
// for memory cells. JSON round-trips exactly (every field is integral),
// which is what keeps reports reassembled from a stream byte-identical.
type CellResult struct {
	Perf      *ModeResult `json:"perf,omitempty"`
	Footprint uint64      `json:"footprint,omitempty"`
}

// RunCell executes cell i in its own pooled runtime. Cells are pure
// functions of the plan coordinates, so they can run on any process in
// any order — which is also what makes them memoizable: a plan built
// WithMemo consults the store first (LookupCell), and a hit returns the
// shared cached result without touching rt.Pool (callers must not
// mutate it).
func (p Plan) RunCell(i int) (CellResult, error) {
	if c, ok := p.LookupCell(i); ok {
		return c, nil
	}
	return p.ComputeCell(i)
}

// LookupCell serves cell i from the plan's memo store. ok=false means a
// miss (or no store attached) and the caller must ComputeCell. The hit
// path is zero-allocation and never touches rt.Pool. Callers that split
// lookup from compute themselves — the batch serving tier, which only
// takes a worker slot for real computation — use this pair instead of
// RunCell so misses are counted exactly once.
func (p Plan) LookupCell(i int) (CellResult, bool) {
	if p.memo == nil {
		return CellResult{}, false
	}
	w, mode, noPromote, scale, perf := p.cellSpec(i)
	v, ok := p.memo.GetKind(CellDigest(w, mode, noPromote, scale), memo.KindCell)
	if !ok {
		return CellResult{}, false
	}
	m := v.(*ModeResult)
	if perf {
		return CellResult{Perf: m}, true
	}
	return CellResult{Footprint: m.Footprint}, true
}

// ComputeCell executes cell i unconditionally and, when the plan carries
// a store, publishes the result for the next identical cell. It never
// reads the store, so pairing LookupCell + ComputeCell counts exactly
// one miss.
func (p Plan) ComputeCell(i int) (CellResult, error) {
	w, mode, noPromote, scale, perf := p.cellSpec(i)
	m, err := runOne(w, mode, noPromote, scale)
	if err != nil {
		// Errors are never memoized: a failed cell re-runs on every
		// request, so a transient failure cannot poison the store.
		return CellResult{}, err
	}
	if p.memo != nil {
		enc, encErr := json.Marshal(&m)
		if encErr != nil {
			enc = nil // memory-only entry; snapshots just skip it
		}
		p.memo.Put(CellDigest(w, mode, noPromote, scale), memo.KindCell, &m, enc)
	}
	if perf {
		return CellResult{Perf: &m}, nil
	}
	return CellResult{Footprint: m.Footprint}, nil
}

// Assembly folds cell results back into the slices a serial run
// produces. Add is safe for concurrent use on distinct sequence numbers
// (each writes a disjoint slot), which lets a streaming consumer add
// cells as they arrive in any order.
type Assembly struct {
	p       Plan
	results []Result
	mem     []MemResult
	have    []bool
}

// NewAssembly builds an empty assembly for the plan.
func (p Plan) NewAssembly() *Assembly {
	a := &Assembly{p: p, results: make([]Result, len(p.ws)), have: make([]bool, p.NumCells())}
	for i, w := range p.ws {
		a.results[i].Name, a.results[i].Suite = w.Name, w.Suite
	}
	if p.HasMem() {
		a.mem = make([]MemResult, len(p.ws))
		for i, w := range p.ws {
			a.mem[i].Name = w.Name
		}
	}
	return a
}

// Add records cell seq's result. It rejects out-of-range sequence
// numbers (ErrCorruptCell), duplicates (ErrDuplicateCell), and results
// missing the payload their kind requires (ErrCorruptCell).
func (a *Assembly) Add(seq int, c CellResult) error {
	if seq < 0 || seq >= len(a.have) {
		return corruptCell(seq, "exp: cell seq %d out of range [0, %d)", seq, len(a.have))
	}
	if a.have[seq] {
		return duplicateCell(seq, "exp: duplicate cell seq %d", seq)
	}
	if pc := a.p.perfCells(); seq < pc {
		if c.Perf == nil {
			return corruptCell(seq, "exp: perf cell %d missing perf result", seq)
		}
		cfgs := a.p.configs()
		wi, ci := seq/len(cfgs), seq%len(cfgs)
		*cfgs[ci].dst(&a.results[wi]) = *c.Perf
	} else {
		j := seq - pc
		wi, mi := j/len(memModes), j%len(memModes)
		*memModes[mi].dst(&a.mem[wi]) = c.Footprint
	}
	a.have[seq] = true
	return nil
}

// AddChecked is Add with the full cell-identity contract enforced: the
// received coordinates must match the plan's enumeration at m.Seq, and
// the payload must have exactly the shape the cell's kind requires. A
// streaming consumer fed by an untrusted (or faulty) backend uses this
// so an alien or mangled cell is a typed ErrCorruptCell, never a wrong
// slot written blindly.
func (a *Assembly) AddChecked(m CellMeta, c CellResult) error {
	if m.Seq < 0 || m.Seq >= len(a.have) {
		return corruptCell(m.Seq, "exp: cell seq %d out of range [0, %d)", m.Seq, len(a.have))
	}
	want := a.p.Meta(m.Seq)
	if m.Kind != want.Kind || m.Workload != want.Workload || m.Config != want.Config {
		return corruptCell(m.Seq, "exp: cell %d identity %s|%s|%s does not match plan %s|%s|%s",
			m.Seq, m.Kind, m.Workload, m.Config, want.Kind, want.Workload, want.Config)
	}
	switch want.Kind {
	case CellPerf:
		if c.Perf == nil {
			return corruptCell(m.Seq, "exp: perf cell %d missing perf result", m.Seq)
		}
		if c.Footprint != 0 {
			return corruptCell(m.Seq, "exp: perf cell %d carries a footprint payload", m.Seq)
		}
	case CellMem:
		if c.Perf != nil {
			return corruptCell(m.Seq, "exp: mem cell %d carries a perf payload", m.Seq)
		}
	}
	return a.Add(m.Seq, c)
}

// Missing lists the sequence numbers not yet added, in order.
func (a *Assembly) Missing() []int {
	var out []int
	for i, ok := range a.have {
		if !ok {
			out = append(out, i)
		}
	}
	return out
}

// Results returns the assembled slices after verifying completeness and
// the cross-mode checksum contract — the same verification RunSet
// applies, producing the same error text.
func (a *Assembly) Results() ([]Result, []MemResult, error) {
	if missing := a.Missing(); len(missing) > 0 {
		return nil, nil, fmt.Errorf("exp: assembly incomplete: %d of %d cells missing (first missing seq %d)",
			len(missing), len(a.have), missing[0])
	}
	var errs []error
	cfgs := a.p.configs()
	for i := range a.results {
		if err := a.results[i].verifyChecksumsFor(cfgs); err != nil {
			errs = append(errs, err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, nil, err
	}
	return a.results, a.mem, nil
}

// Report renders the assembled campaign: the full Report (Table 4 +
// Figures 10–12) for plans with memory cells, PerfReport otherwise —
// byte-identical to a serial run over the same workloads and scales.
// Plans built WithTemporal append the temporal-axis section after the
// spatial report, leaving the spatial portion's bytes unchanged.
func (a *Assembly) Report() (string, error) {
	results, mem, err := a.Results()
	if err != nil {
		return "", err
	}
	var rep string
	if a.p.HasMem() {
		rep = Report(results, mem)
	} else {
		rep = PerfReport(results)
	}
	if a.p.temporal {
		rep += "\n" + TemporalSection(results)
	}
	return rep, nil
}

// PerfReport renders the perf-grid-only report (Table 4 and Figures 10
// and 11) — what a /v1/grid stream reassembles to.
func PerfReport(results []Result) string {
	return Table4(results) + "\n" + Fig10(results) + "\n" + Fig11(results)
}

// ChaosPlan is the cell-level view of the fault-injection campaign: the
// (scheme × fault × seed) grid in ChaosCampaignN order.
type ChaosPlan struct {
	scale int
	seeds int
	memo  *memo.Store // nil = no memoization (WithMemo attaches one)
}

// NewChaosPlan enumerates the campaign at the given scale (scale < 1 is
// raised to 1; seeds per (scheme, fault) cell = ChaosSeedsPerCell*scale).
func NewChaosPlan(scale int) ChaosPlan {
	if scale < 1 {
		scale = 1
	}
	return ChaosPlan{scale: scale, seeds: ChaosSeedsPerCell * scale}
}

// Scale returns the plan's scale.
func (p ChaosPlan) Scale() int { return p.scale }

// NumCells returns the total cell count.
func (p ChaosPlan) NumCells() int { return len(chaos.Schemes) * len(chaos.Faults) * p.seeds }

// coords maps a sequence number to its (scheme, fault, seed) — the exact
// ChaosCampaignN indexing, so assembled outcome slices match a serial
// campaign element-for-element.
func (p ChaosPlan) coords(i int) (chaos.Scheme, chaos.Fault, uint64) {
	nf := len(chaos.Faults)
	return chaos.Schemes[i/(nf*p.seeds)], chaos.Faults[i/p.seeds%nf], uint64(i % p.seeds)
}

// Meta returns cell i's identity: Workload carries the scheme, Config
// the fault.
func (p ChaosPlan) Meta(i int) CellMeta {
	s, f, _ := p.coords(i)
	return CellMeta{Seq: i, Kind: CellChaos, Workload: s.String(), Config: f.String()}
}

// Key returns cell i's stable identity key (scheme, fault, and seed).
func (p ChaosPlan) Key(i int) string {
	s, f, seed := p.coords(i)
	return fmt.Sprintf("%s|%s|%s|%d", CellChaos, s, f, seed)
}

// RunCell executes cell i. chaos.Run classifies every outcome (panics
// included), so cells never fail at the harness level. Plans built
// WithMemo replay hits from the store instead of re-injecting the fault.
func (p ChaosPlan) RunCell(i int) chaos.Outcome {
	if o, ok := p.LookupCell(i); ok {
		return o
	}
	return p.ComputeCell(i)
}

// LookupCell serves chaos cell i from the plan's memo store (ok=false:
// miss, or no store). Zero-allocation, never touches rt.Pool.
func (p ChaosPlan) LookupCell(i int) (chaos.Outcome, bool) {
	if p.memo == nil {
		return chaos.Outcome{}, false
	}
	s, f, seed := p.coords(i)
	if v, ok := p.memo.GetKind(chaosCellDigest(s, f, seed), memo.KindChaos); ok {
		return *(v.(*chaos.Outcome)), true
	}
	return chaos.Outcome{}, false
}

// ComputeCell injects chaos cell i's fault unconditionally and, when the
// plan carries a store, publishes the outcome. It never reads the store.
func (p ChaosPlan) ComputeCell(i int) chaos.Outcome {
	s, f, seed := p.coords(i)
	o := chaos.Run(s, f, seed)
	if p.memo != nil {
		enc, err := json.Marshal(&o)
		if err != nil {
			enc = nil
		}
		p.memo.Put(chaosCellDigest(s, f, seed), memo.KindChaos, &o, enc)
	}
	return o
}

// ChaosAssembly folds streamed chaos outcomes back into campaign order.
// Add is safe for concurrent use on distinct sequence numbers.
type ChaosAssembly struct {
	p        ChaosPlan
	outcomes []chaos.Outcome
	have     []bool
}

// NewAssembly builds an empty assembly for the plan.
func (p ChaosPlan) NewAssembly() *ChaosAssembly {
	n := p.NumCells()
	return &ChaosAssembly{p: p, outcomes: make([]chaos.Outcome, n), have: make([]bool, n)}
}

// Add records cell seq's outcome, rejecting out-of-range
// (ErrCorruptCell) and duplicate (ErrDuplicateCell) sequence numbers.
func (a *ChaosAssembly) Add(seq int, o chaos.Outcome) error {
	if seq < 0 || seq >= len(a.have) {
		return corruptCell(seq, "exp: chaos cell seq %d out of range [0, %d)", seq, len(a.have))
	}
	if a.have[seq] {
		return duplicateCell(seq, "exp: duplicate chaos cell seq %d", seq)
	}
	a.outcomes[seq] = o
	a.have[seq] = true
	return nil
}

// AddChecked is Add with the cell-identity contract enforced: the
// received coordinates must match the plan's enumeration at m.Seq, and
// the outcome's own (scheme, fault, seed) must be the exact cell the
// plan put there — a hostile or corrupted backend cannot smuggle a
// different cell's outcome into the slot.
func (a *ChaosAssembly) AddChecked(m CellMeta, o chaos.Outcome) error {
	if m.Seq < 0 || m.Seq >= len(a.have) {
		return corruptCell(m.Seq, "exp: chaos cell seq %d out of range [0, %d)", m.Seq, len(a.have))
	}
	want := a.p.Meta(m.Seq)
	if m.Kind != want.Kind || m.Workload != want.Workload || m.Config != want.Config {
		return corruptCell(m.Seq, "exp: chaos cell %d identity %s|%s|%s does not match plan %s|%s|%s",
			m.Seq, m.Kind, m.Workload, m.Config, want.Kind, want.Workload, want.Config)
	}
	s, f, seed := a.p.coords(m.Seq)
	if o.Scheme != s || o.Fault != f || o.Seed != seed {
		return corruptCell(m.Seq, "exp: chaos cell %d outcome coordinates (%s,%s,%d) do not match plan (%s,%s,%d)",
			m.Seq, o.Scheme, o.Fault, o.Seed, s, f, seed)
	}
	return a.Add(m.Seq, o)
}

// Missing lists the sequence numbers not yet added, in order.
func (a *ChaosAssembly) Missing() []int {
	var out []int
	for i, ok := range a.have {
		if !ok {
			out = append(out, i)
		}
	}
	return out
}

// Report renders the assembled campaign report and its internal-outcome
// count — byte-identical to ChaosReport over the same scale.
func (a *ChaosAssembly) Report() (string, int, error) {
	if missing := a.Missing(); len(missing) > 0 {
		return "", 0, fmt.Errorf("exp: chaos assembly incomplete: %d of %d cells missing (first missing seq %d)",
			len(missing), len(a.have), missing[0])
	}
	return chaos.Report(a.outcomes), chaos.Summarize(a.outcomes).Internal, nil
}
