package exp

import (
	"errors"
	"strings"
	"testing"

	"infat/internal/chaos"
	"infat/internal/pool"
	"infat/internal/workloads"
)

// cellTestWorkloads is a small representative subset so the cell
// equivalence tests stay fast under -race.
func cellTestWorkloads(t *testing.T) []workloads.Workload {
	t.Helper()
	var ws []workloads.Workload
	for _, name := range []string{"treeadd", "health", "ks"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		ws = append(ws, w)
	}
	return ws
}

// TestPlanCellEnumeration pins the enumeration contract: perf cells
// first in (workload, config) order, then mem cells in (workload, mode)
// order, with stable keys.
func TestPlanCellEnumeration(t *testing.T) {
	ws := cellTestWorkloads(t)
	p := NewReportPlan(ws, 1, MemScale)
	wantCells := len(ws)*len(cellConfigs) + len(ws)*len(memModes)
	if got := p.NumCells(); got != wantCells {
		t.Fatalf("NumCells = %d, want %d", got, wantCells)
	}
	m0 := p.Meta(0)
	if m0.Kind != CellPerf || m0.Workload != "treeadd" || m0.Config != "baseline" || m0.Seq != 0 {
		t.Errorf("Meta(0) = %+v", m0)
	}
	mLast := p.Meta(p.NumCells() - 1)
	if mLast.Kind != CellMem || mLast.Workload != "ks" || mLast.Config != "wrapped" {
		t.Errorf("Meta(last) = %+v", mLast)
	}
	if got := p.Key(0); got != "perf|treeadd|baseline" {
		t.Errorf("Key(0) = %q", got)
	}
	// Keys are position-independent: the same cell in a differently
	// ordered plan has the same key.
	rev := NewReportPlan([]workloads.Workload{ws[2], ws[1], ws[0]}, 1, MemScale)
	if p.Key(0) != rev.Key(2*len(cellConfigs)) {
		t.Errorf("treeadd/baseline key differs across plans: %q vs %q",
			p.Key(0), rev.Key(2*len(cellConfigs)))
	}
	// All keys distinct within a plan.
	seen := map[string]bool{}
	for i := 0; i < p.NumCells(); i++ {
		k := p.Key(i)
		if seen[k] {
			t.Errorf("duplicate cell key %q", k)
		}
		seen[k] = true
	}
}

// TestAssemblyReportEquivalence is the core reassembly contract: running
// every cell independently (in parallel, added out of order) and
// assembling reproduces RunSet+RunMemSet byte-for-byte.
func TestAssemblyReportEquivalence(t *testing.T) {
	ws := cellTestWorkloads(t)
	p := NewReportPlan(ws, 1, MemScale)

	serialResults, err := RunSet(ws, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	serialMem, err := RunMemSet(ws, MemScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Report(serialResults, serialMem)

	a := p.NewAssembly()
	if err := pool.Map(0, p.NumCells(), func(i int) error {
		c, err := p.RunCell(i)
		if err != nil {
			return err
		}
		return a.Add(i, c)
	}); err != nil {
		t.Fatal(err)
	}
	got, err := a.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("assembled report differs from serial run:\n--- assembled ---\n%s\n--- serial ---\n%s", got, want)
	}

	// Perf-only plans reassemble to PerfReport.
	gp := NewPlan(ws, 1)
	ga := gp.NewAssembly()
	if err := pool.Map(0, gp.NumCells(), func(i int) error {
		c, err := gp.RunCell(i)
		if err != nil {
			return err
		}
		return ga.Add(i, c)
	}); err != nil {
		t.Fatal(err)
	}
	gotPerf, err := ga.Report()
	if err != nil {
		t.Fatal(err)
	}
	if want := PerfReport(serialResults); gotPerf != want {
		t.Fatal("perf-only assembled report differs from serial run")
	}
}

// TestAssemblyValidation covers the failure modes a streaming consumer
// can feed an assembly: out-of-range and duplicate sequence numbers,
// missing payloads, and incomplete assemblies.
func TestAssemblyValidation(t *testing.T) {
	ws := cellTestWorkloads(t)
	p := NewPlan(ws, 1)
	a := p.NewAssembly()
	if err := a.Add(-1, CellResult{}); err == nil {
		t.Error("Add(-1) accepted")
	}
	if err := a.Add(p.NumCells(), CellResult{}); err == nil {
		t.Error("Add(out of range) accepted")
	}
	if err := a.Add(0, CellResult{}); err == nil {
		t.Error("perf cell without perf payload accepted")
	}
	c, err := p.RunCell(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(0, c); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(0, c); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate Add error = %v", err)
	}
	if missing := a.Missing(); len(missing) != p.NumCells()-1 || missing[0] != 1 {
		t.Errorf("Missing() = %v", missing)
	}
	if _, err := a.Report(); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("incomplete Report error = %v", err)
	}
}

// TestAddCheckedCellContract pins the trust boundary a streaming
// consumer relies on: AddChecked must reject any cell whose identity or
// payload shape disagrees with the plan's own enumeration, as a typed
// ErrCorruptCell — and a repeated valid cell as ErrDuplicateCell, never
// the other sentinel.
func TestAddCheckedCellContract(t *testing.T) {
	ws := cellTestWorkloads(t)
	p := NewReportPlan(ws, 1, MemScale)
	a := p.NewAssembly()
	perf := CellResult{Perf: &ModeResult{}}

	// Out-of-campaign sequence numbers, positive and negative.
	for _, seq := range []int{-1, p.NumCells(), p.NumCells() + 100000} {
		err := a.AddChecked(CellMeta{Seq: seq, Kind: CellPerf}, perf)
		if !errors.Is(err, ErrCorruptCell) {
			t.Errorf("alien seq %d: err = %v, want ErrCorruptCell", seq, err)
		}
	}

	// Identity that disagrees with the plan's enumeration at that seq:
	// wrong kind, wrong workload, wrong config — each must be corrupt.
	good := p.Meta(0)
	for name, m := range map[string]CellMeta{
		"kind":     {Seq: 0, Kind: CellMem, Workload: good.Workload, Config: good.Config},
		"workload": {Seq: 0, Kind: good.Kind, Workload: "alien", Config: good.Config},
		"config":   {Seq: 0, Kind: good.Kind, Workload: good.Workload, Config: "alien"},
	} {
		if err := a.AddChecked(m, perf); !errors.Is(err, ErrCorruptCell) {
			t.Errorf("mismatched %s: err = %v, want ErrCorruptCell", name, err)
		}
	}

	// Payload shape: a perf cell without a perf result, a perf cell
	// smuggling a footprint, a mem cell smuggling a perf result.
	memMeta := p.Meta(p.NumCells() - 1)
	for name, bad := range map[string]struct {
		m CellMeta
		c CellResult
	}{
		"perf cell missing perf":     {good, CellResult{}},
		"perf cell with footprint":   {good, CellResult{Perf: &ModeResult{}, Footprint: 7}},
		"mem cell with perf payload": {memMeta, perf},
	} {
		if err := a.AddChecked(bad.m, bad.c); !errors.Is(err, ErrCorruptCell) {
			t.Errorf("%s: err = %v, want ErrCorruptCell", name, err)
		}
	}

	// Nothing above may have landed in a slot.
	if n := len(a.Missing()); n != p.NumCells() {
		t.Fatalf("rejected cells filled slots: %d missing, want %d", n, p.NumCells())
	}

	// A valid cell passes; its repeat is a duplicate, not a corruption,
	// and the two sentinels stay distinct.
	if err := a.AddChecked(good, perf); err != nil {
		t.Fatalf("valid AddChecked: %v", err)
	}
	err := a.AddChecked(good, perf)
	if !errors.Is(err, ErrDuplicateCell) {
		t.Fatalf("repeat AddChecked err = %v, want ErrDuplicateCell", err)
	}
	if errors.Is(err, ErrCorruptCell) {
		t.Error("duplicate also matches ErrCorruptCell: sentinels not distinct")
	}
	var cerr *cellContractError
	if !errors.As(err, &cerr) || cerr.Seq() != good.Seq {
		t.Errorf("contract error seq = %v, want %d", err, good.Seq)
	}
}

// TestChaosAddCheckedOutcomeCoordinates: a chaos cell whose outcome's
// own (scheme, fault, seed) disagrees with the plan slot is corrupt —
// a hostile backend cannot smuggle one cell's outcome into another's
// slot even with a perfectly matching envelope.
func TestChaosAddCheckedOutcomeCoordinates(t *testing.T) {
	p := NewChaosPlan(1)
	a := p.NewAssembly()
	s, f, seed := p.coords(0)
	good := chaos.Outcome{Scheme: s, Fault: f, Seed: seed}

	if err := a.AddChecked(CellMeta{Seq: p.NumCells() + 100000, Kind: CellChaos}, good); !errors.Is(err, ErrCorruptCell) {
		t.Errorf("alien seq: err = %v, want ErrCorruptCell", err)
	}
	m := p.Meta(0)
	if err := a.AddChecked(CellMeta{Seq: 0, Kind: CellChaos, Workload: "alien", Config: m.Config}, good); !errors.Is(err, ErrCorruptCell) {
		t.Errorf("mismatched envelope: err = %v, want ErrCorruptCell", err)
	}
	// Envelope matches the plan, outcome coordinates do not.
	for name, o := range map[string]chaos.Outcome{
		"scheme": {Scheme: s + 1, Fault: f, Seed: seed},
		"fault":  {Scheme: s, Fault: f + 1, Seed: seed},
		"seed":   {Scheme: s, Fault: f, Seed: seed + 1},
	} {
		if err := a.AddChecked(m, o); !errors.Is(err, ErrCorruptCell) {
			t.Errorf("smuggled %s: err = %v, want ErrCorruptCell", name, err)
		}
	}
	if err := a.AddChecked(m, good); err != nil {
		t.Fatalf("valid chaos AddChecked: %v", err)
	}
	if err := a.AddChecked(m, good); !errors.Is(err, ErrDuplicateCell) {
		t.Fatalf("repeat chaos AddChecked err = %v, want ErrDuplicateCell", err)
	}
}

// TestChaosAssemblyEquivalence: the chaos plan's cells assemble to the
// same report as the serial campaign.
func TestChaosAssemblyEquivalence(t *testing.T) {
	p := NewChaosPlan(1)
	if got, want := p.NumCells(), len(ChaosCampaign(1)); got != want {
		t.Fatalf("NumCells = %d, want %d", got, want)
	}
	a := p.NewAssembly()
	if err := pool.Map(0, p.NumCells(), func(i int) error {
		return a.Add(i, p.RunCell(i))
	}); err != nil {
		t.Fatal(err)
	}
	got, internal, err := a.Report()
	if err != nil {
		t.Fatal(err)
	}
	want, wantInternal := ChaosReport(1, 1)
	if got != want {
		t.Fatal("assembled chaos report differs from serial campaign")
	}
	if internal != wantInternal {
		t.Fatalf("internal = %d, want %d", internal, wantInternal)
	}
}
