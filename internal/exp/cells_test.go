package exp

import (
	"strings"
	"testing"

	"infat/internal/pool"
	"infat/internal/workloads"
)

// cellTestWorkloads is a small representative subset so the cell
// equivalence tests stay fast under -race.
func cellTestWorkloads(t *testing.T) []workloads.Workload {
	t.Helper()
	var ws []workloads.Workload
	for _, name := range []string{"treeadd", "health", "ks"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		ws = append(ws, w)
	}
	return ws
}

// TestPlanCellEnumeration pins the enumeration contract: perf cells
// first in (workload, config) order, then mem cells in (workload, mode)
// order, with stable keys.
func TestPlanCellEnumeration(t *testing.T) {
	ws := cellTestWorkloads(t)
	p := NewReportPlan(ws, 1, MemScale)
	wantCells := len(ws)*len(cellConfigs) + len(ws)*len(memModes)
	if got := p.NumCells(); got != wantCells {
		t.Fatalf("NumCells = %d, want %d", got, wantCells)
	}
	m0 := p.Meta(0)
	if m0.Kind != CellPerf || m0.Workload != "treeadd" || m0.Config != "baseline" || m0.Seq != 0 {
		t.Errorf("Meta(0) = %+v", m0)
	}
	mLast := p.Meta(p.NumCells() - 1)
	if mLast.Kind != CellMem || mLast.Workload != "ks" || mLast.Config != "wrapped" {
		t.Errorf("Meta(last) = %+v", mLast)
	}
	if got := p.Key(0); got != "perf|treeadd|baseline" {
		t.Errorf("Key(0) = %q", got)
	}
	// Keys are position-independent: the same cell in a differently
	// ordered plan has the same key.
	rev := NewReportPlan([]workloads.Workload{ws[2], ws[1], ws[0]}, 1, MemScale)
	if p.Key(0) != rev.Key(2*len(cellConfigs)) {
		t.Errorf("treeadd/baseline key differs across plans: %q vs %q",
			p.Key(0), rev.Key(2*len(cellConfigs)))
	}
	// All keys distinct within a plan.
	seen := map[string]bool{}
	for i := 0; i < p.NumCells(); i++ {
		k := p.Key(i)
		if seen[k] {
			t.Errorf("duplicate cell key %q", k)
		}
		seen[k] = true
	}
}

// TestAssemblyReportEquivalence is the core reassembly contract: running
// every cell independently (in parallel, added out of order) and
// assembling reproduces RunSet+RunMemSet byte-for-byte.
func TestAssemblyReportEquivalence(t *testing.T) {
	ws := cellTestWorkloads(t)
	p := NewReportPlan(ws, 1, MemScale)

	serialResults, err := RunSet(ws, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	serialMem, err := RunMemSet(ws, MemScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Report(serialResults, serialMem)

	a := p.NewAssembly()
	if err := pool.Map(0, p.NumCells(), func(i int) error {
		c, err := p.RunCell(i)
		if err != nil {
			return err
		}
		return a.Add(i, c)
	}); err != nil {
		t.Fatal(err)
	}
	got, err := a.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("assembled report differs from serial run:\n--- assembled ---\n%s\n--- serial ---\n%s", got, want)
	}

	// Perf-only plans reassemble to PerfReport.
	gp := NewPlan(ws, 1)
	ga := gp.NewAssembly()
	if err := pool.Map(0, gp.NumCells(), func(i int) error {
		c, err := gp.RunCell(i)
		if err != nil {
			return err
		}
		return ga.Add(i, c)
	}); err != nil {
		t.Fatal(err)
	}
	gotPerf, err := ga.Report()
	if err != nil {
		t.Fatal(err)
	}
	if want := PerfReport(serialResults); gotPerf != want {
		t.Fatal("perf-only assembled report differs from serial run")
	}
}

// TestAssemblyValidation covers the failure modes a streaming consumer
// can feed an assembly: out-of-range and duplicate sequence numbers,
// missing payloads, and incomplete assemblies.
func TestAssemblyValidation(t *testing.T) {
	ws := cellTestWorkloads(t)
	p := NewPlan(ws, 1)
	a := p.NewAssembly()
	if err := a.Add(-1, CellResult{}); err == nil {
		t.Error("Add(-1) accepted")
	}
	if err := a.Add(p.NumCells(), CellResult{}); err == nil {
		t.Error("Add(out of range) accepted")
	}
	if err := a.Add(0, CellResult{}); err == nil {
		t.Error("perf cell without perf payload accepted")
	}
	c, err := p.RunCell(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(0, c); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(0, c); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate Add error = %v", err)
	}
	if missing := a.Missing(); len(missing) != p.NumCells()-1 || missing[0] != 1 {
		t.Errorf("Missing() = %v", missing)
	}
	if _, err := a.Report(); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("incomplete Report error = %v", err)
	}
}

// TestChaosAssemblyEquivalence: the chaos plan's cells assemble to the
// same report as the serial campaign.
func TestChaosAssemblyEquivalence(t *testing.T) {
	p := NewChaosPlan(1)
	if got, want := p.NumCells(), len(ChaosCampaign(1)); got != want {
		t.Fatalf("NumCells = %d, want %d", got, want)
	}
	a := p.NewAssembly()
	if err := pool.Map(0, p.NumCells(), func(i int) error {
		return a.Add(i, p.RunCell(i))
	}); err != nil {
		t.Fatal(err)
	}
	got, internal, err := a.Report()
	if err != nil {
		t.Fatal(err)
	}
	want, wantInternal := ChaosReport(1, 1)
	if got != want {
		t.Fatal("assembled chaos report differs from serial campaign")
	}
	if internal != wantInternal {
		t.Fatalf("internal = %d, want %d", internal, wantInternal)
	}
}
