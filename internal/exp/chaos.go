package exp

import (
	"infat/internal/chaos"
	"infat/internal/pool"
)

// ChaosSeedsPerCell is the number of seeds each (scheme, fault) cell runs
// per unit of scale.
const ChaosSeedsPerCell = 8

// ChaosCampaign runs the fault-injection grid serially (the workers=1
// path of ChaosCampaignN, kept as the equivalence reference).
func ChaosCampaign(scale int) []chaos.Outcome { return ChaosCampaignN(scale, 1) }

// ChaosCampaignN runs the (scheme × fault × seed) fault-injection grid
// over at most workers goroutines (workers <= 0 selects GOMAXPROCS).
// Every cell builds its own runtime, so cells share no mutable state;
// results land in a pre-indexed slice, making the outcome slice — and
// therefore chaos.Report — byte-identical at any worker count.
func ChaosCampaignN(scale, workers int) []chaos.Outcome {
	if scale < 1 {
		scale = 1
	}
	seeds := ChaosSeedsPerCell * scale
	nf := len(chaos.Faults)
	out := make([]chaos.Outcome, len(chaos.Schemes)*nf*seeds)
	// chaos.Run never returns an error (panics become Internal outcomes),
	// so the pool's error path is unused.
	_ = pool.Map(workers, len(out), func(c int) error {
		s := chaos.Schemes[c/(nf*seeds)]
		f := chaos.Faults[c/seeds%nf]
		out[c] = chaos.Run(s, f, uint64(c%seeds))
		return nil
	})
	return out
}

// ChaosReport runs the campaign and renders the report, returning it
// along with the number of internal-bucket outcomes (simulator bugs; a
// healthy campaign returns 0).
func ChaosReport(scale, workers int) (string, int) {
	outcomes := ChaosCampaignN(scale, workers)
	return chaos.Report(outcomes), chaos.Summarize(outcomes).Internal
}
