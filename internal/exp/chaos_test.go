package exp

import (
	"reflect"
	"testing"

	"infat/internal/chaos"
)

// TestChaosCampaignParallelEquivalence: the campaign must produce an
// identical outcome slice (and therefore a byte-identical report) at any
// worker count, including the degenerate scale clamp.
func TestChaosCampaignParallelEquivalence(t *testing.T) {
	serial := ChaosCampaign(1)
	if want := len(chaos.Schemes) * len(chaos.Faults) * ChaosSeedsPerCell; len(serial) != want {
		t.Fatalf("campaign size = %d, want %d", len(serial), want)
	}
	for _, workers := range []int{0, 4} {
		par := ChaosCampaignN(1, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: outcome slice differs from serial", workers)
		}
	}
	if got := ChaosCampaignN(0, 1); !reflect.DeepEqual(serial, got) {
		t.Error("scale clamp: scale=0 differs from scale=1")
	}
	if rep1, _ := ChaosReport(1, 1); rep1 != chaos.Report(serial) {
		t.Error("ChaosReport differs from Report(serial outcomes)")
	}
}

func TestChaosCampaignNoInternal(t *testing.T) {
	_, internal := ChaosReport(1, 0)
	if internal != 0 {
		rep, _ := ChaosReport(1, 1)
		t.Fatalf("campaign produced %d internal outcomes:\n%s", internal, rep)
	}
}
