// Package exp is the evaluation harness: it runs every §5.2 workload in
// the five configurations the paper compares (baseline; subheap and
// wrapped allocators; each with and without promote) and renders Table 4
// and Figures 10, 11, and 12 from the collected machine counters.
//
// The grid is embarrassingly parallel — every (workload, configuration)
// cell builds its own rt.Runtime, so cells share no mutable state — and
// the harness fans cells out over a bounded worker pool (internal/pool).
// Results land in pre-indexed slices, so report ordering, checksum
// verification, and error text are identical at any worker count; a
// worker count of 1 restores the fully serial path.
package exp

import (
	"errors"
	"fmt"
	"strings"

	"infat/internal/machine"
	"infat/internal/memo"
	"infat/internal/pool"
	"infat/internal/rt"
	"infat/internal/stats"
	"infat/internal/workloads"
)

// ModeResult captures one run's observables.
type ModeResult struct {
	Counters  machine.Counters
	Stats     rt.Stats
	Footprint uint64
	Checksum  uint64
	L1DMisses uint64
}

// Result holds all five configurations of one workload — plus, for
// plans with the temporal axis enabled, the ifp-temporal run.
type Result struct {
	Name     string
	Suite    string
	Baseline ModeResult
	Subheap  ModeResult
	Wrapped  ModeResult
	// No-promote variants isolate the promote instruction's cost (§5.2).
	SubheapNP ModeResult
	WrappedNP ModeResult
	// Temporal is the rt.IFPTemporal run (generation tagging). Zero unless
	// the plan was built WithTemporal — the spatial campaigns never touch
	// it, which keeps their reports byte-identical to the pre-temporal
	// harness.
	Temporal ModeResult
}

// runOne executes a workload in one configuration.
func runOne(w workloads.Workload, mode rt.Mode, noPromote bool, scale int) (ModeResult, error) {
	r := rt.Acquire(mode)
	defer rt.Release(r)
	r.M.NoPromote = noPromote
	sum, err := w.Run(r, scale)
	if err != nil {
		return ModeResult{}, fmt.Errorf("%s/%v(np=%v): %w", w.Name, mode, noPromote, err)
	}
	return ModeResult{
		Counters:  r.M.C,
		Stats:     r.Stats,
		Footprint: r.Footprint(),
		Checksum:  sum,
		L1DMisses: r.M.L1D.Stats().Misses,
	}, nil
}

// cellConfig is one per-workload run configuration of the evaluation
// grid; dst selects the slot a cell's result lands in.
type cellConfig struct {
	label     string
	mode      rt.Mode
	noPromote bool
	dst       func(*Result) *ModeResult
}

// cellConfigs enumerates the five per-workload configurations in the
// paper's comparison order.
var cellConfigs = []cellConfig{
	{"baseline", rt.Baseline, false, func(r *Result) *ModeResult { return &r.Baseline }},
	{"subheap", rt.Subheap, false, func(r *Result) *ModeResult { return &r.Subheap }},
	{"wrapped", rt.Wrapped, false, func(r *Result) *ModeResult { return &r.Wrapped }},
	{"subheap-nopromote", rt.Subheap, true, func(r *Result) *ModeResult { return &r.SubheapNP }},
	{"wrapped-nopromote", rt.Wrapped, true, func(r *Result) *ModeResult { return &r.WrappedNP }},
}

// temporalConfigs is the temporal-axis enumeration: the five spatial
// configurations (unchanged, in the same order, so every spatial cell of
// a temporal plan has the same seq as in a spatial plan's prefix)
// followed by the ifp-temporal run.
var temporalConfigs = append(append([]cellConfig{}, cellConfigs...),
	cellConfig{"ifp-temporal", rt.IFPTemporal, false, func(r *Result) *ModeResult { return &r.Temporal }})

// verifyChecksums asserts the instrumented configurations reproduced the
// baseline checksum, naming each diverging mode and both values.
func (r *Result) verifyChecksums() error { return r.verifyChecksumsFor(cellConfigs) }

func (r *Result) verifyChecksumsFor(cfgs []cellConfig) error {
	var errs []error
	for _, cfg := range cfgs[1:] {
		if got := cfg.dst(r).Checksum; got != r.Baseline.Checksum {
			errs = append(errs, fmt.Errorf("%s: %s checksum %#x != baseline %#x",
				r.Name, cfg.label, got, r.Baseline.Checksum))
		}
	}
	return errors.Join(errs...)
}

// Run executes all five configurations of one workload and verifies the
// checksums agree across modes.
func Run(w workloads.Workload, scale int) (Result, error) {
	res, err := RunSet([]workloads.Workload{w}, scale, 1)
	if err != nil {
		return Result{Name: w.Name, Suite: w.Suite}, err
	}
	return res[0], nil
}

// RunSet executes the five configurations of each given workload, fanning
// the (workload × configuration) cells over at most workers goroutines
// (workers <= 0 selects GOMAXPROCS, 1 is fully serial). Results are
// collected into a pre-indexed slice in the given workload order, so
// output is byte-identical at any worker count; a failed cell does not
// abort the rest of the grid — all cell and checksum errors are joined.
func RunSet(ws []workloads.Workload, scale, workers int) ([]Result, error) {
	return RunSetMemo(nil, ws, scale, workers)
}

// RunSetMemo is RunSet through a memo store: warm cells replay from s
// instead of simulating, cold cells publish their results (nil s is
// plain RunSet). The output is byte-identical either way.
func RunSetMemo(s *memo.Store, ws []workloads.Workload, scale, workers int) ([]Result, error) {
	out := make([]Result, len(ws))
	for i, w := range ws {
		out[i].Name, out[i].Suite = w.Name, w.Suite
	}
	err := pool.Map(workers, len(ws)*len(cellConfigs), func(c int) error {
		wi, ci := c/len(cellConfigs), c%len(cellConfigs)
		cfg := cellConfigs[ci]
		m, _, err := RunOneMemo(s, ws[wi], cfg.mode, cfg.noPromote, scale)
		if err != nil {
			return err
		}
		*cfg.dst(&out[wi]) = *m
		return nil
	})
	if err != nil {
		return nil, err
	}
	var errs []error
	for i := range out {
		if err := out[i].verifyChecksums(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// RunAll executes the full suite serially (the workers=1 path of
// RunAllN, kept for API compatibility and as the equivalence reference).
func RunAll(scale int) ([]Result, error) { return RunAllN(scale, 1) }

// RunAllN executes the full suite over at most workers goroutines.
func RunAllN(scale, workers int) ([]Result, error) {
	return RunSet(workloads.All, scale, workers)
}

// Table4 renders the dynamic-event-count table: object instrumentation
// per category (with layout-table share), valid promotes, and the dynamic
// instruction increase of both allocator versions.
func Table4(results []Result) string {
	var t stats.Table
	t.Add("Benchmark", "Glob#", "%LT", "Loc#", "%LT", "Heap#", "%LT",
		"ValidPromote", "%Total", "BaseInstr", "Subheap", "Wrapped")
	for _, r := range results {
		s := r.Subheap.Stats // LT/subobject stats come from the subheap version (§5.2.1)
		c := r.Subheap.Counters
		t.Add(r.Name,
			fmt.Sprint(s.GlobalObjects), stats.Pct(s.GlobalWithLT, s.GlobalObjects),
			stats.SI(s.LocalObjects), stats.Pct(s.LocalWithLT, s.LocalObjects),
			stats.SI(s.HeapObjects), stats.Pct(s.HeapWithLT, s.HeapObjects),
			stats.SI(c.PromoteValid), stats.Pct(c.PromoteValid, c.Promote),
			stats.SI(r.Baseline.Counters.Instrs),
			fmt.Sprintf("%.2fx", stats.Ratio(r.Subheap.Counters.Instrs, r.Baseline.Counters.Instrs)),
			fmt.Sprintf("%.2fx", stats.Ratio(r.Wrapped.Counters.Instrs, r.Baseline.Counters.Instrs)))
	}
	var subR, wrapR []float64
	for _, r := range results {
		subR = append(subR, stats.Ratio(r.Subheap.Counters.Instrs, r.Baseline.Counters.Instrs))
		wrapR = append(wrapR, stats.Ratio(r.Wrapped.Counters.Instrs, r.Baseline.Counters.Instrs))
	}
	return "Table 4: Dynamic Event Counts on Object Instrumentation, Promotion, and Instructions Executed\n" +
		t.String() +
		fmt.Sprintf("geo-mean dynamic instruction increase: subheap %s, wrapped %s\n",
			stats.GeomeanRatio(subR), stats.GeomeanRatio(wrapR))
}

// Fig10 renders the runtime-overhead figure: cycles of each instrumented
// configuration normalized to baseline.
func Fig10(results []Result) string {
	var t stats.Table
	t.Add("Benchmark", "Subheap", "Wrapped", "Subheap(NoPromote)", "Wrapped(NoPromote)")
	var sr, wr []float64
	for _, r := range results {
		base := r.Baseline.Counters.Cycles
		ratio := func(m ModeResult) float64 { return stats.Ratio(m.Counters.Cycles, base) }
		sr = append(sr, ratio(r.Subheap))
		wr = append(wr, ratio(r.Wrapped))
		t.Add(r.Name,
			pctCell(ratio(r.Subheap)), pctCell(ratio(r.Wrapped)),
			pctCell(ratio(r.SubheapNP)), pctCell(ratio(r.WrappedNP)))
	}
	return "Figure 10: Performance Overhead of All Benchmarks (cycles vs baseline)\n" +
		t.String() +
		fmt.Sprintf("geo-mean overhead: subheap %s, wrapped %s\n",
			stats.GeomeanOverhead(sr), stats.GeomeanOverhead(wr))
}

func pctCell(ratio float64) string { return fmt.Sprintf("%+.1f%%", stats.Overhead(ratio)) }

// Fig11 renders the IFP dynamic-instruction-mix figure: promote,
// arithmetic, and bounds load/store instructions as a share of the
// baseline instruction count (the paper normalizes to baseline counts).
func Fig11(results []Result) string {
	var t stats.Table
	t.Add("Benchmark", "Promote", "Arithmetic", "BoundsLd/St", "Total")
	for _, r := range results {
		for _, v := range []struct {
			label string
			m     ModeResult
		}{{"subheap", r.Subheap}, {"wrapped", r.Wrapped}} {
			base := float64(r.Baseline.Counters.Instrs)
			c := v.m.Counters
			pct := func(n uint64) string { return fmt.Sprintf("%.1f%%", 100*float64(n)/base) }
			t.Add(r.Name+"/"+v.label,
				pct(c.Promote), pct(c.IfpArith()), pct(c.IfpBoundsMem()),
				pct(c.IfpTotal()))
		}
	}
	return "Figure 11: Dynamic Instruction Counts for Instructions from In-Fat Pointer (normalized to baseline)\n" +
		t.String()
}

// MemResult carries the footprints of the three configurations that
// matter for memory (§5.2: "no-promote has no difference in memory
// overhead").
type MemResult struct {
	Name                       string
	Baseline, Subheap, Wrapped uint64
}

// MemScale is the default scale multiplier for the memory experiment: the
// paper measures maximum resident size of multi-MB runs, so footprints
// must be large enough that page granularity does not dominate.
const MemScale = 4

// memModes enumerates the three configurations the memory experiment
// compares, in column order.
var memModes = []struct {
	mode rt.Mode
	dst  func(*MemResult) *uint64
}{
	{rt.Baseline, func(m *MemResult) *uint64 { return &m.Baseline }},
	{rt.Subheap, func(m *MemResult) *uint64 { return &m.Subheap }},
	{rt.Wrapped, func(m *MemResult) *uint64 { return &m.Wrapped }},
}

// RunMem measures footprints at the given (already multiplied) scale.
func RunMem(w workloads.Workload, scale int) (MemResult, error) {
	res, err := RunMemSet([]workloads.Workload{w}, scale, 1)
	if err != nil {
		return MemResult{Name: w.Name}, err
	}
	return res[0], nil
}

// RunMemSet measures the given workloads' footprints, fanning the
// (workload × mode) cells over at most workers goroutines with the same
// deterministic collection scheme as RunSet.
func RunMemSet(ws []workloads.Workload, scale, workers int) ([]MemResult, error) {
	return RunMemSetMemo(nil, ws, scale, workers)
}

// RunMemSetMemo is RunMemSet through a memo store (nil s is plain
// RunMemSet). Memory cells share digests with perf cells at the same
// effective scale, so a warm grid also warms the footprint pass.
func RunMemSetMemo(s *memo.Store, ws []workloads.Workload, scale, workers int) ([]MemResult, error) {
	out := make([]MemResult, len(ws))
	for i, w := range ws {
		out[i].Name = w.Name
	}
	err := pool.Map(workers, len(ws)*len(memModes), func(c int) error {
		wi, mi := c/len(memModes), c%len(memModes)
		m, _, err := RunOneMemo(s, ws[wi], memModes[mi].mode, false, scale)
		if err != nil {
			return err
		}
		*memModes[mi].dst(&out[wi]) = m.Footprint
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunAllMem measures every workload's footprint serially.
func RunAllMem(scale int) ([]MemResult, error) { return RunAllMemN(scale, 1) }

// RunAllMemN measures every workload's footprint over at most workers
// goroutines.
func RunAllMemN(scale, workers int) ([]MemResult, error) {
	return RunMemSet(workloads.All, scale, workers)
}

// Fig12 renders the memory-overhead figure. The paper excludes programs
// whose footprint is too small for `time -v` to resolve (ks, yacr2,
// coremark); we exclude the same three for fidelity.
func Fig12(results []MemResult) string {
	excluded := map[string]bool{"ks": true, "yacr2": true, "coremark": true}
	var t stats.Table
	t.Add("Benchmark", "Subheap", "Wrapped")
	var sr, wr []float64
	for _, r := range results {
		if excluded[r.Name] {
			continue
		}
		s := stats.Ratio(r.Subheap, r.Baseline)
		w := stats.Ratio(r.Wrapped, r.Baseline)
		sr = append(sr, s)
		wr = append(wr, w)
		t.Add(r.Name, pctCell(s), pctCell(w))
	}
	return "Figure 12: Memory Overhead of Applicable Benchmarks (resident pages vs baseline)\n" +
		t.String() +
		fmt.Sprintf("geo-mean overhead: subheap %s, wrapped %s\n",
			stats.GeomeanOverhead(sr), stats.GeomeanOverhead(wr))
}

// Report renders everything.
func Report(results []Result, mem []MemResult) string {
	var b strings.Builder
	b.WriteString(Table4(results))
	b.WriteString("\n")
	b.WriteString(Fig10(results))
	b.WriteString("\n")
	b.WriteString(Fig11(results))
	b.WriteString("\n")
	b.WriteString(Fig12(mem))
	return b.String()
}
