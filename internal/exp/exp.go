// Package exp is the evaluation harness: it runs every §5.2 workload in
// the five configurations the paper compares (baseline; subheap and
// wrapped allocators; each with and without promote) and renders Table 4
// and Figures 10, 11, and 12 from the collected machine counters.
package exp

import (
	"fmt"
	"strings"

	"infat/internal/machine"
	"infat/internal/rt"
	"infat/internal/stats"
	"infat/internal/workloads"
)

// ModeResult captures one run's observables.
type ModeResult struct {
	Counters  machine.Counters
	Stats     rt.Stats
	Footprint uint64
	Checksum  uint64
	L1DMisses uint64
}

// Result holds all five configurations of one workload.
type Result struct {
	Name     string
	Suite    string
	Baseline ModeResult
	Subheap  ModeResult
	Wrapped  ModeResult
	// No-promote variants isolate the promote instruction's cost (§5.2).
	SubheapNP ModeResult
	WrappedNP ModeResult
}

// runOne executes a workload in one configuration.
func runOne(w workloads.Workload, mode rt.Mode, noPromote bool, scale int) (ModeResult, error) {
	r := rt.New(mode)
	r.M.NoPromote = noPromote
	sum, err := w.Run(r, scale)
	if err != nil {
		return ModeResult{}, fmt.Errorf("%s/%v(np=%v): %w", w.Name, mode, noPromote, err)
	}
	return ModeResult{
		Counters:  r.M.C,
		Stats:     r.Stats,
		Footprint: r.Footprint(),
		Checksum:  sum,
		L1DMisses: r.M.L1D.Stats().Misses,
	}, nil
}

// Run executes all five configurations of one workload and verifies the
// checksums agree across modes.
func Run(w workloads.Workload, scale int) (Result, error) {
	res := Result{Name: w.Name, Suite: w.Suite}
	var err error
	if res.Baseline, err = runOne(w, rt.Baseline, false, scale); err != nil {
		return res, err
	}
	if res.Subheap, err = runOne(w, rt.Subheap, false, scale); err != nil {
		return res, err
	}
	if res.Wrapped, err = runOne(w, rt.Wrapped, false, scale); err != nil {
		return res, err
	}
	if res.SubheapNP, err = runOne(w, rt.Subheap, true, scale); err != nil {
		return res, err
	}
	if res.WrappedNP, err = runOne(w, rt.Wrapped, true, scale); err != nil {
		return res, err
	}
	for _, m := range []ModeResult{res.Subheap, res.Wrapped, res.SubheapNP, res.WrappedNP} {
		if m.Checksum != res.Baseline.Checksum {
			return res, fmt.Errorf("%s: checksum mismatch across modes", w.Name)
		}
	}
	return res, nil
}

// RunAll executes the full suite.
func RunAll(scale int) ([]Result, error) {
	out := make([]Result, 0, len(workloads.All))
	for _, w := range workloads.All {
		r, err := Run(w, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Table4 renders the dynamic-event-count table: object instrumentation
// per category (with layout-table share), valid promotes, and the dynamic
// instruction increase of both allocator versions.
func Table4(results []Result) string {
	var t stats.Table
	t.Add("Benchmark", "Glob#", "%LT", "Loc#", "%LT", "Heap#", "%LT",
		"ValidPromote", "%Total", "BaseInstr", "Subheap", "Wrapped")
	for _, r := range results {
		s := r.Subheap.Stats // LT/subobject stats come from the subheap version (§5.2.1)
		c := r.Subheap.Counters
		t.Add(r.Name,
			fmt.Sprint(s.GlobalObjects), stats.Pct(s.GlobalWithLT, s.GlobalObjects),
			stats.SI(s.LocalObjects), stats.Pct(s.LocalWithLT, s.LocalObjects),
			stats.SI(s.HeapObjects), stats.Pct(s.HeapWithLT, s.HeapObjects),
			stats.SI(c.PromoteValid), stats.Pct(c.PromoteValid, c.Promote),
			stats.SI(r.Baseline.Counters.Instrs),
			fmt.Sprintf("%.2fx", stats.Ratio(r.Subheap.Counters.Instrs, r.Baseline.Counters.Instrs)),
			fmt.Sprintf("%.2fx", stats.Ratio(r.Wrapped.Counters.Instrs, r.Baseline.Counters.Instrs)))
	}
	var subR, wrapR []float64
	for _, r := range results {
		subR = append(subR, stats.Ratio(r.Subheap.Counters.Instrs, r.Baseline.Counters.Instrs))
		wrapR = append(wrapR, stats.Ratio(r.Wrapped.Counters.Instrs, r.Baseline.Counters.Instrs))
	}
	return "Table 4: Dynamic Event Counts on Object Instrumentation, Promotion, and Instructions Executed\n" +
		t.String() +
		fmt.Sprintf("geo-mean dynamic instruction increase: subheap %.2fx, wrapped %.2fx\n",
			stats.Geomean(subR), stats.Geomean(wrapR))
}

// Fig10 renders the runtime-overhead figure: cycles of each instrumented
// configuration normalized to baseline.
func Fig10(results []Result) string {
	var t stats.Table
	t.Add("Benchmark", "Subheap", "Wrapped", "Subheap(NoPromote)", "Wrapped(NoPromote)")
	var sr, wr []float64
	for _, r := range results {
		base := r.Baseline.Counters.Cycles
		ratio := func(m ModeResult) float64 { return stats.Ratio(m.Counters.Cycles, base) }
		sr = append(sr, ratio(r.Subheap))
		wr = append(wr, ratio(r.Wrapped))
		t.Add(r.Name,
			pctCell(ratio(r.Subheap)), pctCell(ratio(r.Wrapped)),
			pctCell(ratio(r.SubheapNP)), pctCell(ratio(r.WrappedNP)))
	}
	return "Figure 10: Performance Overhead of All Benchmarks (cycles vs baseline)\n" +
		t.String() +
		fmt.Sprintf("geo-mean overhead: subheap %+.1f%%, wrapped %+.1f%%\n",
			stats.Overhead(stats.Geomean(sr)), stats.Overhead(stats.Geomean(wr)))
}

func pctCell(ratio float64) string { return fmt.Sprintf("%+.1f%%", stats.Overhead(ratio)) }

// Fig11 renders the IFP dynamic-instruction-mix figure: promote,
// arithmetic, and bounds load/store instructions as a share of the
// baseline instruction count (the paper normalizes to baseline counts).
func Fig11(results []Result) string {
	var t stats.Table
	t.Add("Benchmark", "Promote", "Arithmetic", "BoundsLd/St", "Total")
	for _, r := range results {
		for _, v := range []struct {
			label string
			m     ModeResult
		}{{"subheap", r.Subheap}, {"wrapped", r.Wrapped}} {
			base := float64(r.Baseline.Counters.Instrs)
			c := v.m.Counters
			pct := func(n uint64) string { return fmt.Sprintf("%.1f%%", 100*float64(n)/base) }
			t.Add(r.Name+"/"+v.label,
				pct(c.Promote), pct(c.IfpArith()), pct(c.IfpBoundsMem()),
				pct(c.IfpTotal()))
		}
	}
	return "Figure 11: Dynamic Instruction Counts for Instructions from In-Fat Pointer (normalized to baseline)\n" +
		t.String()
}

// MemResult carries the footprints of the three configurations that
// matter for memory (§5.2: "no-promote has no difference in memory
// overhead").
type MemResult struct {
	Name                       string
	Baseline, Subheap, Wrapped uint64
}

// MemScale is the default scale multiplier for the memory experiment: the
// paper measures maximum resident size of multi-MB runs, so footprints
// must be large enough that page granularity does not dominate.
const MemScale = 4

// RunMem measures footprints at the given (already multiplied) scale.
func RunMem(w workloads.Workload, scale int) (MemResult, error) {
	res := MemResult{Name: w.Name}
	for _, cfg := range []struct {
		mode rt.Mode
		dst  *uint64
	}{
		{rt.Baseline, &res.Baseline},
		{rt.Subheap, &res.Subheap},
		{rt.Wrapped, &res.Wrapped},
	} {
		m, err := runOne(w, cfg.mode, false, scale)
		if err != nil {
			return res, err
		}
		*cfg.dst = m.Footprint
	}
	return res, nil
}

// RunAllMem measures every workload's footprint.
func RunAllMem(scale int) ([]MemResult, error) {
	out := make([]MemResult, 0, len(workloads.All))
	for _, w := range workloads.All {
		r, err := RunMem(w, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig12 renders the memory-overhead figure. The paper excludes programs
// whose footprint is too small for `time -v` to resolve (ks, yacr2,
// coremark); we exclude the same three for fidelity.
func Fig12(results []MemResult) string {
	excluded := map[string]bool{"ks": true, "yacr2": true, "coremark": true}
	var t stats.Table
	t.Add("Benchmark", "Subheap", "Wrapped")
	var sr, wr []float64
	for _, r := range results {
		if excluded[r.Name] {
			continue
		}
		s := stats.Ratio(r.Subheap, r.Baseline)
		w := stats.Ratio(r.Wrapped, r.Baseline)
		sr = append(sr, s)
		wr = append(wr, w)
		t.Add(r.Name, pctCell(s), pctCell(w))
	}
	return "Figure 12: Memory Overhead of Applicable Benchmarks (resident pages vs baseline)\n" +
		t.String() +
		fmt.Sprintf("geo-mean overhead: subheap %+.1f%%, wrapped %+.1f%%\n",
			stats.Overhead(stats.Geomean(sr)), stats.Overhead(stats.Geomean(wr)))
}

// Report renders everything.
func Report(results []Result, mem []MemResult) string {
	var b strings.Builder
	b.WriteString(Table4(results))
	b.WriteString("\n")
	b.WriteString(Fig10(results))
	b.WriteString("\n")
	b.WriteString(Fig11(results))
	b.WriteString("\n")
	b.WriteString(Fig12(mem))
	return b.String()
}
