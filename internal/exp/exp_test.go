package exp

import (
	"strings"
	"testing"

	"infat/internal/rt"
	"infat/internal/workloads"
)

// small runs a cheap subset so the tests stay fast.
var small = []string{"treeadd", "coremark", "voronoi"}

func subset(t *testing.T) []Result {
	t.Helper()
	var out []Result
	for _, name := range small {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		r, err := Run(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

func TestRunCollectsAllConfigs(t *testing.T) {
	res := subset(t)[0]
	if res.Name != "treeadd" {
		t.Errorf("name = %s", res.Name)
	}
	if res.Baseline.Counters.Instrs == 0 || res.Subheap.Counters.Instrs == 0 ||
		res.Wrapped.Counters.Instrs == 0 || res.SubheapNP.Counters.Instrs == 0 ||
		res.WrappedNP.Counters.Instrs == 0 {
		t.Error("missing configuration data")
	}
	if res.Baseline.Counters.IfpTotal() != 0 {
		t.Error("baseline ran IFP instructions")
	}
	// No-promote variants execute the same promotes but never fetch
	// metadata.
	if res.SubheapNP.Counters.MetaFetches != 0 {
		t.Error("no-promote fetched metadata")
	}
	if res.SubheapNP.Counters.Promote != res.Subheap.Counters.Promote {
		t.Error("no-promote changed promote count")
	}
}

func TestRenderersContainRows(t *testing.T) {
	res := subset(t)
	for name, out := range map[string]string{
		"table4": Table4(res),
		"fig10":  Fig10(res),
		"fig11":  Fig11(res),
	} {
		for _, w := range small {
			if !strings.Contains(out, w) {
				t.Errorf("%s missing row for %s", name, w)
			}
		}
		if !strings.Contains(out, "geo-mean") && name != "fig11" {
			t.Errorf("%s missing geo-mean", name)
		}
	}
}

func TestRunMem(t *testing.T) {
	w, _ := workloads.ByName("treeadd")
	m, err := RunMem(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Baseline == 0 || m.Subheap == 0 || m.Wrapped == 0 {
		t.Errorf("zero footprints: %+v", m)
	}
	// treeadd: subheap packs tighter than baseline; wrapped pays
	// per-object metadata (§5.2.3's sign pattern).
	if m.Subheap >= m.Baseline {
		t.Errorf("treeadd subheap footprint %d >= baseline %d", m.Subheap, m.Baseline)
	}
	if m.Wrapped <= m.Baseline {
		t.Errorf("treeadd wrapped footprint %d <= baseline %d", m.Wrapped, m.Baseline)
	}
	out := Fig12([]MemResult{m})
	if !strings.Contains(out, "treeadd") {
		t.Error("fig12 missing row")
	}
	// The excluded trio never appears as a row.
	out = Fig12([]MemResult{{Name: "ks", Baseline: 1, Subheap: 1, Wrapped: 1}})
	if strings.Contains(out, "\nks ") {
		t.Error("fig12 included an excluded program")
	}
}

func TestAblationsRender(t *testing.T) {
	out, err := Ablations(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"no-walker", "global-only", "explicit-chk", "standard"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations missing %q", want)
		}
	}
	// The explicit-check ablation must cost instructions vs standard on
	// a check-heavy workload: extract the ft rows and compare.
	std, err := runConfigured("ft", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := runConfigured("ft", 1, func(r *rt.Runtime) { r.ExplicitChecks = true })
	if err != nil {
		t.Fatal(err)
	}
	if exp.Counters.Instrs <= std.Counters.Instrs {
		t.Errorf("explicit checks did not add instructions: %d vs %d",
			exp.Counters.Instrs, std.Counters.Instrs)
	}
	if exp.Counters.IfpChk == 0 {
		t.Error("explicit-check run issued no ifpchk")
	}
	// The no-walker ablation must coarsen health's narrowing.
	stdH, err := runConfigured("health", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := runConfigured("health", 1, func(r *rt.Runtime) { r.M.NoNarrow = true })
	if err != nil {
		t.Fatal(err)
	}
	if stdH.Counters.NarrowSuccess == 0 {
		t.Error("health performed no successful narrowing")
	}
	if nw.Counters.NarrowSuccess != 0 {
		t.Error("no-walker still narrowed")
	}
	if nw.Counters.NarrowCoarse == 0 {
		t.Error("no-walker recorded no coarsening")
	}
}

func TestForceGlobalTableAblation(t *testing.T) {
	m, err := runConfigured("treeadd", 1, func(r *rt.Runtime) { r.ForceGlobalTable = true })
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters.NarrowSuccess != 0 {
		t.Error("global-table-only narrowed")
	}
	// 2047 concurrent rows fit; a larger scale exhausts the 4096-row
	// table — the capacity constraint the multi-scheme design avoids.
	if _, err := runConfigured("treeadd", 4, func(r *rt.Runtime) { r.ForceGlobalTable = true }); err == nil {
		t.Error("global table never filled at scale 4 (expected capacity failure)")
	}
}

func TestTagLayouts(t *testing.T) {
	out := TagLayouts()
	for _, want := range []string{"1008 B", "<- paper", "64"} {
		if !strings.Contains(out, want) {
			t.Errorf("tag layout table missing %q", want)
		}
	}
}

func TestASICSweep(t *testing.T) {
	out, err := ASICSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FPGA prototype") || !strings.Contains(out, "Geo-mean") {
		t.Error("sweep output malformed")
	}
}

func TestReportComposes(t *testing.T) {
	res := subset(t)
	w, _ := workloads.ByName("treeadd")
	m, err := RunMem(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := Report(res, []MemResult{m})
	for _, want := range []string{"Table 4", "Figure 10", "Figure 11", "Figure 12"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestHybridMode(t *testing.T) {
	// Hybrid runs every workload correctly and lands between (or below)
	// the static choices on the representative pair.
	for _, name := range []string{"treeadd", "yacr2"} {
		w, _ := workloads.ByName(name)
		base, err := runOne(w, rt.Baseline, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := runOne(w, rt.Hybrid, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		if hyb.Checksum != base.Checksum {
			t.Fatalf("%s: hybrid checksum diverged", name)
		}
		if name == "treeadd" && hyb.Stats.HeapPool == 0 {
			t.Error("treeadd hybrid: hot signature never graduated to a pool")
		}
		if name == "yacr2" && hyb.Stats.HeapPool != 0 {
			t.Error("yacr2 hybrid: one-off allocations graduated to pools")
		}
	}
}
