package exp

import (
	"fmt"
	"strings"
	"testing"

	"infat/internal/rt"
	"infat/internal/workloads"
)

// small runs a cheap subset so the tests stay fast.
var small = []string{"treeadd", "coremark", "voronoi"}

func subset(t *testing.T) []Result {
	t.Helper()
	var out []Result
	for _, name := range small {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		r, err := Run(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

func TestRunCollectsAllConfigs(t *testing.T) {
	res := subset(t)[0]
	if res.Name != "treeadd" {
		t.Errorf("name = %s", res.Name)
	}
	if res.Baseline.Counters.Instrs == 0 || res.Subheap.Counters.Instrs == 0 ||
		res.Wrapped.Counters.Instrs == 0 || res.SubheapNP.Counters.Instrs == 0 ||
		res.WrappedNP.Counters.Instrs == 0 {
		t.Error("missing configuration data")
	}
	if res.Baseline.Counters.IfpTotal() != 0 {
		t.Error("baseline ran IFP instructions")
	}
	// No-promote variants execute the same promotes but never fetch
	// metadata.
	if res.SubheapNP.Counters.MetaFetches != 0 {
		t.Error("no-promote fetched metadata")
	}
	if res.SubheapNP.Counters.Promote != res.Subheap.Counters.Promote {
		t.Error("no-promote changed promote count")
	}
}

func TestRenderersContainRows(t *testing.T) {
	res := subset(t)
	for name, out := range map[string]string{
		"table4": Table4(res),
		"fig10":  Fig10(res),
		"fig11":  Fig11(res),
	} {
		for _, w := range small {
			if !strings.Contains(out, w) {
				t.Errorf("%s missing row for %s", name, w)
			}
		}
		if !strings.Contains(out, "geo-mean") && name != "fig11" {
			t.Errorf("%s missing geo-mean", name)
		}
	}
}

func smallWorkloads(t *testing.T) []workloads.Workload {
	t.Helper()
	ws := make([]workloads.Workload, 0, len(small))
	for _, name := range small {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		ws = append(ws, w)
	}
	return ws
}

// TestParallelSerialEquivalence is the harness's isolation proof: the
// full rendered report must be byte-identical at -parallel 1 and
// -parallel N, for any N. Run under -race in CI.
func TestParallelSerialEquivalence(t *testing.T) {
	ws := smallWorkloads(t)
	serialRes, err := RunSet(ws, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	serialMem, err := RunMemSet(ws, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	serial := Report(serialRes, serialMem)
	for _, workers := range []int{2, 4, 16} {
		parRes, err := RunSet(ws, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		parMem, err := RunMemSet(ws, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par := Report(parRes, parMem); par != serial {
			t.Errorf("workers=%d: report differs from serial run\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serial, par)
		}
	}
}

// TestChecksumMismatchNamesMode pins the error format: a cross-mode
// divergence must name the offending mode and both checksum values.
func TestChecksumMismatchNamesMode(t *testing.T) {
	divergent := workloads.Workload{
		Name:  "divergent",
		Suite: "test",
		Run: func(r *rt.Runtime, scale int) (uint64, error) {
			if r.Mode() == rt.Wrapped && !r.M.NoPromote {
				return 0xbad, nil
			}
			return 0x900d, nil
		},
	}
	_, err := RunSet([]workloads.Workload{divergent}, 1, 1)
	if err == nil {
		t.Fatal("divergent checksums undetected")
	}
	want := "divergent: wrapped checksum 0xbad != baseline 0x900d"
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error = %q, want it to contain %q", err, want)
	}
	if strings.Contains(err.Error(), "subheap checksum") {
		t.Errorf("error names non-diverging modes: %q", err)
	}
}

// TestRunSetAggregatesErrors: a failed cell must not mask failures in
// other cells, and the joined error must be deterministic.
func TestRunSetAggregatesErrors(t *testing.T) {
	failing := func(name string) workloads.Workload {
		return workloads.Workload{
			Name:  name,
			Suite: "test",
			Run: func(r *rt.Runtime, scale int) (uint64, error) {
				if r.Instrumented() {
					return 0, fmt.Errorf("%s exploded", name)
				}
				return 1, nil
			},
		}
	}
	for _, workers := range []int{1, 4} {
		_, err := RunSet([]workloads.Workload{failing("first"), failing("second")}, 1, workers)
		if err == nil {
			t.Fatal("errors lost")
		}
		for _, want := range []string{"first exploded", "second exploded"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("workers=%d: joined error %q missing %q", workers, err, want)
			}
		}
	}
}

func TestRunMem(t *testing.T) {
	w, _ := workloads.ByName("treeadd")
	m, err := RunMem(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Baseline == 0 || m.Subheap == 0 || m.Wrapped == 0 {
		t.Errorf("zero footprints: %+v", m)
	}
	// treeadd: subheap packs tighter than baseline; wrapped pays
	// per-object metadata (§5.2.3's sign pattern).
	if m.Subheap >= m.Baseline {
		t.Errorf("treeadd subheap footprint %d >= baseline %d", m.Subheap, m.Baseline)
	}
	if m.Wrapped <= m.Baseline {
		t.Errorf("treeadd wrapped footprint %d <= baseline %d", m.Wrapped, m.Baseline)
	}
	out := Fig12([]MemResult{m})
	if !strings.Contains(out, "treeadd") {
		t.Error("fig12 missing row")
	}
	// The excluded trio never appears as a row.
	out = Fig12([]MemResult{{Name: "ks", Baseline: 1, Subheap: 1, Wrapped: 1}})
	if strings.Contains(out, "\nks ") {
		t.Error("fig12 included an excluded program")
	}
}

// TestEmptySeriesGeomeanRendersNA: restricting the memory experiment to
// an excluded workload (ifp-bench -bench coremark -fig12) leaves the
// series empty; the geo-mean line must say "n/a", not -100.0%.
func TestEmptySeriesGeomeanRendersNA(t *testing.T) {
	out := Fig12([]MemResult{{Name: "coremark", Baseline: 5, Subheap: 5, Wrapped: 5}})
	if !strings.Contains(out, "geo-mean overhead: subheap n/a, wrapped n/a") {
		t.Errorf("fig12 geo-mean not guarded:\n%s", out)
	}
	if strings.Contains(out, "-100.0%") {
		t.Errorf("fig12 printed bogus overhead:\n%s", out)
	}
	// Empty result sets guard the same way in the other renderers.
	if out := Fig10(nil); !strings.Contains(out, "subheap n/a") {
		t.Errorf("fig10 geo-mean not guarded:\n%s", out)
	}
	if out := Table4(nil); !strings.Contains(out, "subheap n/a") {
		t.Errorf("table4 geo-mean not guarded:\n%s", out)
	}
}

func TestAblationsRender(t *testing.T) {
	out, err := Ablations(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"no-walker", "global-only", "explicit-chk", "standard"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations missing %q", want)
		}
	}
	// The explicit-check ablation must cost instructions vs standard on
	// a check-heavy workload: extract the ft rows and compare.
	std, err := runConfigured("ft", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := runConfigured("ft", 1, func(r *rt.Runtime) { r.ExplicitChecks = true })
	if err != nil {
		t.Fatal(err)
	}
	if exp.Counters.Instrs <= std.Counters.Instrs {
		t.Errorf("explicit checks did not add instructions: %d vs %d",
			exp.Counters.Instrs, std.Counters.Instrs)
	}
	if exp.Counters.IfpChk == 0 {
		t.Error("explicit-check run issued no ifpchk")
	}
	// The no-walker ablation must coarsen health's narrowing.
	stdH, err := runConfigured("health", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := runConfigured("health", 1, func(r *rt.Runtime) { r.M.NoNarrow = true })
	if err != nil {
		t.Fatal(err)
	}
	if stdH.Counters.NarrowSuccess == 0 {
		t.Error("health performed no successful narrowing")
	}
	if nw.Counters.NarrowSuccess != 0 {
		t.Error("no-walker still narrowed")
	}
	if nw.Counters.NarrowCoarse == 0 {
		t.Error("no-walker recorded no coarsening")
	}
}

func TestForceGlobalTableAblation(t *testing.T) {
	m, err := runConfigured("treeadd", 1, func(r *rt.Runtime) { r.ForceGlobalTable = true })
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters.NarrowSuccess != 0 {
		t.Error("global-table-only narrowed")
	}
	// 2047 concurrent rows fit; a larger scale exhausts the 4096-row
	// table — the capacity constraint the multi-scheme design avoids.
	if _, err := runConfigured("treeadd", 4, func(r *rt.Runtime) { r.ForceGlobalTable = true }); err == nil {
		t.Error("global table never filled at scale 4 (expected capacity failure)")
	}
}

func TestTagLayouts(t *testing.T) {
	out := TagLayouts()
	for _, want := range []string{"1008 B", "<- paper", "64"} {
		if !strings.Contains(out, want) {
			t.Errorf("tag layout table missing %q", want)
		}
	}
}

func TestASICSweep(t *testing.T) {
	out, err := ASICSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FPGA prototype") || !strings.Contains(out, "Geo-mean") {
		t.Error("sweep output malformed")
	}
}

func TestReportComposes(t *testing.T) {
	res := subset(t)
	w, _ := workloads.ByName("treeadd")
	m, err := RunMem(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := Report(res, []MemResult{m})
	for _, want := range []string{"Table 4", "Figure 10", "Figure 11", "Figure 12"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestHybridMode(t *testing.T) {
	// Hybrid runs every workload correctly and lands between (or below)
	// the static choices on the representative pair.
	for _, name := range []string{"treeadd", "yacr2"} {
		w, _ := workloads.ByName(name)
		base, err := runOne(w, rt.Baseline, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := runOne(w, rt.Hybrid, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		if hyb.Checksum != base.Checksum {
			t.Fatalf("%s: hybrid checksum diverged", name)
		}
		if name == "treeadd" && hyb.Stats.HeapPool == 0 {
			t.Error("treeadd hybrid: hot signature never graduated to a pool")
		}
		if name == "yacr2" && hyb.Stats.HeapPool != 0 {
			t.Error("yacr2 hybrid: one-off allocations graduated to pools")
		}
	}
}
