package exp

import (
	"fmt"

	"infat/internal/rt"
	"infat/internal/stats"
	"infat/internal/workloads"
)

// HybridReport runs every workload under the dynamic allocator-selection
// mode (§4.2.1's future-work exploration, implemented here) and compares
// it against the paper's two static choices. The hypothesis the paper
// sketches: hybrid should track subheap on pool-friendly programs and
// avoid subheap's losses where metadata fits the cache anyway.
func HybridReport(scale int) (string, error) {
	var t stats.Table
	t.Add("Benchmark", "Subheap", "Wrapped", "Hybrid", "Hybrid heap split (pool/wrapped)")
	var sr, wr, hr []float64
	for _, w := range workloads.All {
		base, err := runOne(w, rt.Baseline, false, scale)
		if err != nil {
			return "", err
		}
		sub, err := runOne(w, rt.Subheap, false, scale)
		if err != nil {
			return "", err
		}
		wrap, err := runOne(w, rt.Wrapped, false, scale)
		if err != nil {
			return "", err
		}
		hyb, err := runOne(w, rt.Hybrid, false, scale)
		if err != nil {
			return "", err
		}
		if hyb.Checksum != base.Checksum {
			return "", fmt.Errorf("exp: %s hybrid checksum diverged", w.Name)
		}
		rs := stats.Ratio(sub.Counters.Cycles, base.Counters.Cycles)
		rw := stats.Ratio(wrap.Counters.Cycles, base.Counters.Cycles)
		rh := stats.Ratio(hyb.Counters.Cycles, base.Counters.Cycles)
		sr, wr, hr = append(sr, rs), append(wr, rw), append(hr, rh)
		t.Add(w.Name, pctCell(rs), pctCell(rw), pctCell(rh),
			fmt.Sprintf("%d pool / %d other of %d objects",
				hyb.Stats.HeapPool, hyb.Stats.HeapObjects-hyb.Stats.HeapPool,
				hyb.Stats.HeapObjects))
	}
	return "Hybrid allocator (dynamic scheme selection, §4.2.1 future work)\n" +
			t.String() +
			fmt.Sprintf("geo-mean overhead: subheap %+.1f%%, wrapped %+.1f%%, hybrid %+.1f%%\n",
				stats.Overhead(stats.Geomean(sr)), stats.Overhead(stats.Geomean(wr)),
				stats.Overhead(stats.Geomean(hr))),
		nil
}
