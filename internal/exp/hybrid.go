package exp

import (
	"errors"
	"fmt"

	"infat/internal/pool"
	"infat/internal/rt"
	"infat/internal/stats"
	"infat/internal/workloads"
)

// HybridReport runs every workload under the dynamic allocator-selection
// mode (§4.2.1's future-work exploration, implemented here) and compares
// it against the paper's two static choices. The hypothesis the paper
// sketches: hybrid should track subheap on pool-friendly programs and
// avoid subheap's losses where metadata fits the cache anyway.
func HybridReport(scale int) (string, error) { return HybridReportN(scale, 1) }

// HybridReportN is HybridReport with the (workload × mode) cells fanned
// over at most workers goroutines; rows render in workload order, so the
// report is byte-identical at any worker count.
func HybridReportN(scale, workers int) (string, error) {
	modes := []rt.Mode{rt.Baseline, rt.Subheap, rt.Wrapped, rt.Hybrid}
	cells := make([]ModeResult, len(workloads.All)*len(modes))
	if err := pool.Map(workers, len(cells), func(c int) error {
		m, err := runOne(workloads.All[c/len(modes)], modes[c%len(modes)], false, scale)
		if err != nil {
			return err
		}
		cells[c] = m
		return nil
	}); err != nil {
		return "", err
	}

	var t stats.Table
	t.Add("Benchmark", "Subheap", "Wrapped", "Hybrid", "Hybrid heap split (pool/wrapped)")
	var sr, wr, hr []float64
	var errs []error
	for wi, w := range workloads.All {
		base, sub, wrap, hyb := cells[wi*4], cells[wi*4+1], cells[wi*4+2], cells[wi*4+3]
		if hyb.Checksum != base.Checksum {
			errs = append(errs, fmt.Errorf("exp: %s: hybrid checksum %#x != baseline %#x",
				w.Name, hyb.Checksum, base.Checksum))
			continue
		}
		rs := stats.Ratio(sub.Counters.Cycles, base.Counters.Cycles)
		rw := stats.Ratio(wrap.Counters.Cycles, base.Counters.Cycles)
		rh := stats.Ratio(hyb.Counters.Cycles, base.Counters.Cycles)
		sr, wr, hr = append(sr, rs), append(wr, rw), append(hr, rh)
		t.Add(w.Name, pctCell(rs), pctCell(rw), pctCell(rh),
			fmt.Sprintf("%d pool / %d other of %d objects",
				hyb.Stats.HeapPool, hyb.Stats.HeapObjects-hyb.Stats.HeapPool,
				hyb.Stats.HeapObjects))
	}
	if err := errors.Join(errs...); err != nil {
		return "", err
	}
	return "Hybrid allocator (dynamic scheme selection, §4.2.1 future work)\n" +
			t.String() +
			fmt.Sprintf("geo-mean overhead: subheap %s, wrapped %s, hybrid %s\n",
				stats.GeomeanOverhead(sr), stats.GeomeanOverhead(wr),
				stats.GeomeanOverhead(hr)),
		nil
}
