package exp

// Cell memoization: every campaign cell is a pure, byte-deterministic
// function of its coordinates — (workload, mode, noPromote, scale) under
// the machine cost model for grid cells, (scheme, fault, seed) for chaos
// cells; the assembly- and dispatch-equivalence gates pin exactly that —
// so a plan carrying a memo.Store (WithMemo) consults it before checking
// a runtime out of rt.Pool and replays hits instead of recomputing.
//
// The hit path is zero-allocation and never touches the pool: digest
// composition runs in a stack buffer, the store returns the shared
// immutable *ModeResult, and RunCell hands it out without copying.
// Callers must treat memoized results as read-only (every existing
// consumer already copies on fold or marshals to JSON). A plan without a
// store — the default — behaves byte-identically to the pre-memo
// harness.

import (
	"encoding/json"

	"infat/internal/chaos"
	"infat/internal/machine"
	"infat/internal/memo"
	"infat/internal/rt"
	"infat/internal/workloads"
)

func init() {
	memo.RegisterKind(memo.KindCell, memo.Codec{Decode: func(p []byte) (any, error) {
		var m ModeResult
		if err := json.Unmarshal(p, &m); err != nil {
			return nil, err
		}
		return &m, nil
	}})
	memo.RegisterKind(memo.KindChaos, memo.Codec{Decode: func(p []byte) (any, error) {
		var o chaos.Outcome
		if err := json.Unmarshal(p, &o); err != nil {
			return nil, err
		}
		return &o, nil
	}})
}

// cellDigestCost is the canonical grid-cell key: the workload's
// content-address (name, suite, kernel version), the run mode, the
// promote toggle, the effective scale, and every field of the machine
// cost model (a recalibration changes cycle counts, so it must change
// the key). The cost model is passed explicitly so tests can pin the
// composition against a known calibration.
func cellDigestCost(w workloads.Workload, mode rt.Mode, noPromote bool, scale int, cost machine.CostModel) memo.Digest {
	var g memo.Digester
	g.Init(memo.DomainCell)
	g.Raw(memo.WorkloadDigest(w.Name, w.Suite, workloads.Version))
	g.Str(mode.String())
	g.Bool(noPromote)
	g.U64(uint64(scale))
	g.U64(cost.MissPenalty)
	g.U64(cost.PromoteBase)
	g.U64(cost.DivCycles)
	g.U64(cost.SlotDivCycles)
	g.U64(cost.MacCycles)
	g.U64(cost.GenCheckCycles)
	return g.Sum()
}

// CellDigest keys one grid cell under the standard calibration
// (machine.DefaultCost) — what runOne executes.
func CellDigest(w workloads.Workload, mode rt.Mode, noPromote bool, scale int) memo.Digest {
	return cellDigestCost(w, mode, noPromote, scale, machine.DefaultCost)
}

// chaosCellDigest keys one fault-injection cell.
func chaosCellDigest(s chaos.Scheme, f chaos.Fault, seed uint64) memo.Digest {
	return memo.ChaosDigest(s.String(), f.String(), seed, chaos.Version)
}

// LookupOne serves one (workload, mode, noPromote, scale) cell from the
// store (ok=false: miss, or nil store). The returned *ModeResult is the
// shared cached value — read-only. Zero-allocation, never touches
// rt.Pool. Callers that gate real computation behind admission control
// (the unary /v1/workload endpoint) pair this with ComputeOne.
func LookupOne(s *memo.Store, w workloads.Workload, mode rt.Mode, noPromote bool, scale int) (*ModeResult, bool) {
	if s == nil {
		return nil, false
	}
	if v, ok := s.GetKind(CellDigest(w, mode, noPromote, scale), memo.KindCell); ok {
		return v.(*ModeResult), true
	}
	return nil, false
}

// ComputeOne executes the cell unconditionally via runOne and, when s is
// non-nil, publishes the result for the next identical cell — wherever
// it runs (batch stream, unary endpoint, bench grid). It never reads the
// store, so a LookupOne + ComputeOne pair counts exactly one miss.
func ComputeOne(s *memo.Store, w workloads.Workload, mode rt.Mode, noPromote bool, scale int) (*ModeResult, error) {
	m, err := runOne(w, mode, noPromote, scale)
	if err != nil {
		// Errors are never memoized: a failed cell re-runs on every
		// request, so a transient failure cannot poison the store.
		return nil, err
	}
	if s != nil {
		enc, encErr := json.Marshal(&m)
		if encErr != nil {
			enc = nil // memory-only entry; snapshots just skip it
		}
		s.Put(CellDigest(w, mode, noPromote, scale), memo.KindCell, &m, enc)
	}
	return &m, nil
}

// RunOneMemo is LookupOne-else-ComputeOne in one call; the bool reports
// whether the result was replayed from the store.
func RunOneMemo(s *memo.Store, w workloads.Workload, mode rt.Mode, noPromote bool, scale int) (*ModeResult, bool, error) {
	if m, ok := LookupOne(s, w, mode, noPromote, scale); ok {
		return m, true, nil
	}
	m, err := ComputeOne(s, w, mode, noPromote, scale)
	return m, false, err
}

// WithMemo returns a copy of the plan whose RunCell consults the store
// (nil reverts to plain execution). The store is not part of the plan's
// enumeration identity: two plans differing only in store agree on every
// seq, key, and digest.
func (p Plan) WithMemo(s *memo.Store) Plan {
	p.memo = s
	return p
}

// Memo returns the plan's store (nil when memoization is off).
func (p Plan) Memo() *memo.Store { return p.memo }

// cellSpec resolves cell i to the runOne coordinates it executes:
// (workload, mode, noPromote, effective scale), plus whether it is a
// perf cell (false = memory cell, whose result is the footprint).
func (p Plan) cellSpec(i int) (w workloads.Workload, mode rt.Mode, noPromote bool, scale int, perf bool) {
	if pc := p.perfCells(); i < pc {
		cfgs := p.configs()
		wi, ci := i/len(cfgs), i%len(cfgs)
		cfg := cfgs[ci]
		return p.ws[wi], cfg.mode, cfg.noPromote, p.scale, true
	}
	j := i - p.perfCells()
	wi, mi := j/len(memModes), j%len(memModes)
	return p.ws[wi], memModes[mi].mode, false, p.scale * p.memScale, false
}

// CellDigest returns cell i's canonical memo key. Like Key, it is a pure
// function of the cell's coordinates, not of this particular plan — a
// perf cell and a memory cell at the same effective coordinates share a
// digest (and therefore a memo entry), because they are the same
// computation.
func (p Plan) CellDigest(i int) memo.Digest {
	w, mode, noPromote, scale, _ := p.cellSpec(i)
	return CellDigest(w, mode, noPromote, scale)
}

// ProbeCell reports whether cell i would be served from the memo store,
// with no counter effect — for warm-cell headers and diagnostics.
func (p Plan) ProbeCell(i int) bool {
	return p.memo != nil && p.memo.Peek(p.CellDigest(i))
}

// WithMemo returns a copy of the chaos plan whose RunCell consults the
// store (nil reverts to plain execution).
func (p ChaosPlan) WithMemo(s *memo.Store) ChaosPlan {
	p.memo = s
	return p
}

// Memo returns the plan's store (nil when memoization is off).
func (p ChaosPlan) Memo() *memo.Store { return p.memo }

// CellDigest returns chaos cell i's canonical memo key.
func (p ChaosPlan) CellDigest(i int) memo.Digest {
	s, f, seed := p.coords(i)
	return chaosCellDigest(s, f, seed)
}

// ProbeCell reports whether chaos cell i would be served from the memo
// store, with no counter effect.
func (p ChaosPlan) ProbeCell(i int) bool {
	return p.memo != nil && p.memo.Peek(p.CellDigest(i))
}
