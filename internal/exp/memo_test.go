package exp

import (
	"fmt"
	"runtime"
	"testing"

	"infat/internal/machine"
	"infat/internal/memo"
	"infat/internal/pool"
	"infat/internal/rt"
	"infat/internal/workloads"
)

func costWithMissPenalty(v uint64) machine.CostModel {
	c := machine.DefaultCost
	c.MissPenalty = v
	return c
}

// runPlanReport fans every cell of the plan over the given worker count,
// folds the results through an Assembly, and renders the report — the
// exact path the batch serving tier and ifp-bench -memo use.
func runPlanReport(t *testing.T, p Plan, workers int) string {
	t.Helper()
	a := p.NewAssembly()
	err := pool.Map(workers, p.NumCells(), func(i int) error {
		c, err := p.RunCell(i)
		if err != nil {
			return err
		}
		return a.Add(i, c)
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Report()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func runChaosReport(t *testing.T, p ChaosPlan, workers int) string {
	t.Helper()
	a := p.NewAssembly()
	err := pool.Map(workers, p.NumCells(), func(i int) error {
		return a.Add(i, p.RunCell(i))
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, internal, err := a.Report()
	if err != nil {
		t.Fatal(err)
	}
	if internal != 0 {
		t.Fatalf("%d internal outcomes", internal)
	}
	return rep
}

// TestMemoEquivalence is the correctness contract of the whole memo
// subsystem: for every plan axis, the fresh report, the cold memoized
// report (misses populating the store), and the warm memoized report
// (pure hits) must be byte-identical — at 1 worker and at NumCPU workers
// (run under -race in CI).
func TestMemoEquivalence(t *testing.T) {
	ws := workloads.All[:4]
	plans := map[string]Plan{
		"default":  NewReportPlan(ws, 1, 2),
		"grid":     NewPlan(ws, 1),
		"temporal": NewPlan(ws, 1).WithTemporal(true),
	}
	for name, p := range plans {
		p := p
		t.Run(name, func(t *testing.T) {
			fresh := runPlanReport(t, p, 1)
			for _, workers := range []int{1, runtime.NumCPU()} {
				store := memo.NewStore(0)
				cold := runPlanReport(t, p.WithMemo(store), workers)
				if cold != fresh {
					t.Fatalf("workers=%d: cold memoized report differs from fresh", workers)
				}
				warm := runPlanReport(t, p.WithMemo(store), workers)
				if warm != fresh {
					t.Fatalf("workers=%d: warm memoized report differs from fresh", workers)
				}
				st := store.Stats()
				if st.Hits == 0 {
					t.Fatalf("workers=%d: warm pass recorded no hits (%+v)", workers, st)
				}
			}
		})
	}
}

func TestMemoEquivalenceChaos(t *testing.T) {
	p := NewChaosPlan(1)
	fresh := runChaosReport(t, p, 1)
	for _, workers := range []int{1, runtime.NumCPU()} {
		store := memo.NewStore(0)
		cold := runChaosReport(t, p.WithMemo(store), workers)
		if cold != fresh {
			t.Fatalf("workers=%d: cold memoized chaos report differs from fresh", workers)
		}
		warm := runChaosReport(t, p.WithMemo(store), workers)
		if warm != fresh {
			t.Fatalf("workers=%d: warm memoized chaos report differs from fresh", workers)
		}
		if st := store.KindStats(memo.KindChaos); st.Hits < uint64(p.NumCells()) {
			t.Fatalf("workers=%d: warm chaos pass hit %d of %d cells", workers, st.Hits, p.NumCells())
		}
	}
}

// TestMemoHitNeverTouchesPool pins the "hits never check a runtime out
// of rt.Pool" contract: a fully warm pass must leave the pool's
// acquisition counters exactly where they were.
func TestMemoHitNeverTouchesPool(t *testing.T) {
	store := memo.NewStore(0)
	p := NewReportPlan(workloads.All[:2], 1, 2).WithMemo(store)
	cp := NewChaosPlan(1).WithMemo(store)
	for i := 0; i < p.NumCells(); i++ {
		if _, err := p.RunCell(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < cp.NumCells(); i++ {
		cp.RunCell(i)
	}
	before := rt.DefaultPool.Stats()
	for i := 0; i < p.NumCells(); i++ {
		if _, err := p.RunCell(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < cp.NumCells(); i++ {
		cp.RunCell(i)
	}
	after := rt.DefaultPool.Stats()
	if acq, was := after.Hits+after.Misses, before.Hits+before.Misses; acq != was {
		t.Fatalf("warm pass acquired %d runtimes from the pool, want 0", acq-was)
	}
}

// TestAllocBudgetMemoHit pins the memoized cell hit path — digest
// composition, store lookup, result handout — at zero heap allocations.
func TestAllocBudgetMemoHit(t *testing.T) {
	store := memo.NewStore(0)
	p := NewReportPlan(workloads.All[:2], 1, 2).WithMemo(store)
	cp := NewChaosPlan(1).WithMemo(store)
	for i := 0; i < p.NumCells(); i++ {
		if _, err := p.RunCell(i); err != nil {
			t.Fatal(err)
		}
	}
	cp.RunCell(0)
	perfCell, memCell := 0, p.NumCells()-1
	if n := testing.AllocsPerRun(100, func() {
		if _, err := p.RunCell(perfCell); err != nil {
			t.Fatal(err)
		}
		if _, err := p.RunCell(memCell); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("plan cell hit path allocates %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		cp.RunCell(0)
	}); n != 0 {
		t.Errorf("chaos cell hit path allocates %v allocs/op, want 0", n)
	}
}

// TestCellDigestsDistinctAndStable: digests are a pure function of cell
// coordinates — stable across plan constructions, distinct across every
// cell of a campaign, and sensitive to each coordinate axis.
func TestCellDigestsDistinctAndStable(t *testing.T) {
	p1 := NewReportPlan(workloads.All, 1, 4).WithTemporal(true)
	p2 := NewReportPlan(workloads.All, 1, 4).WithTemporal(true)
	seen := map[memo.Digest]string{}
	for i := 0; i < p1.NumCells(); i++ {
		d := p1.CellDigest(i)
		if d != p2.CellDigest(i) {
			t.Fatalf("cell %d digest unstable across plan constructions", i)
		}
		if prev, dup := seen[d]; dup {
			t.Fatalf("cells %s and %s collide", prev, p1.Key(i))
		}
		seen[d] = p1.Key(i)
	}
	cp := NewChaosPlan(1)
	for i := 0; i < cp.NumCells(); i++ {
		d := cp.CellDigest(i)
		if prev, dup := seen[d]; dup {
			t.Fatalf("chaos cell %s collides with %s", cp.Key(i), prev)
		}
		seen[d] = cp.Key(i)
	}

	// Axis sensitivity: flipping any one coordinate changes the key.
	w := workloads.All[0]
	base := CellDigest(w, rt.Subheap, false, 1)
	for name, other := range map[string]memo.Digest{
		"workload": CellDigest(workloads.All[1], rt.Subheap, false, 1),
		"mode":     CellDigest(w, rt.Wrapped, false, 1),
		"promote":  CellDigest(w, rt.Subheap, true, 1),
		"scale":    CellDigest(w, rt.Subheap, false, 2),
	} {
		if other == base {
			t.Errorf("digest insensitive to %s axis", name)
		}
	}
}

// TestCellDigestPinnedVectors pins the full grid-cell composition —
// including the cost-model folding — against known hex values, the
// exp-level counterpart of internal/memo's golden vectors. If this test
// fails without a deliberate key-schema change (digestVersion,
// workloads.Version, or the cost model), the encoder drifted.
func TestCellDigestPinnedVectors(t *testing.T) {
	w, ok := workloads.ByName("treeadd")
	if !ok {
		t.Fatal("treeadd missing")
	}
	if got := fmt.Sprint(CellDigest(w, rt.Subheap, false, 1)); got != "e683de658315c22d03bfe6290b523d9e2d41d4700ce7666a16e5d36c8927df82" {
		t.Errorf("treeadd/subheap cell digest drifted: %s", got)
	}
	if got := fmt.Sprint(NewChaosPlan(1).CellDigest(0)); got != "49bef41e8fa189e065716c8221b74c7f0728bee6b321a0dff556e3d0456e78b0" {
		t.Errorf("chaos cell 0 digest drifted: %s", got)
	}
	// DefaultCost must be what RunCell keys on, so a calibration change
	// invalidates old entries.
	alt := cellDigestCost(w, rt.Subheap, false, 1, costWithMissPenalty(21))
	if alt == CellDigest(w, rt.Subheap, false, 1) {
		t.Fatal("cost model not folded into the cell digest")
	}
}
