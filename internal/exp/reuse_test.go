package exp

import (
	"runtime"
	"testing"

	"infat/internal/rt"
)

// withReuse runs fn under an explicit reuse setting, restoring the
// process default afterwards and draining the shared pool so no runtime
// acquired under one setting leaks into the other measurement.
func withReuse(on bool, fn func()) {
	was := rt.ReuseSystems()
	defer func() {
		rt.SetReuseSystems(was)
		rt.DefaultPool.Drain()
	}()
	rt.DefaultPool.Drain()
	rt.SetReuseSystems(on)
	fn()
}

// TestReuseEquivalenceExperimentReport: the rendered experiment report
// must be byte-identical with pooling on and off, serially and at
// NumCPU workers — the end-to-end determinism contract of the pooled
// lifecycle. Run under -race in CI so reset-state leaks surface as
// races or diverging bytes.
func TestReuseEquivalenceExperimentReport(t *testing.T) {
	ws := smallWorkloads(t)
	report := func(reuse bool, workers int) string {
		var out string
		withReuse(reuse, func() {
			res, err := RunSet(ws, 1, workers)
			if err != nil {
				t.Fatal(err)
			}
			mem, err := RunMemSet(ws, 2, workers)
			if err != nil {
				t.Fatal(err)
			}
			out = Report(res, mem)
		})
		return out
	}

	for _, workers := range []int{1, runtime.NumCPU()} {
		fresh := report(false, workers)
		reused := report(true, workers)
		if fresh != reused {
			t.Errorf("workers=%d: pooled report differs from fresh\n--- fresh ---\n%s\n--- pooled ---\n%s",
				workers, fresh, reused)
		}
	}
}

// TestReuseEquivalenceChaosReport: the fault-injection campaign — which
// deliberately corrupts runtimes before releasing them — must also be
// byte-identical with pooling on and off at any parallelism.
func TestReuseEquivalenceChaosReport(t *testing.T) {
	report := func(reuse bool, workers int) string {
		var out string
		withReuse(reuse, func() {
			out, _ = ChaosReport(1, workers)
		})
		return out
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		fresh := report(false, workers)
		reused := report(true, workers)
		if fresh != reused {
			t.Errorf("workers=%d: pooled chaos report differs from fresh", workers)
		}
	}
}

// TestReuseEquivalenceAblations: the configured-runtime paths (ablation
// flags, cost-model overrides) must leave no residue in pooled runtimes.
func TestReuseEquivalenceAblations(t *testing.T) {
	report := func(reuse bool) string {
		var out string
		withReuse(reuse, func() {
			s, err := AblationsN(1, runtime.NumCPU())
			if err != nil {
				t.Fatal(err)
			}
			a, err := ASICSweep(1)
			if err != nil {
				t.Fatal(err)
			}
			out = s + a
		})
		return out
	}
	if fresh, reused := report(false), report(true); fresh != reused {
		t.Error("pooled ablation/ASIC reports differ from fresh")
	}
}
