package exp

// Temporal-axis evaluation: the generation-tagging mode (rt.IFPTemporal)
// compared against the spatial-only configurations over the same workload
// grid, plus the CWE-415/416 detection-rate comparison. Everything here is
// additive — the spatial campaigns and their reports never consult this
// file, which is what keeps their output byte-identical to the
// pre-temporal harness.

import (
	"fmt"

	"infat/internal/juliet"
	"infat/internal/pool"
	"infat/internal/rt"
	"infat/internal/stats"
	"infat/internal/workloads"
)

// TemporalSection renders the temporal-overhead table from results whose
// Temporal slot is populated (a plan built WithTemporal): per-workload
// cycle overhead of the spatial schemes and of ifp-temporal vs baseline,
// the generation-check volume, and the geo-mean comparison line that
// prices the temporal upgrade against spatial-only protection.
func TemporalSection(results []Result) string {
	var t stats.Table
	t.Add("Benchmark", "Subheap", "Wrapped", "IFP-Temporal", "GenChecks", "GenCheckFails")
	var sr, wr, tr []float64
	for _, r := range results {
		base := r.Baseline.Counters.Cycles
		rs := stats.Ratio(r.Subheap.Counters.Cycles, base)
		rw := stats.Ratio(r.Wrapped.Counters.Cycles, base)
		rtp := stats.Ratio(r.Temporal.Counters.Cycles, base)
		sr, wr, tr = append(sr, rs), append(wr, rw), append(tr, rtp)
		t.Add(r.Name, pctCell(rs), pctCell(rw), pctCell(rtp),
			stats.SI(r.Temporal.Counters.GenChecks),
			fmt.Sprint(r.Temporal.Counters.GenCheckFails))
	}
	return "Temporal axis: generation tagging (ifp-temporal) vs spatial-only (cycles vs baseline)\n" +
		t.String() +
		fmt.Sprintf("geo-mean overhead: subheap %s, wrapped %s, ifp-temporal %s\n",
			stats.GeomeanOverhead(sr), stats.GeomeanOverhead(wr),
			stats.GeomeanOverhead(tr))
}

// TemporalDetection runs the CWE-415/416 Juliet families under a spatial
// mode and under rt.IFPTemporal and renders the detection-rate
// comparison: the spatial design documents most of these as out of scope
// (metadata invalidation only), the generation comparison must catch them
// all.
func TemporalDetection(workers int) string {
	cases := juliet.GenerateCWE415416()
	var t stats.Table
	t.Add("Mode", "Detected", "Missed", "FalsePos", "Errors")
	for _, mode := range []rt.Mode{rt.Hybrid, rt.IFPTemporal} {
		s := juliet.RunParallel(cases, mode, workers)
		t.Add(mode.String(),
			fmt.Sprintf("%d/%d", s.Detected, s.BadCases),
			fmt.Sprint(s.Missed), fmt.Sprint(s.FalsePositives), fmt.Sprint(s.Errors))
	}
	return "CWE-415/416 detection (spatial-only vs generation tagging)\n" + t.String()
}

// TemporalReport runs the temporal campaign serially.
func TemporalReport(scale int) (string, error) { return TemporalReportN(scale, 1) }

// TemporalReportN runs the temporal campaign: the full workload grid with
// the ifp-temporal configuration appended (a WithTemporal plan, so the
// spatial cells are the exact cells a spatial plan enumerates), fanned
// over at most workers goroutines, plus the CWE-415/416 detection table.
// Output is byte-identical at any worker count.
func TemporalReportN(scale, workers int) (string, error) {
	p := NewPlan(workloads.All, scale).WithTemporal(true)
	a := p.NewAssembly()
	cells := make([]CellResult, p.NumCells())
	if err := pool.Map(workers, p.NumCells(), func(i int) error {
		c, err := p.RunCell(i)
		if err != nil {
			return err
		}
		cells[i] = c
		return nil
	}); err != nil {
		return "", err
	}
	for i, c := range cells {
		if err := a.Add(i, c); err != nil {
			return "", err
		}
	}
	results, _, err := a.Results()
	if err != nil {
		return "", err
	}
	return TemporalSection(results) + "\n" + TemporalDetection(workers), nil
}
