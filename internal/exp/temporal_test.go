package exp

import (
	"strings"
	"testing"

	"infat/internal/workloads"
)

// temporalTestWorkloads keeps the temporal tests fast: two workloads are
// enough to exercise enumeration, assembly, and reporting.
func temporalTestWorkloads() []workloads.Workload { return workloads.All[:2] }

// TestTemporalPlanSpatialPrefixIdentity pins the enumeration contract:
// per workload, a temporal plan runs the five spatial configurations in
// the spatial plan's exact order (same metadata, same position-
// independent keys) and appends ifp-temporal sixth, while a plan without
// the flag enumerates exactly as before the temporal axis existed.
func TestTemporalPlanSpatialPrefixIdentity(t *testing.T) {
	ws := temporalTestWorkloads()
	sp := NewPlan(ws, 1)
	tp := NewPlan(ws, 1).WithTemporal(true)

	if sp.NumCells() != len(ws)*5 {
		t.Fatalf("spatial plan cells = %d, want %d (enumeration changed)", sp.NumCells(), len(ws)*5)
	}
	if tp.NumCells() != len(ws)*6 {
		t.Fatalf("temporal plan cells = %d, want %d", tp.NumCells(), len(ws)*6)
	}
	if sp.Temporal() || !tp.Temporal() {
		t.Fatal("Temporal() flag mismatch")
	}

	// Per workload, the temporal plan runs the five spatial configs in the
	// same order, then ifp-temporal.
	for wi := range ws {
		for ci := 0; ci < 5; ci++ {
			sm, tm := sp.Meta(wi*5+ci), tp.Meta(wi*6+ci)
			if sm.Workload != tm.Workload || sm.Config != tm.Config {
				t.Errorf("cell (%d,%d): spatial %v vs temporal %v", wi, ci, sm, tm)
			}
			if sp.Key(wi*5+ci) != tp.Key(wi*6+ci) {
				t.Errorf("cell (%d,%d): key mismatch %q vs %q",
					wi, ci, sp.Key(wi*5+ci), tp.Key(wi*6+ci))
			}
		}
		m := tp.Meta(wi*6 + 5)
		if m.Config != "ifp-temporal" || m.Kind != CellPerf {
			t.Errorf("workload %d sixth cell = %v, want ifp-temporal perf cell", wi, m)
		}
	}
}

// TestTemporalAssemblyEquivalence: running a temporal plan's cells in
// reverse order and assembling must verify (including the ifp-temporal
// checksum against baseline) and render the spatial perf report followed
// by the temporal section.
func TestTemporalAssemblyEquivalence(t *testing.T) {
	p := NewPlan(temporalTestWorkloads(), 1).WithTemporal(true)
	a := p.NewAssembly()
	for i := p.NumCells() - 1; i >= 0; i-- {
		c, err := p.RunCell(i)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if err := a.Add(i, c); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	results, _, err := a.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	for _, r := range results {
		if r.Temporal.Counters.Instrs == 0 {
			t.Errorf("%s: temporal slot empty after assembly", r.Name)
		}
		if r.Temporal.Checksum != r.Baseline.Checksum {
			t.Errorf("%s: temporal checksum %#x != baseline %#x",
				r.Name, r.Temporal.Checksum, r.Baseline.Checksum)
		}
	}
	rep, err := a.Report()
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	spatial := PerfReport(results)
	if !strings.HasPrefix(rep, spatial) {
		t.Error("temporal report does not start with the byte-identical spatial report")
	}
	if !strings.Contains(rep, "Temporal axis") {
		t.Error("temporal report missing the temporal section")
	}
}

// TestSpatialAssemblyUnchangedByTemporalField: a default (spatial) plan's
// assembled report must not mention the temporal axis and must leave the
// Temporal slot zero — the new Result field cannot perturb existing
// campaigns.
func TestSpatialAssemblyUnchangedByTemporalField(t *testing.T) {
	p := NewPlan(temporalTestWorkloads(), 1)
	a := p.NewAssembly()
	for i := 0; i < p.NumCells(); i++ {
		c, err := p.RunCell(i)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if err := a.Add(i, c); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	results, _, err := a.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	for _, r := range results {
		if r.Temporal != (ModeResult{}) {
			t.Errorf("%s: spatial plan populated the temporal slot: %+v", r.Name, r.Temporal)
		}
	}
	rep, err := a.Report()
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if strings.Contains(rep, "Temporal axis") || strings.Contains(rep, "ifp-temporal") {
		t.Error("spatial report mentions the temporal axis")
	}
	if rep != PerfReport(results) {
		t.Error("spatial assembly report != PerfReport (bytes changed)")
	}
}

// TestTemporalReportDeterministic: the temporal campaign renders
// byte-identically at any worker count, and the detection table shows the
// generation mode catching everything the spatial mode misses.
func TestTemporalReportDeterministic(t *testing.T) {
	serial, err := TemporalReportN(1, 1)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	par, err := TemporalReportN(1, 4)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if serial != par {
		t.Error("temporal report differs across worker counts")
	}
	if !strings.Contains(serial, "ifp-temporal") || !strings.Contains(serial, "CWE-415/416") {
		t.Errorf("report missing sections:\n%s", serial)
	}
}
