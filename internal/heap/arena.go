// Package heap provides the guest-memory allocators underneath the In-Fat
// Pointer runtime (§4.2.1): a bump arena, a glibc-style free-list malloc
// (the substrate of the *wrapped* allocator), and a buddy allocator (the
// substrate of the *subheap* pool allocator). Allocator bookkeeping that
// the real implementations keep in memory (chunk headers) is written into
// guest memory so the Figure-12 footprint comparison is honest; search
// structures are host-side for simulation speed, with the instruction cost
// of allocator work charged through the machine's Tick.
package heap

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned when an arena or allocator is exhausted.
var ErrOutOfMemory = errors.New("heap: out of memory")

// ErrBadRelease is returned by Arena.Release for a mark outside the
// arena's live range — a corrupted or stale mark. Guest-reachable (a
// corrupted stack mark reaches it), so it is a typed error, not a panic.
var ErrBadRelease = errors.New("heap: release mark out of range")

// ErrBadConfig is returned by allocator constructors for impossible
// geometry (order/alignment violations).
var ErrBadConfig = errors.New("heap: invalid allocator configuration")

// ErrBadFree is returned by FreeList.Free for an address that is not a
// live allocation — a double free or a free of a never-allocated pointer.
// Guest-reachable through the VM's free(), so it is a typed error, never
// a panic; the temporal mode additionally classifies double frees via the
// generation store before the free-list lookup runs.
var ErrBadFree = errors.New("heap: free of unallocated address")

// ErrBadBuddyFree is returned by Buddy.Free for a block that is not
// currently allocated (already freed or never issued). Guest-reachable
// through subheap whole-block release paths, so typed, never a panic.
var ErrBadBuddyFree = errors.New("heap: buddy free of unallocated block")

// Arena is a bump region of guest address space.
type Arena struct {
	base  uint64
	brk   uint64
	limit uint64
}

// NewArena creates an arena over [base, base+size).
func NewArena(base, size uint64) *Arena {
	return &Arena{base: base, brk: base, limit: base + size}
}

// Sbrk advances the break by n bytes (rounded to 16) and returns the old
// break.
func (a *Arena) Sbrk(n uint64) (uint64, error) {
	n = (n + 15) &^ 15
	if a.brk+n > a.limit || a.brk+n < a.brk {
		return 0, fmt.Errorf("%w: arena %#x..%#x brk %#x request %d",
			ErrOutOfMemory, a.base, a.limit, a.brk, n)
	}
	p := a.brk
	a.brk += n
	return p, nil
}

// AlignBrk rounds the break up to the given power-of-two alignment and
// returns the aligned break.
func (a *Arena) AlignBrk(align uint64) (uint64, error) {
	aligned := (a.brk + align - 1) &^ (align - 1)
	if aligned > a.limit {
		return 0, ErrOutOfMemory
	}
	a.brk = aligned
	return a.brk, nil
}

// Used reports bytes consumed from the arena (its footprint contribution).
func (a *Arena) Used() uint64 { return a.brk - a.base }

// Mark snapshots the current break for a later Release (LIFO regions such
// as the guest stack).
func (a *Arena) Mark() uint64 { return a.brk }

// Release moves the break back to a previous Mark. A mark outside the
// arena's live range (corrupted, stale, or never issued by Mark) is
// rejected with ErrBadRelease and leaves the arena unchanged.
func (a *Arena) Release(mark uint64) error {
	if mark < a.base || mark > a.brk {
		return fmt.Errorf("%w: release to %#x outside [%#x,%#x]", ErrBadRelease, mark, a.base, a.brk)
	}
	a.brk = mark
	return nil
}

// Reset rewinds the break to the arena base, discarding every allocation.
// The region itself is fixed at construction, so a reset arena is
// identical to a freshly built one.
func (a *Arena) Reset() { a.brk = a.base }

// Base returns the arena's start address.
func (a *Arena) Base() uint64 { return a.base }

// Limit returns the arena's end address.
func (a *Arena) Limit() uint64 { return a.limit }
