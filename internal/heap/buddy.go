package heap

import "fmt"

// Buddy is a binary buddy allocator handing out power-of-two sized,
// naturally aligned blocks — exactly the blocks the subheap scheme needs
// (§3.3.2: "power-of-2-sized and aligned memory blocks"). The subheap pool
// allocator is built on top of it (§4.2.1: "a pool allocator on top of a
// buddy allocator").
type Buddy struct {
	base     uint64
	minOrder uint
	maxOrder uint
	free     map[uint]map[uint64]struct{} // order -> set of free block addrs
	alloc    map[uint64]uint              // allocated block -> order

	used uint64 // bytes in allocated blocks
	hwm  uint64
}

// NewBuddy builds a buddy allocator over [base, base+2^regionLog2), with
// blocks from 2^minLog2 up to 2^regionLog2 bytes. base must be aligned to
// the region size; impossible geometry is rejected with ErrBadConfig.
func NewBuddy(base uint64, regionLog2, minLog2 uint) (*Buddy, error) {
	if regionLog2 > 63 {
		return nil, fmt.Errorf("%w: buddy region order %d exceeds address space", ErrBadConfig, regionLog2)
	}
	if minLog2 > regionLog2 {
		return nil, fmt.Errorf("%w: buddy min order %d exceeds region order %d", ErrBadConfig, minLog2, regionLog2)
	}
	if base&(uint64(1)<<regionLog2-1) != 0 {
		return nil, fmt.Errorf("%w: buddy base %#x not aligned to region size 2^%d", ErrBadConfig, base, regionLog2)
	}
	b := &Buddy{
		base:     base,
		minOrder: minLog2,
		maxOrder: regionLog2,
		free:     make(map[uint]map[uint64]struct{}),
		alloc:    make(map[uint64]uint),
	}
	for o := minLog2; o <= regionLog2; o++ {
		b.free[o] = make(map[uint64]struct{})
	}
	b.free[regionLog2][base] = struct{}{}
	return b, nil
}

// OrderFor returns the smallest order whose block fits size bytes, or
// maxOrder+1 when no block can (so Alloc reports ErrOutOfMemory). The
// clamp also guards the shift: past o=63, uint64(1)<<o wraps to 0 and an
// unclamped loop would never terminate for size > 1<<63.
func (b *Buddy) OrderFor(size uint64) uint {
	o := b.minOrder
	for o <= b.maxOrder && uint64(1)<<o < size {
		o++
	}
	return o
}

// Alloc returns a free block of 2^order bytes, splitting larger blocks as
// needed.
func (b *Buddy) Alloc(order uint) (uint64, error) {
	if order < b.minOrder {
		order = b.minOrder
	}
	if order > b.maxOrder {
		return 0, fmt.Errorf("%w: order %d exceeds region order %d", ErrOutOfMemory, order, b.maxOrder)
	}
	// Find the smallest order with a free block.
	o := order
	for o <= b.maxOrder && len(b.free[o]) == 0 {
		o++
	}
	if o > b.maxOrder {
		return 0, fmt.Errorf("%w: no block of order %d", ErrOutOfMemory, order)
	}
	// Pick the lowest-address free block: deterministic placement keeps
	// every simulation run bit-reproducible (map iteration order is not),
	// and dense placement is what a real buddy allocator converges to.
	var addr uint64
	first := true
	for a := range b.free[o] {
		if first || a < addr {
			addr = a
			first = false
		}
	}
	delete(b.free[o], addr)
	// Split down to the requested order, freeing the upper halves.
	for o > order {
		o--
		b.free[o][addr+uint64(1)<<o] = struct{}{}
	}
	b.alloc[addr] = order
	b.used += uint64(1) << order
	if b.used > b.hwm {
		b.hwm = b.used
	}
	return addr, nil
}

// Free returns a block and coalesces with its buddy recursively.
func (b *Buddy) Free(addr uint64) error {
	order, ok := b.alloc[addr]
	if !ok {
		return fmt.Errorf("%w %#x", ErrBadBuddyFree, addr)
	}
	delete(b.alloc, addr)
	b.used -= uint64(1) << order
	for order < b.maxOrder {
		buddy := b.base + ((addr - b.base) ^ uint64(1)<<order)
		if _, free := b.free[order][buddy]; !free {
			break
		}
		delete(b.free[order], buddy)
		if buddy < addr {
			addr = buddy
		}
		order++
	}
	b.free[order][addr] = struct{}{}
	return nil
}

// Reset returns the allocator to its NewBuddy state: every block freed
// and coalesced back into the single region-sized block, counters zero.
// The per-order free sets are retained (emptied, not reallocated).
func (b *Buddy) Reset() {
	for o := b.minOrder; o <= b.maxOrder; o++ {
		clear(b.free[o])
	}
	clear(b.alloc)
	b.free[b.maxOrder][b.base] = struct{}{}
	b.used, b.hwm = 0, 0
}

// Used reports bytes currently held in allocated blocks.
func (b *Buddy) Used() uint64 { return b.used }

// HighWater reports the peak of Used.
func (b *Buddy) HighWater() uint64 { return b.hwm }

// FreeBlocks reports the number of free blocks at the given order (test
// hook for coalescing behaviour).
func (b *Buddy) FreeBlocks(order uint) int { return len(b.free[order]) }
