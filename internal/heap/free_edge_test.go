package heap

import (
	"errors"
	"testing"

	"infat/internal/machine"
)

// The temporal free path (rt.Free in IFPTemporal mode) bumps a chunk's
// generation only after the underlying allocator accepts the free, so the
// allocators' rejection behavior is load-bearing for temporal soundness:
// a bad free must surface as a typed error — never a panic, never a
// silent success that would bump a generation for a chunk that was not
// actually released. These tests pin the typed sentinels and the
// no-state-change guarantee on every rejection path.

func TestBuddyFreeAlreadyFreeTyped(t *testing.T) {
	b := mustBuddy(t, 0x4000_0000, 14, 12) // 16 KiB region, 4 KiB blocks
	p, err := b.Alloc(12)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Free(p); err != nil {
		t.Fatal(err)
	}
	used := b.Used()
	// Double free of a coalesced block, a never-allocated aligned address,
	// and an interior (misaligned) address all reject with the sentinel.
	for _, bad := range []uint64{p, 0x4000_1000, p + 8} {
		err := b.Free(bad)
		if !errors.Is(err, ErrBadBuddyFree) {
			t.Errorf("Free(%#x) = %v, want ErrBadBuddyFree", bad, err)
		}
		if b.Used() != used {
			t.Fatalf("failed free changed accounting: used = %d, want %d", b.Used(), used)
		}
	}
	// The allocator is still coherent: the freed block is reusable.
	q, err := b.Alloc(12)
	if err != nil {
		t.Fatalf("alloc after rejected frees: %v", err)
	}
	if err := b.Free(q); err != nil {
		t.Fatal(err)
	}
}

func TestFreeListDoubleFreeTyped(t *testing.T) {
	_, f := newFL(t)
	p, err := f.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Free(p); err != nil {
		t.Fatal(err)
	}
	live := f.LiveBytes()
	for _, bad := range []uint64{p, 0xdead0, p + 16} {
		err := f.Free(bad)
		if !errors.Is(err, ErrBadFree) {
			t.Errorf("Free(%#x) = %v, want ErrBadFree", bad, err)
		}
		if f.LiveBytes() != live {
			t.Fatalf("failed free changed accounting: live = %d, want %d", f.LiveBytes(), live)
		}
	}
	// The rejected double free did not corrupt the bin: the chunk comes
	// back exactly once.
	q, err := f.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("recycled chunk = %#x, want %#x", q, p)
	}
}

// A large-class chunk takes the other Free branch (the sorted large list
// rather than a size bin); its double free must reject identically.
func TestFreeListLargeDoubleFreeTyped(t *testing.T) {
	_, f := newFL(t)
	p, err := f.Malloc(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(p); !errors.Is(err, ErrBadFree) {
		t.Errorf("large double free = %v, want ErrBadFree", err)
	}
}

// Arena release rejections must also be typed (they guard the stack and
// layout arenas, whose marks flow through the same runtime free paths).
// TestArenaReleaseOutOfRange pins the rejection itself; here we pin that
// a rejected release leaves later legitimate traffic untouched even when
// the arena is shared with an allocator front end.
func TestArenaReleaseAfterRejection(t *testing.T) {
	m := machine.New()
	a := NewArena(0x2000_0000, 1<<20)
	f := NewFreeList(m, a)
	p, err := f.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Release(0x100); !errors.Is(err, ErrBadRelease) {
		t.Fatalf("out-of-range release = %v, want ErrBadRelease", err)
	}
	// The freelist's view of its arena is intact.
	if err := f.Free(p); err != nil {
		t.Fatalf("free after rejected release: %v", err)
	}
	q, err := f.Malloc(64)
	if err != nil || q != p {
		t.Fatalf("malloc after rejected release = %#x (err %v), want %#x", q, err, p)
	}
}
