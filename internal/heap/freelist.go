package heap

import (
	"fmt"

	"infat/internal/machine"
)

// FreeList is a glibc-flavoured malloc: 16-byte chunk headers written into
// guest memory ahead of each payload, segregated free bins per 16-byte
// size class for small chunks, and a first-fit list for large ones. It is
// the allocator the *wrapped* allocator builds on (§4.2.1: "a wrapped
// allocator on top of libc's malloc() and free()"), and also serves as the
// uninstrumented baseline allocator.
type FreeList struct {
	m *machine.Machine
	a *Arena

	bins      map[uint64][]uint64 // size class -> free payload addresses
	large     []chunk             // free large chunks, unsorted first-fit
	allocated map[uint64]uint64   // payload -> payload size

	live uint64 // live bytes including headers
	hwm  uint64 // high-water mark of live
}

type chunk struct {
	addr uint64 // payload address
	size uint64 // payload size
}

// HeaderBytes is the per-chunk bookkeeping overhead, matching glibc's
// two-word chunk header.
const HeaderBytes = 16

// largeClass is the boundary above which chunks go to the first-fit list.
const largeClass = 1024

// Allocator cost calibration, in dynamic instructions per call. The glibc
// path is several times the cost of the pool path (§5.2.2: "our subheap
// allocator implementation is more efficient in handling frequent dynamic
// allocations ... than the allocator from glibc").
const (
	freeListMallocCost = 90
	freeListFreeCost   = 45
	sbrkCost           = 30
)

// PoolAllocCost / PoolFreeCost are the subheap pool allocator's per-call
// costs (rt uses them): the pool path is a pop off a per-block free list,
// several times cheaper than the glibc-style path above, which is what
// makes perimeter and treeadd outperform baseline under the subheap
// allocator (§5.2.2).
const (
	PoolAllocCost = 60
	PoolFreeCost  = 35
)

// NewFreeList builds a free-list allocator over the arena.
func NewFreeList(m *machine.Machine, a *Arena) *FreeList {
	return &FreeList{
		m:         m,
		a:         a,
		bins:      make(map[uint64][]uint64),
		allocated: make(map[uint64]uint64),
	}
}

func sizeClass(n uint64) uint64 {
	if n < 16 {
		n = 16
	}
	return (n + 15) &^ 15
}

// Malloc allocates size bytes of payload, 16-byte aligned, and returns the
// payload address.
func (f *FreeList) Malloc(size uint64) (uint64, error) {
	f.m.Tick(freeListMallocCost)
	cls := sizeClass(size)

	var payload uint64
	switch {
	case cls <= largeClass && len(f.bins[cls]) > 0:
		bin := f.bins[cls]
		payload = bin[len(bin)-1]
		f.bins[cls] = bin[:len(bin)-1]
	case cls > largeClass:
		if i := f.findLarge(cls); i >= 0 {
			payload = f.large[i].addr
			// First-fit without splitting remainder back (fastbin-like);
			// the class is the stored size so there is no loss here.
			f.large = append(f.large[:i], f.large[i+1:]...)
		}
	}
	if payload == 0 {
		// Carve a fresh chunk: header + payload.
		f.m.Tick(sbrkCost)
		raw, err := f.a.Sbrk(HeaderBytes + cls)
		if err != nil {
			return 0, err
		}
		payload = raw + HeaderBytes
	}

	// Write the chunk header into guest memory (size | in-use bit), as
	// glibc does; this is what makes heap metadata visible to overflows.
	if err := f.m.RawStore64(payload-HeaderBytes, cls|1); err != nil {
		return 0, err
	}
	f.allocated[payload] = cls
	f.live += cls + HeaderBytes
	if f.live > f.hwm {
		f.hwm = f.live
	}
	return payload, nil
}

func (f *FreeList) findLarge(cls uint64) int {
	for i, c := range f.large {
		if c.size == cls {
			return i
		}
	}
	return -1
}

// Free returns a payload to its bin.
func (f *FreeList) Free(addr uint64) error {
	f.m.Tick(freeListFreeCost)
	cls, ok := f.allocated[addr]
	if !ok {
		return fmt.Errorf("%w %#x", ErrBadFree, addr)
	}
	delete(f.allocated, addr)
	f.live -= cls + HeaderBytes
	// Clear the in-use bit in the header.
	if err := f.m.RawStore64(addr-HeaderBytes, cls); err != nil {
		return err
	}
	if cls <= largeClass {
		f.bins[cls] = append(f.bins[cls], addr)
	} else {
		f.large = append(f.large, chunk{addr: addr, size: cls})
	}
	return nil
}

// Reset discards every chunk — free bins, the large list, and live
// allocations — and rewinds the underlying arena, restoring the
// NewFreeList state while keeping the map and slice capacity for reuse.
// Guest-side chunk headers are not touched; the owning Memory is reset
// separately and the arena will carve fresh chunks from its base again.
func (f *FreeList) Reset() {
	clear(f.bins)
	f.large = f.large[:0]
	clear(f.allocated)
	f.live, f.hwm = 0, 0
	f.a.Reset()
}

// UsableSize reports the payload size class of an allocated chunk.
func (f *FreeList) UsableSize(addr uint64) (uint64, bool) {
	cls, ok := f.allocated[addr]
	return cls, ok
}

// LiveBytes reports currently allocated bytes including headers.
func (f *FreeList) LiveBytes() uint64 { return f.live }

// HighWater reports the peak of LiveBytes.
func (f *FreeList) HighWater() uint64 { return f.hwm }

// Footprint reports the arena bytes consumed (never returned to the OS,
// like a real sbrk heap).
func (f *FreeList) Footprint() uint64 { return f.a.Used() }
