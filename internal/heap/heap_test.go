package heap

import (
	"errors"
	"testing"
	"testing/quick"

	"infat/internal/machine"
)

func TestArenaSbrk(t *testing.T) {
	a := NewArena(0x1000, 0x100)
	p1, err := a.Sbrk(10)
	if err != nil || p1 != 0x1000 {
		t.Fatalf("sbrk = %#x (err %v)", p1, err)
	}
	p2, err := a.Sbrk(16)
	if err != nil || p2 != 0x1010 { // previous request rounded to 16
		t.Fatalf("sbrk2 = %#x (err %v)", p2, err)
	}
	if a.Used() != 0x20 {
		t.Errorf("used = %d", a.Used())
	}
	if _, err := a.Sbrk(0x1000); err == nil {
		t.Error("overcommit did not fail")
	}
	if a.Base() != 0x1000 || a.Limit() != 0x1100 {
		t.Error("base/limit")
	}
}

func TestArenaAlign(t *testing.T) {
	a := NewArena(0x1000, 0x10000)
	if _, err := a.Sbrk(24); err != nil {
		t.Fatal(err)
	}
	brk, err := a.AlignBrk(4096)
	if err != nil || brk != 0x2000 {
		t.Fatalf("aligned brk = %#x (err %v)", brk, err)
	}
	tiny := NewArena(0x1000, 0x100)
	if _, err := tiny.AlignBrk(1 << 20); err == nil {
		t.Error("align past limit succeeded")
	}
}

func newFL(t *testing.T) (*machine.Machine, *FreeList) {
	t.Helper()
	m := machine.New()
	return m, NewFreeList(m, NewArena(0x1000_0000, 64<<20))
}

func TestFreeListMallocAligned(t *testing.T) {
	_, f := newFL(t)
	for _, sz := range []uint64{1, 8, 16, 17, 100, 4096} {
		p, err := f.Malloc(sz)
		if err != nil {
			t.Fatal(err)
		}
		if p%16 != 0 {
			t.Errorf("size %d: unaligned payload %#x", sz, p)
		}
		if got, ok := f.UsableSize(p); !ok || got < sz {
			t.Errorf("size %d: usable = %d", sz, got)
		}
	}
}

func TestFreeListReuse(t *testing.T) {
	_, f := newFL(t)
	p, _ := f.Malloc(64)
	if err := f.Free(p); err != nil {
		t.Fatal(err)
	}
	q, _ := f.Malloc(64)
	if q != p {
		t.Errorf("freed chunk not reused: %#x vs %#x", q, p)
	}
	// Large path too.
	pl, _ := f.Malloc(8192)
	if err := f.Free(pl); err != nil {
		t.Fatal(err)
	}
	ql, _ := f.Malloc(8192)
	if ql != pl {
		t.Errorf("large chunk not reused: %#x vs %#x", ql, pl)
	}
}

func TestFreeListHeaderInGuestMemory(t *testing.T) {
	m, f := newFL(t)
	p, _ := f.Malloc(48)
	hdr, err := m.Mem.Load64(p - HeaderBytes)
	if err != nil {
		t.Fatal(err)
	}
	if hdr != 48|1 {
		t.Errorf("header = %#x, want size|in-use", hdr)
	}
	if err := f.Free(p); err != nil {
		t.Fatal(err)
	}
	hdr, _ = m.Mem.Load64(p - HeaderBytes)
	if hdr != 48 {
		t.Errorf("freed header = %#x", hdr)
	}
}

func TestFreeListDoubleFree(t *testing.T) {
	_, f := newFL(t)
	p, _ := f.Malloc(32)
	if err := f.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(p); err == nil {
		t.Error("double free undetected")
	}
	if err := f.Free(0xdead0); err == nil {
		t.Error("wild free undetected")
	}
}

func TestFreeListAccounting(t *testing.T) {
	_, f := newFL(t)
	p1, _ := f.Malloc(100) // class 112 + 16 header
	if f.LiveBytes() != 112+16 {
		t.Errorf("live = %d", f.LiveBytes())
	}
	p2, _ := f.Malloc(100)
	hwm := f.HighWater()
	if hwm != 2*(112+16) {
		t.Errorf("hwm = %d", hwm)
	}
	_ = f.Free(p1)
	_ = f.Free(p2)
	if f.LiveBytes() != 0 {
		t.Errorf("live after frees = %d", f.LiveBytes())
	}
	if f.HighWater() != hwm {
		t.Error("hwm shrank")
	}
	if f.Footprint() == 0 {
		t.Error("no footprint recorded")
	}
}

func TestFreeListChargesInstructions(t *testing.T) {
	m, f := newFL(t)
	before := m.C.Instrs
	p, _ := f.Malloc(64)
	_ = f.Free(p)
	if m.C.Instrs == before {
		t.Error("allocator work cost no instructions")
	}
}

func TestFreeListExhaustion(t *testing.T) {
	m := machine.New()
	f := NewFreeList(m, NewArena(0x1000_0000, 4096))
	var last error
	for i := 0; i < 1000; i++ {
		if _, err := f.Malloc(64); err != nil {
			last = err
			break
		}
	}
	if last == nil {
		t.Error("tiny arena never exhausted")
	}
}

func TestBuddySplitAndCoalesce(t *testing.T) {
	b := mustBuddy(t, 0x4000_0000, 20, 12) // 1 MiB region, 4 KiB min blocks
	p1, err := b.Alloc(12)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != 0x4000_0000 {
		t.Errorf("first block = %#x", p1)
	}
	p2, _ := b.Alloc(12)
	if p2 != p1+4096 {
		t.Errorf("second block = %#x, want buddy of first", p2)
	}
	if b.Used() != 8192 {
		t.Errorf("used = %d", b.Used())
	}
	if err := b.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(p2); err != nil {
		t.Fatal(err)
	}
	// Full coalescing back to one region block.
	if n := b.FreeBlocks(20); n != 1 {
		t.Errorf("region blocks after coalesce = %d, want 1", n)
	}
	if b.Used() != 0 {
		t.Errorf("used = %d", b.Used())
	}
}

func TestBuddyAlignment(t *testing.T) {
	b := mustBuddy(t, 0x4000_0000, 24, 12)
	for order := uint(12); order <= 16; order++ {
		p, err := b.Alloc(order)
		if err != nil {
			t.Fatal(err)
		}
		if p&(uint64(1)<<order-1) != 0 {
			t.Errorf("order %d block %#x not naturally aligned", order, p)
		}
	}
}

func TestBuddyOrderFor(t *testing.T) {
	b := mustBuddy(t, 0x4000_0000, 24, 12)
	cases := map[uint64]uint{1: 12, 4096: 12, 4097: 13, 100 << 10: 17}
	for size, want := range cases {
		if got := b.OrderFor(size); got != want {
			t.Errorf("OrderFor(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestBuddyOrderForOversized(t *testing.T) {
	// Regression: sizes above the region (and in particular above 1<<63,
	// where the probe shift wraps to 0) must clamp at maxOrder+1 instead
	// of looping forever, and Alloc must report out-of-memory.
	b := mustBuddy(t, 0x4000_0000, 24, 12)
	for _, size := range []uint64{(16 << 20) + 1, 1 << 40, 1<<63 + 1, ^uint64(0)} {
		got := b.OrderFor(size)
		if got != 25 {
			t.Errorf("OrderFor(%#x) = %d, want maxOrder+1 (25)", size, got)
		}
		if _, err := b.Alloc(got); !errors.Is(err, ErrOutOfMemory) {
			t.Errorf("Alloc(OrderFor(%#x)) = %v, want ErrOutOfMemory", size, err)
		}
	}
	// The region-sized request itself still fits.
	if got := b.OrderFor(16 << 20); got != 24 {
		t.Errorf("OrderFor(16MiB) = %d, want 24", got)
	}
}

func TestBuddyErrors(t *testing.T) {
	b := mustBuddy(t, 0x4000_0000, 13, 12) // 8 KiB region
	if _, err := b.Alloc(14); err == nil {
		t.Error("oversized order succeeded")
	}
	p1, _ := b.Alloc(12)
	p2, _ := b.Alloc(12)
	if _, err := b.Alloc(12); err == nil {
		t.Error("exhausted buddy succeeded")
	}
	if err := b.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(p1); err == nil {
		t.Error("double free undetected")
	}
	_ = p2
}

// mustBuddy builds a buddy allocator from known-good geometry.
func mustBuddy(t testing.TB, base uint64, regionLog2, minLog2 uint) *Buddy {
	t.Helper()
	b, err := NewBuddy(base, regionLog2, minLog2)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuddyBadConstruction(t *testing.T) {
	// Impossible geometry is a typed configuration error, not a panic:
	// construction parameters can be derived from inputs, and the chaos
	// fault model requires every reachable failure to be classifiable.
	cases := []struct {
		name               string
		base               uint64
		regionLog2, minLog2 uint
	}{
		{"min order exceeds region", 0x4000_0000, 10, 12},
		{"misaligned base", 0x4000_0800, 20, 12},
		{"region order exceeds address space", 0, 64, 12},
	}
	for _, tc := range cases {
		b, err := NewBuddy(tc.base, tc.regionLog2, tc.minLog2)
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", tc.name, err)
		}
		if b != nil {
			t.Errorf("%s: got non-nil allocator alongside error", tc.name)
		}
	}
}

func TestArenaReleaseOutOfRange(t *testing.T) {
	a := NewArena(0x1000, 0x1000)
	p, err := a.Sbrk(256)
	if err != nil {
		t.Fatal(err)
	}
	mark := a.Mark()
	// Marks outside [base, brk] are corrupted or stale: typed rejection,
	// arena untouched.
	for _, bad := range []uint64{0xFFF, a.Mark() + 16, 0, ^uint64(0)} {
		if err := a.Release(bad); !errors.Is(err, ErrBadRelease) {
			t.Errorf("Release(%#x) = %v, want ErrBadRelease", bad, err)
		}
		if a.Mark() != mark {
			t.Fatalf("failed release moved the break to %#x", a.Mark())
		}
	}
	// A legitimate mark still releases.
	if err := a.Release(p); err != nil {
		t.Fatal(err)
	}
	if a.Mark() != p {
		t.Errorf("break after release = %#x, want %#x", a.Mark(), p)
	}
}

func TestBuddyHighWater(t *testing.T) {
	b := mustBuddy(t, 0x4000_0000, 20, 12)
	p, _ := b.Alloc(13)
	_ = b.Free(p)
	if b.HighWater() != 8192 {
		t.Errorf("hwm = %d", b.HighWater())
	}
}

// Property: freelist malloc/free sequences never hand out overlapping live
// chunks.
func TestQuickFreeListNoOverlap(t *testing.T) {
	f := func(sizes []uint16, freeMask []bool) bool {
		m := machine.New()
		fl := NewFreeList(m, NewArena(0x1000_0000, 32<<20))
		type iv struct{ lo, hi uint64 }
		live := map[uint64]iv{}
		for i, s16 := range sizes {
			if len(live) > 0 && i < len(freeMask) && freeMask[i] {
				for a := range live {
					if err := fl.Free(a); err != nil {
						return false
					}
					delete(live, a)
					break
				}
				continue
			}
			size := uint64(s16%2048) + 1
			p, err := fl.Malloc(size)
			if err != nil {
				return false
			}
			n := iv{p, p + size}
			for _, o := range live {
				if n.lo < o.hi && o.lo < n.hi {
					return false // overlap
				}
			}
			live[p] = n
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: buddy blocks of the same order never overlap and stay aligned.
func TestQuickBuddySoundness(t *testing.T) {
	f := func(orders []uint8) bool {
		b := mustBuddy(t, 0x4000_0000, 22, 12)
		allocated := map[uint64]uint{}
		for _, o8 := range orders {
			order := 12 + uint(o8%6)
			p, err := b.Alloc(order)
			if err != nil {
				// Exhaustion is fine; free everything and continue.
				for a := range allocated {
					if b.Free(a) != nil {
						return false
					}
					delete(allocated, a)
				}
				continue
			}
			if p&(uint64(1)<<order-1) != 0 {
				return false
			}
			for a, ao := range allocated {
				alo, ahi := a, a+uint64(1)<<ao
				plo, phi := p, p+uint64(1)<<order
				if plo < ahi && alo < phi {
					return false
				}
			}
			allocated[p] = order
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFreeListMallocFree(b *testing.B) {
	m := machine.New()
	fl := NewFreeList(m, NewArena(0x1000_0000, 256<<20))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := fl.Malloc(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := fl.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuddyAllocFree(b *testing.B) {
	bd := mustBuddy(b, 0x4000_0000, 28, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := bd.Alloc(12)
		if err != nil {
			b.Fatal(err)
		}
		if err := bd.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}
