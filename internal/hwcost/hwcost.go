// Package hwcost models the FPGA area cost of the In-Fat Pointer hardware
// (§5.3, Figure 13). The paper reports Vivado LUT counts for the modified
// CVA6: 37,088 LUTs vanilla → 59,261 modified (+60%), with the increase
// decomposed by pipeline component — the IFP unit (38% of the increase),
// the widened load-store unit (19%), the bounds register file and its
// forwarding in the issue stage (29%), and sundry plumbing (<10%). Within
// the IFP unit, the layout-table walker is the largest block (3,059 LUTs,
// 36%) and the three metadata schemes together take 2,501 (30%).
//
// The model is parameterized so the §5.3 trade-off discussion is
// reproducible: dropping the bounds register file saves more area than
// the whole IFP unit; dropping the layout walker saves its 3,059 LUTs at
// the price of subobject narrowing in promote.
package hwcost

import (
	"fmt"
	"strings"

	"infat/internal/stats"
)

// Paper-reported totals (Vivado 2018.2, Kintex-7 XC7K325T).
const (
	VanillaLUTs  = 37088
	ModifiedLUTs = 59261
	VanillaFFs   = 21993
	ModifiedFFs  = 32545
)

// Config holds the design knobs the area model responds to.
type Config struct {
	BoundsRegs  int  // number of bounds registers (paper: 32, one per GPR)
	BoundsBits  int  // bounds register width (paper: 96)
	TagBits     int  // pointer tag width (paper: 16)
	LocalOffset bool // local-offset scheme logic
	Subheap     bool // subheap scheme logic (includes the slot divider)
	GlobalTable bool // global-table scheme logic
	LayoutWalk  bool // layout-table walker (§5.3: may be dropped for area)
	MAC         bool // metadata MAC unit
	ImplicitChk bool // implicit bounds checking in the LSU
	// Temporal adds the generation comparator to promote (the xTag-style
	// temporal extension): an up-to-12-bit equality compare between the
	// pointer's tag generation and the per-chunk generation store, plus
	// the trap wiring. The runtime charges the matching per-comparison
	// cycle cost as machine.DefaultCost.GenCheckCycles. Off in the
	// paper's prototype (zero value), so Default is unchanged.
	Temporal bool
}

// Default is the paper's prototype configuration.
var Default = Config{
	BoundsRegs: 32, BoundsBits: 96, TagBits: 16,
	LocalOffset: true, Subheap: true, GlobalTable: true,
	LayoutWalk: true, MAC: true, ImplicitChk: true,
}

// Component is one row of the Figure 13 decomposition.
type Component struct {
	Name    string
	Stage   string // pipeline stage
	Vanilla int    // LUTs in the unmodified core
	Growth  int    // additional LUTs from In-Fat Pointer
}

// Area-model coefficients, calibrated so Default reproduces the paper's
// published numbers (see TestDefaultMatchesPaper).
const (
	lutPerBoundsRegBit = 2 // register file + operand forwarding, per bit
	issueWbPort        = 286
	lsuPerBoundsBit    = 30 // widened buffers + bounds ld/st datapath
	lsuPerCheckBit     = 13 // implicit access-size comparators (2x48-bit)

	walkerStateMachine = 800
	walkerDivider      = 1500
	walkerDatapath     = 759

	schemeLocalLUTs   = 600
	schemeSubheapLUTs = 1101 // includes the slot divider
	schemeGlobalLUTs  = 800

	macUnitLUTs    = 1900
	ifpControlLUTs = 973

	// Generation comparator: a 12-bit equality compare against the tag
	// field, the generation-store read port mux, and trap generation.
	genCompareLUTs = 210

	plumbingLUTs = 1283 // decode, CSRs, perf counters, cache bandwidth
)

// Vanilla per-component baselines (approximate split of the 37,088 total,
// following the Figure 13 stage breakdown).
var vanillaSplit = []Component{
	{Name: "Cache", Stage: "memory", Vanilla: 4201},
	{Name: "RegFiles, etc", Stage: "issue", Vanilla: 6246},
	{Name: "Scoreboard", Stage: "issue", Vanilla: 2500},
	{Name: "LSU", Stage: "execute", Vanilla: 3913},
	{Name: "ALU/Other Execute", Stage: "execute", Vanilla: 9028},
	{Name: "IFP Unit", Stage: "execute", Vanilla: 0},
	{Name: "Frontend/Decode/Other", Stage: "other", Vanilla: 11200},
}

// Model computes the component table for a configuration.
func Model(cfg Config) []Component {
	comps := make([]Component, len(vanillaSplit))
	copy(comps, vanillaSplit)
	for i := range comps {
		switch comps[i].Name {
		case "Cache":
			// Data-bandwidth widening for metadata fetches.
			if anyScheme(cfg) {
				comps[i].Growth = 814
			}
		case "RegFiles, etc":
			comps[i].Growth = cfg.BoundsRegs*cfg.BoundsBits*lutPerBoundsRegBit/enablerDiv(cfg) + issueWbPort
			if cfg.BoundsRegs == 0 {
				comps[i].Growth = 0
			}
		case "Scoreboard":
			if cfg.BoundsRegs > 0 {
				comps[i].Growth = cfg.BoundsRegs * 6
			}
		case "LSU":
			g := 0
			if cfg.BoundsRegs > 0 {
				g += cfg.BoundsBits * lsuPerBoundsBit
			}
			if cfg.ImplicitChk {
				g += 2 * 48 * lsuPerCheckBit
			}
			comps[i].Growth = g
		case "IFP Unit":
			comps[i].Growth = ifpUnit(cfg)
		case "Frontend/Decode/Other":
			if anyScheme(cfg) {
				comps[i].Growth = plumbingLUTs
			}
		}
	}
	return comps
}

func anyScheme(cfg Config) bool { return cfg.LocalOffset || cfg.Subheap || cfg.GlobalTable }

func enablerDiv(cfg Config) int { return 1 }

// ifpUnit computes the IFP execution unit's LUTs.
func ifpUnit(cfg Config) int {
	total := 0
	if cfg.LayoutWalk {
		total += walkerStateMachine + walkerDivider + walkerDatapath
	}
	if cfg.LocalOffset {
		total += schemeLocalLUTs
	}
	if cfg.Subheap {
		total += schemeSubheapLUTs
	}
	if cfg.GlobalTable {
		total += schemeGlobalLUTs
	}
	if cfg.MAC {
		total += macUnitLUTs
	}
	if cfg.Temporal {
		total += genCompareLUTs
	}
	if anyScheme(cfg) {
		total += ifpControlLUTs
	}
	return total
}

// GenCompareLUTs is the temporal generation comparator's area.
func GenCompareLUTs() int { return genCompareLUTs }

// WalkerLUTs is the layout-table walker's area (§5.3: 3,059 LUTs, 36% of
// the IFP unit).
func WalkerLUTs() int { return walkerStateMachine + walkerDivider + walkerDatapath }

// SchemesLUTs is the three metadata schemes' combined area (§5.3: 2,501).
func SchemesLUTs() int { return schemeLocalLUTs + schemeSubheapLUTs + schemeGlobalLUTs }

// Totals sums a component table.
func Totals(comps []Component) (vanilla, modified int) {
	for _, c := range comps {
		vanilla += c.Vanilla
		modified += c.Vanilla + c.Growth
	}
	return vanilla, modified
}

// Fig13 renders the Figure 13 decomposition for a configuration.
func Fig13(cfg Config) string {
	comps := Model(cfg)
	var t stats.Table
	t.Add("Component", "Stage", "Vanilla", "Growth", "Total")
	for _, c := range comps {
		t.Add(c.Name, c.Stage,
			fmt.Sprint(c.Vanilla), fmt.Sprintf("+%d", c.Growth), fmt.Sprint(c.Vanilla+c.Growth))
	}
	van, mod := Totals(comps)
	var b strings.Builder
	b.WriteString("Figure 13: LUT Increase in the Modified Processor\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "total: %d -> %d LUTs (%+.0f%%)\n", van, mod,
		100*float64(mod-van)/float64(van))
	if cfg == Default {
		fmt.Fprintf(&b, "paper: %d -> %d LUTs (+60%%); FFs %d -> %d (+48%%)\n",
			VanillaLUTs, ModifiedLUTs, VanillaFFs, ModifiedFFs)
		fmt.Fprintf(&b, "IFP unit internals: layout walker %d LUTs (%.0f%%), schemes %d LUTs (%.0f%%)\n",
			WalkerLUTs(), 100*float64(WalkerLUTs())/float64(ifpUnit(cfg)),
			SchemesLUTs(), 100*float64(SchemesLUTs())/float64(ifpUnit(cfg)))
	}
	return b.String()
}

// Ablations renders the §5.3 trade-off table: area saved by dropping each
// optional block.
func Ablations() string {
	base := Default
	_, full := Totals(Model(base))
	var t stats.Table
	t.Add("Ablation", "Modified LUTs", "Saved", "Cost/consequence")
	rows := []struct {
		name string
		mut  func(Config) Config
		note string
	}{
		{"full design", func(c Config) Config { return c }, "-"},
		{"no layout walker", func(c Config) Config { c.LayoutWalk = false; return c },
			"object-granularity promote only; app-level ifpbnd narrowing needed"},
		{"no bounds registers", func(c Config) Config { c.BoundsRegs = 0; c.ImplicitChk = false; return c },
			"explicit ifpchk everywhere; no implicit checking"},
		{"no MAC", func(c Config) Config { c.MAC = false; return c },
			"metadata tamper detection lost"},
		{"subheap scheme only", func(c Config) Config {
			c.LocalOffset, c.GlobalTable = false, false
			return c
		}, "heap-only protection"},
		{"no subheap scheme", func(c Config) Config { c.Subheap = false; return c },
			"per-object metadata for every heap object"},
		{"add temporal generation tagging", func(c Config) Config { c.Temporal = true; return c },
			"UAF/double-free detection; subobject index displaced (no extra tag bits)"},
	}
	for _, r := range rows {
		_, mod := Totals(Model(r.mut(base)))
		t.Add(r.name, fmt.Sprint(mod), fmt.Sprint(full-mod), r.note)
	}
	return "Hardware ablations (Section 5.3 trade-offs)\n" + t.String()
}
