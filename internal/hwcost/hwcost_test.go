package hwcost

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultMatchesPaper(t *testing.T) {
	comps := Model(Default)
	van, mod := Totals(comps)
	if van != VanillaLUTs {
		t.Errorf("vanilla total = %d, want %d", van, VanillaLUTs)
	}
	// The modified total must land within 2% of the paper's 59,261.
	if math.Abs(float64(mod-ModifiedLUTs))/ModifiedLUTs > 0.02 {
		t.Errorf("modified total = %d, want ~%d", mod, ModifiedLUTs)
	}
	// Growth share checks from §5.3: IFP unit 38%, LSU 19% of increase;
	// execute stage ~62%; issue ~29%.
	increase := float64(mod - van)
	var ifpG, lsuG, execG, issueG float64
	for _, c := range comps {
		g := float64(c.Growth)
		switch c.Name {
		case "IFP Unit":
			ifpG = g
		case "LSU":
			lsuG = g
		}
		switch c.Stage {
		case "execute":
			execG += g
		case "issue":
			issueG += g
		}
	}
	within := func(got, want, tol float64) bool { return math.Abs(got-want) <= tol }
	if !within(ifpG/increase, 0.38, 0.02) {
		t.Errorf("IFP unit share = %.2f, want ~0.38", ifpG/increase)
	}
	if !within(lsuG/increase, 0.19, 0.02) {
		t.Errorf("LSU share = %.2f, want ~0.19", lsuG/increase)
	}
	if !within(execG/increase, 0.62, 0.03) {
		t.Errorf("execute-stage share = %.2f, want ~0.62", execG/increase)
	}
	if !within(issueG/increase, 0.29, 0.03) {
		t.Errorf("issue-stage share = %.2f, want ~0.29", issueG/increase)
	}
}

func TestIFPUnitInternals(t *testing.T) {
	// §5.3: walker 3,059 LUTs = 36% of the IFP unit; schemes 2,501 = 30%.
	if WalkerLUTs() != 3059 {
		t.Errorf("walker = %d, want 3059", WalkerLUTs())
	}
	if SchemesLUTs() != 2501 {
		t.Errorf("schemes = %d, want 2501", SchemesLUTs())
	}
	unit := ifpUnit(Default)
	if r := float64(WalkerLUTs()) / float64(unit); math.Abs(r-0.36) > 0.02 {
		t.Errorf("walker share = %.2f, want ~0.36", r)
	}
	if r := float64(SchemesLUTs()) / float64(unit); math.Abs(r-0.30) > 0.02 {
		t.Errorf("schemes share = %.2f, want ~0.30", r)
	}
}

func TestAblationMonotonicity(t *testing.T) {
	// Every ablation must shrink the design, and the §5.3 ordering must
	// hold: the bounds registers cost more than the IFP unit.
	_, full := Totals(Model(Default))

	noWalk := Default
	noWalk.LayoutWalk = false
	_, nw := Totals(Model(noWalk))
	if full-nw != WalkerLUTs() {
		t.Errorf("walker ablation saves %d, want %d", full-nw, WalkerLUTs())
	}

	noRegs := Default
	noRegs.BoundsRegs = 0
	noRegs.ImplicitChk = false
	_, nr := Totals(Model(noRegs))
	regSave := full - nr

	noIFP := Default
	noIFP.LayoutWalk = false
	noIFP.MAC = false
	noIFP.LocalOffset, noIFP.Subheap, noIFP.GlobalTable = false, false, false
	_, ni := Totals(Model(noIFP))
	ifpSave := 0
	for _, c := range Model(Default) {
		if c.Name == "IFP Unit" {
			ifpSave = c.Growth
		}
	}
	_ = ni
	if regSave <= ifpSave {
		t.Errorf("bounds registers save %d <= IFP unit %d; §5.3 says registers dominate",
			regSave, ifpSave)
	}
}

func TestSchemeKnobs(t *testing.T) {
	one := Default
	one.LocalOffset, one.GlobalTable = false, false
	_, sub := Totals(Model(one))
	_, full := Totals(Model(Default))
	if sub >= full {
		t.Error("single-scheme design not smaller")
	}
	none := Config{}
	van, mod := Totals(Model(none))
	if van != mod {
		t.Errorf("empty config grew the design: %d -> %d", van, mod)
	}
}

// TestTemporalKnob: the generation comparator is additive (and small —
// it must not disturb the calibrated Default totals, which model the
// paper's spatial-only prototype), and Default itself stays temporal-off
// so TestDefaultMatchesPaper keeps pinning the published numbers.
func TestTemporalKnob(t *testing.T) {
	if Default.Temporal {
		t.Fatal("Default enables the temporal comparator; the paper's prototype is spatial-only")
	}
	_, full := Totals(Model(Default))
	tc := Default
	tc.Temporal = true
	_, withGen := Totals(Model(tc))
	if withGen-full != GenCompareLUTs() {
		t.Errorf("temporal knob adds %d LUTs, want %d", withGen-full, GenCompareLUTs())
	}
	if GenCompareLUTs() <= 0 || GenCompareLUTs() >= schemeLocalLUTs {
		t.Errorf("generation comparator %d LUTs out of range (0, %d): it is a compare+mux, not a scheme",
			GenCompareLUTs(), schemeLocalLUTs)
	}
}

func TestRendering(t *testing.T) {
	out := Fig13(Default)
	for _, want := range []string{"IFP Unit", "LSU", "paper:", "layout walker"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig13 output missing %q", want)
		}
	}
	ab := Ablations()
	for _, want := range []string{"no layout walker", "no bounds registers", "full design",
		"add temporal generation tagging"} {
		if !strings.Contains(ab, want) {
			t.Errorf("Ablations output missing %q", want)
		}
	}
	// Non-default config renders without the paper footer.
	alt := Default
	alt.MAC = false
	if strings.Contains(Fig13(alt), "paper:") {
		t.Error("non-default config printed paper comparison")
	}
}
