package juliet

// CWE-415 (double free) and CWE-416 (use-after-free) generator families,
// the workloads ModeIFPTemporal's generation tagging protects. They follow
// the spatial suite's structure — a grid of allocation sites × error
// flows, each with a good (well-ordered) and a bad (temporally unsafe)
// variant — but live in their own generator: the spatial suites pin the
// spatial guarantee and must stay byte-identical, and several of these bad
// variants are *expected* to run clean (or fault in the allocator) under
// the spatial modes. The acceptance contract is one-sided: under
// ModeIFPTemporal every bad variant traps and every good variant passes.

import (
	"fmt"
	"strings"
)

// tempSite describes where the victim allocation comes from: the wrapped
// free-list path (scalar and struct-typed signatures) and the subheap pool
// path (reached by warming the allocation signature past Hybrid's
// graduation threshold, so the victim is a pool slot whose block stays
// live through sibling allocations).
type tempSite struct {
	name string
	decl string // declares `buf` (long*) and any warm-up allocations
	free string // the expression freeing the victim (always "free(buf);")
}

var tempSites = []tempSite{
	{
		name: "heap_small",
		decl: "\tlong *buf = (long*)malloc(4 * sizeof(long));\n\tbuf[0] = 7;",
	},
	{
		name: "heap_struct",
		decl: "\tstruct N *s = (struct N*)malloc(sizeof(struct N));\n" +
			"\ts->a = 7;\n\tlong *buf = (long*)s;",
	},
	{
		name: "heap_pool",
		decl: "\tlong *w1 = (long*)malloc(4 * sizeof(long));\n" +
			"\tlong *w2 = (long*)malloc(4 * sizeof(long));\n" +
			"\tlong *w3 = (long*)malloc(4 * sizeof(long));\n" +
			"\tlong *w4 = (long*)malloc(4 * sizeof(long));\n" +
			"\tlong *w5 = (long*)malloc(4 * sizeof(long));\n" +
			"\tlong *buf = (long*)malloc(4 * sizeof(long));\n\tbuf[0] = 7;",
	},
}

// tempFlow describes how the temporal error (or its safely-ordered twin)
// is reached. Each gen returns the body after the site's declaration; the
// victim is `buf`, `gv` is a long* global for round-tripping pointers
// through memory.
type tempFlow struct {
	cwe  string
	name string
	gen  func(bad bool) string
}

var tempFlows = []tempFlow{
	// --- CWE-416: use-after-free ---
	{
		cwe:  "CWE416",
		name: "reload_write",
		gen: func(bad bool) string {
			if bad {
				return "\tgv = buf;\n\tfree(buf);\n\tlong *q = gv;\n\t*q = 1;"
			}
			return "\tgv = buf;\n\tlong *q = gv;\n\t*q = 1;\n\tfree(buf);"
		},
	},
	{
		cwe:  "CWE416",
		name: "reload_read",
		gen: func(bad bool) string {
			if bad {
				return "\tgv = buf;\n\tfree(buf);\n\tlong *q = gv;\n\tsink = sink + *q;"
			}
			return "\tgv = buf;\n\tlong *q = gv;\n\tsink = sink + *q;\n\tfree(buf);"
		},
	},
	{
		cwe:  "CWE416",
		name: "realloc_reuse",
		// The previously-missed pattern: the chunk is reallocated to a
		// same-signature object, so the stale pointer's metadata lookup
		// still resolves — only the generation comparison catches it.
		gen: func(bad bool) string {
			if bad {
				return "\tgv = buf;\n\tfree(buf);\n" +
					"\tlong *fresh = (long*)malloc(4 * sizeof(long));\n\tfresh[0] = 1;\n" +
					"\tlong *q = gv;\n\t*q = 2;\n\tfree(fresh);"
			}
			return "\tgv = buf;\n\tfree(buf);\n" +
				"\tlong *fresh = (long*)malloc(4 * sizeof(long));\n\tfresh[0] = 1;\n" +
				"\tlong *q = fresh;\n\t*q = 2;\n\tfree(fresh);"
		},
	},
	// --- CWE-415: double free ---
	{
		cwe:  "CWE415",
		name: "direct",
		gen: func(bad bool) string {
			if bad {
				return "\tfree(buf);\n\tfree(buf);"
			}
			return "\tfree(buf);"
		},
	},
	{
		cwe:  "CWE415",
		name: "alias",
		gen: func(bad bool) string {
			if bad {
				return "\tgv = buf;\n\tfree(buf);\n\tlong *q = gv;\n\tfree(q);"
			}
			return "\tgv = buf;\n\tlong *q = gv;\n\tfree(q);"
		},
	},
	{
		cwe:  "CWE415",
		name: "realloc",
		// Freeing through the stale pointer after the chunk has been
		// reallocated: without generation checks the record lookup matches
		// the *new* object at the same base and silently releases it.
		gen: func(bad bool) string {
			if bad {
				return "\tfree(buf);\n" +
					"\tlong *fresh = (long*)malloc(4 * sizeof(long));\n\tfresh[0] = 1;\n" +
					"\tfree(buf);\n\tfree(fresh);"
			}
			return "\tfree(buf);\n" +
				"\tlong *fresh = (long*)malloc(4 * sizeof(long));\n\tfresh[0] = 1;\n" +
				"\tfree(fresh);"
		},
	},
}

const tempPrologue = `struct N { long a; long b; };
long *gv;
long sink = 0;
int main() {
`

const tempEpilogue = `	print(sink);
	return 0;
}`

func buildTemporalCase(st tempSite, fl tempFlow, bad bool) Case {
	var b strings.Builder
	b.WriteString(tempPrologue)
	b.WriteString(st.decl)
	b.WriteString("\n")
	b.WriteString(fl.gen(bad))
	b.WriteString("\n")
	b.WriteString(tempEpilogue)
	variant := "good"
	if bad {
		variant = "bad"
	}
	return Case{
		Name: fmt.Sprintf("%s_%s_%s_%s", fl.cwe, st.name, fl.name, variant),
		CWE:  fl.cwe,
		Bad:  bad,
		Src:  b.String(),
	}
}

// GenerateCWE415416 produces the temporal CWE families: every allocation
// site crossed with every double-free/use-after-free flow, good and bad.
// Run them under rt.IFPTemporal — the spatial suites (Generate) do not
// include them, because spatial modes legitimately miss several bad
// variants and the baseline allocator faults on the double frees.
func GenerateCWE415416() []Case {
	var cases []Case
	for _, st := range tempSites {
		for _, fl := range tempFlows {
			cases = append(cases,
				buildTemporalCase(st, fl, false),
				buildTemporalCase(st, fl, true),
			)
		}
	}
	return cases
}
