package juliet

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"infat/internal/machine"
	"infat/internal/minic"
	"infat/internal/pool"
	"infat/internal/rt"
)

// Verdict is the outcome of one case in one mode.
type Verdict int

// Verdicts.
const (
	// Pass: a good case ran clean, or a bad case trapped spatially.
	Pass Verdict = iota
	// Missed: a bad case ran to completion undetected.
	Missed
	// FalsePositive: a good case trapped.
	FalsePositive
	// Errored: compile error or non-spatial runtime failure.
	Errored
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Missed:
		return "missed"
	case FalsePositive:
		return "false-positive"
	case Errored:
		return "error"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Outcome records one case's result.
type Outcome struct {
	Case    Case
	Mode    rt.Mode
	Verdict Verdict
	Detail  string
}

// Summary aggregates a run.
type Summary struct {
	Total          int
	BadCases       int
	Detected       int
	Missed         int
	FalsePositives int
	Errors         int
	Outcomes       []Outcome
}

// RunCase executes one case in one mode and classifies the result. A
// detection is a spatial trap (poison or bounds) or a temporal trap
// (stale generation / double free) — the latter only ever occurs under
// rt.IFPTemporal, so spatial-mode classification is unchanged by it.
func RunCase(c Case, mode rt.Mode) Outcome {
	_, _, err := minic.Execute(c.Src, mode)
	o := Outcome{Case: c, Mode: mode}
	detected := false
	if err != nil {
		var re *minic.RunError
		if errors.As(err, &re) &&
			(machine.IsTrap(re.Err, machine.TrapPoison) ||
				machine.IsTrap(re.Err, machine.TrapBounds) ||
				machine.IsTrap(re.Err, machine.TrapTemporal)) {
			detected = true
		}
	}
	switch {
	case err == nil && !c.Bad:
		o.Verdict = Pass
	case err == nil && c.Bad:
		o.Verdict = Missed
	case detected && c.Bad:
		o.Verdict = Pass
		o.Detail = err.Error()
	case detected && !c.Bad:
		o.Verdict = FalsePositive
		o.Detail = err.Error()
	default:
		o.Verdict = Errored
		o.Detail = err.Error()
	}
	return o
}

// Run executes the whole suite in one mode, serially (the workers=1 path
// of RunParallel, kept as the equivalence reference).
func Run(cases []Case, mode rt.Mode) Summary { return RunParallel(cases, mode, 1) }

// RunParallel executes the whole suite in one mode, fanning the cases
// over at most workers goroutines (workers <= 0 selects GOMAXPROCS, 1 is
// fully serial). Each case compiles and runs in its own rt.Runtime, so
// cases share no mutable state; outcomes land in a pre-indexed slice and
// the summary is aggregated in case order, making the result identical at
// any worker count.
func RunParallel(cases []Case, mode rt.Mode, workers int) Summary {
	outcomes := make([]Outcome, len(cases))
	// RunCase never fails at the harness level — compile/runtime errors
	// are classified into the outcome's verdict — so Map cannot error.
	_ = pool.Map(workers, len(cases), func(i int) error {
		outcomes[i] = RunCase(cases[i], mode)
		return nil
	})

	s := Summary{Total: len(cases), Outcomes: outcomes}
	for i, c := range cases {
		if c.Bad {
			s.BadCases++
			if outcomes[i].Verdict == Pass {
				s.Detected++
			}
		}
		switch outcomes[i].Verdict {
		case Missed:
			s.Missed++
		case FalsePositive:
			s.FalsePositives++
		case Errored:
			s.Errors++
		}
	}
	return s
}

// Report renders a §5.1-style summary.
func (s Summary) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cases: %d (%d vulnerable, %d non-vulnerable)\n",
		s.Total, s.BadCases, s.Total-s.BadCases)
	fmt.Fprintf(&b, "detected: %d/%d vulnerable\n", s.Detected, s.BadCases)
	fmt.Fprintf(&b, "missed: %d   false positives: %d   errors: %d\n",
		s.Missed, s.FalsePositives, s.Errors)
	byCWE := map[string][2]int{}
	for _, o := range s.Outcomes {
		v := byCWE[o.Case.CWE]
		if o.Case.Bad {
			v[1]++
			if o.Verdict == Pass {
				v[0]++
			}
		}
		byCWE[o.Case.CWE] = v
	}
	for _, cwe := range knownCWEs {
		if v, ok := byCWE[cwe]; ok {
			fmt.Fprintf(&b, "  %-7s %d/%d detected\n", cwe, v[0], v[1])
		}
	}
	// Any family outside the known list still gets a row (marked, sorted)
	// instead of silently vanishing from the table; UnknownCWEs lets tests
	// turn such a key into a failure.
	for _, cwe := range s.UnknownCWEs() {
		v := byCWE[cwe]
		fmt.Fprintf(&b, "  %-7s %d/%d detected (unexpected family)\n", cwe, v[0], v[1])
	}
	return b.String()
}

// knownCWEs is every family the generators produce, in report order.
var knownCWEs = []string{"CWE121", "CWE122", "CWE124", "CWE126", "CWE127", "CWE415", "CWE416", "INTRA"}

// UnknownCWEs returns, sorted, every CWE key present in the outcomes that
// is not in the known family list. A non-empty result means a generator
// produced a family the report table was never taught about — the tests
// treat that as a failure rather than letting the row drop invisibly.
func (s Summary) UnknownCWEs() []string {
	known := make(map[string]bool, len(knownCWEs))
	for _, c := range knownCWEs {
		known[c] = true
	}
	seen := map[string]bool{}
	var out []string
	for _, o := range s.Outcomes {
		if c := o.Case.CWE; !known[c] && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// Failures lists non-pass outcomes for debugging.
func (s Summary) Failures() []Outcome {
	var out []Outcome
	for _, o := range s.Outcomes {
		if o.Verdict != Pass {
			out = append(out, o)
		}
	}
	return out
}
