// Package juliet generates and runs a Juliet-style functional evaluation
// (§5.1): MiniC test programs in the CWE families the paper selects —
// stack-based buffer overflow (CWE-121), heap-based buffer overflow
// (CWE-122), buffer underwrite (CWE-124), buffer over-read (CWE-126), and
// buffer under-read (CWE-127) — plus the intra-object-overflow variants
// the paper's compiler optimized away (ours are not, so they are part of
// the run). Each test case has a good (in-bounds) and a bad (out-of-
// bounds) version, mirroring the Juliet structure where main() exercises
// the good code and then the vulnerable code.
package juliet

import (
	"fmt"
	"strings"
)

// Case is one generated test program.
type Case struct {
	Name string
	CWE  string
	Bad  bool // true if the program contains a triggered spatial error
	Src  string
}

// site describes where the buffer lives.
type site struct {
	name  string
	decl  func(size int) string // declares `buf` (and helpers)
	extra string                // trailing cleanup code
}

var sites = []site{
	{
		name: "stack",
		decl: func(size int) string {
			return fmt.Sprintf("\tchar buf[%d];\n\tmemset(buf, 'A', %d);", size, size)
		},
	},
	{
		name: "heap",
		decl: func(size int) string {
			return fmt.Sprintf("\tchar *buf = (char*)malloc(%d);\n\tmemset(buf, 'A', %d);", size, size)
		},
		extra: "\tfree(buf);",
	},
	{
		name: "heap_long",
		decl: func(size int) string {
			return fmt.Sprintf("\tlong *lbuf = (long*)malloc(%d * sizeof(long));\n"+
				"\tchar *buf = (char*)lbuf;\n\tmemset(buf, 'A', %d * 8);", size/8, size/8)
		},
		extra: "\tfree(lbuf);",
	},
	{
		name: "global",
		decl: func(size int) string {
			return fmt.Sprintf("\tchar *buf = gbuf;\n\tmemset(buf, 'A', %d);", size)
		},
	},
}

// flow describes how the out-of-bounds access is reached. idx is the byte
// offset accessed (negative = underflow); kind is "write" or "read".
type flow struct {
	name string
	gen  func(idx int, kind string) string
}

var flows = []flow{
	{
		name: "direct",
		gen: func(idx int, kind string) string {
			if kind == "write" {
				return fmt.Sprintf("\tbuf[%d] = 'X';", idx)
			}
			return fmt.Sprintf("\tsink = sink + buf[%d];", idx)
		},
	},
	{
		name: "loop",
		gen: func(idx int, kind string) string {
			if idx < 0 {
				// Loop down past the base.
				body := "buf[i] = 'X';"
				if kind == "read" {
					body = "sink = sink + buf[i];"
				}
				return fmt.Sprintf("\tfor (i = 4; i >= %d; i = i - 1) { %s }", idx, body)
			}
			body := "buf[i] = 'X';"
			if kind == "read" {
				body = "sink = sink + buf[i];"
			}
			return fmt.Sprintf("\tfor (i = 0; i <= %d; i = i + 1) { %s }", idx, body)
		},
	},
	{
		name: "ptr_arith",
		gen: func(idx int, kind string) string {
			if kind == "write" {
				return fmt.Sprintf("\tchar *p = buf + %d;\n\t*p = 'X';", idx)
			}
			return fmt.Sprintf("\tchar *p = buf + %d;\n\tsink = sink + *p;", idx)
		},
	},
	{
		name: "callee",
		gen: func(idx int, kind string) string {
			if kind == "write" {
				return fmt.Sprintf("\tpoke(buf, %d);", idx)
			}
			return fmt.Sprintf("\tsink = sink + peek(buf, %d);", idx)
		},
	},
	{
		name: "global_ptr",
		gen: func(idx int, kind string) string {
			if kind == "write" {
				return fmt.Sprintf("\tgp = buf;\n\tgp[%d] = 'X';", idx)
			}
			return fmt.Sprintf("\tgp = buf;\n\tsink = sink + gp[%d];", idx)
		},
	},
	{
		name: "do_loop",
		gen: func(idx int, kind string) string {
			body := "buf[i] = 'X';"
			if kind == "read" {
				body = "sink = sink + buf[i];"
			}
			if idx < 0 {
				return fmt.Sprintf("\ti = 4;\n\tdo { %s i = i - 1; } while (i >= %d);", body, idx)
			}
			return fmt.Sprintf("\ti = 0;\n\tdo { %s i = i + 1; } while (i <= %d);", body, idx)
		},
	},
	{
		name: "switch_dispatch",
		gen: func(idx int, kind string) string {
			acc := fmt.Sprintf("buf[%d] = 'X';", idx)
			if kind == "read" {
				acc = fmt.Sprintf("sink = sink + buf[%d];", idx)
			}
			return fmt.Sprintf(`	switch (mode) {
	case 0:
		sink = sink + 1;
		break;
	case 1:
		%s
		break;
	default:
		sink = sink - 1;
	}`, acc)
		},
	},
	{
		name: "memcpy",
		gen: func(idx int, kind string) string {
			n := idx + 1
			if idx < 0 {
				return fmt.Sprintf("\tmemcpy(buf - %d, src, 4);", -idx)
			}
			if kind == "read" {
				return fmt.Sprintf("\tmemcpy(dst, buf, %d);", n)
			}
			return fmt.Sprintf("\tmemcpy(buf, src, %d);", n)
		},
	},
}

const prologue = `char gbuf[%d];
char *gp;
char src[96];
char dst[96];
long sink = 0;
void poke(char *b, int at) { b[at] = 'X'; }
char peek(char *b, int at) { return b[at]; }
int main() {
	long i;
	int mode = 1;
`

const epilogue = `	print(sink);
	return 0;
}`

// buildCase assembles one program.
func buildCase(cwe string, st site, fl flow, size, idx int, kind string, bad bool) Case {
	var b strings.Builder
	fmt.Fprintf(&b, prologue, size)
	b.WriteString(st.decl(size))
	b.WriteString("\n")
	b.WriteString(fl.gen(idx, kind))
	b.WriteString("\n")
	if st.extra != "" {
		b.WriteString(st.extra)
		b.WriteString("\n")
	}
	b.WriteString(epilogue)
	variant := "good"
	if bad {
		variant = "bad"
	}
	return Case{
		Name: fmt.Sprintf("%s_%s_%s_%s", cwe, st.name, fl.name, variant),
		CWE:  cwe,
		Bad:  bad,
		Src:  b.String(),
	}
}

// Generate produces the full suite.
func Generate() []Case {
	var cases []Case
	const size = 32

	type family struct {
		cwe     string
		kind    string
		badIdx  int
		goodIdx int
	}
	families := []family{
		{"CWE121", "write", size, size - 1},    // over-write (stack naming kept per family below)
		{"CWE122", "write", size, size - 1},    // heap over-write
		{"CWE124", "write", -4, 0},             // underwrite
		{"CWE126", "read", size + 4, size - 1}, // over-read
		{"CWE127", "read", -4, 0},              // under-read
	}
	for _, fam := range families {
		for _, st := range sites {
			// Keep the CWE/site pairing meaningful: 121 is stack-based,
			// 122 heap-based; the pointer-centric families run on all
			// sites.
			if fam.cwe == "CWE121" && st.name != "stack" && st.name != "global" {
				continue
			}
			if fam.cwe == "CWE122" && st.name != "heap" && st.name != "heap_long" {
				continue
			}
			for _, fl := range flows {
				// memcpy flows do not express under-accesses beyond one
				// fixed shape; skip non-write under for it.
				if fl.name == "memcpy" && fam.kind == "read" && fam.badIdx < 0 {
					continue
				}
				cases = append(cases,
					buildCase(fam.cwe, st, fl, size, fam.goodIdx, fam.kind, false),
					buildCase(fam.cwe, st, fl, size, fam.badIdx, fam.kind, true),
				)
			}
		}
	}

	cases = append(cases, intraObjectCases()...)
	return cases
}

// intraObjectCases are the subobject-granularity tests: the overflow stays
// inside the enclosing object, so object-granularity defenses miss them.
func intraObjectCases() []Case {
	mk := func(name string, bad bool, body string) Case {
		src := `struct Pair { char vulnerable[12]; char sensitive[12]; };
struct Outer { long tag; struct Pair pairs[3]; long tail; };
char *gp;
long sink = 0;
int main() {
	long i;
	int mode = 1;
` + body + `
	print(sink);
	return 0;
}`
		return Case{Name: name, CWE: "INTRA", Bad: bad, Src: src}
	}
	var cases []Case
	// Stack struct, member overflow via derived pointer.
	cases = append(cases,
		mk("INTRA_stack_member_good", false, `
	struct Pair s;
	char *p = s.vulnerable;
	for (i = 0; i < 12; i = i + 1) { p[i] = 'A'; }
	sink = p[11];`),
		mk("INTRA_stack_member_bad", true, `
	struct Pair s;
	char *p = s.vulnerable;
	for (i = 0; i <= 12; i = i + 1) { p[i] = 'A'; }
	sink = p[11];`),
	)
	// Heap struct, pointer stored to a global and reloaded (promote +
	// layout-table narrowing path).
	cases = append(cases,
		mk("INTRA_heap_reload_good", false, `
	struct Pair *s = (struct Pair*)malloc(sizeof(struct Pair));
	gp = s->vulnerable;
	char *p = gp;
	for (i = 0; i < 12; i = i + 1) { p[i] = 'A'; }
	sink = p[0];
	free(s);`),
		mk("INTRA_heap_reload_bad", true, `
	struct Pair *s = (struct Pair*)malloc(sizeof(struct Pair));
	gp = s->vulnerable;
	char *p = gp;
	for (i = 0; i <= 12; i = i + 1) { p[i] = 'A'; }
	sink = p[0];
	free(s);`),
	)
	// Array-of-struct nesting: overflow from pairs[1].vulnerable.
	cases = append(cases,
		mk("INTRA_nested_array_good", false, `
	struct Outer *o = (struct Outer*)malloc(sizeof(struct Outer));
	gp = o->pairs[1].vulnerable;
	char *p = gp;
	for (i = 0; i < 12; i = i + 1) { p[i] = 'A'; }
	sink = p[3];
	free(o);`),
		mk("INTRA_nested_array_bad", true, `
	struct Outer *o = (struct Outer*)malloc(sizeof(struct Outer));
	gp = o->pairs[1].vulnerable;
	char *p = gp;
	for (i = 0; i <= 12; i = i + 1) { p[i] = 'A'; }
	sink = p[3];
	free(o);`),
	)
	// Member over-read.
	cases = append(cases,
		mk("INTRA_member_read_good", false, `
	struct Pair s;
	memset(s.vulnerable, 'v', 12);
	memset(s.sensitive, 's', 12);
	char *p = s.vulnerable;
	for (i = 0; i < 12; i = i + 1) { sink = sink + p[i]; }`),
		mk("INTRA_member_read_bad", true, `
	struct Pair s;
	memset(s.vulnerable, 'v', 12);
	memset(s.sensitive, 's', 12);
	char *p = s.vulnerable;
	for (i = 0; i < 16; i = i + 1) { sink = sink + p[i]; }`),
	)
	return cases
}
