package juliet

import (
	"reflect"
	"strings"
	"testing"

	"infat/internal/minic"
	"infat/internal/rt"
)

func TestGenerateShape(t *testing.T) {
	cases := Generate()
	if len(cases) < 100 {
		t.Fatalf("suite has only %d cases", len(cases))
	}
	var good, bad int
	names := map[string]bool{}
	for _, c := range cases {
		if names[c.Name] {
			t.Errorf("duplicate case name %s", c.Name)
		}
		names[c.Name] = true
		if c.Bad {
			bad++
		} else {
			good++
		}
	}
	if good != bad {
		t.Errorf("good/bad imbalance: %d vs %d", good, bad)
	}
	for _, cwe := range []string{"CWE121", "CWE122", "CWE124", "CWE126", "CWE127", "INTRA"} {
		found := false
		for _, c := range cases {
			if c.CWE == cwe {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no cases for %s", cwe)
		}
	}
}

func TestAllCasesCompile(t *testing.T) {
	for _, c := range Generate() {
		prog, err := minic.Parse(c.Src)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", c.Name, err, c.Src)
		}
		if _, err := minic.Compile(prog); err != nil {
			t.Fatalf("%s: compile: %v\n%s", c.Name, err, c.Src)
		}
	}
}

func TestBaselineRunsEverythingClean(t *testing.T) {
	// The uninstrumented baseline must execute every case — good AND bad
	// — without traps: the simulated overcommit heap tolerates the
	// out-of-bounds accesses like real hardware would (this validates
	// that the generated "bad" code is a silent corruption, not a crash).
	for _, c := range Generate() {
		if _, _, err := minic.Execute(c.Src, rt.Baseline); err != nil {
			t.Errorf("%s: baseline error: %v", c.Name, err)
		}
	}
}

func TestFullDetection(t *testing.T) {
	// The paper's §5.1 headline: all vulnerable cases detected, all
	// non-vulnerable cases pass — in both allocator configurations.
	cases := Generate()
	for _, mode := range []rt.Mode{rt.Subheap, rt.Wrapped} {
		s := Run(cases, mode)
		if s.Detected != s.BadCases {
			for _, f := range s.Failures() {
				if f.Verdict == Missed {
					t.Errorf("%v: missed %s", mode, f.Case.Name)
				}
			}
		}
		if s.FalsePositives != 0 {
			for _, f := range s.Failures() {
				if f.Verdict == FalsePositive {
					t.Errorf("%v: false positive %s: %s", mode, f.Case.Name, f.Detail)
				}
			}
		}
		if s.Errors != 0 {
			for _, f := range s.Failures() {
				if f.Verdict == Errored {
					t.Errorf("%v: error %s: %s", mode, f.Case.Name, f.Detail)
				}
			}
		}
		if rep := s.Report(); !strings.Contains(rep, "detected:") {
			t.Error("report missing summary line")
		}
	}
}

// TestRunParallelEquivalence is the suite's isolation proof: the summary
// (counts, per-case outcomes in case order, and the rendered report) must
// be identical at workers=1 and workers=N. Run under -race in CI.
func TestRunParallelEquivalence(t *testing.T) {
	cases := Generate()
	serial := Run(cases, rt.Subheap)
	for _, workers := range []int{2, 8} {
		par := RunParallel(cases, rt.Subheap, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: summary differs from serial run", workers)
		}
		if serial.Report() != par.Report() {
			t.Errorf("workers=%d: report differs:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial.Report(), par.Report())
		}
	}
}

func TestVerdictStrings(t *testing.T) {
	for _, v := range []Verdict{Pass, Missed, FalsePositive, Errored, Verdict(9)} {
		if v.String() == "" {
			t.Error("empty verdict string")
		}
	}
}

func BenchmarkJulietSuite(b *testing.B) {
	cases := Generate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := Run(cases, rt.Subheap)
		if s.Detected != s.BadCases {
			b.Fatalf("missed %d cases", s.BadCases-s.Detected)
		}
	}
}

// TestTemporalCharacterization pins the §3 temporal-scope claim: metadata
// invalidation catches exactly the annotated subset of use-after-free
// patterns, in both allocator configurations.
func TestTemporalCharacterization(t *testing.T) {
	for _, c := range GenerateTemporal() {
		for _, mode := range []rt.Mode{rt.Subheap, rt.Wrapped} {
			_, _, err := minic.Execute(c.Src, mode)
			detected := err != nil
			if detected != c.ExpectDetect {
				t.Errorf("%s/%v: detected=%v, expected %v (%s; err=%v)",
					c.Name, mode, detected, c.ExpectDetect, c.Why, err)
			}
		}
		// Baseline never detects anything... except the allocator-level
		// double free, which faults in any libc.
		_, _, err := minic.Execute(c.Src, rt.Baseline)
		if c.Name == "double_free" {
			if err == nil {
				t.Error("double_free: baseline allocator accepted the second free")
			}
		} else if err != nil {
			t.Errorf("%s baseline: %v", c.Name, err)
		}
	}
}

// TestRegisterCachedBoundsGap demonstrates, at the API level, the §3 gap
// the VM's spill-everything codegen hides: when a pointer and its bounds
// stay in an IFPR across a free (as a register-allocating compiler would
// keep them), no promote re-reads the invalidated metadata and the
// use-after-free passes the (stale) bounds check.
func TestRegisterCachedBoundsGap(t *testing.T) {
	r := rt.New(rt.Subheap)
	o, err := r.MallocBytes(32)
	if err != nil {
		t.Fatal(err)
	}
	// The pointer cell is allocated up front so freeing o cannot recycle
	// its block into the cell's pool (address reuse is a separate,
	// legitimately undetectable case — see uaf_slot_reused_same_type).
	cell, err := r.MallocBytes(8)
	if err != nil {
		t.Fatal(err)
	}
	p, b := o.P, o.B // "in registers"
	if err := r.Free(o); err != nil {
		t.Fatal(err)
	}
	// The stale access is NOT detected: bounds were never re-fetched.
	if err := r.Store(p, 1, 8, b); err != nil {
		t.Fatalf("expected the documented gap (undetected UAF), got %v", err)
	}
	// As soon as the pointer round-trips through memory, promote catches it.
	if err := r.StorePtr(cell.P, cell.B, p, b); err != nil {
		t.Fatal(err)
	}
	q, qb, err := r.LoadPtr(cell.P, cell.B)
	if err != nil {
		t.Fatal(err)
	}
	if qb.Valid {
		t.Fatal("promote validated cleared metadata")
	}
	if _, err := r.Load(q, 8, qb); err == nil {
		t.Fatal("reloaded stale pointer dereferenced successfully")
	}
}
