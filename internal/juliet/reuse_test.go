package juliet

import (
	"runtime"
	"testing"

	"infat/internal/rt"
)

// TestReuseEquivalenceSummary: the Juliet suite rides the pooled MiniC
// execution path (minic.ExecuteBudget); its rendered summary must be
// byte-identical with pooling on and off, serially and at NumCPU
// workers. Run under -race in CI.
func TestReuseEquivalenceSummary(t *testing.T) {
	was := rt.ReuseSystems()
	defer func() {
		rt.SetReuseSystems(was)
		rt.DefaultPool.Drain()
	}()

	cases := Generate()
	report := func(reuse bool, workers int) string {
		rt.DefaultPool.Drain()
		rt.SetReuseSystems(reuse)
		return RunParallel(cases, rt.Subheap, workers).Report()
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		fresh := report(false, workers)
		reused := report(true, workers)
		if fresh != reused {
			t.Errorf("workers=%d: pooled summary differs from fresh\n--- fresh ---\n%s\n--- pooled ---\n%s",
				workers, fresh, reused)
		}
	}
}
