package juliet

// Temporal-error characterization (§3 protection scope): "In-Fat Pointer
// cannot detect temporal memory errors (i.e., use-after-free) beyond those
// that invalidate object metadata." This file makes that sentence
// executable: a small suite of use-after-free and double-free programs,
// each annotated with whether the defense is *expected* to catch it, so
// the boundary of the guarantee is pinned by tests rather than prose.

// TemporalCase is one temporal-error program with its expected outcome.
type TemporalCase struct {
	Name string
	Src  string
	// ExpectDetect: the run should fail under the *spatial* modes
	// (metadata invalidation catches it). When false, the program
	// exercises a temporal error the spatial design documents as out of
	// scope — the run is expected to complete. This field keeps pinning
	// the spatial guarantee and must not change when temporal modes are
	// added.
	ExpectDetect bool
	// ExpectDetectTemporal: the run should fail under rt.IFPTemporal,
	// where generation tagging catches what metadata invalidation alone
	// cannot (notably same-type slot reuse).
	ExpectDetectTemporal bool
	Why                  string
}

// GenerateTemporal produces the characterization suite.
func GenerateTemporal() []TemporalCase {
	return []TemporalCase{
		{
			Name:                 "uaf_reload_promote",
			ExpectDetect:         true,
			ExpectDetectTemporal: true,
			Why: "the stale pointer is reloaded from memory, so promote " +
				"re-fetches the (now cleared) object metadata and poisons it",
			Src: `
long *gv;
int main() {
	long *p = (long*)malloc(4 * sizeof(long));
	gv = p;
	free(p);
	long *q = gv;
	*q = 1;
	return 0;
}`,
		},
		{
			Name:                 "uaf_subheap_block_reuse",
			ExpectDetect:         true,
			ExpectDetectTemporal: true,
			Why: "freeing the last object returns the block and zeroes its " +
				"shared metadata, so the stale pointer's promote fails",
			Src: `
struct N { long a; long b; };
struct N *gv;
int main() {
	struct N *p = (struct N*)malloc(sizeof(struct N));
	gv = p;
	free(p);
	struct N *q = gv;
	q->a = 1;
	return 0;
}`,
		},
		{
			Name:                 "uaf_immediate_reuse_of_variable",
			ExpectDetect:         true,
			ExpectDetectTemporal: true,
			Why: "this VM spills every pointer variable to its stack slot " +
				"and re-promotes on each use, so even the immediate reuse " +
				"re-reads the cleared metadata; a register-allocating " +
				"compiler would keep the bounds in an IFPR and miss this " +
				"(the §3 documented gap — demonstrated at the API level in " +
				"the juliet tests)",
			Src: `
int main() {
	long *p = (long*)malloc(4 * sizeof(long));
	p[0] = 7;
	free(p);
	p[1] = 8;
	return 0;
}`,
		},
		{
			Name:                 "uaf_slot_reused_same_type",
			ExpectDetect:         false,
			ExpectDetectTemporal: true,
			Why: "the slot was reallocated to a same-type object, so the " +
				"stale pointer's promote resolves live, matching metadata — " +
				"type-safe reuse, the classic limit of invalidation-based " +
				"temporal detection",
			Src: `
long *gv;
int main() {
	long *p = (long*)malloc(4 * sizeof(long));
	gv = p;
	free(p);
	long *fresh = (long*)malloc(4 * sizeof(long));
	fresh[0] = 1;
	long *q = gv;
	*q = 2;
	free(fresh);
	return 0;
}`,
		},
		{
			Name:                 "double_free",
			ExpectDetect:         true,
			ExpectDetectTemporal: true,
			Why:                  "the allocator rejects the second free of the same chunk",
			Src: `
int main() {
	long *p = (long*)malloc(2 * sizeof(long));
	free(p);
	free(p);
	return 0;
}`,
		},
	}
}
