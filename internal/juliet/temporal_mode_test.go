package juliet

import (
	"errors"
	"strings"
	"testing"

	"infat/internal/machine"
	"infat/internal/minic"
	"infat/internal/rt"
)

func isTemporalTrap(err error) bool {
	var re *minic.RunError
	if errors.As(err, &re) {
		return machine.IsTrap(re.Err, machine.TrapTemporal)
	}
	return machine.IsTrap(err, machine.TrapTemporal)
}

// TestTemporalModeCharacterization flips the boundary suite: under
// rt.IFPTemporal every case — including the ones the spatial modes
// document as misses — must detect, per ExpectDetectTemporal.
func TestTemporalModeCharacterization(t *testing.T) {
	for _, c := range GenerateTemporal() {
		_, _, err := minic.Execute(c.Src, rt.IFPTemporal)
		detected := err != nil
		if detected != c.ExpectDetectTemporal {
			t.Errorf("%s/ifp-temporal: detected=%v, expected %v (err=%v)",
				c.Name, detected, c.ExpectDetectTemporal, err)
		}
	}
}

// TestTemporalModeCatchesSlotReuse pins the headline flip: the same-type
// slot-reuse UAF that metadata invalidation cannot see is caught by the
// generation comparison specifically (TrapTemporal, not a spatial trap).
func TestTemporalModeCatchesSlotReuse(t *testing.T) {
	for _, c := range GenerateTemporal() {
		if c.Name != "uaf_slot_reused_same_type" {
			continue
		}
		if c.ExpectDetect {
			t.Fatal("spatial expectation changed: the case is no longer a documented miss")
		}
		_, _, err := minic.Execute(c.Src, rt.IFPTemporal)
		if !isTemporalTrap(err) {
			t.Fatalf("expected a TrapTemporal detection, got %v", err)
		}
		return
	}
	t.Fatal("uaf_slot_reused_same_type case missing from GenerateTemporal")
}

// TestTemporalSpatialBehaviorUnchanged is the equivalence half of the
// boundary flip: the temporal suite keeps pinning the *spatial* guarantee,
// so under the spatial modes each case's outcome must still match
// ExpectDetect exactly (byte-identical suite behavior to before the
// temporal subsystem existed).
func TestTemporalSpatialBehaviorUnchanged(t *testing.T) {
	for _, c := range GenerateTemporal() {
		for _, mode := range []rt.Mode{rt.Subheap, rt.Wrapped, rt.Hybrid} {
			_, _, err := minic.Execute(c.Src, mode)
			if detected := err != nil; detected != c.ExpectDetect {
				t.Errorf("%s/%v: detected=%v, expected %v (spatial behavior changed; err=%v)",
					c.Name, mode, detected, c.ExpectDetect, err)
			}
			if err != nil && isTemporalTrap(err) {
				t.Errorf("%s/%v: spatial mode produced a temporal trap: %v", c.Name, mode, err)
			}
		}
	}
}

func TestCWE415416Shape(t *testing.T) {
	cases := GenerateCWE415416()
	var good, bad, c415, c416 int
	names := map[string]bool{}
	for _, c := range cases {
		if names[c.Name] {
			t.Errorf("duplicate case name %s", c.Name)
		}
		names[c.Name] = true
		if c.Bad {
			bad++
		} else {
			good++
		}
		switch c.CWE {
		case "CWE415":
			c415++
		case "CWE416":
			c416++
		default:
			t.Errorf("%s: unexpected CWE %q", c.Name, c.CWE)
		}
	}
	if good != bad {
		t.Errorf("good/bad imbalance: %d vs %d", good, bad)
	}
	if c415 == 0 || c416 == 0 {
		t.Errorf("family missing: CWE415=%d CWE416=%d cases", c415, c416)
	}
}

func TestCWE415416Compile(t *testing.T) {
	for _, c := range GenerateCWE415416() {
		prog, err := minic.Parse(c.Src)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", c.Name, err, c.Src)
		}
		if _, err := minic.Compile(prog); err != nil {
			t.Fatalf("%s: compile: %v\n%s", c.Name, err, c.Src)
		}
	}
}

// TestCWE415416FullDetection is the temporal acceptance contract: under
// rt.IFPTemporal every bad variant is detected and every good variant
// passes, and the rendered report carries the CWE415/CWE416 rows.
func TestCWE415416FullDetection(t *testing.T) {
	cases := GenerateCWE415416()
	s := Run(cases, rt.IFPTemporal)
	if s.Detected != s.BadCases || s.FalsePositives != 0 || s.Errors != 0 {
		for _, f := range s.Failures() {
			t.Errorf("ifp-temporal: %s %s: %s", f.Verdict, f.Case.Name, f.Detail)
		}
	}
	rep := s.Report()
	if !strings.Contains(rep, "CWE415") || !strings.Contains(rep, "CWE416") {
		t.Errorf("report missing temporal CWE rows:\n%s", rep)
	}
	if unk := s.UnknownCWEs(); len(unk) != 0 {
		t.Errorf("unexpected CWE families in outcomes: %v", unk)
	}
}

// TestNoUnknownCWEFamilies makes an unexpected CWE key a test failure for
// every generator, and checks the report mechanism that renders (rather
// than drops) such a key.
func TestNoUnknownCWEFamilies(t *testing.T) {
	all := append(Generate(), GenerateCWE415416()...)
	s := Summary{Outcomes: make([]Outcome, len(all))}
	for i, c := range all {
		s.Outcomes[i] = Outcome{Case: c}
	}
	if unk := s.UnknownCWEs(); len(unk) != 0 {
		t.Fatalf("generator produced families the report table does not know: %v", unk)
	}

	rogue := Summary{Outcomes: []Outcome{{Case: Case{Name: "x", CWE: "CWE999", Bad: true}}}}
	if unk := rogue.UnknownCWEs(); len(unk) != 1 || unk[0] != "CWE999" {
		t.Fatalf("UnknownCWEs missed the rogue family: %v", unk)
	}
	if rep := rogue.Report(); !strings.Contains(rep, "CWE999") ||
		!strings.Contains(rep, "unexpected family") {
		t.Fatalf("report dropped the rogue family:\n%s", rep)
	}
}

// TestSpatialSuiteUnderTemporalMode: the spatial suite loses subobject
// granularity under rt.IFPTemporal (the tag bits are spent on the
// generation) but must keep object-granularity protection: every
// non-INTRA bad case still detects and no good case false-positives.
func TestSpatialSuiteUnderTemporalMode(t *testing.T) {
	var cases []Case
	for _, c := range Generate() {
		if c.CWE != "INTRA" {
			cases = append(cases, c)
		}
	}
	s := Run(cases, rt.IFPTemporal)
	if s.Detected != s.BadCases || s.FalsePositives != 0 || s.Errors != 0 {
		for _, f := range s.Failures() {
			t.Errorf("ifp-temporal: %s %s: %s", f.Verdict, f.Case.Name, f.Detail)
		}
	}
}
