package layout

import (
	"errors"
	"fmt"
)

// Entry is one flattened layout-table element (Figure 9b): the tuple
// {parent, base, bound, size}. Base and Bound are byte offsets from the
// base address of the parent subobject's *element*; Size is the element
// size if the entry describes an array, or bound-base otherwise. The number
// of array elements is (bound-base)/size, which the paper notes is never
// stored explicitly.
type Entry struct {
	Parent uint16
	Base   uint64
	Bound  uint64
	Size   uint64
}

// Guest-encoding field caps. Each entry packs into two 64-bit words:
//
//	word0 = parent:16 | base:24 | bound:24
//	word1 = size:32 | reserved:32
//
// The caps comfortably cover every object the narrowing schemes serve
// (local-offset objects are <=1008 bytes; subheap slots are block-bounded).
const (
	maxOffset = 1<<24 - 1 // base/bound cap (16 MiB)
	maxSize   = 1<<32 - 1 // element size cap

	// EntryBytes is the in-memory size of one encoded entry.
	EntryBytes = 16
)

// Errors reported by table construction and the narrowing walk.
var (
	ErrTooLarge   = errors.New("layout: subobject offset exceeds encodable range")
	ErrBadTable   = errors.New("layout: malformed layout table")
	ErrBadIndex   = errors.New("layout: subobject index out of table")
	ErrOutsideSub = errors.New("layout: address outside subobject element")
)

// Table is a per-type layout table. All objects of the same type share one
// table (§3.4: "memory-efficient because all objects of the same type can
// share a single table").
type Table struct {
	Type    *Type
	Entries []Entry
	// Paths names each entry for diagnostics and for compiler-side index
	// lookup, e.g. "", "v1", "array", "array[].v3".
	Paths []string
}

// Build flattens a type into its layout table using the depth-first
// pre-order of Figure 9: element 0 is the whole object; struct fields and
// array descents follow, each child after its parent (so Parent < index for
// every non-root entry).
func Build(t *Type) (*Table, error) {
	tb := &Table{Type: t}
	tb.Entries = append(tb.Entries, Entry{Parent: 0, Base: 0, Bound: t.Size(), Size: elemSize(t)})
	tb.Paths = append(tb.Paths, "")
	if err := tb.flatten(t, 0, ""); err != nil {
		return nil, err
	}
	for _, e := range tb.Entries {
		if e.Base > maxOffset || e.Bound > maxOffset || e.Size > maxSize {
			return nil, fmt.Errorf("%w: %+v", ErrTooLarge, e)
		}
	}
	return tb, nil
}

// elemSize is the "size" column of Figure 9b: the element size for arrays,
// the full size otherwise.
func elemSize(t *Type) uint64 {
	if t.Kind == KindArray {
		return t.Elem.Size()
	}
	return t.Size()
}

// flatten appends entries for the subobjects of t. parentIdx is the table
// index of the entry describing t (or t's element, if t is an array).
func (tb *Table) flatten(t *Type, parentIdx uint16, path string) error {
	switch t.Kind {
	case KindStruct:
		for _, f := range t.Fields {
			if f.Type.Size() == 0 {
				continue
			}
			idx := uint16(len(tb.Entries))
			tb.Entries = append(tb.Entries, Entry{
				Parent: parentIdx,
				Base:   f.Offset,
				Bound:  f.Offset + f.Type.Size(),
				Size:   elemSize(f.Type),
			})
			tb.Paths = append(tb.Paths, joinPath(path, f.Name))
			if err := tb.flatten(f.Type, idx, joinPath(path, f.Name)); err != nil {
				return err
			}
		}
	case KindArray:
		// The array entry itself was appended by our caller (its size
		// column already holds the element size); descend into the
		// element type relative to an element base.
		elem := t.Elem
		switch elem.Kind {
		case KindStruct:
			return tb.flatten(elem, parentIdx, path+"[]")
		case KindArray:
			idx := uint16(len(tb.Entries))
			tb.Entries = append(tb.Entries, Entry{
				Parent: parentIdx,
				Base:   0,
				Bound:  elem.Size(),
				Size:   elemSize(elem),
			})
			tb.Paths = append(tb.Paths, path+"[]")
			return tb.flatten(elem, idx, path+"[]")
		}
	}
	return nil
}

func joinPath(base, name string) string {
	if base == "" {
		return name
	}
	return base + "." + name
}

// IndexOf returns the table index of the named subobject path (e.g.
// "array[].v3"), as the compiler instrumentation would resolve it.
func (tb *Table) IndexOf(path string) (uint16, bool) {
	for i, p := range tb.Paths {
		if p == path {
			return uint16(i), true
		}
	}
	return 0, false
}

// Encode packs the table into guest words (two per entry).
func (tb *Table) Encode() []uint64 {
	words := make([]uint64, 0, 2*len(tb.Entries))
	for _, e := range tb.Entries {
		w0 := uint64(e.Parent) | (e.Base&maxOffset)<<16 | (e.Bound&maxOffset)<<40
		w1 := e.Size & maxSize
		words = append(words, w0, w1)
	}
	return words
}

// DecodeEntry unpacks one encoded entry.
func DecodeEntry(w0, w1 uint64) Entry {
	return Entry{
		Parent: uint16(w0),
		Base:   w0 >> 16 & maxOffset,
		Bound:  w0 >> 40 & maxOffset,
		Size:   w1 & maxSize,
	}
}

// Bounds is a resolved [Lower, Upper) address range.
type Bounds struct {
	Lower uint64
	Upper uint64
}

// Contains reports whether an access of size bytes at addr stays in bounds
// (the access-size check of §4.1: addr >= lower && addr+size <= upper).
func (b Bounds) Contains(addr, size uint64) bool {
	return addr >= b.Lower && addr+size <= b.Upper && addr+size >= addr
}

// Span returns the byte length of the range.
func (b Bounds) Span() uint64 { return b.Upper - b.Lower }

func (b Bounds) String() string { return fmt.Sprintf("[%#x,%#x)", b.Lower, b.Upper) }

// FetchFunc reads the two words of the layout-table entry at the given
// guest address. The machine's promote path supplies a fetcher that goes
// through the L1D model so metadata fetches are timed; tests supply one
// backed by Encode output.
type FetchFunc func(entryAddr uint64) (w0, w1 uint64, err error)

// WalkStats reports the cost of one narrowing walk, used by the cycle
// model: the layout-table walker is the most complex IFP-unit component
// (§5.3) and array-of-struct descents pay a multi-cycle division each.
type WalkStats struct {
	Fetches   int // layout-table entry fetches
	Divisions int // array-element index computations
	Depth     int // nesting depth resolved
}

// maxDepth bounds the parent chain; entries form a tree with Parent <
// index, so depth can never legitimately exceed the index itself. 64 covers
// every real type while keeping the hardware state machine small.
const maxDepth = 64

// Narrow resolves the bounds of subobject idx of an object at [objBase,
// objBase+objSize), where addr is the pointer's current address (used to
// locate the array element under array-of-struct nesting). It implements
// the recursive procedure of §3.4 / Figure 9c: fetch the entry chain up to
// the root, then resolve bounds top-down, computing each array element's
// base with a division.
//
// tableAddr is the guest address of the encoded table. idx 0 (or a nil
// table pointer, handled by the caller) yields the object bounds.
func Narrow(fetch FetchFunc, tableAddr uint64, objBase, objSize, addr uint64, idx uint16) (Bounds, WalkStats, error) {
	var st WalkStats
	obj := Bounds{Lower: objBase, Upper: objBase + objSize}
	if idx == 0 {
		return obj, st, nil
	}

	// Phase 1: climb the parent chain (Figure 9c "fetching order").
	var chain []Entry
	cur := idx
	for cur != 0 {
		if st.Fetches >= maxDepth {
			return obj, st, ErrBadTable
		}
		w0, w1, err := fetch(tableAddr + uint64(cur)*EntryBytes)
		if err != nil {
			return obj, st, err
		}
		st.Fetches++
		e := DecodeEntry(w0, w1)
		if e.Parent >= cur || e.Bound < e.Base || e.Size == 0 {
			return obj, st, ErrBadTable
		}
		chain = append(chain, e)
		cur = e.Parent
	}

	// Fetch the root entry: heap allocations of n elements share the
	// element type's table (§3.4 table sharing), so the object may be an
	// array of entry-0-sized elements. The root entry's size column tells
	// the walker the element stride; when the object size equals it, the
	// root behaves as a plain (non-array) parent.
	w0, w1, err := fetch(tableAddr)
	if err != nil {
		return obj, st, err
	}
	st.Fetches++
	root := DecodeEntry(w0, w1)
	if root.Parent != 0 || root.Size == 0 || root.Bound < root.Base {
		return obj, st, ErrBadTable
	}

	elemBase := objBase
	elemSpan := objSize
	if objSize > root.Size {
		if addr < objBase || addr >= objBase+objSize {
			// Cannot identify the array element: coarsen (§3's
			// object-bounds guarantee under type mismatch).
			return obj, st, ErrOutsideSub
		}
		st.Divisions++
		elemIdx := (addr - objBase) / root.Size
		elemBase = objBase + elemIdx*root.Size
		elemSpan = root.Size
	}

	// Phase 2: resolve top-down (root-most chain element last in slice).
	b := obj
	for i := len(chain) - 1; i >= 0; i-- {
		e := chain[i]
		if e.Bound > elemSpan {
			// Child extends past its parent element: the type the table
			// describes does not fit the object — coarsen to object
			// bounds rather than trusting the table.
			return obj, st, ErrOutsideSub
		}
		lower := elemBase + e.Base
		upper := elemBase + e.Bound
		st.Depth++
		// Locate the array element the address falls in (for non-array
		// entries Size == Bound-Base so the quotient is 0 whenever the
		// address is inside, keeping the datapath uniform).
		span := e.Bound - e.Base
		if addr < lower || addr >= upper {
			// The pointer is outside this subobject element. The
			// hardware can still return the subobject's own bounds
			// (entry-level) when the entry is not under an array, but
			// under array nesting the element cannot be identified;
			// report it and let promote poison the result.
			if span != e.Size {
				return obj, st, ErrOutsideSub
			}
			// Non-array entry: bounds are fully determined by offsets.
			b = Bounds{Lower: lower, Upper: upper}
			elemBase = lower
			elemSpan = span
			continue
		}
		if span != e.Size {
			// Array entry: one hardware division per level.
			st.Divisions++
			elemIdx := (addr - lower) / e.Size
			elemBase = lower + elemIdx*e.Size
			elemSpan = e.Size
			b = Bounds{Lower: lower, Upper: upper}
			continue
		}
		b = Bounds{Lower: lower, Upper: upper}
		elemBase = lower
		elemSpan = span
	}
	// The innermost resolution gives the subobject bounds. If the
	// innermost entry is an array, the pointer may roam the whole array
	// (no per-element narrowing for direct array elements, matching §3.4:
	// "all array elements are represented by the single layout table
	// element").
	return b, st, nil
}

// NarrowTable is a convenience wrapper that narrows against an in-process
// Table (no guest memory), used by tests, examples, and the compiler's
// static-bounds folding.
func NarrowTable(tb *Table, objBase, objSize, addr uint64, idx uint16) (Bounds, WalkStats, error) {
	if int(idx) >= len(tb.Entries) {
		return Bounds{Lower: objBase, Upper: objBase + objSize}, WalkStats{}, ErrBadIndex
	}
	words := tb.Encode()
	fetch := func(entryAddr uint64) (uint64, uint64, error) {
		i := int(entryAddr / EntryBytes)
		if i < 0 || 2*i+1 >= len(words) {
			return 0, 0, ErrBadIndex
		}
		return words[2*i], words[2*i+1], nil
	}
	return Narrow(fetch, 0, objBase, objSize, addr, idx)
}
