package layout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperS builds Figure 9a's struct S and its table.
func paperS(t *testing.T) (*Type, *Table) {
	t.Helper()
	nested := StructOf("NestedTy", F("v3", Int), F("v4", Int))
	s := StructOf("S", F("v1", Int), F("array", ArrayOf(nested, 2)), F("v5", Int))
	tb, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	return s, tb
}

func TestBuildMatchesFigure9(t *testing.T) {
	_, tb := paperS(t)
	// Figure 9b: 6 entries with exactly these tuples.
	want := []Entry{
		{Parent: 0, Base: 0, Bound: 24, Size: 24}, // 0: S
		{Parent: 0, Base: 0, Bound: 4, Size: 4},   // 1: S.v1
		{Parent: 0, Base: 4, Bound: 20, Size: 8},  // 2: S.array
		{Parent: 2, Base: 0, Bound: 4, Size: 4},   // 3: S.array[].v3
		{Parent: 2, Base: 4, Bound: 8, Size: 4},   // 4: S.array[].v4
		{Parent: 0, Base: 20, Bound: 24, Size: 4}, // 5: S.v5
	}
	if len(tb.Entries) != len(want) {
		t.Fatalf("entries = %d, want %d: %+v", len(tb.Entries), len(want), tb.Entries)
	}
	for i, e := range tb.Entries {
		if e != want[i] {
			t.Errorf("entry %d = %+v, want %+v (%s)", i, e, want[i], tb.Paths[i])
		}
	}
	// The element count of S.array is derivable: (bound-base)/size = 2.
	e := tb.Entries[2]
	if n := (e.Bound - e.Base) / e.Size; n != 2 {
		t.Errorf("derived element count = %d, want 2", n)
	}
}

func TestPathsAndIndexOf(t *testing.T) {
	_, tb := paperS(t)
	for path, want := range map[string]uint16{
		"": 0, "v1": 1, "array": 2, "array[].v3": 3, "array[].v4": 4, "v5": 5,
	} {
		got, ok := tb.IndexOf(path)
		if !ok || got != want {
			t.Errorf("IndexOf(%q) = (%d,%v), want %d", path, got, ok, want)
		}
	}
	if _, ok := tb.IndexOf("array[].nope"); ok {
		t.Error("IndexOf found a ghost path")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, tb := paperS(t)
	words := tb.Encode()
	if len(words) != 2*len(tb.Entries) {
		t.Fatalf("encoded words = %d", len(words))
	}
	for i, e := range tb.Entries {
		if got := DecodeEntry(words[2*i], words[2*i+1]); got != e {
			t.Errorf("entry %d decode = %+v, want %+v", i, got, e)
		}
	}
}

func TestNarrowSimpleFields(t *testing.T) {
	// Bounds of S.v1 and S.v5 are plain offsets from the object base.
	_, tb := paperS(t)
	base := uint64(0x1000)
	b, st, err := NarrowTable(tb, base, 24, base, 1) // &s.v1
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower != base || b.Upper != base+4 {
		t.Errorf("v1 bounds = %v", b)
	}
	if st.Divisions != 0 {
		t.Errorf("v1 narrowing used %d divisions, want 0", st.Divisions)
	}
	b, _, err = NarrowTable(tb, base, 24, base+20, 5) // &s.v5
	if err != nil || b.Lower != base+20 || b.Upper != base+24 {
		t.Errorf("v5 bounds = %v (err %v)", b, err)
	}
}

func TestNarrowIndexZeroIsObjectBounds(t *testing.T) {
	_, tb := paperS(t)
	b, st, err := NarrowTable(tb, 0x1000, 24, 0x1000, 0)
	if err != nil || b.Lower != 0x1000 || b.Upper != 0x1018 {
		t.Errorf("object bounds = %v (err %v)", b, err)
	}
	if st.Fetches != 0 {
		t.Error("index 0 fetched entries")
	}
}

func TestNarrowArrayOfStruct(t *testing.T) {
	// §3.4 worked example: promote of a pointer to S.array[1].v3
	// (element 3). The walk fetches elements 3 and 2, divides once, and
	// produces the bounds of S.array[1].v3.
	_, tb := paperS(t)
	base := uint64(0x2000)
	addr := base + 4 + 8 // S.array[1] starts at offset 12; .v3 at 12
	b, st, err := NarrowTable(tb, base, 24, addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower != base+12 || b.Upper != base+16 {
		t.Errorf("array[1].v3 bounds = %v, want [%#x,%#x)", b, base+12, base+16)
	}
	if st.Fetches != 3 {
		t.Errorf("fetches = %d, want 3 (element 3, parent 2, root)", st.Fetches)
	}
	if st.Divisions != 1 {
		t.Errorf("divisions = %d, want 1", st.Divisions)
	}

	// And S.array[0].v4: element 4, address offset 4+4=8.
	b, _, err = NarrowTable(tb, base, 24, base+8, 4)
	if err != nil || b.Lower != base+8 || b.Upper != base+12 {
		t.Errorf("array[0].v4 bounds = %v (err %v)", b, err)
	}
}

func TestNarrowWholeArraySubobject(t *testing.T) {
	// A pointer narrowed to S.array (element 2) may roam the whole array:
	// no per-element bounds, so loops over it need no ifpidx updates.
	_, tb := paperS(t)
	base := uint64(0x3000)
	for _, off := range []uint64{4, 8, 12, 16, 19} {
		b, _, err := NarrowTable(tb, base, 24, base+off, 2)
		if err != nil || b.Lower != base+4 || b.Upper != base+20 {
			t.Errorf("array bounds at +%d = %v (err %v)", off, b, err)
		}
	}
}

func TestNarrowListing1(t *testing.T) {
	// Listing 1: narrowing to `vulnerable` must exclude `sensitive`.
	s := StructOf("S", F("vulnerable", ArrayOf(Char, 12)), F("sensitive", ArrayOf(Char, 12)))
	tb, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	vi, ok := tb.IndexOf("vulnerable")
	if !ok {
		t.Fatal("no index for vulnerable")
	}
	base := uint64(0x4000)
	b, _, err := NarrowTable(tb, base, s.Size(), base, vi)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Contains(base+11, 1) {
		t.Error("last byte of vulnerable rejected")
	}
	if b.Contains(base+12, 1) {
		t.Error("first byte of sensitive accepted: intra-object overflow undetected")
	}
}

func TestNarrowDeepNesting(t *testing.T) {
	// struct Outer { struct Mid { struct In { int a; int b; } ins[3]; int
	// tail; } mids[2]; } — two array-of-struct levels -> two divisions.
	in := StructOf("In", F("a", Int), F("b", Int))
	mid := StructOf("Mid", F("ins", ArrayOf(in, 3)), F("tail", Int))
	outer := StructOf("Outer", F("mids", ArrayOf(mid, 2)))
	tb, err := Build(outer)
	if err != nil {
		t.Fatal(err)
	}
	bi, ok := tb.IndexOf("mids[].ins[].b")
	if !ok {
		t.Fatalf("paths = %v", tb.Paths)
	}
	base := uint64(0x5000)
	// mids[1].ins[2].b: mid size 28, in size 8 -> offset 28 + 16 + 4 = 48.
	addr := base + 48
	b, st, err := NarrowTable(tb, base, outer.Size(), addr, bi)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower != addr || b.Upper != addr+4 {
		t.Errorf("bounds = %v, want [%#x,%#x)", b, addr, addr+4)
	}
	if st.Divisions != 2 {
		t.Errorf("divisions = %d, want 2", st.Divisions)
	}
	if st.Depth < 3 {
		t.Errorf("depth = %d, want >=3", st.Depth)
	}
}

func TestNarrowArrayOfArray(t *testing.T) {
	// int grid[4][6] wrapped in a struct: inner rows get their own entry.
	grid := StructOf("G", F("g", ArrayOf(ArrayOf(Int, 6), 4)))
	tb, err := Build(grid)
	if err != nil {
		t.Fatal(err)
	}
	ri, ok := tb.IndexOf("g[]")
	if !ok {
		t.Fatalf("paths = %v", tb.Paths)
	}
	base := uint64(0x6000)
	// Address in row 2: bounds should be exactly row 2 (24 bytes).
	addr := base + 2*24 + 8
	b, _, err := NarrowTable(tb, base, grid.Size(), addr, ri)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower != base+48 || b.Upper != base+72 {
		t.Errorf("row bounds = %v, want [%#x,%#x)", b, base+48, base+72)
	}
}

func TestNarrowBadIndex(t *testing.T) {
	_, tb := paperS(t)
	if _, _, err := NarrowTable(tb, 0x1000, 24, 0x1000, 99); err != ErrBadIndex {
		t.Errorf("err = %v, want ErrBadIndex", err)
	}
}

func TestNarrowMalformedTableDetected(t *testing.T) {
	// A corrupt entry whose parent >= index must be rejected (hardware
	// defense against tampered tables; the MAC protects object metadata
	// but the table pointer could point anywhere).
	words := []uint64{
		// entry 0 (unused by walks)
		0, 0,
		// entry 1: parent = 1 (self-loop)
		1 | 0<<16 | 8<<40, 8,
	}
	fetch := func(a uint64) (uint64, uint64, error) {
		i := int(a / EntryBytes)
		return words[2*i], words[2*i+1], nil
	}
	if _, _, err := Narrow(fetch, 0, 0x1000, 24, 0x1000, 1); err != ErrBadTable {
		t.Errorf("err = %v, want ErrBadTable", err)
	}

	// Zero element size is also malformed (division guard).
	words[2] = 0 | 0<<16 | 8<<40
	words[3] = 0
	if _, _, err := Narrow(fetch, 0, 0x1000, 24, 0x1000, 1); err != ErrBadTable {
		t.Errorf("zero-size err = %v, want ErrBadTable", err)
	}

	// A malformed root entry (zero size) is rejected too.
	words[0], words[1] = 0, 0
	words[2], words[3] = 0|0<<16|8<<40, 8
	if _, _, err := Narrow(fetch, 0, 0x1000, 24, 0x1000, 1); err != ErrBadTable {
		t.Errorf("bad root err = %v, want ErrBadTable", err)
	}

	// A child bound exceeding the parent span coarsens to object bounds:
	// the table describes a type that does not fit the object.
	words[0], words[1] = 0|0<<16|24<<40, 24 // valid root
	words[2], words[3] = 0|0<<16|4096<<40, 4096
	b, _, err := Narrow(fetch, 0, 0x1000, 24, 0x1000, 1)
	if err != ErrOutsideSub {
		t.Errorf("oversize child err = %v, want ErrOutsideSub", err)
	}
	if b.Lower != 0x1000 || b.Upper != 0x1018 {
		t.Errorf("coarsened bounds = %v", b)
	}
}

func TestNarrowHeapArraySharedTable(t *testing.T) {
	// A heap allocation of 5 structs shares the element type's table: the
	// object size exceeds the root entry's size, so the walker locates
	// the element with a root-level division before descending.
	s := StructOf("Node", F("key", Long), F("pad", ArrayOf(Char, 8)), F("val", Int))
	tb, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	vi, ok := tb.IndexOf("val")
	if !ok {
		t.Fatal("no val entry")
	}
	base := uint64(0x9000)
	objSize := 5 * s.Size()
	// Pointer to element 3's val field.
	addr := base + 3*s.Size() + 16
	b, st, err := NarrowTable(tb, base, objSize, addr, vi)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower != addr || b.Upper != addr+4 {
		t.Errorf("bounds = %v, want [%#x,%#x)", b, addr, addr+4)
	}
	if st.Divisions != 1 {
		t.Errorf("divisions = %d, want 1 (root element locate)", st.Divisions)
	}
	// Element-to-element overflow is now detectable: the bounds exclude
	// the neighbouring element's val.
	if b.Contains(addr+s.Size(), 1) {
		t.Error("bounds leak into the next array element")
	}
}

func TestNarrowOutsideArrayElement(t *testing.T) {
	// Promote of a pointer whose address is outside the indexed
	// array-nested subobject: the element cannot be identified, so the
	// walk reports ErrOutsideSub and returns object bounds (the paper's
	// coarsening guarantee under incorrect types, §3).
	_, tb := paperS(t)
	base := uint64(0x7000)
	b, _, err := NarrowTable(tb, base, 24, base+30, 3) // past the object
	if err != ErrOutsideSub {
		t.Fatalf("err = %v, want ErrOutsideSub", err)
	}
	if b.Lower != base || b.Upper != base+24 {
		t.Errorf("coarsened bounds = %v, want object bounds", b)
	}
}

func TestNarrowOutsideScalarFieldStillResolves(t *testing.T) {
	// A pointer one-past-the-end of a non-array field still resolves that
	// field's bounds (needed for legal off-by-one pointers).
	_, tb := paperS(t)
	base := uint64(0x8000)
	b, _, err := NarrowTable(tb, base, 24, base+4, 1) // one past v1
	if err != nil || b.Lower != base || b.Upper != base+4 {
		t.Errorf("bounds = %v (err %v)", b, err)
	}
}

func TestBuildTooLargeRejected(t *testing.T) {
	big := StructOf("Big", F("pad", ArrayOf(Char, 1<<25)), F("x", Int))
	if _, err := Build(big); err == nil {
		t.Error("oversized offsets accepted")
	}
}

func TestBoundsContains(t *testing.T) {
	b := Bounds{Lower: 0x100, Upper: 0x110}
	if !b.Contains(0x100, 16) || !b.Contains(0x10f, 1) {
		t.Error("in-bounds access rejected")
	}
	if b.Contains(0x0ff, 1) || b.Contains(0x110, 1) || b.Contains(0x10f, 2) {
		t.Error("out-of-bounds access accepted")
	}
	if b.Contains(^uint64(0), 2) {
		t.Error("wrapping access accepted")
	}
	if b.Span() != 16 || b.String() == "" {
		t.Error("span/string")
	}
}

// Property: for every field path in a random struct, narrowing at an
// address inside the subobject yields bounds that (a) contain the address,
// (b) lie within the object, and (c) match the field's static extent.
func TestQuickNarrowSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scalars := []*Type{Char, Short, Int, Long}
	f := func(n1, n2, pick uint8) bool {
		inner := StructOf("I",
			F("a", scalars[int(n1)%len(scalars)]),
			F("b", ArrayOf(scalars[int(n2)%len(scalars)], 1+uint64(n1%5))),
		)
		outer := StructOf("O",
			F("x", scalars[int(pick)%len(scalars)]),
			F("arr", ArrayOf(inner, 1+uint64(n2%4))),
			F("y", Long),
		)
		tb, err := Build(outer)
		if err != nil {
			return false
		}
		base := uint64(0x10000)
		for idx := 1; idx < len(tb.Entries); idx++ {
			// Pick an address inside the subobject's first element.
			e := tb.Entries[idx]
			// Resolve the absolute lower bound via narrowing at the
			// statically known first-element position.
			addr := absoluteLower(tb, uint16(idx), base)
			b, _, err := NarrowTable(tb, base, outer.Size(), addr, uint16(idx))
			if err != nil {
				return false
			}
			if !b.Contains(addr, 1) {
				return false
			}
			if b.Lower < base || b.Upper > base+outer.Size() {
				return false
			}
			if b.Span() != e.Bound-e.Base {
				return false
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// absoluteLower computes the first-element absolute offset of entry idx by
// walking parents statically.
func absoluteLower(tb *Table, idx uint16, base uint64) uint64 {
	if idx == 0 {
		return base
	}
	e := tb.Entries[idx]
	return absoluteLower(tb, e.Parent, base) + e.Base
}

func BenchmarkNarrowFlat(b *testing.B) {
	nested := StructOf("NestedTy", F("v3", Int), F("v4", Int))
	s := StructOf("S", F("v1", Int), F("array", ArrayOf(nested, 2)), F("v5", Int))
	tb, _ := Build(s)
	words := tb.Encode()
	fetch := func(a uint64) (uint64, uint64, error) {
		i := int(a / EntryBytes)
		return words[2*i], words[2*i+1], nil
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = Narrow(fetch, 0, 0x1000, 24, 0x1000, 1)
	}
}

func BenchmarkNarrowArrayOfStruct(b *testing.B) {
	nested := StructOf("NestedTy", F("v3", Int), F("v4", Int))
	s := StructOf("S", F("v1", Int), F("array", ArrayOf(nested, 2)), F("v5", Int))
	tb, _ := Build(s)
	words := tb.Encode()
	fetch := func(a uint64) (uint64, uint64, error) {
		i := int(a / EntryBytes)
		return words[2*i], words[2*i+1], nil
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = Narrow(fetch, 0, 0x1000, 24, 0x100c, 3)
	}
}
