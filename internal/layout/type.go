// Package layout implements In-Fat Pointer's per-type layout tables (§3.4,
// Figure 9): a flattened tree of {parent, base, bound, size} entries that
// encodes the nesting of subobjects, plus the recursive bounds-narrowing
// walk the promote hardware performs. It also provides the guest type
// system used by the runtime, the compiler, and the workloads.
package layout

import (
	"fmt"
	"strings"
)

// Kind classifies a guest type.
type Kind int

// Guest type kinds.
const (
	KindScalar Kind = iota
	KindPointer
	KindStruct
	KindArray
)

func (k Kind) String() string {
	switch k {
	case KindScalar:
		return "scalar"
	case KindPointer:
		return "pointer"
	case KindStruct:
		return "struct"
	case KindArray:
		return "array"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Type describes a guest (C-like) type. Types are immutable after
// construction; share them freely.
type Type struct {
	Kind   Kind
	Name   string
	size   uint64
	align  uint64
	Elem   *Type   // array element or pointer pointee
	Count  uint64  // array length
	Fields []Field // struct members, in declaration order
}

// Field is a struct member with its computed byte offset.
type Field struct {
	Name   string
	Type   *Type
	Offset uint64
}

// Size returns the type's size in bytes (including struct padding).
func (t *Type) Size() uint64 { return t.size }

// Align returns the type's alignment in bytes.
func (t *Type) Align() uint64 { return t.align }

// Common scalar types of the RV64 guest ABI.
var (
	Char  = Scalar("char", 1)
	Short = Scalar("short", 2)
	Int   = Scalar("int", 4)
	Long  = Scalar("long", 8)
	// Float sizes only matter for layout; the simulator stores them as
	// raw bit patterns.
	Float  = Scalar("float", 4)
	Double = Scalar("double", 8)
	Void   = Scalar("void", 0)
)

// Scalar constructs a scalar type with natural alignment.
func Scalar(name string, size uint64) *Type {
	a := size
	if a == 0 {
		a = 1
	}
	return &Type{Kind: KindScalar, Name: name, size: size, align: a}
}

// PointerTo constructs a 64-bit pointer type.
func PointerTo(pointee *Type) *Type {
	name := "void*"
	if pointee != nil {
		name = pointee.Name + "*"
	}
	return &Type{Kind: KindPointer, Name: name, size: 8, align: 8, Elem: pointee}
}

// ArrayOf constructs an array type of n elements.
func ArrayOf(elem *Type, n uint64) *Type {
	return &Type{
		Kind:  KindArray,
		Name:  fmt.Sprintf("%s[%d]", elem.Name, n),
		size:  elem.size * n,
		align: elem.align,
		Elem:  elem,
		Count: n,
	}
}

// StructOf constructs a struct type, assigning field offsets with C layout
// rules (each field aligned to its own alignment; total size rounded up to
// the max alignment).
func StructOf(name string, fields ...Field) *Type {
	t := &Type{Kind: KindStruct, Name: "struct " + name, align: 1}
	var off uint64
	for _, f := range fields {
		fa := f.Type.align
		if fa == 0 {
			fa = 1
		}
		off = alignUp(off, fa)
		f.Offset = off
		t.Fields = append(t.Fields, f)
		off += f.Type.size
		if fa > t.align {
			t.align = fa
		}
	}
	t.size = alignUp(off, t.align)
	return t
}

// F is shorthand for building a Field (the offset is computed by StructOf).
func F(name string, typ *Type) Field { return Field{Name: name, Type: typ} }

// FieldByName returns the named struct member.
func (t *Type) FieldByName(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

func alignUp(x, a uint64) uint64 {
	if a <= 1 {
		return x
	}
	return (x + a - 1) &^ (a - 1)
}

func (t *Type) String() string {
	if t == nil {
		return "<nil type>"
	}
	if t.Kind == KindStruct {
		var b strings.Builder
		fmt.Fprintf(&b, "%s{", t.Name)
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s %s @%d", f.Name, f.Type.Name, f.Offset)
		}
		b.WriteString("}")
		return b.String()
	}
	return t.Name
}
