package layout

import "testing"

func TestScalarSizes(t *testing.T) {
	for _, tc := range []struct {
		typ  *Type
		size uint64
	}{
		{Char, 1}, {Short, 2}, {Int, 4}, {Long, 8}, {Float, 4}, {Double, 8}, {Void, 0},
	} {
		if tc.typ.Size() != tc.size {
			t.Errorf("%s size = %d, want %d", tc.typ.Name, tc.typ.Size(), tc.size)
		}
	}
	if PointerTo(Int).Size() != 8 || PointerTo(nil).Size() != 8 {
		t.Error("pointer size != 8")
	}
}

func TestStructLayoutPadding(t *testing.T) {
	// struct { char c; int i; char d; } — C layout: c@0, i@4, d@8, size 12.
	s := StructOf("P", F("c", Char), F("i", Int), F("d", Char))
	want := []uint64{0, 4, 8}
	for i, f := range s.Fields {
		if f.Offset != want[i] {
			t.Errorf("field %s offset = %d, want %d", f.Name, f.Offset, want[i])
		}
	}
	if s.Size() != 12 {
		t.Errorf("size = %d, want 12", s.Size())
	}
	if s.Align() != 4 {
		t.Errorf("align = %d, want 4", s.Align())
	}
}

func TestStructTrailingPadding(t *testing.T) {
	// struct { long l; char c; } — size rounds to 16.
	s := StructOf("Q", F("l", Long), F("c", Char))
	if s.Size() != 16 {
		t.Errorf("size = %d, want 16", s.Size())
	}
}

func TestArrayType(t *testing.T) {
	a := ArrayOf(Int, 10)
	if a.Size() != 40 || a.Align() != 4 || a.Count != 10 {
		t.Errorf("array = size %d align %d count %d", a.Size(), a.Align(), a.Count)
	}
}

func TestPaperStructS(t *testing.T) {
	// Figure 9a: struct S { int v1; struct NestedTy { int v3; int v4; }
	// array[2]; int v5; } — size 24.
	nested := StructOf("NestedTy", F("v3", Int), F("v4", Int))
	s := StructOf("S", F("v1", Int), F("array", ArrayOf(nested, 2)), F("v5", Int))
	if s.Size() != 24 {
		t.Fatalf("sizeof(struct S) = %d, want 24", s.Size())
	}
	f, ok := s.FieldByName("array")
	if !ok || f.Offset != 4 {
		t.Errorf("array offset = %d, want 4", f.Offset)
	}
	if _, ok := s.FieldByName("nope"); ok {
		t.Error("FieldByName found a ghost")
	}
}

func TestListing1StructS(t *testing.T) {
	// Listing 1: struct S { char vulnerable[12]; char sensitive[12]; }.
	s := StructOf("S", F("vulnerable", ArrayOf(Char, 12)), F("sensitive", ArrayOf(Char, 12)))
	if s.Size() != 24 {
		t.Errorf("size = %d, want 24", s.Size())
	}
	f, _ := s.FieldByName("sensitive")
	if f.Offset != 12 {
		t.Errorf("sensitive offset = %d, want 12", f.Offset)
	}
}

func TestStringers(t *testing.T) {
	var nilT *Type
	if nilT.String() == "" {
		t.Error("nil type string empty")
	}
	s := StructOf("X", F("a", Int))
	if s.String() == "" || Int.String() == "" {
		t.Error("empty type strings")
	}
	for _, k := range []Kind{KindScalar, KindPointer, KindStruct, KindArray, Kind(9)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}
