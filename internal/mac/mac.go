// Package mac implements the 48-bit metadata MAC used by In-Fat Pointer
// object metadata (§3.3): a keyed MAC over the metadata fields detects
// tampering by legacy code or temporal errors. The paper's prototype stores
// a 48-bit MAC; any keyed PRF works, so we use SipHash-2-4 (implemented
// from scratch — the repository is stdlib-only) truncated to 48 bits.
package mac

import "encoding/binary"

// Size is the MAC width in bits as stored in object metadata.
const Size = 48

// Mask selects the low 48 bits of a SipHash output.
const Mask = uint64(1)<<Size - 1

// Key is a 128-bit SipHash key. The runtime generates one per process
// (ifpmac reads it from a control register in the hardware).
type Key struct {
	K0, K1 uint64
}

// NewKey derives a Key from a seed deterministically. Simulation runs use a
// fixed seed for reproducibility; the real hardware would use an entropy
// source at boot.
func NewKey(seed uint64) Key {
	// SplitMix64 expansion of the seed into two words.
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		return z ^ z>>31
	}
	return Key{K0: next(), K1: next()}
}

func rotl(x uint64, b uint) uint64 { return x<<b | x>>(64-b) }

func sipRound(v0, v1, v2, v3 uint64) (uint64, uint64, uint64, uint64) {
	v0 += v1
	v1 = rotl(v1, 13)
	v1 ^= v0
	v0 = rotl(v0, 32)
	v2 += v3
	v3 = rotl(v3, 16)
	v3 ^= v2
	v0 += v3
	v3 = rotl(v3, 21)
	v3 ^= v0
	v2 += v1
	v1 = rotl(v1, 17)
	v1 ^= v2
	v2 = rotl(v2, 32)
	return v0, v1, v2, v3
}

// Sum64 computes SipHash-2-4 of data under k.
func Sum64(k Key, data []byte) uint64 {
	v0 := k.K0 ^ 0x736f6d6570736575
	v1 := k.K1 ^ 0x646f72616e646f6d
	v2 := k.K0 ^ 0x6c7967656e657261
	v3 := k.K1 ^ 0x7465646279746573

	n := len(data)
	for len(data) >= 8 {
		m := binary.LittleEndian.Uint64(data)
		v3 ^= m
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0 ^= m
		data = data[8:]
	}
	var last uint64
	for i, b := range data {
		last |= uint64(b) << (8 * uint(i))
	}
	last |= uint64(n&0xff) << 56
	v3 ^= last
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= last

	v2 ^= 0xff
	for i := 0; i < 4; i++ {
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	}
	return v0 ^ v1 ^ v2 ^ v3
}

// Object computes the 48-bit metadata MAC over an object's identity: its
// base address, size, and layout-table pointer. This is the value the
// ifpmac instruction produces and promote verifies (§3.3, §4.1).
func Object(k Key, base, size, layoutPtr uint64) uint64 {
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], base)
	binary.LittleEndian.PutUint64(buf[8:], size)
	binary.LittleEndian.PutUint64(buf[16:], layoutPtr)
	return Sum64(k, buf[:]) & Mask
}
