package mac

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// SipHash-2-4 reference vectors from the SipHash paper (Appendix A):
// key = 00 01 02 ... 0f, messages are 00, 00 01, 00 01 02, ...
var sipVectors = []uint64{
	0x726fdb47dd0e0e31, 0x74f839c593dc67fd, 0x0d6c8009d9a94f5a,
	0x85676696d7fb7e2d, 0xcf2794e0277187b7, 0x18765564cd99a68d,
	0xcbc9466e58fee3ce, 0xab0200f58b01d137, 0x93f5f5799a932462,
	0x9e0082df0ba9e4b0, 0x7a5dbbc594ddb9f3, 0xf4b32f46226bada7,
	0x751e8fbc860ee5fb, 0x14ea5627c0843d90, 0xf723ca908e7af2ee,
	0xa129ca6149be45e5, 0x3f2acc7f57c29bdb,
}

func TestSipHashReferenceVectors(t *testing.T) {
	k := Key{
		K0: binary.LittleEndian.Uint64([]byte{0, 1, 2, 3, 4, 5, 6, 7}),
		K1: binary.LittleEndian.Uint64([]byte{8, 9, 10, 11, 12, 13, 14, 15}),
	}
	msg := make([]byte, 0, len(sipVectors))
	for i, want := range sipVectors {
		if got := Sum64(k, msg); got != want {
			t.Errorf("vector %d: got %#x, want %#x", i, got, want)
		}
		msg = append(msg, byte(i))
	}
}

func TestObjectIs48Bits(t *testing.T) {
	k := NewKey(42)
	f := func(base, size, lt uint64) bool {
		return Object(k, base, size, lt)>>Size == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObjectKeyed(t *testing.T) {
	// Different keys must produce different MACs for the same object
	// (overwhelmingly), and the same key the same MAC.
	k1, k2 := NewKey(1), NewKey(2)
	if k1 == k2 {
		t.Fatal("NewKey not seed-sensitive")
	}
	m1 := Object(k1, 0x1000, 64, 0x2000)
	if m1 != Object(k1, 0x1000, 64, 0x2000) {
		t.Error("MAC not deterministic")
	}
	if m1 == Object(k2, 0x1000, 64, 0x2000) {
		t.Error("MAC ignores key")
	}
}

func TestObjectFieldSensitivity(t *testing.T) {
	// Tampering with any single metadata field must change the MAC: this is
	// the §3.3 integrity property promote relies on.
	k := NewKey(7)
	ref := Object(k, 0x1000, 64, 0x2000)
	for _, tamper := range []struct {
		name             string
		base, size, lptr uint64
	}{
		{"base", 0x1008, 64, 0x2000},
		{"size", 0x1000, 128, 0x2000},
		{"layout", 0x1000, 64, 0x2010},
	} {
		if Object(k, tamper.base, tamper.size, tamper.lptr) == ref {
			t.Errorf("tampered %s field kept the same MAC", tamper.name)
		}
	}
}

func TestNewKeyDeterministic(t *testing.T) {
	if NewKey(99) != NewKey(99) {
		t.Error("NewKey not deterministic for a fixed seed")
	}
}

func BenchmarkObjectMAC(b *testing.B) {
	k := NewKey(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Object(k, uint64(i), 64, 0x2000)
	}
}
