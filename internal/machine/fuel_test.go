package machine

import (
	"fmt"
	"testing"
)

func TestCheckFuel(t *testing.T) {
	m := New()
	if err := m.CheckFuel(); err != nil {
		t.Fatalf("no limit: %v", err)
	}
	m.FuelLimit = 10
	m.Tick(9)
	if err := m.CheckFuel(); err != nil {
		t.Fatalf("within budget (9/10 cycles): %v", err)
	}
	m.Tick(1)
	err := m.CheckFuel()
	if !IsTrap(err, TrapFuel) {
		t.Fatalf("at budget: err = %v, want TrapFuel", err)
	}
	// A fuel trap is a resource trap, not a spatial detection.
	if IsTrap(err, TrapPoison) || IsTrap(err, TrapBounds) {
		t.Fatal("fuel trap classified as spatial")
	}
}

func TestIsTrapUnwraps(t *testing.T) {
	inner := &Trap{Kind: TrapBounds, Msg: "x"}
	wrapped := fmt.Errorf("minic:3: %w", inner)
	if !IsTrap(wrapped, TrapBounds) {
		t.Fatal("IsTrap failed to unwrap")
	}
	if IsTrap(wrapped, TrapPoison) {
		t.Fatal("IsTrap matched the wrong kind")
	}
	if IsTrap(nil, TrapBounds) || IsTrap(fmt.Errorf("plain"), TrapBounds) {
		t.Fatal("IsTrap matched a non-trap error")
	}
}
