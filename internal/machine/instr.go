package machine

import (
	"infat/internal/layout"
	"infat/internal/mac"
	"infat/internal/metadata"
	"infat/internal/tag"
)

// This file implements the single-cycle In-Fat Pointer instructions of
// Table 3 (everything except promote, which lives in promote.go). Each
// method models one dynamic instruction: it bumps the per-class counter,
// one instruction, and one cycle, then applies the architectural effect.

func (m *Machine) tick1(class *uint64) {
	*class++
	m.C.Instrs++
	m.C.Cycles++
}

// IfpAdd implements the ifpadd instruction: address computation fused with
// pointer-tag maintenance (§4.1). It adds delta to the pointer, keeps the
// scheme fields consistent (the local-offset granule offset is relative to
// the *current* address and must be recomputed), and updates poison bits
// against the paired bounds register when one is valid.
func (m *Machine) IfpAdd(p uint64, delta int64, breg BoundsReg) uint64 {
	m.tick1(&m.C.IfpAdd)
	if ps := tag.PoisonOf(p); ps == tag.Invalid || (m.TemporalTags && ps == tag.Stale) {
		return p // invalid (and, temporally, stale) pointers stay poisoned through arithmetic
	}
	oldAddr := tag.Addr(p)
	newAddr := (oldAddr + uint64(delta)) & tag.AddrMask
	q := p&^tag.AddrMask | newAddr

	// Maintain the local-offset granule offset across the move.
	if tag.SchemeOf(p) == tag.SchemeLocalOffset {
		off, _ := tag.LocalFields(p)
		metaAddr := metadata.LocalMetaAddr(oldAddr, off)
		newOff, ok := metadata.LocalGranuleOffset(newAddr, metaAddr)
		if !ok {
			// The pointer drifted so far that the metadata is no longer
			// reachable from the tag: irrecoverable (§3.2).
			return tag.WithPoison(q, tag.Invalid)
		}
		_, sub := tag.LocalFields(p)
		q = tag.WithMeta(q, newOff<<tag.LocalSubobjBits|sub)
	}

	// Fused poison update against the bounds register (§4.1: "ifpadd will
	// update the poison bits when the address computation result is out of
	// bounds").
	if breg.Valid {
		q = tag.WithPoison(q, poisonFor(breg.B, newAddr))
	} else if tag.PoisonOf(p) == tag.OOB {
		// Without bounds we cannot prove the pointer came back in range;
		// it stays recoverable-OOB until a promote or check refreshes it.
		q = tag.WithPoison(q, tag.OOB)
	}
	return q
}

// poisonFor classifies an address against bounds: inside is Valid,
// anything else is the recoverable out-of-bounds state (off-by-one is the
// common legal case, §3.2).
func poisonFor(b layout.Bounds, addr uint64) tag.Poison {
	if addr >= b.Lower && addr < b.Upper {
		return tag.Valid
	}
	return tag.OOB
}

// IfpIdx implements the ifpidx instruction: it rewrites the subobject-index
// field when instrumented code indexes into a struct (§4.1).
func (m *Machine) IfpIdx(p uint64, idx uint16) uint64 {
	m.tick1(&m.C.IfpIdx)
	return tag.WithSubobjIndex(p, idx)
}

// IfpBnd implements the ifpbnd instruction: create pointer bounds with a
// statically known size, [addr, addr+size) (§4.1: used when the compiler
// knows the object or needs to narrow to a known size).
func (m *Machine) IfpBnd(p uint64, size uint64) BoundsReg {
	m.tick1(&m.C.IfpBnd)
	a := tag.Addr(p)
	return BoundsReg{B: layout.Bounds{Lower: a, Upper: a + size}, Valid: true}
}

// IfpChk implements the ifpchk instruction: an explicit access-size check
// of p against breg. On failure the returned pointer is poisoned Invalid
// (§3.2 lists "indexing into a struct after a failed bounds check" as
// irrecoverable), so the following dereference traps.
func (m *Machine) IfpChk(p uint64, size uint64, breg BoundsReg) uint64 {
	m.tick1(&m.C.IfpChk)
	if !breg.Valid {
		return p // cleared bounds: unchecked, matching legacy behaviour
	}
	if m.TemporalTags && tag.PoisonOf(p) == tag.Stale {
		return p // a spatial check must not re-validate a temporal detection
	}
	m.C.Checks++
	if !breg.B.Contains(tag.Addr(p), size) {
		m.C.CheckFails++
		return tag.WithPoison(p, tag.Invalid)
	}
	return tag.WithPoison(p, tag.Valid)
}

// IfpExtract implements the ifpextract instruction ("demote"): the IFPR is
// reduced to a plain GPR value before the pointer is stored to memory. The
// tag stays on the pointer (tags persist through memory); only the bounds
// register association is dropped. Demote refreshes the poison bits from
// the bounds while they are still at hand (§4.1: "essentially a truncation
// but will also update the poison bits if the pointer is (wildly)
// out-of-bounds").
func (m *Machine) IfpExtract(p uint64, breg BoundsReg) uint64 {
	m.tick1(&m.C.IfpExtract)
	if ps := tag.PoisonOf(p); breg.Valid && ps != tag.Invalid && !(m.TemporalTags && ps == tag.Stale) {
		return tag.WithPoison(p, poisonFor(breg.B, tag.Addr(p)))
	}
	return p
}

// IfpMac implements the ifpmac instruction: MAC generation for object
// metadata during allocation instrumentation (§4.1).
func (m *Machine) IfpMac(base, size, layoutPtr uint64) uint64 {
	m.tick1(&m.C.IfpMac)
	m.C.Cycles += m.Cost.MacCycles - 1
	return mac.Object(m.Key, base, size, layoutPtr)
}

// IfpMacSubheap is the ifpmac variant covering a subheap block's shared
// metadata record.
func (m *Machine) IfpMacSubheap(blockBase uint64, md metadata.Subheap) uint64 {
	m.tick1(&m.C.IfpMac)
	m.C.Cycles += m.Cost.MacCycles - 1
	return metadata.SubheapMAC(m.Key, blockBase, md)
}

// IfpMdLocal implements the pointer-tag-setup flavour of ifpmd for the
// local-offset scheme.
func (m *Machine) IfpMdLocal(addr uint64, granuleOff, subobj uint16) uint64 {
	m.tick1(&m.C.IfpMd)
	return tag.MakeLocal(addr, granuleOff, subobj)
}

// IfpMdSubheap builds a subheap-scheme pointer tag.
func (m *Machine) IfpMdSubheap(addr uint64, cr, subobj uint16) uint64 {
	m.tick1(&m.C.IfpMd)
	return tag.MakeSubheap(addr, cr, subobj)
}

// IfpMdGlobal builds a global-table-scheme pointer tag.
func (m *Machine) IfpMdGlobal(addr uint64, index uint16) uint64 {
	m.tick1(&m.C.IfpMd)
	return tag.MakeGlobal(addr, index)
}

// IfpMdStrip strips the tag (legacy pointer construction, used when
// handing pointers to uninstrumented code).
func (m *Machine) IfpMdStrip(p uint64) uint64 {
	m.tick1(&m.C.IfpMd)
	return tag.Strip(p)
}

// boundsSpillBytes is the in-memory footprint of a spilled bounds register
// (two 48-bit words stored as two 8-byte words).
const boundsSpillBytes = 16

// validMark flags a serialized bounds register as valid (bit 63 of the
// upper word; the architectural bounds are 48-bit so the bit is spare).
const validMark = uint64(1) << 63

// LdBnd implements the ldbnd instruction: load a 96-bit bounds register
// from memory (used across spills and callee-saved save/restore, §4.1.2).
func (m *Machine) LdBnd(addr uint64) (BoundsReg, error) {
	m.tick1(&m.C.LdBnd)
	m.dataAccess(addr, boundsSpillBytes, false)
	lo, err := m.Mem.Load64(addr)
	if err != nil {
		return Cleared, &Trap{Kind: TrapMemory, Ptr: addr, Msg: err.Error()}
	}
	hi, err := m.Mem.Load64(addr + 8)
	if err != nil {
		return Cleared, &Trap{Kind: TrapMemory, Ptr: addr, Msg: err.Error()}
	}
	if hi&validMark == 0 {
		return Cleared, nil
	}
	return BoundsReg{B: layout.Bounds{Lower: lo & tag.AddrMask, Upper: hi & tag.AddrMask}, Valid: true}, nil
}

// StBnd implements the stbnd instruction: store a bounds register to
// memory. Cleared bounds serialize with the valid mark unset.
func (m *Machine) StBnd(addr uint64, breg BoundsReg) error {
	m.tick1(&m.C.StBnd)
	m.dataAccess(addr, boundsSpillBytes, true)
	var lo, hi uint64
	if breg.Valid {
		lo, hi = breg.B.Lower, breg.B.Upper|validMark
	}
	if err := m.Mem.Store64(addr, lo); err != nil {
		return &Trap{Kind: TrapMemory, Ptr: addr, Msg: err.Error()}
	}
	if err := m.Mem.Store64(addr+8, hi); err != nil {
		return &Trap{Kind: TrapMemory, Ptr: addr, Msg: err.Error()}
	}
	return nil
}

// ClearBounds models the implicit bounds clearing of §4.1.2: when a GPR
// involved in argument/return passing is written by a pre-existing RISC-V
// instruction (i.e. by uninstrumented code), the paired bounds register is
// cleared by hardware, so instrumented callers never pick up stale bounds.
// It costs nothing: the clearing rides on the existing writeback.
func (m *Machine) ClearBounds() BoundsReg { return Cleared }
