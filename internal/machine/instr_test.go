package machine

import (
	"testing"

	"infat/internal/layout"
	"infat/internal/mac"
	"infat/internal/metadata"
	"infat/internal/tag"
)

func TestIfpAddMaintainsGranuleOffset(t *testing.T) {
	// A local-offset pointer moved forward must keep addressing the same
	// metadata: the granule offset shrinks as the address approaches it.
	m := New()
	p := setupLocal(t, m, 0x1000, 100, nil)
	offBefore, _ := tag.LocalFields(p)
	q := m.IfpAdd(p, 32, Cleared)
	offAfter, _ := tag.LocalFields(q)
	if offAfter != offBefore-2 {
		t.Errorf("granule offset %d -> %d, want -2 granules", offBefore, offAfter)
	}
	// Promote through the moved pointer still finds the object.
	_, b := m.Promote(q)
	if !b.Valid || b.B.Lower != 0x1000 {
		t.Errorf("bounds after move = %+v", b)
	}
}

func TestIfpAddSubGranuleMove(t *testing.T) {
	m := New()
	p := setupLocal(t, m, 0x1000, 100, nil)
	offBefore, _ := tag.LocalFields(p)
	q := m.IfpAdd(p, 7, Cleared) // within the same granule
	offAfter, _ := tag.LocalFields(q)
	if offAfter != offBefore {
		t.Errorf("sub-granule move changed offset %d -> %d", offBefore, offAfter)
	}
}

func TestIfpAddWildUnderflowPoisons(t *testing.T) {
	// Moving the pointer below the object so far that the metadata offset
	// is unencodable loses the metadata irrecoverably.
	m := New()
	p := setupLocal(t, m, 0x10000, 64, nil)
	q := m.IfpAdd(p, -int64(tag.MaxLocalOffset+2)*tag.Granule, Cleared)
	if tag.PoisonOf(q) != tag.Invalid {
		t.Errorf("poison = %v, want invalid", tag.PoisonOf(q))
	}
	// And arithmetic on an invalid pointer keeps it invalid.
	r := m.IfpAdd(q, 1024, Cleared)
	if tag.PoisonOf(r) != tag.Invalid {
		t.Error("invalid pointer revalidated by arithmetic")
	}
}

func TestIfpAddPoisonAgainstBounds(t *testing.T) {
	m := New()
	b := BoundsReg{B: layout.Bounds{Lower: 0x1000, Upper: 0x1040}, Valid: true}
	p := uint64(0x1000) | uint64(tag.SchemeGlobalTable)<<60 // any tagged scheme
	p = tag.MakeGlobal(0x1000, 1)
	q := m.IfpAdd(p, 0x40, b) // one past the end
	if tag.PoisonOf(q) != tag.OOB {
		t.Errorf("poison = %v, want oob", tag.PoisonOf(q))
	}
	q = m.IfpAdd(q, -8, b) // back inside
	if tag.PoisonOf(q) != tag.Valid {
		t.Errorf("poison = %v, want valid", tag.PoisonOf(q))
	}
	q = m.IfpAdd(q, 0x5000, b) // wildly out
	if tag.PoisonOf(q) != tag.OOB {
		t.Errorf("poison = %v, want oob", tag.PoisonOf(q))
	}
}

func TestIfpAddWithoutBoundsKeepsOOB(t *testing.T) {
	m := New()
	p := tag.WithPoison(tag.MakeGlobal(0x2000, 1), tag.OOB)
	q := m.IfpAdd(p, -16, Cleared)
	if tag.PoisonOf(q) != tag.OOB {
		t.Errorf("poison = %v; without bounds the state cannot improve", tag.PoisonOf(q))
	}
}

func TestIfpBndCreatesExactBounds(t *testing.T) {
	m := New()
	b := m.IfpBnd(0x4000, 128)
	if !b.Valid || b.B.Lower != 0x4000 || b.B.Upper != 0x4080 {
		t.Errorf("bounds = %+v", b)
	}
	if m.C.IfpBnd != 1 {
		t.Error("counter")
	}
}

func TestIfpChk(t *testing.T) {
	m := New()
	b := m.IfpBnd(0x4000, 16)
	ok := m.IfpChk(0x4008, 8, b)
	if tag.PoisonOf(ok) != tag.Valid {
		t.Errorf("in-bounds check poisoned: %v", tag.PoisonOf(ok))
	}
	bad := m.IfpChk(0x4008, 16, b) // 8 bytes past the end
	if tag.PoisonOf(bad) != tag.Invalid {
		t.Errorf("failed check poison = %v, want invalid", tag.PoisonOf(bad))
	}
	if m.C.CheckFails != 1 || m.C.Checks != 2 {
		t.Errorf("check counters = %+v", m.C)
	}
	// Cleared bounds: unchecked.
	if q := m.IfpChk(0x9999, 64, Cleared); q != 0x9999 {
		t.Error("cleared-bounds check modified pointer")
	}
}

func TestIfpExtractDemote(t *testing.T) {
	m := New()
	b := m.IfpBnd(0x4000, 16)
	p := tag.MakeLocal(0x4010, 1, 0) // one past the end
	q := m.IfpExtract(p, b)
	if tag.PoisonOf(q) != tag.OOB {
		t.Errorf("demote poison = %v, want oob", tag.PoisonOf(q))
	}
	// The tag itself survives demotion — tags persist in memory.
	if tag.SchemeOf(q) != tag.SchemeLocalOffset {
		t.Error("demote stripped the scheme tag")
	}
	// Demote with cleared bounds is a pure move.
	if q := m.IfpExtract(p, Cleared); q != p {
		t.Error("cleared-bounds demote modified pointer")
	}
	// An invalid pointer stays invalid even if bounds would approve it.
	inv := tag.WithPoison(tag.MakeLocal(0x4004, 1, 0), tag.Invalid)
	if tag.PoisonOf(m.IfpExtract(inv, b)) != tag.Invalid {
		t.Error("demote revalidated an invalid pointer")
	}
}

func TestIfpMacMatchesLibrary(t *testing.T) {
	m := New()
	got := m.IfpMac(0x1000, 64, 0x2000)
	if got != mac.Object(m.Key, 0x1000, 64, 0x2000) {
		t.Error("ifpmac disagrees with mac.Object")
	}
	if m.C.IfpMac != 1 {
		t.Error("counter")
	}
}

func TestIfpMdBuilders(t *testing.T) {
	m := New()
	if p := m.IfpMdLocal(0x1000, 3, 2); tag.SchemeOf(p) != tag.SchemeLocalOffset {
		t.Error("local md")
	}
	if p := m.IfpMdSubheap(0x1000, 1, 2); tag.SchemeOf(p) != tag.SchemeSubheap {
		t.Error("subheap md")
	}
	if p := m.IfpMdGlobal(0x1000, 9); tag.SchemeOf(p) != tag.SchemeGlobalTable {
		t.Error("global md")
	}
	if p := m.IfpMdStrip(tag.MakeGlobal(0x1000, 9)); !tag.IsLegacy(p) || tag.Addr(p) != 0x1000 {
		t.Error("strip")
	}
	if m.C.IfpMd != 4 {
		t.Errorf("IfpMd count = %d", m.C.IfpMd)
	}
}

func TestBoundsSpillRoundTrip(t *testing.T) {
	m := New()
	b := BoundsReg{B: layout.Bounds{Lower: 0x1234, Upper: 0x5678}, Valid: true}
	if err := m.StBnd(0x9000, b); err != nil {
		t.Fatal(err)
	}
	got, err := m.LdBnd(0x9000)
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Errorf("round trip = %+v, want %+v", got, b)
	}
	// Cleared bounds round-trip as cleared.
	if err := m.StBnd(0x9010, Cleared); err != nil {
		t.Fatal(err)
	}
	got, err = m.LdBnd(0x9010)
	if err != nil || got.Valid {
		t.Errorf("cleared round trip = %+v (err %v)", got, err)
	}
	if m.C.LdBnd != 2 || m.C.StBnd != 2 {
		t.Errorf("bounds mem counters = %+v", m.C)
	}
}

func TestLoadStoreCheckedPath(t *testing.T) {
	m := New()
	b := m.IfpBnd(0x4000, 16)
	p := tag.MakeGlobal(0x4000, 1)
	if err := m.Store(p, 0xAB, 1, b); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load(p, 1, b)
	if err != nil || v != 0xAB {
		t.Errorf("load = %#x (err %v)", v, err)
	}
	// Implicit check catches an out-of-bounds store.
	q := tag.MakeGlobal(0x4010, 1)
	if err := m.Store(q, 1, 1, b); !IsTrap(err, TrapBounds) {
		t.Errorf("err = %v, want bounds trap", err)
	}
	// Straddling access: last byte out.
	r := tag.MakeGlobal(0x400c, 1)
	if _, err := m.Load(r, 8, b); !IsTrap(err, TrapBounds) {
		t.Errorf("straddle err = %v, want bounds trap", err)
	}
}

func TestLoadStorePoisonTrap(t *testing.T) {
	m := New()
	p := tag.WithPoison(tag.MakeGlobal(0x4000, 1), tag.OOB)
	if _, err := m.Load(p, 1, Cleared); !IsTrap(err, TrapPoison) {
		t.Errorf("load err = %v", err)
	}
	if err := m.Store(p, 1, 1, Cleared); !IsTrap(err, TrapPoison) {
		t.Errorf("store err = %v", err)
	}
	if m.C.PoisonTraps != 2 {
		t.Errorf("PoisonTraps = %d", m.C.PoisonTraps)
	}
}

func TestLegacyLoadStoreUnchecked(t *testing.T) {
	// Legacy pointers with cleared bounds dereference freely (partial
	// protection only — this is the compatibility story).
	m := New()
	if err := m.Store(0x6000, 7, 8, Cleared); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load(0x6000, 8, Cleared)
	if err != nil || v != 7 {
		t.Errorf("legacy round trip = %d (err %v)", v, err)
	}
	if m.C.Checks != 0 {
		t.Error("legacy access was checked")
	}
}

func TestCycleAccounting(t *testing.T) {
	m := New()
	c0 := m.C.Cycles
	m.Tick(10)
	if m.C.Cycles-c0 != 10 || m.C.Instrs != 10 {
		t.Errorf("tick accounting: %+v", m.C)
	}
	// A cold load pays the miss penalty; a warm one does not.
	if _, err := m.Load(0x7000, 8, Cleared); err != nil {
		t.Fatal(err)
	}
	cold := m.C.Cycles
	if _, err := m.Load(0x7000, 8, Cleared); err != nil {
		t.Fatal(err)
	}
	warm := m.C.Cycles - cold
	if warm != 1 { // pipelined single-cycle hit
		t.Errorf("warm load = %d cycles, want 1", warm)
	}
	coldCost := cold - c0 - 10
	if coldCost != 1+m.Cost.MissPenalty {
		t.Errorf("cold load = %d cycles, want %d", coldCost, 1+m.Cost.MissPenalty)
	}
}

func TestRawAccessors(t *testing.T) {
	m := New()
	if err := m.RawStore64(0x8000, 42); err != nil {
		t.Fatal(err)
	}
	v, err := m.RawLoad64(0x8000)
	if err != nil || v != 42 {
		t.Errorf("raw = %d (err %v)", v, err)
	}
}

func TestCounterClasses(t *testing.T) {
	m := New()
	m.IfpAdd(0, 0, Cleared)
	m.IfpIdx(0, 0)
	m.IfpBnd(0, 8)
	m.IfpChk(0, 1, Cleared)
	m.IfpMac(0, 0, 0)
	m.IfpMdStrip(0)
	m.IfpExtract(0, Cleared)
	if m.C.IfpArith() != 7 {
		t.Errorf("IfpArith = %d, want 7", m.C.IfpArith())
	}
	_ = m.StBnd(0x100, Cleared)
	_, _ = m.LdBnd(0x100)
	if m.C.IfpBoundsMem() != 2 {
		t.Errorf("IfpBoundsMem = %d", m.C.IfpBoundsMem())
	}
	m.Promote(0)
	if m.C.IfpTotal() != 10 {
		t.Errorf("IfpTotal = %d, want 10", m.C.IfpTotal())
	}
}

func TestTrapFormatting(t *testing.T) {
	for _, k := range []TrapKind{TrapPoison, TrapBounds, TrapMetadata, TrapMemory, TrapKind(9)} {
		tr := &Trap{Kind: k, Ptr: 0x1000, Size: 8, Msg: "x"}
		if tr.Error() == "" || k.String() == "" {
			t.Error("empty trap string")
		}
	}
	if IsTrap(nil, TrapPoison) {
		t.Error("nil is a trap")
	}
}

func BenchmarkPromoteLocalHit(b *testing.B) {
	m := New()
	s := layout.StructOf("S", layout.F("a", layout.Int), layout.F("b", layout.Int))
	p := setupLocalBench(m, 0x1000, s.Size(), s)
	m.Promote(p) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Promote(p)
	}
}

func BenchmarkPromoteBypassLegacy(b *testing.B) {
	m := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Promote(0x5000)
	}
}

// setupLocalBench is setupLocal without the testing.T plumbing.
func setupLocalBench(m *Machine, base, size uint64, typ *layout.Type) uint64 {
	var layoutPtr uint64
	if typ != nil {
		tb, err := layout.Build(typ)
		if err != nil {
			panic(err)
		}
		layoutPtr = 0x70_0000
		for i, w := range tb.Encode() {
			if err := m.Mem.Store64(layoutPtr+uint64(i)*8, w); err != nil {
				panic(err)
			}
		}
	}
	metaAddr, _ := metadata.LocalPlacement(base, size)
	md := metadata.Local{Size: uint16(size), LayoutPtr: layoutPtr}
	md.MAC = metadata.LocalMAC(m.Key, base, md.Size, md.LayoutPtr)
	w := md.Encode()
	if err := m.Mem.Store64(metaAddr, w[0]); err != nil {
		panic(err)
	}
	if err := m.Mem.Store64(metaAddr+8, w[1]); err != nil {
		panic(err)
	}
	off, _ := metadata.LocalGranuleOffset(base, metaAddr)
	return tag.MakeLocal(base, off, 0)
}
