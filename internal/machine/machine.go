// Package machine simulates the modified CVA6 core of §4: the IFP unit,
// bounds registers (IFPRs), subheap/global-table control registers, the
// Table-3 instruction set, implicit checking, and a cycle model calibrated
// to a single-issue in-order pipeline with an L1 data cache.
//
// The machine is an architectural simulator, not an RTL model: it executes
// the *semantics* of each instruction bit-exactly (tags, metadata,
// narrowing, poison) and charges cycles according to a small cost model so
// that relative overheads — the quantities the paper's Figures 10-12
// report — are meaningful.
package machine

import (
	"errors"
	"fmt"

	"infat/internal/cache"
	"infat/internal/layout"
	"infat/internal/mac"
	"infat/internal/mem"
	"infat/internal/metadata"
	"infat/internal/tag"
	"infat/internal/temporal"
)

// BoundsReg is the 96-bit bounds register paired with a GPR to form a
// logical IFPR (§3.1). Valid=false models "bounds cleared": the pointer is
// not subject to checking (legacy pointers, or after implicit clearing).
type BoundsReg struct {
	B     layout.Bounds
	Valid bool
}

// Cleared is the bounds-cleared register value.
var Cleared = BoundsReg{}

// CostModel holds the cycle costs of the simulated pipeline. Defaults are
// calibrated to the paper's 50 MHz FPGA system: most instructions are
// single-cycle (§4.1: "implemented in the integer ALU and take a single
// cycle"); promote pays an un-pipelined IFP-unit cost plus its metadata
// memory traffic; the layout walker pays a multi-cycle division per
// array-of-struct level (§5.3).
type CostModel struct {
	MissPenalty   uint64 // extra cycles per L1D miss
	PromoteBase   uint64 // fixed IFP-unit occupancy per metadata-fetching promote
	DivCycles     uint64 // layout-walker division (unconstrained divisor, §5.3)
	SlotDivCycles uint64 // subheap slot division (divisor constrained cheap, §3.3.2)
	MacCycles     uint64 // MAC verify/generate latency
	// GenCheckCycles is the temporal-mode generation comparison charged
	// per metadata-fetching promote (ModeIFPTemporal only): an equality
	// compare of the tag's generation field against the generation store,
	// a narrow-width comparator in the IFP unit (hwcost models its area).
	GenCheckCycles uint64
}

// DefaultCost is the standard calibration.
var DefaultCost = CostModel{MissPenalty: 20, PromoteBase: 2, DivCycles: 12, SlotDivCycles: 2, MacCycles: 2, GenCheckCycles: 1}

// Counters accumulates the dynamic event counts the evaluation reports
// (Table 4, Figure 11) plus cycle and cache-side statistics.
type Counters struct {
	Instrs uint64 // all dynamic instructions, baseline + IFP
	Cycles uint64
	Loads  uint64
	Stores uint64

	Promote       uint64 // promote instructions executed
	PromoteNull   uint64 // bypassed: NULL operand
	PromoteLegacy uint64 // bypassed: non-null legacy operand
	PromotePoison uint64 // bypassed: invalid-poisoned operand
	PromoteValid  uint64 // performed an object-metadata lookup
	PromoteFailed uint64 // metadata fetched but invalid -> output poisoned

	NarrowAttempts uint64 // valid promotes with a non-zero subobject index
	NarrowSuccess  uint64 // subobject bounds produced
	NarrowCoarse   uint64 // coarsened to object bounds (no layout table / type mismatch)

	IfpAdd, IfpIdx, IfpBnd, IfpChk, IfpMac, IfpMd, IfpExtract uint64
	LdBnd, StBnd                                              uint64

	Checks      uint64 // bounds checks performed (implicit + explicit + fused)
	CheckFails  uint64
	PoisonTraps uint64

	MetaFetches     uint64 // object-metadata words fetched
	LayoutFetches   uint64 // layout-table entries fetched
	LayoutDivisions uint64

	GenChecks     uint64 // temporal-mode generation comparisons performed
	GenCheckFails uint64 // stale generations detected (use-after-free)
	TemporalTraps uint64 // TrapTemporal traps raised
}

// IfpArith is Figure 11's "IFP Arithmetic" class: every single-cycle IFP
// instruction (tag updates, bounds creation, checks, MAC, metadata setup).
func (c *Counters) IfpArith() uint64 {
	return c.IfpAdd + c.IfpIdx + c.IfpBnd + c.IfpChk + c.IfpMac + c.IfpMd + c.IfpExtract
}

// IfpBoundsMem is Figure 11's "IFP Bounds Load/Store" class.
func (c *Counters) IfpBoundsMem() uint64 { return c.LdBnd + c.StBnd }

// IfpTotal is every instruction introduced by In-Fat Pointer.
func (c *Counters) IfpTotal() uint64 { return c.Promote + c.IfpArith() + c.IfpBoundsMem() }

// Machine is the simulated core plus its memory system.
type Machine struct {
	Mem *mem.Memory
	L1D *cache.Cache
	Key mac.Key

	// CRs are the 16 subheap control registers (§3.3.2).
	CRs [tag.NumSubheapCRs]metadata.CR
	// GlobalBase/GlobalCap describe the global metadata table (§3.3.3).
	GlobalBase uint64
	GlobalCap  uint32

	Cost CostModel
	C    Counters

	// NoPromote makes promote behave as a nop that treats every pointer
	// as legacy (the paper's no-promote variant, §5.2: "promote has the
	// same cost as a nop").
	NoPromote bool

	// NoNarrow disables the layout-table walker: promote coarsens every
	// subobject-indexed pointer to object bounds. This is the §5.3
	// area-saving ablation ("the IFP implementation may simplify or drop
	// support for layout table"), trading subobject granularity away.
	NoNarrow bool

	// FuelLimit bounds a run's dynamic cost in cycles: when non-zero,
	// CheckFuel trips a TrapFuel resource trap once C.Cycles reaches the
	// limit. This is not an architectural feature of the paper's core —
	// it is the execution budget the analysis service (internal/server)
	// uses so that a guest infinite loop cannot pin a server worker. Zero
	// means unlimited (the default for local CLI and experiment runs).
	FuelLimit uint64

	// TemporalTags switches the 12 shared metadata/subobject tag bits
	// from a subobject index to an allocation generation (ModeIFPTemporal,
	// DESIGN.md §14): promote skips subobject narrowing and instead
	// compares the pointer's generation field against Gens, poisoning
	// mismatches Stale; dereferencing a Stale pointer raises TrapTemporal.
	// Off (the default) in every spatial mode — with it off, Gens is
	// never consulted and Stale is never produced.
	TemporalTags bool
	// Gens is the generation store consulted when TemporalTags is set.
	// The runtime that owns the machine stamps generations at malloc and
	// bumps them on free; the machine only reads it.
	Gens *temporal.Store

	// macMemo caches mac.Object computations for the metadata-MAC
	// verification promote performs on every valid lookup. Hardware
	// computes the SipHash in a fixed MacCycles pipeline (still charged);
	// the memo only spares the host the recomputation when the same
	// metadata record is verified repeatedly — the steady state of every
	// pointer-chasing loop. An entry matches only when the key AND all
	// three MAC'd fields are equal, so it returns exactly what
	// mac.Object would: tampered metadata changes the fields (memo miss,
	// honest recompute) or the stored MAC (memo hit, still a mismatch),
	// and a chaos-swapped key misses on the key compare. Entries are
	// pure math (key, fields) -> MAC, so they stay correct across Reset.
	macMemo [macMemoSize]macEntry
}

// macMemoSize is the direct-mapped MAC memo's entry count; 256 covers the
// distinct metadata records (blocks, stack frames) a workload's hot loops
// revisit. Must be a power of two.
const macMemoSize = 256

type macEntry struct {
	key          mac.Key
	base, f2, f3 uint64
	got          uint64
	ok           bool
}

// objectMAC is a memoized mac.Object(m.Key, base, f2, f3).
func (m *Machine) objectMAC(base, f2, f3 uint64) uint64 {
	e := &m.macMemo[(base>>4)&(macMemoSize-1)]
	if e.ok && e.key == m.Key && e.base == base && e.f2 == f2 && e.f3 == f3 {
		return e.got
	}
	got := mac.Object(m.Key, base, f2, f3)
	*e = macEntry{key: m.Key, base: base, f2: f2, f3: f3, got: got, ok: true}
	return got
}

// DefaultKeySeed seeds the MAC key of every freshly built (or reset)
// machine. A fixed seed keeps runs reproducible; chaos scenarios swap the
// key explicitly when they want mismatches.
const DefaultKeySeed = 0x1F2E3D4C

// New builds a machine with the default CVA6-like configuration.
func New() *Machine {
	return &Machine{
		Mem:  mem.New(),
		L1D:  cache.New(cache.CVA6L1D),
		Key:  mac.NewKey(DefaultKeySeed),
		Cost: DefaultCost,
	}
}

// Reset restores the machine to its New-time architectural state —
// memory unmapped, cache cold, default MAC key, control registers and
// global-table base cleared, default cost model, all counters zero, no
// ablation flags, no fuel limit — while keeping the backing Memory and
// Cache structures for reuse. A reset machine is observationally
// identical to a fresh one.
func (m *Machine) Reset() {
	m.Mem.Reset()
	m.L1D.Reset()
	m.Key = mac.NewKey(DefaultKeySeed)
	m.CRs = [tag.NumSubheapCRs]metadata.CR{}
	m.GlobalBase, m.GlobalCap = 0, 0
	m.Cost = DefaultCost
	m.C = Counters{}
	m.NoPromote, m.NoNarrow = false, false
	m.FuelLimit = 0
	m.TemporalTags, m.Gens = false, nil
}

// TrapKind classifies architectural traps.
type TrapKind int

// Trap kinds.
const (
	// TrapPoison is a memory access through a non-valid-poisoned pointer.
	TrapPoison TrapKind = iota
	// TrapBounds is a failed fused/implicit access-size check.
	TrapBounds
	// TrapMetadata is invalid object metadata encountered by promote.
	TrapMetadata
	// TrapMemory is a memory-system fault (address wrap etc.).
	TrapMemory
	// TrapFuel is exhaustion of the run's execution budget (FuelLimit) —
	// a resource trap, not a spatial detection.
	TrapFuel
	// TrapAlloc is an allocator failure (arena/buddy exhaustion, metadata
	// table full, an injected fault): the runtime could not produce the
	// requested object. Like TrapFuel it is a resource trap, not a
	// spatial detection.
	TrapAlloc
	// TrapInternal is a recovered simulator panic: a bug in the simulator
	// itself, never a legitimate guest-visible outcome. RunC*/server
	// boundaries convert escaped panics into this kind so a hostile input
	// yields a classified error instead of killing the process; any
	// occurrence is counted and treated as a defect.
	TrapInternal
	// TrapTemporal is a temporal-safety detection (ModeIFPTemporal only):
	// a dereference through a stale-generation pointer (use-after-free)
	// or a free of a chunk whose stored generation is already ahead of
	// the freeing pointer (double free). Appended after TrapInternal so
	// every pre-existing kind keeps its numeric value.
	TrapTemporal
)

func (k TrapKind) String() string {
	switch k {
	case TrapPoison:
		return "poisoned-pointer"
	case TrapBounds:
		return "bounds"
	case TrapMetadata:
		return "metadata"
	case TrapMemory:
		return "memory"
	case TrapFuel:
		return "fuel"
	case TrapAlloc:
		return "alloc"
	case TrapInternal:
		return "internal"
	case TrapTemporal:
		return "temporal"
	}
	return fmt.Sprintf("trap(%d)", int(k))
}

// Trap is the simulator's exception record.
type Trap struct {
	Kind TrapKind
	Ptr  uint64 // offending pointer (tagged)
	Size int    // access size, if applicable
	Msg  string
	// Cause is the underlying error, if the trap wraps one (allocator
	// traps keep the heap error that triggered them). Exposed through
	// Unwrap so errors.Is/errors.As see through the trap.
	Cause error
}

func (t *Trap) Error() string {
	return fmt.Sprintf("trap[%s] ptr=%s size=%d: %s", t.Kind, tag.Format(t.Ptr), t.Size, t.Msg)
}

// Unwrap exposes the trap's underlying cause to the errors package.
func (t *Trap) Unwrap() error { return t.Cause }

// IsTrap reports whether err is, or wraps (errors.As), a Trap of the
// given kind — so it classifies both a raw machine trap and the
// *minic.RunError the VM surfaces one inside.
func IsTrap(err error, kind TrapKind) bool {
	var t *Trap
	return errors.As(err, &t) && t.Kind == kind
}

// RecoverInternal converts an escaped panic into a TrapInternal error.
// Use it as `defer machine.RecoverInternal(&err)` at the outermost
// simulator boundaries (infat.RunC*, server workers): a simulator bug
// then surfaces as a typed, countable error instead of killing the
// process. The message records only the panic value — no stack, no
// goroutine IDs — so recovered traps stay deterministic across runs.
// Errors already in flight are left untouched.
func RecoverInternal(err *error) {
	if r := recover(); r != nil {
		*err = &Trap{Kind: TrapInternal, Msg: fmt.Sprintf("recovered panic: %v", r)}
	}
}

// CheckFuel reports budget exhaustion: a TrapFuel trap once the machine
// has consumed FuelLimit cycles (nil while within budget or when no
// limit is set). The MiniC VM polls it once per interpreted step, so a
// run is cut off on the first step at or past the limit — the trap may
// land a few cycles after the exact boundary, never before it.
func (m *Machine) CheckFuel() error {
	if m.FuelLimit != 0 && m.C.Cycles >= m.FuelLimit {
		return &Trap{Kind: TrapFuel,
			Msg: fmt.Sprintf("execution budget of %d cycles exhausted", m.FuelLimit)}
	}
	return nil
}

// Tick models n ordinary (non-memory) baseline instructions: the ALU work
// of the application itself. Workloads call it so that IFP instruction
// overhead is measured against a realistic instruction stream.
func (m *Machine) Tick(n uint64) {
	m.C.Instrs += n
	m.C.Cycles += n
}

// dataAccess charges one data-memory access through the L1D. The TryHit
// probe resolves the common single-line MRU hit with inlined code — its
// effect is exactly Access with zero misses — and everything else takes
// the full model.
func (m *Machine) dataAccess(addr uint64, size int, store bool) {
	if m.L1D.TryHit(addr, size, store) {
		m.C.Cycles++
		return
	}
	misses := m.L1D.Access(addr, size, store)
	m.C.Cycles += 1 + uint64(misses)*m.Cost.MissPenalty
}

// Load performs a checked load of size bytes through pointer p. breg is
// the bounds register paired with p's GPR; when it holds valid bounds the
// load-store unit performs the implicit access-size check (§4.1.1). All
// loads check poison bits (§3.2).
func (m *Machine) Load(p uint64, size int, breg BoundsReg) (uint64, error) {
	m.C.Instrs++
	m.C.Loads++
	if !m.accessOK(p, size, breg) {
		return 0, m.checkTrap(p, size, breg)
	}
	addr := tag.Addr(p)
	m.dataAccess(addr, size, false)
	v, err := m.Mem.LoadN(addr, size)
	if err != nil {
		return 0, &Trap{Kind: TrapMemory, Ptr: p, Size: size, Msg: err.Error()}
	}
	return v, nil
}

// Store performs a checked store of the low size bytes of v through p.
func (m *Machine) Store(p uint64, v uint64, size int, breg BoundsReg) error {
	m.C.Instrs++
	m.C.Stores++
	if !m.accessOK(p, size, breg) {
		return m.checkTrap(p, size, breg)
	}
	addr := tag.Addr(p)
	m.dataAccess(addr, size, true)
	if err := m.Mem.StoreN(addr, v, size); err != nil {
		return &Trap{Kind: TrapMemory, Ptr: p, Size: size, Msg: err.Error()}
	}
	return nil
}

// accessOK is the fast half of the LSU-side access check: the poison test
// (§3.2) plus the implicit access-size check against the paired bounds
// register (§4.1.1). It performs the success-path counter update (Checks
// is charged before the bounds compare, like the hardware) but builds no
// error values, which keeps it inside the inlining budget of Load/Store;
// on failure checkTrap re-derives the cause out of line.
func (m *Machine) accessOK(p uint64, size int, breg BoundsReg) bool {
	if tag.PoisonOf(p) != tag.Valid {
		return false
	}
	if breg.Valid {
		m.C.Checks++
		return breg.B.Contains(tag.Addr(p), uint64(size))
	}
	return true
}

// checkTrap is the cold half of accessOK: it classifies the failure,
// charges the trap counter, and builds the Trap. accessOK has already
// charged Checks when the failure is a bounds miss.
func (m *Machine) checkTrap(p uint64, size int, breg BoundsReg) error {
	if ps := tag.PoisonOf(p); ps != tag.Valid {
		if ps == tag.Stale && m.TemporalTags {
			m.C.TemporalTraps++
			return &Trap{Kind: TrapTemporal, Ptr: p, Size: size,
				Msg: "use-after-free: dereference of stale-generation pointer"}
		}
		m.C.PoisonTraps++
		return &Trap{Kind: TrapPoison, Ptr: p, Size: size,
			Msg: fmt.Sprintf("dereference of %s pointer", ps)}
	}
	m.C.CheckFails++
	return &Trap{Kind: TrapBounds, Ptr: p, Size: size,
		Msg: fmt.Sprintf("access outside %v", breg.B)}
}

// RawLoad64 / RawStore64 are uninstrumented accesses used by the runtime
// itself (metadata initialization, allocator bookkeeping). They count as
// ordinary instructions — the paper's instrumentation overhead includes
// the runtime's own work — but perform no tag or bounds checks.
func (m *Machine) RawLoad64(addr uint64) (uint64, error) {
	m.C.Instrs++
	m.C.Loads++
	m.dataAccess(addr, 8, false)
	return m.Mem.Load64(addr)
}

// RawStore64 stores one word without checks (runtime-internal).
func (m *Machine) RawStore64(addr uint64, v uint64) error {
	m.C.Instrs++
	m.C.Stores++
	m.dataAccess(addr, 8, true)
	return m.Mem.Store64(addr, v)
}
