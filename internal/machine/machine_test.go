package machine

import (
	"testing"

	"infat/internal/layout"
	"infat/internal/metadata"
	"infat/internal/tag"
)

// setupLocal registers a local-offset object of the given size at base in
// m's guest memory, optionally with a layout table for typ, and returns a
// valid pointer to its base. It performs by hand what the runtime package
// automates, so machine tests do not depend on rt.
func setupLocal(t *testing.T, m *Machine, base, size uint64, typ *layout.Type) uint64 {
	t.Helper()
	var layoutPtr uint64
	if typ != nil {
		tb, err := layout.Build(typ)
		if err != nil {
			t.Fatal(err)
		}
		layoutPtr = 0x70_0000
		for i, w := range tb.Encode() {
			if err := m.Mem.Store64(layoutPtr+uint64(i)*8, w); err != nil {
				t.Fatal(err)
			}
		}
	}
	metaAddr, _ := metadata.LocalPlacement(base, size)
	md := metadata.Local{Size: uint16(size), LayoutPtr: layoutPtr}
	md.MAC = metadata.LocalMAC(m.Key, base, md.Size, md.LayoutPtr)
	w := md.Encode()
	if err := m.Mem.Store64(metaAddr, w[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Store64(metaAddr+8, w[1]); err != nil {
		t.Fatal(err)
	}
	off, ok := metadata.LocalGranuleOffset(base, metaAddr)
	if !ok {
		t.Fatalf("offset not encodable for size %d", size)
	}
	return tag.MakeLocal(base, off, 0)
}

func TestPromoteLocalObjectBounds(t *testing.T) {
	m := New()
	p := setupLocal(t, m, 0x1000, 64, nil)
	q, b := m.Promote(p)
	if !b.Valid {
		t.Fatal("no bounds retrieved")
	}
	if b.B.Lower != 0x1000 || b.B.Upper != 0x1040 {
		t.Errorf("bounds = %v", b.B)
	}
	if tag.PoisonOf(q) != tag.Valid {
		t.Errorf("poison = %v", tag.PoisonOf(q))
	}
	if m.C.PromoteValid != 1 || m.C.Promote != 1 {
		t.Errorf("counters = %+v", m.C)
	}
}

func TestPromoteFromInteriorPointer(t *testing.T) {
	// The granule offset lets any interior pointer reach the metadata.
	m := New()
	p := setupLocal(t, m, 0x1000, 100, nil)
	interior := m.IfpAdd(p, 48, Cleared)
	_, b := m.Promote(interior)
	if !b.Valid || b.B.Lower != 0x1000 || b.B.Upper != 0x1064 {
		t.Errorf("bounds = %+v", b)
	}
}

func TestPromoteLegacyAndNull(t *testing.T) {
	m := New()
	q, b := m.Promote(0) // NULL
	if b.Valid || q != 0 {
		t.Error("NULL promote retrieved bounds")
	}
	q, b = m.Promote(0x5000) // legacy non-null
	if b.Valid || q != 0x5000 {
		t.Error("legacy promote retrieved bounds")
	}
	if m.C.PromoteNull != 1 || m.C.PromoteLegacy != 1 || m.C.PromoteValid != 0 {
		t.Errorf("bypass counters = %+v", m.C)
	}
}

func TestPromoteInvalidPoisonBypasses(t *testing.T) {
	m := New()
	p := tag.WithPoison(tag.MakeLocal(0x1000, 1, 0), tag.Invalid)
	q, b := m.Promote(p)
	if b.Valid {
		t.Error("invalid pointer promote retrieved bounds")
	}
	if tag.PoisonOf(q) != tag.Invalid {
		t.Error("poison lost")
	}
	if m.C.PromotePoison != 1 || m.C.MetaFetches != 0 {
		t.Errorf("counters = %+v", m.C)
	}
}

func TestPromoteTamperedMACPoisons(t *testing.T) {
	m := New()
	p := setupLocal(t, m, 0x1000, 64, nil)
	// Legacy code "corrupts" the size field of the metadata.
	metaAddr, _ := metadata.LocalPlacement(0x1000, 64)
	w0, _ := m.Mem.Load64(metaAddr)
	if err := m.Mem.Store64(metaAddr, w0&^uint64(0xFFFF)|512); err != nil {
		t.Fatal(err)
	}
	q, b := m.Promote(p)
	if b.Valid {
		t.Error("tampered metadata yielded bounds")
	}
	if tag.PoisonOf(q) != tag.Invalid {
		t.Errorf("poison = %v, want invalid", tag.PoisonOf(q))
	}
	if m.C.PromoteFailed != 1 {
		t.Errorf("PromoteFailed = %d", m.C.PromoteFailed)
	}
	// Dereferencing the poisoned pointer traps.
	if _, err := m.Load(q, 8, Cleared); !IsTrap(err, TrapPoison) {
		t.Errorf("deref err = %v", err)
	}
}

func TestPromoteNarrowsToSubobject(t *testing.T) {
	// Listing 1: a pointer to s.vulnerable narrowed via the layout table.
	m := New()
	s := layout.StructOf("S",
		layout.F("vulnerable", layout.ArrayOf(layout.Char, 12)),
		layout.F("sensitive", layout.ArrayOf(layout.Char, 12)))
	p := setupLocal(t, m, 0x2000, s.Size(), s)
	// Narrow to subobject 1 (vulnerable) — instrumentation would emit
	// ifpadd + ifpidx for &s->vulnerable.
	p = m.IfpIdx(p, 1)
	q, b := m.Promote(p)
	if !b.Valid {
		t.Fatal("no bounds")
	}
	if b.B.Lower != 0x2000 || b.B.Upper != 0x200c {
		t.Errorf("narrowed bounds = %v", b.B)
	}
	if m.C.NarrowSuccess != 1 || m.C.NarrowAttempts != 1 {
		t.Errorf("narrow counters = %+v", m.C)
	}
	// Writing the 13th byte (first byte of sensitive) must fail the check.
	over := m.IfpAdd(q, 12, b)
	if err := m.Store(over, 1, 1, b); !IsTrap(err, TrapPoison) && !IsTrap(err, TrapBounds) {
		t.Errorf("intra-object overflow err = %v", err)
	}
	if m.C.CheckFails == 0 && m.C.PoisonTraps == 0 {
		t.Error("no failure recorded")
	}
}

func TestPromoteArrayOfStructNarrowing(t *testing.T) {
	// Figure 9's struct S with a pointer to array[1].v3.
	m := New()
	nested := layout.StructOf("NestedTy", layout.F("v3", layout.Int), layout.F("v4", layout.Int))
	s := layout.StructOf("S",
		layout.F("v1", layout.Int),
		layout.F("array", layout.ArrayOf(nested, 2)),
		layout.F("v5", layout.Int))
	p := setupLocal(t, m, 0x3000, s.Size(), s)
	p = m.IfpAdd(p, 4+8, Cleared) // &s.array[1].v3
	p = m.IfpIdx(p, 3)
	_, b := m.Promote(p)
	if !b.Valid || b.B.Lower != 0x300c || b.B.Upper != 0x3010 {
		t.Errorf("bounds = %+v", b)
	}
	if m.C.LayoutDivisions != 1 {
		t.Errorf("divisions = %d, want 1", m.C.LayoutDivisions)
	}
}

func TestPromoteNoLayoutTableCoarsens(t *testing.T) {
	// CoreMark/bzip2 case (§5.2.1): metadata has no layout table, so a
	// non-zero subobject index coarsens to object bounds.
	m := New()
	p := setupLocal(t, m, 0x4000, 64, nil)
	p = m.IfpIdx(p, 3)
	_, b := m.Promote(p)
	if !b.Valid || b.B.Lower != 0x4000 || b.B.Upper != 0x4040 {
		t.Errorf("bounds = %+v", b)
	}
	if m.C.NarrowCoarse != 1 || m.C.NarrowSuccess != 0 {
		t.Errorf("narrow counters = %+v", m.C)
	}
}

func TestNoPromoteVariant(t *testing.T) {
	m := New()
	p := setupLocal(t, m, 0x1000, 64, nil)
	m.NoPromote = true
	base := m.C.Cycles
	q, b := m.Promote(p)
	if b.Valid {
		t.Error("no-promote retrieved bounds")
	}
	if q != p {
		t.Error("no-promote changed the pointer")
	}
	if m.C.Cycles-base != 1 {
		t.Errorf("no-promote cost = %d cycles, want 1 (nop)", m.C.Cycles-base)
	}
	if m.C.MetaFetches != 0 {
		t.Error("no-promote fetched metadata")
	}
}

func TestSubheapPromote(t *testing.T) {
	m := New()
	// Block at 0x10000, 4 KiB, metadata at offset 0, slots of 96 bytes
	// holding 80-byte objects starting at offset 64.
	m.CRs[3] = metadata.CR{Valid: true, BlockBits: 12, MetaOffset: 0}
	md := metadata.Subheap{SlotStart: 64, SlotEnd: 64 + 8*96, SlotSize: 96, ObjSize: 80}
	md.MAC = metadata.SubheapMAC(m.Key, 0x10000, md)
	for i, w := range md.Encode() {
		if err := m.Mem.Store64(0x10000+uint64(i)*8, w); err != nil {
			t.Fatal(err)
		}
	}
	// Pointer into the third slot.
	addr := uint64(0x10000 + 64 + 2*96 + 10)
	p := tag.MakeSubheap(addr, 3, 0)
	q, b := m.Promote(p)
	if !b.Valid {
		t.Fatal("no bounds")
	}
	wantLo := uint64(0x10000 + 64 + 2*96)
	if b.B.Lower != wantLo || b.B.Upper != wantLo+80 {
		t.Errorf("bounds = %v, want [%#x,%#x)", b.B, wantLo, wantLo+80)
	}
	if tag.PoisonOf(q) != tag.Valid {
		t.Errorf("poison = %v", tag.PoisonOf(q))
	}
}

func TestSubheapPromoteInvalidCR(t *testing.T) {
	m := New()
	p := tag.MakeSubheap(0x10000, 5, 0) // CR 5 never configured
	q, b := m.Promote(p)
	if b.Valid || tag.PoisonOf(q) != tag.Invalid {
		t.Error("invalid CR did not poison")
	}
}

func TestSubheapPromoteOutsideSlots(t *testing.T) {
	m := New()
	m.CRs[0] = metadata.CR{Valid: true, BlockBits: 12, MetaOffset: 0}
	md := metadata.Subheap{SlotStart: 64, SlotEnd: 160, SlotSize: 96, ObjSize: 96}
	md.MAC = metadata.SubheapMAC(m.Key, 0x20000, md)
	for i, w := range md.Encode() {
		if err := m.Mem.Store64(0x20000+uint64(i)*8, w); err != nil {
			t.Fatal(err)
		}
	}
	// Pointer into the metadata zone (offset 8): not a slot.
	q, b := m.Promote(tag.MakeSubheap(0x20008, 0, 0))
	if b.Valid || tag.PoisonOf(q) != tag.Invalid {
		t.Error("pointer outside slot array did not poison")
	}
}

func TestGlobalTablePromote(t *testing.T) {
	m := New()
	m.GlobalBase = 0x80000
	m.GlobalCap = 64
	row := metadata.GlobalRow{Base: 0x9000, Size: 4096, LayoutPtr: 0}
	w := row.Encode()
	if err := m.Mem.Store64(metadata.RowAddr(m.GlobalBase, 7), w[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Store64(metadata.RowAddr(m.GlobalBase, 7)+8, w[1]); err != nil {
		t.Fatal(err)
	}
	p := tag.MakeGlobal(0x9100, 7)
	_, b := m.Promote(p)
	if !b.Valid || b.B.Lower != 0x9000 || b.B.Upper != 0xa000 {
		t.Errorf("bounds = %+v", b)
	}
}

func TestGlobalTablePromoteFreeRowOrOutOfRange(t *testing.T) {
	m := New()
	m.GlobalBase = 0x80000
	m.GlobalCap = 16
	// Free row.
	q, b := m.Promote(tag.MakeGlobal(0x9100, 3))
	if b.Valid || tag.PoisonOf(q) != tag.Invalid {
		t.Error("free row did not poison")
	}
	// Index beyond the configured capacity.
	q, b = m.Promote(tag.MakeGlobal(0x9100, 100))
	if b.Valid || tag.PoisonOf(q) != tag.Invalid {
		t.Error("out-of-range index did not poison")
	}
	// No table configured at all.
	m2 := New()
	q, b = m2.Promote(tag.MakeGlobal(0x9100, 0))
	if b.Valid || tag.PoisonOf(q) != tag.Invalid {
		t.Error("unconfigured table did not poison")
	}
}

func TestPromoteOffByOnePointerIsOOB(t *testing.T) {
	// C permits one-past-the-end pointers (§3.2 footnote); promote marks
	// them recoverable-OOB, and dereference traps while arithmetic back
	// in range revalidates.
	m := New()
	p := setupLocal(t, m, 0x1000, 64, nil)
	end := m.IfpAdd(p, 64, Cleared)
	q, b := m.Promote(end)
	if tag.PoisonOf(q) != tag.OOB {
		t.Fatalf("poison = %v, want oob", tag.PoisonOf(q))
	}
	if _, err := m.Load(q, 1, b); !IsTrap(err, TrapPoison) {
		t.Errorf("deref of OOB pointer err = %v", err)
	}
	back := m.IfpAdd(q, -1, b)
	if tag.PoisonOf(back) != tag.Valid {
		t.Errorf("poison after re-entry = %v, want valid", tag.PoisonOf(back))
	}
	if _, err := m.Load(back, 1, b); err != nil {
		t.Errorf("in-bounds deref err = %v", err)
	}
}
