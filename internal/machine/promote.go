package machine

import (
	"errors"

	"infat/internal/layout"
	"infat/internal/metadata"
	"infat/internal/tag"
)

// Promote implements the promote instruction (Figure 5 + Figure 2): it
// takes a tagged pointer and produces an IFPR — the pointer (with poison
// bits refreshed) plus a bounds register holding the retrieved bounds.
//
// Flow, exactly per Figure 5:
//  1. An Invalid-poisoned pointer bypasses retrieval entirely: metadata
//     lookup with a garbage address could fault or false-positive (§3.2).
//  2. A legacy pointer (scheme selector 00, which includes NULL) has its
//     bounds cleared and is not subject to checking.
//  3. Otherwise the scheme selector dispatches the object-metadata lookup;
//     fetched-but-invalid metadata poisons the output IFPR.
//  4. If the metadata carries a layout table and the subobject index is
//     non-zero, subobject bounds narrowing runs (Figure 2, §3.4).
//
// Promote also fuses a check (§4.1): the output pointer's poison bits are
// set from its position relative to the retrieved bounds.
func (m *Machine) Promote(p uint64) (uint64, BoundsReg) {
	m.C.Instrs++
	m.C.Promote++
	m.C.Cycles++

	if m.NoPromote {
		// §5.2's no-promote variant: same cost as a nop, every pointer
		// treated as legacy.
		return p, Cleared
	}

	if ps := tag.PoisonOf(p); ps == tag.Invalid || (m.TemporalTags && ps == tag.Stale) {
		// A Stale pointer stays stale across re-promotion in temporal
		// mode: the generation mismatch already proved the chunk was
		// freed, and a later reallocation must not re-validate it. In
		// spatial modes 0b10 is an undefined encoding and falls through
		// to the lookup as before, so this branch changes nothing there.
		m.C.PromotePoison++
		return p, Cleared
	}
	if tag.IsLegacy(p) {
		if tag.Addr(p) == 0 {
			m.C.PromoteNull++
		} else {
			m.C.PromoteLegacy++
		}
		return p, Cleared
	}

	m.C.PromoteValid++
	m.C.Cycles += m.Cost.PromoteBase

	var (
		objBase, objSize uint64
		layoutPtr        uint64
		ok               bool
	)
	switch tag.SchemeOf(p) {
	case tag.SchemeLocalOffset:
		objBase, objSize, layoutPtr, ok = m.lookupLocal(p)
	case tag.SchemeSubheap:
		objBase, objSize, layoutPtr, ok = m.lookupSubheap(p)
	case tag.SchemeGlobalTable:
		objBase, objSize, layoutPtr, ok = m.lookupGlobal(p)
	}
	if !ok {
		m.C.PromoteFailed++
		return tag.WithPoison(p, tag.Invalid), Cleared
	}

	b := layout.Bounds{Lower: objBase, Upper: objBase + objSize}

	// Temporal mode: the 12 shared bits carry an allocation generation,
	// not a subobject index, so narrowing is skipped entirely and the
	// generation is compared against the store instead (DESIGN.md §14).
	// Schemes without a generation field (global-table) pass unchecked —
	// the same bit-budget trade-off that denies them narrowing.
	if m.TemporalTags {
		if g, has := tag.Gen(p); has {
			m.C.GenChecks++
			m.C.Cycles += m.Cost.GenCheckCycles
			if !tag.GenMatches(g, m.Gens.Gen(objBase), tag.GenBits(tag.SchemeOf(p))) {
				m.C.GenCheckFails++
				return tag.WithPoison(p, tag.Stale), Cleared
			}
		}
		ps := poisonFor(b, tag.Addr(p))
		if tag.PoisonOf(p) == tag.OOB {
			ps = tag.OOB
		}
		return tag.WithPoison(p, ps), BoundsReg{B: b, Valid: true}
	}

	// Subobject bounds narrowing (§3.4).
	if sub, has := tag.SubobjIndex(p); has && sub != 0 {
		m.C.NarrowAttempts++
		if m.NoNarrow {
			// Walker ablation: object-granularity protection only.
			m.C.NarrowCoarse++
		} else if layoutPtr == 0 {
			// The object metadata carries no layout-table information
			// (e.g. allocation through an opaque wrapper, §5.2.1:
			// CoreMark/bzip2); bounds coarsen to the object.
			m.C.NarrowCoarse++
		} else {
			nb, st, err := layout.Narrow(m.layoutFetcher(), layoutPtr,
				objBase, objSize, tag.Addr(p), sub)
			m.C.LayoutFetches += uint64(st.Fetches)
			m.C.LayoutDivisions += uint64(st.Divisions)
			m.C.Cycles += uint64(st.Divisions) * m.Cost.DivCycles
			switch {
			case err == nil:
				m.C.NarrowSuccess++
				b = nb
			case errors.Is(err, layout.ErrOutsideSub):
				// Pointer/type mismatch: the paper guarantees object-
				// bounds protection in this case (§3).
				m.C.NarrowCoarse++
				b = nb
			default:
				// Malformed table: irrecoverable.
				m.C.PromoteFailed++
				return tag.WithPoison(p, tag.Invalid), Cleared
			}
		}
	}

	// Fused check: promote may only *downgrade* the poison state. An
	// OOB-poisoned pointer must stay OOB even when the retrieved bounds
	// contain its address: a one-past-the-end subheap pointer resolves to
	// the *neighbouring slot's* object, and trusting that would re-
	// validate a genuine overflow. (The local-offset and global-table
	// schemes are unambiguous — their tags name the object — but the
	// rule is uniform in hardware.)
	ps := poisonFor(b, tag.Addr(p))
	if tag.PoisonOf(p) == tag.OOB {
		ps = tag.OOB
	}
	return tag.WithPoison(p, ps), BoundsReg{B: b, Valid: true}
}

// fetchMetaWord reads one object-metadata word through the L1D, charging
// cycles; promote's metadata traffic is unpipelined in the prototype
// (§5.2.2), which the PromoteBase constant already covers.
func (m *Machine) fetchMetaWord(addr uint64) (uint64, bool) {
	m.C.MetaFetches++
	misses := m.L1D.Access(addr, 8, false)
	m.C.Cycles += 1 + uint64(misses)*m.Cost.MissPenalty
	v, err := m.Mem.Load64(addr)
	if err != nil {
		return 0, false
	}
	return v, true
}

// fetchMetaWords reads n=len(w) consecutive metadata words through the
// L1D with one tag probe per line (cache.AccessWords); counters and cycle
// charges are identical to n fetchMetaWord calls. Reordering the cache
// probes before the memory reads is sound because the cache model never
// reads memory and the memory never consults the cache. A non-wrapping
// range cannot fault (Load64 only faults on address wrap), so the batched
// path charges everything up front; the wrap fallback — unreachable from
// real metadata addresses, which live in the 48-bit tagged space — keeps
// word-at-a-time fault ordering.
func (m *Machine) fetchMetaWords(addr uint64, w []uint64) bool {
	n := uint64(len(w))
	if addr+n*8 < addr {
		for i := range w {
			v, ok := m.fetchMetaWord(addr + uint64(i)*8)
			if !ok {
				return false
			}
			w[i] = v
		}
		return true
	}
	m.C.MetaFetches += n
	misses := m.L1D.AccessWords(addr, len(w))
	m.C.Cycles += n + uint64(misses)*m.Cost.MissPenalty
	for i := range w {
		v, err := m.Mem.Load64(addr + uint64(i)*8)
		if err != nil {
			return false
		}
		w[i] = v
	}
	return true
}

// layoutFetcher adapts fetchMetaWords to the layout walker's interface,
// charging each entry fetch (two words, but the entry is 16-byte aligned
// so it is a single line touch in practice).
func (m *Machine) layoutFetcher() layout.FetchFunc {
	return func(entryAddr uint64) (uint64, uint64, error) {
		var w [2]uint64
		if !m.fetchMetaWords(entryAddr, w[:]) {
			return 0, 0, layout.ErrBadTable
		}
		return w[0], w[1], nil
	}
}

// lookupLocal implements the local-offset metadata lookup (Figure 6): the
// tag's granule offset reaches the metadata appended to the object; the
// object base is derived from the metadata address and the stored size.
func (m *Machine) lookupLocal(p uint64) (base, size, layoutPtr uint64, ok bool) {
	off, _ := tag.LocalFields(p)
	metaAddr := metadata.LocalMetaAddr(tag.Addr(p), off)
	var w [2]uint64
	if !m.fetchMetaWords(metaAddr, w[:]) {
		return 0, 0, 0, false
	}
	md := metadata.DecodeLocal(w[0], w[1])
	if md.Size == 0 || uint64(md.Size) > tag.MaxLocalObjectSize {
		return 0, 0, 0, false
	}
	base = metadata.LocalObjectBase(metaAddr, md.Size)
	m.C.Cycles += m.Cost.MacCycles
	if m.objectMAC(metadata.LocalMACFields(base, md.Size, md.LayoutPtr)) != md.MAC {
		return 0, 0, 0, false
	}
	return base, uint64(md.Size), md.LayoutPtr, true
}

// lookupSubheap implements the subheap metadata lookup (Figure 7): the
// tag's control-register index selects block geometry; the block's shared
// metadata locates the slot containing the pointer.
func (m *Machine) lookupSubheap(p uint64) (base, size, layoutPtr uint64, ok bool) {
	crIdx, _ := tag.SubheapFields(p)
	cr := m.CRs[crIdx]
	if !cr.Valid {
		return 0, 0, 0, false
	}
	metaAddr := cr.MetaAddr(tag.Addr(p))
	var w [4]uint64
	if !m.fetchMetaWords(metaAddr, w[:]) {
		return 0, 0, 0, false
	}
	md := metadata.DecodeSubheap(w)
	blockBase := cr.BlockBase(tag.Addr(p))
	m.C.Cycles += m.Cost.MacCycles
	if m.objectMAC(metadata.SubheapMACFields(blockBase, md)) != md.MAC {
		return 0, 0, 0, false
	}
	// Slot division: the paper constrains slot sizes to keep this cheap
	// (§3.3.2: power of two or fixed integer multiple of power of two).
	m.C.Cycles += m.Cost.SlotDivCycles
	objBase, okSlot := md.Slot(blockBase, tag.Addr(p))
	if !okSlot {
		return 0, 0, 0, false
	}
	return objBase, uint64(md.ObjSize), md.LayoutPtr, true
}

// lookupGlobal implements the global-table lookup (Figure 8): the tag's
// 12-bit index selects a row of the table at GlobalBase.
func (m *Machine) lookupGlobal(p uint64) (base, size, layoutPtr uint64, ok bool) {
	idx := tag.GlobalIndex(p)
	if m.GlobalBase == 0 || uint32(idx) >= m.GlobalCap {
		return 0, 0, 0, false
	}
	rowAddr := metadata.RowAddr(m.GlobalBase, idx)
	var w [2]uint64
	if !m.fetchMetaWords(rowAddr, w[:]) {
		return 0, 0, 0, false
	}
	row := metadata.DecodeGlobalRow(w[0], w[1])
	if row.IsFree() {
		return 0, 0, 0, false
	}
	return row.Base, row.Size, row.LayoutPtr, true
}
