package machine

import "fmt"

// RegFile models the paired register files of §3.1/§4.1.2: 32 general-
// purpose registers, each with an associated 96-bit bounds register
// forming a logical IFPR. It enforces the two calling-convention rules the
// paper adds to RISC-V:
//
//   - Implicit bounds clearing: when a caller-saved GPR is written by a
//     pre-existing (non-IFP) instruction — which is what happens inside
//     uninstrumented code — its bounds register is cleared by hardware, so
//     an instrumented caller can never check against stale bounds after a
//     legacy call returns a pointer.
//
//   - Callee-saved discipline: functions save and restore clobbered
//     callee-saved bounds registers together with their GPRs (via
//     stbnd/ldbnd); pointer arguments and return values carry their bounds
//     in the corresponding bounds registers, so no promote is needed at
//     call boundaries.
type RegFile struct {
	gpr [32]uint64
	bnd [32]BoundsReg
}

// RISC-V integer register numbers used by the convention.
const (
	RegZero = 0
	RegRA   = 1
	RegSP   = 2
)

// CallerSaved reports whether GPR i is caller-saved under the standard
// RISC-V convention (ra, t0-t6, a0-a7); the prototype enables implicit
// checking and clearing exactly on this set (§4.1.2).
func CallerSaved(i int) bool {
	switch {
	case i == RegRA:
		return true
	case i >= 5 && i <= 7: // t0-t2
		return true
	case i >= 10 && i <= 17: // a0-a7
		return true
	case i >= 28 && i <= 31: // t3-t6
		return true
	}
	return false
}

// CalleeSaved reports whether GPR i is callee-saved (sp, s0-s11).
func CalleeSaved(i int) bool {
	switch {
	case i == RegSP:
		return true
	case i == 8 || i == 9: // s0, s1
		return true
	case i >= 18 && i <= 27: // s2-s11
		return true
	}
	return false
}

// Read returns the IFPR pair held in register i.
func (rf *RegFile) Read(i int) (uint64, BoundsReg) {
	if i == RegZero {
		return 0, Cleared
	}
	return rf.gpr[i], rf.bnd[i]
}

// WriteIFP writes a pointer and its bounds through an In-Fat Pointer
// instruction (promote, ifpadd, ldbnd...): both halves of the IFPR update.
func (rf *RegFile) WriteIFP(i int, v uint64, b BoundsReg) {
	if i == RegZero {
		return
	}
	rf.gpr[i] = v
	rf.bnd[i] = b
}

// WriteLegacy writes a GPR through a pre-existing RISC-V instruction — the
// path every instruction in uninstrumented code takes. Implicit bounds
// clearing fires for caller-saved registers (§4.1.2); callee-saved bounds
// are left intact, because a conforming legacy callee restores the GPR
// before returning (and a non-conforming one breaks the base ABI anyway).
func (rf *RegFile) WriteLegacy(i int, v uint64) {
	if i == RegZero {
		return
	}
	rf.gpr[i] = v
	if CallerSaved(i) {
		rf.bnd[i] = Cleared
	}
}

// ImplicitlyChecked reports whether loads/stores addressed through GPR i
// get the free access-size check (§4.1.1: the implementation applies
// implicit bounds checking to caller-saved registers).
func ImplicitlyChecked(i int) bool { return CallerSaved(i) }

// Frame is the callee-saved spill area of one activation: the §4.1.2 rule
// "each function will save and restore all clobbered callee-saved
// registers, including both the bounds registers and the GPRs".
type Frame struct {
	saved map[int]savedReg
}

type savedReg struct {
	v uint64
	b BoundsReg
}

// SaveCalleeSaved spills the listed callee-saved registers to a frame via
// the machine (one store + one stbnd per register, charged to the cycle
// model), returning the frame for the matching restore.
func (rf *RegFile) SaveCalleeSaved(m *Machine, sp uint64, regs []int) (*Frame, error) {
	f := &Frame{saved: make(map[int]savedReg, len(regs))}
	off := uint64(0)
	for _, i := range regs {
		if !CalleeSaved(i) {
			return nil, fmt.Errorf("machine: register x%d is not callee-saved", i)
		}
		v, b := rf.Read(i)
		if err := m.Store(sp+off, v, 8, Cleared); err != nil {
			return nil, err
		}
		if err := m.StBnd(sp+off+8, b); err != nil {
			return nil, err
		}
		f.saved[i] = savedReg{v, b}
		off += 24
	}
	return f, nil
}

// RestoreCalleeSaved reloads the registers saved by SaveCalleeSaved (one
// load + one ldbnd each).
func (rf *RegFile) RestoreCalleeSaved(m *Machine, sp uint64, regs []int, f *Frame) error {
	off := uint64(0)
	for _, i := range regs {
		s, ok := f.saved[i]
		if !ok {
			return fmt.Errorf("machine: register x%d was not saved in this frame", i)
		}
		v, err := m.Load(sp+off, 8, Cleared)
		if err != nil {
			return err
		}
		b, err := m.LdBnd(sp + off + 8)
		if err != nil {
			return err
		}
		if v != s.v || b != s.b {
			return fmt.Errorf("machine: frame corruption restoring x%d", i)
		}
		rf.WriteIFP(i, v, b)
		off += 24
	}
	return nil
}
