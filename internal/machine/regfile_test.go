package machine

import (
	"testing"

	"infat/internal/layout"
	"infat/internal/tag"
)

func TestCallingConventionSets(t *testing.T) {
	// Every register is zero, caller-saved, callee-saved, or a platform
	// register (gp/tp); caller- and callee-saved never overlap.
	callerCount, calleeCount := 0, 0
	for i := 0; i < 32; i++ {
		if CallerSaved(i) && CalleeSaved(i) {
			t.Errorf("x%d in both sets", i)
		}
		if CallerSaved(i) {
			callerCount++
		}
		if CalleeSaved(i) {
			calleeCount++
		}
	}
	// RISC-V: ra + t0-t6 + a0-a7 = 16 caller-saved; sp + s0-s11 = 13.
	if callerCount != 16 {
		t.Errorf("caller-saved count = %d, want 16", callerCount)
	}
	if calleeCount != 13 {
		t.Errorf("callee-saved count = %d, want 13", calleeCount)
	}
	// Implicit checking applies exactly to the caller-saved set (§4.1.1).
	for i := 0; i < 32; i++ {
		if ImplicitlyChecked(i) != CallerSaved(i) {
			t.Errorf("x%d implicit-check mismatch", i)
		}
	}
}

func TestImplicitBoundsClearing(t *testing.T) {
	var rf RegFile
	b := BoundsReg{B: layout.Bounds{Lower: 0x1000, Upper: 0x1040}, Valid: true}

	// a0 (x10) holds a pointer with bounds; a legacy write clears them.
	rf.WriteIFP(10, 0x1000, b)
	if _, got := rf.Read(10); !got.Valid {
		t.Fatal("bounds lost on IFP write")
	}
	rf.WriteLegacy(10, 0x2000)
	if v, got := rf.Read(10); got.Valid || v != 0x2000 {
		t.Errorf("legacy write: v=%#x bounds=%+v, want cleared", v, got)
	}

	// s2 (x18) is callee-saved: a legacy write does not clear (the callee
	// must restore it, so the value seen after return matches the bounds).
	rf.WriteIFP(18, 0x3000, b)
	rf.WriteLegacy(18, 0x3000)
	if _, got := rf.Read(18); !got.Valid {
		t.Error("callee-saved bounds cleared by legacy write")
	}
}

func TestX0HardwiredZero(t *testing.T) {
	var rf RegFile
	rf.WriteIFP(0, 42, BoundsReg{Valid: true})
	rf.WriteLegacy(0, 42)
	if v, b := rf.Read(0); v != 0 || b.Valid {
		t.Error("x0 is writable")
	}
}

func TestLegacyCallScenario(t *testing.T) {
	// The §4.1.2 compatibility argument, end to end: an instrumented
	// caller passes a pointer in a0; the legacy callee either leaves a0
	// intact (bounds still correct) or overwrites it with an existing
	// instruction (bounds cleared) — it can never return with mismatched
	// value/bounds.
	m := New()
	var rf RegFile
	s := layout.StructOf("cc_s", layout.F("x", layout.Long))
	p := setupLocal(t, m, 0x1000, s.Size(), s)
	_, b := m.Promote(p)

	// Case 1: callee leaves a0 alone.
	rf.WriteIFP(10, p, b)
	v, vb := rf.Read(10)
	if !vb.Valid || tag.Addr(v) != 0x1000 {
		t.Fatal("case 1: bounds lost without any write")
	}

	// Case 2: callee returns its own (legacy) pointer in a0.
	rf.WriteLegacy(10, 0x9000)
	v, vb = rf.Read(10)
	if vb.Valid {
		t.Fatal("case 2: stale bounds survived a legacy return value")
	}
	// The caller's subsequent use is unchecked but never mis-checked.
	if err := m.Store(v, 7, 8, vb); err != nil {
		t.Fatalf("legacy pointer store failed: %v", err)
	}
}

func TestCalleeSavedSpillRoundTrip(t *testing.T) {
	m := New()
	var rf RegFile
	b := BoundsReg{B: layout.Bounds{Lower: 0x4000, Upper: 0x4100}, Valid: true}
	rf.WriteIFP(18, 0x4000, b)       // s2
	rf.WriteIFP(19, 0x5000, Cleared) // s3, no bounds

	regs := []int{18, 19}
	f, err := rf.SaveCalleeSaved(m, 0x8000, regs)
	if err != nil {
		t.Fatal(err)
	}
	// The callee clobbers them.
	rf.WriteIFP(18, 0xdead, Cleared)
	rf.WriteLegacy(19, 0xbeef)
	if err := rf.RestoreCalleeSaved(m, 0x8000, regs, f); err != nil {
		t.Fatal(err)
	}
	if v, got := rf.Read(18); v != 0x4000 || got != b {
		t.Errorf("s2 after restore = %#x %+v", v, got)
	}
	if v, got := rf.Read(19); v != 0x5000 || got.Valid {
		t.Errorf("s3 after restore = %#x %+v", v, got)
	}
	// The spill traffic was charged: 2 stores + 2 stbnd + 2 loads + 2 ldbnd.
	if m.C.StBnd != 2 || m.C.LdBnd != 2 {
		t.Errorf("bounds spill counters: st=%d ld=%d", m.C.StBnd, m.C.LdBnd)
	}
}

func TestSpillErrors(t *testing.T) {
	m := New()
	var rf RegFile
	if _, err := rf.SaveCalleeSaved(m, 0x8000, []int{10}); err == nil {
		t.Error("caller-saved register accepted for callee-saved spill")
	}
	f, err := rf.SaveCalleeSaved(m, 0x8000, []int{18})
	if err != nil {
		t.Fatal(err)
	}
	if err := rf.RestoreCalleeSaved(m, 0x8000, []int{19}, f); err == nil {
		t.Error("restore of unsaved register accepted")
	}
	// Frame corruption detection: overwrite the spilled word.
	if err := m.Mem.Store64(0x8000, 0x1234); err != nil {
		t.Fatal(err)
	}
	if err := rf.RestoreCalleeSaved(m, 0x8000, []int{18}, f); err == nil {
		t.Error("corrupted frame restored silently")
	}
}
