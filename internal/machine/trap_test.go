package machine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestTrapKindStrings(t *testing.T) {
	want := map[TrapKind]string{
		TrapPoison:   "poisoned-pointer",
		TrapBounds:   "bounds",
		TrapMetadata: "metadata",
		TrapMemory:   "memory",
		TrapFuel:     "fuel",
		TrapAlloc:    "alloc",
		TrapInternal: "internal",
		TrapKind(99): "trap(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestTrapUnwrapsCause(t *testing.T) {
	sentinel := errors.New("allocator says no")
	trap := &Trap{Kind: TrapAlloc, Msg: sentinel.Error(), Cause: sentinel}
	wrapped := fmt.Errorf("run: %w", trap)
	// errors.Is sees through the trap to its cause...
	if !errors.Is(wrapped, sentinel) {
		t.Error("errors.Is did not reach the trap's cause")
	}
	// ...and IsTrap still classifies the trap itself.
	if !IsTrap(wrapped, TrapAlloc) {
		t.Error("IsTrap failed on a cause-carrying trap")
	}
	// A trap without a cause unwraps to nil and matches nothing extra.
	if errors.Is(&Trap{Kind: TrapBounds}, sentinel) {
		t.Error("cause-less trap matched a foreign sentinel")
	}
}

func TestRecoverInternal(t *testing.T) {
	boom := func() (err error) {
		defer RecoverInternal(&err)
		panic("simulated simulator bug")
	}
	err := boom()
	if !IsTrap(err, TrapInternal) {
		t.Fatalf("err = %v, want TrapInternal", err)
	}
	if !strings.Contains(err.Error(), "simulated simulator bug") {
		t.Errorf("panic value not preserved: %v", err)
	}

	// Deterministic: the same panic recovers to the same message (no
	// stack traces, no goroutine IDs).
	if err2 := boom(); err2.Error() != err.Error() {
		t.Errorf("recovered messages differ: %q vs %q", err.Error(), err2.Error())
	}

	// No panic: err passes through untouched.
	calm := func() (err error) {
		defer RecoverInternal(&err)
		return errors.New("ordinary failure")
	}
	if err := calm(); err == nil || IsTrap(err, TrapInternal) {
		t.Errorf("calm path err = %v", err)
	}
	quiet := func() (err error) {
		defer RecoverInternal(&err)
		return nil
	}
	if err := quiet(); err != nil {
		t.Errorf("quiet path err = %v", err)
	}
}
