package mem

import (
	"encoding/binary"
	"errors"
	"testing"
)

// refLoadN is the pre-fast-path LoadN: always bounce through Read.
func refLoadN(m *Memory, addr uint64, size int) (uint64, error) {
	var buf [8]byte
	if size != 1 && size != 2 && size != 4 && size != 8 {
		return 0, &Fault{Addr: addr, Size: size, Why: "unsupported access size"}
	}
	if err := m.Read(addr, buf[:size]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]) & (^uint64(0) >> (64 - 8*uint(size))), nil
}

// refStoreN is the pre-fast-path StoreN: always bounce through Write.
func refStoreN(m *Memory, addr uint64, v uint64, size int) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	if size != 1 && size != 2 && size != 4 && size != 8 {
		return &Fault{Addr: addr, Size: size, Write: true, Why: "unsupported access size"}
	}
	return m.Write(addr, buf[:size])
}

// sameFault asserts two access outcomes agree: both nil, or both Faults
// with identical fields.
func sameFault(t *testing.T, ctx string, got, want error) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: err = %v, ref %v", ctx, got, want)
	}
	if got == nil {
		return
	}
	var gf, wf *Fault
	if !errors.As(got, &gf) || !errors.As(want, &wf) {
		t.Fatalf("%s: non-Fault errors %v / %v", ctx, got, want)
	}
	if *gf != *wf {
		t.Fatalf("%s: fault = %+v, ref %+v", ctx, *gf, *wf)
	}
}

// diffOp drives one store+load through the fast-path memory and the
// reference (slow-path-only) memory and asserts values, faults, and
// mapping accounting agree.
func diffOp(t *testing.T, fast, ref *Memory, addr uint64, v uint64, size int) {
	t.Helper()
	sameFault(t, "store", fast.StoreN(addr, v, size), refStoreN(ref, addr, v, size))
	gv, gerr := fast.LoadN(addr, size)
	wv, werr := refLoadN(ref, addr, size)
	sameFault(t, "load", gerr, werr)
	if gv != wv {
		t.Fatalf("LoadN(%#x, %d) = %#x, ref %#x", addr, size, gv, wv)
	}
	if fast.MappedBytes() != ref.MappedBytes() {
		t.Fatalf("after access at %#x: MappedBytes = %d, ref %d",
			addr, fast.MappedBytes(), ref.MappedBytes())
	}
}

// TestMemFastPathDifferential pins the LoadN/StoreN fast paths to the
// Read/Write slow path on the boundary shapes that select between them:
// aligned and unaligned in-page accesses, accesses ending exactly at a
// page boundary, page-straddling accesses, and wrap-adjacent addresses at
// the top of the 64-bit space (where the fast path must reproduce the
// slow path's wrap fault byte for byte).
func TestMemFastPathDifferential(t *testing.T) {
	fast, ref := New(), New()
	const top = ^uint64(0)
	addrs := []uint64{
		0, 1, 7, 8, 15, // low page, aligned + unaligned
		PageSize - 8, PageSize - 7, PageSize - 4, // end exactly at boundary
		PageSize - 1, PageSize - 3, // straddle into page 1
		PageSize, PageSize + 1, // second page
		5*PageSize - 2, 5 * PageSize, // straddle + fresh page
		top - 15, top - 8, top - 7, // highest page, in-bounds
		top - 6, top - 3, top - 1, top, // wrap-adjacent
	}
	v := uint64(0x0123456789ABCDEF)
	for _, addr := range addrs {
		for _, size := range []int{1, 2, 4, 8} {
			diffOp(t, fast, ref, addr, v, size)
			v = v*0x9E3779B97F4A7C15 + 1
		}
	}
	// Unsupported sizes fault identically on both paths.
	for _, size := range []int{0, 3, 5, 16, -1} {
		_, gerr := fast.LoadN(64, size)
		_, werr := refLoadN(ref, 64, size)
		sameFault(t, "load badsize", gerr, werr)
		sameFault(t, "store badsize", fast.StoreN(64, 9, size), refStoreN(ref, 64, 9, size))
	}
	// Footprints built through different paths must be the same pages.
	gs, ws := fast.Snapshot(), ref.Snapshot()
	if len(gs) != len(ws) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(gs), len(ws))
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("snapshot[%d] = %#x, ref %#x", i, gs[i], ws[i])
		}
	}
}

// TestTLBInvalidatedOnReset guards the TLB invalidation rule: a Reset
// recycles page frames, so a stale translation surviving it would alias a
// dead run's data into a fresh one.
func TestTLBInvalidatedOnReset(t *testing.T) {
	m := New()
	if err := m.StoreN(0x1000, 0xDEAD, 8); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreN(0x2000, 0xBEEF, 8); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if got := m.MappedBytes(); got != 0 {
		t.Fatalf("MappedBytes after Reset = %d, want 0", got)
	}
	// Both previously-hot (TLB-resident) addresses must read zero from
	// freshly demand-mapped pages, not stale frames.
	for _, addr := range []uint64{0x1000, 0x2000} {
		v, err := m.LoadN(addr, 8)
		if err != nil || v != 0 {
			t.Fatalf("LoadN(%#x) after Reset = (%#x, %v), want (0, nil)", addr, v, err)
		}
	}
	if got := m.MappedBytes(); got != 2*PageSize {
		t.Fatalf("MappedBytes after remap = %d, want %d", got, 2*PageSize)
	}
}

// TestTLBAlternatingPages exercises TLB conflict pressure: the three pages
// used here are tlbSize pages apart, so in the direct-mapped TLB they all
// contend for one slot. Every access must stay coherent (still reaching
// the frame the pages map holds) across the constant mutual eviction.
func TestTLBAlternatingPages(t *testing.T) {
	m := New()
	const a, b, c = uint64(0x10_000), uint64(0x20_000), uint64(0x30_000)
	for i := uint64(0); i < 64; i++ {
		if err := m.StoreN(a+8*i, 0xA0+i, 8); err != nil {
			t.Fatal(err)
		}
		if err := m.StoreN(b+8*i, 0xB0+i, 8); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 { // periodic eviction pressure from a third page
			if err := m.StoreN(c+8*i, 0xC0+i, 8); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := uint64(0); i < 64; i++ {
		if v, _ := m.LoadN(a+8*i, 8); v != 0xA0+i {
			t.Fatalf("a[%d] = %#x, want %#x", i, v, 0xA0+i)
		}
		if v, _ := m.LoadN(b+8*i, 8); v != 0xB0+i {
			t.Fatalf("b[%d] = %#x, want %#x", i, v, 0xB0+i)
		}
	}
	// The TLB is a cache over pages, never a source of truth: its frames
	// must be exactly what the map holds.
	for i := 0; i < tlbSize; i++ {
		if e := m.tlb[i]; e.pn != noPage && e.pg != m.pages[e.pn] {
			t.Fatalf("tlb entry %d frame diverges from pages map", i)
		}
	}
}

// FuzzMemFastPath is the differential fuzz target: arbitrary (addr, value,
// size selector) triples must behave identically through the fast paths
// and the Read/Write slow path, including fault equality and footprint
// accounting.
func FuzzMemFastPath(f *testing.F) {
	f.Add(uint64(0), uint64(1), byte(3))
	f.Add(uint64(PageSize-1), uint64(0xFFFF), byte(1))
	f.Add(^uint64(0)-3, uint64(0x1234), byte(2))
	f.Add(^uint64(0), ^uint64(0), byte(0))
	f.Add(uint64(PageSize-4), uint64(0xDEADBEEF), byte(7)) // invalid size 16
	f.Fuzz(func(t *testing.T, addr, v uint64, sizeSel byte) {
		size := 1 << (sizeSel & 7) // 1..128: sizes past 8 probe the shared fault
		fast, ref := New(), New()
		sameFault(t, "store", fast.StoreN(addr, v, size), refStoreN(ref, addr, v, size))
		gv, gerr := fast.LoadN(addr, size)
		wv, werr := refLoadN(ref, addr, size)
		sameFault(t, "load", gerr, werr)
		if gv != wv {
			t.Fatalf("LoadN(%#x, %d) = %#x, ref %#x", addr, size, gv, wv)
		}
		// Re-load through Read as an independent check of stored bytes.
		if gerr == nil {
			var buf [8]byte
			if err := ref.Read(addr, buf[:size]); err != nil {
				t.Fatal(err)
			}
			want := binary.LittleEndian.Uint64(buf[:]) & (^uint64(0) >> (64 - 8*uint(size)))
			if gv != want {
				t.Fatalf("stored bytes differ: %#x vs %#x", gv, want)
			}
		}
		if fast.MappedBytes() != ref.MappedBytes() {
			t.Fatalf("MappedBytes = %d, ref %d", fast.MappedBytes(), ref.MappedBytes())
		}
	})
}

// TestAllocBudgetMemLoadStore is the CI alloc-regression guard for the
// memory fast paths: once a working set is mapped, a load/store loop must
// not allocate at all — the TLB hit path touches no map and no buffer.
func TestAllocBudgetMemLoadStore(t *testing.T) {
	m := New()
	const span = 4 * PageSize
	m.Map(0, span)
	allocs := testing.AllocsPerRun(100, func() {
		for addr := uint64(0); addr < span; addr += 64 {
			if err := m.StoreN(addr, addr^0x5A5A, 8); err != nil {
				t.Fatal(err)
			}
			if _, err := m.LoadN(addr, 8); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("load/store loop allocates %.1f/run, want 0", allocs)
	}
}

// BenchmarkMemLoadStore measures the aligned single-page fast path (the
// shape nearly every simulated guest access has) against the straddling
// slow path, on a warm working set.
func BenchmarkMemLoadStore(b *testing.B) {
	m := New()
	const span = 16 * PageSize
	m.Map(0, span)
	b.Run("aligned8", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			addr := uint64(i) * 8 % span
			_ = m.StoreN(addr, uint64(i), 8)
			v, _ := m.LoadN(addr, 8)
			sink += v
		}
		_ = sink
	})
	b.Run("unaligned4", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			addr := (uint64(i)*4 + 1) % span
			_ = m.StoreN(addr, uint64(i), 4)
			v, _ := m.LoadN(addr, 4)
			sink += v
		}
		_ = sink
	})
	b.Run("straddle8", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			addr := uint64(i)%14*PageSize + PageSize - 3
			_ = m.StoreN(addr, uint64(i), 8)
			v, _ := m.LoadN(addr, 8)
			sink += v
		}
		_ = sink
	})
}
