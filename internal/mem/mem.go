// Package mem models the guest physical memory of the simulated machine: a
// sparse, paged, little-endian 64-bit address space. Loads and stores use
// 48-bit addresses (the tag bits of In-Fat pointers are stripped before the
// memory system sees an address). Accesses to unmapped pages fault, which
// the machine surfaces exactly like the paper's promote-generated page
// faults (§3.2: "any generated exception ... is reported as generated from
// the promote instruction").
package mem

import (
	"encoding/binary"
	"fmt"
	"slices"
)

// PageBits is log2 of the page size.
const PageBits = 12

// PageSize is the page size in bytes (4 KiB, matching the RISC-V Sv39 base
// page the paper's Linux port uses).
const PageSize = 1 << PageBits

const pageMask = PageSize - 1

// Fault describes a memory access error.
type Fault struct {
	Addr  uint64 // faulting guest address
	Size  int    // access size in bytes
	Write bool   // true for stores
	Why   string // human-readable cause
}

func (f *Fault) Error() string {
	kind := "load"
	if f.Write {
		kind = "store"
	}
	return fmt.Sprintf("mem: %s fault at %#x (size %d): %s", kind, f.Addr, f.Size, f.Why)
}

// tlbSize is the number of software-TLB entries; the TLB is direct-mapped
// on the low page-number bits. Sixty-four entries cover the working set of
// the pointer-chasing grid workloads (stack page + heap pages spread
// across subheap blocks + the metadata pages promote reads) with few
// conflict evictions — at sixteen, em3d/bh-style runs thrashed slots and
// fell back to the pages map on a noticeable fraction of accesses. Direct
// mapping keeps the hit path free of pointer writes — an MRU scheme's
// swap-to-front stores pointers on every reordering, and each such store
// pays a GC write barrier.
const tlbSize = 64

// Memory is a sparse paged guest address space. It is not safe for
// concurrent use; the simulated core is single-issue in-order (CVA6), and
// the runtime serializes guest accesses.
type Memory struct {
	pages map[uint64]*[PageSize]byte

	// tlb is a small direct-mapped software TLB: page number pn lives in
	// slot pn % tlbSize. It is purely a host-side lookup shortcut: a hit
	// returns the same frame the pages map would, so guest-visible
	// behavior — contents, MappedBytes, fault points, and every modeled
	// counter (cycles and cache statistics are charged upstream in
	// internal/machine before memory is touched) — is identical with the
	// TLB disabled. Entries stay valid because a mapped page's frame never
	// changes until Reset, which invalidates the TLB wholesale. Each entry
	// pairs page number and frame in one struct so the hit path is a single
	// index expression — small enough that page's fast path inlines into
	// LoadN/StoreN.
	tlb [tlbSize]tlbEntry

	// Mapped tracks the total number of mapped pages, for the memory
	// overhead accounting of Figure 12.
	mapped int

	// spare holds zeroed page frames retained by Reset so a reused
	// address space demand-maps without fresh host allocations. Frames in
	// spare are always fully zeroed, which is what keeps a reused page
	// indistinguishable from a freshly allocated one.
	spare []*[PageSize]byte
}

// tlbEntry is one software-TLB slot: a page number and its frame. Empty
// slots hold pn == noPage, a page number no address can produce (page
// numbers are addr>>PageBits, so they fit in 64-PageBits bits), which
// keeps the hit test to a single compare with no separate nil check.
type tlbEntry struct {
	pn uint64
	pg *[PageSize]byte
}

// noPage is the empty-slot sentinel page number.
const noPage = ^uint64(0)

// invalidateTLB empties every slot.
func (m *Memory) invalidateTLB() {
	for i := range m.tlb {
		m.tlb[i] = tlbEntry{pn: noPage}
	}
}

// maxSparePages bounds the page frames Reset retains (64 MiB of host
// memory per address space); anything beyond is dropped to the GC so a
// single huge run cannot pin its peak footprint inside a pooled system
// forever.
const maxSparePages = 16384

// New returns an empty address space.
func New() *Memory {
	m := &Memory{pages: make(map[uint64]*[PageSize]byte)}
	m.invalidateTLB()
	return m
}

// MappedBytes reports the number of bytes of guest memory currently backed
// by pages. This is the simulator's analogue of maximum resident set size
// growth (pages are never unmapped during a run, so the high-water mark
// equals the current value; Reset starts a new run at zero).
func (m *Memory) MappedBytes() uint64 { return uint64(m.mapped) * PageSize }

// Reset unmaps every page, returning the address space to its New-time
// state (MappedBytes == 0, all memory reads as zero) while retaining up
// to maxSparePages zeroed page frames for reuse. A reused Memory is
// observationally identical to a fresh one: the only difference is that
// demand-mapping pops a retained frame instead of allocating. Reset also
// invalidates the TLB — retained frames may back different page numbers
// in the next run, so no stale translation can survive it.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		if len(m.spare) >= maxSparePages {
			break
		}
		*p = [PageSize]byte{}
		m.spare = append(m.spare, p)
	}
	clear(m.pages)
	m.invalidateTLB()
	m.mapped = 0
}

// Map ensures the pages covering [addr, addr+size) are present. The runtime
// uses it to model brk/mmap; ordinary loads and stores also demand-map, as
// the paper's environment runs with overcommit enabled.
func (m *Memory) Map(addr, size uint64) {
	if size == 0 {
		return
	}
	first := addr >> PageBits
	last := (addr + size - 1) >> PageBits
	for pn := first; pn <= last; pn++ {
		m.page(pn)
	}
}

// page translates a page number to its frame, demand-mapping on first
// touch. The TLB front-ends the pages map, direct-mapped on the low bits
// of the page number; a hit performs no writes at all, a miss refills the
// slot after the map lookup (or demand-map) resolves the frame. The hit
// path is kept small enough to inline into LoadN/StoreN, so the common
// aligned access resolves its frame without a function call.
func (m *Memory) page(pn uint64) *[PageSize]byte {
	if e := &m.tlb[pn&(tlbSize-1)]; e.pn == pn {
		return e.pg
	}
	return m.pageSlow(pn)
}

// pageSlow is the TLB-miss path: pages-map lookup, demand-map, TLB refill.
// Kept out of line so page's TLB-hit fast path stays under the inlining
// budget at its LoadN/StoreN call sites.
//
//go:noinline
func (m *Memory) pageSlow(pn uint64) *[PageSize]byte {
	p, ok := m.pages[pn]
	if !ok {
		if n := len(m.spare); n > 0 {
			p = m.spare[n-1]
			m.spare[n-1] = nil
			m.spare = m.spare[:n-1]
		} else {
			p = new([PageSize]byte)
		}
		m.pages[pn] = p
		m.mapped++
	}
	m.tlb[pn&(tlbSize-1)] = tlbEntry{pn: pn, pg: p}
	return p
}

// Read copies size bytes at addr into buf, demand-mapping pages. It returns
// a Fault only for address wrap-around; the simulated environment runs with
// overcommit so unmapped pages are backed on first touch.
func (m *Memory) Read(addr uint64, buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	if addr+uint64(len(buf)) < addr {
		return &Fault{Addr: addr, Size: len(buf), Why: "address wrap"}
	}
	for done := 0; done < len(buf); {
		p := m.page((addr + uint64(done)) >> PageBits)
		off := int((addr + uint64(done)) & pageMask)
		n := copy(buf[done:], p[off:])
		done += n
	}
	return nil
}

// Write copies buf to addr, demand-mapping pages.
func (m *Memory) Write(addr uint64, buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	if addr+uint64(len(buf)) < addr {
		return &Fault{Addr: addr, Size: len(buf), Write: true, Why: "address wrap"}
	}
	for done := 0; done < len(buf); {
		p := m.page((addr + uint64(done)) >> PageBits)
		off := int((addr + uint64(done)) & pageMask)
		n := copy(p[off:], buf[done:])
		done += n
	}
	return nil
}

// LoadN loads a size-byte little-endian unsigned integer (size in
// {1,2,4,8}). Accesses contained in one page decode little-endian directly
// from the page frame; a page-straddling access takes the Read slow path
// through an 8-byte bounce buffer. Both paths apply the same wrap fault
// rule, so they are observationally identical (the contract
// TestMemFastPathDifferential and FuzzMemFastPath pin down).
func (m *Memory) LoadN(addr uint64, size int) (uint64, error) {
	if size != 1 && size != 2 && size != 4 && size != 8 {
		return 0, &Fault{Addr: addr, Size: size, Why: "unsupported access size"}
	}
	if off := addr & pageMask; off+uint64(size) <= PageSize {
		if addr+uint64(size) < addr {
			return 0, &Fault{Addr: addr, Size: size, Why: "address wrap"}
		}
		p := m.page(addr >> PageBits)
		switch size {
		case 1:
			return uint64(p[off]), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:])), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:])), nil
		}
		return binary.LittleEndian.Uint64(p[off:]), nil
	}
	var buf [8]byte
	if err := m.Read(addr, buf[:size]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]) & (^uint64(0) >> (64 - 8*uint(size))), nil
}

// StoreN stores the low size bytes of v little-endian (size in {1,2,4,8}),
// with the same single-page fast path / straddling slow path split as
// LoadN.
func (m *Memory) StoreN(addr uint64, v uint64, size int) error {
	if size != 1 && size != 2 && size != 4 && size != 8 {
		return &Fault{Addr: addr, Size: size, Write: true, Why: "unsupported access size"}
	}
	if off := addr & pageMask; off+uint64(size) <= PageSize {
		if addr+uint64(size) < addr {
			return &Fault{Addr: addr, Size: size, Write: true, Why: "address wrap"}
		}
		p := m.page(addr >> PageBits)
		switch size {
		case 1:
			p[off] = byte(v)
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
		default:
			binary.LittleEndian.PutUint64(p[off:], v)
		}
		return nil
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return m.Write(addr, buf[:size])
}

// Load64 loads a 64-bit little-endian word.
func (m *Memory) Load64(addr uint64) (uint64, error) { return m.LoadN(addr, 8) }

// Store64 stores a 64-bit little-endian word.
func (m *Memory) Store64(addr uint64, v uint64) error { return m.StoreN(addr, v, 8) }

// Zero clears [addr, addr+size).
func (m *Memory) Zero(addr, size uint64) error {
	var zeros [256]byte
	for size > 0 {
		n := uint64(len(zeros))
		if size < n {
			n = size
		}
		if err := m.Write(addr, zeros[:n]); err != nil {
			return err
		}
		addr += n
		size -= n
	}
	return nil
}

// Snapshot returns the sorted list of mapped page numbers; tests use it to
// assert footprint shape.
func (m *Memory) Snapshot() []uint64 {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	slices.Sort(pns)
	return pns
}
