package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New()
	for _, size := range []int{1, 2, 4, 8} {
		addr := uint64(0x1000 + size*64)
		want := uint64(0x1122334455667788) & (^uint64(0) >> (64 - 8*uint(size)))
		if err := m.StoreN(addr, 0x1122334455667788, size); err != nil {
			t.Fatalf("store size %d: %v", size, err)
		}
		got, err := m.LoadN(addr, size)
		if err != nil {
			t.Fatalf("load size %d: %v", size, err)
		}
		if got != want {
			t.Errorf("size %d: got %#x, want %#x", size, got, want)
		}
	}
}

func TestLittleEndian(t *testing.T) {
	m := New()
	if err := m.Store64(0x2000, 0x0807060504030201); err != nil {
		t.Fatal(err)
	}
	b, err := m.LoadN(0x2000, 1)
	if err != nil || b != 0x01 {
		t.Errorf("byte 0 = %#x (err %v), want 0x01", b, err)
	}
	b, err = m.LoadN(0x2007, 1)
	if err != nil || b != 0x08 {
		t.Errorf("byte 7 = %#x (err %v), want 0x08", b, err)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3) // straddles the first page boundary
	if err := m.Store64(addr, 0xcafebabedeadbeef); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load64(addr)
	if err != nil || got != 0xcafebabedeadbeef {
		t.Errorf("cross-page load = %#x (err %v)", got, err)
	}
	if m.MappedBytes() != 2*PageSize {
		t.Errorf("mapped = %d, want two pages", m.MappedBytes())
	}
}

func TestBulkReadWrite(t *testing.T) {
	m := New()
	src := make([]byte, 3*PageSize+17)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := m.Write(0x8000, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := m.Read(0x8000, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Error("bulk round-trip mismatch")
	}
}

func TestZero(t *testing.T) {
	m := New()
	if err := m.Write(0x100, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := m.Zero(0x101, 3); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := m.Read(0x100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 0, 0, 0, 5}) {
		t.Errorf("after zero: %v", got)
	}
}

func TestUnsupportedSize(t *testing.T) {
	m := New()
	if _, err := m.LoadN(0, 3); err == nil {
		t.Error("LoadN size 3 did not fault")
	}
	if err := m.StoreN(0, 0, 5); err == nil {
		t.Error("StoreN size 5 did not fault")
	}
}

func TestAddressWrapFaults(t *testing.T) {
	m := New()
	if err := m.Write(^uint64(0)-2, []byte{1, 2, 3, 4}); err == nil {
		t.Error("wrapping store did not fault")
	}
	if err := m.Read(^uint64(0)-2, make([]byte, 4)); err == nil {
		t.Error("wrapping load did not fault")
	}
	var f *Fault
	err := m.Write(^uint64(0), []byte{1, 2})
	if f, _ = err.(*Fault); f == nil || !f.Write {
		t.Errorf("fault = %v", err)
	}
	if f.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestDemandMapping(t *testing.T) {
	m := New()
	if m.MappedBytes() != 0 {
		t.Fatal("fresh memory has mapped pages")
	}
	// Reads demand-map (overcommit model) and see zeros.
	v, err := m.Load64(0x5000)
	if err != nil || v != 0 {
		t.Errorf("fresh load = %#x (err %v)", v, err)
	}
	if m.MappedBytes() != PageSize {
		t.Errorf("mapped = %d after one-page touch", m.MappedBytes())
	}
	m.Map(0x10000, 3*PageSize)
	if m.MappedBytes() != 4*PageSize {
		t.Errorf("mapped = %d after Map of 3 pages", m.MappedBytes())
	}
	m.Map(0x10000, 0) // no-op
	if m.MappedBytes() != 4*PageSize {
		t.Error("zero-size Map changed footprint")
	}
}

func TestSnapshotSorted(t *testing.T) {
	m := New()
	m.Map(5*PageSize, 1)
	m.Map(1*PageSize, 1)
	m.Map(9*PageSize, 1)
	pns := m.Snapshot()
	if len(pns) != 3 || pns[0] != 1 || pns[1] != 5 || pns[2] != 9 {
		t.Errorf("snapshot = %v", pns)
	}
}

// Property: a store followed by a load of the same size at the same address
// returns the truncated value, regardless of alignment.
func TestQuickStoreLoad(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64, szSel uint8) bool {
		size := []int{1, 2, 4, 8}[szSel%4]
		addr %= 1 << 30 // keep the page map small
		if err := m.StoreN(addr, v, size); err != nil {
			return false
		}
		got, err := m.LoadN(addr, size)
		return err == nil && got == v&(^uint64(0)>>(64-8*uint(size)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: non-overlapping writes do not disturb each other.
func TestQuickWriteIsolation(t *testing.T) {
	f := func(a8, b8 uint8, va, vb uint64) bool {
		m := New()
		a := uint64(a8) * 8
		b := uint64(b8)*8 + 4096
		if err := m.Store64(a, va); err != nil {
			return false
		}
		if err := m.Store64(b, vb); err != nil {
			return false
		}
		ga, _ := m.Load64(a)
		gb, _ := m.Load64(b)
		return ga == va && gb == vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
