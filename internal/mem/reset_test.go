package mem

import "testing"

// TestResetClearsPagesAndAccounting: after Reset the address space is
// empty (MappedBytes 0, no snapshot entries) and every prior write is
// gone — a reused page must read as zero, exactly like a fresh mapping.
func TestResetClearsPagesAndAccounting(t *testing.T) {
	m := New()
	for _, addr := range []uint64{0x0, 0x1000, 0x4_0000_0000} {
		if err := m.Store64(addr, 0xdeadbeefcafef00d); err != nil {
			t.Fatal(err)
		}
	}
	if m.MappedBytes() == 0 {
		t.Fatal("writes mapped no pages")
	}
	m.Reset()
	if got := m.MappedBytes(); got != 0 {
		t.Errorf("MappedBytes after Reset = %d, want 0", got)
	}
	if pns := m.Snapshot(); len(pns) != 0 {
		t.Errorf("Snapshot after Reset = %v, want empty", pns)
	}
	// Reads demand-map recycled frames; they must be zero.
	for _, addr := range []uint64{0x0, 0x1000, 0x4_0000_0000} {
		got, err := m.Load64(addr)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("addr %#x reads %#x after Reset, want 0", addr, got)
		}
	}
}

// TestStoreSpansPageBoundaryAfterReset: a store straddling a page
// boundary after Reset maps both pages (possibly one recycled frame and
// one fresh) and round-trips, with accounting identical to a fresh
// address space.
func TestStoreSpansPageBoundaryAfterReset(t *testing.T) {
	m := New()
	// First cycle maps exactly one page, so after Reset the spare list
	// holds one frame and the straddling store must mix recycled + fresh.
	if err := m.Store64(0x100, 1); err != nil {
		t.Fatal(err)
	}
	m.Reset()

	addr := uint64(PageSize - 3)
	const want = uint64(0xcafebabedeadbeef)
	if err := m.Store64(addr, want); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load64(addr)
	if err != nil || got != want {
		t.Fatalf("cross-page load after Reset = %#x (err %v), want %#x", got, err, want)
	}
	if m.MappedBytes() != 2*PageSize {
		t.Errorf("mapped = %d, want two pages", m.MappedBytes())
	}
	// The bytes on each side of the boundary are where they should be.
	lo, _ := m.LoadN(PageSize-1, 1)
	hi, _ := m.LoadN(PageSize, 1)
	if lo != (want>>16)&0xff || hi != (want>>24)&0xff {
		t.Errorf("boundary bytes = %#x/%#x, want %#x/%#x",
			lo, hi, (want>>16)&0xff, (want>>24)&0xff)
	}
}

// TestMappedBytesAcrossResetCycles: the same access pattern must report
// the same MappedBytes on every reuse cycle — recycled frames may not
// perturb the Figure-12 footprint accounting.
func TestMappedBytesAcrossResetCycles(t *testing.T) {
	m := New()
	runPattern := func() uint64 {
		for i := uint64(0); i < 5; i++ {
			if err := m.Store64(i*3*PageSize, i); err != nil {
				t.Fatal(err)
			}
		}
		m.Map(0x9000_0000, 4*PageSize)
		return m.MappedBytes()
	}
	want := runPattern()
	for cycle := 1; cycle <= 3; cycle++ {
		m.Reset()
		if got := m.MappedBytes(); got != 0 {
			t.Fatalf("cycle %d: MappedBytes after Reset = %d", cycle, got)
		}
		if got := runPattern(); got != want {
			t.Errorf("cycle %d: MappedBytes = %d, want %d (fresh run)", cycle, got, want)
		}
	}
}

// TestFreshVsReusedSnapshotEquivalence: running one pattern on a fresh
// Memory and on a reset one must produce identical page snapshots and
// contents — the mem-layer half of the pool's determinism contract.
func TestFreshVsReusedSnapshotEquivalence(t *testing.T) {
	pattern := func(m *Memory) {
		for i := uint64(0); i < 8; i++ {
			if err := m.Store64(0x10_0000+i*PageSize/2, 0xA0+i); err != nil {
				t.Fatal(err)
			}
		}
	}
	fresh := New()
	pattern(fresh)

	reused := New()
	// Dirty the reused space differently first, then reset.
	for i := uint64(0); i < 20; i++ {
		if err := reused.Store64(i*2*PageSize, ^i); err != nil {
			t.Fatal(err)
		}
	}
	reused.Reset()
	pattern(reused)

	fp, rp := fresh.Snapshot(), reused.Snapshot()
	if len(fp) != len(rp) {
		t.Fatalf("page counts differ: fresh %d, reused %d", len(fp), len(rp))
	}
	for i := range fp {
		if fp[i] != rp[i] {
			t.Fatalf("page %d differs: fresh %#x, reused %#x", i, fp[i], rp[i])
		}
		fbuf := make([]byte, PageSize)
		rbuf := make([]byte, PageSize)
		if err := fresh.Read(fp[i]<<PageBits, fbuf); err != nil {
			t.Fatal(err)
		}
		if err := reused.Read(rp[i]<<PageBits, rbuf); err != nil {
			t.Fatal(err)
		}
		for j := range fbuf {
			if fbuf[j] != rbuf[j] {
				t.Fatalf("page %#x byte %d differs: fresh %#x, reused %#x",
					fp[i], j, fbuf[j], rbuf[j])
			}
		}
	}
	if fresh.MappedBytes() != reused.MappedBytes() {
		t.Errorf("MappedBytes differ: fresh %d, reused %d",
			fresh.MappedBytes(), reused.MappedBytes())
	}
}
