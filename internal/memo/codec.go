package memo

import "sync"

// A Codec rehydrates one entry kind from its canonical snapshot payload.
// Encoding is the caller's job (Put/Finish take the encoded bytes
// alongside the value, so the hot path never re-serializes); decoding is
// registered here because LoadSnapshot sees only (kind, payload) pairs
// and must map them back to typed values.
type Codec struct {
	// Decode parses a snapshot payload back into the value Get returns.
	// A nil error must mean the value round-trips: encoding it again
	// yields bytes that digest-check identically.
	Decode func(payload []byte) (any, error)
}

var (
	codecMu sync.RWMutex
	codecs  = map[byte]Codec{}
)

// RegisterKind installs the codec for one entry kind. Packages that
// define snapshot-worthy kinds (exp for cells, server for runs) register
// from an init function. Registering a kind twice panics — it means two
// packages disagree about the payload format.
func RegisterKind(kind byte, c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecs[kind]; dup {
		panic("memo: RegisterKind called twice for kind")
	}
	codecs[kind] = c
}

// codecFor returns the registered codec for kind, if any.
func codecFor(kind byte) (Codec, bool) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecs[kind]
	return c, ok
}
