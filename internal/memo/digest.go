// Package memo is the content-addressed result store behind every
// repeated-cell fast path in the evaluation stack. A campaign cell —
// (workload source, mode, configuration, fuel, seed and temporal axes) —
// is a pure, byte-deterministic function of its inputs (the assembly- and
// dispatch-equivalence gates pin exactly that), so its result can be
// keyed by a canonical sha256 digest of those inputs and replayed instead
// of recomputed. The store offers:
//
//   - Canonical digests (Digester plus the WorkloadDigest / RunDigest /
//     ChaosDigest compositions) with unambiguous field framing — every
//     variable-length field is length-prefixed, every integer is
//     fixed-width little-endian, and every digest kind carries its own
//     domain-separation prefix — so keys are stable across platforms and
//     releases. The golden vectors under testdata/ pin the encoding; a
//     deliberate key-schema change must bump digestVersion and the
//     vectors together.
//   - A concurrency-safe bounded in-memory LRU tier (Store) with the
//     /v1/run cache's pending-entry coalescing semantics (StartOrJoin /
//     Finish) alongside the plain Get / Put cell path. Hits are
//     zero-allocation: the stored value is returned as-is, so callers
//     share immutable results instead of re-deriving them.
//   - An optional disk-backed snapshot (SaveSnapshot / LoadSnapshot,
//     surfaced as -memo-dir on the CLIs) for warm CI and repeated local
//     runs. The format is self-describing (magic + version header) and
//     every entry carries its own sha256, so a corrupted or
//     version-skewed snapshot is detected and fallen back from — it can
//     cost warmth, never correctness.
package memo

import (
	"crypto/sha256"
	"encoding/hex"
)

// Digest is a canonical sha256 cell key.
type Digest [32]byte

// String renders the digest as lowercase hex (the golden-vector form).
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// digestVersion is the key-schema version, part of every digest's
// domain-separation prefix. Bump it when the canonical encoding itself
// changes; the golden digest vectors must change in the same commit.
const digestVersion = "infat/memo/v1"

// Domain-separation prefixes: two digests of different kinds can never
// collide, because the kind is the first framed field hashed.
const (
	domainWorkload = digestVersion + "/workload"
	domainRun      = digestVersion + "/run"
	domainChaos    = digestVersion + "/chaos"
	// DomainCell is the prefix of evaluation-grid cell digests. The
	// composition lives in internal/exp (it folds in the machine cost
	// model, which memo must not import), but the domain is defined here
	// so every prefix is enumerated in one place.
	DomainCell = digestVersion + "/cell"
)

// Digester builds a canonical byte encoding and hashes it. The framing
// rules, relied on by the golden vectors:
//
//   - Init writes the domain string (length-prefixed) first.
//   - Str writes a u32 little-endian byte length, then the bytes —
//     so ("ab","c") and ("a","bc") encode differently.
//   - U64/U32 write fixed-width little-endian.
//   - Bool writes one byte (0/1); Raw writes a nested digest verbatim
//     (fixed 32 bytes, no prefix needed).
//
// The zero value plus Init is ready to use. Encoding happens in a
// fixed-size stack buffer so the hot hit path (digest + Store.Get)
// performs zero heap allocations; inputs that overflow the buffer spill
// to the heap transparently.
type Digester struct {
	n     int
	buf   [192]byte
	spill []byte // non-nil once buf overflowed; holds the full encoding
}

// Init resets the digester and frames the domain-separation prefix.
func (g *Digester) Init(domain string) {
	g.n = 0
	g.spill = nil
	g.Str(domain)
}

// Str appends a length-prefixed string field.
func (g *Digester) Str(s string) {
	g.U32(uint32(len(s)))
	if g.spill == nil && g.n+len(s) <= len(g.buf) {
		copy(g.buf[g.n:], s)
		g.n += len(s)
		return
	}
	g.overflow()
	g.spill = append(g.spill, s...)
}

// U32 appends a fixed-width little-endian uint32.
func (g *Digester) U32(v uint32) {
	if g.spill == nil && g.n+4 <= len(g.buf) {
		g.buf[g.n] = byte(v)
		g.buf[g.n+1] = byte(v >> 8)
		g.buf[g.n+2] = byte(v >> 16)
		g.buf[g.n+3] = byte(v >> 24)
		g.n += 4
		return
	}
	g.overflow()
	g.spill = append(g.spill, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a fixed-width little-endian uint64.
func (g *Digester) U64(v uint64) {
	g.U32(uint32(v))
	g.U32(uint32(v >> 32))
}

// Bool appends one byte: 1 for true, 0 for false.
func (g *Digester) Bool(b bool) {
	v := byte(0)
	if b {
		v = 1
	}
	if g.spill == nil && g.n < len(g.buf) {
		g.buf[g.n] = v
		g.n++
		return
	}
	g.overflow()
	g.spill = append(g.spill, v)
}

// Raw appends a nested digest verbatim (fixed width, so unambiguous
// without a length prefix).
func (g *Digester) Raw(d Digest) {
	if g.spill == nil && g.n+len(d) <= len(g.buf) {
		copy(g.buf[g.n:], d[:])
		g.n += len(d)
		return
	}
	g.overflow()
	g.spill = append(g.spill, d[:]...)
}

// overflow migrates the stack buffer to a heap spill slice; subsequent
// appends go there. Only inputs larger than the buffer pay this.
func (g *Digester) overflow() {
	if g.spill == nil {
		g.spill = append(make([]byte, 0, 2*len(g.buf)), g.buf[:g.n]...)
	}
}

// Sum returns the sha256 of the canonical encoding built so far.
func (g *Digester) Sum() Digest {
	if g.spill != nil {
		return sha256.Sum256(g.spill)
	}
	return sha256.Sum256(g.buf[:g.n])
}

// SourceDigest hashes raw program text — the content-address of a MiniC
// source, matching the sha256(source) the /v1/run cache has always keyed
// on. It is a plain content hash, not a framed composition, so it can be
// computed by anything that holds the bytes.
func SourceDigest(source string) Digest { return sha256.Sum256([]byte(source)) }

// WorkloadDigest is the content-address of one registered workload
// kernel: its name, suite, and the workloads package's kernel version
// (bumped whenever any kernel's observable behaviour changes, which
// invalidates every cell computed from it).
func WorkloadDigest(name, suite, version string) Digest {
	var g Digester
	g.Init(domainWorkload)
	g.Str(name)
	g.Str(suite)
	g.Str(version)
	return g.Sum()
}

// RunDigest keys one /v1/run result: the source content hash, the run
// mode, and the effective (post-clamp) fuel budget — exactly the triple
// the service's result LRU has keyed on since PR 2, in canonical form.
func RunDigest(source Digest, mode string, fuel uint64) Digest {
	var g Digester
	g.Init(domainRun)
	g.Raw(source)
	g.Str(mode)
	g.U64(fuel)
	return g.Sum()
}

// ChaosDigest keys one fault-injection cell: the (scheme, fault, seed)
// coordinates plus the chaos package's campaign version (bumped when the
// injected-fault semantics change).
func ChaosDigest(scheme, fault string, seed uint64, version string) Digest {
	var g Digester
	g.Init(domainChaos)
	g.Str(scheme)
	g.Str(fault)
	g.U64(seed)
	g.Str(version)
	return g.Sum()
}
