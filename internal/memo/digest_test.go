package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden digest vectors")

// goldenVectors enumerates the pinned digest vectors. Any change to the
// canonical encoding — framing, domain prefixes, digestVersion — changes
// these hashes and must be deliberate: bump digestVersion and regenerate
// with `go test ./internal/memo -run Golden -update`.
func goldenVectors() []struct{ label, digest string } {
	var g Digester
	g.Init(DomainCell)
	g.Raw(WorkloadDigest("treeadd", "olden", "v1"))
	g.Str("ifp")
	g.Bool(false)
	g.U32(1)
	g.U64(20)
	cellish := g.Sum()

	g.Init(DomainCell)
	g.Str(strings.Repeat("spill-me-", 64)) // > buf: exercises the heap spill
	spilled := g.Sum()

	return []struct{ label, digest string }{
		{"source/empty", SourceDigest("").String()},
		{"source/hello", SourceDigest("int main() { return 0; }").String()},
		{"workload/treeadd", WorkloadDigest("treeadd", "olden", "v1").String()},
		{"workload/suite-swap", WorkloadDigest("olden", "treeadd", "v1").String()},
		{"run/basic", RunDigest(SourceDigest("x"), "ifp", 1_000_000).String()},
		{"run/mode", RunDigest(SourceDigest("x"), "ifp-temporal", 1_000_000).String()},
		{"run/fuel", RunDigest(SourceDigest("x"), "ifp", 1_000_001).String()},
		{"chaos/basic", ChaosDigest("ifp", "tagflip", 0, "v1").String()},
		{"chaos/seed", ChaosDigest("ifp", "tagflip", 7, "v1").String()},
		{"cell/composed", cellish.String()},
		{"cell/spilled", spilled.String()},
	}
}

func TestGoldenDigestVectors(t *testing.T) {
	path := filepath.Join("testdata", "memo_digests.golden")
	var sb strings.Builder
	for _, v := range goldenVectors() {
		fmt.Fprintf(&sb, "%s %s\n", v.label, v.digest)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden vectors missing (run with -update to generate): %v", err)
	}
	if got := sb.String(); got != string(want) {
		t.Fatalf("digest vectors drifted from %s — a key-schema change must bump digestVersion and regenerate deliberately.\ngot:\n%swant:\n%s", path, got, want)
	}
}

// TestFramingUnambiguous pins the anti-ambiguity properties the framing
// rules exist for: field boundaries and domains are part of the hash.
func TestFramingUnambiguous(t *testing.T) {
	strPair := func(a, b string) Digest {
		var g Digester
		g.Init(DomainCell)
		g.Str(a)
		g.Str(b)
		return g.Sum()
	}
	if strPair("ab", "c") == strPair("a", "bc") {
		t.Error(`("ab","c") and ("a","bc") must digest differently`)
	}
	if WorkloadDigest("x", "y", "v1") == ChaosDigest("x", "y", 0, "v1") {
		t.Error("different domains with overlapping fields must not collide")
	}
	var a, b Digester
	a.Init(DomainCell)
	a.U32(5)
	b.Init(DomainCell)
	b.U64(5)
	if a.Sum() == b.Sum() {
		t.Error("U32(5) and U64(5) must digest differently (fixed widths)")
	}
}

// TestSpillMatchesReference checks that encodings which overflow the
// stack buffer hash identically to a reference encoding built by hand:
// the spill is a transparent continuation, not a different format.
func TestSpillMatchesReference(t *testing.T) {
	long := strings.Repeat("abcdefgh", 64) // 512 bytes, far past the buffer

	frame := func(parts ...any) []byte {
		var out []byte
		for _, p := range parts {
			switch v := p.(type) {
			case string:
				out = binary.LittleEndian.AppendUint32(out, uint32(len(v)))
				out = append(out, v...)
			case uint64:
				out = binary.LittleEndian.AppendUint64(out, v)
			default:
				t.Fatalf("unhandled part %T", p)
			}
		}
		return out
	}

	var g Digester
	g.Init(DomainCell)
	g.Str(long)
	g.U64(42)
	got := g.Sum()
	want := Digest(sha256.Sum256(frame(DomainCell, long, uint64(42))))
	if got != want {
		t.Fatalf("spilled encoding hash mismatch: got %s want %s", got, want)
	}

	// And a small encoding against the same reference framing.
	g.Init(DomainCell)
	g.Str("x")
	g.U64(1)
	got = g.Sum()
	want = Digest(sha256.Sum256(frame(DomainCell, "x", uint64(1))))
	if got != want {
		t.Fatalf("small encoding hash mismatch: got %s want %s", got, want)
	}
}

// TestAllocBudgetDigest pins digest composition at zero heap
// allocations — it runs on the memo hit path for every cell.
func TestAllocBudgetDigest(t *testing.T) {
	src := SourceDigest("int main() { return 0; }")
	if n := testing.AllocsPerRun(200, func() {
		_ = RunDigest(src, "ifp", 1_000_000)
	}); n != 0 {
		t.Errorf("RunDigest allocates %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = ChaosDigest("ifp", "tagflip", 3, "v1")
	}); n != 0 {
		t.Errorf("ChaosDigest allocates %v allocs/op, want 0", n)
	}
}
