package memo

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Snapshot format (memo.snap inside -memo-dir), self-describing and
// integrity-checked so a stale or damaged file can only cost warmth:
//
//	magic    [8]byte  "IFPMEMO\n"
//	version  u32 LE   snapshotVersion
//	count    u32 LE   number of entries
//	entries  count ×:
//	    kind    byte
//	    digest  [32]byte   the store key
//	    plen    u32 LE     payload length
//	    payload [plen]byte canonical encoding (Codec-decodable)
//	    check   [32]byte   sha256(kind || digest || payload)
//
// Every entry carries its own check hash, so a flipped bit anywhere in
// an entry is detected without trusting file length alone; a bad header
// or version is rejected before any entry is read. Unknown kinds (a
// snapshot written by a newer binary with extra kinds) are skipped, not
// fatal.

const (
	snapshotMagic   = "IFPMEMO\n"
	snapshotVersion = uint32(1)
	// SnapshotFile is the file name inside a -memo-dir.
	SnapshotFile = "memo.snap"
	// maxSnapshotEntry bounds one payload so a corrupt length field
	// cannot drive a giant allocation.
	maxSnapshotEntry = 16 << 20
)

// ErrSnapshotCorrupt reports a snapshot that failed structural or
// per-entry integrity checks. The store falls back to recompute.
var ErrSnapshotCorrupt = errors.New("memo: snapshot corrupt")

// ErrSnapshotVersion reports a snapshot with the right magic but a
// different format version. The store falls back to recompute.
var ErrSnapshotVersion = errors.New("memo: snapshot version mismatch")

// SnapshotPath returns the snapshot file path inside dir.
func SnapshotPath(dir string) string { return filepath.Join(dir, SnapshotFile) }

func entryCheck(kind byte, d Digest, payload []byte) Digest {
	h := sha256.New()
	h.Write([]byte{kind})
	h.Write(d[:])
	h.Write(payload)
	var out Digest
	h.Sum(out[:0])
	return out
}

// SaveSnapshot writes every completed, kept entry that has a canonical
// encoding to dir's snapshot file (temp file + rename, so a crash
// mid-write never leaves a half snapshot for the next boot to trip on).
// Entries without an encoding (enc == nil) are memory-only and skipped.
func (s *Store) SaveSnapshot(dir string) error {
	type rec struct {
		kind    byte
		digest  Digest
		payload []byte
	}
	s.mu.Lock()
	recs := make([]rec, 0, s.order.Len())
	// Back-to-front: least recently used first, so on reload (which
	// inserts in file order) the most recently used entries end up
	// freshest in the LRU.
	for el := s.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*Entry)
		if e.done && e.keep && e.enc != nil {
			recs = append(recs, rec{e.kind, e.digest, e.enc})
		}
	}
	s.mu.Unlock()

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, SnapshotFile+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	w.WriteString(snapshotMagic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], snapshotVersion)
	w.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(recs)))
	w.Write(u32[:])
	for _, r := range recs {
		w.WriteByte(r.kind)
		w.Write(r.digest[:])
		binary.LittleEndian.PutUint32(u32[:], uint32(len(r.payload)))
		w.Write(u32[:])
		w.Write(r.payload)
		chk := entryCheck(r.kind, r.digest, r.payload)
		w.Write(chk[:])
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), SnapshotPath(dir))
}

// LoadSnapshot reads dir's snapshot into the store. A missing file is
// not an error (first run with a fresh dir). A corrupt or version-skewed
// file returns ErrSnapshotCorrupt / ErrSnapshotVersion with the store
// left holding whatever valid prefix was loaded — safe either way, since
// every loaded entry passed its own integrity check; callers typically
// log and continue cold. Entries of unregistered kinds or that fail
// decoding are counted in Stats().Skipped and dropped.
func (s *Store) LoadSnapshot(dir string) error {
	f, err := os.Open(SnapshotPath(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)

	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("%w: short header", ErrSnapshotCorrupt)
	}
	if string(magic[:]) != snapshotMagic {
		return fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return fmt.Errorf("%w: short header", ErrSnapshotCorrupt)
	}
	if v := binary.LittleEndian.Uint32(u32[:]); v != snapshotVersion {
		return fmt.Errorf("%w: file v%d, binary v%d", ErrSnapshotVersion, v, snapshotVersion)
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return fmt.Errorf("%w: short header", ErrSnapshotCorrupt)
	}
	count := binary.LittleEndian.Uint32(u32[:])

	for i := uint32(0); i < count; i++ {
		kind, err := r.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: entry %d truncated", ErrSnapshotCorrupt, i)
		}
		var d Digest
		if _, err := io.ReadFull(r, d[:]); err != nil {
			return fmt.Errorf("%w: entry %d truncated", ErrSnapshotCorrupt, i)
		}
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return fmt.Errorf("%w: entry %d truncated", ErrSnapshotCorrupt, i)
		}
		plen := binary.LittleEndian.Uint32(u32[:])
		if plen > maxSnapshotEntry {
			return fmt.Errorf("%w: entry %d payload length %d", ErrSnapshotCorrupt, i, plen)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("%w: entry %d truncated", ErrSnapshotCorrupt, i)
		}
		var chk Digest
		if _, err := io.ReadFull(r, chk[:]); err != nil {
			return fmt.Errorf("%w: entry %d truncated", ErrSnapshotCorrupt, i)
		}
		if entryCheck(kind, d, payload) != chk {
			return fmt.Errorf("%w: entry %d check mismatch", ErrSnapshotCorrupt, i)
		}
		c, ok := codecFor(kind)
		if !ok {
			s.skipped.Add(1)
			continue
		}
		val, err := c.Decode(payload)
		if err != nil {
			s.skipped.Add(1)
			continue
		}
		s.Put(d, kind, val, payload)
		s.loaded.Add(1)
	}
	// Anything after the declared entries is trailing garbage.
	if _, err := r.ReadByte(); err != io.EOF {
		return fmt.Errorf("%w: trailing data", ErrSnapshotCorrupt)
	}
	return nil
}
