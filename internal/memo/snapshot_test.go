package memo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"testing"
)

// Test-only kinds with registered codecs; high numbers keep clear of the
// real registrations from exp/server init functions.
const (
	kindTestStr byte = 200
	kindTestBad byte = 201 // registered with an always-failing decoder
	kindUnknown byte = 202 // never registered
)

func init() {
	RegisterKind(kindTestStr, Codec{Decode: func(p []byte) (any, error) { return string(p), nil }})
	RegisterKind(kindTestBad, Codec{Decode: func(p []byte) (any, error) { return nil, errors.New("bad") }})
}

func TestSnapshotRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(16)
	for i := 0; i < 5; i++ {
		v := fmt.Sprintf("value-%d", i)
		s.Put(dg(fmt.Sprintf("k%d", i)), kindTestStr, v, []byte(v))
	}
	// Memory-only entry (nil enc) must not be snapshotted.
	s.Put(dg("memonly"), kindTestStr, "ram", nil)
	if err := s.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore(16)
	if err := s2.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		v, ok := s2.GetKind(dg(fmt.Sprintf("k%d", i)), kindTestStr)
		if !ok || v.(string) != fmt.Sprintf("value-%d", i) {
			t.Errorf("k%d: got %v %v", i, v, ok)
		}
	}
	if _, ok := s2.GetKind(dg("memonly"), kindTestStr); ok {
		t.Error("nil-enc entry leaked into the snapshot")
	}
	if st := s2.Stats(); st.Loaded != 5 || st.Skipped != 0 {
		t.Errorf("loaded/skipped = %d/%d, want 5/0", st.Loaded, st.Skipped)
	}
}

func TestSnapshotPreservesRecency(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(16)
	for i := 0; i < 6; i++ {
		v := fmt.Sprintf("v%d", i)
		s.Put(dg(fmt.Sprintf("k%d", i)), kindTestStr, v, []byte(v))
	}
	s.GetKind(dg("k0"), kindTestStr) // k0 becomes most recently used
	if err := s.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	// Reload into a store that only fits 2 entries: the freshest two
	// (k0 and k5) must be the survivors.
	s2 := NewStore(2)
	if err := s2.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if !s2.Peek(dg("k0")) || !s2.Peek(dg("k5")) {
		t.Error("reload did not preserve LRU ordering")
	}
}

func TestSnapshotMissingFileIsCold(t *testing.T) {
	s := NewStore(16)
	if err := s.LoadSnapshot(t.TempDir()); err != nil {
		t.Fatalf("missing snapshot must be a cold start, got %v", err)
	}
}

func writeTestSnapshot(t *testing.T, dir string) string {
	t.Helper()
	s := NewStore(16)
	for i := 0; i < 3; i++ {
		v := fmt.Sprintf("value-%d", i)
		s.Put(dg(fmt.Sprintf("k%d", i)), kindTestStr, v, []byte(v))
	}
	if err := s.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	return SnapshotPath(dir)
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := writeTestSnapshot(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit past the header: the per-entry check must
	// catch it regardless of where it lands.
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := NewStore(16).LoadSnapshot(dir); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	dir := t.TempDir()
	path := writeTestSnapshot(t, dir)
	raw, _ := os.ReadFile(path)
	raw[0] = 'X'
	os.WriteFile(path, raw, 0o644)
	if err := NewStore(16).LoadSnapshot(dir); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
	}
}

func TestSnapshotVersionSkew(t *testing.T) {
	dir := t.TempDir()
	path := writeTestSnapshot(t, dir)
	raw, _ := os.ReadFile(path)
	binary.LittleEndian.PutUint32(raw[8:], snapshotVersion+1)
	os.WriteFile(path, raw, 0o644)
	if err := NewStore(16).LoadSnapshot(dir); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("got %v, want ErrSnapshotVersion", err)
	}
}

func TestSnapshotTruncated(t *testing.T) {
	dir := t.TempDir()
	path := writeTestSnapshot(t, dir)
	raw, _ := os.ReadFile(path)
	for _, cut := range []int{4, 13, len(raw) - 1} {
		os.WriteFile(path, raw[:cut], 0o644)
		if err := NewStore(16).LoadSnapshot(dir); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("truncated at %d: got %v, want ErrSnapshotCorrupt", cut, err)
		}
	}
}

func TestSnapshotTrailingGarbage(t *testing.T) {
	dir := t.TempDir()
	path := writeTestSnapshot(t, dir)
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, append(raw, 0xEE), 0o644)
	if err := NewStore(16).LoadSnapshot(dir); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
	}
}

func TestSnapshotUnknownAndUndecodableKindsSkipped(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(16)
	s.Put(dg("good"), kindTestStr, "good", []byte("good"))
	s.Put(dg("nocodec"), kindUnknown, "x", []byte("x"))
	s.Put(dg("baddecode"), kindTestBad, "y", []byte("y"))
	if err := s.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(16)
	if err := s2.LoadSnapshot(dir); err != nil {
		t.Fatalf("skippable entries must not fail the load: %v", err)
	}
	if v, ok := s2.GetKind(dg("good"), kindTestStr); !ok || v.(string) != "good" {
		t.Errorf("good entry: got %v %v", v, ok)
	}
	if s2.Peek(dg("nocodec")) || s2.Peek(dg("baddecode")) {
		t.Error("skippable entries must not be loaded")
	}
	if st := s2.Stats(); st.Loaded != 1 || st.Skipped != 2 {
		t.Errorf("loaded/skipped = %d/%d, want 1/2", st.Loaded, st.Skipped)
	}
}
