package memo

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Entry kinds: every stored value carries the kind of result it is, so
// per-kind accounting stays separable (the /v1/run cache's hit rate must
// not be diluted by grid cells sharing the store) and the disk snapshot
// knows which codec rehydrates each record. Kinds are part of the
// snapshot format — never renumber, only append.
const (
	// KindCell is one evaluation-grid cell's observables
	// (*exp.ModeResult): a perf cell or, at the memory experiment's
	// larger scale, a memory cell (the footprint is a field of the same
	// record, so the two cell flavours share entries when their
	// effective coordinates coincide).
	KindCell byte = 1
	// KindChaos is one fault-injection cell's outcome (chaos.Outcome).
	KindChaos byte = 2
	// KindRun is one /v1/run HTTP result (status + response bytes).
	KindRun byte = 3
)

// Entry is one store slot. An entry is born either done (Put) or pending
// (StartOrJoin): a pending entry coalesces concurrent identical
// submissions — the creator is the leader and computes; everyone joining
// blocks on Ready and reads the published value.
type Entry struct {
	digest  Digest
	kind    byte
	ready   chan struct{} // closed by Finish
	done    bool          // guarded by Store.mu; true once finished
	waiters uint64        // guarded by Store.mu; pending joins so far

	// val, enc, and keep are written by Finish (or Put) before ready is
	// closed / the entry is published, so readers that observed done (or
	// returned from Ready) may read them without the lock.
	val  any
	enc  []byte
	keep bool
}

// Ready is closed once the entry's leader has published. Only meaningful
// for entries returned by StartOrJoin with leader=false.
func (e *Entry) Ready() <-chan struct{} { return e.ready }

// Value returns the published value. Valid after Ready is closed (or for
// entries returned done).
func (e *Entry) Value() any { return e.val }

// Kept reports the leader's verdict: true for a deterministic result
// that stayed in the store, false for a published-but-dropped outcome
// (followers are served it, but it is not a replayable hit). Valid after
// Ready is closed.
func (e *Entry) Kept() bool { return e.keep }

// Kind returns the entry's result kind.
func (e *Entry) Kind() byte { return e.kind }

// entryOverhead approximates the fixed in-memory cost of one entry
// (digest, list element, map slot, headers) for the bytes gauge.
const entryOverhead = 160

// Stats is a Store counter snapshot.
type Stats struct {
	Hits, Misses, Evictions uint64
	Entries, Bytes          uint64
	// Loaded and Skipped account LoadSnapshot: entries rehydrated into
	// the store, and well-formed entries dropped because their kind had
	// no registered codec or failed to decode.
	Loaded, Skipped uint64
}

// KindStats is the per-kind slice of the counters.
type KindStats struct {
	Hits, Misses, Evictions, Entries uint64
}

// Store is the content-addressed result store: a concurrency-safe,
// entry-bounded LRU keyed by Digest. Two access disciplines share it:
//
//   - Get / Put: the cell path. Get serves only completed entries (a
//     pending entry is a miss — cell runners never block on each other);
//     Put records a computed result, first writer wins.
//   - StartOrJoin / Finish: the request-coalescing path (the /v1/run
//     cache rebuilt). The first caller of a key leads and computes;
//     concurrent identical callers join and are served the published
//     value. Finish is idempotent, so a deferred abandonment Finish is a
//     safe net under a leader that dies without publishing.
//
// Eviction drops least-recently-used completed entries; pending entries
// are never evicted (their leader still has to publish), so the store
// can transiently exceed max by the number of in-flight distinct keys.
type Store struct {
	mu     sync.Mutex
	max    int
	order  *list.List // front = most recently used
	items  map[Digest]*list.Element
	bytes  int64
	byKind [256]int64 // entry counts per kind, guarded by mu

	hits, misses, evictions [256]atomic.Uint64 // per kind
	loaded, skipped         atomic.Uint64
}

// DefaultEntries is the bound NewStore applies to max <= 0: room for
// several full campaigns (the default grid is ~200 cells, the chaos
// campaign 216) plus a working set of /v1/run entries.
const DefaultEntries = 4096

// NewStore builds an empty store bounded to max entries (max <= 0 =
// DefaultEntries).
func NewStore(max int) *Store {
	if max <= 0 {
		max = DefaultEntries
	}
	return &Store{max: max, order: list.New(), items: make(map[Digest]*list.Element)}
}

// Get returns the completed value stored under d. A pending entry (a
// leader is computing it right now) is a miss: the cell path never
// blocks one runner on another. The hit path performs no heap
// allocations — the alloc-budget tests pin that.
func (s *Store) Get(d Digest) (any, bool) {
	s.mu.Lock()
	el, ok := s.items[d]
	if ok {
		e := el.Value.(*Entry)
		if e.done {
			s.order.MoveToFront(el)
			s.mu.Unlock()
			s.hits[e.kind].Add(1)
			return e.val, true
		}
		kind := e.kind
		s.mu.Unlock()
		s.misses[kind].Add(1)
		return nil, false
	}
	s.mu.Unlock()
	// The kind of an absent digest is unknown; callers that care about
	// per-kind miss accounting use GetKind.
	s.misses[0].Add(1)
	return nil, false
}

// GetKind is Get with the caller naming the kind it expects, so misses
// on absent digests are accounted to that kind instead of kind 0.
func (s *Store) GetKind(d Digest, kind byte) (any, bool) {
	s.mu.Lock()
	if el, ok := s.items[d]; ok {
		e := el.Value.(*Entry)
		if e.done {
			s.order.MoveToFront(el)
			s.mu.Unlock()
			s.hits[e.kind].Add(1)
			return e.val, true
		}
	}
	s.mu.Unlock()
	s.misses[kind].Add(1)
	return nil, false
}

// Peek reports whether d is stored and completed, with no counter or
// recency effect — for header probes that must not distort the hit rate.
func (s *Store) Peek(d Digest) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[d]
	return ok && el.Value.(*Entry).done
}

// Put records a completed result under d. enc is the entry's canonical
// serialized payload: it sizes the bytes gauge and is what SaveSnapshot
// writes (nil = memory-only, never snapshotted). If d is already present
// — completed by another runner, or pending under a coalescing leader —
// Put is a no-op beyond refreshing recency: results are deterministic in
// their digest, so the first publication is as good as any.
func (s *Store) Put(d Digest, kind byte, val any, enc []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[d]; ok {
		if el.Value.(*Entry).done {
			s.order.MoveToFront(el)
		}
		return
	}
	e := &Entry{digest: d, kind: kind, ready: closedReady, done: true, keep: true, val: val, enc: enc}
	s.items[d] = s.order.PushFront(e)
	s.bytes += int64(len(enc)) + entryOverhead
	s.byKind[kind]++
	s.evictLocked()
}

// closedReady is the shared already-closed channel of entries born done.
var closedReady = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// StartOrJoin returns the entry for d and whether the caller is its
// leader (responsible for computing and calling Finish). Joining a
// completed entry counts as a hit immediately; joining a pending one is
// counted only at publication, and only if the leader's outcome was kept
// — followers coalesced onto a failed leader are served its value but
// are neither hits nor misses, so error coalescing cannot inflate the
// hit rate. Creating an entry counts as a miss.
func (s *Store) StartOrJoin(d Digest, kind byte) (e *Entry, leader bool) {
	s.mu.Lock()
	if el, ok := s.items[d]; ok {
		e = el.Value.(*Entry)
		s.order.MoveToFront(el)
		if e.done {
			s.mu.Unlock()
			s.hits[e.kind].Add(1)
		} else {
			e.waiters++
			s.mu.Unlock()
		}
		return e, false
	}
	e = &Entry{digest: d, kind: kind, ready: make(chan struct{})}
	s.items[d] = s.order.PushFront(e)
	s.byKind[kind]++
	s.evictLocked()
	s.mu.Unlock()
	s.misses[kind].Add(1)
	return e, true
}

// Finish publishes the leader's value on e, waking all followers.
// keep=false additionally drops the entry from the store (used for
// non-deterministic outcomes that must not be replayed). Finish is
// idempotent: calls after the first are no-ops, so a handler can install
// a deferred abandonment Finish as a safety net — a leader that exits
// without publishing (e.g. a panic recovered by net/http) still wakes
// its followers and frees the key instead of poisoning it until restart.
func (s *Store) Finish(e *Entry, val any, enc []byte, keep bool) {
	s.mu.Lock()
	if e.done {
		s.mu.Unlock()
		return
	}
	e.val, e.enc = val, enc
	e.keep = keep
	e.done = true
	waiters := e.waiters
	if el, ok := s.items[e.digest]; ok && el.Value.(*Entry) == e {
		if keep {
			s.bytes += int64(len(enc)) + entryOverhead
		} else {
			s.order.Remove(el)
			delete(s.items, e.digest)
			s.byKind[e.kind]--
		}
	}
	s.mu.Unlock()
	// Followers that coalesced onto this pending entry become hits only
	// now that a replayable result exists.
	if keep {
		s.hits[e.kind].Add(waiters)
	}
	close(e.ready)
}

// evictLocked drops least-recently-used completed entries until the
// store is within bounds.
func (s *Store) evictLocked() {
	for s.order.Len() > s.max {
		var victim *list.Element
		for el := s.order.Back(); el != nil; el = el.Prev() {
			if el.Value.(*Entry).done {
				victim = el
				break
			}
		}
		if victim == nil {
			return
		}
		e := victim.Value.(*Entry)
		s.order.Remove(victim)
		delete(s.items, e.digest)
		s.bytes -= int64(len(e.enc)) + entryOverhead
		s.byKind[e.kind]--
		s.evictions[e.kind].Add(1)
	}
}

// Stats sums the counters over every kind.
func (s *Store) Stats() Stats {
	var st Stats
	for k := 0; k < 256; k++ {
		st.Hits += s.hits[k].Load()
		st.Misses += s.misses[k].Load()
		st.Evictions += s.evictions[k].Load()
	}
	s.mu.Lock()
	st.Entries = uint64(s.order.Len())
	if s.bytes > 0 {
		st.Bytes = uint64(s.bytes)
	}
	s.mu.Unlock()
	st.Loaded = s.loaded.Load()
	st.Skipped = s.skipped.Load()
	return st
}

// KindStats returns one kind's slice of the counters.
func (s *Store) KindStats(kind byte) KindStats {
	s.mu.Lock()
	entries := s.byKind[kind]
	s.mu.Unlock()
	ks := KindStats{
		Hits:      s.hits[kind].Load(),
		Misses:    s.misses[kind].Load(),
		Evictions: s.evictions[kind].Load(),
	}
	if entries > 0 {
		ks.Entries = uint64(entries)
	}
	return ks
}
