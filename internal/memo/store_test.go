package memo

import (
	"fmt"
	"sync"
	"testing"
)

func dg(s string) Digest { return SourceDigest(s) }

func TestPutGetAndLRUEviction(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 3; i++ {
		s.Put(dg(fmt.Sprintf("k%d", i)), KindCell, i, nil)
	}
	// Touch k0 so k1 is the least recently used.
	if v, ok := s.Get(dg("k0")); !ok || v.(int) != 0 {
		t.Fatalf("k0: got %v %v", v, ok)
	}
	s.Put(dg("k3"), KindCell, 3, nil)
	if _, ok := s.Get(dg("k1")); ok {
		t.Error("k1 should have been evicted as LRU")
	}
	for _, want := range []int{0, 2, 3} {
		if v, ok := s.Get(dg(fmt.Sprintf("k%d", want))); !ok || v.(int) != want {
			t.Errorf("k%d: got %v %v", want, v, ok)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 3 {
		t.Errorf("entries = %d, want 3", st.Entries)
	}
}

func TestBounded(t *testing.T) {
	s := NewStore(8)
	for i := 0; i < 100; i++ {
		s.Put(dg(fmt.Sprintf("k%d", i)), KindCell, i, []byte("payload"))
	}
	if st := s.Stats(); st.Entries != 8 {
		t.Errorf("entries = %d, want 8", st.Entries)
	}
}

func TestHitMissAccounting(t *testing.T) {
	s := NewStore(16)
	s.Put(dg("a"), KindCell, 1, nil)
	s.GetKind(dg("a"), KindCell)
	s.GetKind(dg("a"), KindCell)
	s.GetKind(dg("missing"), KindCell)
	ks := s.KindStats(KindCell)
	if ks.Hits != 2 || ks.Misses != 1 {
		t.Errorf("cell stats = %+v, want 2 hits / 1 miss", ks)
	}
	// Peek must not move any counter.
	s.Peek(dg("a"))
	s.Peek(dg("missing"))
	if ks2 := s.KindStats(KindCell); ks2 != ks {
		t.Errorf("Peek changed counters: %+v -> %+v", ks, ks2)
	}
	if !s.Peek(dg("a")) || s.Peek(dg("missing")) {
		t.Error("Peek truth values wrong")
	}
}

func TestKindSeparation(t *testing.T) {
	s := NewStore(16)
	s.Put(dg("cell"), KindCell, 1, nil)
	s.Put(dg("run"), KindRun, 2, nil)
	s.GetKind(dg("cell"), KindCell)
	s.GetKind(dg("run"), KindRun)
	s.GetKind(dg("run"), KindRun)
	if ks := s.KindStats(KindCell); ks.Hits != 1 || ks.Entries != 1 {
		t.Errorf("cell stats = %+v", ks)
	}
	if ks := s.KindStats(KindRun); ks.Hits != 2 || ks.Entries != 1 {
		t.Errorf("run stats = %+v", ks)
	}
}

func TestPendingNotEvicted(t *testing.T) {
	s := NewStore(2)
	ePend, leader := s.StartOrJoin(dg("pending"), KindRun)
	if !leader {
		t.Fatal("expected leadership of fresh key")
	}
	// Flood past the bound: the pending entry must survive.
	for i := 0; i < 10; i++ {
		s.Put(dg(fmt.Sprintf("k%d", i)), KindCell, i, nil)
	}
	if e2, leader2 := s.StartOrJoin(dg("pending"), KindRun); leader2 || e2 != ePend {
		t.Fatal("pending entry was evicted under pressure")
	}
	s.Finish(ePend, "done", nil, true)
	if v, ok := s.Get(dg("pending")); !ok || v.(string) != "done" {
		t.Fatalf("finished entry: got %v %v", v, ok)
	}
}

func TestGetSkipsPending(t *testing.T) {
	s := NewStore(16)
	e, _ := s.StartOrJoin(dg("p"), KindCell)
	if _, ok := s.Get(dg("p")); ok {
		t.Error("Get must treat a pending entry as a miss, not block")
	}
	s.Finish(e, 1, nil, true)
	if _, ok := s.Get(dg("p")); !ok {
		t.Error("finished entry should hit")
	}
}

func TestCoalescing(t *testing.T) {
	s := NewStore(16)
	const followers = 8
	leaderEntry, leader := s.StartOrJoin(dg("job"), KindRun)
	if !leader {
		t.Fatal("first caller must lead")
	}
	var wg sync.WaitGroup
	results := make([]string, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, lead := s.StartOrJoin(dg("job"), KindRun)
			if lead {
				t.Error("follower elected leader")
				return
			}
			<-e.Ready()
			results[i] = e.Value().(string)
		}(i)
	}
	s.Finish(leaderEntry, "answer", []byte("answer"), true)
	wg.Wait()
	for i, r := range results {
		if r != "answer" {
			t.Errorf("follower %d got %q", i, r)
		}
	}
	ks := s.KindStats(KindRun)
	if ks.Hits != followers || ks.Misses != 1 {
		t.Errorf("run stats = %+v, want %d hits / 1 miss", ks, followers)
	}
}

func TestErrorCoalescingNotCounted(t *testing.T) {
	s := NewStore(16)
	e, _ := s.StartOrJoin(dg("fail"), KindRun)
	done := make(chan string)
	go func() {
		f, lead := s.StartOrJoin(dg("fail"), KindRun)
		if lead {
			t.Error("follower elected leader")
		}
		<-f.Ready()
		done <- f.Value().(string)
	}()
	// Wait until the follower has actually joined so its waiter is
	// registered before the leader publishes.
	for {
		s.mu.Lock()
		w := e.waiters
		s.mu.Unlock()
		if w == 1 {
			break
		}
	}
	s.Finish(e, "error body", nil, false)
	if got := <-done; got != "error body" {
		t.Errorf("follower served %q", got)
	}
	ks := s.KindStats(KindRun)
	if ks.Hits != 0 {
		t.Errorf("dropped outcome counted %d hits, want 0", ks.Hits)
	}
	// The key must be free for a fresh leader.
	if _, lead := s.StartOrJoin(dg("fail"), KindRun); !lead {
		t.Error("dropped entry still occupies its key")
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d after drop + rejoin, want 1 (the new pending)", st.Entries)
	}
}

func TestFinishIdempotent(t *testing.T) {
	s := NewStore(16)
	e, _ := s.StartOrJoin(dg("once"), KindRun)
	s.Finish(e, "first", []byte("first"), true)
	// The abandonment safety-net Finish must be a no-op.
	s.Finish(e, "second", nil, false)
	if v, ok := s.Get(dg("once")); !ok || v.(string) != "first" {
		t.Fatalf("got %v %v, want first", v, ok)
	}
}

func TestAbandonedLeaderFreesKey(t *testing.T) {
	s := NewStore(16)
	e, _ := s.StartOrJoin(dg("crash"), KindRun)
	// Simulates the deferred abandonment Finish in a handler whose
	// leader died before publishing.
	s.Finish(e, nil, nil, false)
	select {
	case <-e.Ready():
	default:
		t.Fatal("abandonment Finish must close Ready")
	}
	if _, lead := s.StartOrJoin(dg("crash"), KindRun); !lead {
		t.Error("abandoned key must accept a new leader")
	}
}

func TestPutFirstWriterWins(t *testing.T) {
	s := NewStore(16)
	s.Put(dg("k"), KindCell, "first", nil)
	s.Put(dg("k"), KindCell, "second", nil)
	if v, _ := s.Get(dg("k")); v.(string) != "first" {
		t.Errorf("got %v, want first", v)
	}
	// Put onto a pending key must not clobber the leader's entry.
	e, _ := s.StartOrJoin(dg("p"), KindRun)
	s.Put(dg("p"), KindRun, "interloper", nil)
	s.Finish(e, "leader", nil, true)
	if v, _ := s.Get(dg("p")); v.(string) != "leader" {
		t.Errorf("got %v, want leader", v)
	}
}

func TestBytesGauge(t *testing.T) {
	s := NewStore(4)
	s.Put(dg("a"), KindCell, 1, make([]byte, 100))
	before := s.Stats().Bytes
	if before < 100 {
		t.Fatalf("bytes = %d, want >= 100", before)
	}
	for i := 0; i < 10; i++ {
		s.Put(dg(fmt.Sprintf("fill%d", i)), KindCell, i, make([]byte, 100))
	}
	st := s.Stats()
	if st.Entries != 4 {
		t.Fatalf("entries = %d", st.Entries)
	}
	if want := uint64(4 * (100 + entryOverhead)); st.Bytes != want {
		t.Errorf("bytes = %d, want %d after evictions", st.Bytes, want)
	}
}

// TestConcurrentMixed hammers every API from many goroutines; run under
// -race it checks the locking discipline, and afterwards the counters
// must reconcile.
func TestConcurrentMixed(t *testing.T) {
	s := NewStore(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := dg(fmt.Sprintf("k%d", i%97))
				switch i % 4 {
				case 0:
					s.Put(key, KindCell, i, nil)
				case 1:
					s.GetKind(key, KindCell)
				case 2:
					s.Peek(key)
				case 3:
					e, lead := s.StartOrJoin(dg(fmt.Sprintf("j%d-%d", g, i)), KindRun)
					if lead {
						s.Finish(e, i, nil, i%5 != 0)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Entries > 64 {
		t.Errorf("entries = %d, exceeded bound", st.Entries)
	}
	if st.Hits+st.Misses == 0 {
		t.Error("no traffic recorded")
	}
}

// TestAllocBudgetStoreHit pins the hit path at zero heap allocations.
func TestAllocBudgetStoreHit(t *testing.T) {
	s := NewStore(16)
	key := dg("hot")
	s.Put(key, KindCell, &struct{ X int }{X: 1}, nil)
	if n := testing.AllocsPerRun(500, func() {
		if _, ok := s.GetKind(key, KindCell); !ok {
			t.Fatal("lost the hot entry")
		}
	}); n != 0 {
		t.Errorf("store hit allocates %v allocs/op, want 0", n)
	}
}
