// Package metadata implements the three complementary object-metadata
// schemes of §3.3: local-offset (Figure 6), subheap (Figure 7), and
// global-table (Figure 8). Each scheme defines (a) how a pointer tag plus
// control-register state locates the in-memory object metadata, and (b) the
// encoding of that metadata. The package is memory-agnostic: callers fetch
// guest words themselves (so the machine can account cache traffic) and use
// the pure encode/decode/locate functions here.
//
// Every scheme's metadata yields the same logical record: the object's base
// address and size (for bounds), a layout-table pointer (for subobject
// narrowing; zero means "no layout table"), and — where the encoding has
// room — a 48-bit MAC guarding against tampering.
package metadata

import (
	"fmt"

	"infat/internal/mac"
	"infat/internal/tag"
)

// --- Local-offset scheme (§3.3.1, Figure 6) ---

// Local is the 16-byte metadata record appended to each local-offset
// object. Both the object base and the metadata base are granule-aligned.
// Packing:
//
//	word0 = size:16 | layoutPtr:48
//	word1 = mac:48  | reserved:16
type Local struct {
	Size      uint16 // object size in bytes (<= tag.MaxLocalObjectSize)
	LayoutPtr uint64 // guest address of the type's layout table; 0 = none
	MAC       uint64 // 48-bit metadata MAC
}

// LocalMetaBytes is the size of the local-offset metadata record.
const LocalMetaBytes = 16

// Encode packs the record into two guest words.
func (l Local) Encode() [2]uint64 {
	return [2]uint64{
		uint64(l.Size) | (l.LayoutPtr&tag.AddrMask)<<16,
		l.MAC & mac.Mask,
	}
}

// DecodeLocal unpacks a local-offset metadata record.
func DecodeLocal(w0, w1 uint64) Local {
	return Local{
		Size:      uint16(w0),
		LayoutPtr: w0 >> 16 & tag.AddrMask,
		MAC:       w1 & mac.Mask,
	}
}

// LocalMetaAddr computes the metadata address from a pointer's current
// address and its granule-offset tag field: the address is truncated to
// the granule and the offset (in granules) added (Figure 6).
func LocalMetaAddr(addr uint64, granuleOff uint16) uint64 {
	return addr&^uint64(tag.Granule-1) + uint64(granuleOff)*tag.Granule
}

// LocalObjectBase derives the object base from the metadata address and the
// object size: the metadata is appended after the object's granule-rounded
// extent, so base = metaAddr - roundUp(size, granule) (§3.3.1: "knowing the
// size is sufficient to derive the object base address").
func LocalObjectBase(metaAddr uint64, size uint16) uint64 {
	return metaAddr - roundGranule(uint64(size))
}

// LocalPlacement computes, for an object of the given size at base, where
// its metadata lives and the total footprint (object + padding + metadata)
// the allocator must reserve. base must be granule-aligned.
func LocalPlacement(base, size uint64) (metaAddr, footprint uint64) {
	metaAddr = base + roundGranule(size)
	return metaAddr, roundGranule(size) + LocalMetaBytes
}

// LocalGranuleOffset computes the tag's granule-offset field for a pointer
// at addr whose metadata is at metaAddr, and reports whether it is
// encodable (the pointer may have drifted too far below the metadata).
func LocalGranuleOffset(addr, metaAddr uint64) (uint16, bool) {
	trunc := addr &^ uint64(tag.Granule-1)
	if metaAddr < trunc {
		return 0, false
	}
	off := (metaAddr - trunc) / tag.Granule
	if off > tag.MaxLocalOffset {
		return 0, false
	}
	return uint16(off), true
}

// LocalMAC computes the MAC over a local-offset record's identity.
func LocalMAC(k mac.Key, objBase uint64, size uint16, layoutPtr uint64) uint64 {
	base, f2, f3 := LocalMACFields(objBase, size, layoutPtr)
	return mac.Object(k, base, f2, f3)
}

// LocalMACFields exposes the (key-independent) mac.Object input triple of
// LocalMAC, so a caller memoizing MAC computations keys its cache on the
// exact packing this package MACs over.
func LocalMACFields(objBase uint64, size uint16, layoutPtr uint64) (uint64, uint64, uint64) {
	return objBase, uint64(size), layoutPtr
}

func roundGranule(n uint64) uint64 {
	return (n + tag.Granule - 1) &^ uint64(tag.Granule-1)
}

// --- Subheap scheme (§3.3.2, Figure 7) ---

// CR is one of the 16 subheap control registers: it maps the tag's 4-bit
// index to a memory block size and the offset of the shared metadata
// within each block. The dashed box of Figure 7 is exactly this mapping.
type CR struct {
	Valid      bool
	BlockBits  uint8  // log2 of the power-of-2 block size
	MetaOffset uint64 // offset of the 32-byte common metadata in each block
}

// BlockBase returns the base of the aligned block containing addr.
func (c CR) BlockBase(addr uint64) uint64 { return addr &^ (uint64(1)<<c.BlockBits - 1) }

// MetaAddr returns the address of the block's shared metadata record.
func (c CR) MetaAddr(addr uint64) uint64 { return c.BlockBase(addr) + c.MetaOffset }

// Subheap is the 32-byte common metadata stored once per block and shared
// by every object in it. Packing (four guest words):
//
//	word0 = slotStart:32 | slotEnd:32   (offsets from block base)
//	word1 = slotSize:32  | objSize:32
//	word2 = layoutPtr:48 | reserved:16
//	word3 = mac:48       | reserved:16
type Subheap struct {
	SlotStart uint32 // first slot's offset from block base
	SlotEnd   uint32 // end of the slot array (offset from block base)
	SlotSize  uint32 // slot stride
	ObjSize   uint32 // object size within each slot (<= SlotSize)
	LayoutPtr uint64
	MAC       uint64
}

// SubheapMetaBytes is the size of the per-block shared metadata (§3.3.2:
// "the size of the common metadata in each block is 32 bytes").
const SubheapMetaBytes = 32

// Encode packs the record into four guest words.
func (s Subheap) Encode() [4]uint64 {
	return [4]uint64{
		uint64(s.SlotStart) | uint64(s.SlotEnd)<<32,
		uint64(s.SlotSize) | uint64(s.ObjSize)<<32,
		s.LayoutPtr & tag.AddrMask,
		s.MAC & mac.Mask,
	}
}

// DecodeSubheap unpacks a subheap metadata record.
func DecodeSubheap(w [4]uint64) Subheap {
	return Subheap{
		SlotStart: uint32(w[0]),
		SlotEnd:   uint32(w[0] >> 32),
		SlotSize:  uint32(w[1]),
		ObjSize:   uint32(w[1] >> 32),
		LayoutPtr: w[2] & tag.AddrMask,
		MAC:       w[3] & mac.Mask,
	}
}

// Slot locates the object containing addr within the block: it returns the
// object's base address. ok is false when addr falls outside the slot
// array or the record is degenerate — promote poisons the pointer in that
// case. The division by SlotSize is the hardware division the paper
// constrains to be cheap (power of two or a small multiple).
func (s Subheap) Slot(blockBase, addr uint64) (objBase uint64, ok bool) {
	if s.SlotSize == 0 || s.ObjSize == 0 || s.ObjSize > s.SlotSize || s.SlotEnd <= s.SlotStart {
		return 0, false
	}
	start := blockBase + uint64(s.SlotStart)
	end := blockBase + uint64(s.SlotEnd)
	if addr < start || addr >= end {
		return 0, false
	}
	slot := (addr - start) / uint64(s.SlotSize)
	return start + slot*uint64(s.SlotSize), true
}

// SubheapMAC computes the MAC over a block's shared-metadata identity. The
// block base stands in for the object base: the metadata describes every
// object in the block.
func SubheapMAC(k mac.Key, blockBase uint64, s Subheap) uint64 {
	base, f2, f3 := SubheapMACFields(blockBase, s)
	return mac.Object(k, base, f2, f3)
}

// SubheapMACFields exposes the mac.Object input triple of SubheapMAC (see
// LocalMACFields).
func SubheapMACFields(blockBase uint64, s Subheap) (uint64, uint64, uint64) {
	return blockBase,
		uint64(s.SlotStart) | uint64(s.SlotEnd)<<32 | uint64(s.SlotSize)<<16 ^ uint64(s.ObjSize),
		s.LayoutPtr
}

// --- Global-table scheme (§3.3.3, Figure 8) ---

// GlobalRow is one 16-byte row of the global metadata table. Packing:
//
//	word0 = base:48 | sizeLo:16
//	word1 = layoutPtr:48 | sizeHi:16
//
// giving 32 bits of size (4 GiB cap — the scheme exists precisely for
// objects too large for the other schemes). A row with base==0 && size==0
// is free/invalid. No MAC fits in the paper's 16-byte row; the table is
// runtime-managed memory, which the paper accepts for this scheme.
type GlobalRow struct {
	Base      uint64
	Size      uint64 // <= MaxGlobalObjectSize
	LayoutPtr uint64
}

// GlobalRowBytes is the size of one table row (§3.3.3).
const GlobalRowBytes = 16

// MaxGlobalObjectSize is the largest object a global-table row can
// describe.
const MaxGlobalObjectSize = 1<<32 - 1

// Encode packs the row into two guest words.
func (g GlobalRow) Encode() [2]uint64 {
	return [2]uint64{
		g.Base&tag.AddrMask | (g.Size&0xFFFF)<<48,
		g.LayoutPtr&tag.AddrMask | (g.Size>>16&0xFFFF)<<48,
	}
}

// DecodeGlobalRow unpacks a table row.
func DecodeGlobalRow(w0, w1 uint64) GlobalRow {
	return GlobalRow{
		Base:      w0 & tag.AddrMask,
		Size:      w0>>48 | (w1>>48)<<16,
		LayoutPtr: w1 & tag.AddrMask,
	}
}

// IsFree reports whether the row is unoccupied.
func (g GlobalRow) IsFree() bool { return g.Base == 0 && g.Size == 0 }

// RowAddr returns the guest address of row idx in a table at tableBase.
func RowAddr(tableBase uint64, idx uint16) uint64 {
	return tableBase + uint64(idx)*GlobalRowBytes
}

func (g GlobalRow) String() string {
	return fmt.Sprintf("row{base=%#x size=%d layout=%#x}", g.Base, g.Size, g.LayoutPtr)
}
