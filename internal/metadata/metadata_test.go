package metadata

import (
	"testing"
	"testing/quick"

	"infat/internal/mac"
	"infat/internal/tag"
)

func TestLocalEncodeDecode(t *testing.T) {
	l := Local{Size: 1008, LayoutPtr: 0x7fff_dead_be00, MAC: 0xabcdef012345}
	got := DecodeLocal(l.Encode()[0], l.Encode()[1])
	if got != l {
		t.Errorf("round trip = %+v, want %+v", got, l)
	}
}

func TestLocalQuickRoundTrip(t *testing.T) {
	f := func(size uint16, lp, m uint64) bool {
		l := Local{Size: size, LayoutPtr: lp & tag.AddrMask, MAC: m & mac.Mask}
		w := l.Encode()
		return DecodeLocal(w[0], w[1]) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalPlacement(t *testing.T) {
	// A 100-byte object at 0x1000: metadata at 0x1000+112 (granule-rounded)
	// and 128 bytes of footprint.
	meta, foot := LocalPlacement(0x1000, 100)
	if meta != 0x1000+112 {
		t.Errorf("metaAddr = %#x, want %#x", meta, 0x1000+112)
	}
	if foot != 112+LocalMetaBytes {
		t.Errorf("footprint = %d, want %d", foot, 112+LocalMetaBytes)
	}
	// Granule-multiple sizes need no padding.
	meta, foot = LocalPlacement(0x2000, 64)
	if meta != 0x2040 || foot != 80 {
		t.Errorf("aligned placement = (%#x,%d)", meta, foot)
	}
}

func TestLocalObjectBaseInvertsPlacement(t *testing.T) {
	for _, size := range []uint64{1, 15, 16, 17, 100, 1008} {
		base := uint64(0x4000)
		meta, _ := LocalPlacement(base, size)
		if got := LocalObjectBase(meta, uint16(size)); got != base {
			t.Errorf("size %d: base = %#x, want %#x", size, got, base)
		}
	}
}

func TestLocalMetaAddrFromTag(t *testing.T) {
	base := uint64(0x5000)
	meta, _ := LocalPlacement(base, 100) // 0x5070
	// A pointer anywhere inside the object must reach the metadata via
	// its granule offset.
	for _, addr := range []uint64{base, base + 1, base + 15, base + 16, base + 99} {
		off, ok := LocalGranuleOffset(addr, meta)
		if !ok {
			t.Fatalf("offset not encodable at %#x", addr)
		}
		if got := LocalMetaAddr(addr, off); got != meta {
			t.Errorf("addr %#x: meta = %#x, want %#x", addr, got, meta)
		}
	}
}

func TestLocalGranuleOffsetLimits(t *testing.T) {
	meta := uint64(0x10000)
	// Exactly MaxLocalOffset granules below: encodable.
	addr := meta - tag.MaxLocalOffset*tag.Granule
	if off, ok := LocalGranuleOffset(addr, meta); !ok || off != tag.MaxLocalOffset {
		t.Errorf("max offset = (%d,%v)", off, ok)
	}
	// One granule further: not encodable.
	if _, ok := LocalGranuleOffset(addr-tag.Granule, meta); ok {
		t.Error("over-limit offset encodable")
	}
	// Pointer above the metadata: not encodable.
	if _, ok := LocalGranuleOffset(meta+tag.Granule, meta); ok {
		t.Error("negative offset encodable")
	}
}

func TestSubheapEncodeDecode(t *testing.T) {
	s := Subheap{SlotStart: 64, SlotEnd: 4032, SlotSize: 96, ObjSize: 80,
		LayoutPtr: 0x1234_5678_9abc, MAC: 0x777777777777}
	if got := DecodeSubheap(s.Encode()); got != s {
		t.Errorf("round trip = %+v, want %+v", got, s)
	}
}

func TestSubheapQuickRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint32, lp, m uint64) bool {
		s := Subheap{SlotStart: a, SlotEnd: b, SlotSize: c, ObjSize: d,
			LayoutPtr: lp & tag.AddrMask, MAC: m & mac.Mask}
		return DecodeSubheap(s.Encode()) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubheapCRAddressing(t *testing.T) {
	cr := CR{Valid: true, BlockBits: 12, MetaOffset: 32}
	if cr.BlockBase(0x12345) != 0x12000 {
		t.Errorf("block base = %#x", cr.BlockBase(0x12345))
	}
	if cr.MetaAddr(0x12345) != 0x12020 {
		t.Errorf("meta addr = %#x", cr.MetaAddr(0x12345))
	}
}

func TestSubheapSlotResolution(t *testing.T) {
	s := Subheap{SlotStart: 64, SlotEnd: 64 + 4*96, SlotSize: 96, ObjSize: 80}
	block := uint64(0x4000)
	cases := []struct {
		addr    uint64
		objBase uint64
		ok      bool
	}{
		{block + 64, block + 64, true},           // first slot, first byte
		{block + 64 + 79, block + 64, true},      // inside first object
		{block + 64 + 96, block + 64 + 96, true}, // second slot
		{block + 64 + 96*3, block + 64 + 288, true},
		{block + 63, 0, false},        // before slot array (metadata zone)
		{block + 64 + 96*4, 0, false}, // past slot array
	}
	for _, tc := range cases {
		got, ok := s.Slot(block, tc.addr)
		if ok != tc.ok || (ok && got != tc.objBase) {
			t.Errorf("Slot(%#x) = (%#x,%v), want (%#x,%v)", tc.addr, got, ok, tc.objBase, tc.ok)
		}
	}
}

func TestSubheapSlotDegenerate(t *testing.T) {
	bad := []Subheap{
		{SlotStart: 64, SlotEnd: 160, SlotSize: 0, ObjSize: 8},   // zero stride
		{SlotStart: 64, SlotEnd: 160, SlotSize: 32, ObjSize: 0},  // zero object
		{SlotStart: 64, SlotEnd: 160, SlotSize: 32, ObjSize: 48}, // obj > slot
		{SlotStart: 160, SlotEnd: 64, SlotSize: 32, ObjSize: 8},  // inverted
	}
	for i, s := range bad {
		if _, ok := s.Slot(0x4000, 0x4080); ok {
			t.Errorf("degenerate record %d resolved a slot", i)
		}
	}
}

func TestSubheapMACTamperSensitive(t *testing.T) {
	k := mac.NewKey(5)
	s := Subheap{SlotStart: 64, SlotEnd: 4032, SlotSize: 96, ObjSize: 80, LayoutPtr: 0x9000}
	ref := SubheapMAC(k, 0x4000, s)
	mut := s
	mut.ObjSize = 96
	if SubheapMAC(k, 0x4000, mut) == ref {
		t.Error("ObjSize tamper undetected")
	}
	mut = s
	mut.LayoutPtr = 0x9010
	if SubheapMAC(k, 0x4000, mut) == ref {
		t.Error("LayoutPtr tamper undetected")
	}
	if SubheapMAC(k, 0x8000, s) == ref {
		t.Error("relocated block kept the same MAC")
	}
}

func TestGlobalRowEncodeDecode(t *testing.T) {
	g := GlobalRow{Base: 0x7000_1234_5678, Size: 3 << 30, LayoutPtr: 0x6000}
	w := g.Encode()
	if got := DecodeGlobalRow(w[0], w[1]); got != g {
		t.Errorf("round trip = %+v, want %+v", got, g)
	}
}

func TestGlobalRowQuickRoundTrip(t *testing.T) {
	f := func(base, lp uint64, size uint32) bool {
		g := GlobalRow{Base: base & tag.AddrMask, Size: uint64(size), LayoutPtr: lp & tag.AddrMask}
		w := g.Encode()
		return DecodeGlobalRow(w[0], w[1]) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGlobalRowFree(t *testing.T) {
	if !(GlobalRow{}).IsFree() {
		t.Error("zero row not free")
	}
	if (GlobalRow{Base: 0x1000, Size: 8}).IsFree() {
		t.Error("occupied row reported free")
	}
	if (GlobalRow{}).String() == "" {
		t.Error("empty string")
	}
}

func TestRowAddr(t *testing.T) {
	if RowAddr(0x9000, 0) != 0x9000 || RowAddr(0x9000, 3) != 0x9030 {
		t.Error("row addressing")
	}
	// Max index stays within a 64 KiB table.
	if RowAddr(0, tag.MaxGlobalIndex) != 4095*16 {
		t.Error("max row address")
	}
}

// Property: Slot never returns a base outside [blockBase+SlotStart,
// blockBase+SlotEnd) and always at a slot stride.
func TestQuickSlotSoundness(t *testing.T) {
	f := func(start16, n8, stride8, off16 uint16) bool {
		start := uint32(start16 % 512)
		stride := uint32(stride8%64) + 1
		n := uint32(n8%32) + 1
		s := Subheap{SlotStart: start, SlotEnd: start + n*stride,
			SlotSize: stride, ObjSize: stride}
		block := uint64(0x100000)
		addr := block + uint64(off16%4096)
		got, ok := s.Slot(block, addr)
		if !ok {
			return addr < block+uint64(start) || addr >= block+uint64(start+n*stride)
		}
		rel := got - block - uint64(start)
		return got >= block+uint64(start) && got < block+uint64(start+n*stride) &&
			rel%uint64(stride) == 0 && addr >= got && addr < got+uint64(stride)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
