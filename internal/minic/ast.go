package minic

import "infat/internal/layout"

// Program is a parsed translation unit.
type Program struct {
	Structs map[string]*layout.Type
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// VarDecl declares a variable (global, local, or parameter).
type VarDecl struct {
	Name string
	Type *layout.Type
	Init Expr // optional initializer
	Line int
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Ret    *layout.Type // Void for none
	Params []*VarDecl
	Body   *Block
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	Stmts []Stmt
}

// DeclStmt declares a local variable.
type DeclStmt struct {
	Decl *VarDecl
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	E    Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do { } while (cond); loop.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
}

// SwitchStmt is a C switch over integer case labels. Cases fall through
// unless they break, like C.
type SwitchStmt struct {
	Scrut   Expr
	Cases   []SwitchCase
	Default []Stmt // nil if absent
	Line    int
}

// SwitchCase is one `case N:` arm.
type SwitchCase struct {
	Value int64
	Body  []Stmt
}

// ForStmt is a C for loop.
type ForStmt struct {
	Init Stmt // may be nil (DeclStmt or ExprStmt)
	Cond Expr // may be nil
	Post Expr // may be nil
	Body Stmt
}

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	E    Expr // may be nil
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*SwitchStmt) stmtNode()   {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface{ exprLine() int }

// NumExpr is an integer or character literal.
type NumExpr struct {
	V    int64
	Line int
}

// StrExpr is a string literal.
type StrExpr struct {
	S    string
	Line int
}

// IdentExpr names a variable.
type IdentExpr struct {
	Name string
	Line int
}

// UnaryExpr is &x, *x, -x, !x, ~x.
type UnaryExpr struct {
	Op   string
	E    Expr
	Line int
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   string
	L, R Expr
	Line int
}

// AssignExpr is lhs = rhs (plain assignment; compound ops are desugared by
// the parser).
type AssignExpr struct {
	L, R Expr
	Line int
}

// IndexExpr is base[idx].
type IndexExpr struct {
	Base, Idx Expr
	Line      int
}

// MemberExpr is base.name or base->name.
type MemberExpr struct {
	Base  Expr
	Name  string
	Arrow bool
	Line  int
}

// CallExpr calls a named function or builtin.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// CastExpr is (type)expr.
type CastExpr struct {
	Type *layout.Type
	E    Expr
	Line int
}

// SizeofExpr is sizeof(type).
type SizeofExpr struct {
	Type *layout.Type
	Line int
}

func (e *NumExpr) exprLine() int    { return e.Line }
func (e *StrExpr) exprLine() int    { return e.Line }
func (e *IdentExpr) exprLine() int  { return e.Line }
func (e *UnaryExpr) exprLine() int  { return e.Line }
func (e *BinaryExpr) exprLine() int { return e.Line }
func (e *AssignExpr) exprLine() int { return e.Line }
func (e *IndexExpr) exprLine() int  { return e.Line }
func (e *MemberExpr) exprLine() int { return e.Line }
func (e *CallExpr) exprLine() int   { return e.Line }
func (e *CastExpr) exprLine() int   { return e.Line }
func (e *SizeofExpr) exprLine() int { return e.Line }
