package minic

import (
	"fmt"
	"sync"

	"infat/internal/layout"
)

// Op is an IR opcode. The IR is a stack machine whose values are
// (value, bounds-register) pairs — a software rendering of the IFPR model:
// every pointer value on the stack drags its bounds register along, and
// the explicit IFP operations (OpGep/ifpadd, the Sub field/ifpidx,
// OpBnd/ifpbnd, OpLoadP's promote, OpStoreP's demote) are emitted by the
// instrumentation pass below, exactly where Figure 3 places them.
type Op uint8

// IR opcodes.
const (
	OpConst  Op = iota // push Imm
	OpStr              // push pointer to interned string Imm
	OpLocal            // push address (+bounds) of local slot Imm
	OpGlobal           // push address (+bounds) of global Imm
	OpLoad             // pop addr, push Size-byte scalar
	OpLoadP            // pop addr, push pointer (promote)
	OpStore            // pop addr, pop value, store Size bytes
	OpStoreP           // pop addr, pop pointer value, demote + store
	OpGep              // pop ptr, push ptr+Imm (ifpadd); Sub = ifpidx operand
	OpGepDyn           // pop index, pop ptr, push ptr+index*Imm; Sub = ifpidx
	OpBnd              // narrow top's bounds to [addr, addr+Imm) (ifpbnd)
	OpAddr             // strip tag of top (address-only compares)

	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpShl
	OpShr
	OpAnd
	OpOr
	OpXor
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpNeg
	OpNot
	OpBnot

	OpJmp // jump to Imm
	OpJz  // pop; jump to Imm if zero
	OpJnz // pop; jump to Imm if non-zero
	OpDup
	OpPop

	OpCall   // call function Imm with Sub args
	OpRet    // Sub = 1 if a value is returned
	OpMalloc // pop size; Imm = malloc-type index or -1
	OpFree   // pop ptr
	OpMemset // pop n, pop v, pop ptr
	OpMemcpy // pop n, pop src, pop dst
	OpPrint  // pop value -> program output
)

// SubKeep in the Sub field means "no ifpidx update".
const SubKeep uint16 = 0xFFFF

// Insn is one IR instruction.
type Insn struct {
	Op   Op
	Imm  int64
	Sub  uint16
	Size uint8
	Line int32
}

// LocalInfo describes one function-local slot.
type LocalInfo struct {
	Name string
	Type *layout.Type
	// Registered locals get In-Fat Pointer object metadata (aggregates
	// and address-taken scalars — the objects "whose use cannot be
	// statically determined to be safe", §3.1); the rest are raw frame
	// slots.
	Registered bool
}

// Func is a compiled function.
type Func struct {
	Name    string
	Ret     *layout.Type
	NParams int
	Locals  []LocalInfo
	Code    []Insn
}

// Compiled is a lowered program ready for the VM.
//
// A Compiled is immutable once Compile returns: the VM, NewVM, and every
// other consumer treat all of its fields (and everything reachable from
// them — code, locals, globals, layout types) as read-only. That contract
// is what makes the Interner sound: one *Compiled may be shared by any
// number of VMs across goroutines without synchronization. Do not mutate
// a Compiled after construction.
type Compiled struct {
	Funcs       []*Func
	FuncIdx     map[string]int
	Globals     []*VarDecl
	Strings     []string
	MallocTypes []*layout.Type
	// Wrappers lists the detected allocation-wrapper functions (the
	// §5.2.1 future-work feature): thin functions whose body just
	// forwards to malloc. Calls to them are treated as malloc calls so
	// the allocation-type deduction (and therefore layout tables and
	// subobject narrowing) still works — the paper's CoreMark/bzip2
	// limitation, lifted.
	Wrappers []string

	// Lowered-form cache (see lower.go). The sync.Once carries its own
	// synchronization, so lazily lowering does not break the read-only
	// sharing contract above: every reader observes either nil (and
	// lowers itself, with Do electing one winner) or the same immutable
	// *Lowered.
	lowerOnce sync.Once
	lowered   *Lowered
	lowerErr  error
}

// CompileError is a semantic error.
type CompileError struct {
	Line int
	Msg  string
}

func (e *CompileError) Error() string { return fmt.Sprintf("minic:%d: %s", e.Line, e.Msg) }

// Compile lowers a parsed program, running the In-Fat Pointer
// instrumentation pass.
func Compile(prog *Program) (*Compiled, error) {
	c := &compiler{
		out: &Compiled{FuncIdx: map[string]int{}, Globals: prog.Globals},
	}
	for i, fn := range prog.Funcs {
		if _, dup := c.out.FuncIdx[fn.Name]; dup {
			return nil, &CompileError{fn.Line, fmt.Sprintf("function %q redefined", fn.Name)}
		}
		c.out.FuncIdx[fn.Name] = i
		c.out.Funcs = append(c.out.Funcs, &Func{Name: fn.Name, Ret: fn.Ret, NParams: len(fn.Params)})
	}
	c.globals = map[string]int{}
	for i, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return nil, &CompileError{g.Line, fmt.Sprintf("global %q redefined", g.Name)}
		}
		c.globals[g.Name] = i
	}
	c.wrappers = map[string]bool{}
	for _, fn := range prog.Funcs {
		if isAllocWrapper(fn) {
			c.wrappers[fn.Name] = true
			c.out.Wrappers = append(c.out.Wrappers, fn.Name)
		}
	}
	for i, fn := range prog.Funcs {
		if err := c.compileFunc(fn, c.out.Funcs[i]); err != nil {
			return nil, err
		}
	}
	if _, ok := c.out.FuncIdx["main"]; !ok {
		return nil, &CompileError{1, "no main function"}
	}
	return c.out, nil
}

type compiler struct {
	out      *Compiled
	globals  map[string]int
	wrappers map[string]bool // allocation-wrapper functions

	// per-function state
	fn          *Func
	locals      map[string]int
	breaks      []int // patch sites for break
	conts       []int // patch sites for continue
	loopTops    []int
	switchDepth int
}

// isAllocWrapper recognizes thin allocation wrappers: one scalar
// parameter, and a body that is exactly `return malloc(param);` (possibly
// through a pointer cast). Calls to such functions are lowered as malloc
// calls, so the call site's cast still drives allocation-type deduction.
func isAllocWrapper(fn *FuncDecl) bool {
	if len(fn.Params) != 1 || fn.Body == nil || len(fn.Body.Stmts) != 1 {
		return false
	}
	if fn.Ret == nil || fn.Ret.Kind != layout.KindPointer {
		return false
	}
	ret, ok := fn.Body.Stmts[0].(*ReturnStmt)
	if !ok || ret.E == nil {
		return false
	}
	e := ret.E
	if cast, ok := e.(*CastExpr); ok {
		e = cast.E
	}
	call, ok := e.(*CallExpr)
	if !ok || call.Name != "malloc" || len(call.Args) != 1 {
		return false
	}
	arg, ok := call.Args[0].(*IdentExpr)
	return ok && arg.Name == fn.Params[0].Name
}

func (c *compiler) emit(i Insn) int {
	c.fn.Code = append(c.fn.Code, i)
	return len(c.fn.Code) - 1
}

func (c *compiler) errf(line int, format string, args ...interface{}) error {
	return &CompileError{line, fmt.Sprintf(format, args...)}
}

// needsRegistration decides which locals get object metadata: aggregates
// always; scalars only when address-taken (found by scan).
func needsRegistration(t *layout.Type, addressTaken bool) bool {
	return t.Kind == layout.KindStruct || t.Kind == layout.KindArray || addressTaken
}

func (c *compiler) compileFunc(fn *FuncDecl, out *Func) error {
	c.fn = out
	c.locals = map[string]int{}
	taken := map[string]bool{}
	scanAddressTaken(fn.Body, taken)

	addLocal := func(d *VarDecl) error {
		if _, dup := c.locals[d.Name]; dup {
			return c.errf(d.Line, "local %q redefined", d.Name)
		}
		c.locals[d.Name] = len(out.Locals)
		out.Locals = append(out.Locals, LocalInfo{
			Name:       d.Name,
			Type:       d.Type,
			Registered: needsRegistration(d.Type, taken[d.Name]),
		})
		return nil
	}
	for _, p := range fn.Params {
		if err := addLocal(p); err != nil {
			return err
		}
	}
	if err := collectLocals(fn.Body, addLocal); err != nil {
		return err
	}

	if err := c.compileBlock(fn.Body); err != nil {
		return err
	}
	c.emit(Insn{Op: OpRet, Sub: 0, Line: int32(fn.Line)})
	return nil
}

// scanAddressTaken marks identifiers whose address escapes via unary &.
func scanAddressTaken(s Stmt, taken map[string]bool) {
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch v := e.(type) {
		case *UnaryExpr:
			if v.Op == "&" {
				if id, ok := v.E.(*IdentExpr); ok {
					taken[id.Name] = true
				}
			}
			walkExpr(v.E)
		case *BinaryExpr:
			walkExpr(v.L)
			walkExpr(v.R)
		case *AssignExpr:
			walkExpr(v.L)
			walkExpr(v.R)
		case *IndexExpr:
			walkExpr(v.Base)
			walkExpr(v.Idx)
		case *MemberExpr:
			walkExpr(v.Base)
		case *CallExpr:
			for _, a := range v.Args {
				walkExpr(a)
			}
		case *CastExpr:
			walkExpr(v.E)
		}
	}
	var walk func(s Stmt)
	walk = func(s Stmt) {
		switch v := s.(type) {
		case *Block:
			for _, st := range v.Stmts {
				walk(st)
			}
		case *DeclStmt:
			if v.Decl.Init != nil {
				walkExpr(v.Decl.Init)
			}
		case *ExprStmt:
			walkExpr(v.E)
		case *IfStmt:
			walkExpr(v.Cond)
			walk(v.Then)
			if v.Else != nil {
				walk(v.Else)
			}
		case *WhileStmt:
			walkExpr(v.Cond)
			walk(v.Body)
		case *DoWhileStmt:
			walk(v.Body)
			walkExpr(v.Cond)
		case *SwitchStmt:
			walkExpr(v.Scrut)
			for _, cs := range v.Cases {
				for _, st := range cs.Body {
					walk(st)
				}
			}
			for _, st := range v.Default {
				walk(st)
			}
		case *ForStmt:
			if v.Init != nil {
				walk(v.Init)
			}
			if v.Cond != nil {
				walkExpr(v.Cond)
			}
			if v.Post != nil {
				walkExpr(v.Post)
			}
			walk(v.Body)
		case *ReturnStmt:
			if v.E != nil {
				walkExpr(v.E)
			}
		}
	}
	walk(s)
}

func collectLocals(s Stmt, add func(*VarDecl) error) error {
	switch v := s.(type) {
	case *Block:
		for _, st := range v.Stmts {
			if err := collectLocals(st, add); err != nil {
				return err
			}
		}
	case *DeclStmt:
		return add(v.Decl)
	case *IfStmt:
		if err := collectLocals(v.Then, add); err != nil {
			return err
		}
		if v.Else != nil {
			return collectLocals(v.Else, add)
		}
	case *WhileStmt:
		return collectLocals(v.Body, add)
	case *DoWhileStmt:
		return collectLocals(v.Body, add)
	case *SwitchStmt:
		for _, cs := range v.Cases {
			for _, st := range cs.Body {
				if err := collectLocals(st, add); err != nil {
					return err
				}
			}
		}
		for _, st := range v.Default {
			if err := collectLocals(st, add); err != nil {
				return err
			}
		}
	case *ForStmt:
		if v.Init != nil {
			if err := collectLocals(v.Init, add); err != nil {
				return err
			}
		}
		return collectLocals(v.Body, add)
	}
	return nil
}

// --- statements ---

func (c *compiler) compileBlock(b *Block) error {
	for _, s := range b.Stmts {
		if err := c.compileStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) compileStmt(s Stmt) error {
	switch v := s.(type) {
	case *Block:
		return c.compileBlock(v)
	case *DeclStmt:
		if v.Decl.Init == nil {
			return nil
		}
		return c.compileAssignTo(&IdentExpr{Name: v.Decl.Name, Line: v.Decl.Line}, v.Decl.Init, v.Decl.Line)
	case *ExprStmt:
		// Statement-position assignments store without re-reading.
		if asg, ok := v.E.(*AssignExpr); ok {
			return c.compileAssignTo(asg.L, asg.R, asg.Line)
		}
		t, err := c.compileExpr(v.E)
		if err != nil {
			return err
		}
		if t != layout.Void {
			c.emit(Insn{Op: OpPop, Line: int32(v.Line)})
		}
		return nil
	case *IfStmt:
		if _, err := c.compileValue(v.Cond); err != nil {
			return err
		}
		jz := c.emit(Insn{Op: OpJz})
		if err := c.compileStmt(v.Then); err != nil {
			return err
		}
		if v.Else != nil {
			jmp := c.emit(Insn{Op: OpJmp})
			c.fn.Code[jz].Imm = int64(len(c.fn.Code))
			if err := c.compileStmt(v.Else); err != nil {
				return err
			}
			c.fn.Code[jmp].Imm = int64(len(c.fn.Code))
		} else {
			c.fn.Code[jz].Imm = int64(len(c.fn.Code))
		}
		return nil
	case *WhileStmt:
		top := len(c.fn.Code)
		if _, err := c.compileValue(v.Cond); err != nil {
			return err
		}
		jz := c.emit(Insn{Op: OpJz})
		c.pushLoop(top)
		if err := c.compileStmt(v.Body); err != nil {
			return err
		}
		c.emit(Insn{Op: OpJmp, Imm: int64(top)})
		c.fn.Code[jz].Imm = int64(len(c.fn.Code))
		c.popLoop(len(c.fn.Code), top)
		return nil
	case *DoWhileStmt:
		top := len(c.fn.Code)
		c.pushLoop(top)
		if err := c.compileStmt(v.Body); err != nil {
			return err
		}
		condAt := len(c.fn.Code)
		if _, err := c.compileValue(v.Cond); err != nil {
			return err
		}
		c.emit(Insn{Op: OpJnz, Imm: int64(top)})
		c.popLoop(len(c.fn.Code), condAt)
		return nil
	case *SwitchStmt:
		return c.compileSwitch(v)
	case *ForStmt:
		if v.Init != nil {
			if err := c.compileStmt(v.Init); err != nil {
				return err
			}
		}
		top := len(c.fn.Code)
		jz := -1
		if v.Cond != nil {
			if _, err := c.compileValue(v.Cond); err != nil {
				return err
			}
			jz = c.emit(Insn{Op: OpJz})
		}
		c.pushLoop(-1) // continue target patched to post
		if err := c.compileStmt(v.Body); err != nil {
			return err
		}
		post := len(c.fn.Code)
		if v.Post != nil {
			if asg, ok := v.Post.(*AssignExpr); ok {
				if err := c.compileAssignTo(asg.L, asg.R, asg.Line); err != nil {
					return err
				}
			} else {
				t, err := c.compileExpr(v.Post)
				if err != nil {
					return err
				}
				if t != layout.Void {
					c.emit(Insn{Op: OpPop})
				}
			}
		}
		c.emit(Insn{Op: OpJmp, Imm: int64(top)})
		end := len(c.fn.Code)
		if jz >= 0 {
			c.fn.Code[jz].Imm = int64(end)
		}
		c.popLoop(end, post)
		return nil
	case *ReturnStmt:
		if v.E != nil {
			if _, err := c.compileValue(v.E); err != nil {
				return err
			}
			c.emit(Insn{Op: OpRet, Sub: 1, Line: int32(v.Line)})
		} else {
			c.emit(Insn{Op: OpRet, Line: int32(v.Line)})
		}
		return nil
	case *BreakStmt:
		if len(c.loopTops) == 0 && c.switchDepth == 0 {
			return c.errf(v.Line, "break outside loop or switch")
		}
		c.breaks = append(c.breaks, c.emit(Insn{Op: OpJmp, Imm: -1, Line: int32(v.Line)}))
		return nil
	case *ContinueStmt:
		if len(c.loopTops) == 0 {
			return c.errf(v.Line, "continue outside loop")
		}
		c.conts = append(c.conts, c.emit(Insn{Op: OpJmp, Imm: -2, Line: int32(v.Line)}))
		return nil
	}
	return fmt.Errorf("minic: unknown statement %T", s)
}

// pushLoop/popLoop manage break/continue patch lists per loop nest.
func (c *compiler) pushLoop(top int) {
	c.loopTops = append(c.loopTops, len(c.breaks)<<32|len(c.conts))
}

func (c *compiler) popLoop(breakTarget, contTarget int) {
	marks := c.loopTops[len(c.loopTops)-1]
	c.loopTops = c.loopTops[:len(c.loopTops)-1]
	bMark, cMark := marks>>32, marks&0xFFFFFFFF
	for _, site := range c.breaks[bMark:] {
		c.fn.Code[site].Imm = int64(breakTarget)
	}
	c.breaks = c.breaks[:bMark]
	for _, site := range c.conts[cMark:] {
		c.fn.Code[site].Imm = int64(contTarget)
	}
	c.conts = c.conts[:cMark]
}

// compileSwitch lowers a switch with C fallthrough semantics: a dispatch
// chain comparing the scrutinee against each label, then the case bodies
// laid out sequentially. `break` inside the switch jumps past the end;
// `continue` binds to the enclosing loop, so only the break list is
// scoped here.
func (c *compiler) compileSwitch(v *SwitchStmt) error {
	if _, err := c.compileValue(v.Scrut); err != nil {
		return err
	}
	// Dispatch chain: the scrutinee stays on the stack while each label
	// is tested; matching jumps go to a per-case stub that pops the
	// scrutinee before falling into the (fallthrough-shared) body.
	caseJumps := make([]int, len(v.Cases))
	for i, cs := range v.Cases {
		c.emit(Insn{Op: OpDup, Line: int32(v.Line)})
		c.emit(Insn{Op: OpConst, Imm: cs.Value})
		c.emit(Insn{Op: OpEq})
		caseJumps[i] = c.emit(Insn{Op: OpJnz})
	}
	c.emit(Insn{Op: OpPop}) // no label matched: drop the scrutinee
	defaultJump := c.emit(Insn{Op: OpJmp})

	// Entry stubs: pop the scrutinee copy, then jump to the body.
	stubJumps := make([]int, len(v.Cases))
	for i := range v.Cases {
		c.fn.Code[caseJumps[i]].Imm = int64(len(c.fn.Code))
		c.emit(Insn{Op: OpPop})
		stubJumps[i] = c.emit(Insn{Op: OpJmp})
	}

	bMark := len(c.breaks)
	c.switchDepth++

	// Case bodies, laid out sequentially so fallthrough is free.
	for i, cs := range v.Cases {
		c.fn.Code[stubJumps[i]].Imm = int64(len(c.fn.Code))
		for _, st := range cs.Body {
			if err := c.compileStmt(st); err != nil {
				return err
			}
		}
	}
	defaultAt := len(c.fn.Code)
	for _, st := range v.Default {
		if err := c.compileStmt(st); err != nil {
			return err
		}
	}
	c.fn.Code[defaultJump].Imm = int64(defaultAt)

	end := len(c.fn.Code)
	for _, site := range c.breaks[bMark:] {
		c.fn.Code[site].Imm = int64(end)
	}
	c.breaks = c.breaks[:bMark]
	c.switchDepth--
	return nil
}
