package minic

import (
	"fmt"
	"strings"
)

// opNames maps opcodes to mnemonics; the IFP-bearing ops carry the
// hardware mnemonic they lower to, making the instrumentation visible in
// listings.
var opNames = map[Op]string{
	OpConst:  "const",
	OpStr:    "str",
	OpLocal:  "local",
	OpGlobal: "global",
	OpLoad:   "load",
	OpLoadP:  "loadp      ; load + promote",
	OpStore:  "store",
	OpStoreP: "storep     ; ifpextract (demote) + store",
	OpGep:    "gep        ; ifpadd",
	OpGepDyn: "gepdyn     ; ifpadd (scaled)",
	OpBnd:    "bnd        ; ifpbnd",
	OpAddr:   "addr",
	OpAdd:    "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpShl: "shl", OpShr: "shr", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge", OpEq: "eq", OpNe: "ne",
	OpNeg: "neg", OpNot: "not", OpBnot: "bnot",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz",
	OpDup: "dup", OpPop: "pop",
	OpCall: "call", OpRet: "ret",
	OpMalloc: "malloc", OpFree: "free",
	OpMemset: "memset", OpMemcpy: "memcpy",
	OpPrint: "print",
}

// lopNames maps lowered opcodes to mnemonics. The superinstructions
// spell out the machine-op chain they retire.
var lopNames = map[LOp]string{
	LBlock:  "block",
	LConst:  "const",
	LStr:    "str",
	LLocal:  "local",
	LGlobal: "global",
	LLoad:   "load",
	LLoadP:  "loadp",
	LStore:  "store",
	LStoreP: "storep",
	LGep:    "gep",
	LGepDyn: "gepdyn",
	LBnd:    "bnd",
	LAddr:   "addr",
	LMov:    "mov",
	LAlu:    "alu",
	LNeg:    "neg",
	LNot:    "not",
	LBnot:   "bnot",
	LJmp:    "jmp",
	LJz:     "jz",
	LJnz:    "jnz",
	LCall:   "call",
	LRet:    "ret",
	LMalloc: "malloc",
	LFree:   "free",
	LMemset: "memset",
	LMemcpy: "memcpy",
	LPrint:  "print",

	LGepIdx:        "gepidx",
	LGepIdxBnd:     "gepidxbnd",
	LLoadPChk:      "loadpchk",
	LConstGepStore: "constgepstore",
	LLocalLoad:     "localload",
	LLocalLoadP:    "localloadp",
}

// superNote annotates each superinstruction with the fused machine-op
// chain, mirroring opNames' hardware-mnemonic comments.
var superNote = map[LOp]string{
	LGepIdx:        "ifpadd + ifpidx",
	LGepIdxBnd:     "ifpadd (+ifpidx) + ifpbnd",
	LLoadPChk:      "promote + ifpchk + load",
	LConstGepStore: "const + ifpadd (scaled) + store",
	LLocalLoad:     "local + load",
	LLocalLoadP:    "local + load + promote",
}

// Disassemble renders a compiled program as a readable listing — the
// `minicc -S` output. It shows, per function, the local-slot table with
// registration decisions (which objects the instrumentation pass chose to
// protect) and each instruction with its operands.
func Disassemble(c *Compiled) string {
	var b strings.Builder
	if len(c.Wrappers) > 0 {
		fmt.Fprintf(&b, "; allocation wrappers: %s\n", strings.Join(c.Wrappers, ", "))
	}
	for i, g := range c.Globals {
		fmt.Fprintf(&b, "; global %d: %s %s\n", i, g.Type.Name, g.Name)
	}
	for i, s := range c.Strings {
		fmt.Fprintf(&b, "; string %d: %q\n", i, s)
	}
	for _, fn := range c.Funcs {
		fmt.Fprintf(&b, "\n%s: ; %d params\n", fn.Name, fn.NParams)
		for i, li := range fn.Locals {
			reg := "raw slot"
			if li.Registered {
				reg = "REGISTERED (object metadata)"
			}
			fmt.Fprintf(&b, ";   local %d: %-12s %-16s %s\n", i, li.Name, li.Type.Name, reg)
		}
		for pc, in := range fn.Code {
			name := opNames[in.Op]
			if name == "" {
				name = fmt.Sprintf("op%d", in.Op)
			}
			fmt.Fprintf(&b, "%4d  %s", pc, name)
			switch in.Op {
			case OpConst, OpStr, OpLocal, OpGlobal, OpJmp, OpJz, OpJnz, OpMalloc:
				fmt.Fprintf(&b, " %d", in.Imm)
			case OpGep, OpGepDyn:
				fmt.Fprintf(&b, " %d", in.Imm)
				if in.Sub != SubKeep {
					fmt.Fprintf(&b, " sub=%d ; ifpidx", in.Sub)
				}
			case OpBnd:
				fmt.Fprintf(&b, " size=%d", in.Imm)
			case OpLoad, OpStore:
				fmt.Fprintf(&b, " size=%d", in.Size)
			case OpCall:
				fmt.Fprintf(&b, " %s nargs=%d", c.Funcs[in.Imm].Name, in.Sub)
			case OpRet:
				if in.Sub == 1 {
					b.WriteString(" value")
				}
			}
			if in.Line > 0 {
				fmt.Fprintf(&b, " \t; line %d", in.Line)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// DisassembleLowered renders the register-bytecode form of a compiled
// program — the `minicc -disasm` output. Per function it shows the
// register-file size, each basic block's amortized fuel charge (the
// `block steps=N` pseudo-instruction the dispatch loop bills at block
// entry), register operands, and the fused machine-op chain behind every
// superinstruction.
func DisassembleLowered(c *Compiled) string {
	var b strings.Builder
	l := c.Lowered()
	if l == nil {
		fmt.Fprintf(&b, "; program did not lower (reference stack walker in use): %v\n", c.LowerError())
		return b.String()
	}
	for fi, lf := range l.Funcs {
		fn := c.Funcs[fi]
		fmt.Fprintf(&b, "\n%s: ; %d params, %d regs, %d fused\n", lf.Name, fn.NParams, lf.MaxRegs, lf.NSuper)
		for pc, in := range lf.Code {
			name := lopNames[in.Op]
			if name == "" {
				name = fmt.Sprintf("lop%d", in.Op)
			}
			fmt.Fprintf(&b, "%4d  %s", pc, name)
			switch in.Op {
			case LBlock:
				fmt.Fprintf(&b, " steps=%d ; fuel charged here", in.Imm)
			case LConst:
				fmt.Fprintf(&b, " r%d, %d", in.A, in.Imm)
			case LStr, LGlobal:
				fmt.Fprintf(&b, " r%d, %d", in.A, in.Imm)
			case LLocal:
				fmt.Fprintf(&b, " r%d, slot%d", in.A, in.Imm)
			case LLoad:
				fmt.Fprintf(&b, " r%d, size=%d", in.A, in.Size)
			case LLoadP:
				fmt.Fprintf(&b, " r%d ; promote", in.A)
			case LStore:
				fmt.Fprintf(&b, " [r%d], r%d, size=%d", in.A, in.B, in.Size)
			case LStoreP:
				fmt.Fprintf(&b, " [r%d], r%d ; ifpextract (demote)", in.A, in.B)
			case LGep:
				fmt.Fprintf(&b, " r%d, %d ; ifpadd", in.A, in.Imm)
			case LGepDyn:
				fmt.Fprintf(&b, " r%d, r%d*%d ; ifpadd (scaled)", in.A, in.C, in.Imm)
				if in.Sub != SubKeep {
					fmt.Fprintf(&b, " sub=%d", in.Sub)
				}
			case LBnd:
				fmt.Fprintf(&b, " r%d, size=%d ; ifpbnd", in.A, in.Imm)
			case LAddr, LNeg, LNot, LBnot, LFree, LPrint:
				fmt.Fprintf(&b, " r%d", in.A)
			case LMov:
				fmt.Fprintf(&b, " r%d, r%d", in.A, in.B)
			case LAlu:
				alu := opNames[Op(in.Sub)]
				fmt.Fprintf(&b, " %s r%d, r%d", alu, in.A, in.C)
			case LJmp:
				fmt.Fprintf(&b, " %d", in.Imm)
			case LJz, LJnz:
				fmt.Fprintf(&b, " r%d, %d", in.A, in.Imm)
			case LCall:
				fmt.Fprintf(&b, " r%d, %s nargs=%d", in.A, c.Funcs[in.Imm].Name, in.Sub)
			case LRet:
				if in.Sub == 1 {
					fmt.Fprintf(&b, " r%d", in.A)
				}
			case LMalloc:
				fmt.Fprintf(&b, " r%d, type=%d", in.A, in.Imm)
			case LMemset, LMemcpy:
				fmt.Fprintf(&b, " r%d, r%d, r%d", in.A, in.B, in.C)
			case LGepIdx:
				fmt.Fprintf(&b, " r%d, %d sub=%d ; %s", in.A, in.Imm, in.Sub, superNote[in.Op])
			case LGepIdxBnd:
				fmt.Fprintf(&b, " r%d, %d", in.A, in.Imm)
				if in.Sub != SubKeep {
					fmt.Fprintf(&b, " sub=%d", in.Sub)
				}
				fmt.Fprintf(&b, " size=%d ; %s", in.Imm2, superNote[in.Op])
			case LLoadPChk:
				fmt.Fprintf(&b, " r%d, size=%d ; %s", in.A, in.Size, superNote[in.Op])
			case LConstGepStore:
				fmt.Fprintf(&b, " [r%d + %d*%d], r%d, size=%d ; %s", in.B, in.Imm, in.Imm2, in.A, in.Size, superNote[in.Op])
			case LLocalLoad:
				fmt.Fprintf(&b, " r%d, slot%d, size=%d ; %s", in.A, in.Imm, in.Size, superNote[in.Op])
			case LLocalLoadP:
				fmt.Fprintf(&b, " r%d, slot%d ; %s", in.A, in.Imm, superNote[in.Op])
			}
			if in.Line > 0 && in.Op != LBlock {
				fmt.Fprintf(&b, " \t; line %d", in.Line)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
