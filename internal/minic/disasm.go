package minic

import (
	"fmt"
	"strings"
)

// opNames maps opcodes to mnemonics; the IFP-bearing ops carry the
// hardware mnemonic they lower to, making the instrumentation visible in
// listings.
var opNames = map[Op]string{
	OpConst:  "const",
	OpStr:    "str",
	OpLocal:  "local",
	OpGlobal: "global",
	OpLoad:   "load",
	OpLoadP:  "loadp      ; load + promote",
	OpStore:  "store",
	OpStoreP: "storep     ; ifpextract (demote) + store",
	OpGep:    "gep        ; ifpadd",
	OpGepDyn: "gepdyn     ; ifpadd (scaled)",
	OpBnd:    "bnd        ; ifpbnd",
	OpAddr:   "addr",
	OpAdd:    "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpShl: "shl", OpShr: "shr", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge", OpEq: "eq", OpNe: "ne",
	OpNeg: "neg", OpNot: "not", OpBnot: "bnot",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz",
	OpDup: "dup", OpPop: "pop",
	OpCall: "call", OpRet: "ret",
	OpMalloc: "malloc", OpFree: "free",
	OpMemset: "memset", OpMemcpy: "memcpy",
	OpPrint: "print",
}

// Disassemble renders a compiled program as a readable listing — the
// `minicc -S` output. It shows, per function, the local-slot table with
// registration decisions (which objects the instrumentation pass chose to
// protect) and each instruction with its operands.
func Disassemble(c *Compiled) string {
	var b strings.Builder
	if len(c.Wrappers) > 0 {
		fmt.Fprintf(&b, "; allocation wrappers: %s\n", strings.Join(c.Wrappers, ", "))
	}
	for i, g := range c.Globals {
		fmt.Fprintf(&b, "; global %d: %s %s\n", i, g.Type.Name, g.Name)
	}
	for i, s := range c.Strings {
		fmt.Fprintf(&b, "; string %d: %q\n", i, s)
	}
	for _, fn := range c.Funcs {
		fmt.Fprintf(&b, "\n%s: ; %d params\n", fn.Name, fn.NParams)
		for i, li := range fn.Locals {
			reg := "raw slot"
			if li.Registered {
				reg = "REGISTERED (object metadata)"
			}
			fmt.Fprintf(&b, ";   local %d: %-12s %-16s %s\n", i, li.Name, li.Type.Name, reg)
		}
		for pc, in := range fn.Code {
			name := opNames[in.Op]
			if name == "" {
				name = fmt.Sprintf("op%d", in.Op)
			}
			fmt.Fprintf(&b, "%4d  %s", pc, name)
			switch in.Op {
			case OpConst, OpStr, OpLocal, OpGlobal, OpJmp, OpJz, OpJnz, OpMalloc:
				fmt.Fprintf(&b, " %d", in.Imm)
			case OpGep, OpGepDyn:
				fmt.Fprintf(&b, " %d", in.Imm)
				if in.Sub != SubKeep {
					fmt.Fprintf(&b, " sub=%d ; ifpidx", in.Sub)
				}
			case OpBnd:
				fmt.Fprintf(&b, " size=%d", in.Imm)
			case OpLoad, OpStore:
				fmt.Fprintf(&b, " size=%d", in.Size)
			case OpCall:
				fmt.Fprintf(&b, " %s nargs=%d", c.Funcs[in.Imm].Name, in.Sub)
			case OpRet:
				if in.Sub == 1 {
					b.WriteString(" value")
				}
			}
			if in.Line > 0 {
				fmt.Fprintf(&b, " \t; line %d", in.Line)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
