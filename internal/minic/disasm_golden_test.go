package minic

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the disassembly golden files")

// goldenSrc is a fixed program chosen to exercise every listing feature:
// struct member chains (gepidxbnd with sub indices), constant and dynamic
// array indexing (constgepstore, gepdyn), pointer dereference chains
// (loadpchk), an allocation wrapper, a loop (multiple basic blocks with
// distinct fuel charges), and string data.
const goldenSrc = `struct Point { long x; long y; };
struct Shape { char name[8]; struct Point tl; struct Point br; };

void *mkshape(long n) { return malloc(n); }

long area(struct Shape *s) {
	return (s->br.x - s->tl.x) * (s->br.y - s->tl.y);
}

int main() {
	struct Shape *sh = (struct Shape*)mkshape(sizeof(struct Shape));
	sh->tl.x = 1; sh->tl.y = 2;
	sh->br.x = 11; sh->br.y = 22;
	sh->name[0] = 'r';
	long dims[2];
	dims[0] = sh->br.x - sh->tl.x;
	dims[1] = sh->br.y - sh->tl.y;
	long i; long acc = 0;
	for (i = 0; i < 2; i = i + 1) { acc = acc + dims[i]; }
	print(area(sh));
	print(acc);
	free(sh);
	return 0;
}`

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update ./internal/minic` to create)", err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(run with -update to accept)",
			name, got, want)
	}
}

// TestDisassembleGolden pins the stack-IR listing (`minicc -S`).
func TestDisassembleGolden(t *testing.T) {
	comp, err := DefaultInterner.Get(goldenSrc)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "disasm_stack.golden", Disassemble(comp))
}

// TestDisassembleLoweredGolden pins the register-bytecode listing
// (`minicc -disasm`): register operands, superinstruction annotations,
// and each basic block's amortized fuel charge.
func TestDisassembleLoweredGolden(t *testing.T) {
	comp, err := DefaultInterner.Get(goldenSrc)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Lowered() == nil {
		t.Fatalf("golden program did not lower: %v", comp.LowerError())
	}
	checkGolden(t, "disasm_lowered.golden", DisassembleLowered(comp))
}
