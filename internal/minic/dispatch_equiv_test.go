package minic

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"infat/internal/machine"
	"infat/internal/rt"
)

// This file is the differential contract between the reference stack
// walker (vm.call) and the register dispatch loop over the lowered
// bytecode (vm.callReg): for every program, in every mode, the two must
// produce identical output, exit code, machine counters, and — for
// trapping programs — the identical error, line number included. The only
// sanctioned divergence is fuel exhaustion, where the lowered loop's
// per-block amortized check may overshoot the budget by up to one block
// (fuel_test.go pins how far).

// dispatchCorpus exercises every opcode and every fusion pattern: scalar
// and pointer locals, globals, strings, struct member chains (GepIdx,
// GepIdxBnd), array stores with constant and dynamic indices
// (ConstGepStore, GepDyn), pointer dereference chains (LoadPChk),
// recursion, switch dispatch (Dup/Pop), short-circuit (Mov), allocation
// wrappers, heap and temporal traps, and arithmetic faults.
var dispatchCorpus = []struct {
	name string
	src  string
}{
	{"arith", `int main() {
		long a = 7; long b = -3;
		print(a + b); print(a - b); print(a * b); print(a / b); print(a % b);
		print(a << 2); print(a >> 1); print(a & b); print(a | b); print(a ^ b);
		print(a < b); print(a <= b); print(a > b); print(a >= b);
		print(a == b); print(a != b); print(-a); print(!a); print(~a);
		return 0;
	}`},
	{"controlflow", `int main() {
		long i; long acc = 0;
		for (i = 0; i < 10; i = i + 1) {
			if (i % 2 == 0) { acc = acc + i; } else { acc = acc - 1; }
		}
		while (acc > 10) { acc = acc - 3; }
		do { acc = acc + 100; } while (acc < 300);
		print(acc);
		return (int)acc;
	}`},
	{"shortcircuit", `long g = 0;
	int bump() { g = g + 1; return 1; }
	int main() {
		if (0 && bump()) { print(-1); }
		if (1 || bump()) { print(g); }
		if (1 && bump()) { print(g); }
		if (0 || bump()) { print(g); }
		return 0;
	}`},
	{"recursion", `long fib(long n) {
		if (n < 2) { return n; }
		return fib(n - 1) + fib(n - 2);
	}
	int main() { print(fib(15)); return 0; }`},
	{"arrays", `int main() {
		long buf[16]; long i; long acc = 0;
		for (i = 0; i < 16; i = i + 1) { buf[i] = i * i; }
		buf[3] = 42; buf[7] = buf[3] + buf[2];
		for (i = 0; i < 16; i = i + 1) { acc = acc + buf[i]; }
		print(acc);
		return 0;
	}`},
	{"pointers", `long deref(long *p) { return *p; }
	int main() {
		long x = 5;
		long *p = &x;
		*p = *p + 10;
		print(deref(p));
		long arr[4];
		long *q = arr;
		*(q + 2) = 7;
		print(arr[2]);
		print(q == arr); print((q + 1) - q);
		return 0;
	}`},
	{"structs", `struct Inner { long a; long b; };
	struct Outer { long pre; struct Inner in; char tag[8]; };
	int main() {
		struct Outer o;
		o.pre = 1;
		o.in.a = 2; o.in.b = 3;
		o.tag[0] = 'x';
		struct Outer *p = &o;
		p->in.b = p->in.a + o.pre;
		print(o.in.b); print(p->tag[0]);
		return 0;
	}`},
	{"heap", `struct Node { long val; struct Node *next; };
	int main() {
		struct Node *head = (struct Node*)malloc(sizeof(struct Node));
		head->val = 10;
		head->next = (struct Node*)malloc(sizeof(struct Node));
		head->next->val = 20;
		head->next->next = (struct Node*)0;
		long sum = 0;
		struct Node *it = head;
		while (it != (struct Node*)0) { sum = sum + it->val; it = it->next; }
		free(head->next); free(head);
		print(sum);
		return 0;
	}`},
	{"wrapper", `void *getmem(long n) { return malloc(n); }
	int main() {
		long *p = (long*)getmem(8 * sizeof(long));
		long i;
		for (i = 0; i < 8; i = i + 1) { p[i] = i; }
		print(p[7]);
		free(p);
		return 0;
	}`},
	{"memops", `int main() {
		char a[32]; char b[32];
		memset(a, 'Q', 32);
		memcpy(b, a, 32);
		print(b[0]); print(b[31]);
		char *s = "hello";
		print(s[0]); print(s[4]);
		return 0;
	}`},
	{"globals", `long counter = 3;
	long table[4];
	int main() {
		long i;
		for (i = 0; i < 4; i = i + 1) { table[i] = counter + i; }
		counter = table[3];
		print(counter);
		return 0;
	}`},
	{"switch", `int classify(long c) {
		switch (c) {
		case 'x': return 1;
		case 'y': return 2;
		case 'z':
		case 'w': return 3;
		default: return 0;
		}
	}
	int main() {
		long i; long acc = 0;
		char probe[5];
		probe[0] = 'x'; probe[1] = 'y'; probe[2] = 'z'; probe[3] = 'w'; probe[4] = '?';
		for (i = 0; i < 5; i = i + 1) { acc = acc + classify(probe[i]); }
		print(acc);
		return 0;
	}`},
	{"charcast", `int main() {
		char c = (char)300;
		print(c);
		long big = 70000;
		print((char)big);
		print((int)big);
		return 0;
	}`},
	{"overflow-stack", `int main() {
		char buf[8]; long i;
		for (i = 0; i <= 8; i = i + 1) { buf[i] = 'A'; }
		return 0;
	}`},
	{"overflow-heap", `int main() {
		long *p = (long*)malloc(4 * sizeof(long));
		p[4] = 1;
		return 0;
	}`},
	{"intra-object", `struct S { char name[8]; long secret; };
	int main() {
		struct S s;
		s.secret = 7;
		char *p = s.name;
		long i;
		for (i = 0; i <= 8; i = i + 1) { p[i] = 'B'; }
		return 0;
	}`},
	{"use-after-free", `int main() {
		long *p = (long*)malloc(2 * sizeof(long));
		p[0] = 1;
		free(p);
		print(p[0]);
		return 0;
	}`},
	{"double-free", `int main() {
		long *p = (long*)malloc(sizeof(long));
		free(p);
		free(p);
		return 0;
	}`},
	{"div-zero", `int main() {
		long z = 0;
		print(5 / z);
		return 0;
	}`},
	{"free-wild", `int main() {
		free((long*)12345);
		return 0;
	}`},
}

// runBoth executes src on both loops, unlimited fuel.
func runBoth(src string, mode rt.Mode) (refOut, regOut []int64, refExit, regExit int64,
	refC, regC machine.Counters, refErr, regErr error) {
	refOut, refExit, refC, refErr = ExecuteBudgetReference(src, mode, 0)
	regOut, regExit, regC, regErr = ExecuteBudget(src, mode, 0)
	return
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func assertSame(t *testing.T, label string,
	refOut, regOut []int64, refExit, regExit int64,
	refC, regC machine.Counters, refErr, regErr error) {
	t.Helper()
	if errString(refErr) != errString(regErr) {
		t.Fatalf("%s: error diverged:\n reference: %v\n register:  %v", label, refErr, regErr)
	}
	if refExit != regExit {
		t.Fatalf("%s: exit diverged: reference %d, register %d", label, refExit, regExit)
	}
	if len(refOut) != len(regOut) {
		t.Fatalf("%s: output length diverged: reference %v, register %v", label, refOut, regOut)
	}
	for i := range refOut {
		if refOut[i] != regOut[i] {
			t.Fatalf("%s: out[%d] diverged: reference %d, register %d", label, i, refOut[i], regOut[i])
		}
	}
	if refC != regC {
		t.Fatalf("%s: counters diverged:\n reference %+v\n register  %+v", label, refC, regC)
	}
}

// TestDispatchEquivalence is the headline contract: corpus × every mode
// (including ifp-temporal), reference vs register loop, everything equal —
// trap lines and machine counters included.
func TestDispatchEquivalence(t *testing.T) {
	for _, tc := range dispatchCorpus {
		for _, mode := range rt.Modes {
			label := fmt.Sprintf("%s/%v", tc.name, mode)
			refOut, regOut, refExit, regExit, refC, regC, refErr, regErr := runBoth(tc.src, mode)
			assertSame(t, label, refOut, regOut, refExit, regExit, refC, regC, refErr, regErr)
		}
	}
}

// TestDispatchEquivalenceTestdata runs the checked-in guest programs
// through both loops.
func TestDispatchEquivalenceTestdata(t *testing.T) {
	for _, file := range []string{"overflow.c", "list.c", "switchsum.c"} {
		src, err := os.ReadFile(filepath.Join("..", "..", "testdata", file))
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range rt.Modes {
			label := fmt.Sprintf("%s/%v", file, mode)
			refOut, regOut, refExit, regExit, refC, regC, refErr, regErr := runBoth(string(src), mode)
			assertSame(t, label, refOut, regOut, refExit, regExit, refC, regC, refErr, regErr)
		}
	}
}

// TestDispatchEquivalenceConcurrent shares one interned program (and its
// one lowered form) across NumCPU goroutines mixing both loops — under
// -race this pins the read-only sharing contract of the Lowered cache.
func TestDispatchEquivalenceConcurrent(t *testing.T) {
	src := dispatchCorpus[4].src // arrays
	refOut, refExit, refC, refErr := ExecuteBudgetReference(src, rt.Subheap, 0)
	if refErr != nil {
		t.Fatal(refErr)
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				var out []int64
				var exit int64
				var c machine.Counters
				var err error
				if (w+rep)%2 == 0 {
					out, exit, c, err = ExecuteBudget(src, rt.Subheap, 0)
				} else {
					out, exit, c, err = ExecuteBudgetReference(src, rt.Subheap, 0)
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d rep %d: %v", w, rep, err)
					return
				}
				if exit != refExit || c != refC || len(out) != len(refOut) || out[0] != refOut[0] {
					errs <- fmt.Errorf("worker %d rep %d diverged", w, rep)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDispatchSuperinstructionsRetire proves the fusion actually fires on
// the corpus: a struct+pointer+array program must retire every named
// superinstruction at least once under an instrumented mode.
func TestDispatchSuperinstructionsRetire(t *testing.T) {
	src := `struct S { long a; long b; };
	int main() {
		struct S s;
		struct S *p = &s;
		s.a = 1;
		p->b = 2;
		long arr[4]; long i;
		arr[2] = 5;
		for (i = 0; i < 4; i = i + 1) { arr[i] = i; }
		long *q = &arr[1];
		print(*q + s.a + p->b);
		return 0;
	}`
	comp, err := DefaultInterner.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Lowered() == nil {
		t.Fatalf("program did not lower: %v", comp.LowerError())
	}
	r := rt.Acquire(rt.Subheap)
	defer rt.Release(r)
	vm, err := NewVM(comp, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	hits := vm.SuperHits()
	for _, want := range []string{"loadpchk", "gepidxbnd", "constgepstore", "localload", "localloadp"} {
		if hits[want] == 0 {
			t.Errorf("superinstruction %q never retired; hits: %v", want, hits)
		}
	}
}

// TestDispatchGepIdxLowering covers the LGepIdx fallback peephole. The
// compiler always pairs a sub-carrying OpGep with an immediate OpBnd (so
// LGepIdxBnd forms); a bare pair split — the shape a future pass could
// produce — must still fuse the ifpadd+ifpidx half.
func TestDispatchGepIdxLowering(t *testing.T) {
	comp := &Compiled{
		Funcs: []*Func{{
			Name: "main",
			Code: []Insn{
				{Op: OpConst, Imm: 0},
				{Op: OpGep, Imm: 8, Sub: 2},
				{Op: OpPop},
				{Op: OpConst, Imm: 0},
				{Op: OpRet, Sub: 1},
			},
		}},
		FuncIdx: map[string]int{"main": 0},
	}
	l, err := Lower(comp)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, in := range l.Funcs[0].Code {
		if in.Op == LGepIdx {
			found = true
			if in.Imm != 8 || in.Sub != 2 {
				t.Fatalf("gepidx operands not carried: %+v", in)
			}
		}
		if in.Op == LGep {
			t.Fatalf("sub-carrying gep left unfused: %+v", in)
		}
	}
	if !found {
		t.Fatal("bare sub-carrying gep did not lower to gepidx")
	}
}

// TestDispatchLoweringIsCached pins one immutable lowered program per
// *Compiled: repeated Lowered() calls return the same instance, and the
// interner pre-warms it at compile time.
func TestDispatchLoweringIsCached(t *testing.T) {
	comp, err := DefaultInterner.Get("int main() { return 3; }")
	if err != nil {
		t.Fatal(err)
	}
	l1 := comp.Lowered()
	if l1 == nil {
		t.Fatal("interned program has no lowered form (pre-warm missing)")
	}
	if l2 := comp.Lowered(); l2 != l1 {
		t.Fatal("Lowered() returned a different instance on the second call")
	}
}

// TestDispatchFallbackOnUnloweredProgram: a hand-built Compiled that
// defeats the depth analysis must refuse to lower and still run correctly
// on the reference walker through the normal Run path.
func TestDispatchFallbackOnUnloweredProgram(t *testing.T) {
	// Inconsistent depth at a merge point: one path pushes twice, the
	// other once, before they join.
	comp := &Compiled{
		Funcs: []*Func{{
			Name: "main",
			Ret:  nil,
			Code: []Insn{
				{Op: OpConst, Imm: 1},      // 0: push
				{Op: OpJnz, Imm: 4},        // 1: pop, jump to 4
				{Op: OpConst, Imm: 7},      // 2: push (depth 1 path)
				{Op: OpConst, Imm: 8},      // 3: push (depth 2 at pc 4)
				{Op: OpConst, Imm: 9},      // 4: merge: depth 0 vs 2
				{Op: OpRet, Sub: 1},        // 5
			},
		}},
		FuncIdx: map[string]int{"main": 0},
	}
	if l := comp.Lowered(); l != nil {
		t.Fatal("depth-inconsistent program lowered anyway")
	}
	if comp.LowerError() == nil {
		t.Fatal("no lowering error recorded")
	}
	r := rt.Acquire(rt.Subheap)
	defer rt.Release(r)
	vm, err := NewVM(comp, r)
	if err != nil {
		t.Fatal(err)
	}
	exit, err := vm.Run() // must fall back to the reference walker
	if err != nil {
		t.Fatal(err)
	}
	if exit != 9 {
		t.Fatalf("fallback run returned %d, want 9", exit)
	}
}

// classifyBudget buckets an error for the relaxed fuel comparison. Once
// the reference run traps on its budget, the register loop may legally
// retire up to one more block before its amortized check fires — and
// anything can happen inside that grace block (a later fuel trap, a
// spatial trap the reference never reached, or completion). The converse
// is strict: the register loop's check points are a subset of the
// reference's, so it can never budget-trap where the reference did not.
func classifyBudget(err error) string {
	switch {
	case err == nil:
		return "ok"
	case machine.IsTrap(err, machine.TrapFuel):
		return "fuel"
	case strings.Contains(errString(err), "step budget exhausted"):
		return "backstop"
	default:
		return "other:" + errString(err)
	}
}

// TestDispatchEquivalenceUnderFuel sweeps fuel budgets across the corpus:
// non-budget outcomes must match exactly; where the reference run traps
// on fuel, the register loop may trap on fuel too or finish within its
// one-block grace — nothing else.
func TestDispatchEquivalenceUnderFuel(t *testing.T) {
	fuels := []uint64{1, 17, 300, 5_000, 1_000_000}
	for _, tc := range dispatchCorpus {
		for _, fuel := range fuels {
			refOut, refExit, _, refErr := ExecuteBudgetReference(tc.src, rt.Subheap, fuel)
			regOut, regExit, _, regErr := ExecuteBudget(tc.src, rt.Subheap, fuel)
			label := fmt.Sprintf("%s/fuel=%d", tc.name, fuel)
			rk, gk := classifyBudget(refErr), classifyBudget(regErr)
			if rk == "fuel" || rk == "backstop" {
				continue // register outcome confined to the one-block grace
			}
			if gk == "fuel" || gk == "backstop" {
				t.Fatalf("%s: register loop trapped on budget (%s) where reference did not (%v)",
					label, gk, refErr)
			}
			if errString(refErr) != errString(regErr) || refExit != regExit ||
				len(refOut) != len(regOut) {
				t.Fatalf("%s: diverged: ref (%v, %d, %v) vs reg (%v, %d, %v)",
					label, refOut, refExit, refErr, regOut, regExit, regErr)
			}
		}
	}
}

// TestAllocBudgetDispatch is the CI alloc-regression guard for the inner
// register dispatch loop (NewVM + Run on a pooled runtime, the interned
// path stripped of the Execute plumbing): the register file lives in the
// shared pooled operand arena, so lowering adds no per-run allocations —
// the loop measures 12 allocs/run, two below the stack walker, because
// register windows are sized up front instead of growing the operand
// stack mid-run.
func TestAllocBudgetDispatch(t *testing.T) {
	if !rt.ReuseSystems() {
		t.Skip("requires pooled runtimes")
	}
	comp, err := DefaultInterner.Get(internSrc)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		r := rt.Acquire(rt.Subheap)
		defer rt.Release(r)
		vm, err := NewVM(comp, r)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pool
	allocs := testing.AllocsPerRun(50, run)
	const budget = 14
	if allocs > budget {
		t.Fatalf("register-dispatch inner loop = %.1f allocs/run, budget %d", allocs, budget)
	}
}

// FuzzDispatchEquivalence feeds arbitrary sources and budgets through
// both loops in every mode. Programs that fail to parse/compile are
// equally interesting (the error must be identical); programs that run
// must agree on everything, with the sanctioned one-block fuel grace.
func FuzzDispatchEquivalence(f *testing.F) {
	for _, tc := range dispatchCorpus {
		f.Add(tc.src, uint64(0))
		f.Add(tc.src, uint64(700))
	}
	f.Add("int main() { while (1) { } return 0; }", uint64(5000))
	f.Fuzz(func(t *testing.T, src string, fuel uint64) {
		if len(src) > 4096 {
			return
		}
		fuel = fuel % 1_000_000
		for _, mode := range rt.Modes {
			refOut, refExit, refC, refErr := ExecuteBudgetReference(src, mode, fuel)
			regOut, regExit, regC, regErr := ExecuteBudget(src, mode, fuel)
			rk, gk := classifyBudget(refErr), classifyBudget(regErr)
			if rk == "fuel" || rk == "backstop" {
				continue // register outcome confined to the one-block grace
			}
			if gk == "fuel" || gk == "backstop" {
				t.Fatalf("%v: register budget trap (%s) without reference one (%v)", mode, gk, refErr)
			}
			if errString(refErr) != errString(regErr) {
				t.Fatalf("%v: error diverged:\n reference: %v\n register:  %v", mode, refErr, regErr)
			}
			if refExit != regExit || refC != regC || len(refOut) != len(regOut) {
				t.Fatalf("%v: diverged: ref (exit %d, %+v) vs reg (exit %d, %+v)",
					mode, refExit, refC, regExit, regC)
			}
			for i := range refOut {
				if refOut[i] != regOut[i] {
					t.Fatalf("%v: out[%d]: %d vs %d", mode, i, refOut[i], regOut[i])
				}
			}
		}
	})
}

// Dispatch benchmarks: the same interned workload on the reference stack
// walker vs the register loop (the `dispatch_bench` section of
// `ifp-bench -json` reports these per workload).
func benchDispatch(b *testing.B, refOnly bool) {
	comp, err := DefaultInterner.Get(internSrc)
	if err != nil {
		b.Fatal(err)
	}
	if comp.Lowered() == nil {
		b.Fatalf("workload did not lower: %v", comp.LowerError())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out []int64
		var exit int64
		var err error
		if refOnly {
			out, exit, _, err = ExecuteBudgetReference(internSrc, rt.Subheap, 0)
		} else {
			out, exit, _, err = ExecuteBudget(internSrc, rt.Subheap, 0)
		}
		if err != nil || exit != 0 || len(out) != 1 {
			b.Fatalf("run failed: out=%v exit=%d err=%v", out, exit, err)
		}
	}
}

func BenchmarkDispatchReference(b *testing.B) { benchDispatch(b, true) }
func BenchmarkDispatchRegister(b *testing.B)  { benchDispatch(b, false) }
