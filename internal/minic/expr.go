package minic

import (
	"infat/internal/layout"
)

// This file lowers expressions. Address-producing paths track a "layout
// root": the type whose layout table the compiler indexes to compute the
// ifpidx immediate for member derivations (§3.4). For a member chain
// rooted at an object of type T (a local/global of type T, or a
// dereference of a T*), the Sub field of the emitted OpGep is
// IndexOf(path) in T's table.

// addrInfo describes the address currently on top of the stack.
type addrInfo struct {
	typ  *layout.Type // type of the object at the address
	root *layout.Type // layout root for subobject indexing, or nil
	path string       // member path from the root
}

// subIdxFor resolves the ifpidx immediate for the current chain.
func subIdxFor(root *layout.Type, path string) uint16 {
	if root == nil || path == "" {
		return SubKeep
	}
	tb, err := layout.Build(root)
	if err != nil {
		return SubKeep
	}
	if idx, ok := tb.IndexOf(path); ok {
		return idx
	}
	return SubKeep
}

// compileAddr compiles an lvalue, leaving its address (with bounds) on the
// stack.
func (c *compiler) compileAddr(e Expr) (addrInfo, error) {
	switch v := e.(type) {
	case *IdentExpr:
		if idx, ok := c.locals[v.Name]; ok {
			li := c.fn.Locals[idx]
			c.emit(Insn{Op: OpLocal, Imm: int64(idx), Line: int32(v.Line)})
			return addrInfo{typ: li.Type, root: rootFor(li.Type), path: ""}, nil
		}
		if gi, ok := c.globals[v.Name]; ok {
			g := c.out.Globals[gi]
			c.emit(Insn{Op: OpGlobal, Imm: int64(gi), Line: int32(v.Line)})
			return addrInfo{typ: g.Type, root: rootFor(g.Type), path: ""}, nil
		}
		return addrInfo{}, c.errf(v.Line, "undefined identifier %q", v.Name)

	case *UnaryExpr:
		if v.Op != "*" {
			return addrInfo{}, c.errf(v.Line, "expression is not an lvalue")
		}
		t, err := c.compileValue(v.E)
		if err != nil {
			return addrInfo{}, err
		}
		if t.Kind != layout.KindPointer || t.Elem == nil {
			return addrInfo{}, c.errf(v.Line, "dereference of non-pointer %s", t)
		}
		return addrInfo{typ: t.Elem, root: rootFor(t.Elem), path: ""}, nil

	case *IndexExpr:
		return c.compileIndexAddr(v)

	case *MemberExpr:
		return c.compileMemberAddr(v)
	}
	return addrInfo{}, c.errf(e.exprLine(), "expression is not an lvalue")
}

// rootFor returns the layout-root type for an object of type t: structs
// root their own table; arrays of structs root the element's table shared
// across elements (heap-array convention, §3.4); others have none.
func rootFor(t *layout.Type) *layout.Type {
	if t == nil {
		return nil
	}
	switch t.Kind {
	case layout.KindStruct:
		return t
	case layout.KindArray:
		return t // array tables include element structure
	}
	return nil
}

func (c *compiler) compileIndexAddr(v *IndexExpr) (addrInfo, error) {
	// base[i]: base is an array lvalue (stay in its chain) or a pointer
	// rvalue (chain restarts at the pointee).
	baseT, info, err := c.compileArrayOrPointer(v.Base)
	if err != nil {
		return addrInfo{}, err
	}
	var elem *layout.Type
	switch baseT.Kind {
	case layout.KindArray, layout.KindPointer:
		elem = baseT.Elem
	default:
		return addrInfo{}, c.errf(v.Line, "indexing non-array %s", baseT)
	}
	if elem == nil {
		return addrInfo{}, c.errf(v.Line, "indexing void pointer")
	}
	if _, err := c.compileValue(v.Idx); err != nil {
		return addrInfo{}, err
	}
	// Array elements share the array's layout entry: no ifpidx needed
	// in loops over arrays (§3.4), so Sub is keep — unless descending
	// into an array-of-struct element chain, which MemberExpr handles.
	c.emit(Insn{Op: OpGepDyn, Imm: int64(elem.Size()), Sub: SubKeep, Line: int32(v.Line)})
	path := info.path
	if info.root != nil && baseT.Kind == layout.KindArray {
		path += "[]"
	}
	return addrInfo{typ: elem, root: info.root, path: path}, nil
}

// compileArrayOrPointer puts a base address (array lvalue) or pointer
// value on the stack, returning its type and chain info.
func (c *compiler) compileArrayOrPointer(e Expr) (*layout.Type, addrInfo, error) {
	t := c.staticType(e)
	if t != nil && t.Kind == layout.KindArray {
		info, err := c.compileAddr(e)
		if err != nil {
			return nil, addrInfo{}, err
		}
		return info.typ, info, nil
	}
	// Pointer rvalue: chain restarts at the pointee type.
	pt, err := c.compileValue(e)
	if err != nil {
		return nil, addrInfo{}, err
	}
	if pt.Kind != layout.KindPointer {
		return nil, addrInfo{}, c.errf(e.exprLine(), "expected array or pointer, found %s", pt)
	}
	return pt, addrInfo{typ: pt.Elem, root: rootFor(pt.Elem), path: ""}, nil
}

func (c *compiler) compileMemberAddr(v *MemberExpr) (addrInfo, error) {
	var base addrInfo
	if v.Arrow {
		pt, err := c.compileValue(v.Base)
		if err != nil {
			return addrInfo{}, err
		}
		if pt.Kind != layout.KindPointer || pt.Elem == nil || pt.Elem.Kind != layout.KindStruct {
			return addrInfo{}, c.errf(v.Line, "-> on non-struct-pointer %s", pt)
		}
		base = addrInfo{typ: pt.Elem, root: rootFor(pt.Elem), path: ""}
	} else {
		var err error
		base, err = c.compileAddr(v.Base)
		if err != nil {
			return addrInfo{}, err
		}
		if base.typ.Kind != layout.KindStruct {
			return addrInfo{}, c.errf(v.Line, ". on non-struct %s", base.typ)
		}
	}
	f, ok := base.typ.FieldByName(v.Name)
	if !ok {
		return addrInfo{}, c.errf(v.Line, "no member %q in %s", v.Name, base.typ.Name)
	}
	path := joinMember(base.path, v.Name)
	sub := subIdxFor(base.root, path)
	// Member derivation: ifpadd with fused ifpidx (Figure 3's pointer-tag
	// update), plus ifpbnd narrowing to the member's static size — the
	// compiler knows the extent, so the access is checked at subobject
	// granularity immediately (§4.1).
	c.emit(Insn{Op: OpGep, Imm: int64(f.Offset), Sub: sub, Line: int32(v.Line)})
	c.emit(Insn{Op: OpBnd, Imm: int64(f.Type.Size()), Line: int32(v.Line)})
	return addrInfo{typ: f.Type, root: base.root, path: path}, nil
}

func joinMember(path, name string) string {
	if path == "" {
		return name
	}
	return path + "." + name
}

// staticType computes an expression's type without emitting code (used to
// decide array-decay paths). Returns nil when unknown.
func (c *compiler) staticType(e Expr) *layout.Type {
	switch v := e.(type) {
	case *NumExpr:
		return layout.Int
	case *StrExpr:
		return layout.PointerTo(layout.Char)
	case *IdentExpr:
		if idx, ok := c.locals[v.Name]; ok {
			return c.fn.Locals[idx].Type
		}
		if gi, ok := c.globals[v.Name]; ok {
			return c.out.Globals[gi].Type
		}
	case *UnaryExpr:
		if v.Op == "*" {
			if t := c.staticType(v.E); t != nil && t.Kind == layout.KindPointer {
				return t.Elem
			}
			return nil
		}
		if v.Op == "&" {
			if t := c.staticType(v.E); t != nil {
				return layout.PointerTo(t)
			}
			return nil
		}
		return layout.Long
	case *IndexExpr:
		if t := c.staticType(v.Base); t != nil && t.Elem != nil {
			return t.Elem
		}
	case *MemberExpr:
		bt := c.staticType(v.Base)
		if bt == nil {
			return nil
		}
		if v.Arrow {
			if bt.Kind != layout.KindPointer {
				return nil
			}
			bt = bt.Elem
		}
		if bt == nil || bt.Kind != layout.KindStruct {
			return nil
		}
		if f, ok := bt.FieldByName(v.Name); ok {
			return f.Type
		}
	case *CastExpr:
		return v.Type
	case *CallExpr:
		if fi, ok := c.out.FuncIdx[v.Name]; ok {
			return c.out.Funcs[fi].Ret
		}
		if v.Name == "malloc" {
			return layout.PointerTo(layout.Void)
		}
		return layout.Long
	case *SizeofExpr:
		return layout.Long
	case *AssignExpr:
		return c.staticType(v.L)
	case *BinaryExpr:
		lt := c.staticType(v.L)
		if lt != nil && (lt.Kind == layout.KindPointer || lt.Kind == layout.KindArray) {
			return lt
		}
		return c.staticType(v.R)
	}
	return nil
}

// compileValue compiles e in a position that consumes its value. A void
// expression (a call to a void function) pushes nothing, so accepting it
// here would underflow the VM's operand stack at runtime — reject it at
// compile time instead (found by FuzzRunC).
func (c *compiler) compileValue(e Expr) (*layout.Type, error) {
	t, err := c.compileExpr(e)
	if err != nil {
		return nil, err
	}
	if t == layout.Void {
		return nil, c.errf(e.exprLine(), "void value used in expression")
	}
	return t, nil
}

// compileExpr compiles an rvalue, leaving (value, bounds) on the stack,
// and returns the expression's type.
func (c *compiler) compileExpr(e Expr) (*layout.Type, error) {
	switch v := e.(type) {
	case *NumExpr:
		c.emit(Insn{Op: OpConst, Imm: v.V, Line: int32(v.Line)})
		return layout.Int, nil

	case *StrExpr:
		idx := len(c.out.Strings)
		c.out.Strings = append(c.out.Strings, v.S)
		c.emit(Insn{Op: OpStr, Imm: int64(idx), Line: int32(v.Line)})
		return layout.PointerTo(layout.Char), nil

	case *IdentExpr:
		info, err := c.compileAddr(v)
		if err != nil {
			return nil, err
		}
		return c.loadFrom(info, v.Line)

	case *UnaryExpr:
		switch v.Op {
		case "&":
			info, err := c.compileAddr(v.E)
			if err != nil {
				return nil, err
			}
			return layout.PointerTo(info.typ), nil
		case "*":
			info, err := c.compileAddr(v)
			if err != nil {
				return nil, err
			}
			return c.loadFrom(info, v.Line)
		case "-":
			if _, err := c.compileValue(v.E); err != nil {
				return nil, err
			}
			c.emit(Insn{Op: OpNeg, Line: int32(v.Line)})
			return layout.Long, nil
		case "!":
			if _, err := c.compileValue(v.E); err != nil {
				return nil, err
			}
			c.emit(Insn{Op: OpNot, Line: int32(v.Line)})
			return layout.Int, nil
		case "~":
			if _, err := c.compileValue(v.E); err != nil {
				return nil, err
			}
			c.emit(Insn{Op: OpBnot, Line: int32(v.Line)})
			return layout.Long, nil
		}
		return nil, c.errf(v.Line, "unknown unary %q", v.Op)

	case *BinaryExpr:
		return c.compileBinary(v)

	case *AssignExpr:
		if err := c.compileAssignTo(v.L, v.R, v.Line); err != nil {
			return nil, err
		}
		// Assignments used as expressions re-read the stored value.
		t, err := c.compileExpr(v.L)
		return t, err

	case *IndexExpr, *MemberExpr:
		info, err := c.compileAddr(v)
		if err != nil {
			return nil, err
		}
		return c.loadFrom(info, e.exprLine())

	case *CallExpr:
		return c.compileCall(v, nil)

	case *CastExpr:
		if call, ok := v.E.(*CallExpr); ok && (call.Name == "malloc" || c.wrappers[call.Name]) {
			return c.compileCall(call, v.Type)
		}
		t, err := c.compileValue(v.E)
		if err != nil {
			return nil, err
		}
		// Integer narrowing casts mask the value; pointer casts are
		// free (the tag travels with the value).
		if v.Type.Kind == layout.KindScalar && v.Type.Size() < 8 && t != v.Type {
			mask := int64(1)<<(8*v.Type.Size()) - 1
			c.emit(Insn{Op: OpConst, Imm: mask, Line: int32(v.Line)})
			c.emit(Insn{Op: OpAnd, Line: int32(v.Line)})
		}
		return v.Type, nil

	case *SizeofExpr:
		c.emit(Insn{Op: OpConst, Imm: int64(v.Type.Size()), Line: int32(v.Line)})
		return layout.Long, nil
	}
	return nil, c.errf(e.exprLine(), "cannot compile expression %T", e)
}

// loadFrom loads a value of the addressed type, decaying arrays to
// pointers (with ifpbnd narrowing to the array extent).
func (c *compiler) loadFrom(info addrInfo, line int) (*layout.Type, error) {
	t := info.typ
	switch t.Kind {
	case layout.KindArray:
		// Decay: the address itself, already narrowed by compileAddr
		// when it was a member; narrow here for whole locals/globals.
		return layout.PointerTo(t.Elem), nil
	case layout.KindPointer:
		c.emit(Insn{Op: OpLoadP, Line: int32(line)})
		return t, nil
	case layout.KindStruct:
		return nil, c.errf(line, "struct loads are not supported; use members")
	default:
		size := t.Size()
		if size == 0 {
			return nil, c.errf(line, "load of void")
		}
		c.emit(Insn{Op: OpLoad, Size: uint8(size), Line: int32(line)})
		return t, nil
	}
}

func (c *compiler) compileAssignTo(lhs Expr, rhs Expr, line int) error {
	t, err := c.compileValue(rhs)
	if err != nil {
		return err
	}
	info, err := c.compileAddr(lhs)
	if err != nil {
		return err
	}
	dst := info.typ
	switch dst.Kind {
	case layout.KindPointer:
		c.emit(Insn{Op: OpStoreP, Line: int32(line)})
	case layout.KindScalar:
		c.emit(Insn{Op: OpStore, Size: uint8(dst.Size()), Line: int32(line)})
	default:
		return c.errf(line, "cannot assign to %s", dst)
	}
	_ = t
	return nil
}

func (c *compiler) compileBinary(v *BinaryExpr) (*layout.Type, error) {
	switch v.Op {
	case "&&", "||":
		// Short circuit with jumps; result is 0/1.
		if _, err := c.compileValue(v.L); err != nil {
			return nil, err
		}
		c.emit(Insn{Op: OpNot})
		c.emit(Insn{Op: OpNot}) // normalize to 0/1
		c.emit(Insn{Op: OpDup})
		var j int
		if v.Op == "&&" {
			j = c.emit(Insn{Op: OpJz, Line: int32(v.Line)})
		} else {
			c.emit(Insn{Op: OpNot})
			j = c.emit(Insn{Op: OpJz, Line: int32(v.Line)})
		}
		c.emit(Insn{Op: OpPop})
		if _, err := c.compileValue(v.R); err != nil {
			return nil, err
		}
		c.emit(Insn{Op: OpNot})
		c.emit(Insn{Op: OpNot})
		c.fn.Code[j].Imm = int64(len(c.fn.Code))
		return layout.Int, nil
	}

	lt := c.staticType(v.L)
	rt := c.staticType(v.R)
	lp := lt != nil && (lt.Kind == layout.KindPointer || lt.Kind == layout.KindArray)
	rp := rt != nil && (rt.Kind == layout.KindPointer || rt.Kind == layout.KindArray)

	// Pointer arithmetic: p + n / p - n scale by the element size and
	// lower to ifpadd (OpGepDyn keeps the tag maintained); p - q yields
	// an element count.
	if (v.Op == "+" || v.Op == "-") && lp && !rp {
		baseT, _, err := c.compileArrayOrPointer(v.L)
		if err != nil {
			return nil, err
		}
		elem := baseT.Elem
		if elem == nil {
			return nil, c.errf(v.Line, "arithmetic on void pointer")
		}
		if _, err := c.compileValue(v.R); err != nil {
			return nil, err
		}
		if v.Op == "-" {
			c.emit(Insn{Op: OpNeg, Line: int32(v.Line)})
		}
		c.emit(Insn{Op: OpGepDyn, Imm: int64(elem.Size()), Sub: SubKeep, Line: int32(v.Line)})
		return layout.PointerTo(elem), nil
	}
	if v.Op == "-" && lp && rp {
		if _, err := c.compileValue(v.L); err != nil {
			return nil, err
		}
		c.emit(Insn{Op: OpAddr})
		if _, err := c.compileValue(v.R); err != nil {
			return nil, err
		}
		c.emit(Insn{Op: OpAddr})
		c.emit(Insn{Op: OpSub, Line: int32(v.Line)})
		elem := lt.Elem
		if elem != nil && elem.Size() > 1 {
			c.emit(Insn{Op: OpConst, Imm: int64(elem.Size())})
			c.emit(Insn{Op: OpDiv, Line: int32(v.Line)})
		}
		return layout.Long, nil
	}

	if _, err := c.compileValue(v.L); err != nil {
		return nil, err
	}
	if lp {
		c.emit(Insn{Op: OpAddr})
	}
	if _, err := c.compileValue(v.R); err != nil {
		return nil, err
	}
	if rp {
		c.emit(Insn{Op: OpAddr})
	}
	ops := map[string]Op{
		"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpMod,
		"<<": OpShl, ">>": OpShr, "&": OpAnd, "|": OpOr, "^": OpXor,
		"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe, "==": OpEq, "!=": OpNe,
	}
	op, ok := ops[v.Op]
	if !ok {
		return nil, c.errf(v.Line, "unknown operator %q", v.Op)
	}
	c.emit(Insn{Op: op, Line: int32(v.Line)})
	return layout.Long, nil
}

func (c *compiler) compileCall(v *CallExpr, castType *layout.Type) (*layout.Type, error) {
	name := v.Name
	if c.wrappers[name] {
		// Allocation wrapper: lower as malloc so the cast-driven type
		// deduction applies; charge the call overhead the wrapper would
		// have cost.
		name = "malloc"
	}
	switch name {
	case "malloc":
		if len(v.Args) != 1 {
			return nil, c.errf(v.Line, "malloc takes one argument")
		}
		if _, err := c.compileValue(v.Args[0]); err != nil {
			return nil, err
		}
		// Allocation-type deduction (§4.2.1): from the enclosing cast,
		// or from a sizeof in the size expression. Without either, the
		// allocation is opaque (no layout table) — the CoreMark/bzip2
		// wrapper case.
		elem := mallocElemType(v.Args[0], castType)
		typeIdx := int64(-1)
		if elem != nil && (elem.Kind == layout.KindStruct || elem.Kind == layout.KindArray) {
			typeIdx = int64(len(c.out.MallocTypes))
			c.out.MallocTypes = append(c.out.MallocTypes, elem)
		}
		c.emit(Insn{Op: OpMalloc, Imm: typeIdx, Line: int32(v.Line)})
		if castType != nil {
			return castType, nil
		}
		return layout.PointerTo(layout.Void), nil
	case "free":
		if len(v.Args) != 1 {
			return nil, c.errf(v.Line, "free takes one argument")
		}
		if _, err := c.compileValue(v.Args[0]); err != nil {
			return nil, err
		}
		c.emit(Insn{Op: OpFree, Line: int32(v.Line)})
		return layout.Void, nil
	case "memset":
		if len(v.Args) != 3 {
			return nil, c.errf(v.Line, "memset takes three arguments")
		}
		for _, a := range v.Args {
			if _, err := c.compileValue(a); err != nil {
				return nil, err
			}
		}
		c.emit(Insn{Op: OpMemset, Line: int32(v.Line)})
		return layout.Void, nil
	case "memcpy":
		if len(v.Args) != 3 {
			return nil, c.errf(v.Line, "memcpy takes three arguments")
		}
		for _, a := range v.Args {
			if _, err := c.compileValue(a); err != nil {
				return nil, err
			}
		}
		c.emit(Insn{Op: OpMemcpy, Line: int32(v.Line)})
		return layout.Void, nil
	case "print":
		if len(v.Args) != 1 {
			return nil, c.errf(v.Line, "print takes one argument")
		}
		if _, err := c.compileValue(v.Args[0]); err != nil {
			return nil, err
		}
		c.emit(Insn{Op: OpPrint, Line: int32(v.Line)})
		return layout.Void, nil
	}

	fi, ok := c.out.FuncIdx[v.Name]
	if !ok {
		return nil, c.errf(v.Line, "call to undefined function %q", v.Name)
	}
	callee := c.out.Funcs[fi]
	if len(v.Args) != callee.NParams {
		return nil, c.errf(v.Line, "%s expects %d arguments, got %d", v.Name, callee.NParams, len(v.Args))
	}
	for _, a := range v.Args {
		if _, err := c.compileValue(a); err != nil {
			return nil, err
		}
	}
	c.emit(Insn{Op: OpCall, Imm: int64(fi), Sub: uint16(len(v.Args)), Line: int32(v.Line)})
	return callee.Ret, nil
}

// mallocElemType deduces the allocated element type.
func mallocElemType(sizeArg Expr, castType *layout.Type) *layout.Type {
	if castType != nil && castType.Kind == layout.KindPointer && castType.Elem != nil &&
		castType.Elem.Kind != layout.KindScalar {
		return castType.Elem
	}
	switch a := sizeArg.(type) {
	case *SizeofExpr:
		return a.Type
	case *BinaryExpr:
		if a.Op == "*" {
			if s, ok := a.L.(*SizeofExpr); ok {
				return s.Type
			}
			if s, ok := a.R.(*SizeofExpr); ok {
				return s.Type
			}
		}
	}
	if castType != nil && castType.Kind == layout.KindPointer {
		return castType.Elem
	}
	return nil
}
