package minic

import (
	"errors"
	"testing"

	"infat/internal/machine"
	"infat/internal/rt"
)

// TestExecuteBudgetInfiniteLoop is the service-layer guarantee: a guest
// infinite loop terminates with the typed fuel trap — never a hang, and
// never the untyped step backstop once a budget is set.
func TestExecuteBudgetInfiniteLoop(t *testing.T) {
	const fuel = 100_000
	for _, mode := range []rt.Mode{rt.Baseline, rt.Subheap, rt.Wrapped} {
		_, _, c, err := ExecuteBudget("int main() { while (1) { } return 0; }", mode, fuel)
		if !machine.IsTrap(err, machine.TrapFuel) {
			t.Fatalf("%v: err = %v, want fuel trap", mode, err)
		}
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("%v: fuel trap not wrapped in RunError: %v", mode, err)
		}
		if c.Cycles < fuel {
			t.Fatalf("%v: trapped at %d cycles, before the %d budget", mode, c.Cycles, fuel)
		}
		if c.Cycles > fuel+1000 {
			t.Fatalf("%v: trap landed %d cycles past the budget", mode, c.Cycles-fuel)
		}
	}
}

// TestExecuteBudgetUnaffectedRun: a program that fits its budget behaves
// exactly like an unlimited run, counters included.
func TestExecuteBudgetUnaffectedRun(t *testing.T) {
	const src = `int main() {
	long i;
	long acc = 0;
	for (i = 0; i < 100; i = i + 1) { acc = acc + i; }
	print(acc);
	return 0;
}`
	outFree, exitFree, err := Execute(src, rt.Subheap)
	if err != nil {
		t.Fatal(err)
	}
	out, exit, c, err := ExecuteBudget(src, rt.Subheap, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if exit != exitFree || len(out) != 1 || out[0] != outFree[0] {
		t.Fatalf("budgeted run diverged: out=%v exit=%d vs out=%v exit=%d",
			out, exit, outFree, exitFree)
	}
	if c.Instrs == 0 || c.Cycles == 0 {
		t.Fatal("counters not captured")
	}
}

// TestFuelAmortizedOvershootBounded pins the one-block grace of the
// register dispatch loop: fuel is checked once per basic block (at the
// LBlock pseudo-instruction), so a trapping run may retire up to one
// block past the budget — never more, and never a trap before the budget.
// The loop body here is a fat straight-line block, the worst case for the
// amortized check.
func TestFuelAmortizedOvershootBounded(t *testing.T) {
	const src = `int main() {
	long a = 0; long b = 1; long c = 2; long d = 3;
	while (1) {
		a = a + b; b = b + c; c = c + d; d = d + a;
		a = a ^ d; b = b | c; c = c & a; d = d + 1;
	}
	return 0;
}`
	comp, err := DefaultInterner.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	l := comp.Lowered()
	if l == nil {
		t.Fatalf("program did not lower: %v", comp.LowerError())
	}
	// An upper bound on the cycles one block can retire: every lowered
	// instruction ticks a small constant (ALU 1, loads/stores a cache
	// access), far below 64 cycles each.
	grace := 64 * l.MaxBlock
	for _, fuel := range []uint64{500, 1_000, 10_000, 250_000} {
		_, _, c, err := ExecuteBudget(src, rt.Subheap, fuel)
		if !machine.IsTrap(err, machine.TrapFuel) {
			t.Fatalf("fuel=%d: err = %v, want typed fuel trap", fuel, err)
		}
		if c.Cycles < fuel {
			t.Fatalf("fuel=%d: trapped at %d cycles, before the budget", fuel, c.Cycles)
		}
		if over := c.Cycles - fuel; over > grace {
			t.Fatalf("fuel=%d: overshot budget by %d cycles, amortization grace is %d (MaxBlock=%d)",
				fuel, over, grace, l.MaxBlock)
		}
	}
}

// TestFuelAmortizedNoSpuriousTrap: a run that fits its budget on the
// reference walker must also fit it on the register loop — the amortized
// check points are a subset of the reference check points, so amortization
// can delay a trap but never invent one.
func TestFuelAmortizedNoSpuriousTrap(t *testing.T) {
	const src = `int main() {
	long i; long acc = 0;
	for (i = 0; i < 500; i = i + 1) { acc = acc + i * i; }
	print(acc);
	return 0;
}`
	// Learn the exact cycle cost from an unlimited run.
	_, _, c, err := ExecuteBudget(src, rt.Subheap, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, fuel := range []uint64{c.Cycles + 1, c.Cycles * 2} {
		refOut, refExit, refC, refErr := ExecuteBudgetReference(src, rt.Subheap, fuel)
		regOut, regExit, regC, regErr := ExecuteBudget(src, rt.Subheap, fuel)
		if refErr != nil || regErr != nil {
			t.Fatalf("fuel=%d: spurious trap: reference %v, register %v", fuel, refErr, regErr)
		}
		if refExit != regExit || refC != regC || refOut[0] != regOut[0] {
			t.Fatalf("fuel=%d: budgeted runs diverged", fuel)
		}
	}
}

// TestFuelTypedTrapBeatsBackstop: with a fat-block loop and a large fuel
// budget, the register loop must still surface the typed TrapFuel, never
// the untyped step backstop — the backstop scales with the lowered
// program's maximum block size precisely so amortized over-charging cannot
// outrun it.
func TestFuelTypedTrapBeatsBackstop(t *testing.T) {
	const src = `int main() {
	long a = 0;
	while (1) {
		a = a + 1; a = a + 2; a = a + 3; a = a + 4;
		a = a + 5; a = a + 6; a = a + 7; a = a + 8;
		a = a ^ 1; a = a ^ 2; a = a ^ 3; a = a ^ 4;
	}
	return 0;
}`
	for _, fuel := range []uint64{100_000, 5_000_000} {
		_, _, _, err := ExecuteBudget(src, rt.Subheap, fuel)
		if !machine.IsTrap(err, machine.TrapFuel) {
			t.Fatalf("fuel=%d: err = %v, want typed fuel trap (not the step backstop)", fuel, err)
		}
	}
}

// TestExecuteBudgetSpatialTrapFirst: a spatial error inside the budget
// still surfaces as the spatial trap, not fuel.
func TestExecuteBudgetSpatialTrapFirst(t *testing.T) {
	const src = `int main() {
	char buf[8];
	long i;
	for (i = 0; i <= 8; i = i + 1) { buf[i] = 'A'; }
	return 0;
}`
	_, _, _, err := ExecuteBudget(src, rt.Subheap, 100_000_000)
	if !machine.IsTrap(err, machine.TrapPoison) && !machine.IsTrap(err, machine.TrapBounds) {
		t.Fatalf("err = %v, want spatial trap", err)
	}
	if machine.IsTrap(err, machine.TrapFuel) {
		t.Fatal("spatial error misreported as fuel")
	}
}
