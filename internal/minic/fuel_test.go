package minic

import (
	"errors"
	"testing"

	"infat/internal/machine"
	"infat/internal/rt"
)

// TestExecuteBudgetInfiniteLoop is the service-layer guarantee: a guest
// infinite loop terminates with the typed fuel trap — never a hang, and
// never the untyped step backstop once a budget is set.
func TestExecuteBudgetInfiniteLoop(t *testing.T) {
	const fuel = 100_000
	for _, mode := range []rt.Mode{rt.Baseline, rt.Subheap, rt.Wrapped} {
		_, _, c, err := ExecuteBudget("int main() { while (1) { } return 0; }", mode, fuel)
		if !machine.IsTrap(err, machine.TrapFuel) {
			t.Fatalf("%v: err = %v, want fuel trap", mode, err)
		}
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("%v: fuel trap not wrapped in RunError: %v", mode, err)
		}
		if c.Cycles < fuel {
			t.Fatalf("%v: trapped at %d cycles, before the %d budget", mode, c.Cycles, fuel)
		}
		if c.Cycles > fuel+1000 {
			t.Fatalf("%v: trap landed %d cycles past the budget", mode, c.Cycles-fuel)
		}
	}
}

// TestExecuteBudgetUnaffectedRun: a program that fits its budget behaves
// exactly like an unlimited run, counters included.
func TestExecuteBudgetUnaffectedRun(t *testing.T) {
	const src = `int main() {
	long i;
	long acc = 0;
	for (i = 0; i < 100; i = i + 1) { acc = acc + i; }
	print(acc);
	return 0;
}`
	outFree, exitFree, err := Execute(src, rt.Subheap)
	if err != nil {
		t.Fatal(err)
	}
	out, exit, c, err := ExecuteBudget(src, rt.Subheap, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if exit != exitFree || len(out) != 1 || out[0] != outFree[0] {
		t.Fatalf("budgeted run diverged: out=%v exit=%d vs out=%v exit=%d",
			out, exit, outFree, exitFree)
	}
	if c.Instrs == 0 || c.Cycles == 0 {
		t.Fatal("counters not captured")
	}
}

// TestExecuteBudgetSpatialTrapFirst: a spatial error inside the budget
// still surfaces as the spatial trap, not fuel.
func TestExecuteBudgetSpatialTrapFirst(t *testing.T) {
	const src = `int main() {
	char buf[8];
	long i;
	for (i = 0; i <= 8; i = i + 1) { buf[i] = 'A'; }
	return 0;
}`
	_, _, _, err := ExecuteBudget(src, rt.Subheap, 100_000_000)
	if !machine.IsTrap(err, machine.TrapPoison) && !machine.IsTrap(err, machine.TrapBounds) {
		t.Fatalf("err = %v, want spatial trap", err)
	}
	if machine.IsTrap(err, machine.TrapFuel) {
		t.Fatal("spatial error misreported as fuel")
	}
}
