package minic

import (
	"container/list"
	"crypto/sha256"
	"sync"
)

// Interner is a concurrency-safe compile-once cache: it maps
// sha256(source) to the immutable *Compiled produced by Parse+Compile, so
// an evaluation campaign that runs the same workload source across a
// hundred (mode × config) cells front-loads exactly one compilation.
//
// Sharing is sound because compilation is a pure function of the source
// bytes and a Compiled is read-only after construction (see the Compiled
// doc comment): every VM, on any goroutine, only reads the shared
// program. Compile and parse errors are cached too ("negative" entries) —
// they are equally deterministic, and a grid that feeds a bad source to N
// cells should not re-parse it N times.
//
// The cache is a bounded LRU so a long-lived process (ifp-serve) feeding
// unbounded distinct sources cannot grow it without limit; eviction only
// drops the cache's own reference, never invalidates a *Compiled already
// handed out.
type Interner struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *internEntry
	entries map[[sha256.Size]byte]*list.Element
}

type internEntry struct {
	key  [sha256.Size]byte
	comp *Compiled
	err  error
}

// DefaultInternerCap bounds the default interner. Compiled programs are
// small (a few KiB of bytecode for typical workloads), so even the cap's
// worth of entries is modest; campaigns use a handful of sources.
const DefaultInternerCap = 1024

// DefaultInterner is the process-wide interner used by ExecuteBudget.
var DefaultInterner = NewInterner(DefaultInternerCap)

// NewInterner returns an interner retaining at most capEntries programs
// (minimum 1).
func NewInterner(capEntries int) *Interner {
	if capEntries < 1 {
		capEntries = 1
	}
	return &Interner{
		cap:     capEntries,
		order:   list.New(),
		entries: make(map[[sha256.Size]byte]*list.Element),
	}
}

// Get returns the compiled form of src, compiling it on first sight and
// serving every later call for the same bytes from cache. The returned
// *Compiled is shared and immutable; the returned error (if any) is the
// original Parse/Compile error, also cached.
func (in *Interner) Get(src string) (*Compiled, error) {
	key := sha256.Sum256([]byte(src))

	in.mu.Lock()
	if el, ok := in.entries[key]; ok {
		in.order.MoveToFront(el)
		e := el.Value.(*internEntry)
		in.mu.Unlock()
		return e.comp, e.err
	}
	in.mu.Unlock()

	// Compile outside the lock: compilation is pure, so two goroutines
	// racing on a cold key just do redundant work, and the loser's result
	// is discarded in favor of the entry already published (keeping one
	// canonical *Compiled per source maximizes sharing).
	comp, err := compileSource(src)
	if comp != nil {
		// Pre-warm the register-bytecode form so every VM (including the
		// first) finds it cached: lowering, like compilation, is paid
		// once per distinct source.
		comp.Lowered()
	}

	in.mu.Lock()
	defer in.mu.Unlock()
	if el, ok := in.entries[key]; ok {
		in.order.MoveToFront(el)
		e := el.Value.(*internEntry)
		return e.comp, e.err
	}
	e := &internEntry{key: key, comp: comp, err: err}
	in.entries[key] = in.order.PushFront(e)
	for in.order.Len() > in.cap {
		oldest := in.order.Back()
		in.order.Remove(oldest)
		delete(in.entries, oldest.Value.(*internEntry).key)
	}
	return comp, err
}

// Len reports the number of cached entries.
func (in *Interner) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.order.Len()
}

// compileSource is the uncached compile pipeline: Parse then Compile.
func compileSource(src string) (*Compiled, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog)
}
