package minic

import (
	"fmt"
	"sync"
	"testing"

	"infat/internal/machine"
	"infat/internal/rt"
)

const internSrc = `int main() {
	long i;
	long acc = 0;
	long buf[8];
	for (i = 0; i < 8; i = i + 1) { buf[i] = i * i; }
	for (i = 0; i < 8; i = i + 1) { acc = acc + buf[i]; }
	print(acc);
	return 0;
}`

func TestInternerCompileOnce(t *testing.T) {
	in := NewInterner(4)
	c1, err := in.Get(internSrc)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := in.Get(internSrc)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("second Get returned a different *Compiled: source recompiled")
	}
	if got := in.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestInternerCachesErrors(t *testing.T) {
	in := NewInterner(4)
	const bad = "int main() { return 0"
	c1, err1 := in.Get(bad)
	if err1 == nil || c1 != nil {
		t.Fatalf("Get(bad) = (%v, %v), want compile error", c1, err1)
	}
	c2, err2 := in.Get(bad)
	if c2 != nil || err2 != err1 {
		t.Fatalf("negative entry not cached: second err %v, first %v", err2, err1)
	}
	if got := in.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 (errors occupy an entry)", got)
	}
}

func TestInternerLRUEviction(t *testing.T) {
	in := NewInterner(2)
	src := func(i int) string { return fmt.Sprintf("int main() { return %d; }", i) }
	c0, err := in.Get(src(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Get(src(1)); err != nil {
		t.Fatal(err)
	}
	// Touch 0 so 1 becomes the LRU victim when 2 is inserted.
	if c, err := in.Get(src(0)); err != nil || c != c0 {
		t.Fatalf("Get(0) = (%p, %v), want cached %p", c, err, c0)
	}
	if _, err := in.Get(src(2)); err != nil {
		t.Fatal(err)
	}
	if got := in.Len(); got != 2 {
		t.Fatalf("Len = %d, want cap 2", got)
	}
	// 0 must still be the cached instance; 1 was evicted (a fresh Get
	// works, it just recompiles — eviction never breaks correctness).
	if c, err := in.Get(src(0)); err != nil || c != c0 {
		t.Fatalf("entry 0 evicted out of LRU order: (%p, %v), want %p", c, err, c0)
	}
	if _, err := in.Get(src(1)); err != nil {
		t.Fatal(err)
	}
}

// TestInternerConcurrent hammers one interner from many goroutines over a
// small source set and asserts every caller observes exactly one
// *Compiled per source — the canonical-instance guarantee that maximizes
// sharing. Run under -race this also proves Get's locking discipline.
func TestInternerConcurrent(t *testing.T) {
	in := NewInterner(8)
	srcs := []string{
		"int main() { return 1; }",
		"int main() { return 2; }",
		internSrc,
		"int main() { return 0", // negative entry races too
	}
	const workers = 16
	got := make([][]*Compiled, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = make([]*Compiled, len(srcs))
			for rep := 0; rep < 50; rep++ {
				for i, s := range srcs {
					c, _ := in.Get(s)
					if rep == 0 {
						got[w][i] = c
					} else if c != got[w][i] {
						t.Errorf("worker %d src %d: instance changed across Gets", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for i := range srcs {
		for w := 1; w < workers; w++ {
			if got[w][i] != got[0][i] {
				t.Fatalf("src %d: worker %d saw %p, worker 0 saw %p", i, w, got[w][i], got[0][i])
			}
		}
	}
}

// runFresh is the pre-interner ExecuteBudget pipeline: parse and compile
// this call's own *Compiled, run it on a non-pooled runtime.
func runFresh(t *testing.T, src string, mode rt.Mode) ([]int64, int64, machine.Counters, error) {
	t.Helper()
	comp, err := compileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	r := rt.New(mode)
	vm, err := NewVM(comp, r)
	if err != nil {
		t.Fatal(err)
	}
	exit, err := vm.Run()
	return vm.Out, exit, r.M.C, err
}

// TestFreshVsInternedEquivalence is the determinism contract for program
// interning: a shared, interned *Compiled must produce output, exit code,
// and modeled counters identical to a private compilation of the same
// source, in every mode, on both the first and a repeated (cache-hit)
// run.
func TestFreshVsInternedEquivalence(t *testing.T) {
	for _, mode := range []rt.Mode{rt.Baseline, rt.Subheap, rt.Wrapped} {
		fo, fe, fc, ferr := runFresh(t, internSrc, mode)
		if ferr != nil {
			t.Fatalf("%v: fresh run: %v", mode, ferr)
		}
		for rep := 0; rep < 3; rep++ {
			io, ie, ic, ierr := ExecuteBudget(internSrc, mode, 0)
			if ierr != nil {
				t.Fatalf("%v rep %d: interned run: %v", mode, rep, ierr)
			}
			if ie != fe || ic != fc || len(io) != len(fo) {
				t.Fatalf("%v rep %d: interned (exit %d, counters %+v) vs fresh (exit %d, counters %+v)",
					mode, rep, ie, ic, fe, fc)
			}
			for i := range fo {
				if io[i] != fo[i] {
					t.Fatalf("%v rep %d: out[%d] = %d, fresh %d", mode, rep, i, io[i], fo[i])
				}
			}
		}
	}
}

// TestInternedCompiledSharedAcrossModes pins that ExecuteBudget keys the
// cache by source only: all modes share one *Compiled, so a 5-mode grid
// cell compiles its workload exactly once.
func TestInternedCompiledSharedAcrossModes(t *testing.T) {
	src := "int main() { print(41); return 0; }"
	c1, err := DefaultInterner.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []rt.Mode{rt.Baseline, rt.Subheap, rt.Wrapped} {
		if _, _, _, err := ExecuteBudget(src, mode, 0); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
	c2, err := DefaultInterner.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("running across modes replaced the interned *Compiled")
	}
}

// TestAllocBudgetExecuteBudget is the CI alloc-regression guard for the
// interpreter hot path: a steady-state ExecuteBudget (program interned,
// runtime pooled, VM arenas warm after the first iteration) must stay
// within budget. The PR 4 baseline was 84 allocs/op; the interner and the
// zero-alloc interpreter cut the compile and per-call churn out, and this
// test keeps them out.
func TestAllocBudgetExecuteBudget(t *testing.T) {
	if !rt.ReuseSystems() {
		t.Skip("requires pooled runtimes")
	}
	// Warm: interner entry, pool, and any lazy process state.
	if _, _, _, err := ExecuteBudget(internSrc, rt.Subheap, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, _, err := ExecuteBudget(internSrc, rt.Subheap, 0); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: well under the PR 4 baseline of 84 and the pre-bytecode
	// ceiling of 40. The register dispatch loop measures 13 allocs/run
	// steady state (the stack walker needed 15 — its operand stack grew
	// mid-run where register windows are sized up front); the remaining
	// allocs are per-run by design (VM + its Out/heapObjs slices and
	// per-run guest-object bookkeeping), not per-call or per-access churn.
	const budget = 16
	if allocs > budget {
		t.Fatalf("ExecuteBudget steady state = %.1f allocs/run, budget %d", allocs, budget)
	}
}
