// Package minic is a from-scratch compiler for a C subset, standing in
// for the paper's modified Clang/LLVM (§4). It lexes, parses, type-checks,
// and lowers MiniC programs to a stack IR; the lowering performs the In-Fat
// Pointer instrumentation of Figure 3 (object registration, pointer-tag
// updates on member derivation, promotes on pointer loads, bounds checks),
// and a VM executes the IR against the simulated machine. Compiling with
// instrumentation disabled yields the uninstrumented baseline the paper
// compares against.
//
// The subset covers what the Juliet-style evaluation needs: char/int/long,
// structs, fixed arrays, pointers, globals, functions with arguments and
// recursion, control flow, malloc/free/memset/memcpy, sizeof, casts, and
// string literals.
package minic

import (
	"fmt"
	"strings"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokChar
	TokPunct   // operators and punctuation
	TokKeyword // reserved words
)

// Token is one lexeme.
type Token struct {
	Kind TokKind
	Text string
	Num  int64 // value for TokNumber / TokChar
	Line int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "<eof>"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"char": true, "int": true, "long": true, "void": true,
	"struct": true, "if": true, "else": true, "while": true,
	"for": true, "return": true, "sizeof": true, "break": true,
	"continue": true, "do": true, "switch": true, "case": true,
	"default": true,
}

// multi-character punctuation, longest first.
var puncts = []string{
	"<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
	"&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
}

// SyntaxError is a lexing or parsing failure.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minic:%d: %s", e.Line, e.Msg)
}

// Lex tokenizes src.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= len(src) {
				return nil, &SyntaxError{line, "unterminated block comment"}
			}
			i += 2
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			word := src[i:j]
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: word, Line: line})
			i = j
		case c >= '0' && c <= '9':
			j := i
			base := int64(10)
			if c == '0' && j+1 < len(src) && (src[j+1] == 'x' || src[j+1] == 'X') {
				base = 16
				j += 2
			}
			start := j
			for j < len(src) && isDigit(src[j], base) {
				j++
			}
			var n int64
			for _, d := range src[start:j] {
				n = n*base + digitVal(byte(d))
			}
			toks = append(toks, Token{Kind: TokNumber, Text: src[i:j], Num: n, Line: line})
			i = j
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				ch, nj, err := unescape(src, j, line)
				if err != nil {
					return nil, err
				}
				sb.WriteByte(ch)
				j = nj
			}
			if j >= len(src) {
				return nil, &SyntaxError{line, "unterminated string literal"}
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Line: line})
			i = j + 1
		case c == '\'':
			j := i + 1
			if j >= len(src) {
				return nil, &SyntaxError{line, "unterminated char literal"}
			}
			ch, nj, err := unescape(src, j, line)
			if err != nil {
				return nil, err
			}
			if nj >= len(src) || src[nj] != '\'' {
				return nil, &SyntaxError{line, "unterminated char literal"}
			}
			toks = append(toks, Token{Kind: TokChar, Text: string(ch), Num: int64(ch), Line: line})
			i = nj + 1
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, &SyntaxError{line, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line})
	return toks, nil
}

func unescape(src string, j, line int) (byte, int, error) {
	if src[j] != '\\' {
		return src[j], j + 1, nil
	}
	if j+1 >= len(src) {
		return 0, 0, &SyntaxError{line, "dangling escape"}
	}
	switch src[j+1] {
	case 'n':
		return '\n', j + 2, nil
	case 't':
		return '\t', j + 2, nil
	case 'r':
		return '\r', j + 2, nil
	case '0':
		return 0, j + 2, nil
	case '\\':
		return '\\', j + 2, nil
	case '\'':
		return '\'', j + 2, nil
	case '"':
		return '"', j + 2, nil
	}
	return 0, 0, &SyntaxError{line, fmt.Sprintf("unknown escape \\%c", src[j+1])}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte, base int64) bool {
	if base == 16 {
		return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
	}
	return c >= '0' && c <= '9'
}

func digitVal(c byte) int64 {
	switch {
	case c >= '0' && c <= '9':
		return int64(c - '0')
	case c >= 'a' && c <= 'f':
		return int64(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int64(c-'A') + 10
	}
	return 0
}
