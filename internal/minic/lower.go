package minic

import (
	"fmt"

	"infat/internal/layout"
)

// This file lowers the stack IR produced by Compile into a flat
// register-style bytecode executed by the VM's register dispatch loop
// (vm.callReg). The stack IR stays the compiler's output — the
// instrumentation pass and its Figure-3 placement are untouched — and
// lowering is a separate, pure translation pass:
//
//   - Stack slots become virtual registers. MiniC's structured control
//     flow guarantees a consistent operand-stack depth at every program
//     point, so the value at depth k simply lives in register k; a
//     depth-consistency analysis proves this per function (and refuses to
//     lower — falling back to the reference stack walker — if it ever
//     fails, which no compiler-produced program does).
//   - The instrumentation-heavy sequences the paper makes hot are fused
//     into superinstructions dispatched as one switch arm:
//     LLoadPChk (promote+ifpchk+load: every pointer dereference),
//     LGepIdx (ifpadd+ifpidx: member derivation with tag update),
//     LGepIdxBnd (GEP+ifpbnd: member derivation with subobject
//     narrowing), LConstGepStore (constant-index element store), and the
//     bonus pairs LLocalLoad/LLocalLoadP (slot address + load).
//     Each superinstruction retires exactly the machine operations its
//     unfused components would — same rt calls, same order, same Ticks —
//     so machine.Counters stay byte-identical.
//   - The fuel check is amortized per extended basic block: an LBlock
//     pseudo-instruction at every jump target (and function entry)
//     charges the block's step count and checks the budget once, so a
//     fuel-limited run traps with machine.TrapFuel without ever exceeding
//     the budget by more than the current block.
//
// A Lowered program is immutable after Lower returns and is cached on the
// Compiled via sync.Once (see Compiled.Lowered), inheriting the interner's
// read-only sharing contract: one lowered program serves any number of
// VMs, concurrently.

// LOp is a lowered opcode.
type LOp uint8

// Lowered opcodes. The L-prefixed singles correspond 1:1 to stack ops
// (with register operands instead of implicit stack slots); the tail of
// the enum is the fused superinstructions.
const (
	LBlock  LOp = iota // block entry: charge Imm steps, check fuel once
	LConst             // r[A] = Imm
	LStr               // r[A] = &string[Imm]
	LLocal             // r[A] = &slot[Imm]
	LGlobal            // r[A] = &global[Imm]
	LLoad              // r[A] = *r[A] (Size bytes, sign-extended)
	LLoadP             // r[A] = promote(*r[A])
	LStore             // *r[A] = r[B] (Size bytes)
	LStoreP            // *r[A] = demote(r[B])
	LGep               // r[A] = r[A] + Imm (ifpadd)
	LGepDyn            // r[A] = r[A] + r[C]*Imm (ifpadd, scaled)
	LBnd               // r[A].bounds = ifpbnd(r[A], Imm)
	LAddr              // r[A] = r[A] & (1<<48 - 1), bounds cleared
	LMov               // r[A] = r[B] (from OpDup)
	LAlu               // r[A] = alu(Sub, r[A], r[C])
	LNeg               // r[A] = -r[A]
	LNot               // r[A] = !r[A]
	LBnot              // r[A] = ^r[A]
	LJmp               // pc = Imm
	LJz                // if r[A] == 0: pc = Imm
	LJnz               // if r[A] != 0: pc = Imm
	LCall              // r[A] = call Funcs[Imm](r[A:A+Sub])
	LRet               // return r[A] if Sub == 1
	LMalloc            // r[A] = malloc(r[A]); Imm = malloc-type index or -1
	LFree              // free(r[A])
	LMemset            // memset(r[A], r[B], r[C])
	LMemcpy            // memcpy(r[A], r[B], r[C])
	LPrint             // print(r[A])

	// Fused superinstructions (each retires its components' exact
	// machine-op sequence; see the dispatch loop).
	LGepIdx        // r[A] = ifpidx(ifpadd(r[A], Imm), Sub)
	LGepIdxBnd     // r[A] = ifpbnd(ifpidx?(ifpadd(r[A], Imm), Sub), Imm2)
	LLoadPChk      // r[A] = *(promote(*r[A])) — pointer deref chain
	LConstGepStore // *(r[B] + Imm*Imm2) = r[A] — constant-index element store
	LLocalLoad     // r[A] = *(&slot[Imm])
	LLocalLoadP    // r[A] = promote(*(&slot[Imm]))

	lopCount // number of lowered opcodes (sizing for hit counters)
)

// LInsn is one lowered instruction. A, B, C are virtual register numbers
// (frame-relative). Line is the source line of the first fused component
// (used for disassembly and block attribution); Line2 is the line of the
// component whose runtime error the instruction can surface (equal to
// Line for unfused instructions).
type LInsn struct {
	Op        LOp
	Size      uint8
	A, B, C   uint16
	Sub       uint16
	Line      int32
	Line2     int32
	Imm, Imm2 int64
}

// LFunc is one lowered function.
type LFunc struct {
	Name    string
	MaxRegs int // register-file size (peak operand-stack depth)
	Code    []LInsn
	NSuper  int // statically fused superinstruction count
}

// Lowered is a lowered program: one LFunc per Compiled.Funcs entry, same
// indices (so LCall's Imm indexes both).
type Lowered struct {
	Funcs []*LFunc
	// MaxBlock is the largest per-block step charge in the program; the
	// VM scales its untyped step backstop by it so the typed fuel trap
	// always fires first even though block charging can over-charge
	// skipped instructions by up to one block per taken branch.
	MaxBlock uint64
}

// Lowered returns the register-bytecode form of c, lowering on first use
// and caching the result (one immutable lowered program per *Compiled,
// same read-only sharing contract as the stack IR). It returns nil when
// lowering failed — the VM then falls back to the reference stack walker,
// so a lowering refusal is never observable, only slower.
func (c *Compiled) Lowered() *Lowered {
	c.lowerOnce.Do(func() {
		c.lowered, c.lowerErr = Lower(c)
		if c.lowerErr != nil {
			c.lowered = nil
		}
	})
	return c.lowered
}

// LowerError reports why Lowered() returned nil (nil if lowering
// succeeded or has not run).
func (c *Compiled) LowerError() error {
	c.Lowered()
	return c.lowerErr
}

// Lower translates every function of c to register bytecode. It never
// mutates c. An error means some function's stack discipline could not be
// proven (impossible for compiler-produced programs; possible in theory
// for hand-built IR) — callers should fall back to the stack walker.
func Lower(c *Compiled) (*Lowered, error) {
	l := &Lowered{Funcs: make([]*LFunc, len(c.Funcs)), MaxBlock: 1}
	for i, fn := range c.Funcs {
		lf, maxBlock, err := lowerFunc(c, fn)
		if err != nil {
			return nil, fmt.Errorf("minic: lowering %s: %w", fn.Name, err)
		}
		l.Funcs[i] = lf
		if maxBlock > l.MaxBlock {
			l.MaxBlock = maxBlock
		}
	}
	return l, nil
}

// stackEffect returns how many operands in pops and pushes. ok is false
// for opcodes the lowerer does not understand.
func stackEffect(c *Compiled, in Insn) (pops, pushes int, ok bool) {
	switch in.Op {
	case OpConst, OpStr, OpLocal, OpGlobal:
		return 0, 1, true
	case OpLoad, OpLoadP, OpGep, OpBnd, OpAddr, OpMalloc, OpNeg, OpNot, OpBnot:
		return 1, 1, true
	case OpStore, OpStoreP:
		return 2, 0, true
	case OpGepDyn:
		return 2, 1, true
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpShl, OpShr, OpAnd, OpOr, OpXor,
		OpLt, OpLe, OpGt, OpGe, OpEq, OpNe:
		return 2, 1, true
	case OpJmp:
		return 0, 0, true
	case OpJz, OpJnz, OpPop, OpFree, OpPrint:
		return 1, 0, true
	case OpDup:
		return 1, 2, true
	case OpMemset, OpMemcpy:
		return 3, 0, true
	case OpCall:
		if in.Imm < 0 || int(in.Imm) >= len(c.Funcs) {
			return 0, 0, false
		}
		pushes = 0
		if c.Funcs[in.Imm].Ret != layout.Void {
			pushes = 1
		}
		return int(in.Sub), pushes, true
	case OpRet:
		if in.Sub == 1 {
			return 1, 0, true
		}
		return 0, 0, true
	}
	return 0, 0, false
}

// terminal reports whether in never falls through to pc+1.
func terminal(in Insn) bool { return in.Op == OpJmp || in.Op == OpRet }

// maxFrameRegs bounds the per-function register file; operand depth never
// remotely approaches it for real programs, and uint16 register operands
// need the bound anyway.
const maxFrameRegs = 1 << 14

// lowerFunc lowers one function. It returns the lowered function and its
// largest per-block step charge.
func lowerFunc(c *Compiled, fn *Func) (*LFunc, uint64, error) {
	n := len(fn.Code)
	if n == 0 {
		return nil, 0, fmt.Errorf("empty code")
	}

	// Pass 1: depth analysis. depth[pc] is the operand-stack depth on
	// entry to pc, or -1 for unreachable code. The value at depth k lives
	// in register k, so the analysis must find one consistent depth per
	// program point — guaranteed by the structured-control-flow compiler,
	// verified here.
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[0] = 0
	work := []int{0}
	maxDepth := 0
	flow := func(from, to, d int) error {
		if to < 0 || to >= n {
			return fmt.Errorf("pc %d: successor %d out of range", from, to)
		}
		if depth[to] == -1 {
			depth[to] = d
			work = append(work, to)
			return nil
		}
		if depth[to] != d {
			return fmt.Errorf("pc %d: depth mismatch at %d (%d vs %d)", from, to, depth[to], d)
		}
		return nil
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := fn.Code[pc]
		pops, pushes, ok := stackEffect(c, in)
		if !ok {
			return nil, 0, fmt.Errorf("pc %d: unsupported op %d", pc, in.Op)
		}
		d := depth[pc] - pops
		if d < 0 {
			return nil, 0, fmt.Errorf("pc %d: operand stack underflow", pc)
		}
		d += pushes
		if d > maxDepth {
			maxDepth = d
		}
		if d >= maxFrameRegs {
			return nil, 0, fmt.Errorf("pc %d: operand depth %d exceeds register file", pc, d)
		}
		switch in.Op {
		case OpJmp:
			if err := flow(pc, int(in.Imm), d); err != nil {
				return nil, 0, err
			}
		case OpJz, OpJnz:
			if err := flow(pc, int(in.Imm), d); err != nil {
				return nil, 0, err
			}
			if err := flow(pc, pc+1, d); err != nil {
				return nil, 0, err
			}
		case OpRet:
			// no successors
		default:
			if err := flow(pc, pc+1, d); err != nil {
				return nil, 0, err
			}
		}
	}

	// Leaders: function entry plus every reachable jump target. A leader
	// starts an extended basic block and gets an LBlock; fusion never
	// spans a leader (a jump may land between fused components
	// otherwise).
	leader := make([]bool, n)
	leader[0] = true
	for pc, in := range fn.Code {
		if depth[pc] == -1 {
			continue
		}
		switch in.Op {
		case OpJmp, OpJz, OpJnz:
			leader[int(in.Imm)] = true
		}
	}

	// Pass 2: emission. Unreachable stack instructions (e.g. the
	// auto-appended OpRet after an explicit return) are dropped — the
	// reference walker never executes them either.
	lf := &LFunc{Name: fn.Name, MaxRegs: maxDepth}
	pcMap := make([]int, n+1) // stack pc -> lowered pc of its (group's) first insn
	type fixup struct {
		lpc    int // lowered jump instruction
		target int // stack-IR target
	}
	var fixups []fixup
	var maxBlock uint64
	blockIdx := -1 // open LBlock, or -1
	blockSteps := int64(0)
	closeBlock := func() {
		if blockIdx >= 0 {
			lf.Code[blockIdx].Imm = blockSteps
			if uint64(blockSteps) > maxBlock {
				maxBlock = uint64(blockSteps)
			}
		}
		blockSteps = 0
	}
	emit := func(in LInsn) int {
		if in.Line2 == 0 {
			in.Line2 = in.Line
		}
		lf.Code = append(lf.Code, in)
		return len(lf.Code) - 1
	}
	// fusable reports whether the follower pcs can be absorbed into a
	// superinstruction starting at pc: they must exist and not be block
	// leaders (reachability follows from fallthrough).
	fusable := func(pcs ...int) bool {
		for _, p := range pcs {
			if p >= n || leader[p] {
				return false
			}
		}
		return true
	}

	for pc := 0; pc < n; pc++ {
		if depth[pc] == -1 {
			pcMap[pc] = len(lf.Code)
			continue
		}
		if leader[pc] {
			closeBlock()
			blockIdx = emit(LInsn{Op: LBlock, Line: fn.Code[pc].Line})
		}
		if leader[pc] {
			pcMap[pc] = blockIdx // jumps land on the block's LBlock
		} else {
			pcMap[pc] = len(lf.Code)
		}

		in := fn.Code[pc]
		d := depth[pc]
		reg := func(k int) uint16 { return uint16(k) }

		// Superinstruction peepholes, longest pattern first. Every
		// component is a reference step, so the block charge counts them
		// all.
		switch {
		case in.Op == OpConst && fusable(pc+1, pc+2) &&
			fn.Code[pc+1].Op == OpGepDyn && fn.Code[pc+2].Op == OpStore:
			// value at d-2, base at d-1; the constant index and the
			// address never materialize.
			gep, st := fn.Code[pc+1], fn.Code[pc+2]
			emit(LInsn{
				Op: LConstGepStore, A: reg(d - 2), B: reg(d - 1),
				Imm: in.Imm, Imm2: gep.Imm, Sub: gep.Sub, Size: st.Size,
				Line: in.Line, Line2: st.Line,
			})
			lf.NSuper++
			blockSteps += 3
			pc += 2
			continue
		case in.Op == OpGep && fusable(pc+1) && fn.Code[pc+1].Op == OpBnd:
			bnd := fn.Code[pc+1]
			emit(LInsn{
				Op: LGepIdxBnd, A: reg(d - 1),
				Imm: in.Imm, Sub: in.Sub, Imm2: bnd.Imm,
				Line: in.Line, Line2: bnd.Line,
			})
			lf.NSuper++
			blockSteps += 2
			pc++
			continue
		case in.Op == OpLoadP && fusable(pc+1) && fn.Code[pc+1].Op == OpLoad:
			ld := fn.Code[pc+1]
			emit(LInsn{
				Op: LLoadPChk, A: reg(d - 1), Size: ld.Size,
				Line: in.Line, Line2: ld.Line,
			})
			lf.NSuper++
			blockSteps += 2
			pc++
			continue
		case in.Op == OpLocal && fusable(pc+1) &&
			(fn.Code[pc+1].Op == OpLoad || fn.Code[pc+1].Op == OpLoadP):
			// Leave `local; loadp; load` to the LoadPChk peephole: the
			// promote+check+load chain is the fusion the paper names.
			if fn.Code[pc+1].Op == OpLoadP && fusable(pc+2) && fn.Code[pc+2].Op == OpLoad {
				break
			}
			ld := fn.Code[pc+1]
			op := LLocalLoad
			if ld.Op == OpLoadP {
				op = LLocalLoadP
			}
			emit(LInsn{
				Op: op, A: reg(d), Imm: in.Imm, Size: ld.Size,
				Line: in.Line, Line2: ld.Line,
			})
			lf.NSuper++
			blockSteps += 2
			pc++
			continue
		}

		blockSteps++
		switch in.Op {
		case OpConst:
			emit(LInsn{Op: LConst, A: reg(d), Imm: in.Imm, Line: in.Line})
		case OpStr:
			emit(LInsn{Op: LStr, A: reg(d), Imm: in.Imm, Line: in.Line})
		case OpLocal:
			emit(LInsn{Op: LLocal, A: reg(d), Imm: in.Imm, Line: in.Line})
		case OpGlobal:
			emit(LInsn{Op: LGlobal, A: reg(d), Imm: in.Imm, Line: in.Line})
		case OpLoad:
			emit(LInsn{Op: LLoad, A: reg(d - 1), Size: in.Size, Line: in.Line})
		case OpLoadP:
			emit(LInsn{Op: LLoadP, A: reg(d - 1), Line: in.Line})
		case OpStore:
			emit(LInsn{Op: LStore, A: reg(d - 1), B: reg(d - 2), Size: in.Size, Line: in.Line})
		case OpStoreP:
			emit(LInsn{Op: LStoreP, A: reg(d - 1), B: reg(d - 2), Line: in.Line})
		case OpGep:
			op := LGep
			if in.Sub != SubKeep {
				op = LGepIdx // ifpadd+ifpidx fused in one dispatch
				lf.NSuper++
			}
			emit(LInsn{Op: op, A: reg(d - 1), Imm: in.Imm, Sub: in.Sub, Line: in.Line})
		case OpGepDyn:
			emit(LInsn{Op: LGepDyn, A: reg(d - 2), C: reg(d - 1), Imm: in.Imm, Sub: in.Sub, Line: in.Line})
		case OpBnd:
			emit(LInsn{Op: LBnd, A: reg(d - 1), Imm: in.Imm, Line: in.Line})
		case OpAddr:
			emit(LInsn{Op: LAddr, A: reg(d - 1), Line: in.Line})
		case OpDup:
			emit(LInsn{Op: LMov, A: reg(d), B: reg(d - 1), Line: in.Line})
		case OpPop:
			// The value is simply dead in register form; the reference
			// walker's pop has no machine-visible effect either. Still a
			// charged step (the reference walker counts it).
		case OpJmp:
			fixups = append(fixups, fixup{emit(LInsn{Op: LJmp, Line: in.Line}), int(in.Imm)})
		case OpJz:
			fixups = append(fixups, fixup{emit(LInsn{Op: LJz, A: reg(d - 1), Line: in.Line}), int(in.Imm)})
		case OpJnz:
			fixups = append(fixups, fixup{emit(LInsn{Op: LJnz, A: reg(d - 1), Line: in.Line}), int(in.Imm)})
		case OpCall:
			emit(LInsn{Op: LCall, A: reg(d - int(in.Sub)), Imm: in.Imm, Sub: in.Sub, Line: in.Line})
		case OpRet:
			li := LInsn{Op: LRet, Sub: in.Sub, Line: in.Line}
			if in.Sub == 1 {
				li.A = reg(d - 1)
			}
			emit(li)
		case OpMalloc:
			emit(LInsn{Op: LMalloc, A: reg(d - 1), Imm: in.Imm, Line: in.Line})
		case OpFree:
			emit(LInsn{Op: LFree, A: reg(d - 1), Line: in.Line})
		case OpMemset:
			emit(LInsn{Op: LMemset, A: reg(d - 3), B: reg(d - 2), C: reg(d - 1), Line: in.Line})
		case OpMemcpy:
			emit(LInsn{Op: LMemcpy, A: reg(d - 3), B: reg(d - 2), C: reg(d - 1), Line: in.Line})
		case OpPrint:
			emit(LInsn{Op: LPrint, A: reg(d - 1), Line: in.Line})
		case OpNeg:
			emit(LInsn{Op: LNeg, A: reg(d - 1), Line: in.Line})
		case OpNot:
			emit(LInsn{Op: LNot, A: reg(d - 1), Line: in.Line})
		case OpBnot:
			emit(LInsn{Op: LBnot, A: reg(d - 1), Line: in.Line})
		default:
			// Binary ALU: operands at d-2 (left) and d-1 (right).
			emit(LInsn{Op: LAlu, A: reg(d - 2), C: reg(d - 1), Sub: uint16(in.Op), Line: in.Line})
		}
	}
	closeBlock()

	// Pass 3: retarget jumps from stack-IR pcs to lowered pcs. Every
	// target is a leader, so it maps to its LBlock — entering a block by
	// jump re-charges its steps, which is exactly the amortization
	// contract.
	for _, f := range fixups {
		lf.Code[f.lpc].Imm = int64(pcMap[f.target])
	}
	return lf, maxBlock, nil
}
