package minic

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"infat/internal/machine"
	"infat/internal/rt"
)

// run executes src in the given mode and returns output/exit/err.
func run(t *testing.T, src string, mode rt.Mode) ([]int64, int64, error) {
	t.Helper()
	return Execute(src, mode)
}

// mustRun fails the test on any error.
func mustRun(t *testing.T, src string, mode rt.Mode) ([]int64, int64) {
	t.Helper()
	out, exit, err := run(t, src, mode)
	if err != nil {
		t.Fatalf("%v mode: %v", mode, err)
	}
	return out, exit
}

// allModes runs src in baseline + both instrumented modes and checks the
// outputs agree.
func allModes(t *testing.T, src string) ([]int64, int64) {
	t.Helper()
	out, exit := mustRun(t, src, rt.Baseline)
	for _, m := range []rt.Mode{rt.Subheap, rt.Wrapped} {
		o2, e2 := mustRun(t, src, m)
		if e2 != exit || len(o2) != len(out) {
			t.Fatalf("%v mode diverged: exit %d vs %d, out %v vs %v", m, e2, exit, o2, out)
		}
		for i := range out {
			if o2[i] != out[i] {
				t.Fatalf("%v mode output[%d] = %d, want %d", m, i, o2[i], out[i])
			}
		}
	}
	return out, exit
}

func TestArithmetic(t *testing.T) {
	_, exit := allModes(t, `
int main() {
	int a = 6;
	int b = 7;
	return a * b + 10 / 2 - 3 % 2 + (1 << 4) + (256 >> 4) - (5 & 3) - (5 | 2) - (5 ^ 1);
}`)
	// 42 + 5 - 1 + 16 + 16 - 1 - 7 - 4 = 66
	if exit != 66 {
		t.Errorf("exit = %d, want 66", exit)
	}
}

func TestControlFlow(t *testing.T) {
	out, _ := allModes(t, `
int main() {
	int i;
	int sum = 0;
	for (i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { continue; }
		if (i == 9) { break; }
		sum = sum + i;
	}
	while (sum > 16) { sum = sum - 1; }
	print(sum);
	return 0;
}`)
	if len(out) != 1 || out[0] != 16 { // 1+3+5+7 = 16; while(>16) never fires
		t.Errorf("out = %v, want [16]", out)
	}
}

func TestShortCircuit(t *testing.T) {
	out, _ := allModes(t, `
int g = 0;
int bump() { g = g + 1; return 1; }
int main() {
	int a = 0 && bump();
	int b = 1 || bump();
	int c = 1 && bump();
	print(g);
	print(a + b * 10 + c * 100);
	return 0;
}`)
	if out[0] != 1 {
		t.Errorf("g = %d, want 1 (short circuit failed)", out[0])
	}
	if out[1] != 110 {
		t.Errorf("abc = %d, want 110", out[1])
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	_, exit := allModes(t, `
long fib(long n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return (int)fib(15); }`)
	if exit != 610 {
		t.Errorf("fib(15) = %d, want 610", exit)
	}
}

func TestArraysAndPointers(t *testing.T) {
	out, _ := allModes(t, `
int main() {
	long arr[10];
	long i;
	long *p = arr;
	for (i = 0; i < 10; i = i + 1) { arr[i] = i * i; }
	print(arr[7]);
	print(*(p + 3));
	print(p[9] - p[8]);
	long *q = &arr[5];
	print(*q);
	print(q - p);
	return 0;
}`)
	want := []int64{49, 9, 17, 25, 5}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, out[i], w)
		}
	}
}

func TestStructsAndMembers(t *testing.T) {
	out, _ := allModes(t, `
struct Point { long x; long y; };
struct Rect { struct Point a; struct Point b; };
int main() {
	struct Rect r;
	r.a.x = 1; r.a.y = 2; r.b.x = 10; r.b.y = 20;
	struct Point *p = &r.b;
	print(p->x + p->y);
	print(r.a.x + r.a.y);
	return 0;
}`)
	if out[0] != 30 || out[1] != 3 {
		t.Errorf("out = %v", out)
	}
}

func TestHeapMallocFree(t *testing.T) {
	out, _ := allModes(t, `
struct Node { long val; struct Node *next; };
int main() {
	struct Node *head = (struct Node*)malloc(sizeof(struct Node));
	struct Node *second = (struct Node*)malloc(sizeof(struct Node));
	head->val = 1;
	head->next = second;
	second->val = 2;
	second->next = (struct Node*)0;
	long sum = 0;
	struct Node *cur = head;
	while (cur != (struct Node*)0) {
		sum = sum + cur->val;
		cur = cur->next;
	}
	print(sum);
	free(second);
	free(head);
	return 0;
}`)
	if out[0] != 3 {
		t.Errorf("sum = %d, want 3", out[0])
	}
}

func TestStringsAndMem(t *testing.T) {
	out, _ := allModes(t, `
int main() {
	char buf[16];
	char *msg = "hi!";
	memset(buf, 0, 16);
	memcpy(buf, msg, 4);
	print(buf[0]);
	print(buf[1]);
	print(buf[2]);
	print(buf[3]);
	return 0;
}`)
	want := []int64{'h', 'i', '!', 0}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, out[i], w)
		}
	}
}

func TestGlobalsInitAndPointers(t *testing.T) {
	out, _ := allModes(t, `
long counter = 5;
long table[8];
long *gp;
int main() {
	table[3] = 30;
	gp = &table[3];
	counter = counter + *gp;
	print(counter);
	return 0;
}`)
	if out[0] != 35 {
		t.Errorf("counter = %d, want 35", out[0])
	}
}

func TestCharSemantics(t *testing.T) {
	_, exit := allModes(t, `
int main() {
	char c = 'A';
	char buf[4];
	buf[0] = c + 1;
	return buf[0];
}`)
	if exit != 'B' {
		t.Errorf("exit = %d, want %d", exit, 'B')
	}
}

// --- detection tests: the instrumented modes must trap, baseline not ---

// detects asserts that src runs clean in baseline and traps spatially in
// both instrumented modes.
func detects(t *testing.T, src string) {
	t.Helper()
	if _, _, err := run(t, src, rt.Baseline); err != nil {
		t.Fatalf("baseline trapped: %v", err)
	}
	for _, m := range []rt.Mode{rt.Subheap, rt.Wrapped} {
		_, _, err := run(t, src, m)
		if err == nil {
			t.Fatalf("%v mode missed the spatial error", m)
		}
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("%v mode error = %v, want RunError", m, err)
		}
		if !machine.IsTrap(re.Err, machine.TrapPoison) && !machine.IsTrap(re.Err, machine.TrapBounds) {
			t.Fatalf("%v mode error = %v, want a spatial trap", m, err)
		}
	}
}

func TestDetectHeapOverflowWrite(t *testing.T) {
	detects(t, `
int main() {
	long *buf = (long*)malloc(8 * sizeof(long));
	long i;
	for (i = 0; i <= 8; i = i + 1) { buf[i] = i; }
	return 0;
}`)
}

func TestDetectStackOverflowWrite(t *testing.T) {
	detects(t, `
int main() {
	char buf[12];
	int i;
	for (i = 0; i < 13; i = i + 1) { buf[i] = 'A'; }
	return 0;
}`)
}

func TestDetectHeapOverRead(t *testing.T) {
	detects(t, `
int main() {
	int *data = (int*)malloc(10 * sizeof(int));
	int sum = 0;
	int i;
	for (i = 0; i < 11; i = i + 1) { sum = sum + data[i]; }
	return sum;
}`)
}

func TestDetectUnderwrite(t *testing.T) {
	detects(t, `
int main() {
	long buf[4];
	long *p = &buf[0];
	*(p - 1) = 7;
	return 0;
}`)
}

func TestDetectIntraObjectOverflow(t *testing.T) {
	// Listing 1 of the paper: overflow from `vulnerable` into `sensitive`
	// stays inside the object — only subobject-granularity protection
	// catches it.
	detects(t, `
struct S {
	char vulnerable[12];
	char sensitive[12];
};
int main() {
	struct S s;
	char *p = s.vulnerable;
	int i;
	s.sensitive[0] = 'S';
	for (i = 0; i <= 12; i = i + 1) { p[i] = 'A'; }
	return 0;
}`)
}

func TestDetectIntraObjectThroughHeapPointer(t *testing.T) {
	// The same intra-object overflow via a heap object and a pointer that
	// round-trips through memory (forcing a promote + layout-table
	// narrowing on reload).
	detects(t, `
struct S {
	char vulnerable[12];
	char sensitive[12];
};
char *gv;
int main() {
	struct S *s = (struct S*)malloc(sizeof(struct S));
	gv = s->vulnerable;
	char *p = gv;
	int i;
	for (i = 0; i <= 12; i = i + 1) { p[i] = 'A'; }
	return 0;
}`)
}

func TestDetectUseAfterMetadataInvalidation(t *testing.T) {
	// Free clears the object metadata, so a promote through a stale
	// pointer poisons it (§3: temporal errors that invalidate metadata).
	src := `
long *gv;
int main() {
	long *p = (long*)malloc(4 * sizeof(long));
	gv = p;
	free(p);
	long *q = gv;
	*q = 1;
	return 0;
}`
	for _, m := range []rt.Mode{rt.Subheap, rt.Wrapped} {
		_, _, err := run(t, src, m)
		if err == nil {
			t.Fatalf("%v mode missed the stale-metadata dereference", m)
		}
	}
}

func TestNoFalsePositives(t *testing.T) {
	// Exact-boundary loops, one-past-the-end pointers never dereferenced,
	// legal member access: must run clean in every mode.
	allModes(t, `
struct S { char a[12]; char b[12]; };
int main() {
	struct S s;
	char *p = s.a;
	char *end = p + 12;
	int n = 0;
	while (p != end) { *p = 'x'; p = p + 1; n = n + 1; }
	s.b[11] = 'y';
	long *heap = (long*)malloc(16 * sizeof(long));
	long i;
	for (i = 0; i < 16; i = i + 1) { heap[i] = i; }
	free(heap);
	print(n);
	return 0;
}`)
}

func TestPointerEqualityIgnoresTags(t *testing.T) {
	// Pointers to distinct subobjects of one object carry different tag
	// fields; comparisons must still work on addresses.
	out, _ := allModes(t, `
struct S { long a; long b; };
int main() {
	struct S s;
	long *pa = &s.a;
	long *pb = &s.b;
	print(pa == pb);
	print(pa != pb);
	print(pb - pa);
	return 0;
}`)
	if out[0] != 0 || out[1] != 1 || out[2] != 1 {
		t.Errorf("out = %v", out)
	}
}

func TestInstrumentationCountersLookSane(t *testing.T) {
	src := `
struct Node { long v; struct Node *next; };
struct Node *head;
int main() {
	int i;
	for (i = 0; i < 50; i = i + 1) {
		struct Node *n = (struct Node*)malloc(sizeof(struct Node));
		n->v = i;
		n->next = head;
		head = n;
	}
	long sum = 0;
	struct Node *cur = head;
	while (cur != (struct Node*)0) { sum = sum + cur->v; cur = cur->next; }
	print(sum);
	return 0;
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := rt.New(rt.Subheap)
	vm, err := NewVM(comp, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.Out[0] != 49*50/2 {
		t.Errorf("sum = %d", vm.Out[0])
	}
	c := r.M.C
	if c.Promote == 0 || c.PromoteValid == 0 {
		t.Error("no promotes executed")
	}
	if c.IfpIdx == 0 {
		t.Error("no subobject-index updates")
	}
	if c.Checks == 0 {
		t.Error("no bounds checks")
	}
	if r.Stats.HeapObjects != 50 {
		t.Errorf("heap objects = %d, want 50", r.Stats.HeapObjects)
	}
	if r.Stats.HeapWithLT != 50 {
		t.Errorf("heap objects with layout table = %d, want 50", r.Stats.HeapWithLT)
	}
}

func TestBaselineEmitsNoIFPInstructions(t *testing.T) {
	src := `int main() { int a[4]; a[0] = 1; return a[0]; }`
	prog, _ := Parse(src)
	comp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := rt.New(rt.Baseline)
	vm, err := NewVM(comp, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if n := r.M.C.IfpTotal(); n != 0 {
		t.Errorf("baseline executed %d IFP instructions", n)
	}
}

// --- parser / compiler error paths ---

func TestParseErrors(t *testing.T) {
	cases := []string{
		`int main() { return 0 }`,                                    // missing ;
		`int main() { int 3x; }`,                                     // bad identifier
		`struct S { int a; }; struct S;`,                             // stray declaration
		`int main() { foo(); return 0; }`,                            // unknown function
		`int main() { return x; }`,                                   // unknown identifier
		`int f(int a, int a) { return 0; } int main() { return 0; }`, // dup param
		`int main() { break; }`,                                      // break outside loop
		`int main() { struct T *p; return 0; }`,                      // unknown struct
		`int x; int x; int main() { return 0; }`,                     // dup global
		`int main() { int y; int y; return 0; }`,                     // dup local
		`int main() { return 1; } int main() { }`,                    // dup function
		`int notmain() { return 0; }`,                                // no main
		`int main() { char buf[0]; return 0; }`,                      // zero-size array
		`int main() { "unterminated`,                                 // lex error
		`int main() { int a; a = 5 +; return a; }`,                   // expr error
		`int main() { malloc(1, 2); return 0; }`,                     // arity
		`int main() { int s; s.x = 1; return 0; }`,                   // member of scalar
		`int main() { int i; return i[0]; }`,                         // index scalar
		`int main() { int *p; return p->x; }`,                        // -> non-struct
		`int main() { 5 = 6; return 0; }`,                            // bad lvalue
		`int main() { void *p; return *p == 0; }`,                    // void deref...
	}
	for i, src := range cases {
		if _, _, err := Execute(src, rt.Baseline); err == nil {
			t.Errorf("case %d accepted:\n%s", i, src)
		}
	}
}

func TestCommentsAndLiterals(t *testing.T) {
	_, exit := allModes(t, `
// line comment
/* block
   comment */
int main() {
	int hex = 0x10;   // 16
	char nl = '\n';   // 10
	char z = '\0';
	return hex + nl + z; // 26
}`)
	if exit != 26 {
		t.Errorf("exit = %d, want 26", exit)
	}
}

func TestCompoundAssignAndIncrement(t *testing.T) {
	_, exit := allModes(t, `
int main() {
	int a = 10;
	a += 5;
	a -= 2;
	a *= 3;
	a /= 2;
	++a;
	a++;
	return a;
}`)
	if exit != 21 { // ((10+5-2)*3)/2 = 19 +1 +1
		t.Errorf("exit = %d, want 21", exit)
	}
}

func TestMultiDimensionalArrays(t *testing.T) {
	out, _ := allModes(t, `
int main() {
	long grid[4][6];
	long i;
	long j;
	for (i = 0; i < 4; i = i + 1) {
		for (j = 0; j < 6; j = j + 1) { grid[i][j] = i * 10 + j; }
	}
	print(grid[3][5]);
	print(grid[0][0]);
	return 0;
}`)
	if out[0] != 35 || out[1] != 0 {
		t.Errorf("out = %v", out)
	}
}

func TestInfiniteLoopGuard(t *testing.T) {
	prog, _ := Parse(`int main() { while (1) { } return 0; }`)
	comp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := rt.New(rt.Baseline)
	vm, err := NewVM(comp, r)
	if err != nil {
		t.Fatal(err)
	}
	vm.maxSteps = 10000
	if _, err := vm.Run(); err == nil {
		t.Error("runaway loop not stopped")
	}
}

func TestDoWhile(t *testing.T) {
	_, exit := allModes(t, `
int main() {
	int n = 0;
	do { n = n + 1; } while (n < 5);
	int m = 100;
	do { m = m + 1; } while (0);
	return n * 100 + (m - 100);
}`)
	if exit != 501 {
		t.Errorf("exit = %d, want 501", exit)
	}
}

func TestDoWhileBreakContinue(t *testing.T) {
	_, exit := allModes(t, `
int main() {
	int n = 0;
	int i = 0;
	do {
		i = i + 1;
		if (i % 2 == 0) { continue; }
		if (i > 9) { break; }
		n = n + i;
	} while (i < 100);
	return n;
}`)
	if exit != 1+3+5+7+9 {
		t.Errorf("exit = %d, want 25", exit)
	}
}

func TestSwitch(t *testing.T) {
	out, _ := allModes(t, `
int classify(int c) {
	switch (c) {
	case 'a':
	case 'e':
		return 1;
	case 'z':
		return 2;
	default:
		return 0;
	}
}
int main() {
	print(classify('a'));
	print(classify('e'));
	print(classify('z'));
	print(classify('q'));
	return 0;
}`)
	want := []int64{1, 1, 2, 0}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, out[i], w)
		}
	}
}

func TestSwitchFallthroughAndBreak(t *testing.T) {
	_, exit := allModes(t, `
int main() {
	int acc = 0;
	int i;
	for (i = 0; i < 4; i = i + 1) {
		switch (i) {
		case 0:
			acc = acc + 1;
			// fall through
		case 1:
			acc = acc + 10;
			break;
		case 2:
			acc = acc + 100;
			break;
		}
	}
	return acc; // i=0: +11, i=1: +10, i=2: +100, i=3: nothing
}`)
	if exit != 121 {
		t.Errorf("exit = %d, want 121", exit)
	}
}

func TestSwitchNoDefaultNoMatch(t *testing.T) {
	_, exit := allModes(t, `
int main() {
	int x = 9;
	switch (x) {
	case 1: return 1;
	case 2: return 2;
	}
	return 42;
}`)
	if exit != 42 {
		t.Errorf("exit = %d, want 42", exit)
	}
}

func TestSwitchStateMachineWithPointers(t *testing.T) {
	// A switch-driven byte scanner over an instrumented buffer: exercises
	// the new control flow on the checked data path.
	out, _ := allModes(t, `
int main() {
	char buf[16];
	memset(buf, 0, 16);
	buf[0] = 'a'; buf[1] = '1'; buf[2] = ' '; buf[3] = 'b';
	int letters = 0;
	int digits = 0;
	int other = 0;
	int i = 0;
	do {
		char c = buf[i];
		switch (c) {
		case 'a':
		case 'b':
			letters = letters + 1;
			break;
		case '1':
			digits = digits + 1;
			break;
		default:
			other = other + 1;
		}
		i = i + 1;
	} while (i < 4);
	print(letters); print(digits); print(other);
	return 0;
}`)
	if out[0] != 2 || out[1] != 1 || out[2] != 1 {
		t.Errorf("out = %v", out)
	}
}

func TestSwitchErrors(t *testing.T) {
	bad := []string{
		`int main() { switch (1) { int x; case 1: break; } return 0; }`, // stmt before case
		`int main() { switch (1) { case 1: break; default: break; default: break; } return 0; }`,
		`int main() { switch (1) { case y: break; } return 0; }`, // non-literal label
	}
	for i, src := range bad {
		if _, _, err := Execute(src, rt.Baseline); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDisassemble(t *testing.T) {
	prog, err := Parse(`
struct S { char a[8]; long b; };
void *w(long n) { return malloc(n); }
int main() {
	struct S *s = (struct S*)w(sizeof(struct S));
	struct S loc;
	loc.b = 2;
	s->b = 1;
	char *p = s->a;
	free(s);
	return (int)loc.b;
}`)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	asm := Disassemble(comp)
	for _, want := range []string{
		"allocation wrappers: w",
		"ifpadd", "ifpidx", "ifpbnd", "promote",
		"REGISTERED", "main:", "malloc",
	} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q\n%s", want, asm)
		}
	}
}

func TestTestdataPrograms(t *testing.T) {
	cases := []struct {
		file      string
		wantTrap  bool
		wantPrint []int64
	}{
		{"overflow.c", true, nil},
		{"list.c", false, []int64{99 * 100 / 2}},
		{"switchsum.c", false, []int64{11*'x' + 11*'y' + 10*'z'}},
	}
	for _, tc := range cases {
		src, err := os.ReadFile(filepath.Join("..", "..", "testdata", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []rt.Mode{rt.Subheap, rt.Wrapped, rt.Hybrid} {
			out, _, err := Execute(string(src), mode)
			if tc.wantTrap {
				if err == nil {
					t.Errorf("%s/%v: no trap", tc.file, mode)
				}
				continue
			}
			if err != nil {
				t.Errorf("%s/%v: %v", tc.file, mode, err)
				continue
			}
			for i, w := range tc.wantPrint {
				if out[i] != w {
					t.Errorf("%s/%v: out[%d] = %d, want %d", tc.file, mode, i, out[i], w)
				}
			}
		}
		// Baseline never traps, even on the vulnerable program.
		if _, _, err := Execute(string(src), rt.Baseline); err != nil {
			t.Errorf("%s baseline: %v", tc.file, err)
		}
	}
}
