package minic

import (
	"fmt"

	"infat/internal/layout"
)

// Parse builds a Program from MiniC source.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: &Program{Structs: map[string]*layout.Type{}}}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

type parser struct {
	toks []Token
	pos  int
	prog *Program
}

func (p *parser) cur() Token { return p.toks[p.pos] }

// peek returns the token n positions ahead, clamped to the trailing EOF
// sentinel so lookahead near the end of input stays in bounds.
func (p *parser) peek(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

// next consumes and returns the current token. The EOF sentinel is never
// consumed: error paths that read past a truncated program keep seeing
// EOF instead of running the cursor off the token slice.
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &SyntaxError{p.cur().Line, fmt.Sprintf(format, args...)}
}

func (p *parser) accept(text string) bool {
	if p.cur().Kind != TokEOF && p.cur().Text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %s", text, p.cur())
	}
	return nil
}

// atType reports whether the cursor is at the start of a type name.
func (p *parser) atType() bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "char", "int", "long", "void", "struct":
		return true
	}
	return false
}

// parseType parses a base type plus pointer stars ("struct S**").
func (p *parser) parseType() (*layout.Type, error) {
	var base *layout.Type
	switch {
	case p.accept("char"):
		base = layout.Char
	case p.accept("int"):
		base = layout.Int
	case p.accept("long"):
		base = layout.Long
	case p.accept("void"):
		base = layout.Void
	case p.accept("struct"):
		name := p.next()
		if name.Kind != TokIdent {
			return nil, p.errf("expected struct name")
		}
		st, ok := p.prog.Structs[name.Text]
		if !ok {
			return nil, &SyntaxError{name.Line, fmt.Sprintf("unknown struct %q", name.Text)}
		}
		base = st
	default:
		return nil, p.errf("expected type, found %s", p.cur())
	}
	for p.accept("*") {
		base = layout.PointerTo(base)
	}
	return base, nil
}

// parseDeclarator parses "name" or "name[N]" / "name[N][M]" suffixes,
// wrapping base into array types.
func (p *parser) parseDeclarator(base *layout.Type) (string, *layout.Type, error) {
	name := p.next()
	if name.Kind != TokIdent {
		return "", nil, &SyntaxError{name.Line, fmt.Sprintf("expected identifier, found %s", name)}
	}
	var dims []uint64
	for p.accept("[") {
		n := p.next()
		if n.Kind != TokNumber || n.Num <= 0 {
			return "", nil, &SyntaxError{n.Line, "array dimension must be a positive integer literal"}
		}
		dims = append(dims, uint64(n.Num))
		if err := p.expect("]"); err != nil {
			return "", nil, err
		}
	}
	t := base
	for i := len(dims) - 1; i >= 0; i-- {
		t = layout.ArrayOf(t, dims[i])
	}
	return name.Text, t, nil
}

func (p *parser) parseProgram() error {
	for p.cur().Kind != TokEOF {
		if p.cur().Text == "struct" && p.peek(2).Text == "{" {
			if err := p.parseStructDef(); err != nil {
				return err
			}
			continue
		}
		if !p.atType() {
			return p.errf("expected declaration, found %s", p.cur())
		}
		base, err := p.parseType()
		if err != nil {
			return err
		}
		line := p.cur().Line
		name, typ, err := p.parseDeclarator(base)
		if err != nil {
			return err
		}
		if p.cur().Text == "(" {
			fn, err := p.parseFuncRest(name, typ, line)
			if err != nil {
				return err
			}
			p.prog.Funcs = append(p.prog.Funcs, fn)
			continue
		}
		// Global variable.
		decl := &VarDecl{Name: name, Type: typ, Line: line}
		if p.accept("=") {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			decl.Init = e
		}
		if err := p.expect(";"); err != nil {
			return err
		}
		p.prog.Globals = append(p.prog.Globals, decl)
	}
	return nil
}

func (p *parser) parseStructDef() error {
	if err := p.expect("struct"); err != nil {
		return err
	}
	name := p.next()
	if name.Kind != TokIdent {
		return &SyntaxError{name.Line, "expected struct name"}
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	if _, dup := p.prog.Structs[name.Text]; dup {
		return &SyntaxError{name.Line, fmt.Sprintf("struct %q redefined", name.Text)}
	}
	// Register a placeholder first so members may hold pointers to the
	// struct being defined (self-referential list/tree nodes).
	placeholder := &layout.Type{Kind: layout.KindStruct, Name: "struct " + name.Text}
	p.prog.Structs[name.Text] = placeholder

	var fields []layout.Field
	for !p.accept("}") {
		base, err := p.parseType()
		if err != nil {
			return err
		}
		for {
			fname, ftype, err := p.parseDeclarator(base)
			if err != nil {
				return err
			}
			if ftype == placeholder || (ftype.Kind == layout.KindArray && ftype.Elem == placeholder) {
				return &SyntaxError{name.Line,
					fmt.Sprintf("field %q has incomplete type struct %s", fname, name.Text)}
			}
			fields = append(fields, layout.F(fname, ftype))
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(";"); err != nil {
			return err
		}
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	// Complete the placeholder in place: pointers captured during field
	// parsing keep referring to the same (now complete) type object.
	*placeholder = *layout.StructOf(name.Text, fields...)
	return nil
}

func (p *parser) parseFuncRest(name string, ret *layout.Type, line int) (*FuncDecl, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name, Ret: ret, Line: line}
	if !p.accept(")") {
		if p.accept("void") && p.cur().Text == ")" {
			// (void) parameter list.
		} else {
			for {
				base, err := p.parseType()
				if err != nil {
					return nil, err
				}
				pline := p.cur().Line
				pname, ptype, err := p.parseDeclarator(base)
				if err != nil {
					return nil, err
				}
				fn.Params = append(fn.Params, &VarDecl{Name: pname, Type: ptype, Line: pline})
				if !p.accept(",") {
					break
				}
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Text == "{":
		return p.parseBlock()
	case t.Text == "if":
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then}
		if p.accept("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case t.Text == "while":
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case t.Text == "do":
		p.pos++
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Body: body, Cond: cond}, p.expect(";")
	case t.Text == "switch":
		return p.parseSwitch()
	case t.Text == "for":
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		st := &ForStmt{}
		if !p.accept(";") {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			st.Init = init
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Cond = cond
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if p.cur().Text != ")" {
			post, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Post = post
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil
	case t.Text == "return":
		p.pos++
		st := &ReturnStmt{Line: t.Line}
		if p.cur().Text != ";" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.E = e
		}
		return st, p.expect(";")
	case t.Text == "break":
		p.pos++
		return &BreakStmt{Line: t.Line}, p.expect(";")
	case t.Text == "continue":
		p.pos++
		return &ContinueStmt{Line: t.Line}, p.expect(";")
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		return s, p.expect(";")
	}
}

// parseSwitch parses a C switch with integer-literal case labels.
func (p *parser) parseSwitch() (Stmt, error) {
	line := p.cur().Line
	if err := p.expect("switch"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	scrut, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	st := &SwitchStmt{Scrut: scrut, Line: line}
	var curBody *[]Stmt
	for !p.accept("}") {
		switch {
		case p.accept("case"):
			n := p.next()
			neg := false
			if n.Text == "-" {
				neg = true
				n = p.next()
			}
			if n.Kind != TokNumber && n.Kind != TokChar {
				return nil, &SyntaxError{n.Line, "case label must be an integer or char literal"}
			}
			v := n.Num
			if neg {
				v = -v
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			st.Cases = append(st.Cases, SwitchCase{Value: v})
			curBody = &st.Cases[len(st.Cases)-1].Body
		case p.accept("default"):
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			if st.Default != nil {
				return nil, &SyntaxError{p.cur().Line, "duplicate default label"}
			}
			st.Default = []Stmt{}
			curBody = &st.Default
		case p.cur().Kind == TokEOF:
			return nil, p.errf("unexpected end of file in switch")
		default:
			if curBody == nil {
				return nil, p.errf("statement before first case label")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			*curBody = append(*curBody, s)
		}
	}
	return st, nil
}

// parseSimpleStmt parses a declaration or expression (no trailing ';').
func (p *parser) parseSimpleStmt() (Stmt, error) {
	if p.atType() {
		base, err := p.parseType()
		if err != nil {
			return nil, err
		}
		line := p.cur().Line
		name, typ, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		d := &VarDecl{Name: name, Type: typ, Line: line}
		if p.accept("=") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		return &DeclStmt{Decl: d}, nil
	}
	line := p.cur().Line
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{E: e, Line: line}, nil
}

// --- expressions, precedence climbing ---

func (p *parser) parseExpr() (Expr, error) { return p.parseAssign() }

func (p *parser) parseAssign() (Expr, error) {
	lhs, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	t := p.cur()
	switch t.Text {
	case "=":
		p.pos++
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{L: lhs, R: rhs, Line: t.Line}, nil
	case "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
		p.pos++
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		op := t.Text[:len(t.Text)-1]
		return &AssignExpr{L: lhs, R: &BinaryExpr{Op: op, L: lhs, R: rhs, Line: t.Line}, Line: t.Line}, nil
	}
	return lhs, nil
}

var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6, "<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.Text]
		if t.Kind != TokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: t.Text, L: lhs, R: rhs, Line: t.Line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Text {
	case "&", "*", "-", "!", "~":
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Text, E: e, Line: t.Line}, nil
	case "++", "--":
		// Prefix increment desugars to a compound assignment.
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := "+"
		if t.Text == "--" {
			op = "-"
		}
		return &AssignExpr{L: e, R: &BinaryExpr{Op: op, L: e, R: &NumExpr{V: 1, Line: t.Line}, Line: t.Line}, Line: t.Line}, nil
	case "sizeof":
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &SizeofExpr{Type: typ, Line: t.Line}, nil
	case "(":
		// Cast or parenthesized expression.
		if p.isCastAhead() {
			p.pos++
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			e, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return p.parsePostfixOn(&CastExpr{Type: typ, E: e, Line: t.Line})
		}
	}
	return p.parsePostfix()
}

// isCastAhead checks for "(" type ")" without consuming.
func (p *parser) isCastAhead() bool {
	if p.cur().Text != "(" {
		return false
	}
	t := p.peek(1)
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "char", "int", "long", "void", "struct":
		return true
	}
	return false
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return p.parsePostfixOn(e)
}

func (p *parser) parsePostfixOn(e Expr) (Expr, error) {
	for {
		t := p.cur()
		switch t.Text {
		case "[":
			p.pos++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &IndexExpr{Base: e, Idx: idx, Line: t.Line}
		case ".":
			p.pos++
			name := p.next()
			if name.Kind != TokIdent {
				return nil, &SyntaxError{name.Line, "expected member name"}
			}
			e = &MemberExpr{Base: e, Name: name.Text, Line: t.Line}
		case "->":
			p.pos++
			name := p.next()
			if name.Kind != TokIdent {
				return nil, &SyntaxError{name.Line, "expected member name"}
			}
			e = &MemberExpr{Base: e, Name: name.Text, Arrow: true, Line: t.Line}
		case "++", "--":
			// Postfix increment as statement-position sugar: evaluates to
			// the *updated* value in this subset (documented deviation).
			p.pos++
			op := "+"
			if t.Text == "--" {
				op = "-"
			}
			e = &AssignExpr{L: e, R: &BinaryExpr{Op: op, L: e, R: &NumExpr{V: 1, Line: t.Line}, Line: t.Line}, Line: t.Line}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber, t.Kind == TokChar:
		p.pos++
		return &NumExpr{V: t.Num, Line: t.Line}, nil
	case t.Kind == TokString:
		p.pos++
		return &StrExpr{S: t.Text, Line: t.Line}, nil
	case t.Kind == TokIdent:
		p.pos++
		if p.cur().Text == "(" {
			p.pos++
			call := &CallExpr{Name: t.Text, Line: t.Line}
			if !p.accept(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &IdentExpr{Name: t.Text, Line: t.Line}, nil
	case t.Text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	}
	return nil, p.errf("unexpected token %s", t)
}
