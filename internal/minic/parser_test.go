package minic

import (
	"errors"
	"testing"

	"infat/internal/rt"
)

// TestTruncatedProgramsError: inputs cut off mid-construct must produce
// syntax errors, never run the parser's cursor off the token slice
// (found by FuzzRunC on the bare keyword "struct").
func TestTruncatedProgramsError(t *testing.T) {
	for _, src := range []string{
		"struct", "struct S", "struct S {", "int", "int main", "int main(",
		"int main() {", "int main() { return", "(", "int main() { int b[",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted a truncated program", src)
		}
	}
}

// TestVoidValueRejected: a void call used where a value is required must
// be a compile error, not a VM operand-stack underflow (found by
// FuzzRunC on `p[0] % free(p)`).
func TestVoidValueRejected(t *testing.T) {
	progs := []string{
		`int main() { char *p = malloc(8); return p[0] % free(p); }`,
		`int main() { char *p = malloc(8); if (free(p)) { return 1; } return 0; }`,
		`int main() { char *p = malloc(8); int x; x = free(p); return x; }`,
		`int main() { char *p = malloc(8); print(free(p)); return 0; }`,
	}
	for _, src := range progs {
		if _, _, err := Execute(src, rt.Subheap); err == nil {
			t.Errorf("void-in-expression accepted: %s", src)
		} else if _, ok := errAs[*CompileError](err); !ok {
			t.Errorf("err = %v (%T), want compile-time CompileError for: %s", err, err, src)
		}
	}
}

// errAs is a tiny errors.As wrapper keeping the table test readable.
func errAs[T error](err error) (T, bool) {
	var target T
	ok := errors.As(err, &target)
	return target, ok
}
