package minic

import (
	"fmt"

	"infat/internal/layout"
	"infat/internal/machine"
	"infat/internal/rt"
)

// VM executes compiled MiniC on a Runtime. Every IR step maps to the
// instructions the instrumented binary would execute: loads and stores go
// through the machine's checked paths, OpLoadP promotes, OpGep is ifpadd
// (+ ifpidx when Sub is set), OpBnd is ifpbnd, and local/global objects
// are registered through the runtime exactly as Listing 2 shows.
//
// The interpreter is allocation-free in steady state: all guest function
// calls share one operand-stack arena and one local-slot arena on the VM
// (each growing once to the program's high-water mark and then reused),
// and per-call frame state lives in a pooled frame stack instead of
// per-call slices and closures. A VM treats its *Compiled as read-only —
// the property that lets the Interner share one compilation across many
// VMs, including concurrent ones.
type VM struct {
	R   *rt.Runtime
	C   *Compiled
	Out []int64 // values print()ed by the program

	globals  []rt.Obj
	strings  []rt.Obj
	heapObjs []rt.Obj // live heap allocations, for free(ptr)

	// stack is the shared operand stack: each frame's operands live above
	// its opBase, so pushes and pops are bounds-checked against the frame
	// floor instead of allocating a fresh []value per call.
	stack  []value
	opBase int
	// slots is the shared local-slot arena; each frame owns
	// slots[slotBase:] and truncates back on return.
	slots []rt.Obj
	// frames is the pooled call stack of unwind records.
	frames []frame

	steps    uint64
	maxSteps uint64

	// refOnly forces the reference stack walker even when a lowered form
	// exists — the differential tests' side of the equivalence contract.
	refOnly bool
	// superHits counts dynamically retired lowered instructions per
	// opcode (only the fused superinstructions are recorded).
	superHits [lopCount]uint64
}

// value is one eval-stack entry: a 64-bit value with its bounds register.
type value struct {
	v uint64
	b machine.BoundsReg
}

// frame is one activation's unwind record. The interpreter keeps the hot
// per-call state (slot base, code, pc) in locals; the frame exists so
// unwindTop can restore every VM invariant on any exit path, including a
// panic recovered at the RunC boundary.
type frame struct {
	slotBase int    // vm.slots high-water mark at entry
	opBase   int    // caller's operand-stack floor, restored on exit
	mark     uint64 // runtime stack mark at entry
	// framed is set once every local is allocated and registered; only
	// then does unwinding deregister metadata (matching the paper's
	// IFP_Deregister placement: a frame that failed mid-setup releases
	// its stack memory but never ran the registration epilogue).
	framed bool
}

// RunError wraps a trap or fault with a source line.
type RunError struct {
	Line int
	Err  error
}

func (e *RunError) Error() string { return fmt.Sprintf("minic:%d: %v", e.Line, e.Err) }

func (e *RunError) Unwrap() error { return e.Err }

// NewVM prepares a VM: it registers globals (the §4.2.2 "getptr"
// instrumentation, done eagerly) and interns string literals as
// read-only char-array objects. The Compiled program is shared, never
// mutated: NewVM only reads it, so one compilation (e.g. from an
// Interner) can back any number of VMs, concurrently.
func NewVM(c *Compiled, r *rt.Runtime) (*VM, error) {
	vm := &VM{R: r, C: c, maxSteps: 50_000_000}
	if n := len(c.Globals); n > 0 {
		vm.globals = make([]rt.Obj, 0, n)
	}
	if n := len(c.Strings); n > 0 {
		vm.strings = make([]rt.Obj, 0, n)
	}
	for _, g := range c.Globals {
		var obj rt.Obj
		var err error
		if g.Type.Kind == layout.KindScalar || g.Type.Kind == layout.KindPointer {
			obj, err = r.RegisterGlobalBytes(g.Type.Size())
		} else {
			obj, err = r.RegisterGlobal(g.Type)
		}
		if err != nil {
			return nil, err
		}
		vm.globals = append(vm.globals, obj)
	}
	for _, s := range c.Strings {
		obj, err := r.RegisterGlobal(layout.ArrayOf(layout.Char, uint64(len(s)+1)))
		if err != nil {
			return nil, err
		}
		for i := 0; i < len(s); i++ {
			if err := r.M.Mem.StoreN(obj.Base()+uint64(i), uint64(s[i]), 1); err != nil {
				return nil, err
			}
		}
		vm.strings = append(vm.strings, obj)
	}
	// Constant global initializers (data segment).
	for i, g := range c.Globals {
		if g.Init == nil {
			continue
		}
		n, ok := g.Init.(*NumExpr)
		if !ok {
			return nil, &CompileError{g.Line, "global initializers must be integer literals"}
		}
		size := g.Type.Size()
		if size > 8 {
			return nil, &CompileError{g.Line, "cannot initialize aggregate globals"}
		}
		if err := r.M.Mem.StoreN(vm.globals[i].Base(), uint64(n.V), int(size)); err != nil {
			return nil, err
		}
	}
	return vm, nil
}

// Run executes main and returns its exit value. It rides the register
// dispatch loop over the lowered bytecode whenever the program lowers
// (every compiler-produced program does), falling back to the reference
// stack walker otherwise — the two are observably identical: same output,
// exit code, machine counters, trap lines, and teardown order, pinned by
// the dispatch-equivalence suite and FuzzDispatchEquivalence.
func (vm *VM) Run() (int64, error) {
	if !vm.refOnly {
		if l := vm.C.Lowered(); l != nil {
			mainIdx := vm.C.FuncIdx["main"]
			ret, err := vm.callReg(l, mainIdx, len(vm.stack), 0)
			if err != nil {
				return 0, err
			}
			return int64(ret.v), nil
		}
	}
	return vm.RunReference()
}

// RunReference executes main on the reference stack walker, bypassing the
// lowered bytecode. It is the differential baseline for the register
// dispatch loop; production paths use Run.
func (vm *VM) RunReference() (int64, error) {
	mainIdx := vm.C.FuncIdx["main"]
	ret, err := vm.call(mainIdx, len(vm.stack), 0)
	if err != nil {
		return 0, err
	}
	return int64(ret.v), nil
}

// SuperHits reports how many fused superinstructions the VM retired,
// keyed by mnemonic. Zero-count entries are omitted.
func (vm *VM) SuperHits() map[string]uint64 {
	m := map[string]uint64{}
	for op, n := range vm.superHits {
		if n > 0 {
			m[lopNames[LOp(op)]] = n
		}
	}
	return m
}

// push appends one operand to the shared stack.
func (vm *VM) push(v value) { vm.stack = append(vm.stack, v) }

// pop removes the top operand. Popping below the current frame's floor is
// a compiler bug (compileValue's void chokepoint rejects the programs
// that could cause it); the panic is recovered into a typed internal trap
// at the RunC boundary, exactly like the out-of-range panic the per-call
// stacks used to produce.
func (vm *VM) pop() value {
	n := len(vm.stack) - 1
	if n < vm.opBase {
		panic("minic: operand stack underflow")
	}
	v := vm.stack[n]
	vm.stack = vm.stack[:n]
	return v
}

// top returns the top operand without removing it.
func (vm *VM) top() value {
	n := len(vm.stack) - 1
	if n < vm.opBase {
		panic("minic: operand stack underflow")
	}
	return vm.stack[n]
}

// unwindTop tears down the newest frame on any exit from vm.call — return,
// error, or panic. Teardown order matches Listing 2's epilogue: metadata
// cleanup first (IFP_Deregister for every registered local, skipped when
// frame setup never completed), then the stack pop. Errors during unwind
// after a trap are moot; marks are VM-managed.
func (vm *VM) unwindTop() {
	n := len(vm.frames) - 1
	fr := vm.frames[n]
	vm.frames = vm.frames[:n]
	if fr.framed {
		for _, o := range vm.slots[fr.slotBase:] {
			if o.Kind == rt.KindLocal || o.Kind == rt.KindGlobalRow {
				_ = vm.R.DeallocLocal(o)
			}
		}
	}
	vm.slots = vm.slots[:fr.slotBase]
	vm.opBase = fr.opBase
	_ = vm.R.StackRelease(fr.mark)
}

// call executes function fnIdx. Its nargs arguments are the operands at
// vm.stack[argBase:argBase+nargs] — still owned by the caller, who
// truncates them after the call returns.
func (vm *VM) call(fnIdx, argBase, nargs int) (value, error) {
	fn := vm.C.Funcs[fnIdx]
	slotBase := len(vm.slots)
	vm.frames = append(vm.frames, frame{
		slotBase: slotBase,
		opBase:   vm.opBase,
		mark:     vm.R.StackMark(),
	})
	myFrame := len(vm.frames) - 1
	defer vm.unwindTop()
	vm.opBase = argBase + nargs

	// Allocate and register locals (IFP_Register for aggregates and
	// address-taken scalars).
	for _, li := range fn.Locals {
		var obj rt.Obj
		var err error
		if li.Registered {
			if li.Type.Kind == layout.KindScalar || li.Type.Kind == layout.KindPointer {
				obj, err = vm.R.AllocLocalBytes(li.Type.Size())
			} else {
				obj, err = vm.R.AllocLocal(li.Type)
			}
		} else {
			var addr uint64
			addr, err = vm.R.StackRaw(li.Type.Size())
			obj = rt.Obj{P: addr, Size: li.Type.Size(), Kind: rt.KindLegacy}
		}
		if err != nil {
			return value{}, err
		}
		vm.slots = append(vm.slots, obj)
	}
	// Frame setup complete: from here on, unwinding runs the metadata
	// cleanup epilogue even on early return.
	vm.frames[myFrame].framed = true

	// Bind arguments (bounds passed in registers, §4.1.2: no promote for
	// pointer arguments).
	for i := 0; i < nargs; i++ {
		a := vm.stack[argBase+i]
		li := fn.Locals[i]
		slot := vm.slots[slotBase+i]
		if li.Type.Kind == layout.KindPointer {
			if err := vm.R.StorePtr(slot.P, slot.B, a.v, a.b); err != nil {
				return value{}, err
			}
		} else {
			if err := vm.R.Store(slot.P, a.v, int(li.Type.Size()), slot.B); err != nil {
				return value{}, err
			}
		}
	}

	pc := 0
	for {
		if pc < 0 || pc >= len(fn.Code) {
			return value{}, fmt.Errorf("minic: pc %d out of range in %s", pc, fn.Name)
		}
		vm.steps++
		in := fn.Code[pc]
		line := int(in.Line)
		pc++
		// The fuel budget is checked first so that, when a limit is set,
		// exhaustion always surfaces as the typed machine trap rather
		// than the untyped step backstop below.
		if err := vm.R.M.CheckFuel(); err != nil {
			return value{}, &RunError{line, err}
		}
		if vm.steps > vm.maxSteps {
			return value{}, fmt.Errorf("minic: step budget exhausted (infinite loop?)")
		}
		switch in.Op {
		case OpConst:
			vm.R.M.Tick(1)
			vm.push(value{v: uint64(in.Imm)})
		case OpStr:
			vm.R.M.Tick(1)
			s := vm.strings[in.Imm]
			vm.push(value{v: s.P, b: s.B})
		case OpLocal:
			vm.R.M.Tick(1)
			s := vm.slots[slotBase+int(in.Imm)]
			vm.push(value{v: s.P, b: s.B})
		case OpGlobal:
			vm.R.M.Tick(1)
			g := vm.globals[in.Imm]
			vm.push(value{v: g.P, b: g.B})
		case OpLoad:
			a := vm.pop()
			v, err := vm.R.Load(a.v, int(in.Size), a.b)
			if err != nil {
				return value{}, &RunError{line, err}
			}
			vm.push(value{v: signExtend(v, int(in.Size))})
		case OpLoadP:
			a := vm.pop()
			p, b, err := vm.R.LoadPtr(a.v, a.b)
			if err != nil {
				return value{}, &RunError{line, err}
			}
			vm.push(value{v: p, b: b})
		case OpStore:
			a := vm.pop()
			v := vm.pop()
			if err := vm.R.Store(a.v, v.v, int(in.Size), a.b); err != nil {
				return value{}, &RunError{line, err}
			}
		case OpStoreP:
			a := vm.pop()
			v := vm.pop()
			if err := vm.R.StorePtr(a.v, a.b, v.v, v.b); err != nil {
				return value{}, &RunError{line, err}
			}
		case OpGep:
			a := vm.pop()
			p := vm.R.GEP(a.v, in.Imm, a.b)
			if in.Sub != SubKeep {
				p = vm.R.SetSub(p, in.Sub)
			}
			vm.push(value{v: p, b: a.b})
		case OpGepDyn:
			idx := vm.pop()
			a := vm.pop()
			vm.R.M.Tick(1) // index scaling multiply
			p := vm.R.GEP(a.v, int64(idx.v)*in.Imm, a.b)
			if in.Sub != SubKeep {
				p = vm.R.SetSub(p, in.Sub)
			}
			vm.push(value{v: p, b: a.b})
		case OpBnd:
			a := vm.pop()
			vm.push(value{v: a.v, b: vm.R.Bnd(a.v, uint64(in.Imm))})
		case OpAddr:
			a := vm.pop()
			vm.R.M.Tick(1)
			vm.push(value{v: a.v & (1<<48 - 1)})
		case OpJmp:
			vm.R.M.Tick(1)
			pc = int(in.Imm)
		case OpJz:
			vm.R.M.Tick(1)
			if vm.pop().v == 0 {
				pc = int(in.Imm)
			}
		case OpJnz:
			vm.R.M.Tick(1)
			if vm.pop().v != 0 {
				pc = int(in.Imm)
			}
		case OpDup:
			vm.R.M.Tick(1)
			vm.push(vm.top())
		case OpPop:
			vm.pop()
		case OpCall:
			nargs := int(in.Sub)
			base := len(vm.stack) - nargs
			if base < vm.opBase {
				panic("minic: operand stack underflow")
			}
			vm.R.M.Tick(2) // call/ret overhead
			ret, err := vm.call(int(in.Imm), base, nargs)
			if err != nil {
				return value{}, err
			}
			vm.stack = vm.stack[:base]
			if vm.C.Funcs[in.Imm].Ret != layout.Void {
				vm.push(ret)
			}
		case OpRet:
			if in.Sub == 1 {
				return vm.pop(), nil
			}
			return value{}, nil
		case OpMalloc:
			size := vm.pop()
			var obj rt.Obj
			var err error
			if in.Imm >= 0 {
				t := vm.C.MallocTypes[in.Imm]
				n := size.v / t.Size()
				if n == 0 {
					n = 1
				}
				obj, err = vm.R.Malloc(t, n)
			} else {
				obj, err = vm.R.MallocBytes(size.v)
			}
			if err != nil {
				return value{}, &RunError{line, err}
			}
			vm.heapObjs = append(vm.heapObjs, obj)
			vm.push(value{v: obj.P, b: obj.B})
		case OpFree:
			p := vm.pop()
			if err := vm.freeByPtr(p.v); err != nil {
				return value{}, &RunError{line, err}
			}
		case OpMemset:
			n := vm.pop()
			v := vm.pop()
			p := vm.pop()
			if err := vm.R.Memset(p.v, byte(v.v), n.v, p.b); err != nil {
				return value{}, &RunError{line, err}
			}
		case OpMemcpy:
			n := vm.pop()
			src := vm.pop()
			dst := vm.pop()
			if err := vm.R.Memcpy(dst.v, dst.b, src.v, src.b, n.v); err != nil {
				return value{}, &RunError{line, err}
			}
		case OpPrint:
			v := vm.pop()
			vm.R.M.Tick(1)
			vm.Out = append(vm.Out, int64(v.v))
		case OpNeg:
			a := vm.pop()
			vm.R.M.Tick(1)
			vm.push(value{v: uint64(-int64(a.v))})
		case OpNot:
			a := vm.pop()
			vm.R.M.Tick(1)
			if a.v == 0 {
				vm.push(value{v: 1})
			} else {
				vm.push(value{v: 0})
			}
		case OpBnot:
			a := vm.pop()
			vm.R.M.Tick(1)
			vm.push(value{v: ^a.v})
		default:
			r := vm.pop()
			l := vm.pop()
			vm.R.M.Tick(1)
			res, err := alu(in.Op, l.v, r.v)
			if err != nil {
				return value{}, &RunError{line, err}
			}
			vm.push(value{v: res})
		}
	}
}

// ensureStack grows the shared operand arena to hold n values without
// ever shrinking it (deeper frames may have raised the high-water mark;
// the caller's register window must stay sliceable). New cells are left
// as-is: the depth analysis proves every register is written before read,
// so no zeroing is needed.
func (vm *VM) ensureStack(n int) {
	if n <= len(vm.stack) {
		return
	}
	if n <= cap(vm.stack) {
		vm.stack = vm.stack[:n]
		return
	}
	ns := make([]value, n, 2*n)
	copy(ns, vm.stack)
	vm.stack = ns
}

// callReg is the register dispatch loop: vm.call's counterpart over the
// lowered bytecode. Frame setup, argument binding, and teardown are
// line-for-line the same as the reference walker (same frame record, same
// deferred unwindTop, so pooled-VM teardown order is identical); only the
// instruction loop differs. Operands live in a per-frame register window
// overlaid on the shared operand arena (register k of this frame is
// vm.stack[rb+k]), call arguments are passed by window overlap exactly
// where the stack discipline puts them, and the fuel budget is charged
// once per extended basic block at its LBlock header instead of per step.
//
// Every arm retires the same rt/machine calls in the same order as its
// stack-IR components, which is what keeps machine.Counters byte-identical
// between the two loops.
func (vm *VM) callReg(l *Lowered, fnIdx, argBase, nargs int) (value, error) {
	fn := vm.C.Funcs[fnIdx]
	lf := l.Funcs[fnIdx]
	slotBase := len(vm.slots)
	vm.frames = append(vm.frames, frame{
		slotBase: slotBase,
		opBase:   vm.opBase,
		mark:     vm.R.StackMark(),
	})
	myFrame := len(vm.frames) - 1
	defer vm.unwindTop()
	rb := argBase + nargs
	vm.opBase = rb

	// Allocate and register locals (IFP_Register for aggregates and
	// address-taken scalars) — identical to the reference walker.
	for _, li := range fn.Locals {
		var obj rt.Obj
		var err error
		if li.Registered {
			if li.Type.Kind == layout.KindScalar || li.Type.Kind == layout.KindPointer {
				obj, err = vm.R.AllocLocalBytes(li.Type.Size())
			} else {
				obj, err = vm.R.AllocLocal(li.Type)
			}
		} else {
			var addr uint64
			addr, err = vm.R.StackRaw(li.Type.Size())
			obj = rt.Obj{P: addr, Size: li.Type.Size(), Kind: rt.KindLegacy}
		}
		if err != nil {
			return value{}, err
		}
		vm.slots = append(vm.slots, obj)
	}
	vm.frames[myFrame].framed = true

	// Bind arguments (bounds passed in registers, §4.1.2: no promote for
	// pointer arguments). The caller left them in its registers at
	// argBase — the same cells the stack discipline would use.
	for i := 0; i < nargs; i++ {
		a := vm.stack[argBase+i]
		li := fn.Locals[i]
		slot := vm.slots[slotBase+i]
		if li.Type.Kind == layout.KindPointer {
			if err := vm.R.StorePtr(slot.P, slot.B, a.v, a.b); err != nil {
				return value{}, err
			}
		} else {
			if err := vm.R.Store(slot.P, a.v, int(li.Type.Size()), slot.B); err != nil {
				return value{}, err
			}
		}
	}

	vm.ensureStack(rb + lf.MaxRegs)
	regs := vm.stack[rb : rb+lf.MaxRegs]
	code := lf.Code
	pc := 0
	for {
		if pc < 0 || pc >= len(code) {
			return value{}, fmt.Errorf("minic: pc %d out of range in %s", pc, fn.Name)
		}
		in := &code[pc]
		pc++
		switch in.Op {
		case LBlock:
			// Amortized accounting: the whole block's steps are charged
			// and the fuel budget checked once, here. A taken branch can
			// leave part of the charge unexecuted, so a fuel-limited run
			// overshoots its budget by at most the current block — the
			// one sanctioned divergence from the per-step reference.
			vm.steps += uint64(in.Imm)
			if err := vm.R.M.CheckFuel(); err != nil {
				return value{}, &RunError{int(in.Line), err}
			}
			if vm.steps > vm.maxSteps {
				return value{}, fmt.Errorf("minic: step budget exhausted (infinite loop?)")
			}
		case LConst:
			vm.R.M.Tick(1)
			regs[in.A] = value{v: uint64(in.Imm)}
		case LStr:
			vm.R.M.Tick(1)
			s := vm.strings[in.Imm]
			regs[in.A] = value{v: s.P, b: s.B}
		case LLocal:
			vm.R.M.Tick(1)
			s := vm.slots[slotBase+int(in.Imm)]
			regs[in.A] = value{v: s.P, b: s.B}
		case LGlobal:
			vm.R.M.Tick(1)
			g := vm.globals[in.Imm]
			regs[in.A] = value{v: g.P, b: g.B}
		case LLoad:
			a := regs[in.A]
			v, err := vm.R.Load(a.v, int(in.Size), a.b)
			if err != nil {
				return value{}, &RunError{int(in.Line), err}
			}
			regs[in.A] = value{v: signExtend(v, int(in.Size))}
		case LLoadP:
			a := regs[in.A]
			p, b, err := vm.R.LoadPtr(a.v, a.b)
			if err != nil {
				return value{}, &RunError{int(in.Line), err}
			}
			regs[in.A] = value{v: p, b: b}
		case LStore:
			a := regs[in.A]
			v := regs[in.B]
			if err := vm.R.Store(a.v, v.v, int(in.Size), a.b); err != nil {
				return value{}, &RunError{int(in.Line), err}
			}
		case LStoreP:
			a := regs[in.A]
			v := regs[in.B]
			if err := vm.R.StorePtr(a.v, a.b, v.v, v.b); err != nil {
				return value{}, &RunError{int(in.Line), err}
			}
		case LGep:
			a := regs[in.A]
			regs[in.A] = value{v: vm.R.GEP(a.v, in.Imm, a.b), b: a.b}
		case LGepDyn:
			a := regs[in.A]
			idx := regs[in.C]
			vm.R.M.Tick(1) // index scaling multiply
			p := vm.R.GEP(a.v, int64(idx.v)*in.Imm, a.b)
			if in.Sub != SubKeep {
				p = vm.R.SetSub(p, in.Sub)
			}
			regs[in.A] = value{v: p, b: a.b}
		case LBnd:
			a := regs[in.A]
			regs[in.A] = value{v: a.v, b: vm.R.Bnd(a.v, uint64(in.Imm))}
		case LAddr:
			a := regs[in.A]
			vm.R.M.Tick(1)
			regs[in.A] = value{v: a.v & (1<<48 - 1)}
		case LMov:
			vm.R.M.Tick(1)
			regs[in.A] = regs[in.B]
		case LAlu:
			lv := regs[in.A]
			rv := regs[in.C]
			vm.R.M.Tick(1)
			res, err := alu(Op(in.Sub), lv.v, rv.v)
			if err != nil {
				return value{}, &RunError{int(in.Line), err}
			}
			regs[in.A] = value{v: res}
		case LNeg:
			a := regs[in.A]
			vm.R.M.Tick(1)
			regs[in.A] = value{v: uint64(-int64(a.v))}
		case LNot:
			a := regs[in.A]
			vm.R.M.Tick(1)
			if a.v == 0 {
				regs[in.A] = value{v: 1}
			} else {
				regs[in.A] = value{v: 0}
			}
		case LBnot:
			a := regs[in.A]
			vm.R.M.Tick(1)
			regs[in.A] = value{v: ^a.v}
		case LJmp:
			vm.R.M.Tick(1)
			pc = int(in.Imm)
		case LJz:
			vm.R.M.Tick(1)
			if regs[in.A].v == 0 {
				pc = int(in.Imm)
			}
		case LJnz:
			vm.R.M.Tick(1)
			if regs[in.A].v != 0 {
				pc = int(in.Imm)
			}
		case LCall:
			vm.R.M.Tick(2) // call/ret overhead
			ret, err := vm.callReg(l, int(in.Imm), rb+int(in.A), int(in.Sub))
			if err != nil {
				return value{}, err
			}
			// The callee may have grown (and reallocated) the shared
			// arena; re-derive this frame's window before touching it.
			regs = vm.stack[rb : rb+lf.MaxRegs]
			if vm.C.Funcs[in.Imm].Ret != layout.Void {
				regs[in.A] = ret
			}
		case LRet:
			if in.Sub == 1 {
				return regs[in.A], nil
			}
			return value{}, nil
		case LMalloc:
			size := regs[in.A]
			var obj rt.Obj
			var err error
			if in.Imm >= 0 {
				t := vm.C.MallocTypes[in.Imm]
				n := size.v / t.Size()
				if n == 0 {
					n = 1
				}
				obj, err = vm.R.Malloc(t, n)
			} else {
				obj, err = vm.R.MallocBytes(size.v)
			}
			if err != nil {
				return value{}, &RunError{int(in.Line), err}
			}
			vm.heapObjs = append(vm.heapObjs, obj)
			regs[in.A] = value{v: obj.P, b: obj.B}
		case LFree:
			p := regs[in.A]
			if err := vm.freeByPtr(p.v); err != nil {
				return value{}, &RunError{int(in.Line), err}
			}
		case LMemset:
			p := regs[in.A]
			v := regs[in.B]
			n := regs[in.C]
			if err := vm.R.Memset(p.v, byte(v.v), n.v, p.b); err != nil {
				return value{}, &RunError{int(in.Line), err}
			}
		case LMemcpy:
			dst := regs[in.A]
			src := regs[in.B]
			n := regs[in.C]
			if err := vm.R.Memcpy(dst.v, dst.b, src.v, src.b, n.v); err != nil {
				return value{}, &RunError{int(in.Line), err}
			}
		case LPrint:
			v := regs[in.A]
			vm.R.M.Tick(1)
			vm.Out = append(vm.Out, int64(v.v))

		// Fused superinstructions. Component machine ops retire in
		// source order; only the intermediate stack traffic is gone.
		case LGepIdx:
			// ifpadd + ifpidx (member derivation with tag update).
			vm.superHits[LGepIdx]++
			a := regs[in.A]
			p := vm.R.GEP(a.v, in.Imm, a.b)
			regs[in.A] = value{v: vm.R.SetSub(p, in.Sub), b: a.b}
		case LGepIdxBnd:
			// GEP (+ifpidx) + ifpbnd: subobject derivation, checked at
			// member granularity immediately.
			vm.superHits[LGepIdxBnd]++
			a := regs[in.A]
			p := vm.R.GEP(a.v, in.Imm, a.b)
			if in.Sub != SubKeep {
				p = vm.R.SetSub(p, in.Sub)
			}
			regs[in.A] = value{v: p, b: vm.R.Bnd(p, uint64(in.Imm2))}
		case LLoadPChk:
			// promote + ifpchk + load: the pointer-dereference chain.
			vm.superHits[LLoadPChk]++
			a := regs[in.A]
			p, b, err := vm.R.LoadPtr(a.v, a.b)
			if err != nil {
				return value{}, &RunError{int(in.Line), err}
			}
			v, err := vm.R.Load(p, int(in.Size), b)
			if err != nil {
				return value{}, &RunError{int(in.Line2), err}
			}
			regs[in.A] = value{v: signExtend(v, int(in.Size))}
		case LConstGepStore:
			// const + scaled GEP + store: the constant index and the
			// derived address stay virtual. Tick(2) = the const
			// materialization plus the index-scaling multiply of the
			// unfused sequence.
			vm.superHits[LConstGepStore]++
			base := regs[in.B]
			val := regs[in.A]
			vm.R.M.Tick(2)
			p := vm.R.GEP(base.v, in.Imm*in.Imm2, base.b)
			if in.Sub != SubKeep {
				p = vm.R.SetSub(p, in.Sub)
			}
			if err := vm.R.Store(p, val.v, int(in.Size), base.b); err != nil {
				return value{}, &RunError{int(in.Line2), err}
			}
		case LLocalLoad:
			// slot address + load.
			vm.superHits[LLocalLoad]++
			s := vm.slots[slotBase+int(in.Imm)]
			vm.R.M.Tick(1)
			v, err := vm.R.Load(s.P, int(in.Size), s.B)
			if err != nil {
				return value{}, &RunError{int(in.Line2), err}
			}
			regs[in.A] = value{v: signExtend(v, int(in.Size))}
		case LLocalLoadP:
			// slot address + pointer load (promote).
			vm.superHits[LLocalLoadP]++
			s := vm.slots[slotBase+int(in.Imm)]
			vm.R.M.Tick(1)
			p, b, err := vm.R.LoadPtr(s.P, s.B)
			if err != nil {
				return value{}, &RunError{int(in.Line2), err}
			}
			regs[in.A] = value{v: p, b: b}
		default:
			return value{}, fmt.Errorf("minic: unknown lowered op %d in %s", in.Op, fn.Name)
		}
	}
}

// heapObjs tracks live heap allocations so free(ptr) can find its Obj.
// (The runtime needs the Obj record; real code derives it from the tag.)
func (vm *VM) freeByPtr(p uint64) error {
	// Temporal mode checks the guest's own pointer before the record scan:
	// a stale-generation pointer is a double free even when its base has
	// since been reallocated (the scan below would otherwise match — and
	// wrongly release — the new object at the same address). No-op in
	// every other mode.
	if err := vm.R.TemporalFreeCheck(p); err != nil {
		return err
	}
	addr := p & (1<<48 - 1)
	for i, o := range vm.heapObjs {
		if o.Base() == addr {
			vm.heapObjs = append(vm.heapObjs[:i], vm.heapObjs[i+1:]...)
			return vm.R.Free(o)
		}
	}
	return fmt.Errorf("free of unallocated pointer %#x", p)
}

func alu(op Op, l, r uint64) (uint64, error) {
	boolV := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return uint64(int64(l) / int64(r)), nil
	case OpMod:
		if r == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return uint64(int64(l) % int64(r)), nil
	case OpShl:
		return l << (r & 63), nil
	case OpShr:
		return uint64(int64(l) >> (r & 63)), nil
	case OpAnd:
		return l & r, nil
	case OpOr:
		return l | r, nil
	case OpXor:
		return l ^ r, nil
	case OpLt:
		return boolV(int64(l) < int64(r)), nil
	case OpLe:
		return boolV(int64(l) <= int64(r)), nil
	case OpGt:
		return boolV(int64(l) > int64(r)), nil
	case OpGe:
		return boolV(int64(l) >= int64(r)), nil
	case OpEq:
		return boolV(l == r), nil
	case OpNe:
		return boolV(l != r), nil
	}
	return 0, fmt.Errorf("unknown ALU op %d", op)
}

func signExtend(v uint64, size int) uint64 {
	switch size {
	case 1:
		return uint64(int64(int8(v)))
	case 2:
		return uint64(int64(int16(v)))
	case 4:
		return uint64(int64(int32(v)))
	}
	return v
}

// Execute compiles and runs src under the given mode, returning the
// printed output and main's exit code.
func Execute(src string, mode rt.Mode) (out []int64, exit int64, err error) {
	out, exit, _, err = ExecuteBudget(src, mode, 0)
	return out, exit, err
}

// ExecuteBudget is Execute with an execution budget and counter capture:
// when fuel is non-zero the machine traps with machine.TrapFuel once the
// run has consumed that many cycles (surfaced as a *RunError like any
// other trap), so a guest infinite loop terminates deterministically.
// Fuel 0 means unlimited — only the VM's untyped step backstop applies.
// The machine counters are returned even for trapped runs: they describe
// the work done up to the trap.
//
// Compilation goes through the package's default Interner: each distinct
// source compiles exactly once per process, and every subsequent run of
// the same bytes reuses the immutable *Compiled. Interning is invisible
// in the results — compilation is a pure function of the source, and the
// VM never mutates the shared program — which the fresh-vs-interned
// equivalence tests pin down.
func ExecuteBudget(src string, mode rt.Mode, fuel uint64) (out []int64, exit int64, c machine.Counters, err error) {
	return executeBudget(src, mode, fuel, false)
}

// ExecuteReference is Execute on the reference stack walker, bypassing
// the lowered bytecode and its register dispatch loop. It exists for the
// differential tests (dispatch equivalence, FuzzDispatchEquivalence);
// production paths use Execute/ExecuteBudget.
func ExecuteReference(src string, mode rt.Mode) (out []int64, exit int64, err error) {
	out, exit, _, err = ExecuteBudgetReference(src, mode, 0)
	return out, exit, err
}

// ExecuteBudgetReference is ExecuteBudget on the reference stack walker.
func ExecuteBudgetReference(src string, mode rt.Mode, fuel uint64) (out []int64, exit int64, c machine.Counters, err error) {
	return executeBudget(src, mode, fuel, true)
}

func executeBudget(src string, mode rt.Mode, fuel uint64, refOnly bool) (out []int64, exit int64, c machine.Counters, err error) {
	comp, err := DefaultInterner.Get(src)
	if err != nil {
		return nil, 0, c, err
	}
	r := rt.Acquire(mode)
	defer rt.Release(r)
	vm, err := NewVM(comp, r)
	if err != nil {
		return nil, 0, r.M.C, err
	}
	vm.refOnly = refOnly
	if fuel > 0 {
		r.M.FuelLimit = fuel
		// Every interpreted step costs at least half a cycle (the only
		// tick-free op is OpPop, and it cannot appear back-to-back with
		// itself), so a step backstop of 2*fuel guarantees the typed fuel
		// trap fires first. The register dispatch loop charges steps per
		// block and can over-charge skipped instructions by up to one
		// block per taken branch (each costing at least one cycle), so
		// its backstop additionally scales by the largest block.
		scale := uint64(2)
		if !refOnly {
			if l := comp.Lowered(); l != nil {
				scale = 2 * (l.MaxBlock + 1)
			}
		}
		vm.maxSteps = ^uint64(0)
		if fuel < (1<<62)/scale {
			vm.maxSteps = scale*fuel + 1_000_000
		}
	}
	exit, err = vm.Run()
	return vm.Out, exit, r.M.C, err
}
