package minic

import (
	"testing"

	"infat/internal/rt"
)

// wrapperProgram allocates through a thin wrapper function — the pattern
// that defeats the paper's type deduction in CoreMark and bzip2 (§5.2.1).
// The intra-object overflow is only reachable through promote-time
// narrowing (the pointer round-trips through a global), so detection
// requires the allocation to carry a layout table.
const wrapperProgram = `
struct T { char a[16]; char b[16]; };
char *gv;
void *my_alloc(long n) { return malloc(n); }
int main() {
	struct T *p = (struct T*)my_alloc(sizeof(struct T));
	gv = p->a;
	char *q = gv;
	long i;
	for (i = 0; i <= 16; i = i + 1) { q[i] = 'A'; }
	free(p);
	return 0;
}`

func TestAllocWrapperDetected(t *testing.T) {
	prog, err := Parse(wrapperProgram)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Wrappers) != 1 || comp.Wrappers[0] != "my_alloc" {
		t.Fatalf("wrappers = %v, want [my_alloc]", comp.Wrappers)
	}
	// The wrapper call compiled to a typed malloc.
	if len(comp.MallocTypes) != 1 || comp.MallocTypes[0].Name != "struct T" {
		t.Fatalf("malloc types = %v", comp.MallocTypes)
	}
}

func TestAllocWrapperEnablesNarrowing(t *testing.T) {
	// With wrapper support the reloaded subobject pointer narrows via the
	// layout table and the intra-object overflow is caught.
	for _, mode := range []rt.Mode{rt.Subheap, rt.Wrapped} {
		_, _, err := Execute(wrapperProgram, mode)
		if err == nil {
			t.Errorf("%v: intra-object overflow through wrapper missed", mode)
		}
	}
	// Baseline still runs it clean.
	if _, _, err := Execute(wrapperProgram, rt.Baseline); err != nil {
		t.Errorf("baseline: %v", err)
	}
}

func TestAllocWrapperCountersShowLayoutTable(t *testing.T) {
	prog, _ := Parse(wrapperProgram)
	comp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := rt.New(rt.Subheap)
	vm, err := NewVM(comp, r)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = vm.Run() // traps — that's fine, we want the stats
	if r.Stats.HeapWithLT != 1 {
		t.Errorf("heap objects with layout table = %d, want 1 (wrapper-deduced)", r.Stats.HeapWithLT)
	}
	if r.M.C.NarrowSuccess == 0 {
		t.Error("no successful narrowing — wrapper type deduction inactive")
	}
}

func TestNonWrappersNotMisdetected(t *testing.T) {
	src := `
void *alloc_and_count(long n) { gcount = gcount + 1; return malloc(n); }
void *fixed_alloc(long n) { return malloc(64); }
void *two_param(long n, long m) { return malloc(n); }
long gcount = 0;
int main() {
	char *a = (char*)alloc_and_count(8);
	char *b = (char*)fixed_alloc(8);
	char *c = (char*)two_param(8, 9);
	a[0] = 1; b[0] = 2; c[0] = 3;
	return 0;
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Wrappers) != 0 {
		t.Errorf("misdetected wrappers: %v", comp.Wrappers)
	}
	// And it still runs correctly in every mode.
	for _, mode := range []rt.Mode{rt.Baseline, rt.Subheap, rt.Wrapped} {
		if _, _, err := Execute(src, mode); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

func TestWrapperWithCastBody(t *testing.T) {
	src := `
struct P { long x; long y; };
long *lalloc(long n) { return (long*)malloc(n); }
int main() {
	struct P *p = (struct P*)lalloc(sizeof(struct P));
	p->x = 1;
	p->y = 2;
	long r = p->x + p->y;
	free(p);
	return (int)r;
}`
	for _, mode := range []rt.Mode{rt.Baseline, rt.Subheap, rt.Wrapped} {
		_, exit, err := Execute(src, mode)
		if err != nil || exit != 3 {
			t.Errorf("%v: exit=%d err=%v", mode, exit, err)
		}
	}
}
