package netchaos

// The fault campaign: boot an in-process serving stack — ifp-serve
// backends, one fault-injecting proxy in front of each, the shard front
// tier over the proxies — and run real streamed campaigns through it
// for every (fault × seed × campaign-type) grid point, verifying after
// each that the self-healing tier delivered exactly the answer a
// serial, fault-free run produces:
//
//   - zero lost cells: every plan cell eventually assembled;
//   - zero duplicated cells accepted: the assembly's dedup contract
//     holds (duplicates the shard's own dedup missed are rejected);
//   - zero corrupt cells accepted: the final report is byte-identical
//     to the serial ground truth, so no mangled payload slipped through;
//   - sabotage actually happened: each faulted run must have injected
//     at least one fault, or the run proved nothing.
//
// The campaign is the -netchaos gate in CI: it fails loudly (typed
// per-run diagnostics) and passes only when the whole grid holds.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"time"

	"infat/internal/exp"
	"infat/internal/server"
	"infat/internal/shard"
	"infat/internal/workloads"
)

// Campaign defaults, tuned so the full grid finishes in CI minutes
// under -race while still forcing every recovery path to fire.
var defaultCampaignWorkloads = []string{"treeadd", "health"}

// CampaignConfig parameterizes RunCampaign. The zero value runs the
// full default grid.
type CampaignConfig struct {
	// Workloads are the batch-campaign workload names
	// (nil = treeadd, health).
	Workloads []string
	// Scale is the batch perf scale (0 = 1).
	Scale int
	// ChaosScale is the chaos-campaign scale (0 = 1).
	ChaosScale int
	// SkipChaos drops the chaos legs from the grid (batch legs only).
	SkipChaos bool
	// Seeds are the per-grid-point determinism seeds (nil = {1, 2}).
	Seeds []uint64
	// FaultSet are the faults to exercise (nil = all of Faults).
	FaultSet []Fault
	// Backends is the fleet size behind the shard (0 = 2).
	Backends int
	// MaxFaults is each proxy's sabotage budget (0 = DefaultMaxFaults).
	MaxFaults int
	// Latency is the injected delay / slowloris pause (0 = 30ms).
	Latency time.Duration
	// StallCap bounds blackhole stalls (0 = 2s).
	StallCap time.Duration
	// HedgeAfter is the shard's straggler budget (0 = 1s: longer than an
	// honest cell, shorter than a blackhole or slowloris stall, so hedges
	// fire for sabotage, not for ordinary work).
	HedgeAfter time.Duration
	// RelayTimeout is the shard's per-relay bound (0 = 30s). Injected
	// stalls are bounded by StallCap, so this only has to beat the
	// slowest honest cell — generous headroom matters more than speed,
	// because CI runs the campaign under -race at a multiple of normal
	// cell latency, and a relay bound tighter than a legitimate cell
	// turns the control arm flaky.
	RelayTimeout time.Duration
	// MaxRounds caps the client's re-request loop per leg (0 = 8).
	MaxRounds int
	// RoundPause is the wait between client re-request rounds, giving the
	// shard's health probes time to close breakers a faulted round opened
	// (0 = 150ms).
	RoundPause time.Duration
	// Logf, when set, receives per-run progress lines.
	Logf func(format string, args ...any)
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if len(c.Workloads) == 0 {
		c.Workloads = defaultCampaignWorkloads
	}
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.ChaosScale < 1 {
		c.ChaosScale = 1
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{1, 2}
	}
	if len(c.FaultSet) == 0 {
		c.FaultSet = Faults
	}
	if c.Backends < 1 {
		c.Backends = 2
	}
	if c.MaxFaults == 0 {
		c.MaxFaults = DefaultMaxFaults
	}
	if c.Latency <= 0 {
		c.Latency = 30 * time.Millisecond
	}
	if c.StallCap <= 0 {
		c.StallCap = 2 * time.Second
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = time.Second
	}
	if c.RelayTimeout <= 0 {
		c.RelayTimeout = 30 * time.Second
	}
	if c.MaxRounds < 1 {
		c.MaxRounds = 8
	}
	if c.RoundPause <= 0 {
		c.RoundPause = 150 * time.Millisecond
	}
	return c
}

// RunStats is one grid point's outcome: what was injected, what the
// recovery machinery did about it, and whether the gates held.
type RunStats struct {
	Campaign string `json:"campaign"` // "batch" | "chaos"
	Fault    Fault  `json:"fault"`
	Seed     uint64 `json:"seed"`

	Cells    int    `json:"cells"`
	Injected uint64 `json:"injected"` // faults the proxies actually fired
	Rounds   int    `json:"rounds"`   // client request rounds used

	// Client-side accounting.
	StreamErrors    int `json:"stream_errors"`    // whole-stream failures the client retried around
	RetriedCells    int `json:"retried_cells"`    // cells re-requested in later rounds
	ErrorCells      int `json:"error_cells"`      // explicit error cells received (shed by the shard)
	DupRejected     int `json:"dup_rejected"`     // duplicates the assembly refused
	CorruptRejected int `json:"corrupt_rejected"` // corrupt cells the assembly refused

	// Shard-side accounting (this run's shard, so counters are absolute).
	FailedOver    uint64 `json:"failed_over"`    // cells reassigned after a backend loss
	Hedged        uint64 `json:"hedged"`         // straggler cells re-dispatched
	Shed          uint64 `json:"shed"`           // cells emitted as error cells
	CorruptLines  uint64 `json:"corrupt_lines"`  // backend lines the shard's validation rejected
	DupSuppressed uint64 `json:"dup_suppressed"` // duplicate lines the shard's dedup dropped
	Breakers      map[string]string `json:"breakers,omitempty"`

	// Gates.
	Lost            int  `json:"lost"`             // cells never assembled (must be 0)
	ReportIdentical bool `json:"report_identical"` // byte-identical to the serial ground truth
	Failure         string `json:"failure,omitempty"`
}

// recovered reports how many cells arrived despite needing some rescue.
func (s RunStats) recovered() uint64 { return s.FailedOver + s.Hedged + uint64(s.RetriedCells) }

// CampaignResult is the whole grid's outcome.
type CampaignResult struct {
	Runs   []RunStats `json:"runs"`
	Failed int        `json:"failed"` // runs whose gates did not hold
}

// RunCampaign executes the full (fault × seed × campaign) grid and
// returns the per-run stats. The returned error is non-nil iff any
// run's gates failed — zero lost, zero corrupt-accepted (byte-identical
// report), sabotage observed — making the call directly usable as a CI
// gate.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	cfg = cfg.withDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	for _, name := range cfg.Workloads {
		if _, ok := workloads.ByName(name); !ok {
			return nil, fmt.Errorf("netchaos: unknown workload %q", name)
		}
	}

	// Serial ground truths, computed once: the byte-exact answers every
	// faulted run must still produce.
	batchReq := server.BatchRequest{Workloads: cfg.Workloads, Scale: cfg.Scale}
	batchPlan, err := batchReq.BatchPlan()
	if err != nil {
		return nil, err
	}
	wantBatch, err := serialBatchReport(batchPlan)
	if err != nil {
		return nil, err
	}
	var wantChaos string
	var wantInternal int
	chaosReq := server.ChaosRequest{Scale: cfg.ChaosScale}
	chaosPlan := chaosReq.Plan()
	if !cfg.SkipChaos {
		wantChaos, wantInternal, err = serialChaosReport(chaosPlan)
		if err != nil {
			return nil, err
		}
	}

	res := &CampaignResult{}
	var failures []error
	for _, fault := range cfg.FaultSet {
		for _, seed := range cfg.Seeds {
			legs := []string{"batch"}
			if !cfg.SkipChaos {
				legs = append(legs, "chaos")
			}
			for _, leg := range legs {
				stats, err := runLeg(cfg, leg, fault, seed, batchReq, batchPlan, wantBatch,
					chaosReq, chaosPlan, wantChaos, wantInternal)
				if err != nil {
					stats.Failure = err.Error()
					failures = append(failures, fmt.Errorf("netchaos: %s fault=%s seed=%d: %w", leg, fault, seed, err))
					res.Failed++
				}
				res.Runs = append(res.Runs, stats)
				logf("netchaos: %-5s fault=%-9s seed=%d cells=%d injected=%d rounds=%d failed_over=%d hedged=%d shed=%d corrupt_lines=%d dup_suppressed=%d retried=%d lost=%d identical=%v",
					leg, fault, seed, stats.Cells, stats.Injected, stats.Rounds,
					stats.FailedOver, stats.Hedged, stats.Shed, stats.CorruptLines,
					stats.DupSuppressed, stats.RetriedCells, stats.Lost, stats.ReportIdentical)
			}
		}
	}
	if len(failures) > 0 {
		return res, errors.Join(failures...)
	}
	return res, nil
}

// serialBatchReport runs every plan cell locally and renders the
// reassembled report — the ground truth a faulted run must match.
func serialBatchReport(plan exp.Plan) (string, error) {
	a := plan.NewAssembly()
	for i := 0; i < plan.NumCells(); i++ {
		r, err := plan.RunCell(i)
		if err != nil {
			return "", err
		}
		if err := a.Add(i, r); err != nil {
			return "", err
		}
	}
	return a.Report()
}

// serialChaosReport is serialBatchReport for the chaos campaign.
func serialChaosReport(plan exp.ChaosPlan) (string, int, error) {
	a := plan.NewAssembly()
	for i := 0; i < plan.NumCells(); i++ {
		if err := a.Add(i, plan.RunCell(i)); err != nil {
			return "", 0, err
		}
	}
	return a.Report()
}

// stack is one booted serving tier: backends, proxies, shard, and the
// handles the campaign needs to drive and then tear it all down.
type stack struct {
	client   *server.Client
	shardURL string
	proxies  []*Proxy
	closers  []func()
}

func (st *stack) close() {
	for i := len(st.closers) - 1; i >= 0; i-- {
		st.closers[i]()
	}
}

func (st *stack) injected() uint64 {
	var n uint64
	for _, p := range st.proxies {
		n += p.Injected()
	}
	return n
}

// bootStack builds backends, one fault proxy per backend, and the shard
// over the proxies, all on loopback listeners.
func bootStack(cfg CampaignConfig, fault Fault, seed uint64) (*stack, error) {
	st := &stack{}
	serve := func(h http.Handler) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := &http.Server{Handler: h}
		go srv.Serve(ln)
		st.closers = append(st.closers, func() { srv.Close() })
		return "http://" + ln.Addr().String(), nil
	}
	proxyURLs := make([]string, cfg.Backends)
	for i := 0; i < cfg.Backends; i++ {
		backendURL, err := serve(server.New(server.Config{}))
		if err != nil {
			st.close()
			return nil, err
		}
		p := New(Config{
			Target:    backendURL,
			Fault:     fault,
			Seed:      seed + uint64(i)*0x9E3779B97F4A7C15,
			MaxFaults: cfg.MaxFaults,
			Latency:   cfg.Latency,
			StallCap:  cfg.StallCap,
		})
		st.proxies = append(st.proxies, p)
		if proxyURLs[i], err = serve(p); err != nil {
			st.close()
			return nil, err
		}
	}
	front, err := shard.New(shard.Config{
		Backends:         proxyURLs,
		HealthInterval:   50 * time.Millisecond,
		HealthTimeout:    time.Second,
		DownAfter:        2,
		BreakerThreshold: 2,
		BreakerCooldown:  150 * time.Millisecond,
		HedgeAfter:       cfg.HedgeAfter,
		RelayTimeout:     cfg.RelayTimeout,
		Seed:             seed,
	})
	if err != nil {
		st.close()
		return nil, err
	}
	st.closers = append(st.closers, front.Close)
	if st.shardURL, err = serve(front); err != nil {
		st.close()
		return nil, err
	}
	st.client = server.NewClientSeeded(st.shardURL, seed)
	st.client.RetryBase = 20 * time.Millisecond
	st.client.MaxAttempts = 6
	return st, nil
}

// runLeg boots a fresh faulted stack and drives one campaign leg
// through it, enforcing the gates.
func runLeg(cfg CampaignConfig, leg string, fault Fault, seed uint64,
	batchReq server.BatchRequest, batchPlan exp.Plan, wantBatch string,
	chaosReq server.ChaosRequest, chaosPlan exp.ChaosPlan, wantChaos string, wantInternal int) (RunStats, error) {

	stats := RunStats{Campaign: leg, Fault: fault, Seed: seed}
	st, err := bootStack(cfg, fault, seed)
	if err != nil {
		return stats, err
	}
	defer st.close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := st.client.WaitReady(ctx, 10*time.Second); err != nil {
		return stats, err
	}

	switch leg {
	case "batch":
		stats.Cells = batchPlan.NumCells()
		err = runBatchLeg(ctx, st.client, cfg, batchReq, batchPlan, wantBatch, &stats)
	case "chaos":
		stats.Cells = chaosPlan.NumCells()
		err = runChaosLeg(ctx, st.client, cfg, chaosReq, chaosPlan, wantChaos, wantInternal, &stats)
	default:
		err = fmt.Errorf("netchaos: unknown leg %q", leg)
	}
	stats.Injected = st.injected()
	scrapeShard(ctx, st.shardURL, &stats)
	if err != nil {
		return stats, err
	}

	// Gates.
	if stats.Lost > 0 {
		return stats, fmt.Errorf("%d of %d cells lost", stats.Lost, stats.Cells)
	}
	if !stats.ReportIdentical {
		return stats, errors.New("reassembled report differs from the serial ground truth")
	}
	if fault != FaultNone && stats.Injected == 0 {
		return stats, errors.New("no faults injected: the run proved nothing")
	}
	if fault == FaultNone && stats.Injected != 0 {
		return stats, fmt.Errorf("control arm injected %d faults", stats.Injected)
	}
	return stats, nil
}

// addOutcome classifies one assembly verdict into the client-side
// counters, returning a non-nil error only for contract violations that
// should abort the leg (never for typed duplicate/corrupt rejections —
// those are the machinery working).
func addOutcome(err error, stats *RunStats) error {
	switch {
	case err == nil:
	case errors.Is(err, exp.ErrDuplicateCell):
		stats.DupRejected++
	case errors.Is(err, exp.ErrCorruptCell):
		stats.CorruptRejected++
	default:
		return err
	}
	return nil
}

// runBatchLeg streams the batch campaign, re-requesting missing cells
// until the assembly completes (or rounds run out), then byte-compares
// the reassembled report.
func runBatchLeg(ctx context.Context, c *server.Client, cfg CampaignConfig,
	req server.BatchRequest, plan exp.Plan, want string, stats *RunStats) error {
	a := plan.NewAssembly()
	for round := 0; round < cfg.MaxRounds; round++ {
		missing := a.Missing()
		if len(missing) == 0 {
			break
		}
		stats.Rounds++
		sub := req
		if round > 0 {
			sub.Cells = missing
			stats.RetriedCells += len(missing)
			// Pause so the shard's health probes can close breakers the
			// previous faulted round opened; without it the rounds spin
			// faster than the tier can heal.
			pauseCtx(ctx, cfg.RoundPause)
		}
		_, err := c.BatchStream(ctx, sub, func(cell server.BatchCell) error {
			if cell.Error != "" {
				stats.ErrorCells++
				return nil // shed cell: re-requested next round
			}
			if cell.Result == nil {
				stats.CorruptRejected++
				return nil
			}
			return addOutcome(a.AddChecked(cell.Meta(), *cell.Result), stats)
		})
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			stats.StreamErrors++ // truncated or reset mid-stream: next round re-requests
		}
	}
	stats.Lost = len(a.Missing())
	if stats.Lost > 0 {
		return nil // the gate reports it with full context
	}
	got, err := a.Report()
	if err != nil {
		return err
	}
	stats.ReportIdentical = got == want
	return nil
}

// runChaosLeg is runBatchLeg for the chaos campaign.
func runChaosLeg(ctx context.Context, c *server.Client, cfg CampaignConfig,
	req server.ChaosRequest, plan exp.ChaosPlan, want string, wantInternal int, stats *RunStats) error {
	a := plan.NewAssembly()
	for round := 0; round < cfg.MaxRounds; round++ {
		missing := a.Missing()
		if len(missing) == 0 {
			break
		}
		stats.Rounds++
		sub := req
		if round > 0 {
			sub.Cells = missing
			stats.RetriedCells += len(missing)
			pauseCtx(ctx, cfg.RoundPause)
		}
		_, err := c.ChaosStream(ctx, sub, func(cell server.BatchCell) error {
			if cell.Error != "" {
				stats.ErrorCells++
				return nil
			}
			if cell.Chaos == nil {
				stats.CorruptRejected++
				return nil
			}
			return addOutcome(a.AddChecked(cell.Meta(), *cell.Chaos), stats)
		})
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			stats.StreamErrors++
		}
	}
	stats.Lost = len(a.Missing())
	if stats.Lost > 0 {
		return nil
	}
	got, internal, err := a.Report()
	if err != nil {
		return err
	}
	stats.ReportIdentical = got == want && internal == wantInternal
	return nil
}

// pauseCtx sleeps for d or until ctx is done.
func pauseCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// scrapeShard folds the run's final shard counters and breaker states
// into stats. Best-effort: a scrape failure leaves the fields zero.
func scrapeShard(ctx context.Context, shardURL string, stats *RunStats) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shardURL+"/metrics", nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var m shard.MetricsResponse
	if json.NewDecoder(resp.Body).Decode(&m) != nil {
		return
	}
	stats.FailedOver = m.Shard["reassigned_cells"]
	stats.Hedged = m.Shard["hedged_cells"]
	stats.Shed = m.Shard["shed_cells"]
	stats.CorruptLines = m.Shard["corrupt_lines"]
	stats.DupSuppressed = m.Shard["dup_suppressed"]
	stats.Breakers = make(map[string]string, len(m.Breakers))
	urls := make([]string, 0, len(m.Breakers))
	for u := range m.Breakers {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		stats.Breakers[u] = m.Breakers[u].State
	}
}

// Summary condenses a campaign result for reports and the bench schema.
type Summary struct {
	Runs            int    `json:"runs"`
	Failed          int    `json:"failed"`
	Cells           int    `json:"cells"`
	Injected        uint64 `json:"injected"`
	Recovered       uint64 `json:"recovered"`
	FailedOver      uint64 `json:"failed_over"`
	Hedged          uint64 `json:"hedged"`
	Shed            uint64 `json:"shed"`
	CorruptLines    uint64 `json:"corrupt_lines"`
	DupSuppressed   uint64 `json:"dup_suppressed"`
	Lost            int    `json:"lost"`
	AllIdentical    bool   `json:"all_identical"`
}

// Summarize folds per-run stats into campaign totals.
func (r *CampaignResult) Summarize() Summary {
	s := Summary{Runs: len(r.Runs), Failed: r.Failed, AllIdentical: true}
	for _, run := range r.Runs {
		s.Cells += run.Cells
		s.Injected += run.Injected
		s.Recovered += run.recovered()
		s.FailedOver += run.FailedOver
		s.Hedged += run.Hedged
		s.Shed += run.Shed
		s.CorruptLines += run.CorruptLines
		s.DupSuppressed += run.DupSuppressed
		s.Lost += run.Lost
		if !run.ReportIdentical {
			s.AllIdentical = false
		}
	}
	return s
}
