// Package netchaos is a deterministic fault-injecting reverse proxy for
// the serving tier: it sits between the shard front tier and an
// ifp-serve backend and misbehaves on purpose — added latency, refused
// and reset connections, blackholed streams, truncated campaigns,
// corrupted and duplicated NDJSON cell lines, slowloris writes — so the
// tier's failover, hedging, circuit-breaking, and validation machinery
// can be proven against every network failure mode the real world
// offers, reproducibly.
//
// Determinism: all randomness comes from a private splitmix64 stream
// seeded by Config.Seed (the same idiom as internal/chaos), and the
// fault budget (Config.MaxFaults) bounds how many requests are
// sabotaged, so a campaign over a faulted fleet always converges and a
// rerun with the same seed injects the same faults. Only POST requests
// are eligible — health probes and metrics scrapes pass clean, because
// the harness tests the data path's resilience, not the probe loop's.
package netchaos

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Fault is one network failure mode the proxy can inject.
type Fault string

const (
	// FaultNone passes everything through untouched (the control arm).
	FaultNone Fault = "none"
	// FaultLatency delays the response by Config.Latency, then relays it
	// intact — a slow but correct backend.
	FaultLatency Fault = "latency"
	// FaultRefuse kills the connection before any response bytes, without
	// contacting the backend — the client sees a transport error with
	// zero lines delivered, the same observable as a refused connection.
	FaultRefuse Fault = "refuse"
	// FaultReset relays a partial first line and then kills the
	// connection — a mid-write connection reset.
	FaultReset Fault = "reset"
	// FaultBlackhole accepts the request, sends response headers, and
	// then stalls silently (up to Config.StallCap) before killing the
	// connection — the failure mode only a relay timeout or a hedge can
	// beat, because no error arrives until the stall ends.
	FaultBlackhole Fault = "blackhole"
	// FaultTruncate relays the stream but drops its final line — for a
	// campaign stream, the {"done":true} trailer — and ends cleanly, so
	// the truncation is only detectable by the trailer contract.
	FaultTruncate Fault = "truncate"
	// FaultCorrupt mangles the first response line: undecodable bytes, an
	// alien sequence number, or swapped cell coordinates (seeded choice).
	// The rest of the stream follows intact; catching the lie is the
	// receiver's validation layer's job.
	FaultCorrupt Fault = "corrupt"
	// FaultDuplicate emits the first response line twice — the dedup
	// layers must suppress the copy, not double-count it.
	FaultDuplicate Fault = "duplicate"
	// FaultSlowloris drips the first lines out with Config.Latency pauses
	// (total bounded by Config.StallCap) before finishing normally — a
	// straggler, not a failure, which is exactly what hedged dispatch
	// exists for.
	FaultSlowloris Fault = "slowloris"
)

// Faults lists every injectable fault, campaign-grid order, control arm
// first.
var Faults = []Fault{
	FaultNone, FaultLatency, FaultRefuse, FaultReset, FaultBlackhole,
	FaultTruncate, FaultCorrupt, FaultDuplicate, FaultSlowloris,
}

// Defaults for Config zero values.
const (
	// DefaultMaxFaults is the per-proxy fault budget: enough sabotage to
	// force the recovery machinery through several cycles, small enough
	// that every campaign converges fast.
	DefaultMaxFaults = 4
	// DefaultLatency is the injected delay for FaultLatency and the
	// per-line pause for FaultSlowloris.
	DefaultLatency = 50 * time.Millisecond
	// DefaultStallCap bounds a blackhole stall and a slowloris total
	// delay, so even the nastiest fault cannot wedge a test run.
	DefaultStallCap = 2 * time.Second
)

// Config parameterizes a Proxy. Target is required.
type Config struct {
	// Target is the backend base URL the proxy forwards to, e.g.
	// "http://127.0.0.1:8080".
	Target string
	// Fault is the failure mode injected on eligible requests
	// ("" = FaultNone).
	Fault Fault
	// Seed seeds the proxy's deterministic fault randomness (0 = 1).
	Seed uint64
	// MaxFaults is the fault budget: the first MaxFaults eligible POST
	// requests are sabotaged, everything after passes clean
	// (0 = DefaultMaxFaults, < 0 = unlimited).
	MaxFaults int
	// Latency is the FaultLatency delay and FaultSlowloris per-line pause
	// (0 = DefaultLatency).
	Latency time.Duration
	// StallCap bounds a FaultBlackhole stall and the total FaultSlowloris
	// delay (0 = DefaultStallCap).
	StallCap time.Duration
}

func (c Config) withDefaults() Config {
	if c.Fault == "" {
		c.Fault = FaultNone
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxFaults == 0 {
		c.MaxFaults = DefaultMaxFaults
	}
	if c.Latency <= 0 {
		c.Latency = DefaultLatency
	}
	if c.StallCap <= 0 {
		c.StallCap = DefaultStallCap
	}
	return c
}

// Proxy is the fault-injecting reverse proxy: an http.Handler that
// forwards every request to Config.Target, sabotaging the first
// MaxFaults eligible ones according to Config.Fault. Construct with
// New; safe for concurrent use.
type Proxy struct {
	cfg Config

	mu  sync.Mutex // guards rng
	rng *prng

	eligible atomic.Uint64 // eligible POSTs seen (budget counter)
	injected atomic.Uint64 // faults actually injected
}

// New builds a Proxy for cfg.
func New(cfg Config) *Proxy {
	cfg = cfg.withDefaults()
	return &Proxy{cfg: cfg, rng: newPrng(cfg.Seed)}
}

// Injected reports how many requests have been sabotaged so far.
func (p *Proxy) Injected() uint64 { return p.injected.Load() }

// abort kills the client connection without completing the response —
// net/http closes the socket mid-stream, which the client observes as a
// transport error (connection reset / unexpected EOF).
func abort() { panic(http.ErrAbortHandler) }

// ServeHTTP forwards one exchange, injecting the configured fault if
// this request draws from the budget.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fault := FaultNone
	if r.Method == http.MethodPost && p.cfg.Fault != FaultNone {
		if n := p.eligible.Add(1); p.cfg.MaxFaults < 0 || n <= uint64(p.cfg.MaxFaults) {
			fault = p.cfg.Fault
			p.injected.Add(1)
		}
	}
	switch fault {
	case FaultRefuse:
		abort()
	case FaultBlackhole:
		p.blackhole(w, r)
		return
	case FaultLatency:
		p.sleepCtx(r.Context(), p.cfg.Latency)
	}
	p.relay(w, r, fault)
}

// blackhole sends headers and then nothing until the stall cap (or the
// client hanging up), then kills the connection. The backend is never
// contacted: the cells were accepted and silently eaten.
func (p *Proxy) blackhole(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	p.sleepCtx(r.Context(), p.cfg.StallCap)
	abort()
}

func (p *Proxy) sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// relay forwards the request to the target and streams the response
// back line by line, applying the line-level faults.
func (p *Proxy) relay(w http.ResponseWriter, r *http.Request, fault Fault) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		abort()
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.cfg.Target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		// The backend itself failed; surface that as a dead connection
		// rather than inventing a status the backend never sent.
		abort()
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "X-Ifp-Cache", "Retry-After", "X-Ifp-Cells"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	emit := func(line []byte) {
		w.Write(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	br := bufio.NewReader(resp.Body)
	var held []byte // one-line lookahead for FaultTruncate
	first := true
	slowBudget := p.cfg.StallCap
	for {
		line, rerr := br.ReadBytes('\n')
		if len(line) > 0 {
			switch {
			case fault == FaultReset && first:
				// Half a record out, then the wire goes dead.
				emit(line[:len(line)/2+1])
				abort()
			case fault == FaultTruncate:
				// Emit the previously held line; hold this one. The last
				// line of the stream — the trailer — is never emitted.
				if held != nil {
					emit(held)
				}
				held = append([]byte(nil), line...)
			case fault == FaultCorrupt && first:
				emit(p.corruptLine(line))
			case fault == FaultDuplicate && first:
				emit(line)
				emit(line)
			case fault == FaultSlowloris && slowBudget > 0:
				d := p.cfg.Latency
				if d > slowBudget {
					d = slowBudget
				}
				slowBudget -= d
				p.sleepCtx(r.Context(), d)
				emit(line)
			default:
				emit(line)
			}
			first = false
		}
		if rerr != nil {
			return // EOF or backend read error: response ends here
		}
	}
}

// corruptLine deterministically mangles one NDJSON line, picking among
// the three corruption shapes the receiving tier must each detect:
// undecodable bytes, an alien sequence number, and swapped cell
// coordinates.
func (p *Proxy) corruptLine(line []byte) []byte {
	p.mu.Lock()
	mode := p.rng.intn(3)
	p.mu.Unlock()
	trimmed := bytes.TrimRight(line, "\n")
	switch mode {
	case 0:
		// Undecodable: chop the line mid-record and append garbage.
		cut := len(trimmed)/2 + 1
		return append(append([]byte(nil), trimmed[:cut]...), []byte("}{netchaos\n")...)
	case 1:
		// Alien seq: a cell this backend (or campaign) was never asked for.
		var m map[string]json.RawMessage
		if json.Unmarshal(trimmed, &m) != nil || m["seq"] == nil {
			return append(append([]byte(nil), trimmed[:len(trimmed)/2]...), '\n')
		}
		var seq int
		json.Unmarshal(m["seq"], &seq)
		m["seq"] = json.RawMessage(fmt.Sprintf("%d", seq+100000))
		out, err := json.Marshal(m)
		if err != nil {
			return append(append([]byte(nil), trimmed[:len(trimmed)/2]...), '\n')
		}
		return append(out, '\n')
	default:
		// Coordinate swap: valid JSON, wrong identity.
		var m map[string]json.RawMessage
		if json.Unmarshal(trimmed, &m) != nil {
			return append(append([]byte(nil), trimmed[:len(trimmed)/2]...), '\n')
		}
		m["config"] = json.RawMessage(`"netchaos-corrupt"`)
		out, err := json.Marshal(m)
		if err != nil {
			return append(append([]byte(nil), trimmed[:len(trimmed)/2]...), '\n')
		}
		return append(out, '\n')
	}
}

// v0 is the identity on header names; it exists so the header-copy loop
// reads as intent (canonical names in, canonical names out).
func v0(h string) string { return h }

// prng is the package's private splitmix64 stream — the same idiom as
// internal/chaos — so fault choices reproduce exactly under a seed.
type prng struct{ s uint64 }

func newPrng(seed uint64) *prng { return &prng{s: seed} }

func (r *prng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// intn returns a deterministic value in [0, n).
func (r *prng) intn(n int) int { return int(r.next() % uint64(n)) }
