package netchaos

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"infat/internal/server"
)

// serveHandler boots h on a loopback listener and returns its base URL.
func serveHandler(t *testing.T, h http.Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

// fakeStream is a minimal NDJSON campaign backend: three cell lines and
// a trailer.
func fakeStream(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(w, `{"seq":%d,"kind":"perf","workload":"w","config":"c"}`+"\n", i)
	}
	fmt.Fprintln(w, `{"done":true,"cells":3,"completed":3}`)
}

// streamLines posts to the proxy and returns the raw response lines, or
// an error for transport-level failures.
func streamLines(t *testing.T, base string) ([]string, error) {
	t.Helper()
	resp, err := http.Post(base+"/v1/batch", "application/json", strings.NewReader("{}"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			lines = append(lines, s)
		}
	}
	return lines, sc.Err()
}

func newTestProxy(t *testing.T, fault Fault, maxFaults int) (*Proxy, string) {
	t.Helper()
	backend := serveHandler(t, http.HandlerFunc(fakeStream))
	p := New(Config{Target: backend, Fault: fault, Seed: 7, MaxFaults: maxFaults,
		Latency: 5 * time.Millisecond, StallCap: 200 * time.Millisecond})
	return p, serveHandler(t, p)
}

func TestProxyPassthrough(t *testing.T) {
	_, base := newTestProxy(t, FaultNone, -1)
	lines, err := streamLines(t, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 || !strings.Contains(lines[3], `"done":true`) {
		t.Fatalf("passthrough lines = %q", lines)
	}
}

func TestProxyRefuse(t *testing.T) {
	p, base := newTestProxy(t, FaultRefuse, 1)
	if _, err := streamLines(t, base); err == nil {
		t.Fatal("refused request produced no transport error")
	}
	if p.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", p.Injected())
	}
	// Budget exhausted: the next request passes clean.
	lines, err := streamLines(t, base)
	if err != nil || len(lines) != 4 {
		t.Fatalf("post-budget stream: lines=%q err=%v", lines, err)
	}
}

func TestProxyReset(t *testing.T) {
	_, base := newTestProxy(t, FaultReset, 1)
	lines, err := streamLines(t, base)
	if err == nil {
		t.Fatalf("reset stream ended cleanly: %q", lines)
	}
}

func TestProxyTruncateDropsTrailer(t *testing.T) {
	_, base := newTestProxy(t, FaultTruncate, 1)
	lines, err := streamLines(t, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("truncated stream has %d lines, want 3 (no trailer)", len(lines))
	}
	for _, l := range lines {
		if strings.Contains(l, `"done":true`) {
			t.Fatalf("trailer survived truncation: %q", l)
		}
	}
}

func TestProxyCorruptManglesFirstLine(t *testing.T) {
	// Try several seeds so every corruption mode shape is exercised.
	for seed := uint64(1); seed <= 3; seed++ {
		backend := serveHandler(t, http.HandlerFunc(fakeStream))
		p := New(Config{Target: backend, Fault: FaultCorrupt, Seed: seed, MaxFaults: 1})
		base := serveHandler(t, p)
		lines, err := streamLines(t, base)
		if err != nil {
			t.Fatal(err)
		}
		if lines[0] == `{"seq":0,"kind":"perf","workload":"w","config":"c"}` {
			t.Fatalf("seed %d: first line not corrupted: %q", seed, lines[0])
		}
	}
}

func TestProxyDuplicateRepeatsFirstLine(t *testing.T) {
	_, base := newTestProxy(t, FaultDuplicate, 1)
	lines, err := streamLines(t, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 5 || lines[0] != lines[1] {
		t.Fatalf("duplicate stream = %q", lines)
	}
}

func TestProxyBlackholeStallsThenDies(t *testing.T) {
	_, base := newTestProxy(t, FaultBlackhole, 1)
	start := time.Now()
	_, err := streamLines(t, base)
	if err == nil {
		t.Fatal("blackholed stream ended cleanly")
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("blackhole died after %v, want a stall near the cap", d)
	}
}

func TestProxyHealthProbesPassClean(t *testing.T) {
	backend := serveHandler(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	}))
	p := New(Config{Target: backend, Fault: FaultRefuse, MaxFaults: -1})
	base := serveHandler(t, p)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatalf("GET through refusing proxy failed: %v", err)
		}
		resp.Body.Close()
	}
	if p.Injected() != 0 {
		t.Fatalf("GETs drew %d faults, want 0", p.Injected())
	}
}

// TestClientTruncatedStreamNoPartialReport is the trailer-contract
// regression: a stream that dies without its trailer must surface
// ErrTruncatedStream and no partial report, and the backend's worker
// slots must all be released — proven by the same client completing the
// identical campaign once the fault budget is spent.
func TestClientTruncatedStreamNoPartialReport(t *testing.T) {
	backendURL := serveHandler(t, server.New(server.Config{}))
	p := New(Config{Target: backendURL, Fault: FaultTruncate, Seed: 3, MaxFaults: 1})
	base := serveHandler(t, p)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := server.NewClientSeeded(base, 3)
	req := server.BatchRequest{Workloads: []string{"treeadd"}}

	report, err := c.BatchReport(ctx, req)
	if !errors.Is(err, server.ErrTruncatedStream) {
		t.Fatalf("truncated campaign error = %v, want ErrTruncatedStream", err)
	}
	if report != "" {
		t.Fatalf("truncated campaign surfaced a partial report (%d bytes)", len(report))
	}

	// Fault budget spent: the same client must now succeed, which also
	// proves the truncated attempt released its worker slots.
	got, err := c.BatchReport(ctx, req)
	if err != nil || got == "" {
		t.Fatalf("post-truncation campaign: err=%v", err)
	}
	// The scrape itself counts as one in-flight request; anything above
	// that is a slot the truncated campaign leaked. The gauge drops just
	// after the trailer flush, so give the handler epilogue a moment.
	bc := server.NewClient(backendURL)
	deadline := time.Now().Add(2 * time.Second)
	for {
		m, err := bc.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.InFlight <= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend still reports %d in-flight requests", m.InFlight)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCampaignSmoke runs a reduced grid through the full harness: two
// nasty faults, one seed, batch leg only. The full grid is the CLI/CI
// -netchaos gate; this keeps `go test` minutes-free while still proving
// the campaign machinery end to end.
func TestCampaignSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign boots a full serving stack")
	}
	res, err := RunCampaign(CampaignConfig{
		Workloads: []string{"treeadd"},
		Seeds:     []uint64{1},
		FaultSet:  []Fault{FaultTruncate, FaultCorrupt},
		SkipChaos: true,
		MaxFaults: 2,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	sum := res.Summarize()
	if sum.Runs != 2 || sum.Failed != 0 || !sum.AllIdentical || sum.Lost != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Injected == 0 {
		t.Fatal("no faults injected")
	}
}
