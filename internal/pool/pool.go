// Package pool is the evaluation harness's bounded worker pool. The §5.2
// grid (18 workloads × 5 configurations) and the §5.1 Juliet suite are
// embarrassingly parallel — every cell builds its own rt.Runtime — so the
// harness fans cells out over a fixed number of goroutines and writes each
// result into a pre-indexed slot, keeping report ordering (and therefore
// report bytes) identical to a serial run.
//
// Error semantics are deliberately run-everything: a failed cell does not
// abort the grid. All errors are aggregated with errors.Join in item-index
// order, so the error text is deterministic regardless of worker count.
package pool

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count request: values <= 0 select
// runtime.GOMAXPROCS(0) (the -parallel flag's default), anything else is
// returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines
// and returns the joined errors in index order. workers <= 1 runs serially
// on the calling goroutine (the -parallel 1 path: no goroutines at all),
// but with the same run-everything, join-all-errors semantics as the
// parallel path, so output and error text never depend on worker count.
func Map(workers, n int, fn func(i int) error) error {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with cancellation: once ctx is done, no new items are
// dispatched (in-flight items finish) and ctx.Err() is joined into the
// result. Items that were never dispatched contribute no error.
func MapCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return errors.Join(append(errs[:i:i], ctx.Err())...)
			}
			errs[i] = fn(i)
		}
		return errors.Join(errs...)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || ctx.Err() != nil {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
