package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		n := 53
		counts := make([]atomic.Int32, n)
		if err := Map(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	ch := make(chan struct{})
	go func() { close(ch) }()
	<-ch
	if err := Map(workers, 64, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent items, cap is %d", p, workers)
	}
}

func TestMapJoinsErrorsInIndexOrder(t *testing.T) {
	want := "item 3\nitem 11\nitem 40"
	for _, workers := range []int{1, 4} {
		err := Map(workers, 48, func(i int) error {
			if i == 3 || i == 11 || i == 40 {
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != want {
			t.Errorf("workers=%d: error = %q, want %q", workers, err, want)
		}
	}
}

func TestMapDoesNotAbortOnError(t *testing.T) {
	var ran atomic.Int32
	err := Map(4, 32, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("first item failed")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if ran.Load() != 32 {
		t.Errorf("only %d/32 items ran after a failure", ran.Load())
	}
}

func TestMapCtxCancellationStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := MapCtx(ctx, 2, 1000, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("cancellation dispatched all %d items", n)
	}
}

func TestMapCtxSerialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	err := MapCtx(ctx, 1, 100, func(i int) error {
		ran++
		if i == 2 {
			cancel()
			return errors.New("boom")
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("pre-cancellation error dropped: %v", err)
	}
	if ran != 3 {
		t.Errorf("ran %d items after cancel at item 2", ran)
	}
}

func TestMapZeroItems(t *testing.T) {
	if err := Map(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersDefault(t *testing.T) {
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := Workers(-3); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", w)
	}
	if w := Workers(6); w != 6 {
		t.Errorf("Workers(6) = %d", w)
	}
}
