package rt

import (
	"infat/internal/machine"
	"infat/internal/tag"
)

// This file provides the mode-transparent access API used by workloads and
// examples. In an instrumented mode each helper emits exactly the
// instructions the In-Fat Pointer compiler would (Listing 2); in Baseline
// mode it emits the uninstrumented equivalent, so comparing two runs of
// the same workload measures the instrumentation overhead, which is the
// paper's §5.2 methodology.

// Load reads size bytes through p with the implicit access-size check when
// b holds bounds (or an explicit ifpchk under the ExplicitChecks
// ablation).
func (r *Runtime) Load(p Ptr, size int, b machine.BoundsReg) (uint64, error) {
	if r.ExplicitChecks && b.Valid {
		p = r.M.IfpChk(p, uint64(size), b)
		return r.M.Load(p, size, machine.Cleared)
	}
	return r.M.Load(p, size, b)
}

// Store writes the low size bytes of v through p.
func (r *Runtime) Store(p Ptr, v uint64, size int, b machine.BoundsReg) error {
	if r.ExplicitChecks && b.Valid {
		p = r.M.IfpChk(p, uint64(size), b)
		return r.M.Store(p, v, size, machine.Cleared)
	}
	return r.M.Store(p, v, size, b)
}

// LoadPtr loads a pointer value from memory and promotes it — the
// canonical instrumentation for pointers whose bounds the compiler cannot
// see (§3.4: "only pointers not derived from another pointer (e.g., just
// loaded from memory) need promote").
func (r *Runtime) LoadPtr(p Ptr, b machine.BoundsReg) (Ptr, machine.BoundsReg, error) {
	v, err := r.Load(p, 8, b)
	if err != nil {
		return 0, machine.Cleared, err
	}
	if !r.Instrumented() {
		return v, machine.Cleared, nil
	}
	q, qb := r.M.Promote(v)
	return q, qb, nil
}

// StorePtr demotes a pointer (dropping its bounds register, §4.1) and
// stores it. The tag is stored with the value — tags persist in memory.
func (r *Runtime) StorePtr(p Ptr, b machine.BoundsReg, v Ptr, vb machine.BoundsReg) error {
	if r.Instrumented() {
		v = r.M.IfpExtract(v, vb)
	}
	return r.Store(p, v, 8, b)
}

// GEP is pointer arithmetic: ifpadd when the pointer carries a tag
// (address computation fused with tag maintenance, replacing the baseline
// add one-for-one), and a plain add for untagged pointers — the compiler
// only emits ifpadd where there is a tag to maintain.
func (r *Runtime) GEP(p Ptr, delta int64, b machine.BoundsReg) Ptr {
	if !r.Instrumented() || tag.IsLegacy(p) {
		r.M.Tick(1)
		return p + uint64(delta)
	}
	return r.M.IfpAdd(p, delta, b)
}

// SetSub updates the subobject index (ifpidx) when code takes the address
// of a struct member. Baseline code has no equivalent instruction — this
// is pure instrumentation overhead. In IFPTemporal mode the shared bits
// hold the allocation generation, so the compiler emits no ifpidx at all
// and the pointer passes through unchanged (subobject narrowing is the
// capability the temporal mode trades away, DESIGN.md §14).
func (r *Runtime) SetSub(p Ptr, idx uint16) Ptr {
	if !r.Instrumented() || r.mode == IFPTemporal {
		return p
	}
	return r.M.IfpIdx(p, idx)
}

// Bnd creates bounds of a statically known size (ifpbnd): the compiler
// uses it when deriving a subobject pointer whose extent it knows, so no
// promote is needed (§3.4 static-bounds case).
func (r *Runtime) Bnd(p Ptr, size uint64) machine.BoundsReg {
	if !r.Instrumented() {
		return machine.Cleared
	}
	return r.M.IfpBnd(p, size)
}

// Check is an explicit ifpchk for pointers in registers outside the
// implicitly-checked (caller-saved) set (§4.1.1).
func (r *Runtime) Check(p Ptr, size uint64, b machine.BoundsReg) Ptr {
	if !r.Instrumented() {
		return p
	}
	return r.M.IfpChk(p, size, b)
}

// Promote re-retrieves bounds for a pointer (explicit promote site).
func (r *Runtime) Promote(p Ptr) (Ptr, machine.BoundsReg) {
	if !r.Instrumented() {
		return p, machine.Cleared
	}
	return r.M.Promote(p)
}

// SpillBounds / ReloadBounds model callee-saved bounds-register traffic
// across deep call chains (stbnd/ldbnd, §4.1.2). Baseline code spills only
// the GPR, which its own Store/Load already accounts for; the bounds words
// are the instrumentation's additional traffic.
func (r *Runtime) SpillBounds(addr uint64, b machine.BoundsReg) error {
	if !r.Instrumented() {
		return nil
	}
	return r.M.StBnd(addr, b)
}

// ReloadBounds restores a spilled bounds register.
func (r *Runtime) ReloadBounds(addr uint64) (machine.BoundsReg, error) {
	if !r.Instrumented() {
		return machine.Cleared, nil
	}
	return r.M.LdBnd(addr)
}

// Memset writes count bytes of value b starting at p, word-at-a-time, with
// one implicit check per word — modeling a compiled memset loop.
func (r *Runtime) Memset(p Ptr, val byte, count uint64, b machine.BoundsReg) error {
	word := uint64(val)
	word |= word << 8
	word |= word << 16
	word |= word << 32
	var i uint64
	for ; i+8 <= count; i += 8 {
		if err := r.Store(r.GEP(p, int64(i), b), word, 8, b); err != nil {
			return err
		}
	}
	for ; i < count; i++ {
		if err := r.Store(r.GEP(p, int64(i), b), uint64(val), 1, b); err != nil {
			return err
		}
	}
	return nil
}

// Memcpy copies count bytes from src to dst word-at-a-time.
func (r *Runtime) Memcpy(dst Ptr, db machine.BoundsReg, src Ptr, sb machine.BoundsReg, count uint64) error {
	var i uint64
	for ; i+8 <= count; i += 8 {
		v, err := r.Load(r.GEP(src, int64(i), sb), 8, sb)
		if err != nil {
			return err
		}
		if err := r.Store(r.GEP(dst, int64(i), db), v, 8, db); err != nil {
			return err
		}
	}
	for ; i < count; i++ {
		v, err := r.Load(r.GEP(src, int64(i), sb), 1, sb)
		if err != nil {
			return err
		}
		if err := r.Store(r.GEP(dst, int64(i), db), v, 1, db); err != nil {
			return err
		}
	}
	return nil
}
