package rt

import (
	"fmt"

	"infat/internal/layout"
	"infat/internal/machine"
	"infat/internal/metadata"
	"infat/internal/tag"
)

// Malloc allocates an array of n objects of type t on the heap through the
// mode's allocator and returns the registered object. The compiler's
// allocator rewriting (§4.2.1) passes the type (and therefore the layout
// table) as an extra argument, so typed allocations can narrow to
// subobjects; use MallocBytes for allocations whose type the
// instrumentation cannot see (opaque wrappers — the CoreMark/bzip2 case).
func (r *Runtime) Malloc(t *layout.Type, n uint64) (Obj, error) {
	if t == nil || n == 0 {
		return Obj{}, fmt.Errorf("rt: Malloc needs a type and a count")
	}
	layoutPtr, err := r.layoutFor(t)
	if err != nil {
		return Obj{}, err
	}
	o, err := r.mallocSized(t.Size()*n, layoutPtr)
	return o, wrapAlloc(err)
}

// MallocBytes allocates an untyped heap object (no layout table).
func (r *Runtime) MallocBytes(size uint64) (Obj, error) {
	o, err := r.mallocSized(size, 0)
	return o, wrapAlloc(err)
}

// MallocLegacy models an allocation made by uninstrumented code (libc
// internals): it always goes through the baseline free list and returns an
// untagged pointer with no metadata, even in instrumented modes.
func (r *Runtime) MallocLegacy(size uint64) (Obj, error) {
	if size == 0 {
		size = 1
	}
	if err := r.allocFaultCheck(); err != nil {
		return Obj{}, wrapAlloc(err)
	}
	p, err := r.fl.Malloc(size)
	if err != nil {
		return Obj{}, wrapAlloc(err)
	}
	return Obj{P: p, Size: size, Kind: KindLegacy}, nil
}

func (r *Runtime) mallocSized(size uint64, layoutPtr uint64) (Obj, error) {
	if size == 0 {
		size = 1
	}
	if err := r.allocFaultCheck(); err != nil {
		return Obj{}, err
	}
	switch {
	case r.mode == Baseline:
		p, err := r.fl.Malloc(size)
		if err != nil {
			return Obj{}, err
		}
		return Obj{P: p, Size: size, Kind: KindLegacy}, nil
	case r.ForceGlobalTable:
		r.Stats.HeapObjects++
		if layoutPtr != 0 {
			r.Stats.HeapWithLT++
		}
		return r.mallocGlobalRow(size, layoutPtr)
	case r.mode == Wrapped:
		return r.mallocWrapped(size, layoutPtr)
	case r.mode == Subheap:
		return r.mallocSubheap(size, layoutPtr)
	case r.mode == Hybrid:
		return r.mallocHybrid(size, layoutPtr)
	case r.mode == IFPTemporal:
		return r.mallocTemporal(size, layoutPtr)
	}
	return Obj{}, fmt.Errorf("rt: unknown mode %v", r.mode)
}

// mallocTemporal is the IFPTemporal allocation path: Hybrid's dynamic
// allocator selection (so the free list, the buddy allocator, and the
// subheap pools are all exercised by the same workloads), with the chunk's
// current generation stamped into the returned pointer's tag. Global-table
// fallbacks carry no generation field — all 12 bits name the row — and
// stay temporally unchecked, the documented gap of the scheme.
func (r *Runtime) mallocTemporal(size uint64, layoutPtr uint64) (Obj, error) {
	o, err := r.mallocHybrid(size, layoutPtr)
	if err != nil {
		return Obj{}, err
	}
	o.P = tag.WithGen(o.P, r.gens.Gen(o.Base()))
	return o, nil
}

// hybridGraduation is the allocation count at which a (size, type)
// signature moves from the wrapped path to a subheap pool.
const hybridGraduation = 4

// mallocHybrid selects the metadata scheme dynamically (§4.2.1 future
// work): hot signatures go to subheap pools where per-block metadata
// amortizes; cold ones take the wrapped path, whose setup is a single
// over-allocation. Frees dispatch on the pointer tag, so mixing is safe.
func (r *Runtime) mallocHybrid(size uint64, layoutPtr uint64) (Obj, error) {
	if size > maxSubheapObject {
		r.Stats.HeapObjects++
		if layoutPtr != 0 {
			r.Stats.HeapWithLT++
		}
		return r.mallocGlobalRow(size, layoutPtr)
	}
	key := poolKey{objSize: uint32(size), layoutPtr: layoutPtr}
	r.sigCount[key]++
	r.M.Tick(2) // site-count bookkeeping in the allocator fast path
	if r.sigCount[key] > hybridGraduation || r.pools[key] != nil {
		return r.mallocSubheap(size, layoutPtr)
	}
	if size <= tag.MaxLocalObjectSize {
		return r.mallocWrapped(size, layoutPtr)
	}
	r.Stats.HeapObjects++
	if layoutPtr != 0 {
		r.Stats.HeapWithLT++
	}
	return r.mallocGlobalRow(size, layoutPtr)
}

// mallocGlobalRow allocates from the free list and registers the object in
// the global metadata table (the fallback path, and the whole story under
// the ForceGlobalTable ablation).
func (r *Runtime) mallocGlobalRow(size uint64, layoutPtr uint64) (Obj, error) {
	base, err := r.fl.Malloc(size)
	if err != nil {
		return Obj{}, err
	}
	row, err := r.registerGlobalRow(base, size, layoutPtr)
	if err != nil {
		return Obj{}, err
	}
	p := r.M.IfpMdGlobal(base, row)
	r.heapRows[base] = row
	return Obj{P: p, B: r.M.IfpBnd(p, size), Size: size, Kind: KindWrappedGlobal, row: row}, nil
}

// mallocWrapped implements the wrapped allocator (§4.2.1): transparently
// over-allocate for local-offset metadata when the object fits the scheme,
// otherwise fall back to the global table.
func (r *Runtime) mallocWrapped(size uint64, layoutPtr uint64) (Obj, error) {
	r.Stats.HeapObjects++
	if layoutPtr != 0 {
		r.Stats.HeapWithLT++
	}
	if size <= tag.MaxLocalObjectSize {
		_, footprint := metadata.LocalPlacement(0, size)
		base, err := r.fl.Malloc(footprint)
		if err != nil {
			return Obj{}, err
		}
		p, _, err := r.registerLocalOffset(base, size, layoutPtr)
		if err != nil {
			return Obj{}, err
		}
		r.wrappedLocal[base] = true
		return Obj{P: p, B: r.M.IfpBnd(p, size), Size: size, Kind: KindWrappedLocal}, nil
	}
	return r.mallocGlobalRow(size, layoutPtr)
}

// --- Subheap pool allocator (§4.2.1) ---

// poolKey identifies a pool: objects are grouped by exact size *and* type
// (layout identity), the §3.3.2 invariant that every object in a block has
// identical metadata.
type poolKey struct {
	objSize   uint32
	layoutPtr uint64
}

type pool struct {
	key      poolKey
	slotSize uint32
	// nextOrder is the buddy order the pool's next block will use. Blocks
	// grow geometrically (slab/jemalloc style): a pool with thousands of
	// live objects ends up with a handful of big blocks instead of
	// hundreds of small ones, which keeps the shared-metadata working set
	// to a few cache lines — the §5.2.2 metadata-sharing win depends on
	// it (all block metadata lines alias into the same L1D sets because
	// block bases are power-of-2 aligned).
	nextOrder uint
	maxOrder  uint
	partial   []*block
}

type block struct {
	pool      *pool
	base      uint64
	order     uint
	nSlots    uint32
	freeSlots []uint32
	liveSlots uint32
}

// subheapMetaReserve is the space reserved at the start of each block for
// the 32-byte shared metadata, rounded to a granule multiple so slots stay
// 16-byte aligned.
const subheapMetaReserve = 64

// maxSubheapObject is the largest object the pool allocator serves; larger
// allocations fall back to the global-table path over the free list (em3d
// allocates multi-thousand-element arrays that would waste whole blocks).
const maxSubheapObject = 1 << 20

// slotClass rounds an object size up to the nearest slot stride the
// hardware divider supports (§3.3.2: "power of two or fixed integer
// multiple of power of two"): the classes are 2^k and 3·2^(k-1), i.e.
// 16, 32, 48, 64, 96, 128, 192, 256, ... The padding this introduces on
// odd-sized objects is the source of em3d's high subheap memory overhead
// (§5.2.3).
func slotClass(objSize uint64) uint32 {
	s := (objSize + tag.Granule - 1) &^ uint64(tag.Granule-1)
	if s < tag.Granule {
		s = tag.Granule
	}
	pow := uint64(tag.Granule)
	for {
		if s <= pow {
			return uint32(pow)
		}
		if s <= pow/2*3 {
			return uint32(pow / 2 * 3)
		}
		pow <<= 1
	}
}

// choosePoolGeometry picks slot stride and initial block order for an
// object size: small objects pack many per 4-KiB block, larger ones get
// bigger blocks targeting at least 8 slots.
func choosePoolGeometry(objSize uint64) (slot uint32, order uint) {
	s := uint64(slotClass(objSize))
	order = 12
	for uint64(1)<<order < subheapMetaReserve+8*s && order < 24 {
		order++
	}
	return uint32(s), order
}

func (r *Runtime) mallocSubheap(size uint64, layoutPtr uint64) (Obj, error) {
	r.Stats.HeapObjects++
	if layoutPtr != 0 {
		r.Stats.HeapWithLT++
	}
	if size > maxSubheapObject {
		// Oversized: global-table fallback over the free list.
		return r.mallocGlobalRow(size, layoutPtr)
	}

	r.M.Tick(poolAllocCost)
	key := poolKey{objSize: uint32(size), layoutPtr: layoutPtr}
	pl := r.pools[key]
	if pl == nil {
		slot, order := choosePoolGeometry(size)
		pl = &pool{key: key, slotSize: slot, nextOrder: order, maxOrder: 18}
		if pl.maxOrder < order {
			pl.maxOrder = order
		}
		r.pools[key] = pl
	}

	var blk *block
	if n := len(pl.partial); n > 0 {
		blk = pl.partial[n-1]
	} else {
		var err error
		blk, err = r.newBlock(pl)
		if err != nil {
			return Obj{}, err
		}
		pl.partial = append(pl.partial, blk)
	}

	slotIdx := blk.freeSlots[len(blk.freeSlots)-1]
	blk.freeSlots = blk.freeSlots[:len(blk.freeSlots)-1]
	blk.liveSlots++
	if len(blk.freeSlots) == 0 {
		pl.partial = pl.partial[:len(pl.partial)-1]
	}

	addr := blk.base + subheapMetaReserve + uint64(slotIdx)*uint64(pl.slotSize)
	cr := r.crOfBits[uint8(blk.order)]
	p := r.M.IfpMdSubheap(addr, cr, 0)
	r.Stats.HeapPool++
	return Obj{P: p, B: r.M.IfpBnd(p, size), Size: size, Kind: KindSubheapSlot}, nil
}

// newBlock carves a fresh block from the buddy allocator, configures (or
// reuses) the control register for its size class, and writes the shared
// metadata record.
func (r *Runtime) newBlock(pl *pool) (*block, error) {
	order := pl.nextOrder
	if pl.nextOrder < pl.maxOrder {
		pl.nextOrder++
	}
	base, err := r.buddy.Alloc(order)
	if err != nil {
		return nil, err
	}
	crIdx, ok := r.crOfBits[uint8(order)]
	if !ok {
		if r.nextCR >= tag.NumSubheapCRs {
			return nil, ErrNoCRs
		}
		crIdx = uint16(r.nextCR)
		r.nextCR++
		r.crOfBits[uint8(order)] = crIdx
		r.M.CRs[crIdx] = metadata.CR{Valid: true, BlockBits: uint8(order), MetaOffset: 0}
	}

	blockSize := uint64(1) << order
	nSlots := uint32((blockSize - subheapMetaReserve) / uint64(pl.slotSize))
	md := metadata.Subheap{
		SlotStart: subheapMetaReserve,
		SlotEnd:   subheapMetaReserve + nSlots*pl.slotSize,
		SlotSize:  pl.slotSize,
		ObjSize:   pl.key.objSize,
		LayoutPtr: pl.key.layoutPtr,
	}
	md.MAC = r.M.IfpMacSubheap(base, md)

	r.M.Tick(blockSetupCost)
	for i, w := range md.Encode() {
		if err := r.M.RawStore64(base+uint64(i)*8, w); err != nil {
			return nil, err
		}
	}

	blk := &block{pool: pl, base: base, order: order, nSlots: nSlots}
	blk.freeSlots = make([]uint32, nSlots)
	for i := uint32(0); i < nSlots; i++ {
		blk.freeSlots[i] = nSlots - 1 - i // hand out slot 0 first
	}
	r.blocks[base] = blk
	return blk, nil
}

// Free releases a heap object allocated with Malloc/MallocBytes/
// MallocLegacy, dispatching on how it was registered. In IFPTemporal mode
// the free path first compares the pointer's stamped generation against
// the generation store — a pointer whose generation is already behind the
// store refers to a chunk freed since it was derived, so the free itself
// is a double free and traps TrapTemporal — and, on success, bumps the
// chunk's generation so every outstanding pointer into it goes stale.
func (r *Runtime) Free(o Obj) error {
	if r.mode == IFPTemporal {
		if err := r.TemporalFreeCheck(o.P); err != nil {
			return err
		}
		err := r.freeDispatch(o)
		if err == nil {
			r.gens.Bump(o.Base())
		}
		return err
	}
	return r.freeDispatch(o)
}

// TemporalFreeCheck is the generation comparison guarding every temporal-
// mode free: a TrapTemporal double-free trap when the pointer's stamped
// generation is behind the generation store. The VM calls it with the
// guest's *freeing* pointer before resolving the allocation record, so a
// free through a pointer whose chunk was freed and reallocated traps
// instead of releasing the unrelated new object at the same base.
// Pointers without a generation field (legacy, global-table) pass
// unchecked, and every non-temporal mode returns nil.
func (r *Runtime) TemporalFreeCheck(p Ptr) error {
	if r.mode != IFPTemporal {
		return nil
	}
	g, has := tag.Gen(p)
	if !has {
		return nil
	}
	base := tag.Addr(p)
	if !tag.GenMatches(g, r.gens.Gen(base), tag.GenBits(tag.SchemeOf(p))) {
		return &machine.Trap{Kind: machine.TrapTemporal, Ptr: p,
			Msg: "double free: pointer generation is behind the generation store"}
	}
	return nil
}

func (r *Runtime) freeDispatch(o Obj) error {
	switch o.Kind {
	case KindLegacy:
		return r.fl.Free(tag.Addr(o.P))
	case KindWrappedLocal:
		base := tag.Addr(o.P)
		if !r.wrappedLocal[base] {
			return fmt.Errorf("rt: wrapped free of unknown chunk %#x", base)
		}
		delete(r.wrappedLocal, base)
		metaAddr, _ := metadata.LocalPlacement(base, o.Size)
		if err := r.clearLocalOffset(metaAddr); err != nil {
			return err
		}
		return r.fl.Free(base)
	case KindWrappedGlobal:
		base := tag.Addr(o.P)
		row, ok := r.heapRows[base]
		if !ok {
			return fmt.Errorf("rt: global-row free of unknown chunk %#x", base)
		}
		delete(r.heapRows, base)
		if err := r.releaseGlobalRow(row); err != nil {
			return err
		}
		return r.fl.Free(base)
	case KindSubheapSlot:
		return r.freeSubheap(o)
	}
	return fmt.Errorf("rt: Free of %v object", o.Kind)
}

func (r *Runtime) freeSubheap(o Obj) error {
	r.M.Tick(poolFreeCost)
	crIdx, _ := tag.SubheapFields(o.P)
	cr := r.M.CRs[crIdx]
	if !cr.Valid {
		return fmt.Errorf("rt: subheap free with invalid CR %d", crIdx)
	}
	base := cr.BlockBase(tag.Addr(o.P))
	blk, ok := r.blocks[base]
	if !ok {
		return fmt.Errorf("rt: subheap free of unknown block %#x", base)
	}
	rel := tag.Addr(o.P) - base - subheapMetaReserve
	slotIdx := uint32(rel / uint64(blk.pool.slotSize))
	if rel%uint64(blk.pool.slotSize) != 0 || slotIdx >= blk.nSlots {
		return fmt.Errorf("rt: subheap free of non-slot address %#x", tag.Addr(o.P))
	}
	wasFull := len(blk.freeSlots) == 0
	blk.freeSlots = append(blk.freeSlots, slotIdx)
	blk.liveSlots--
	pl := blk.pool
	if blk.liveSlots == 0 {
		// Whole block free: clear metadata and return it to the buddy.
		for i := 0; i < metadata.SubheapMetaBytes/8; i++ {
			if err := r.M.RawStore64(base+uint64(i)*8, 0); err != nil {
				return err
			}
		}
		delete(r.blocks, base)
		removeBlock(&pl.partial, blk)
		return r.buddy.Free(base)
	}
	if wasFull {
		pl.partial = append(pl.partial, blk)
	}
	return nil
}

func removeBlock(list *[]*block, b *block) {
	for i, x := range *list {
		if x == b {
			(*list)[i] = (*list)[len(*list)-1]
			*list = (*list)[:len(*list)-1]
			return
		}
	}
}
