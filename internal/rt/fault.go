package rt

import (
	"errors"

	"infat/internal/heap"
	"infat/internal/machine"
)

// Typed allocator-failure sentinels. They are wrapped into
// machine.TrapAlloc traps by the public allocation API, so callers can
// classify with machine.IsTrap(err, machine.TrapAlloc) and still reach
// the precise cause through errors.Is.
var (
	// ErrTableFull is global metadata table exhaustion (§3.3.3: the
	// table's 4096-row capacity is a real constraint).
	ErrTableFull = errors.New("rt: global metadata table full")
	// ErrNoCRs is subheap control-register exhaustion (§3.3.2: 16 CRs).
	ErrNoCRs = errors.New("rt: out of subheap control registers")
	// ErrInjectedAllocFault is the failure InjectAllocFault arms: a
	// deterministic stand-in for transient allocator failure (OOM at a
	// chosen point), used by the chaos campaign.
	ErrInjectedAllocFault = errors.New("rt: injected allocator fault")
)

// InjectAllocFault arms a one-shot deterministic allocator fault: the
// n-th heap allocation from now (1 = the very next Malloc/MallocBytes/
// MallocLegacy) fails with ErrInjectedAllocFault wrapped in a
// machine.TrapAlloc trap, then the hook disarms. n <= 0 disarms an
// armed fault. The runtime must stay fully usable after the injected
// failure — that invariant is what the chaos campaign checks.
func (r *Runtime) InjectAllocFault(n int) {
	if n <= 0 {
		r.allocFaultAt = 0
		return
	}
	r.allocFaultAt = n
}

// allocFaultCheck decrements the armed countdown and fires on zero.
func (r *Runtime) allocFaultCheck() error {
	if r.allocFaultAt == 0 {
		return nil
	}
	r.allocFaultAt--
	if r.allocFaultAt == 0 {
		return ErrInjectedAllocFault
	}
	return nil
}

// wrapAlloc converts allocator-layer failures (arena/buddy exhaustion,
// metadata-table or CR exhaustion, bad release marks, injected faults)
// into typed machine.TrapAlloc traps. Errors that are already traps, or
// that are not allocator failures (argument validation, layout-build
// errors), pass through unchanged.
func wrapAlloc(err error) error {
	if err == nil {
		return nil
	}
	var t *machine.Trap
	if errors.As(err, &t) {
		return err
	}
	for _, sentinel := range []error{
		heap.ErrOutOfMemory, heap.ErrBadRelease, heap.ErrBadConfig,
		ErrTableFull, ErrNoCRs, ErrInjectedAllocFault,
	} {
		if errors.Is(err, sentinel) {
			return &machine.Trap{Kind: machine.TrapAlloc, Msg: err.Error(), Cause: err}
		}
	}
	return err
}
