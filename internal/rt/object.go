package rt

import (
	"fmt"

	"infat/internal/layout"
	"infat/internal/machine"
	"infat/internal/metadata"
	"infat/internal/tag"
)

// Kind records how an object was registered, which determines how it is
// released.
type Kind int

// Object kinds.
const (
	// KindLegacy is an untagged object with no metadata (baseline mode,
	// or allocations made by "uninstrumented" code).
	KindLegacy Kind = iota
	// KindLocal uses local-offset metadata on the stack or a global.
	KindLocal
	// KindGlobalRow uses a global-table row (stack/global fallback).
	KindGlobalRow
	// KindWrappedLocal is a heap chunk over-allocated for local-offset
	// metadata by the wrapped allocator.
	KindWrappedLocal
	// KindWrappedGlobal is a heap chunk registered in the global table by
	// the wrapped allocator.
	KindWrappedGlobal
	// KindSubheapSlot is a slot in a subheap block.
	KindSubheapSlot
)

// Obj is a registered guest object: its tagged pointer, the bounds the
// compiler statically knows at the allocation site (so no promote is
// needed for the fresh pointer, §3.4), and release bookkeeping.
type Obj struct {
	P    Ptr
	B    machine.BoundsReg
	Size uint64
	Kind Kind

	row      uint16 // global-table row (KindGlobalRow/KindWrappedGlobal)
	metaAddr uint64 // local-offset metadata address (KindLocal)
}

// Base returns the object's untagged base address.
func (o Obj) Base() uint64 { return tag.Addr(o.P) }

// registerLocalOffset writes local-offset metadata for an object at base
// and returns the tagged pointer. The instrumentation cost is ifpmac + two
// metadata stores + fixed setup (Listing 2's IFP_Register path).
func (r *Runtime) registerLocalOffset(base, size, layoutPtr uint64) (Ptr, uint64, error) {
	metaAddr, _ := metadata.LocalPlacement(base, size)
	m := metadata.Local{Size: uint16(size), LayoutPtr: layoutPtr}
	m.MAC = r.M.IfpMac(base, uint64(m.Size), m.LayoutPtr)
	w := m.Encode()
	r.M.Tick(localSetupCost)
	if err := r.M.RawStore64(metaAddr, w[0]); err != nil {
		return 0, 0, err
	}
	if err := r.M.RawStore64(metaAddr+8, w[1]); err != nil {
		return 0, 0, err
	}
	off, ok := metadata.LocalGranuleOffset(base, metaAddr)
	if !ok {
		return 0, 0, fmt.Errorf("rt: local-offset unencodable for size %d", size)
	}
	return r.M.IfpMdLocal(base, off, 0), metaAddr, nil
}

// clearLocalOffset invalidates the metadata record (IFP_Deregister).
func (r *Runtime) clearLocalOffset(metaAddr uint64) error {
	r.M.Tick(localSetupCost)
	if err := r.M.RawStore64(metaAddr, 0); err != nil {
		return err
	}
	return r.M.RawStore64(metaAddr+8, 0)
}

// layoutFor returns the interned layout-table address for t, or 0 when
// the allocation site gives the compiler no aggregate type to describe
// (nil type, or a bare scalar/pointer element — the compiler generates
// tables for struct and array types, §4.2.2).
func (r *Runtime) layoutFor(t *layout.Type) (uint64, error) {
	if t == nil || (t.Kind != layout.KindStruct && t.Kind != layout.KindArray) {
		return 0, nil
	}
	addr, _, err := r.LayoutOf(t)
	if err != nil {
		return 0, err
	}
	return addr, nil
}

// StackRaw reserves unregistered stack scratch (spill slots, saved
// registers): plain frame space with no object metadata, costing only the
// stack-pointer arithmetic.
func (r *Runtime) StackRaw(size uint64) (uint64, error) {
	r.M.Tick(1)
	p, err := r.stackArena.Sbrk(size)
	return p, wrapAlloc(err)
}

// StackMark snapshots the stack break for LIFO release of local frames.
func (r *Runtime) StackMark() uint64 { return r.stackArena.Mark() }

// StackRelease pops local frames back to a mark (function return). Pages
// stay mapped, like real stack RSS. A mark outside the stack's live
// range (corrupted or stale) is rejected with a typed allocator trap and
// leaves the stack unchanged.
func (r *Runtime) StackRelease(mark uint64) error {
	return wrapAlloc(r.stackArena.Release(mark))
}

// AllocLocal places a local variable of type t on the stack and registers
// it (Listing 2's IFP_Register on `boo`). The compiler prefers the
// local-offset scheme and falls back to the global table for oversized
// locals (§4.2.2). In baseline mode it is a plain stack bump.
func (r *Runtime) AllocLocal(t *layout.Type) (Obj, error) {
	o, err := r.allocLocalSized(t, t.Size())
	return o, wrapAlloc(err)
}

// AllocLocalBytes places an untyped local buffer (no layout table).
func (r *Runtime) AllocLocalBytes(size uint64) (Obj, error) {
	o, err := r.allocLocalSized(nil, size)
	return o, wrapAlloc(err)
}

func (r *Runtime) allocLocalSized(t *layout.Type, size uint64) (Obj, error) {
	if size == 0 {
		size = 1
	}
	if !r.Instrumented() {
		r.M.Tick(1) // stack-pointer adjustment
		base, err := r.stackArena.Sbrk(size)
		if err != nil {
			return Obj{}, err
		}
		return Obj{P: base, Size: size, Kind: KindLegacy}, nil
	}
	layoutPtr, err := r.layoutFor(t)
	if err != nil {
		return Obj{}, err
	}
	hasLT := layoutPtr != 0

	if size <= tag.MaxLocalObjectSize {
		_, footprint := metadata.LocalPlacement(0, size)
		base, err := r.stackArena.Sbrk(footprint)
		if err != nil {
			return Obj{}, err
		}
		p, metaAddr, err := r.registerLocalOffset(base, size, layoutPtr)
		if err != nil {
			return Obj{}, err
		}
		r.Stats.LocalObjects++
		if hasLT {
			r.Stats.LocalWithLT++
		}
		return Obj{P: p, B: r.M.IfpBnd(p, size), Size: size, Kind: KindLocal, metaAddr: metaAddr}, nil
	}

	// Global-table fallback for big locals.
	base, err := r.stackArena.Sbrk(size)
	if err != nil {
		return Obj{}, err
	}
	row, err := r.registerGlobalRow(base, size, layoutPtr)
	if err != nil {
		return Obj{}, err
	}
	p := r.M.IfpMdGlobal(base, row)
	r.Stats.LocalObjects++
	if hasLT {
		r.Stats.LocalWithLT++
	}
	return Obj{P: p, B: r.M.IfpBnd(p, size), Size: size, Kind: KindGlobalRow, row: row}, nil
}

// DeallocLocal cleans up a local's metadata when its frame dies
// (IFP_Deregister in Listing 2). The caller separately pops the frame with
// StackRelease.
func (r *Runtime) DeallocLocal(o Obj) error {
	switch o.Kind {
	case KindLegacy:
		return nil
	case KindLocal:
		return r.clearLocalOffset(o.metaAddr)
	case KindGlobalRow:
		return r.releaseGlobalRow(o.row)
	}
	return fmt.Errorf("rt: DeallocLocal of %v object", o.Kind)
}

// RegisterGlobal registers a global variable of type t (the "getptr"
// instrumentation of §4.2.2 initializes metadata on first use; we register
// eagerly at startup, which is equivalent for accounting). Small globals
// use the local-offset scheme; large ones the global table.
func (r *Runtime) RegisterGlobal(t *layout.Type) (Obj, error) {
	o, err := r.registerGlobalSized(t, t.Size())
	return o, wrapAlloc(err)
}

// RegisterGlobalBytes registers an untyped global buffer.
func (r *Runtime) RegisterGlobalBytes(size uint64) (Obj, error) {
	o, err := r.registerGlobalSized(nil, size)
	return o, wrapAlloc(err)
}

func (r *Runtime) registerGlobalSized(t *layout.Type, size uint64) (Obj, error) {
	if size == 0 {
		size = 1
	}
	if !r.Instrumented() {
		base, err := r.globalArena.Sbrk(size)
		if err != nil {
			return Obj{}, err
		}
		return Obj{P: base, Size: size, Kind: KindLegacy}, nil
	}
	layoutPtr, err := r.layoutFor(t)
	if err != nil {
		return Obj{}, err
	}
	hasLT := layoutPtr != 0

	if size <= tag.MaxLocalObjectSize {
		_, footprint := metadata.LocalPlacement(0, size)
		base, err := r.globalArena.Sbrk(footprint)
		if err != nil {
			return Obj{}, err
		}
		p, metaAddr, err := r.registerLocalOffset(base, size, layoutPtr)
		if err != nil {
			return Obj{}, err
		}
		r.Stats.GlobalObjects++
		if hasLT {
			r.Stats.GlobalWithLT++
		}
		return Obj{P: p, B: r.M.IfpBnd(p, size), Size: size, Kind: KindLocal, metaAddr: metaAddr}, nil
	}

	base, err := r.globalArena.Sbrk(size)
	if err != nil {
		return Obj{}, err
	}
	row, err := r.registerGlobalRow(base, size, layoutPtr)
	if err != nil {
		return Obj{}, err
	}
	p := r.M.IfpMdGlobal(base, row)
	r.Stats.GlobalObjects++
	if hasLT {
		r.Stats.GlobalWithLT++
	}
	return Obj{P: p, B: r.M.IfpBnd(p, size), Size: size, Kind: KindGlobalRow, row: row}, nil
}
