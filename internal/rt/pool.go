package rt

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// reuseSystems gates the pool globally. Default on; SetReuseSystems(false)
// is the escape hatch that makes Acquire construct fresh runtimes and
// Release discard them, restoring the pre-pool lifecycle exactly.
var reuseSystems atomic.Bool

func init() { reuseSystems.Store(true) }

// ReuseSystems reports whether Acquire/Release recycle runtimes.
func ReuseSystems() bool { return reuseSystems.Load() }

// SetReuseSystems toggles runtime reuse process-wide. Turning it off does
// not drain already-idle runtimes (they are simply never handed out again
// until reuse is re-enabled); use Pool.Drain to drop them eagerly.
func SetReuseSystems(on bool) { reuseSystems.Store(on) }

// PoolStats is a snapshot of a pool's counters. Hits are acquisitions
// served by resetting an idle runtime; Misses constructed a fresh one;
// Releases counts runtimes returned; Discards counts returns dropped
// because the pool was full (or reuse was off); Idle is the current
// parked count.
type PoolStats struct {
	Hits     uint64
	Misses   uint64
	Releases uint64
	Discards uint64
	Idle     uint64
}

// Pool is a concurrency-safe free list of runtimes. Acquire pops an idle
// runtime and Resets it into the requested mode (or builds a fresh one);
// Release parks a runtime for the next Acquire. Because Reset restores
// every New-time invariant, a pooled runtime is observationally identical
// to a fresh one — callers may release runtimes in any state, including
// mid-trap or deliberately corrupted by chaos scenarios.
type Pool struct {
	maxIdle int

	mu   sync.Mutex
	idle []*Runtime

	hits     atomic.Uint64
	misses   atomic.Uint64
	releases atomic.Uint64
	discards atomic.Uint64
}

// NewPool builds a pool retaining up to maxIdle idle runtimes; maxIdle <= 0
// selects a default sized to the machine (enough for every worker in the
// experiment grid or the server's admission pool to hold one runtime plus
// headroom for bursts).
func NewPool(maxIdle int) *Pool {
	if maxIdle <= 0 {
		maxIdle = 2 * runtime.NumCPU()
		if maxIdle < 8 {
			maxIdle = 8
		}
	}
	return &Pool{maxIdle: maxIdle}
}

// DefaultPool is the process-wide pool behind the package-level Acquire
// and Release; every hot path (VM entry, server workers, experiment grid,
// Juliet, chaos) shares it.
var DefaultPool = NewPool(0)

// Acquire returns a runtime in the given mode: a reset idle runtime when
// the pool has one, a fresh construction otherwise. With reuse disabled
// it always constructs.
func (p *Pool) Acquire(mode Mode) *Runtime {
	if !ReuseSystems() {
		return New(mode)
	}
	p.mu.Lock()
	var r *Runtime
	if n := len(p.idle); n > 0 {
		r = p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
	}
	p.mu.Unlock()
	if r == nil {
		p.misses.Add(1)
		return New(mode)
	}
	p.hits.Add(1)
	r.Reset(mode)
	return r
}

// Release parks a runtime for reuse. nil is ignored, as is any release
// while reuse is disabled or the pool is full (the runtime is left to the
// GC). The runtime is reset lazily — at the next Acquire, which knows the
// target mode — so Release itself is cheap.
func (p *Pool) Release(r *Runtime) {
	if r == nil {
		return
	}
	p.releases.Add(1)
	if !ReuseSystems() {
		p.discards.Add(1)
		return
	}
	p.mu.Lock()
	if len(p.idle) < p.maxIdle {
		p.idle = append(p.idle, r)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.discards.Add(1)
}

// Drain drops every idle runtime, returning how many were dropped.
func (p *Pool) Drain() int {
	p.mu.Lock()
	n := len(p.idle)
	for i := range p.idle {
		p.idle[i] = nil
	}
	p.idle = p.idle[:0]
	p.mu.Unlock()
	return n
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	idle := uint64(len(p.idle))
	p.mu.Unlock()
	return PoolStats{
		Hits:     p.hits.Load(),
		Misses:   p.misses.Load(),
		Releases: p.releases.Load(),
		Discards: p.discards.Load(),
		Idle:     idle,
	}
}

// Acquire checks a runtime out of the DefaultPool.
func Acquire(mode Mode) *Runtime { return DefaultPool.Acquire(mode) }

// Release returns a runtime to the DefaultPool.
func Release(r *Runtime) { DefaultPool.Release(r) }
