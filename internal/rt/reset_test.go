package rt

import (
	"fmt"
	"sync"
	"testing"

	"infat/internal/machine"
)

// exerciseRuntime drives one representative guest program against r —
// globals, locals, heap objects of every reachable scheme, promotes,
// subobject narrowing, frees, layout interning — and returns a digest of
// every guest-visible observable: a checksum of loaded values, the full
// counter set, runtime stats, and the memory footprint.
func exerciseRuntime(t *testing.T, r *Runtime) string {
	t.Helper()
	g, err := r.RegisterGlobal(nodeT)
	if err != nil {
		t.Fatal(err)
	}
	l, err := r.AllocLocal(nodeT)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	var objs []Obj
	for i := 0; i < 24; i++ {
		o, err := r.Malloc(nodeT, 1)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
		if err := r.Store(o.P, uint64(i)*3+1, 8, o.B); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range []Obj{g, l} {
		if err := r.Store(o.P, 0x55, 8, o.B); err != nil {
			t.Fatal(err)
		}
	}
	for i, o := range objs {
		q, qb := r.Promote(o.P)
		v, err := r.Load(q, 8, qb)
		if err != nil {
			t.Fatal(err)
		}
		sum = sum*31 + v
		if i%3 == 0 {
			if err := r.Free(o); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A second allocation wave reuses freed chunks/slots, exercising the
	// free lists the reset must have emptied.
	for i := 0; i < 8; i++ {
		o, err := r.MallocBytes(48)
		if err != nil {
			t.Fatal(err)
		}
		sum = sum*31 + o.P
	}
	addr, _, err := r.LayoutOf(nodeT)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("sum=%#x layout=%#x counters=%+v stats=%+v footprint=%d",
		sum, addr, r.M.C, r.Stats, r.Footprint())
}

// dirty runs a different, messier program so the pre-reset state shares
// nothing with the exercise pattern, then corrupts machine state the way
// chaos scenarios do.
func dirty(t *testing.T, r *Runtime) {
	t.Helper()
	for i := 0; i < 40; i++ {
		o, err := r.MallocBytes(uint64(16 + i*8))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Store(o.P, ^uint64(i), 8, o.B); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.StackRaw(1 << 12); err != nil {
		t.Fatal(err)
	}
	r.M.NoPromote = true
	r.M.NoNarrow = true
	r.M.FuelLimit = 123
	r.M.Cost.MissPenalty = 999
	r.ForceGlobalTable = true
	r.ExplicitChecks = true
	r.InjectAllocFault(50)
}

// TestResetRestoresNewInvariants: for every mode, a dirtied-then-reset
// runtime must be observationally identical to a fresh one over a full
// guest program — same checksums, counters, stats, layout addresses, and
// footprint. This is the determinism contract the pool relies on.
func TestResetRestoresNewInvariants(t *testing.T) {
	for _, mode := range Modes {
		t.Run(mode.String(), func(t *testing.T) {
			want := exerciseRuntime(t, New(mode))

			r := New(Wrapped) // start in a different mode on purpose
			dirty(t, r)
			r.Reset(mode)
			if got := exerciseRuntime(t, r); got != want {
				t.Errorf("reused run diverges from fresh\nfresh:  %s\nreused: %s", want, got)
			}

			// A second reuse cycle must hold too.
			r.Reset(mode)
			if got := exerciseRuntime(t, r); got != want {
				t.Errorf("second reuse diverges from fresh\nfresh:  %s\nreused: %s", got, want)
			}
		})
	}
}

// TestResetClearsInjectedFaultsAndAblations: every knob chaos or the
// ablations may have flipped is back at its default after Reset.
func TestResetClearsInjectedFaultsAndAblations(t *testing.T) {
	r := New(Subheap)
	dirty(t, r)
	r.Reset(Subheap)
	m := r.M
	if m.NoPromote || m.NoNarrow || m.FuelLimit != 0 {
		t.Errorf("machine flags survive reset: NoPromote=%v NoNarrow=%v FuelLimit=%d",
			m.NoPromote, m.NoNarrow, m.FuelLimit)
	}
	if m.Cost != machine.DefaultCost {
		t.Errorf("cost model survives reset: %+v", m.Cost)
	}
	if r.ForceGlobalTable || r.ExplicitChecks {
		t.Error("ablation flags survive reset")
	}
	if r.Footprint() != 0 {
		t.Errorf("footprint after reset = %d, want 0", r.Footprint())
	}
	if c := (machine.Counters{}); m.C != c {
		t.Errorf("counters after reset = %+v, want zero", m.C)
	}
	// The injected alloc fault must be disarmed: 60 allocations succeed.
	for i := 0; i < 60; i++ {
		if _, err := r.MallocBytes(32); err != nil {
			t.Fatalf("alloc %d after reset: %v (injected fault leaked?)", i, err)
		}
	}
}

// TestResetSwitchesMode: Reset adopts the requested mode, including the
// Baseline special case (no global table registered with the machine).
func TestResetSwitchesMode(t *testing.T) {
	r := New(Subheap)
	if r.M.GlobalBase == 0 {
		t.Fatal("instrumented runtime has no global table")
	}
	r.Reset(Baseline)
	if r.Mode() != Baseline || r.Instrumented() {
		t.Error("reset did not adopt baseline mode")
	}
	if r.M.GlobalBase != 0 || r.M.GlobalCap != 0 {
		t.Error("baseline runtime kept a global table registration")
	}
	r.Reset(Wrapped)
	if r.Mode() != Wrapped || r.M.GlobalBase == 0 {
		t.Error("reset did not restore instrumented state")
	}
}

// TestPoolRecyclesAndCounts: the pool hands a released runtime back out
// (reset), counts hits/misses/releases, and honors the escape hatch.
func TestPoolRecyclesAndCounts(t *testing.T) {
	defer SetReuseSystems(true)
	SetReuseSystems(true)
	p := NewPool(4)

	r1 := p.Acquire(Subheap)
	p.Release(r1)
	r2 := p.Acquire(Wrapped)
	if r2 != r1 {
		t.Error("pool did not recycle the idle runtime")
	}
	if r2.Mode() != Wrapped {
		t.Errorf("recycled runtime mode = %v, want wrapped", r2.Mode())
	}
	p.Release(r2)
	ps := p.Stats()
	if ps.Misses != 1 || ps.Hits != 1 || ps.Releases != 2 || ps.Idle != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 2 releases, 1 idle", ps)
	}

	if n := p.Drain(); n != 1 {
		t.Errorf("Drain dropped %d, want 1", n)
	}

	SetReuseSystems(false)
	r3 := p.Acquire(Subheap)
	p.Release(r3)
	if r4 := p.Acquire(Subheap); r4 == r3 {
		t.Error("escape hatch still recycled a runtime")
	}
	if ps := p.Stats(); ps.Idle != 0 {
		t.Errorf("idle = %d with reuse disabled, want 0", ps.Idle)
	}

	p.Release(nil) // must not panic
}

// TestPoolCapsIdleRuntimes: releases beyond maxIdle are discarded.
func TestPoolCapsIdleRuntimes(t *testing.T) {
	defer SetReuseSystems(true)
	SetReuseSystems(true)
	p := NewPool(2)
	for i := 0; i < 5; i++ {
		p.Release(New(Subheap))
	}
	ps := p.Stats()
	if ps.Idle != 2 || ps.Discards != 3 || ps.Releases != 5 {
		t.Errorf("stats = %+v, want idle 2, discards 3, releases 5", ps)
	}
}

// TestPoolConcurrentDeterminism: many goroutines hammering one pool must
// each observe runs identical to a fresh serial run — run under -race in
// CI, this is the reset-state-leak detector.
func TestPoolConcurrentDeterminism(t *testing.T) {
	defer SetReuseSystems(true)
	SetReuseSystems(true)
	want := exerciseRuntime(t, New(Subheap))

	p := NewPool(8)
	const goroutines, iters = 8, 6
	errs := make(chan string, goroutines*iters)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r := p.Acquire(Subheap)
				if got := exerciseRuntime(t, r); got != want {
					errs <- fmt.Sprintf("pooled run diverged:\nfresh:  %s\npooled: %s", want, got)
				}
				p.Release(r)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
