// Package rt is the In-Fat Pointer runtime library (§4.2): it initializes
// the machine environment (global metadata table, subheap control
// registers), interns per-type layout tables into guest memory, registers
// local/global/heap objects under the appropriate metadata scheme, and
// provides the two §4.2.1 allocators — the *wrapped* allocator (over a
// glibc-style free list, using local-offset metadata with a global-table
// fallback) and the *subheap* allocator (a pool allocator over a buddy
// allocator).
//
// A Runtime also runs in Baseline mode, where no instrumentation happens
// at all: workloads run the same code against plain, untagged pointers.
// Comparing an instrumented run against a Baseline run of the same
// workload is exactly the paper's Figure 10/11/12 methodology.
package rt

import (
	"fmt"

	"infat/internal/heap"
	"infat/internal/layout"
	"infat/internal/machine"
	"infat/internal/metadata"
	"infat/internal/tag"
	"infat/internal/temporal"
)

// Mode selects the allocator/instrumentation configuration of a run
// (§5.2: baseline, subheap-allocator version, wrapped-allocator version;
// the no-promote variants are the machine's NoPromote flag on top).
type Mode int

// Run modes.
const (
	// Baseline runs uninstrumented: legacy pointers, no metadata.
	Baseline Mode = iota
	// Subheap instruments with the subheap allocator for heap objects.
	Subheap
	// Wrapped instruments with the wrapped allocator for heap objects.
	Wrapped
	// Hybrid instruments with dynamic allocator selection — the §4.2.1
	// future-work exploration: allocation sites that repeatedly produce
	// the same (size, type) signature graduate to subheap pools (their
	// metadata amortizes), while one-off allocations stay on the cheaper-
	// to-set-up wrapped path.
	Hybrid
	// IFPTemporal is the xTag-style temporal extension (DESIGN.md §14):
	// Hybrid's allocator selection, but the 12 shared metadata/subobject
	// tag bits carry an allocation generation instead of a subobject
	// index. Free paths bump a per-chunk generation store, malloc stamps
	// the current generation, and promote/check paths trap TrapTemporal
	// on mismatch (use-after-free) or on freeing through a stale pointer
	// (double free). Subobject narrowing is unavailable — the bit budget
	// is spent on the generation — so protection is spatial at object
	// granularity plus temporal.
	IFPTemporal
)

func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case Subheap:
		return "subheap"
	case Wrapped:
		return "wrapped"
	case Hybrid:
		return "hybrid"
	case IFPTemporal:
		return "ifp-temporal"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Modes lists every run configuration in declaration order.
var Modes = []Mode{Baseline, Subheap, Wrapped, Hybrid, IFPTemporal}

// ParseMode parses a mode name as spelled by the command-line flags and
// the ifp-serve request API (the String form of each Mode).
func ParseMode(s string) (Mode, error) {
	for _, m := range Modes {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mode %q (want baseline, subheap, wrapped, hybrid, or ifp-temporal)", s)
}

// Guest address-space map. All regions are far apart; the memory is sparse
// so only touched pages cost footprint.
const (
	globalTableBase = 0x0001_0000
	globalTableCap  = tag.MaxGlobalIndex + 1

	layoutBase = 0x0010_0000
	layoutSize = 4 << 20

	globalsBase = 0x0100_0000
	globalsSize = 32 << 20

	stackBase = 0x0300_0000
	stackSize = 32 << 20

	flHeapBase = 0x1000_0000
	flHeapSize = 512 << 20

	buddyBase = 0x4000_0000
	buddyLog2 = 29 // 512 MiB region
	buddyMin  = 12 // 4 KiB min block
)

// Stats counts instrumented objects per category, the Table-4 left half.
// "WithLT" counts objects whose metadata includes layout-table
// information.
type Stats struct {
	GlobalObjects, GlobalWithLT uint64
	LocalObjects, LocalWithLT   uint64
	HeapObjects, HeapWithLT     uint64
	// HeapPool counts the heap objects served from subheap pools (the
	// rest took the wrapped or global-table paths) — the split Hybrid
	// mode's dynamic selection produces.
	HeapPool uint64
}

// Ptr is a tagged guest pointer.
type Ptr = uint64

// Runtime is one process environment.
type Runtime struct {
	M    *machine.Machine
	mode Mode

	layoutArena *heap.Arena
	globalArena *heap.Arena
	stackArena  *heap.Arena
	fl          *heap.FreeList
	buddy       *heap.Buddy

	tables map[*layout.Type]*ltInfo

	// Global metadata table row management.
	freeRows []uint16
	nextRow  uint16

	// Subheap pools.
	pools    map[poolKey]*pool
	blocks   map[uint64]*block
	crOfBits map[uint8]uint16
	nextCR   int

	// Wrapped-allocator bookkeeping: payload base -> true when the chunk
	// was over-allocated for local-offset metadata.
	wrappedLocal map[uint64]bool
	// Heap global-table registrations: payload base -> row index.
	heapRows map[uint64]uint16

	// ForceGlobalTable is the single-scheme ablation (DESIGN.md §5.2):
	// every heap allocation is registered in the global table, as a
	// design that spent all 12 tag bits on one lookup scheme would —
	// narrowing becomes impossible and the table's 4096-row capacity
	// becomes a real constraint.
	ForceGlobalTable bool

	// ExplicitChecks is the implicit-checking ablation (§4.1.1): every
	// checked access issues an explicit ifpchk instead of riding the
	// load-store unit's implicit check, costing one extra instruction
	// per access.
	ExplicitChecks bool

	// sigCount tracks how many allocations each (size, layout) signature
	// has seen, for Hybrid mode's graduation policy.
	sigCount map[poolKey]int

	// allocFaultAt is the one-shot injected-fault countdown armed by
	// InjectAllocFault (0 = disarmed).
	allocFaultAt int

	// gens is the temporal-mode allocation-generation store (one per
	// runtime, reset with it). Only consulted when mode == IFPTemporal;
	// the machine reads it through M.Gens during promote.
	gens *temporal.Store

	Stats Stats
}

type ltInfo struct {
	table *layout.Table
	addr  uint64
}

// New creates a runtime in the given mode with a fresh machine.
func New(mode Mode) *Runtime {
	m := machine.New()
	// The buddy geometry is a package constant; a construction error here
	// is a provably-internal invariant violation (a broken address-space
	// map), never a guest-reachable condition — so panicking is correct.
	buddy, err := heap.NewBuddy(buddyBase, buddyLog2, buddyMin)
	if err != nil {
		panic(err)
	}
	r := &Runtime{
		M:            m,
		mode:         mode,
		layoutArena:  heap.NewArena(layoutBase, layoutSize),
		globalArena:  heap.NewArena(globalsBase, globalsSize),
		stackArena:   heap.NewArena(stackBase, stackSize),
		fl:           heap.NewFreeList(m, heap.NewArena(flHeapBase, flHeapSize)),
		buddy:        buddy,
		tables:       make(map[*layout.Type]*ltInfo),
		pools:        make(map[poolKey]*pool),
		blocks:       make(map[uint64]*block),
		crOfBits:     make(map[uint8]uint16),
		wrappedLocal: make(map[uint64]bool),
		heapRows:     make(map[uint64]uint16),
		sigCount:     make(map[poolKey]int),
		gens:         temporal.NewStore(),
	}
	if mode != Baseline {
		m.GlobalBase = globalTableBase
		m.GlobalCap = uint32(globalTableCap)
	}
	if mode == IFPTemporal {
		m.TemporalTags = true
		m.Gens = r.gens
	}
	return r
}

// Reset restores every New-time invariant — machine architectural state,
// empty arenas and allocators, no interned layout tables, no global-table
// rows, no pools, default ablation flags, zero stats — without
// reallocating the backing structures, and switches the runtime to the
// given mode. Layout tables are invalidated rather than kept: the layout
// arena rewinds to layoutBase, so re-interning the same types in the same
// order reproduces the same guest addresses a fresh runtime would assign,
// which is what keeps reused-vs-fresh runs byte-identical.
func (r *Runtime) Reset(mode Mode) {
	r.M.Reset()
	r.mode = mode
	r.layoutArena.Reset()
	r.globalArena.Reset()
	r.stackArena.Reset()
	r.fl.Reset()
	r.buddy.Reset()
	clear(r.tables)
	r.freeRows = r.freeRows[:0]
	r.nextRow = 0
	clear(r.pools)
	clear(r.blocks)
	clear(r.crOfBits)
	r.nextCR = 0
	clear(r.wrappedLocal)
	clear(r.heapRows)
	clear(r.sigCount)
	r.ForceGlobalTable = false
	r.ExplicitChecks = false
	r.allocFaultAt = 0
	r.gens.Reset()
	r.Stats = Stats{}
	if mode != Baseline {
		r.M.GlobalBase = globalTableBase
		r.M.GlobalCap = uint32(globalTableCap)
	}
	if mode == IFPTemporal {
		r.M.TemporalTags = true
		r.M.Gens = r.gens
	}
}

// Mode returns the runtime's mode.
func (r *Runtime) Mode() Mode { return r.mode }

// Gens exposes the temporal generation store (always non-nil; only
// consulted in IFPTemporal mode). Chaos scenarios corrupt it directly and
// tests inspect it.
func (r *Runtime) Gens() *temporal.Store { return r.gens }

// Instrumented reports whether the run carries IFP instrumentation.
func (r *Runtime) Instrumented() bool { return r.mode != Baseline }

// LayoutOf interns the layout table for t, writing it into guest memory on
// first use, and returns its guest address. Layout tables are generated at
// compile time (§3.1), so writing them is free of dynamic instructions —
// they are static data in the program image. All objects of a type share
// one table (§3.4).
func (r *Runtime) LayoutOf(t *layout.Type) (uint64, *layout.Table, error) {
	if t == nil {
		return 0, nil, nil
	}
	if info, ok := r.tables[t]; ok {
		return info.addr, info.table, nil
	}
	tb, err := layout.Build(t)
	if err != nil {
		return 0, nil, err
	}
	words := tb.Encode()
	addr, err := r.layoutArena.Sbrk(uint64(len(words)) * 8)
	if err != nil {
		return 0, nil, err
	}
	for i, w := range words {
		if err := r.M.Mem.Store64(addr+uint64(i)*8, w); err != nil {
			return 0, nil, err
		}
	}
	r.tables[t] = &ltInfo{table: tb, addr: addr}
	return addr, tb, nil
}

// SubobjIndexOf resolves a member path (e.g. "array[].v3") of t to the
// layout-table index the compiler would embed in ifpidx instrumentation.
func (r *Runtime) SubobjIndexOf(t *layout.Type, path string) (uint16, error) {
	_, tb, err := r.LayoutOf(t)
	if err != nil {
		return 0, err
	}
	if tb == nil {
		return 0, fmt.Errorf("rt: no layout table for nil type")
	}
	idx, ok := tb.IndexOf(path)
	if !ok {
		return 0, fmt.Errorf("rt: no subobject %q in %s", path, t.Name)
	}
	return idx, nil
}

// allocRow reserves a free global-table row.
func (r *Runtime) allocRow() (uint16, error) {
	if n := len(r.freeRows); n > 0 {
		idx := r.freeRows[n-1]
		r.freeRows = r.freeRows[:n-1]
		return idx, nil
	}
	if int(r.nextRow) >= globalTableCap {
		return 0, fmt.Errorf("%w (%d rows)", ErrTableFull, globalTableCap)
	}
	idx := r.nextRow
	r.nextRow++
	return idx, nil
}

// writeRow stores a global-table row; registration costs the two stores
// (runtime-library work, instrumented).
func (r *Runtime) writeRow(idx uint16, row metadata.GlobalRow) error {
	w := row.Encode()
	a := metadata.RowAddr(globalTableBase, idx)
	if err := r.M.RawStore64(a, w[0]); err != nil {
		return err
	}
	return r.M.RawStore64(a+8, w[1])
}

// registerGlobalRow allocates and fills a table row for an object.
func (r *Runtime) registerGlobalRow(base, size, layoutPtr uint64) (uint16, error) {
	if size > metadata.MaxGlobalObjectSize {
		return 0, fmt.Errorf("rt: object of %d bytes exceeds global-table size cap", size)
	}
	idx, err := r.allocRow()
	if err != nil {
		return 0, err
	}
	r.M.Tick(rowRegisterCost)
	if err := r.writeRow(idx, metadata.GlobalRow{Base: base, Size: size, LayoutPtr: layoutPtr}); err != nil {
		return 0, err
	}
	return idx, nil
}

// releaseGlobalRow zeroes and recycles a row.
func (r *Runtime) releaseGlobalRow(idx uint16) error {
	r.M.Tick(rowRegisterCost)
	if err := r.writeRow(idx, metadata.GlobalRow{}); err != nil {
		return err
	}
	r.freeRows = append(r.freeRows, idx)
	return nil
}

// Runtime-library call costs (dynamic instructions) beyond the explicit
// memory traffic: argument marshalling, branching, free-row search.
const (
	rowRegisterCost = 12
	localSetupCost  = 6
	poolAllocCost   = heap.PoolAllocCost
	poolFreeCost    = heap.PoolFreeCost
	blockSetupCost  = 30
)

// Footprint returns the guest pages currently backed — the simulator's
// maximum-resident-size analogue used by Figure 12 (pages are never
// returned, so this is a high-water mark).
func (r *Runtime) Footprint() uint64 { return r.M.Mem.MappedBytes() }
