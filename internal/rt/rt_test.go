package rt

import (
	"errors"
	"testing"

	"infat/internal/heap"
	"infat/internal/layout"
	"infat/internal/machine"
	"infat/internal/tag"
)

var nodeT = layout.StructOf("node",
	layout.F("key", layout.Long),
	layout.F("left", layout.PointerTo(nil)),
	layout.F("right", layout.PointerTo(nil)))

func TestModes(t *testing.T) {
	for _, m := range []Mode{Baseline, Subheap, Wrapped, Hybrid, Mode(9)} {
		if m.String() == "" {
			t.Error("empty mode string")
		}
	}
	if New(Baseline).Instrumented() {
		t.Error("baseline instrumented")
	}
	if !New(Subheap).Instrumented() || !New(Wrapped).Instrumented() || !New(Hybrid).Instrumented() {
		t.Error("instrumented modes not instrumented")
	}
	if New(Wrapped).Mode() != Wrapped {
		t.Error("mode accessor")
	}
}

func TestHybridGraduation(t *testing.T) {
	r := New(Hybrid)
	var objs []Obj
	for i := 0; i < 12; i++ {
		o, err := r.Malloc(nodeT, 1)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
	}
	// The first hybridGraduation allocations take the wrapped path; the
	// signature then graduates to a subheap pool.
	if objs[0].Kind != KindWrappedLocal {
		t.Errorf("first alloc kind = %v, want wrapped-local", objs[0].Kind)
	}
	if objs[11].Kind != KindSubheapSlot {
		t.Errorf("12th alloc kind = %v, want subheap slot", objs[11].Kind)
	}
	if r.Stats.HeapPool == 0 || r.Stats.HeapPool == r.Stats.HeapObjects {
		t.Errorf("pool split = %d of %d, want a mix", r.Stats.HeapPool, r.Stats.HeapObjects)
	}
	// Every object promotes to its own bounds and frees cleanly despite
	// the mixed schemes (tag-dispatched free).
	for i, o := range objs {
		_, b := r.M.Promote(o.P)
		if !b.Valid || b.B.Lower != o.Base() {
			t.Errorf("obj %d promote = %+v", i, b)
		}
		if err := r.Free(o); err != nil {
			t.Errorf("obj %d free: %v", i, err)
		}
	}
	// Oversized allocations fall back to the global table.
	big, err := r.MallocBytes(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if big.Kind != KindWrappedGlobal {
		t.Errorf("big alloc kind = %v", big.Kind)
	}
}

func TestLayoutInterning(t *testing.T) {
	r := New(Wrapped)
	a1, tb1, err := r.LayoutOf(nodeT)
	if err != nil || a1 == 0 || tb1 == nil {
		t.Fatalf("layout = %#x (err %v)", a1, err)
	}
	a2, tb2, _ := r.LayoutOf(nodeT)
	if a1 != a2 || tb1 != tb2 {
		t.Error("layout table not shared between objects of the same type")
	}
	// Encoded table readable from guest memory.
	w0, err := r.M.Mem.Load64(a1)
	if err != nil {
		t.Fatal(err)
	}
	if e := layout.DecodeEntry(w0, 0); e.Bound != nodeT.Size() {
		t.Errorf("root entry bound = %d", e.Bound)
	}
	if idx, err := r.SubobjIndexOf(nodeT, "left"); err != nil || idx != 2 {
		t.Errorf("SubobjIndexOf(left) = (%d, %v)", idx, err)
	}
	if _, err := r.SubobjIndexOf(nodeT, "ghost"); err == nil {
		t.Error("ghost path resolved")
	}
}

func TestAllocLocalInstrumented(t *testing.T) {
	r := New(Subheap)
	o, err := r.AllocLocal(nodeT)
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != KindLocal {
		t.Fatalf("kind = %v", o.Kind)
	}
	if tag.SchemeOf(o.P) != tag.SchemeLocalOffset {
		t.Errorf("scheme = %v", tag.SchemeOf(o.P))
	}
	if !o.B.Valid || o.B.B.Span() != nodeT.Size() {
		t.Errorf("bounds = %+v", o.B)
	}
	// Promote finds the metadata and the layout table.
	p := r.SetSub(o.P, 1) // key
	_, b := r.M.Promote(p)
	if !b.Valid || b.B.Span() != 8 {
		t.Errorf("narrowed bounds = %+v", b)
	}
	if r.Stats.LocalObjects != 1 || r.Stats.LocalWithLT != 1 {
		t.Errorf("stats = %+v", r.Stats)
	}
	// Deregistration invalidates later promotes (temporal safety within
	// the metadata's power, §3: errors that invalidate object metadata).
	if err := r.DeallocLocal(o); err != nil {
		t.Fatal(err)
	}
	q, b := r.M.Promote(o.P)
	if b.Valid || tag.PoisonOf(q) != tag.Invalid {
		t.Error("promote after deregistration succeeded")
	}
}

func TestAllocLocalUntyped(t *testing.T) {
	r := New(Wrapped)
	o, err := r.AllocLocalBytes(64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.LocalObjects != 1 || r.Stats.LocalWithLT != 0 {
		t.Errorf("stats = %+v", r.Stats)
	}
	_ = o
}

func TestAllocLocalBigFallsBackToGlobalTable(t *testing.T) {
	r := New(Subheap)
	big := layout.ArrayOf(layout.Long, 4096) // 32 KiB > 1008
	o, err := r.AllocLocal(big)
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != KindGlobalRow || tag.SchemeOf(o.P) != tag.SchemeGlobalTable {
		t.Fatalf("kind = %v scheme = %v", o.Kind, tag.SchemeOf(o.P))
	}
	_, b := r.M.Promote(o.P)
	if !b.Valid || b.B.Span() != big.Size() {
		t.Errorf("bounds = %+v", b)
	}
	if err := r.DeallocLocal(o); err != nil {
		t.Fatal(err)
	}
	if _, b := r.M.Promote(o.P); b.Valid {
		t.Error("promote after row release succeeded")
	}
}

func TestStackMarkRelease(t *testing.T) {
	r := New(Baseline)
	m0 := r.StackMark()
	o, _ := r.AllocLocalBytes(128)
	if r.StackMark() == m0 {
		t.Error("stack did not grow")
	}
	if err := r.StackRelease(m0); err != nil {
		t.Fatal(err)
	}
	o2, _ := r.AllocLocalBytes(128)
	if o2.Base() != o.Base() {
		t.Error("stack frame not reused after release")
	}
}

func TestStackReleaseBadMark(t *testing.T) {
	// A corrupted or stale mark is rejected with a typed allocator trap
	// (never a panic) and the stack is left untouched.
	r := New(Subheap)
	if _, err := r.AllocLocalBytes(64); err != nil {
		t.Fatal(err)
	}
	live := r.StackMark()
	for _, bad := range []uint64{0, live + 4096, ^uint64(0)} {
		err := r.StackRelease(bad)
		if !machine.IsTrap(err, machine.TrapAlloc) {
			t.Errorf("StackRelease(%#x) = %v, want TrapAlloc", bad, err)
		}
		if !errors.Is(err, heap.ErrBadRelease) {
			t.Errorf("StackRelease(%#x) cause = %v, want ErrBadRelease", bad, err)
		}
		if r.StackMark() != live {
			t.Fatalf("failed release moved the stack break")
		}
	}
}

func TestInjectAllocFault(t *testing.T) {
	for _, mode := range []Mode{Wrapped, Subheap, Hybrid, Baseline} {
		r := New(mode)
		r.InjectAllocFault(3)
		var objs []Obj
		for i := 0; i < 5; i++ {
			o, err := r.MallocBytes(64)
			if i == 2 {
				// The armed ordinal fails with a typed allocator trap
				// carrying the injected-fault sentinel.
				if !machine.IsTrap(err, machine.TrapAlloc) || !errors.Is(err, ErrInjectedAllocFault) {
					t.Fatalf("%v: alloc %d err = %v, want injected TrapAlloc", mode, i, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%v: alloc %d unexpectedly failed: %v", mode, i, err)
			}
			objs = append(objs, o)
		}
		// The runtime stays fully usable: earlier objects remain live and
		// freeable after the injected failure.
		for _, o := range objs {
			if err := r.Free(o); err != nil {
				t.Fatalf("%v: free after injected fault: %v", mode, err)
			}
		}
		// Disarming works.
		r.InjectAllocFault(1)
		r.InjectAllocFault(0)
		if _, err := r.MallocBytes(64); err != nil {
			t.Fatalf("%v: disarmed fault still fired: %v", mode, err)
		}
	}
}

func TestAllocExhaustionIsTypedTrap(t *testing.T) {
	// Driving any allocator to exhaustion yields a typed TrapAlloc, never
	// a panic or an untyped error: stack arena, free list, and the global
	// metadata table.
	r := New(Subheap)
	var stackErr error
	for i := 0; i < 10_000; i++ {
		if _, stackErr = r.StackRaw(1 << 20); stackErr != nil {
			break
		}
	}
	if !machine.IsTrap(stackErr, machine.TrapAlloc) || !errors.Is(stackErr, heap.ErrOutOfMemory) {
		t.Errorf("stack exhaustion = %v, want TrapAlloc wrapping ErrOutOfMemory", stackErr)
	}

	r2 := New(Wrapped)
	var flErr error
	for i := 0; i < 10_000; i++ {
		if _, flErr = r2.MallocBytes(16 << 20); flErr != nil {
			break
		}
	}
	if !machine.IsTrap(flErr, machine.TrapAlloc) || !errors.Is(flErr, heap.ErrOutOfMemory) {
		t.Errorf("free-list exhaustion = %v, want TrapAlloc wrapping ErrOutOfMemory", flErr)
	}

	r3 := New(Wrapped)
	r3.ForceGlobalTable = true
	var rowErr error
	for i := 0; i < 10_000; i++ {
		if _, rowErr = r3.MallocBytes(16); rowErr != nil {
			break
		}
	}
	if !machine.IsTrap(rowErr, machine.TrapAlloc) || !errors.Is(rowErr, ErrTableFull) {
		t.Errorf("table exhaustion = %v, want TrapAlloc wrapping ErrTableFull", rowErr)
	}
}

func TestRegisterGlobal(t *testing.T) {
	r := New(Wrapped)
	small, err := r.RegisterGlobal(nodeT)
	if err != nil {
		t.Fatal(err)
	}
	if small.Kind != KindLocal {
		t.Errorf("small global kind = %v", small.Kind)
	}
	big, err := r.RegisterGlobalBytes(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if big.Kind != KindGlobalRow {
		t.Errorf("big global kind = %v", big.Kind)
	}
	if r.Stats.GlobalObjects != 2 || r.Stats.GlobalWithLT != 1 {
		t.Errorf("stats = %+v", r.Stats)
	}
	_, b := r.M.Promote(big.P)
	if !b.Valid || b.B.Span() != 1<<20 {
		t.Errorf("big global bounds = %+v", b)
	}
}

func TestMallocWrappedSmall(t *testing.T) {
	r := New(Wrapped)
	o, err := r.Malloc(nodeT, 1)
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != KindWrappedLocal || tag.SchemeOf(o.P) != tag.SchemeLocalOffset {
		t.Fatalf("kind = %v scheme = %v", o.Kind, tag.SchemeOf(o.P))
	}
	_, b := r.M.Promote(o.P)
	if !b.Valid || b.B.Span() != nodeT.Size() {
		t.Errorf("bounds = %+v", b)
	}
	if err := r.Free(o); err != nil {
		t.Fatal(err)
	}
	// Metadata cleared: stale pointers poison on promote.
	if q, b := r.M.Promote(o.P); b.Valid || tag.PoisonOf(q) != tag.Invalid {
		t.Error("stale promote succeeded after free")
	}
	if r.Stats.HeapObjects != 1 || r.Stats.HeapWithLT != 1 {
		t.Errorf("stats = %+v", r.Stats)
	}
}

func TestMallocWrappedLarge(t *testing.T) {
	r := New(Wrapped)
	o, err := r.Malloc(layout.Long, 1024) // 8 KiB > 1008
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != KindWrappedGlobal || tag.SchemeOf(o.P) != tag.SchemeGlobalTable {
		t.Fatalf("kind = %v", o.Kind)
	}
	_, b := r.M.Promote(o.P)
	if !b.Valid || b.B.Span() != 8192 {
		t.Errorf("bounds = %+v", b)
	}
	if err := r.Free(o); err != nil {
		t.Fatal(err)
	}
	if _, b := r.M.Promote(o.P); b.Valid {
		t.Error("stale promote succeeded")
	}
}

func TestMallocSubheapPacksAndShares(t *testing.T) {
	r := New(Subheap)
	var objs []Obj
	for i := 0; i < 10; i++ {
		o, err := r.Malloc(nodeT, 1)
		if err != nil {
			t.Fatal(err)
		}
		if o.Kind != KindSubheapSlot || tag.SchemeOf(o.P) != tag.SchemeSubheap {
			t.Fatalf("kind = %v scheme = %v", o.Kind, tag.SchemeOf(o.P))
		}
		objs = append(objs, o)
	}
	// Same-type objects share one block: consecutive slot addresses.
	stride := objs[1].Base() - objs[0].Base()
	if stride != 32 { // node is 24 bytes -> 32-byte slots
		t.Errorf("slot stride = %d, want 32", stride)
	}
	// Every pointer promotes to its own slot's bounds.
	for i, o := range objs {
		q, b := r.M.Promote(o.P)
		if !b.Valid || b.B.Lower != o.Base() || b.B.Span() != nodeT.Size() {
			t.Errorf("obj %d bounds = %+v", i, b)
		}
		if tag.PoisonOf(q) != tag.Valid {
			t.Errorf("obj %d poison = %v", i, tag.PoisonOf(q))
		}
	}
	// Interior pointers resolve to the right slot.
	mid := r.GEP(objs[3].P, 16, objs[3].B)
	_, b := r.M.Promote(mid)
	if !b.Valid || b.B.Lower != objs[3].Base() {
		t.Errorf("interior promote = %+v", b)
	}
	// Free everything; the block returns to the buddy and stale promotes
	// fail (metadata zeroed).
	for _, o := range objs {
		if err := r.Free(o); err != nil {
			t.Fatal(err)
		}
	}
	if q, b := r.M.Promote(objs[0].P); b.Valid || tag.PoisonOf(q) != tag.Invalid {
		t.Error("stale subheap promote succeeded")
	}
}

func TestMallocSubheapSeparatesTypes(t *testing.T) {
	r := New(Subheap)
	other := layout.StructOf("other",
		layout.F("a", layout.Long), layout.F("b", layout.Long), layout.F("c", layout.Long))
	o1, err := r.Malloc(nodeT, 1)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := r.Malloc(other, 1) // same 24-byte size, different type
	if err != nil {
		t.Fatal(err)
	}
	// §3.3.2: only identical-metadata objects share a block.
	blockOf := func(p Ptr) uint64 { return tag.Addr(p) &^ (uint64(1)<<12 - 1) }
	if blockOf(o1.P) == blockOf(o2.P) {
		t.Error("different types share a subheap block")
	}
}

func TestMallocSubheapArrayNarrowing(t *testing.T) {
	// malloc(num*sizeof(T)) under the subheap allocator: a pointer into
	// element 2's subobject narrows correctly via the shared element
	// table.
	r := New(Subheap)
	o, err := r.Malloc(nodeT, 4)
	if err != nil {
		t.Fatal(err)
	}
	li, err := r.SubobjIndexOf(nodeT, "left")
	if err != nil {
		t.Fatal(err)
	}
	p := r.GEP(o.P, int64(2*nodeT.Size()+8), o.B)
	p = r.SetSub(p, li)
	_, b := r.M.Promote(p)
	if !b.Valid {
		t.Fatal("no bounds")
	}
	wantLo := o.Base() + 2*nodeT.Size() + 8
	if b.B.Lower != wantLo || b.B.Span() != 8 {
		t.Errorf("bounds = %v, want [%#x,+8)", b.B, wantLo)
	}
}

func TestMallocSubheapOversizedFallsBack(t *testing.T) {
	r := New(Subheap)
	o, err := r.MallocBytes(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != KindWrappedGlobal {
		t.Errorf("kind = %v, want global fallback", o.Kind)
	}
	if err := r.Free(o); err != nil {
		t.Fatal(err)
	}
}

func TestMallocBaseline(t *testing.T) {
	r := New(Baseline)
	o, err := r.Malloc(nodeT, 1)
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != KindLegacy || !tag.IsLegacy(o.P) {
		t.Errorf("baseline alloc = %+v", o)
	}
	if r.M.C.IfpTotal() != 0 {
		t.Error("baseline emitted IFP instructions")
	}
	if err := r.Free(o); err != nil {
		t.Fatal(err)
	}
	if r.Stats.HeapObjects != 0 {
		t.Error("baseline counted instrumented objects")
	}
}

func TestMallocLegacyInInstrumentedMode(t *testing.T) {
	r := New(Subheap)
	o, err := r.MallocLegacy(100)
	if err != nil {
		t.Fatal(err)
	}
	if !tag.IsLegacy(o.P) {
		t.Error("legacy alloc tagged")
	}
	// Promoting it bypasses lookup (the Table-4 legacy-promote path).
	_, b := r.M.Promote(o.P)
	if b.Valid {
		t.Error("legacy promote retrieved bounds")
	}
	if r.M.C.PromoteLegacy != 1 {
		t.Errorf("PromoteLegacy = %d", r.M.C.PromoteLegacy)
	}
	if err := r.Free(o); err != nil {
		t.Fatal(err)
	}
}

func TestFreeErrors(t *testing.T) {
	r := New(Subheap)
	if err := r.Free(Obj{Kind: KindLocal}); err == nil {
		t.Error("Free of local accepted")
	}
	if err := r.Free(Obj{P: 0x123450, Kind: KindWrappedLocal, Size: 8}); err == nil {
		t.Error("wild wrapped free accepted")
	}
	if err := r.Free(Obj{P: tag.MakeSubheap(0x5000, 9, 0), Kind: KindSubheapSlot}); err == nil {
		t.Error("subheap free with dead CR accepted")
	}
}

func TestOverflowDetectionEndToEnd(t *testing.T) {
	// The headline property: a heap overflow past the object is caught in
	// both instrumented modes, and intra-object overflow is caught when
	// the layout table is present.
	outer := layout.StructOf("S",
		layout.F("vulnerable", layout.ArrayOf(layout.Char, 12)),
		layout.F("sensitive", layout.ArrayOf(layout.Char, 12)))
	for _, mode := range []Mode{Subheap, Wrapped} {
		r := New(mode)
		o, err := r.Malloc(outer, 1)
		if err != nil {
			t.Fatal(err)
		}
		vi, err := r.SubobjIndexOf(outer, "vulnerable")
		if err != nil {
			t.Fatal(err)
		}
		// Simulate: char *v = s->vulnerable; (tag update + promote as if
		// reloaded from memory).
		v := r.SetSub(o.P, vi)
		v, vb := r.M.Promote(v)
		if !vb.Valid || vb.B.Span() != 12 {
			t.Fatalf("%v: vulnerable bounds = %+v", mode, vb)
		}
		// In-bounds writes succeed.
		for i := int64(0); i < 12; i++ {
			if err := r.Store(r.GEP(v, i, vb), 0x41, 1, vb); err != nil {
				t.Fatalf("%v: in-bounds write %d: %v", mode, i, err)
			}
		}
		// The 13th write (into `sensitive`) traps.
		err = r.Store(r.GEP(v, 12, vb), 0x41, 1, vb)
		if !machine.IsTrap(err, machine.TrapPoison) && !machine.IsTrap(err, machine.TrapBounds) {
			t.Errorf("%v: intra-object overflow err = %v", mode, err)
		}
	}
}

func TestBaselineMissesOverflow(t *testing.T) {
	// Sanity of the methodology: the baseline mode detects nothing.
	r := New(Baseline)
	o, _ := r.MallocBytes(12)
	v := o.P
	if err := r.Store(r.GEP(v, 12, o.B), 0x41, 1, o.B); err != nil {
		t.Errorf("baseline detected the overflow: %v", err)
	}
}

func TestMemsetMemcpy(t *testing.T) {
	r := New(Subheap)
	a, _ := r.MallocBytes(64)
	bObj, _ := r.MallocBytes(64)
	if err := r.Memset(a.P, 0x5a, 64, a.B); err != nil {
		t.Fatal(err)
	}
	if err := r.Memcpy(bObj.P, bObj.B, a.P, a.B, 61); err != nil {
		t.Fatal(err)
	}
	v, _ := r.Load(r.GEP(bObj.P, 56, bObj.B), 4, bObj.B)
	if v != 0x5a5a5a5a {
		t.Errorf("copied tail = %#x", v)
	}
	// Overflowing memset traps.
	if err := r.Memset(a.P, 1, 65, a.B); err == nil {
		t.Error("overflowing memset passed")
	}
}

func TestPointerRoundTripThroughMemory(t *testing.T) {
	// Store a tagged pointer to the heap, load it back, promote: the tag
	// survives memory and the bounds come back. Listing 2's gv_ptr flow.
	r := New(Wrapped)
	node, _ := r.Malloc(nodeT, 1)
	cell, _ := r.MallocBytes(8)
	if err := r.StorePtr(cell.P, cell.B, node.P, node.B); err != nil {
		t.Fatal(err)
	}
	q, qb, err := r.LoadPtr(cell.P, cell.B)
	if err != nil {
		t.Fatal(err)
	}
	if !qb.Valid || qb.B.Lower != node.Base() || qb.B.Span() != nodeT.Size() {
		t.Errorf("reloaded bounds = %+v", qb)
	}
	if tag.Addr(q) != node.Base() {
		t.Errorf("reloaded ptr = %#x", tag.Addr(q))
	}
}

func TestSpillReloadBounds(t *testing.T) {
	r := New(Subheap)
	o, _ := r.Malloc(nodeT, 1)
	slot, _ := r.AllocLocalBytes(16)
	if err := r.SpillBounds(slot.Base(), o.B); err != nil {
		t.Fatal(err)
	}
	b, err := r.ReloadBounds(slot.Base())
	if err != nil || b != o.B {
		t.Errorf("reloaded = %+v (err %v)", b, err)
	}
	// Baseline: no-ops.
	rb := New(Baseline)
	if err := rb.SpillBounds(0x100, machine.Cleared); err != nil {
		t.Fatal(err)
	}
	if b, _ := rb.ReloadBounds(0x100); b.Valid {
		t.Error("baseline reload produced bounds")
	}
}

func TestGlobalRowRecycling(t *testing.T) {
	r := New(Wrapped)
	o1, err := r.Malloc(layout.Long, 1024)
	if err != nil {
		t.Fatal(err)
	}
	row1 := o1.row
	if err := r.Free(o1); err != nil {
		t.Fatal(err)
	}
	o2, err := r.Malloc(layout.Long, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if o2.row != row1 {
		t.Errorf("row not recycled: %d vs %d", o2.row, row1)
	}
}

func TestFootprintGrowsWithAllocations(t *testing.T) {
	r := New(Subheap)
	f0 := r.Footprint()
	o, _ := r.MallocBytes(1 << 16)
	if err := r.Memset(o.P, 1, 1<<16, o.B); err != nil {
		t.Fatal(err)
	}
	if r.Footprint() <= f0 {
		t.Error("footprint did not grow")
	}
}

func TestSubheapMetadataFootprintSharing(t *testing.T) {
	// The §5.2.3 mechanism: N same-type objects under the subheap
	// allocator share per-block metadata, while the wrapped allocator
	// pays per-object metadata. Footprint must reflect that.
	alloc := func(mode Mode, n int) uint64 {
		r := New(mode)
		for i := 0; i < n; i++ {
			o, err := r.Malloc(nodeT, 1)
			if err != nil {
				panic(err)
			}
			if err := r.Memset(o.P, 1, nodeT.Size(), o.B); err != nil {
				panic(err)
			}
		}
		return r.Footprint()
	}
	n := 4000
	sub := alloc(Subheap, n)
	wrap := alloc(Wrapped, n)
	if sub >= wrap {
		t.Errorf("subheap footprint %d >= wrapped %d", sub, wrap)
	}
}
