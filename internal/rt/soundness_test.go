package rt

import (
	"math/rand"
	"testing"

	"infat/internal/layout"
	"infat/internal/machine"
	"infat/internal/tag"
)

// TestFuzzSpatialSoundness drives random pointer manipulation against the
// full stack (allocators, tags, promote, narrowing, checks) and asserts
// the defense's core spatial guarantee: an access that passes a bounds
// check always lands inside the extent of an object the pointer could
// legitimately reach. Freed-but-unreused extents stay in the allowed set
// (the paper does not claim temporal safety beyond metadata
// invalidation); allocator metadata, chunk headers, block headers, and
// neighbouring address space must never be reachable through a checked
// access.
func TestFuzzSpatialSoundness(t *testing.T) {
	types := []*layout.Type{
		layout.StructOf("fz_pair",
			layout.F("a", layout.ArrayOf(layout.Char, 12)),
			layout.F("b", layout.ArrayOf(layout.Char, 12))),
		layout.StructOf("fz_node",
			layout.F("k", layout.Long),
			layout.F("next", layout.PointerTo(nil))),
		layout.ArrayOf(layout.Long, 7),
		layout.Char,
	}

	// Raising the seed count raises confidence; 40 seeds x 600 steps runs
	// in well under a second.
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mode := []Mode{Subheap, Wrapped, Hybrid}[seed%3]
		r := New(mode)

		type extent struct{ lo, hi uint64 }
		var allowed []extent
		inAllowed := func(addr uint64, size int) bool {
			for _, e := range allowed {
				if addr >= e.lo && addr+uint64(size) <= e.hi {
					return true
				}
			}
			return false
		}
		// The subheap scheme resolves wild-but-recoverable pointers by
		// address, so its spatial guarantee for such pointers is slot-
		// array-granular: a pointer that wandered into a block can
		// re-validate inside that block's slot array (see
		// TestSubheapNeighborSlotRevalidation); and bounds registers can
		// outlive a freed block (the paper scopes temporal staleness
		// out). The enforced property: block metadata, chunk headers, and
		// unrelated address space are never reachable through a checked
		// access — so the allowed set accumulates every object extent and
		// every slot array that ever existed.
		snapshotBlocks := func() {
			for _, blk := range r.blocks {
				lo := blk.base + subheapMetaReserve
				hi := lo + uint64(blk.nSlots)*uint64(blk.pool.slotSize)
				allowed = append(allowed, extent{lo, hi})
			}
		}

		type pvar struct {
			p uint64
			b machine.BoundsReg
		}
		var vars []pvar
		var objs []Obj
		var cells []Obj // pointer cells for round-trips

		alloc := func() {
			typ := types[rng.Intn(len(types))]
			n := uint64(1 + rng.Intn(4))
			o, err := r.Malloc(typ, n)
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, o)
			allowed = append(allowed, extent{o.Base(), o.Base() + o.Size})
			vars = append(vars, pvar{o.P, o.B})
			snapshotBlocks()
		}
		for i := 0; i < 4; i++ {
			alloc()
			c, err := r.MallocBytes(8)
			if err != nil {
				t.Fatal(err)
			}
			cells = append(cells, c)
			allowed = append(allowed, extent{c.Base(), c.Base() + 8})
		}

		for step := 0; step < 600; step++ {
			if len(vars) == 0 {
				alloc()
			}
			vi := rng.Intn(len(vars))
			v := vars[vi]
			switch rng.Intn(10) {
			case 0: // fresh allocation
				if len(objs) < 48 {
					alloc()
				}
			case 1: // pointer arithmetic, sometimes wild
				delta := int64(rng.Intn(96) - 32)
				if rng.Intn(8) == 0 {
					delta *= 64
				}
				vars[vi].p = r.GEP(v.p, delta, v.b)
			case 2: // subobject-index update, sometimes nonsense
				vars[vi].p = r.SetSub(v.p, uint16(rng.Intn(80)))
			case 3: // re-promote
				p, b := r.Promote(v.p)
				vars[vi] = pvar{p, b}
			case 4, 5: // checked store
				size := []int{1, 2, 4, 8}[rng.Intn(4)]
				err := r.Store(v.p, rng.Uint64(), size, v.b)
				if err == nil && v.b.Valid {
					if !inAllowed(tag.Addr(v.p), size) {
						t.Fatalf("seed %d step %d (%v): checked store of %d bytes escaped to %#x (ptr %s bounds %v)",
							seed, step, mode, size, tag.Addr(v.p), tag.Format(v.p), v.b.B)
					}
				}
			case 6: // checked load
				size := []int{1, 2, 4, 8}[rng.Intn(4)]
				_, err := r.Load(v.p, size, v.b)
				if err == nil && v.b.Valid {
					if !inAllowed(tag.Addr(v.p), size) {
						t.Fatalf("seed %d step %d (%v): checked load of %d bytes escaped to %#x (ptr %s bounds %v)",
							seed, step, mode, size, tag.Addr(v.p), tag.Format(v.p), v.b.B)
					}
				}
			case 7: // round-trip through a pointer cell
				cell := cells[rng.Intn(len(cells))]
				if err := r.StorePtr(cell.P, cell.B, v.p, v.b); err == nil {
					p, b, err := r.LoadPtr(cell.P, cell.B)
					if err == nil {
						vars = append(vars, pvar{p, b})
					}
				}
			case 8: // derive a member pointer with static narrowing
				f := int64(rng.Intn(24))
				p := r.GEP(v.p, f, v.b)
				b := r.Bnd(p, uint64(1+rng.Intn(16)))
				// ifpbnd is compiler-trusted: only apply it when the
				// range it blesses is actually inside the parent bounds,
				// as a real compiler would guarantee statically.
				if v.b.Valid && v.b.B.Contains(tag.Addr(p), b.B.Span()) {
					vars = append(vars, pvar{p, b})
				}
			case 9: // free an object (extent stays in the allowed set)
				if len(objs) > 2 {
					oi := rng.Intn(len(objs))
					if err := r.Free(objs[oi]); err == nil {
						objs = append(objs[:oi], objs[oi+1:]...)
					}
				}
			}
			if len(vars) > 64 {
				vars = vars[len(vars)-48:]
			}
		}
	}
}

// TestSubheapNeighborSlotRevalidation documents a residual limitation of
// the subheap scheme that the fuzzer above surfaced: because the scheme
// resolves metadata *by address* (tag names only the control register),
// a pointer that has wandered out of its object — correctly marked
// recoverable-OOB — and is then promoted resolves the slot it currently
// sits in. An ifpadd against those (wrong-slot) bounds re-validates it,
// allowing access to a neighbouring same-pool slot. The local-offset and
// global-table schemes are immune: their tags pin the object identity, so
// the same sequence stays OOB and traps. The paper's hardware has the
// identical data path; this is a precision limit of shared per-block
// metadata, not an implementation bug — cross-type and cross-pool escapes
// remain impossible, as does reaching block metadata.
func TestSubheapNeighborSlotRevalidation(t *testing.T) {
	r := New(Subheap)
	a, err := r.Malloc(nodeT, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Malloc(nodeT, 1) // neighbouring slot, same pool
	if err != nil {
		t.Fatal(err)
	}

	// Wander from a into b's slot: ifpadd (with a's bounds in register)
	// marks the pointer recoverable-OOB.
	wild := r.M.IfpAdd(a.P, int64(b.Base()-a.Base()), a.B)
	if tag.PoisonOf(wild) != tag.OOB {
		t.Fatalf("wild move poison = %v, want oob", tag.PoisonOf(wild))
	}
	// Direct dereference of the wild pointer traps (poison check).
	if _, err := r.Load(wild, 8, machine.Cleared); err == nil {
		t.Fatal("deref of OOB pointer passed")
	}

	// But promote resolves b's slot (keeping OOB, per the sticky rule)...
	p, pb := r.M.Promote(wild)
	if !pb.Valid || pb.B.Lower != b.Base() {
		t.Fatalf("promote bounds = %+v, want b's slot", pb)
	}
	if tag.PoisonOf(p) != tag.OOB {
		t.Fatalf("promote upgraded poison to %v", tag.PoisonOf(p))
	}
	// ...and arithmetic against those bounds re-validates inside b.
	q := r.M.IfpAdd(p, 0, pb)
	if tag.PoisonOf(q) != tag.Valid {
		t.Fatalf("revalidation poison = %v", tag.PoisonOf(q))
	}
	if err := r.Store(q, 0xBAD, 8, pb); err != nil {
		t.Fatalf("neighbour-slot access trapped: %v (limitation no longer present?)", err)
	}

	// The wrapped allocator's local-offset scheme is immune: the granule
	// offset keeps naming a's metadata, so promote returns a's bounds and
	// the pointer stays out-of-bounds.
	rw := New(Wrapped)
	aw, err := rw.Malloc(nodeT, 1)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := rw.Malloc(nodeT, 1)
	if err != nil {
		t.Fatal(err)
	}
	wildw := rw.M.IfpAdd(aw.P, int64(bw.Base()-aw.Base()), aw.B)
	pw, pwb := rw.M.Promote(wildw)
	if pwb.Valid && pwb.B.Lower != aw.Base() {
		t.Fatalf("local-offset promote left object a: %+v", pwb)
	}
	if tag.PoisonOf(pw) == tag.Valid {
		t.Fatal("local-offset wild pointer revalidated")
	}
}
