package rt

import (
	"testing"

	"infat/internal/machine"
	"infat/internal/tag"
)

// The generation store is keyed by chunk base, so every interaction with
// the arenas and allocators must keep it coherent: a rejected free must
// not bump, a double free must trap (typed, never a panic), and Reset —
// which rewinds all arenas — must also rewind the store so a pooled
// runtime cannot leak stale generations into its next tenant.

func TestTemporalDoubleFreeTrapsTyped(t *testing.T) {
	r := New(IFPTemporal)
	o, err := r.MallocBytes(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Free(o); err != nil {
		t.Fatal(err)
	}
	bumps := r.Gens().Bumps()
	err = r.Free(o)
	if !machine.IsTrap(err, machine.TrapTemporal) {
		t.Fatalf("double free = %v, want TrapTemporal", err)
	}
	// The rejected free must not bump again: a second bump would advance
	// the store past outstanding duplicates of the same stale pointer and
	// (after enough retries) wrap the tag field back into validity.
	if r.Gens().Bumps() != bumps {
		t.Errorf("rejected double free bumped the store: %d -> %d", bumps, r.Gens().Bumps())
	}
}

func TestTemporalFreeBumpsOnlyOnSuccess(t *testing.T) {
	r := New(IFPTemporal)
	o, err := r.MallocBytes(64)
	if err != nil {
		t.Fatal(err)
	}
	// A wild free carries generation 0 for an untracked base: the
	// generation check passes (nothing was ever freed there), the
	// allocator rejects it, and the store must stay untouched — bumping a
	// base the allocator never released would poison a future allocation
	// at that address.
	wildBase := o.Base() + 0x10_0000
	wild := Obj{P: tag.WithGen(tag.MakeLocal(wildBase, 0, 0), 0), Kind: o.Kind, Size: 64}
	if err := r.Free(wild); err == nil {
		t.Fatal("wild free accepted")
	} else if machine.IsTrap(err, machine.TrapTemporal) {
		t.Fatalf("wild free misclassified as temporal: %v", err)
	}
	if got := r.Gens().Gen(wildBase); got != 0 {
		t.Errorf("rejected free bumped untracked base to gen %d", got)
	}
	// The original object is still live and freeable exactly once.
	if err := r.Free(o); err != nil {
		t.Fatal(err)
	}
	if got := r.Gens().Gen(o.Base()); got != 1 {
		t.Errorf("gen after first free = %d, want 1", got)
	}
}

func TestResetRewindsGenerationsWithArenas(t *testing.T) {
	r := New(IFPTemporal)
	o, err := r.MallocBytes(64)
	if err != nil {
		t.Fatal(err)
	}
	base := o.Base()
	if err := r.Free(o); err != nil {
		t.Fatal(err)
	}
	if r.Gens().Gen(base) == 0 {
		t.Fatal("free did not bump the generation")
	}

	// Reset rewinds the heap arenas, so the next run's first allocation
	// reuses the same base; the generation store must rewind with them or
	// that fresh allocation would be stamped against a stale generation.
	r.Reset(IFPTemporal)
	if r.Gens().Len() != 0 || r.Gens().Bumps() != 0 {
		t.Fatalf("Reset left %d generations, %d bumps", r.Gens().Len(), r.Gens().Bumps())
	}
	o2, err := r.MallocBytes(64)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Base() != base {
		t.Fatalf("post-reset allocation at %#x, want rewound base %#x", o2.Base(), base)
	}
	if g, ok := tag.Gen(o2.P); !ok || g != 0 {
		t.Errorf("post-reset pointer stamped gen %d (has field: %v), want 0", g, ok)
	}
	if err := r.Free(o2); err != nil {
		t.Fatalf("free of post-reset allocation: %v", err)
	}

	// Reset into a spatial mode drops temporal checking entirely: the
	// same alloc/free/free sequence reports a plain allocator error, not
	// a temporal trap.
	r.Reset(Subheap)
	o3, err := r.MallocBytes(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Free(o3); err != nil {
		t.Fatal(err)
	}
	if err := r.Free(o3); err == nil {
		t.Error("spatial double free accepted")
	} else if machine.IsTrap(err, machine.TrapTemporal) {
		t.Errorf("spatial mode raised a temporal trap: %v", err)
	}
	if r.Gens().Bumps() != 0 {
		t.Errorf("spatial mode bumped the generation store %d times", r.Gens().Bumps())
	}
}
