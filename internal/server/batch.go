package server

// The batch serving tier: POST /v1/batch, /v1/grid, and /v1/chaos accept
// a whole campaign — the (workload × configuration) evaluation matrix or
// the (scheme × fault × seed) chaos grid — in one request and stream
// per-cell results back as NDJSON while the cells fan out over the same
// bounded worker semaphore the unary endpoints use. Each line carries
// deterministic ordering metadata (the cell's seq in the exp plan
// enumeration), so a client can reassemble the stream — received in
// completion order, not plan order — into the byte-identical report a
// serial ifp-bench run prints (exp.Assembly). A request may name an
// explicit cell subset, which is how the shard front tier
// (internal/shard) scatters one campaign across several backends and
// merges the streams.

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"infat/internal/chaos"
	"infat/internal/exp"
	"infat/internal/workloads"
)

// NDJSONContentType is the batch endpoints' response content type: one
// JSON object per line, cells in completion order, trailer last.
const NDJSONContentType = "application/x-ndjson"

// CellsHeader reports the number of cells a batch response will stream
// (before the trailer), set before the first line.
const CellsHeader = "X-Ifp-Cells"

// Batch endpoint paths, shared with the client and the shard tier.
const (
	BatchPath = "/v1/batch"
	GridPath  = "/v1/grid"
	ChaosPath = "/v1/chaos"
)

// BatchRequest is the POST /v1/batch and /v1/grid body: a whole
// (workload × configuration) campaign.
type BatchRequest struct {
	// Workloads selects the workload rows by name; empty selects the full
	// §5.2 suite.
	Workloads []string `json:"workloads,omitempty"`
	// Scale is the perf-grid scale factor (default 1), bounded by the
	// server's MaxScale.
	Scale int `json:"scale,omitempty"`
	// MemScale is the memory-cell scale multiplier (default exp.MemScale).
	// Memory cells run at Scale*MemScale; /v1/grid ignores it (no memory
	// cells).
	MemScale int `json:"mem_scale,omitempty"`
	// Cells restricts the run to an explicit subset of plan sequence
	// numbers (empty = every cell). The shard tier uses this to scatter
	// one campaign across backends.
	Cells []int `json:"cells,omitempty"`
	// Temporal appends the ifp-temporal configuration per workload (the
	// generation-tagging temporal axis). Requests without it enumerate —
	// and stream — exactly as before the temporal subsystem existed.
	Temporal bool `json:"temporal,omitempty"`
}

// BatchPlan resolves the request onto its full-report cell plan (perf +
// memory cells) — the enumeration both the server and a reassembling
// client must share.
func (r BatchRequest) BatchPlan() (exp.Plan, error) {
	ws, err := resolveWorkloads(r.Workloads)
	if err != nil {
		return exp.Plan{}, err
	}
	return exp.NewReportPlan(ws, r.Scale, r.MemScale).WithTemporal(r.Temporal), nil
}

// GridPlan resolves the request onto its perf-only cell plan (the
// /v1/grid campaign).
func (r BatchRequest) GridPlan() (exp.Plan, error) {
	ws, err := resolveWorkloads(r.Workloads)
	if err != nil {
		return exp.Plan{}, err
	}
	return exp.NewPlan(ws, r.Scale).WithTemporal(r.Temporal), nil
}

func resolveWorkloads(names []string) ([]workloads.Workload, error) {
	if len(names) == 0 {
		return workloads.All, nil
	}
	ws := make([]workloads.Workload, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		w, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate workload %q", name)
		}
		seen[name] = true
		ws = append(ws, w)
	}
	return ws, nil
}

// ChaosRequest is the POST /v1/chaos body: one fault-injection campaign.
type ChaosRequest struct {
	// Scale multiplies the seeds per (scheme, fault) cell (default 1),
	// bounded by the server's MaxScale.
	Scale int `json:"scale,omitempty"`
	// Cells restricts the run to an explicit subset of plan sequence
	// numbers (empty = every cell).
	Cells []int `json:"cells,omitempty"`
}

// Plan resolves the request onto its chaos cell plan.
func (r ChaosRequest) Plan() exp.ChaosPlan { return exp.NewChaosPlan(r.Scale) }

// BatchCell is one NDJSON line of a batch stream: the cell's plan
// metadata plus its payload — Result for grid/memory cells, Chaos for
// chaos cells, or Error when the cell failed (the stream keeps going;
// batch semantics are run-everything, like the in-process pool).
type BatchCell struct {
	Seq      int    `json:"seq"`
	Kind     string `json:"kind"`
	Workload string `json:"workload,omitempty"`
	Config   string `json:"config,omitempty"`

	Result *exp.CellResult `json:"result,omitempty"`
	Chaos  *chaos.Outcome  `json:"chaos,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Meta returns the cell's identity as received — the envelope a checked
// assembly (exp.Assembly.AddChecked, exp.ChaosAssembly.AddChecked)
// verifies against the plan's own enumeration before folding the
// payload in.
func (c BatchCell) Meta() exp.CellMeta {
	return exp.CellMeta{Seq: c.Seq, Kind: c.Kind, Workload: c.Workload, Config: c.Config}
}

// BatchTrailer is the final NDJSON line of a batch stream: the stream's
// own accounting, distinguished from cells by done=true. A client that
// never sees a trailer received a truncated stream.
type BatchTrailer struct {
	Done      bool `json:"done"`
	Cells     int  `json:"cells"`
	Completed int  `json:"completed"`
	Failed    int  `json:"failed"`
}

// campaign is a batch endpoint's enumerated cell plan. The two
// implementations wrap exp.Plan and exp.ChaosPlan (carrying the server's
// memo store); the interface is what lets one streaming handler serve
// all three endpoints.
type campaign interface {
	numCells() int
	// meta returns the cell's identity skeleton (Seq/Kind/Workload/Config).
	meta(i int) BatchCell
	// run executes the cell unconditionally (the memo miss path), filling
	// the payload or Error on the skeleton and publishing the result to
	// the store.
	run(i int, cell *BatchCell)
	// tryMemo serves the cell from the memo store: ok=true carries a
	// complete line whose payload bytes are identical to a computed one.
	// The caller skips the worker semaphore for hits — a replay costs no
	// admission slot and no runtime checkout.
	tryMemo(i int) (cell BatchCell, ok bool)
	// warm reports (without counter effects) whether the cell is
	// currently served from the store — the MemoHeader probe.
	warm(i int) bool
}

type gridCampaign struct{ p exp.Plan }

func (g gridCampaign) numCells() int { return g.p.NumCells() }

func (g gridCampaign) meta(i int) BatchCell {
	m := g.p.Meta(i)
	return BatchCell{Seq: m.Seq, Kind: m.Kind, Workload: m.Workload, Config: m.Config}
}

func (g gridCampaign) run(i int, cell *BatchCell) {
	res, err := g.p.ComputeCell(i)
	if err != nil {
		cell.Error = err.Error()
		return
	}
	cell.Result = &res
}

func (g gridCampaign) tryMemo(i int) (BatchCell, bool) {
	res, ok := g.p.LookupCell(i)
	if !ok {
		return BatchCell{}, false
	}
	cell := g.meta(i)
	cell.Result = &res
	return cell, true
}

func (g gridCampaign) warm(i int) bool { return g.p.ProbeCell(i) }

type chaosCampaign struct{ p exp.ChaosPlan }

func (c chaosCampaign) numCells() int { return c.p.NumCells() }

func (c chaosCampaign) meta(i int) BatchCell {
	m := c.p.Meta(i)
	return BatchCell{Seq: m.Seq, Kind: m.Kind, Workload: m.Workload, Config: m.Config}
}

func (c chaosCampaign) run(i int, cell *BatchCell) {
	o := c.p.ComputeCell(i)
	cell.Chaos = &o
}

func (c chaosCampaign) tryMemo(i int) (BatchCell, bool) {
	o, ok := c.p.LookupCell(i)
	if !ok {
		return BatchCell{}, false
	}
	cell := c.meta(i)
	cell.Chaos = &o
	return cell, true
}

func (c chaosCampaign) warm(i int) bool { return c.p.ProbeCell(i) }

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, 1<<20), &req); err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := req.BatchPlan()
	if err == nil {
		err = s.checkScale(plan.Scale(), plan.Scale()*plan.MemScale())
	}
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.streamCampaign(w, r, gridCampaign{plan.WithMemo(s.memo)}, req.Cells)
}

func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, 1<<20), &req); err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := req.GridPlan()
	if err == nil {
		err = s.checkScale(plan.Scale(), 0)
	}
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.streamCampaign(w, r, gridCampaign{plan.WithMemo(s.memo)}, req.Cells)
}

func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	var req ChaosRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, 1<<20), &req); err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.checkScale(req.Plan().Scale(), 0); err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.streamCampaign(w, r, chaosCampaign{req.Plan().WithMemo(s.memo)}, req.Cells)
}

// checkScale bounds campaign scales the same way /v1/workload bounds its
// scale parameter: the perf scale by MaxScale, and the memory cells'
// effective scale (scale×memScale) by MaxScale×exp.MemScale, so the
// default memory experiment always fits and a request cannot smuggle an
// oversized run in through the multiplier.
func (s *Server) checkScale(scale, memEffective int) error {
	if scale > s.cfg.MaxScale {
		return fmt.Errorf("scale %d out of range [1, %d]", scale, s.cfg.MaxScale)
	}
	if max := s.cfg.MaxScale * exp.MemScale; memEffective > max {
		return fmt.Errorf("scale*mem_scale %d out of range [1, %d]", memEffective, max)
	}
	return nil
}

// resolveSubset validates an explicit cell subset against the plan size:
// every index in range, no duplicates. An empty subset selects every
// cell.
func resolveSubset(n int, subset []int) ([]int, error) {
	if len(subset) == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	seen := make(map[int]bool, len(subset))
	for _, i := range subset {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("cell %d out of range [0, %d)", i, n)
		}
		if seen[i] {
			return nil, fmt.Errorf("duplicate cell %d", i)
		}
		seen[i] = true
	}
	return subset, nil
}

// streamCampaign fans the requested cells over the worker semaphore and
// streams each result as an NDJSON line the moment it completes, then a
// trailer. Admission is per cell — every cell holds one semaphore slot
// while simulating, the same slot pool the unary endpoints draw from, so
// one batch request cannot starve /v1/run beyond its fair share of
// workers. When the client disconnects (or the batch deadline passes)
// no new cells are dispatched; in-flight cells finish, release their
// slots and runtimes, and their lines are dropped.
func (s *Server) streamCampaign(w http.ResponseWriter, r *http.Request, camp campaign, subset []int) {
	cells, err := resolveSubset(camp.numCells(), subset)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.batchStreams.Add(1)
	ctx := r.Context()

	// Count the cells already resident in the memo store before the first
	// byte is written: the MemoHeader is a warm-set preview (Peek-based, no
	// counter effects), not a promise — an entry can still be evicted
	// between the probe and the cell's turn.
	warm := 0
	for _, i := range cells {
		if camp.warm(i) {
			warm++
		}
	}

	w.Header().Set("Content-Type", NDJSONContentType)
	w.Header().Set(CellsHeader, strconv.Itoa(len(cells)))
	w.Header().Set(MemoHeader, strconv.Itoa(warm))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var mu sync.Mutex // serializes line writes
	emit := func(line []byte) {
		mu.Lock()
		defer mu.Unlock()
		if ctx.Err() != nil {
			return // client gone: stop writing, let workers drain
		}
		w.Write(line)
		w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	}

	var completed, failed atomic.Int64
	var next atomic.Int64
	workers := s.cfg.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for n := 0; n < workers; n++ {
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1) - 1)
				if k >= len(cells) || ctx.Err() != nil {
					return
				}
				// Memoized cells are replayed from the store without taking a
				// semaphore slot: a hit is a map lookup plus a JSON encode —
				// no simulation, no rt.Pool checkout — so it must not queue
				// behind real work (or displace it from admission control).
				if cell, ok := camp.tryMemo(cells[k]); ok {
					s.metrics.batchCells.Add(1)
					completed.Add(1)
					emit(mustJSON(cell))
					continue
				}
				// One semaphore slot per cell: batch cells queue behind the
				// same admission control as every other simulation.
				select {
				case s.sem <- struct{}{}:
				case <-ctx.Done():
					return
				}
				cell := s.runCellRecovered(camp, cells[k])
				<-s.sem
				s.metrics.batchCells.Add(1)
				if cell.Error != "" {
					failed.Add(1)
					s.metrics.batchCellErrors.Add(1)
				} else {
					completed.Add(1)
				}
				emit(mustJSON(cell))
			}
		}()
	}
	wg.Wait()

	if ctx.Err() != nil {
		s.metrics.batchCancelled.Add(1)
		return // no trailer: the stream is truncated by the disconnect
	}
	emit(mustJSON(BatchTrailer{
		Done:      true,
		Cells:     len(cells),
		Completed: int(completed.Load()),
		Failed:    int(failed.Load()),
	}))
}

// runCellRecovered executes one campaign cell, converting an escaped
// panic into an error cell — the streaming twin of runRecovered: a
// simulator bug a cell tickles costs that cell only, never the stream or
// the daemon.
func (s *Server) runCellRecovered(camp campaign, i int) (cell BatchCell) {
	cell = camp.meta(i)
	defer func() {
		if r := recover(); r != nil {
			s.metrics.internalPanics.Add(1)
			cell.Result, cell.Chaos = nil, nil
			cell.Error = fmt.Sprintf("internal error: recovered panic: %v", r)
		}
	}()
	camp.run(i, &cell)
	return cell
}
