package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"infat/internal/exp"
	"infat/internal/rt"
	"infat/internal/workloads"
)

// batchTestWorkloads is the small subset the HTTP equivalence tests
// stream, mirroring the exp-level cell tests.
var batchTestWorkloads = []string{"treeadd", "health"}

func batchWorkloadSet(t *testing.T) []workloads.Workload {
	t.Helper()
	var ws []workloads.Workload
	for _, name := range batchTestWorkloads {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		ws = append(ws, w)
	}
	return ws
}

// TestBatchStreamEquivalence: one /v1/batch request streams the whole
// campaign and reassembles to the exact bytes of a serial run; the
// perf-only /v1/grid likewise.
func TestBatchStreamEquivalence(t *testing.T) {
	ws := batchWorkloadSet(t)
	workers := runtime.NumCPU()
	serial, err := exp.RunSet(ws, 1, workers)
	if err != nil {
		t.Fatal(err)
	}
	serialMem, err := exp.RunMemSet(ws, exp.MemScale, workers)
	if err != nil {
		t.Fatal(err)
	}

	_, c, done := newTestServer(t, Config{})
	defer done()
	ctx := context.Background()

	got, err := c.BatchReport(ctx, BatchRequest{Workloads: batchTestWorkloads})
	if err != nil {
		t.Fatal(err)
	}
	if want := exp.Report(serial, serialMem); got != want {
		t.Fatalf("streamed batch report differs from serial run:\n--- streamed ---\n%s\n--- serial ---\n%s", got, want)
	}

	gotGrid, err := c.GridReport(ctx, BatchRequest{Workloads: batchTestWorkloads})
	if err != nil {
		t.Fatal(err)
	}
	if want := exp.PerfReport(serial); gotGrid != want {
		t.Fatal("streamed grid report differs from serial run")
	}
}

// TestChaosStreamEquivalence: /v1/chaos reassembles the deterministic
// fault-injection campaign byte-for-byte.
func TestChaosStreamEquivalence(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()
	got, internal, err := c.ChaosReport(context.Background(), ChaosRequest{})
	if err != nil {
		t.Fatal(err)
	}
	want, wantInternal := exp.ChaosReport(1, runtime.NumCPU())
	if got != want {
		t.Fatal("streamed chaos report differs from serial campaign")
	}
	if internal != wantInternal {
		t.Fatalf("internal = %d, want %d", internal, wantInternal)
	}
}

// TestBatchSubsetAndTrailer: an explicit cell subset streams exactly
// those cells, in metadata agreeing with the plan, and the trailer
// accounts for them.
func TestBatchSubsetAndTrailer(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()
	req := BatchRequest{Workloads: batchTestWorkloads, Cells: []int{4, 0, 9}}
	plan, err := req.BatchPlan()
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[int]BatchCell)
	trailer, err := c.BatchStream(context.Background(), req, func(cell BatchCell) error {
		got[cell.Seq] = cell
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if trailer.Cells != 3 || trailer.Completed != 3 || trailer.Failed != 0 {
		t.Fatalf("trailer = %+v", trailer)
	}
	for _, seq := range req.Cells {
		cell, ok := got[seq]
		if !ok {
			t.Fatalf("cell %d never streamed (got %v)", seq, got)
		}
		m := plan.Meta(seq)
		if cell.Kind != m.Kind || cell.Workload != m.Workload || cell.Config != m.Config {
			t.Errorf("cell %d metadata %+v, want %+v", seq, cell, m)
		}
		if cell.Result == nil || cell.Error != "" {
			t.Errorf("cell %d missing payload: %+v", seq, cell)
		}
	}
}

// TestBatchValidation: malformed campaign requests are rejected with
// 400 before any streaming starts.
func TestBatchValidation(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()
	for name, body := range map[string]string{
		"unknown workload":    `{"workloads":["nope"]}`,
		"duplicate workload":  `{"workloads":["treeadd","treeadd"]}`,
		"scale too large":     `{"scale":99}`,
		"subset out of range": `{"cells":[12345]}`,
		"duplicate cell":      `{"cells":[1,1]}`,
		"unknown field":       `{"bogus":true}`,
		"trailing data":       `{} {}`,
	} {
		resp, err := http.Post(c.BaseURL+BatchPath, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestGridStreamTemporalEquivalence: a Temporal grid request streams the
// six-configuration plan (spatial five + ifp-temporal) and reassembles
// to the exact bytes a local temporal assembly renders — spatial report
// prefix plus the temporal section — while a request without the flag
// never mentions the temporal axis.
func TestGridStreamTemporalEquivalence(t *testing.T) {
	ws := batchWorkloadSet(t)
	plan := exp.NewPlan(ws, 1).WithTemporal(true)
	a := plan.NewAssembly()
	for i := 0; i < plan.NumCells(); i++ {
		cell, err := plan.RunCell(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Add(i, cell); err != nil {
			t.Fatal(err)
		}
	}
	want, err := a.Report()
	if err != nil {
		t.Fatal(err)
	}

	_, c, done := newTestServer(t, Config{})
	defer done()
	ctx := context.Background()

	got, err := c.GridReport(ctx, BatchRequest{Workloads: batchTestWorkloads, Temporal: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("streamed temporal grid report differs from local assembly:\n--- streamed ---\n%s\n--- local ---\n%s", got, want)
	}
	if !strings.Contains(got, "Temporal axis") {
		t.Fatal("temporal grid report missing the temporal section")
	}

	spatial, err := c.GridReport(ctx, BatchRequest{Workloads: batchTestWorkloads})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(spatial, "Temporal axis") || strings.Contains(spatial, "ifp-temporal") {
		t.Fatal("spatial grid report mentions the temporal axis")
	}
}

// TestBatchMidStreamCancellation is the leak regression test: a client
// that disconnects halfway through a batch stream must leave no trace —
// every worker-semaphore slot released, the runtime pool's checkout
// ledger balanced, and the truncation counted.
func TestBatchMidStreamCancellation(t *testing.T) {
	// One worker and a scaled-up campaign (864 cells through a single
	// slot) guarantee the stream is still mid-flight when we walk away
	// after two lines — even with a warm runtime pool, which makes
	// individual cells fast enough that a default-sized campaign can
	// complete before the server notices the disconnect.
	s, c, done := newTestServer(t, Config{Workers: 1})
	defer done()

	before := rt.DefaultPool.Stats()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(ChaosRequest{Scale: 4})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+ChaosPath, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for lines := 0; lines < 2 && sc.Scan(); lines++ {
	}
	cancel() // client walks away mid-stream
	resp.Body.Close()

	// Every slot must come back: in-flight cells finish (bounded by
	// fuel), queued cells are never dispatched.
	deadline := time.Now().Add(30 * time.Second)
	for len(s.sem) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d worker slots still held after disconnect", len(s.sem))
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The runtime pool's ledger must balance: everything checked out
	// since the test began was checked back in.
	for {
		after := rt.DefaultPool.Stats()
		out := (after.Hits + after.Misses) - (before.Hits + before.Misses)
		in := (after.Releases + after.Discards) - (before.Releases + before.Discards)
		if out == in {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("runtime pool unbalanced after disconnect: %d acquired, %d returned", out, in)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The truncation is observable.
	for s.metrics.batchCancelled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancelled stream never counted in batch metrics")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.snapshot().Batch["cancelled"]; got == 0 {
		t.Error("snapshot missing cancelled stream")
	}

	// The server remains fully serviceable after the truncated stream.
	if _, _, err := c.Run(context.Background(), RunRequest{Source: cleanProg}); err != nil {
		t.Fatalf("run after cancelled batch: %v", err)
	}
}

// TestBusyResponsesCarryRetryAfter: 503 admission rejections carry the
// structured JSON error body and the Retry-After hint.
func TestBusyResponsesCarryRetryAfter(t *testing.T) {
	// Zero-worker trick is impossible (Workers is defaulted), so force
	// rejection with an already-expired deadline instead.
	s, _, done := newTestServer(t, Config{RetryAfter: 1500 * time.Millisecond})
	defer done()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	status, body, ok := s.dispatch(ctx, func() (int, []byte) { return http.StatusOK, nil })
	if ok || status != http.StatusServiceUnavailable {
		t.Fatalf("dispatch = (%d, ok=%v), want 503", status, ok)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("503 body %q is not a structured error (%v)", body, err)
	}

	// Through the HTTP layer: a request whose deadline expired before a
	// slot was free answers 503 + Retry-After (rounded up to 2s).
	req, err := http.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(`{"source":"int main() { return 0; }"}`))
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	req = req.WithContext(expired)
	rec := httptest.NewRecorder()
	s.handleRun(rec, req)
	if rec.Code != http.StatusServiceUnavailable && rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 503/504", rec.Code)
	}
	if got := rec.Header().Get(RetryAfterHeader); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\" (1.5s rounded up)", got)
	}
	if !strings.Contains(rec.Body.String(), `"error"`) {
		t.Errorf("busy body %q not structured", rec.Body.String())
	}
}
