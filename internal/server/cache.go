package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheEntry is one cached /v1/run response. An entry is inserted
// *pending* (ready open) before the simulation runs, which is what
// coalesces concurrent identical submissions: the first request in
// becomes the leader and simulates; everyone else joining the same key
// blocks on ready and is served the published bytes as a cache hit.
type cacheEntry struct {
	key     string
	ready   chan struct{} // closed by finish
	done    bool          // guarded by resultCache.mu; true once finished
	waiters uint64        // guarded by resultCache.mu; pending joins so far
	status  int
	body    []byte
	// keep records the leader's verdict: true for a deterministic outcome
	// that stayed cached. Written by finish before ready closes, so
	// followers may read it after <-ready without the lock.
	keep bool
}

// resultCache is the size-bounded LRU of run responses, keyed by
// (sha256(source), mode, fuel). Only deterministic outcomes stay cached
// (simulation results and compile errors); deadline/admission failures
// are published to any waiting followers but dropped from the cache.
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions atomic.Uint64
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// startOrJoin returns the entry for key and whether the caller is its
// leader (responsible for simulating and calling finish). Joining a
// completed entry counts as a hit immediately; joining a pending one is
// counted only at publication, and only if the leader's outcome was kept
// — followers coalesced onto a failed leader are served its error body
// but are neither hits nor misses, so error coalescing cannot inflate
// the hit rate. Creating an entry counts as a miss.
func (c *resultCache) startOrJoin(key string) (e *cacheEntry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e = el.Value.(*cacheEntry)
		c.order.MoveToFront(el)
		if e.done {
			c.hits.Add(1)
		} else {
			e.waiters++
		}
		return e, false
	}
	c.misses.Add(1)
	e = &cacheEntry{key: key, ready: make(chan struct{})}
	c.items[key] = c.order.PushFront(e)
	c.evictLocked()
	return e, true
}

// evictLocked drops least-recently-used *completed* entries until the
// cache is within bounds. Pending entries are skipped — their leader
// still has to publish — so the cache can transiently exceed max by the
// number of in-flight distinct keys.
func (c *resultCache) evictLocked() {
	for c.order.Len() > c.max {
		var victim *list.Element
		for el := c.order.Back(); el != nil; el = el.Prev() {
			if el.Value.(*cacheEntry).done {
				victim = el
				break
			}
		}
		if victim == nil {
			return
		}
		c.order.Remove(victim)
		delete(c.items, victim.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// finish publishes the leader's response on e, waking all followers.
// keep=false additionally drops the entry from the cache (used for
// non-deterministic outcomes that must not be replayed to later
// requests). finish is idempotent: calls after the first are no-ops, so
// a handler can install a deferred abandonment finish as a safety net —
// a leader that exits without publishing (e.g. a panic recovered by
// net/http) still wakes its followers and frees the key instead of
// poisoning it until restart.
func (c *resultCache) finish(e *cacheEntry, status int, body []byte, keep bool) {
	c.mu.Lock()
	if e.done {
		c.mu.Unlock()
		return
	}
	e.status, e.body = status, body
	e.keep = keep
	e.done = true
	// Followers that coalesced onto this pending entry become hits only
	// now that a replayable result exists.
	if keep {
		c.hits.Add(e.waiters)
	}
	if el, ok := c.items[e.key]; ok && el.Value.(*cacheEntry) == e && !keep {
		c.order.Remove(el)
		delete(c.items, e.key)
	}
	c.mu.Unlock()
	close(e.ready)
}

func (c *resultCache) stats() (hits, misses, evictions, entries uint64) {
	c.mu.Lock()
	n := c.order.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), uint64(n)
}
