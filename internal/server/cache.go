package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheEntry is one cached /v1/run response. An entry is inserted
// *pending* (ready open) before the simulation runs, which is what
// coalesces concurrent identical submissions: the first request in
// becomes the leader and simulates; everyone else joining the same key
// blocks on ready and is served the published bytes as a cache hit.
type cacheEntry struct {
	key    string
	ready  chan struct{} // closed by finish
	done   bool          // guarded by resultCache.mu; true once finished
	status int
	body   []byte
}

// resultCache is the size-bounded LRU of run responses, keyed by
// (sha256(source), mode, fuel). Only deterministic outcomes stay cached
// (simulation results and compile errors); deadline/admission failures
// are published to any waiting followers but dropped from the cache.
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions atomic.Uint64
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// startOrJoin returns the entry for key and whether the caller is its
// leader (responsible for simulating and calling finish). Joining an
// existing entry — pending or complete — counts as a hit; creating one
// counts as a miss.
func (c *resultCache) startOrJoin(key string) (e *cacheEntry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry), false
	}
	c.misses.Add(1)
	e = &cacheEntry{key: key, ready: make(chan struct{})}
	c.items[key] = c.order.PushFront(e)
	c.evictLocked()
	return e, true
}

// evictLocked drops least-recently-used *completed* entries until the
// cache is within bounds. Pending entries are skipped — their leader
// still has to publish — so the cache can transiently exceed max by the
// number of in-flight distinct keys.
func (c *resultCache) evictLocked() {
	for c.order.Len() > c.max {
		var victim *list.Element
		for el := c.order.Back(); el != nil; el = el.Prev() {
			if el.Value.(*cacheEntry).done {
				victim = el
				break
			}
		}
		if victim == nil {
			return
		}
		c.order.Remove(victim)
		delete(c.items, victim.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// finish publishes the leader's response on e, waking all followers.
// keep=false additionally drops the entry from the cache (used for
// non-deterministic outcomes that must not be replayed to later
// requests).
func (c *resultCache) finish(e *cacheEntry, status int, body []byte, keep bool) {
	c.mu.Lock()
	e.status, e.body = status, body
	e.done = true
	if el, ok := c.items[e.key]; ok && el.Value.(*cacheEntry) == e && !keep {
		c.order.Remove(el)
		delete(c.items, e.key)
	}
	c.mu.Unlock()
	close(e.ready)
}

func (c *resultCache) stats() (hits, misses, evictions, entries uint64) {
	c.mu.Lock()
	n := c.order.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), uint64(n)
}
