package server

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fill inserts a completed entry.
func fill(c *resultCache, key string) {
	e, leader := c.startOrJoin(key)
	if leader {
		c.finish(e, 200, []byte(key), true)
	}
}

// isLeader probes whether key is absent (the probe becomes its leader).
// The probe entry is finished-and-dropped so it does not perturb the
// cache contents.
func isLeader(c *resultCache, key string) bool {
	e, leader := c.startOrJoin(key)
	if leader {
		c.finish(e, 0, nil, false)
	}
	return leader
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	fill(c, "a")
	fill(c, "b")
	fill(c, "c") // evicts a (least recently used)
	if _, _, evictions, entries := c.stats(); evictions != 1 || entries != 2 {
		t.Fatalf("evictions=%d entries=%d, want 1, 2", evictions, entries)
	}
	if !isLeader(c, "a") {
		t.Fatal("a survived eviction")
	}
}

func TestCacheHitRefreshesRecency(t *testing.T) {
	c := newResultCache(2)
	fill(c, "a")
	fill(c, "b")
	fill(c, "a") // hit: a becomes most recent
	fill(c, "c") // must evict b, not a
	if isLeader(c, "a") {
		t.Fatal("a was evicted despite being most recently used")
	}
	if !isLeader(c, "b") {
		t.Fatal("b survived; expected it evicted")
	}
}

func TestCacheHitRateAccounting(t *testing.T) {
	c := newResultCache(8)
	fill(c, "a")
	for i := 0; i < 3; i++ {
		fill(c, "a")
	}
	fill(c, "b")
	hits, misses, _, _ := c.stats()
	if hits != 3 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 3, 2", hits, misses)
	}
}

func TestCachePendingEntriesNotEvicted(t *testing.T) {
	c := newResultCache(1)
	e1, _ := c.startOrJoin("p1")
	e2, _ := c.startOrJoin("p2") // over capacity, but both pending: no eviction
	if _, _, evictions, entries := c.stats(); evictions != 0 || entries != 2 {
		t.Fatalf("evictions=%d entries=%d, want 0, 2", evictions, entries)
	}
	c.finish(e1, 200, nil, true)
	c.finish(e2, 200, nil, true)
	fill(c, "p3") // now eviction can proceed down to capacity
	if _, _, _, entries := c.stats(); entries != 1 {
		t.Fatalf("entries=%d, want 1", entries)
	}
}

func TestCacheDropOnFinish(t *testing.T) {
	c := newResultCache(4)
	e, leader := c.startOrJoin("x")
	if !leader {
		t.Fatal("fresh key not leader")
	}
	c.finish(e, 503, nil, false) // non-deterministic outcome: dropped
	if !isLeader(c, "x") {
		t.Fatal("dropped entry still served")
	}
}

func TestCacheCoalescing(t *testing.T) {
	c := newResultCache(4)
	e, leader := c.startOrJoin("k")
	if !leader {
		t.Fatal("first caller must lead")
	}
	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, lead := c.startOrJoin("k")
			if lead {
				t.Error("follower became leader")
				return
			}
			<-f.ready
			if string(f.body) != "payload" {
				t.Errorf("follower read %q", f.body)
			}
		}()
	}
	c.finish(e, 200, []byte("payload"), true)
	wg.Wait()
	hits, misses, _, _ := c.stats()
	if misses != 1 || hits != n {
		t.Fatalf("hits=%d misses=%d, want %d, 1", hits, misses, n)
	}
}

// waitWaiters blocks until n followers have joined e's pending entry.
func waitWaiters(c *resultCache, e *cacheEntry, n uint64) {
	for {
		c.mu.Lock()
		joined := e.waiters
		c.mu.Unlock()
		if joined >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheErrorCoalescingNotCountedAsHit: followers that coalesce onto
// a leader whose outcome is dropped (keep=false) are served the error
// bytes but must not inflate the hit counter — and the entry must not
// survive to be "hit" later.
func TestCacheErrorCoalescingNotCountedAsHit(t *testing.T) {
	c := newResultCache(4)
	e, leader := c.startOrJoin("k")
	if !leader {
		t.Fatal("first caller must lead")
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, lead := c.startOrJoin("k")
			if lead {
				t.Error("follower became leader")
				return
			}
			<-f.ready
			if f.keep || f.status != 503 {
				t.Errorf("follower saw keep=%v status=%d, want dropped 503", f.keep, f.status)
			}
		}()
	}
	// All three must have joined the pending entry before it is dropped;
	// a late joiner would lead a fresh entry instead of coalescing.
	waitWaiters(c, e, 3)
	c.finish(e, 503, []byte("busy"), false)
	wg.Wait()
	hits, misses, _, entries := c.stats()
	if hits != 0 || misses != 1 || entries != 0 {
		t.Fatalf("hits=%d misses=%d entries=%d, want 0, 1, 0", hits, misses, entries)
	}
}

// TestCacheFinishIdempotent: the first finish wins; a later (e.g.
// deferred abandonment) finish neither republishes nor drops a kept
// entry.
func TestCacheFinishIdempotent(t *testing.T) {
	c := newResultCache(4)
	e, _ := c.startOrJoin("k")
	c.finish(e, 200, []byte("real"), true)
	c.finish(e, 500, []byte("abandoned"), false) // must be a no-op
	if e.status != 200 || string(e.body) != "real" || !e.keep {
		t.Fatalf("second finish overwrote the entry: status=%d body=%q keep=%v",
			e.status, e.body, e.keep)
	}
	if f, leader := c.startOrJoin("k"); leader || f.status != 200 {
		t.Fatalf("kept entry dropped by the no-op finish (leader=%v status=%d)", leader, f.status)
	}
}

// TestCacheAbandonedLeaderFreesKey: a leader that never reaches its
// normal finish (the deferred abandonment path in handleRun) wakes
// followers with the abandonment status and leaves the key free for
// re-simulation — not poisoned until restart.
func TestCacheAbandonedLeaderFreesKey(t *testing.T) {
	c := newResultCache(4)
	e, _ := c.startOrJoin("k")
	woke := make(chan int, 1)
	go func() {
		f, _ := c.startOrJoin("k")
		<-f.ready
		woke <- f.status
	}()
	waitWaiters(c, e, 1)
	c.finish(e, 500, []byte("abandoned"), false) // what the deferred net does
	if st := <-woke; st != 500 {
		t.Fatalf("follower woke with status %d, want 500", st)
	}
	if _, leader := c.startOrJoin("k"); !leader {
		t.Fatal("key still occupied after abandonment; next submission cannot re-simulate")
	}
	if hits, _, _, _ := c.stats(); hits != 0 {
		t.Fatalf("abandonment counted %d hits", hits)
	}
}

func TestCacheManyKeysStayBounded(t *testing.T) {
	c := newResultCache(16)
	for i := 0; i < 200; i++ {
		fill(c, fmt.Sprint("k", i))
	}
	if _, _, evictions, entries := c.stats(); entries != 16 || evictions != 200-16 {
		t.Fatalf("entries=%d evictions=%d, want 16, %d", entries, evictions, 200-16)
	}
}
