package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is a minimal Go client for ifp-serve, used by the handler
// tests and the daemon's -selftest mode so the service can be exercised
// end-to-end without curl.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client; nil selects a client with a
	// conservative overall timeout.
	HTTP *http.Client
}

// NewClient builds a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP:    &http.Client{Timeout: 2 * DefaultRequestTimeout},
	}
}

// APIError is a non-2xx response, carrying the decoded error body.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("ifp-serve: HTTP %d: %s", e.Status, e.Message)
}

// Run submits a MiniC program. cached reports whether the response was
// served from the server's result cache (the CacheHeader).
func (c *Client) Run(ctx context.Context, req RunRequest) (resp *RunResponse, cached bool, err error) {
	resp = new(RunResponse)
	hdr, err := c.post(ctx, "/v1/run", req, resp)
	if err != nil {
		return nil, false, err
	}
	return resp, hdr.Get(CacheHeader) == "hit", nil
}

// Juliet runs one generated Juliet case.
func (c *Client) Juliet(ctx context.Context, req JulietRequest) (*JulietResponse, error) {
	resp := new(JulietResponse)
	if _, err := c.post(ctx, "/v1/juliet", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// JulietCases lists the generated case names.
func (c *Client) JulietCases(ctx context.Context) ([]string, error) {
	resp := new(JulietListResponse)
	if err := c.get(ctx, "/v1/juliet", resp); err != nil {
		return nil, err
	}
	return resp.Cases, nil
}

// Workload runs one cell of the §5.2 evaluation grid.
func (c *Client) Workload(ctx context.Context, req WorkloadRequest) (*WorkloadResponse, error) {
	resp := new(WorkloadResponse)
	if _, err := c.post(ctx, "/v1/workload", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Healthz checks liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.get(ctx, "/healthz", &map[string]string{})
}

// Metrics fetches the counter snapshot.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	resp := new(MetricsSnapshot)
	if err := c.get(ctx, "/metrics", resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// WaitReady polls /healthz until it answers or the deadline passes —
// for callers that just started the daemon.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	for {
		if err := c.Healthz(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("ifp-serve: not ready within %v", timeout)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func (c *Client) post(ctx context.Context, path string, req, resp any) (http.Header, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	return c.do(hreq, resp)
}

func (c *Client) get(ctx context.Context, path string, resp any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	_, err = c.do(hreq, resp)
	return err
}

func (c *Client) do(req *http.Request, resp any) (http.Header, error) {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	hresp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hresp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode/100 != 2 {
		var apiErr ErrorResponse
		if json.Unmarshal(body, &apiErr) != nil || apiErr.Error == "" {
			apiErr.Error = strings.TrimSpace(string(body))
		}
		return hresp.Header, &APIError{Status: hresp.StatusCode, Message: apiErr.Error}
	}
	if err := json.Unmarshal(body, resp); err != nil {
		return hresp.Header, fmt.Errorf("ifp-serve: bad response body: %w", err)
	}
	return hresp.Header, nil
}
