package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client retry defaults.
const (
	// DefaultMaxAttempts is the per-call attempt cap when Client.MaxAttempts
	// is zero: one initial try plus three retries.
	DefaultMaxAttempts = 4
	// DefaultRetryBase is the first backoff delay; it doubles per retry.
	DefaultRetryBase = 50 * time.Millisecond
	// maxRetryDelay caps the exponential backoff so late attempts stay
	// responsive to the request context.
	maxRetryDelay = 2 * time.Second
	// maxRetryAfterHint caps how long the client honours a server's
	// Retry-After header over its own computed backoff, so a misconfigured
	// (or hostile) server cannot park clients for minutes.
	maxRetryAfterHint = 30 * time.Second
)

// Client is a minimal Go client for ifp-serve, used by the handler
// tests and the daemon's -selftest mode so the service can be exercised
// end-to-end without curl.
//
// Transient failures — 503 (admission rejection), 429, and transport
// errors like a connection refused during daemon startup — are retried
// with exponential backoff and jitter, bounded by MaxAttempts and the
// request context. Context cancellation and every other HTTP status
// (including 504: the work may have run) are never retried.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client; nil selects a client with a
	// conservative overall timeout.
	HTTP *http.Client
	// MaxAttempts caps tries per call (0 = DefaultMaxAttempts, 1 = no
	// retries).
	MaxAttempts int
	// RetryBase is the first backoff delay (0 = DefaultRetryBase).
	RetryBase time.Duration
	// NoRetry disables retrying entirely (equivalent to MaxAttempts 1).
	NoRetry bool
	// Jitter draws the random component added to each backoff delay, in
	// [0, max). nil selects the shared process-wide source. Tests (and
	// NewClientSeeded) install a deterministic source here; a custom
	// Jitter must be safe for concurrent use if the client is. The field
	// is a function, not a *rand.Rand, so Client stays copyable
	// (WaitReady copies the client to loosen its retry caps).
	Jitter func(max time.Duration) time.Duration
}

// NewClient builds a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP:    &http.Client{Timeout: 2 * DefaultRequestTimeout},
	}
}

// NewClientSeeded is NewClient with a deterministic backoff jitter
// source seeded from seed: every retry schedule the client produces is
// reproducible run-to-run. The source is owned by this client (not the
// process-wide one) and is safe for concurrent use.
func NewClientSeeded(baseURL string, seed uint64) *Client {
	c := NewClient(baseURL)
	c.Jitter = seededJitter(seed)
	return c
}

// seededJitter builds a concurrency-safe jitter function over its own
// PCG source. The closure owns the source and its mutex, so the Client
// carrying it remains freely copyable.
func seededJitter(seed uint64) func(max time.Duration) time.Duration {
	var mu sync.Mutex
	rng := rand.New(rand.NewPCG(seed, seed))
	return func(max time.Duration) time.Duration {
		if max <= 0 {
			return 0
		}
		mu.Lock()
		defer mu.Unlock()
		return time.Duration(rng.Int64N(int64(max)))
	}
}

// APIError is a non-2xx response, carrying the decoded error body.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the server's Retry-After back-pressure hint, when the
	// response carried one (0 otherwise). The retry loop prefers it over
	// the computed backoff, capped at maxRetryAfterHint.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("ifp-serve: HTTP %d: %s", e.Status, e.Message)
}

// Run submits a MiniC program. cached reports whether the response was
// served from the server's result cache (the CacheHeader).
func (c *Client) Run(ctx context.Context, req RunRequest) (resp *RunResponse, cached bool, err error) {
	resp = new(RunResponse)
	hdr, err := c.post(ctx, "/v1/run", req, resp)
	if err != nil {
		return nil, false, err
	}
	return resp, hdr.Get(CacheHeader) == "hit", nil
}

// Juliet runs one generated Juliet case.
func (c *Client) Juliet(ctx context.Context, req JulietRequest) (*JulietResponse, error) {
	resp := new(JulietResponse)
	if _, err := c.post(ctx, "/v1/juliet", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// JulietCases lists the generated case names.
func (c *Client) JulietCases(ctx context.Context) ([]string, error) {
	resp := new(JulietListResponse)
	if err := c.get(ctx, "/v1/juliet", resp); err != nil {
		return nil, err
	}
	return resp.Cases, nil
}

// Workload runs one cell of the §5.2 evaluation grid.
func (c *Client) Workload(ctx context.Context, req WorkloadRequest) (*WorkloadResponse, error) {
	resp := new(WorkloadResponse)
	if _, err := c.post(ctx, "/v1/workload", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Healthz checks liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.get(ctx, "/healthz", &map[string]string{})
}

// Metrics fetches the counter snapshot.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	resp := new(MetricsSnapshot)
	if err := c.get(ctx, "/metrics", resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// WaitReady polls /healthz until it answers or the deadline passes —
// for callers that just started the daemon. It is the retry loop with
// the attempt cap effectively removed: a refused connection keeps
// retrying (with small, capped backoff) until the context deadline.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	probe := *c
	probe.NoRetry = false
	probe.MaxAttempts = 1 << 20 // bounded by ctx, not by the attempt cap
	probe.RetryBase = 20 * time.Millisecond
	if err := probe.Healthz(ctx); err != nil {
		return fmt.Errorf("ifp-serve: not ready within %v: %w", timeout, err)
	}
	return nil
}

func (c *Client) post(ctx context.Context, path string, req, resp any) (http.Header, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.do(ctx, http.MethodPost, path, body, resp)
}

func (c *Client) get(ctx context.Context, path string, resp any) error {
	_, err := c.do(ctx, http.MethodGet, path, nil, resp)
	return err
}

// do runs one logical call: it rebuilds the HTTP request from the
// marshaled body each attempt (readers cannot be replayed) and retries
// transient failures with exponential backoff.
func (c *Client) do(ctx context.Context, method, path string, body []byte, resp any) (http.Header, error) {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	if c.NoRetry {
		attempts = 1
	}
	base := c.RetryBase
	if base <= 0 {
		base = DefaultRetryBase
	}
	var hdr http.Header
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			d := c.backoff(base, attempt-1)
			// The server's own back-pressure estimate beats the client's
			// blind schedule: an admission rejection's Retry-After says how
			// long a worker slot realistically takes to drain.
			if hint := retryAfterHint(err); hint > 0 {
				if hint > maxRetryAfterHint {
					hint = maxRetryAfterHint
				}
				d = hint
			}
			if serr := sleepCtx(ctx, d); serr != nil {
				// Context expired while backing off: surface the context
				// error promptly, joined with the last real failure so
				// callers can still errors.As the APIError they observed.
				return hdr, errors.Join(serr, err)
			}
		}
		hdr, err = c.doOnce(ctx, method, path, body, resp)
		if err == nil || !retryable(err) {
			return hdr, err
		}
	}
	return hdr, err
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, resp any) (http.Header, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	SetDeadlineHeader(hreq.Header, ctx)
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	rbody, err := io.ReadAll(io.LimitReader(hresp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode/100 != 2 {
		var apiErr ErrorResponse
		if json.Unmarshal(rbody, &apiErr) != nil || apiErr.Error == "" {
			apiErr.Error = strings.TrimSpace(string(rbody))
		}
		return hresp.Header, &APIError{
			Status:     hresp.StatusCode,
			Message:    apiErr.Error,
			RetryAfter: parseRetryAfter(hresp.Header.Get(RetryAfterHeader)),
		}
	}
	if err := json.Unmarshal(rbody, resp); err != nil {
		return hresp.Header, fmt.Errorf("ifp-serve: bad response body: %w", err)
	}
	return hresp.Header, nil
}

// retryable reports whether a failure is worth another attempt: 503
// (admission rejection) and 429 are explicit back-off-and-retry signals,
// and transport-level errors (connection refused/reset) are transient by
// nature. Context cancellation is the caller giving up, and any other
// HTTP status is a definitive answer — neither is retried.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusServiceUnavailable ||
			apiErr.Status == http.StatusTooManyRequests
	}
	var uerr *url.Error
	return errors.As(err, &uerr)
}

// parseRetryAfter decodes a Retry-After header value in its
// integer-seconds form (the only form ifp-serve emits). Absent,
// malformed, or non-positive values mean "no hint".
func parseRetryAfter(v string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryAfterHint extracts the server's Retry-After hint from the last
// failure, if it was an APIError carrying one.
func retryAfterHint(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}

// backoff returns the delay before the retry-th retry: exponential
// doubling from base, capped, plus up to 25% jitter so synchronized
// clients do not reconverge on the server in lockstep. The jitter comes
// from the client's Jitter source when set (per-client, seedable — so a
// test can pin the whole schedule), else from the process-wide source.
//
// The schedule is overflow-proof by construction: doubling stops the
// moment d reaches maxRetryDelay, so the loop runs at most
// log2(cap/base) iterations however large retry grows (WaitReady runs
// with an attempt cap near 2^20), and d never exceeds twice the cap
// before the clamp — it cannot wrap negative. A non-positive base
// (possible only when backoff is called outside do's defaulting) is
// normalised first so the doubling invariant holds.
func (c *Client) backoff(base time.Duration, retry int) time.Duration {
	if base <= 0 {
		base = DefaultRetryBase
	}
	d := base
	for i := 1; i < retry && d < maxRetryDelay; i++ {
		d *= 2
	}
	if d > maxRetryDelay || d <= 0 {
		d = maxRetryDelay
	}
	jitter := c.Jitter
	if jitter == nil {
		jitter = defaultJitter
	}
	return d + jitter(d/4+1)
}

// defaultJitter draws from math/rand/v2's process-wide generator, which
// is seeded randomly at startup and safe for concurrent use without a
// shared lock in this package.
func defaultJitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(max)))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
