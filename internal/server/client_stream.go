package server

// Streaming client for the batch endpoints: StreamNDJSON is the
// line-delivery engine, the typed campaign wrappers (BatchStream,
// GridStream, ChaosStream) decode cells and enforce the trailer
// contract, and the report helpers (BatchReport, GridReport,
// ChaosReport) reassemble a whole streamed campaign into the
// byte-identical report a serial ifp-bench run prints.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"infat/internal/exp"
)

// maxStreamLineBytes bounds one NDJSON line; cells are small JSON
// objects, so the bound only guards against a corrupted stream.
const maxStreamLineBytes = 1 << 20

// StreamNDJSON posts req to path and invokes onLine with each non-empty
// NDJSON line as it arrives (the line buffer is only valid during the
// call). An error from onLine aborts the stream and is returned.
//
// Retries follow the unary rules — transient statuses and transport
// errors, exponential backoff, Retry-After honoured — but only while no
// line has been delivered yet: once the consumer has observed part of a
// stream, replaying the request from the top would hand it duplicate
// cells, so mid-stream failures are returned as-is and truncation is
// the caller's to detect (the campaign wrappers do, via the trailer).
func (c *Client) StreamNDJSON(ctx context.Context, path string, req any, onLine func(line []byte) error) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	if c.NoRetry {
		attempts = 1
	}
	base := c.RetryBase
	if base <= 0 {
		base = DefaultRetryBase
	}
	for attempt := 1; ; attempt++ {
		delivered, err := c.streamOnce(ctx, path, body, onLine)
		if err == nil {
			return nil
		}
		if delivered > 0 || attempt >= attempts || !retryable(err) {
			return err
		}
		d := c.backoff(base, attempt)
		if hint := retryAfterHint(err); hint > 0 {
			if hint > maxRetryAfterHint {
				hint = maxRetryAfterHint
			}
			d = hint
		}
		if serr := sleepCtx(ctx, d); serr != nil {
			return errors.Join(serr, err)
		}
	}
}

// streamOnce performs one streaming attempt, reporting how many lines
// it delivered to onLine (the retry-safety signal).
func (c *Client) streamOnce(ctx context.Context, path string, body []byte, onLine func([]byte) error) (delivered int, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	SetDeadlineHeader(hreq.Header, ctx)
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	if hc.Timeout > 0 {
		// The unary client's overall timeout covers reading the whole
		// response body — wrong for a long-lived stream, which is bounded
		// by ctx (and the server's own BatchTimeout) instead.
		streaming := *hc
		streaming.Timeout = 0
		hc = &streaming
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		return 0, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		rbody, _ := io.ReadAll(io.LimitReader(hresp.Body, maxStreamLineBytes))
		var apiErr ErrorResponse
		if json.Unmarshal(rbody, &apiErr) != nil || apiErr.Error == "" {
			apiErr.Error = strings.TrimSpace(string(rbody))
		}
		return 0, &APIError{
			Status:     hresp.StatusCode,
			Message:    apiErr.Error,
			RetryAfter: parseRetryAfter(hresp.Header.Get(RetryAfterHeader)),
		}
	}
	sc := bufio.NewScanner(hresp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxStreamLineBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		delivered++
		if err := onLine(line); err != nil {
			return delivered, err
		}
	}
	if err := sc.Err(); err != nil {
		return delivered, fmt.Errorf("ifp-serve: stream read: %w", err)
	}
	return delivered, nil
}

// ErrTruncatedStream reports a batch stream that ended without its
// trailer: the server stopped mid-campaign (disconnect, deadline, or
// crash) and the received cells are an incomplete set.
var ErrTruncatedStream = errors.New("ifp-serve: truncated stream: no trailer")

// BatchStream posts a full-report campaign to /v1/batch, invoking
// onCell for every cell line in arrival (completion) order, and returns
// the stream's trailer. A stream that ends without a trailer returns
// ErrTruncatedStream.
func (c *Client) BatchStream(ctx context.Context, req BatchRequest, onCell func(BatchCell) error) (*BatchTrailer, error) {
	return c.campaignStream(ctx, BatchPath, req, onCell)
}

// GridStream is BatchStream for the perf-only /v1/grid campaign.
func (c *Client) GridStream(ctx context.Context, req BatchRequest, onCell func(BatchCell) error) (*BatchTrailer, error) {
	return c.campaignStream(ctx, GridPath, req, onCell)
}

// ChaosStream is BatchStream for the /v1/chaos fault-injection
// campaign; cells carry Chaos payloads.
func (c *Client) ChaosStream(ctx context.Context, req ChaosRequest, onCell func(BatchCell) error) (*BatchTrailer, error) {
	return c.campaignStream(ctx, ChaosPath, req, onCell)
}

func (c *Client) campaignStream(ctx context.Context, path string, req any, onCell func(BatchCell) error) (*BatchTrailer, error) {
	var trailer *BatchTrailer
	err := c.StreamNDJSON(ctx, path, req, func(line []byte) error {
		// The trailer is the one line with done=true; cell lines have no
		// done field, so probing with the trailer shape is unambiguous.
		var t BatchTrailer
		if json.Unmarshal(line, &t) == nil && t.Done {
			trailer = &t
			return nil
		}
		var cell BatchCell
		if err := json.Unmarshal(line, &cell); err != nil {
			return fmt.Errorf("ifp-serve: bad stream line %q: %w", line, err)
		}
		return onCell(cell)
	})
	if err != nil {
		return nil, err
	}
	if trailer == nil {
		return nil, ErrTruncatedStream
	}
	return trailer, nil
}

// cellError converts an error cell into the error the report helpers
// surface.
func cellError(cell BatchCell) error {
	return fmt.Errorf("ifp-serve: cell %d (%s|%s|%s) failed: %s",
		cell.Seq, cell.Kind, cell.Workload, cell.Config, cell.Error)
}

// addToAssembly folds one grid/batch cell into an exp.Assembly.
func addToAssembly(a *exp.Assembly, cell BatchCell) error {
	if cell.Error != "" {
		return cellError(cell)
	}
	if cell.Result == nil {
		return fmt.Errorf("ifp-serve: cell %d missing result payload", cell.Seq)
	}
	return a.Add(cell.Seq, *cell.Result)
}

// BatchReport streams a whole /v1/batch campaign (req.Cells must be
// empty: reports need every cell) and reassembles the byte-identical
// full report — Table 4 plus Figures 10–12 — a serial ifp-bench run
// over the same workloads and scales prints.
func (c *Client) BatchReport(ctx context.Context, req BatchRequest) (string, error) {
	plan, err := req.BatchPlan()
	if err != nil {
		return "", err
	}
	a := plan.NewAssembly()
	if _, err := c.BatchStream(ctx, req, func(cell BatchCell) error {
		return addToAssembly(a, cell)
	}); err != nil {
		return "", err
	}
	return a.Report()
}

// GridReport is BatchReport for the perf-only campaign, reassembling
// exp.PerfReport.
func (c *Client) GridReport(ctx context.Context, req BatchRequest) (string, error) {
	plan, err := req.GridPlan()
	if err != nil {
		return "", err
	}
	a := plan.NewAssembly()
	if _, err := c.GridStream(ctx, req, func(cell BatchCell) error {
		return addToAssembly(a, cell)
	}); err != nil {
		return "", err
	}
	return a.Report()
}

// ChaosReport streams a whole /v1/chaos campaign and reassembles the
// report plus internal-outcome count exp.ChaosReport produces.
func (c *Client) ChaosReport(ctx context.Context, req ChaosRequest) (string, int, error) {
	a := req.Plan().NewAssembly()
	if _, err := c.ChaosStream(ctx, req, func(cell BatchCell) error {
		if cell.Error != "" {
			return cellError(cell)
		}
		if cell.Chaos == nil {
			return fmt.Errorf("ifp-serve: cell %d missing chaos payload", cell.Seq)
		}
		return a.Add(cell.Seq, *cell.Chaos)
	}); err != nil {
		return "", 0, err
	}
	return a.Report()
}
