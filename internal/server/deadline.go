package server

// Cross-process deadline propagation. A context deadline dies at the
// process boundary: the shard's context cancels its *own* outgoing
// request when the client hangs up, but the backend has no idea how much
// budget the original caller actually has left — it would happily start
// a simulation the client stopped waiting for seconds ago. The
// DeadlineHeader carries the remaining budget downstream explicitly:
// the client stamps it from its context, the shard re-derives its own
// context from it (so the shard's outgoing calls re-stamp a fresher,
// smaller value), and the backend clamps its per-request timeout to it.
// The result is one deadline, honoured end to end, with each hop only
// ever shrinking it.

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader propagates the caller's remaining deadline budget, in
// whole milliseconds, from client through shard to backend. A hop that
// receives it clamps its own per-request timeout down to the value —
// never up: the header can only shrink a budget, so a client cannot use
// it to outstay the operator's configured deadline.
const DeadlineHeader = "X-Ifp-Deadline-Ms"

// maxPropagatedDeadline bounds the header value a server honours, so a
// nonsense value cannot install a multi-day context timer per request.
const maxPropagatedDeadline = 24 * time.Hour

// SetDeadlineHeader stamps ctx's remaining budget onto h when ctx has a
// deadline (and drops the header otherwise, so a stale value from a
// reused header map never outlives the context that set it). An
// already-expired deadline is stamped as 1ms rather than omitted: the
// receiver should reject promptly, not run the full request.
func SetDeadlineHeader(h http.Header, ctx context.Context) {
	dl, ok := ctx.Deadline()
	if !ok {
		h.Del(DeadlineHeader)
		return
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	h.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
}

// ParseDeadlineHeader decodes a DeadlineHeader value into a duration.
// Absent, malformed, or non-positive values mean "no propagated
// deadline" (0); oversized values are capped at maxPropagatedDeadline.
func ParseDeadlineHeader(v string) time.Duration {
	if v == "" {
		return 0
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return 0
	}
	d := time.Duration(ms) * time.Millisecond
	if d > maxPropagatedDeadline {
		d = maxPropagatedDeadline
	}
	return d
}
