package server

import (
	"bytes"
	"testing"

	"infat/internal/rt"
)

// FuzzDecodeRunRequest fuzzes the /v1/run request decoder: whatever the
// bytes, an accepted request must satisfy every invariant the handlers
// rely on (non-empty bounded source, a real mode), and the decoder must
// never panic.
func FuzzDecodeRunRequest(f *testing.F) {
	const maxSource = 4096
	seeds := []string{
		`{"source":"int main() { return 0; }","mode":"subheap"}`,
		`{"source":"int main() { while (1) { } }","mode":"wrapped","fuel":100000}`,
		`{"source":"x"}`,
		`{"source":"x","mode":"hybrid","fuel":18446744073709551615}`,
		`{"source":"","mode":"baseline"}`,
		`{"source":"x","mode":"nope"}`,
		`{"Source":"case-sensitivity","mode":"subheap"}`,
		`{"unknown":1}`,
		`{"source":"x"} {"source":"y"}`,
		`{"source":"x","fuel":-1}`,
		`{"source":"x","fuel":"12"}`,
		`[{"source":"x"}]`,
		`null`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		job, err := decodeRunRequest(bytes.NewReader(data), maxSource)
		if err != nil {
			return // rejected input: nothing else to hold
		}
		if job.source == "" {
			t.Fatalf("accepted empty source from %q", data)
		}
		if len(job.source) > maxSource {
			t.Fatalf("accepted %d-byte source (limit %d)", len(job.source), maxSource)
		}
		if _, perr := rt.ParseMode(job.mode.String()); perr != nil {
			t.Fatalf("accepted unparseable mode %v from %q", job.mode, data)
		}
	})
}
