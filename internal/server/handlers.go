package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"infat/internal/exp"
	"infat/internal/juliet"
	"infat/internal/machine"
	"infat/internal/memo"
	"infat/internal/minic"
	"infat/internal/rt"
	"infat/internal/workloads"
)

// Trap classes: the service's verdict on a trapped run.
const (
	trapClassSpatial  = "spatial"  // an In-Fat Pointer detection (poison / bounds)
	trapClassTemporal = "temporal" // a generation-tagging detection (UAF / double free)
	trapClassFuel     = "fuel"     // execution budget exhausted (resource trap)
	trapClassInternal = "internal" // recovered simulator panic (a bug, never guest behavior)
	trapClassOther    = "other"    // metadata/memory/alloc trap or non-trap runtime fault
)

// CacheHeader carries the cache disposition of a /v1/run response ("hit"
// or "miss"). It is a header, not a body field, so that response bytes
// for a given (source, mode, fuel) are identical whether simulated or
// replayed from cache — and identical to a local RunC of the same input.
const CacheHeader = "X-Ifp-Cache"

// MemoHeader carries the memo-store disposition of a response. Unary
// endpoints send "hit" or "miss"; the streaming batch endpoints send the
// number of requested cells already warm in the store at stream start.
// Like CacheHeader it is a header, never a body field — payload bytes
// are identical either way.
const MemoHeader = "X-Ifp-Memo"

// runResult is the memoized value of one /v1/run response: the HTTP
// status and the exact body bytes, replayed verbatim on a hit. It
// snapshots as JSON (Body base64-encodes under encoding/json).
type runResult struct {
	Status int    `json:"status"`
	Body   []byte `json:"body"`
}

func init() {
	memo.RegisterKind(memo.KindRun, memo.Codec{Decode: func(p []byte) (any, error) {
		var r runResult
		if err := json.Unmarshal(p, &r); err != nil {
			return nil, err
		}
		return &r, nil
	}})
}

// RunRequest is the POST /v1/run body: compile-and-run a MiniC program.
type RunRequest struct {
	// Source is the MiniC program text (required).
	Source string `json:"source"`
	// Mode is the run configuration: baseline, subheap (default),
	// wrapped, hybrid, or ifp-temporal.
	Mode string `json:"mode,omitempty"`
	// Fuel overrides the server's per-run cycle budget. 0 keeps the
	// server default; non-zero values are clamped to the server's MaxFuel
	// cap, so requests can neither disable nor inflate the budget. The
	// response's Fuel field reports the effective budget.
	Fuel uint64 `json:"fuel,omitempty"`
}

// TrapInfo describes why a run stopped early.
type TrapInfo struct {
	// Class is the service verdict: spatial, temporal, fuel, or other.
	Class string `json:"class"`
	// Kind is the machine trap kind (poisoned-pointer, bounds, fuel,
	// metadata, memory); empty for non-trap runtime faults.
	Kind string `json:"kind,omitempty"`
	// Message is the full error, including the MiniC source line.
	Message string `json:"message"`
}

// RunResponse is the POST /v1/run result.
type RunResponse struct {
	Mode string `json:"mode"`
	// Fuel is the effective cycle budget the run executed under.
	Fuel   uint64    `json:"fuel"`
	Output []int64   `json:"output"`
	Exit   int64     `json:"exit"`
	Trap   *TrapInfo `json:"trap,omitempty"`
	// Counters is the machine's dynamic event counts, up to the trap for
	// trapped runs.
	Counters machine.Counters `json:"counters"`
}

// JulietRequest is the POST /v1/juliet body: run one generated case.
type JulietRequest struct {
	// Case is a case name from GET /v1/juliet.
	Case string `json:"case"`
	// Mode defaults to subheap.
	Mode string `json:"mode,omitempty"`
}

// JulietResponse is the POST /v1/juliet result.
type JulietResponse struct {
	Case    string `json:"case"`
	CWE     string `json:"cwe"`
	Bad     bool   `json:"bad"`
	Mode    string `json:"mode"`
	Verdict string `json:"verdict"`
	Detail  string `json:"detail,omitempty"`
}

// JulietListResponse is the GET /v1/juliet result.
type JulietListResponse struct {
	Count int      `json:"count"`
	Cases []string `json:"cases"`
}

// WorkloadRequest is the POST /v1/workload body: run one cell of the
// §5.2 evaluation grid.
type WorkloadRequest struct {
	// Name is a workload name from workloads.All (e.g. "treeadd").
	Name string `json:"name"`
	// Mode defaults to subheap.
	Mode string `json:"mode,omitempty"`
	// NoPromote selects the no-promote variant of an instrumented mode.
	NoPromote bool `json:"no_promote,omitempty"`
	// Scale defaults to 1; bounded by the server's MaxScale.
	Scale int `json:"scale,omitempty"`
}

// WorkloadResponse is the POST /v1/workload result — the same
// observables an exp grid cell records.
type WorkloadResponse struct {
	Name      string           `json:"name"`
	Suite     string           `json:"suite"`
	Mode      string           `json:"mode"`
	NoPromote bool             `json:"no_promote"`
	Scale     int              `json:"scale"`
	Checksum  uint64           `json:"checksum"`
	Footprint uint64           `json:"footprint"`
	L1DMisses uint64           `json:"l1d_misses"`
	Counters  machine.Counters `json:"counters"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

var errSourceTooLarge = errors.New("source exceeds the server's size limit")

// runJob is a validated, defaulted run request.
type runJob struct {
	source string
	mode   rt.Mode
	fuel   uint64
}

// decodeRunRequest parses and validates a /v1/run body: strict JSON
// (unknown fields and trailing data rejected), non-empty bounded source,
// known mode. It returns the job with the mode resolved but the fuel
// default (0) still unapplied, so the decoder is a pure function of the
// bytes — the property the fuzz target checks.
func decodeRunRequest(r io.Reader, maxSource int) (runJob, error) {
	var req RunRequest
	if err := decodeStrict(r, &req); err != nil {
		return runJob{}, err
	}
	if req.Source == "" {
		return runJob{}, errors.New("source must be non-empty")
	}
	if len(req.Source) > maxSource {
		return runJob{}, errSourceTooLarge
	}
	mode, err := parseModeDefault(req.Mode)
	if err != nil {
		return runJob{}, err
	}
	return runJob{source: req.Source, mode: mode, fuel: req.Fuel}, nil
}

// decodeStrict decodes one JSON object, rejecting unknown fields and
// trailing data.
func decodeStrict(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return errors.New("bad request body: trailing data after request object")
	}
	return nil
}

// parseModeDefault resolves a request mode string, defaulting to subheap.
func parseModeDefault(s string) (rt.Mode, error) {
	if s == "" {
		return rt.Subheap, nil
	}
	return rt.ParseMode(s)
}

// runKey is the memo key: content hash of the program plus every knob
// that changes the result — the same (sha256(source), mode, fuel) triple
// the result LRU has always keyed on, in canonical digest form.
func runKey(job runJob) memo.Digest {
	return memo.RunDigest(memo.SourceDigest(job.source), job.mode.String(), job.fuel)
}

// classifyTrap maps a run error to its service trap class and machine
// trap kind (empty kind for non-trap faults like division by zero).
func classifyTrap(err error) (class, kind string) {
	var t *machine.Trap
	if !errors.As(err, &t) {
		return trapClassOther, ""
	}
	switch t.Kind {
	case machine.TrapPoison, machine.TrapBounds:
		return trapClassSpatial, t.Kind.String()
	case machine.TrapTemporal:
		return trapClassTemporal, t.Kind.String()
	case machine.TrapFuel:
		return trapClassFuel, t.Kind.String()
	case machine.TrapInternal:
		return trapClassInternal, t.Kind.String()
	}
	return trapClassOther, t.Kind.String()
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	// The body cap is sized for the worst-case JSON escaping of a
	// maximum-size source (every byte a \u00XX sequence), so no source
	// decodeRunRequest would accept is rejected for its encoding alone.
	body := http.MaxBytesReader(w, r.Body, 6*int64(s.cfg.MaxSourceBytes)+64<<10)
	job, err := decodeRunRequest(body, s.cfg.MaxSourceBytes)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, decodeStatus(err), err)
		return
	}
	// Default and clamp the budget before the cache key is computed, so
	// every over-limit request shares the MaxFuel entry. The clamp is the
	// DoS guarantee: client fuel can never exceed the server's cap, so a
	// worker slot is always released in bounded time.
	if job.fuel == 0 {
		job.fuel = s.cfg.Fuel
	} else if job.fuel > s.cfg.MaxFuel {
		job.fuel = s.cfg.MaxFuel
	}

	e, leader := s.memo.StartOrJoin(runKey(job), memo.KindRun)
	if !leader {
		// Coalesced onto an in-flight identical submission — or joined an
		// already-complete entry, whose Ready is pre-closed. Wait for the
		// published bytes (or give up at our own deadline — never
		// re-simulate). Only a kept (memoized, deterministic) result is
		// reported as a hit; a coalesced error is passed through as a
		// miss.
		select {
		case <-e.Ready():
			state := "miss"
			if e.Kept() {
				state = "hit"
			}
			res := e.Value().(*runResult)
			writeRaw(w, res.Status, res.Body, state)
		case <-r.Context().Done():
			s.metrics.deadline.Add(1)
			s.writeBusy(w, http.StatusGatewayTimeout,
				errorBody("deadline exceeded waiting for in-flight identical submission"), "")
		}
		return
	}
	// Safety net: if this leader exits without publishing (a panic
	// recovered by net/http), wake the followers with an error and free
	// the key. A no-op on the normal paths below — Finish is idempotent.
	abandoned := &runResult{Status: http.StatusInternalServerError,
		Body: errorBody("internal error: request abandoned")}
	defer s.memo.Finish(e, abandoned, nil, false)

	status, respBody, ok := s.dispatch(r.Context(), func() (int, []byte) {
		return s.executeRun(job)
	})
	res := &runResult{Status: status, Body: respBody}
	if !ok {
		// Admission or deadline failure: non-deterministic, so publish
		// to any waiting followers but drop the entry from the store.
		s.memo.Finish(e, res, nil, false)
		s.writeBusy(w, status, respBody, "miss")
		return
	}
	// Simulation results and compile verdicts are deterministic in
	// (source, mode, fuel): keep them.
	s.memo.Finish(e, res, mustJSON(res), true)
	writeRaw(w, status, respBody, "miss")
}

// executeRun performs the simulation for one run job and renders the
// response bytes. Runs on a worker slot.
func (s *Server) executeRun(job runJob) (int, []byte) {
	out, exit, counters, err := minic.ExecuteBudget(job.source, job.mode, job.fuel)
	if err != nil {
		var re *minic.RunError
		if !errors.As(err, &re) {
			// Front-end failure (parse/compile/setup): the program never
			// ran, so there is no verdict to report.
			return http.StatusUnprocessableEntity, errorBody(err.Error())
		}
	}
	if out == nil {
		out = []int64{}
	}
	resp := RunResponse{
		Mode:     job.mode.String(),
		Fuel:     job.fuel,
		Output:   out,
		Exit:     exit,
		Counters: counters,
	}
	class := ""
	if err != nil {
		var kind string
		class, kind = classifyTrap(err)
		resp.Trap = &TrapInfo{Class: class, Kind: kind, Message: err.Error()}
	}
	s.metrics.countTrap(class)
	b, merr := json.Marshal(resp)
	if merr != nil {
		return http.StatusInternalServerError, errorBody(merr.Error())
	}
	return http.StatusOK, b
}

func (s *Server) handleJuliet(w http.ResponseWriter, r *http.Request) {
	var req JulietRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, 64<<10), &req); err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mode, err := parseModeDefault(req.Mode)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c, ok := s.julietCases[req.Case]
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown case %q (GET /v1/juliet lists the %d cases)", req.Case, len(s.julietNames)))
		return
	}
	status, body, ok := s.dispatch(r.Context(), func() (int, []byte) {
		o := juliet.RunCase(c, mode)
		return http.StatusOK, mustJSON(JulietResponse{
			Case:    c.Name,
			CWE:     c.CWE,
			Bad:     c.Bad,
			Mode:    mode.String(),
			Verdict: o.Verdict.String(),
			Detail:  o.Detail,
		})
	})
	if !ok {
		s.writeBusy(w, status, body, "")
		return
	}
	writeRaw(w, status, body, "")
}

func (s *Server) handleJulietList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, JulietListResponse{Count: len(s.julietNames), Cases: s.julietNames})
}

func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	var req WorkloadRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, 64<<10), &req); err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mode, err := parseModeDefault(req.Mode)
	if err != nil {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Scale == 0 {
		req.Scale = 1
	}
	if req.Scale < 1 || req.Scale > s.cfg.MaxScale {
		s.metrics.badRequests.Add(1)
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("scale %d out of range [1, %d]", req.Scale, s.cfg.MaxScale))
		return
	}
	wl, ok := workloads.ByName(req.Name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown workload %q", req.Name))
		return
	}
	renderResponse := func(m *exp.ModeResult) []byte {
		return mustJSON(WorkloadResponse{
			Name:      wl.Name,
			Suite:     wl.Suite,
			Mode:      mode.String(),
			NoPromote: req.NoPromote,
			Scale:     req.Scale,
			Checksum:  m.Checksum,
			Footprint: m.Footprint,
			L1DMisses: m.L1DMisses,
			Counters:  m.Counters,
		})
	}
	// A warm cell — computed by an earlier /v1/workload call or any batch
	// stream, which share the same canonical cell digests — is served
	// instantly: no worker slot, no runtime checkout.
	if m, ok := exp.LookupOne(s.memo, wl, mode, req.NoPromote, req.Scale); ok {
		writeRaw(w, http.StatusOK, renderResponse(m), "hit")
		return
	}
	status, body, ok := s.dispatch(r.Context(), func() (int, []byte) {
		m, err := exp.ComputeOne(s.memo, wl, mode, req.NoPromote, req.Scale)
		if err != nil {
			return http.StatusInternalServerError, errorBody(err.Error())
		}
		return http.StatusOK, renderResponse(m)
	})
	if !ok {
		s.writeBusy(w, status, body, "miss")
		return
	}
	writeRaw(w, status, body, "miss")
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshot())
}

// decodeStatus maps a decode failure to its HTTP status.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.Is(err, errSourceTooLarge) || errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func statusMessage(status int) string {
	switch status {
	case http.StatusServiceUnavailable:
		return "server at capacity: deadline exceeded before a worker was available"
	case http.StatusGatewayTimeout:
		return "deadline exceeded during simulation"
	}
	return http.StatusText(status)
}

func errorBody(msg string) []byte { return mustJSON(ErrorResponse{Error: msg}) }

// RetryAfterHeader is the standard back-pressure hint set on 503/504
// responses; the bundled client honors it over its computed backoff.
const RetryAfterHeader = "Retry-After"

// writeBusy writes an admission or deadline failure: the structured JSON
// error body plus the Retry-After hint, so a saturated server tells
// clients both what happened and when to come back.
func (s *Server) writeBusy(w http.ResponseWriter, status int, body []byte, cacheState string) {
	secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set(RetryAfterHeader, strconv.Itoa(secs))
	writeRaw(w, status, body, cacheState)
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All response types are plain data; a marshal failure is a
		// programming error.
		panic(err)
	}
	return b
}

func writeJSON(w http.ResponseWriter, status int, v any) { writeRaw(w, status, mustJSON(v), "") }

func writeError(w http.ResponseWriter, status int, err error) {
	writeRaw(w, status, errorBody(err.Error()), "")
}

// writeRaw sends pre-rendered JSON; cacheState, when non-empty, is
// exposed via both CacheHeader (the name clients have honoured since the
// result LRU) and MemoHeader (the unified store's name) — one store, two
// header aliases.
func writeRaw(w http.ResponseWriter, status int, body []byte, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	if cacheState != "" {
		w.Header().Set(CacheHeader, cacheState)
		w.Header().Set(MemoHeader, cacheState)
	}
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}
