package server

// Tests for the unified content-addressed memo store on the serving
// tier: cross-endpoint cell sharing (/v1/workload and the streaming
// campaigns hit the same canonical digests), warm-stream byte identity,
// /metrics exposure, and the disk-backed snapshot round trip.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"

	"infat/internal/memo"
)

// postNDJSON issues a raw campaign POST and returns the response header,
// the cell lines sorted by seq, and the decoded trailer.
func postNDJSON(t *testing.T, url, body string) (http.Header, [][]byte, BatchTrailer) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var lines [][]byte
	var trailer BatchTrailer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if probe.Done {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatal(err)
			}
			continue
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(lines, func(i, j int) bool {
		seq := func(b []byte) int {
			var c struct {
				Seq int `json:"seq"`
			}
			if err := json.Unmarshal(b, &c); err != nil {
				t.Fatal(err)
			}
			return c.Seq
		}
		return seq(lines[i]) < seq(lines[j])
	})
	return resp.Header, lines, trailer
}

// TestMemoCrossEndpointWorkloadToBatch: a cell computed by the unary
// /v1/workload endpoint is warm for a later grid stream — the stream's
// MemoHeader counts it, and serving it costs no runtime-pool checkout.
func TestMemoCrossEndpointWorkloadToBatch(t *testing.T) {
	s, c, done := newTestServer(t, Config{})
	defer done()
	ctx := context.Background()

	if _, err := c.Workload(ctx, WorkloadRequest{Name: "treeadd", Mode: "baseline"}); err != nil {
		t.Fatal(err)
	}
	hitsBefore := s.memo.Stats().Hits

	hdr, lines, trailer := postNDJSON(t, c.BaseURL+GridPath, `{"workloads":["treeadd"]}`)
	warm, err := strconv.Atoi(hdr.Get(MemoHeader))
	if err != nil || warm < 1 {
		t.Fatalf("%s = %q, want >= 1 warm cell", MemoHeader, hdr.Get(MemoHeader))
	}
	if trailer.Failed != 0 || trailer.Completed != len(lines) {
		t.Fatalf("trailer = %+v over %d lines", trailer, len(lines))
	}
	if hits := s.memo.Stats().Hits; hits <= hitsBefore {
		t.Fatalf("grid stream recorded no memo hits (before=%d after=%d)", hitsBefore, hits)
	}
}

// TestMemoCrossEndpointBatchToWorkload: after a grid stream every one of
// its cells answers /v1/workload instantly as a memo hit, byte-identical
// to a cold unary computation on an independent server.
func TestMemoCrossEndpointBatchToWorkload(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()
	_, coldC, coldDone := newTestServer(t, Config{})
	defer coldDone()
	ctx := context.Background()

	postNDJSON(t, c.BaseURL+GridPath, `{"workloads":["treeadd"]}`)

	req := WorkloadRequest{Name: "treeadd", Mode: "baseline"}
	body, _ := json.Marshal(req)
	resp, err := http.Post(c.BaseURL+"/v1/workload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(MemoHeader); got != "hit" {
		t.Fatalf("%s = %q after grid stream, want \"hit\"", MemoHeader, got)
	}
	var warmResp WorkloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&warmResp); err != nil {
		t.Fatal(err)
	}
	coldResp, err := coldC.Workload(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if warmResp != *coldResp {
		t.Fatalf("memoized workload response %+v differs from cold %+v", warmResp, *coldResp)
	}
}

// TestMemoWarmStreamByteIdentical: a repeated campaign stream serves
// every cell from the store — the MemoHeader preview says so up front —
// and its cell lines are byte-identical to the cold pass.
func TestMemoWarmStreamByteIdentical(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()
	const body = `{"workloads":["treeadd","health"]}`

	for _, path := range []string{BatchPath, ChaosPath} {
		reqBody := body
		if path == ChaosPath {
			reqBody = `{}`
		}
		coldHdr, cold, coldTrailer := postNDJSON(t, c.BaseURL+path, reqBody)
		if got, _ := strconv.Atoi(coldHdr.Get(MemoHeader)); got != 0 {
			t.Fatalf("%s: cold stream claims %d warm cells", path, got)
		}
		warmHdr, warm, warmTrailer := postNDJSON(t, c.BaseURL+path, reqBody)
		if got, _ := strconv.Atoi(warmHdr.Get(MemoHeader)); got != len(cold) {
			t.Fatalf("%s: warm stream claims %d warm cells, want %d", path, got, len(cold))
		}
		if coldTrailer != warmTrailer {
			t.Fatalf("%s: trailers differ: %+v vs %+v", path, coldTrailer, warmTrailer)
		}
		if len(cold) != len(warm) {
			t.Fatalf("%s: %d cold lines vs %d warm lines", path, len(cold), len(warm))
		}
		for i := range cold {
			if !bytes.Equal(cold[i], warm[i]) {
				t.Fatalf("%s: cell line %d differs:\ncold: %s\nwarm: %s", path, i, cold[i], warm[i])
			}
		}
	}
}

// TestMetricsMemoSection: after a warm campaign the /metrics snapshot
// reports the unified store (hits, entries, bytes) alongside the
// run-only cache slice PR 2 clients read.
func TestMetricsMemoSection(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()
	ctx := context.Background()

	postNDJSON(t, c.BaseURL+GridPath, `{"workloads":["treeadd"]}`)
	postNDJSON(t, c.BaseURL+GridPath, `{"workloads":["treeadd"]}`)
	if _, _, err := c.Run(ctx, RunRequest{Source: cleanProg}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Run(ctx, RunRequest{Source: cleanProg}); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Memo == nil {
		t.Fatal("metrics snapshot missing memo section")
	}
	for _, key := range []string{"hits", "entries", "bytes"} {
		if snap.Memo[key] == 0 {
			t.Errorf("memo[%q] = 0 after warm campaign (%v)", key, snap.Memo)
		}
	}
	// The cache map stays the run endpoint's own slice: exactly one miss
	// and one hit from the pair of identical /v1/run submissions.
	if snap.Cache["misses"] != 1 || snap.Cache["hits"] != 1 {
		t.Errorf("cache slice = %v, want 1 hit / 1 miss (run kind only)", snap.Cache)
	}
	if snap.Memo["hits"] <= snap.Cache["hits"] {
		t.Errorf("memo hits %d not above run-only hits %d despite warm grid",
			snap.Memo["hits"], snap.Cache["hits"])
	}
}

// TestServerMemoSnapshotRoundTrip: a server with -memo-dir persists its
// store on SaveMemo and a fresh server over the same directory answers
// the same cell as a hit without recomputing.
func TestServerMemoSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1, c1, done1 := newTestServer(t, Config{MemoDir: dir})
	req := WorkloadRequest{Name: "treeadd", Mode: "baseline"}
	cold, err := c1.Workload(ctx, req)
	if err != nil {
		done1()
		t.Fatal(err)
	}
	if err := s1.SaveMemo(); err != nil {
		done1()
		t.Fatal(err)
	}
	done1()

	s2, c2, done2 := newTestServer(t, Config{MemoDir: dir})
	defer done2()
	if loaded := s2.memo.Stats().Loaded; loaded == 0 {
		t.Fatal("fresh server loaded no snapshot entries")
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(c2.BaseURL+"/v1/workload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(MemoHeader); got != "hit" {
		t.Fatalf("%s = %q on snapshot-restored server, want \"hit\"", MemoHeader, got)
	}
	var warm WorkloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&warm); err != nil {
		t.Fatal(err)
	}
	if warm != *cold {
		t.Fatalf("restored response %+v differs from original %+v", warm, *cold)
	}
	if st := s2.memo.KindStats(memo.KindCell); st.Hits == 0 {
		t.Fatalf("restored cell served without a recorded hit: %+v", st)
	}
}
