package server

import (
	"sync/atomic"
	"time"

	"infat/internal/memo"
	"infat/internal/rt"
)

// latencyBuckets are the upper edges of the request-latency histogram.
// Requests slower than the last edge land in the overflow bucket.
var latencyBuckets = []time.Duration{
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// latencyLabels are the snapshot keys of each histogram bucket, in
// bucket order, overflow last.
var latencyLabels = []string{"le_1ms", "le_10ms", "le_100ms", "le_1s", "le_10s", "gt_10s"}

// metrics is the service's expvar-style counter set. Every field is an
// atomic: handlers update them lock-free on the request path and
// /metrics renders a consistent-enough snapshot without stopping the
// world. Cache counters live on the cache itself and are merged into the
// snapshot.
type metrics struct {
	reqRun      atomic.Uint64
	reqJuliet   atomic.Uint64
	reqWorkload atomic.Uint64
	reqBatch    atomic.Uint64
	reqGrid     atomic.Uint64
	reqChaos    atomic.Uint64
	reqHealthz  atomic.Uint64
	reqMetrics  atomic.Uint64

	batchStreams    atomic.Uint64 // batch/grid/chaos streams started
	batchCells      atomic.Uint64 // cells simulated across all streams
	batchCellErrors atomic.Uint64 // cells that ended in an error line
	batchCancelled  atomic.Uint64 // streams truncated by disconnect/deadline

	inFlight           atomic.Int64
	badRequests        atomic.Uint64 // malformed/rejected request bodies (4xx)
	rejected           atomic.Uint64 // admission control: deadline hit while queued
	deadline           atomic.Uint64 // deadline hit while simulating
	deadlinePropagated atomic.Uint64 // requests whose timeout was clamped by DeadlineHeader
	internalPanics     atomic.Uint64 // worker panics recovered into 500s (simulator bugs)

	trapSpatial  atomic.Uint64
	trapTemporal atomic.Uint64 // generation-tagging detections (UAF / double free)
	trapFuel     atomic.Uint64
	trapInternal atomic.Uint64 // recovered-panic traps surfaced by a run
	trapOther    atomic.Uint64
	trapNone     atomic.Uint64 // simulations that completed clean

	latency [6]atomic.Uint64 // len(latencyBuckets) + 1 overflow slot
}

func (m *metrics) observeLatency(d time.Duration) {
	for i, edge := range latencyBuckets {
		if d <= edge {
			m.latency[i].Add(1)
			return
		}
	}
	m.latency[len(latencyBuckets)].Add(1)
}

// countTrap records one simulation verdict under its trap class ("" for
// a clean run).
func (m *metrics) countTrap(class string) {
	switch class {
	case trapClassSpatial:
		m.trapSpatial.Add(1)
	case trapClassTemporal:
		m.trapTemporal.Add(1)
	case trapClassFuel:
		m.trapFuel.Add(1)
	case trapClassInternal:
		m.trapInternal.Add(1)
	case "":
		m.trapNone.Add(1)
	default:
		m.trapOther.Add(1)
	}
}

// MetricsSnapshot is the /metrics response. Maps marshal with sorted
// keys, so the rendered JSON is deterministic for a given state.
type MetricsSnapshot struct {
	Requests  map[string]uint64 `json:"requests"` // per endpoint + "total"
	InFlight  int64             `json:"in_flight"`
	Admission map[string]uint64 `json:"admission"` // bad_request, rejected, deadline
	// Cache is the /v1/run slice of the memo store (KindRun only):
	// hits, misses, evictions, entries — the same shape it had when the
	// unary endpoint owned a private LRU, so PR 2/3 clients keep working.
	Cache map[string]uint64 `json:"cache"`
	// Memo is the whole content-addressed store across every kind (run
	// responses, grid cells, chaos cells): hits, misses, evictions,
	// entries, bytes, plus snapshot accounting (loaded, skipped).
	Memo map[string]uint64 `json:"memo"`
	// Batch covers the streaming campaign endpoints: streams, cells,
	// cell_errors, cancelled.
	Batch   map[string]uint64 `json:"batch"`
	Traps   map[string]uint64 `json:"traps"` // spatial, temporal, fuel, other, none
	Latency map[string]uint64 `json:"latency_ms"`
	// Pool reports the runtime pool behind the workers: hits (acquisitions
	// served by resetting an idle runtime), misses (fresh constructions),
	// releases, discards, idle. The pool is process-global (rt.DefaultPool),
	// so with several Servers in one process these counters are shared.
	Pool map[string]uint64 `json:"pool"`
}

func (s *Server) snapshot() MetricsSnapshot {
	m := &s.metrics
	req := map[string]uint64{
		"run":      m.reqRun.Load(),
		"juliet":   m.reqJuliet.Load(),
		"workload": m.reqWorkload.Load(),
		"batch":    m.reqBatch.Load(),
		"grid":     m.reqGrid.Load(),
		"chaos":    m.reqChaos.Load(),
		"healthz":  m.reqHealthz.Load(),
		"metrics":  m.reqMetrics.Load(),
	}
	var total uint64
	for _, v := range req {
		total += v
	}
	req["total"] = total

	runStats := s.memo.KindStats(memo.KindRun)
	memoStats := s.memo.Stats()
	lat := make(map[string]uint64, len(latencyLabels))
	for i, label := range latencyLabels {
		lat[label] = m.latency[i].Load()
	}
	return MetricsSnapshot{
		Requests: req,
		InFlight: m.inFlight.Load(),
		Admission: map[string]uint64{
			"bad_request":         m.badRequests.Load(),
			"rejected":            m.rejected.Load(),
			"deadline":            m.deadline.Load(),
			"deadline_propagated": m.deadlinePropagated.Load(),
			"internal_panics":     m.internalPanics.Load(),
		},
		Cache: map[string]uint64{
			"hits":      runStats.Hits,
			"misses":    runStats.Misses,
			"evictions": runStats.Evictions,
			"entries":   runStats.Entries,
		},
		Memo: map[string]uint64{
			"hits":      memoStats.Hits,
			"misses":    memoStats.Misses,
			"evictions": memoStats.Evictions,
			"entries":   memoStats.Entries,
			"bytes":     memoStats.Bytes,
			"loaded":    memoStats.Loaded,
			"skipped":   memoStats.Skipped,
		},
		Batch: map[string]uint64{
			"streams":     m.batchStreams.Load(),
			"cells":       m.batchCells.Load(),
			"cell_errors": m.batchCellErrors.Load(),
			"cancelled":   m.batchCancelled.Load(),
		},
		Traps: map[string]uint64{
			"spatial":  m.trapSpatial.Load(),
			"temporal": m.trapTemporal.Load(),
			"fuel":     m.trapFuel.Load(),
			"internal": m.trapInternal.Load(),
			"other":    m.trapOther.Load(),
			"none":     m.trapNone.Load(),
		},
		Latency: lat,
		Pool:    poolCounters(),
	}
}

// poolCounters snapshots rt.DefaultPool for the /metrics response.
func poolCounters() map[string]uint64 {
	ps := rt.DefaultPool.Stats()
	return map[string]uint64{
		"hits":     ps.Hits,
		"misses":   ps.Misses,
		"releases": ps.Releases,
		"discards": ps.Discards,
		"idle":     ps.Idle,
	}
}
